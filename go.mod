module ipas

go 1.22
