package ipas

import (
	"testing"
)

func TestFromWorkloadAndExecute(t *testing.T) {
	for _, name := range WorkloadNames() {
		app, err := FromWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Execute(app, app.Config)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalDyn == 0 {
			t.Fatalf("%s: no instructions executed", name)
		}
		if !app.Verify(res, res) {
			t.Fatalf("%s: golden run fails verification", name)
		}
	}
	if _, err := FromWorkload("NOPE", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := FromWorkload("FFT", 9); err == nil {
		t.Fatal("bad input level accepted")
	}
}

func TestFromSci(t *testing.T) {
	src := `
func main() {
	var s int = 0;
	for (var i int = 0; i < 5; i = i + 1) {
		s = s + i;
	}
	out_i64(0, s);
}
`
	verify := func(golden, faulty *RunResult) bool {
		return len(faulty.OutputI) == 1 && faulty.OutputI[0] == golden.OutputI[0]
	}
	app, err := FromSci(src, verify, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(app, app.Config)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputI[0] != 10 {
		t.Fatalf("output = %v", res.OutputI)
	}
	if _, err := FromSci(src, nil, RunConfig{}); err == nil {
		t.Fatal("missing verifier accepted")
	}
	if _, err := FromSci("not a program", verify, RunConfig{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestInjectFaultsFacade(t *testing.T) {
	app, err := FromWorkload("FFT", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InjectFaults(app, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 40 {
		t.Fatalf("%d trials", len(res.Trials))
	}
	if res.Proportion(OutcomeDetected) != 0 {
		t.Fatal("unprotected app detected faults")
	}
}

func TestProtectBestFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workflow")
	}
	app, err := FromWorkload("FFT", 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Samples = 180
	opts.EvalTrials = 60
	opts.TopN = 2
	best, err := ProtectBest(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Policy != PolicyIPAS {
		t.Fatalf("best policy = %v", best.Policy)
	}
	if best.Slowdown <= 1 || best.Stats.Duplicated == 0 {
		t.Fatalf("implausible best variant: slowdown=%v dup=%d", best.Slowdown, best.Stats.Duplicated)
	}
}

func TestOptionPresets(t *testing.T) {
	q, p := QuickOptions(), PaperOptions()
	if p.Samples != 2500 || p.EvalTrials != 1024 || p.TopN != 5 {
		t.Fatalf("paper options: %+v", p)
	}
	if got := len(p.Grid.Cs) * len(p.Grid.Gammas); got != 500 {
		t.Fatalf("paper grid has %d points", got)
	}
	if q.Samples >= p.Samples {
		t.Fatal("quick options not smaller than paper options")
	}
}

func TestProtectStaticAndFullDuplication(t *testing.T) {
	app, err := FromWorkload("IS", 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute(app, app.Config)
	if err != nil {
		t.Fatal(err)
	}

	sm, sst, err := ProtectStatic(app)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Duplicated == 0 || sst.Duplicated == sst.Candidates {
		t.Fatalf("static policy degenerate: %+v", sst)
	}
	sres, err := ExecuteModule(sm, app.Config)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Trap != 0 {
		t.Fatalf("static-protected run trapped: %v", sres.Trap)
	}
	if !app.Verify(base, sres) {
		t.Fatal("static protection changed verified output")
	}

	fm, fst, err := FullDuplication(app)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Duplicated != fst.Candidates {
		t.Fatalf("full duplication incomplete: %+v", fst)
	}
	fres, err := ExecuteModule(fm, app.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !(base.TotalDyn < sres.TotalDyn && sres.TotalDyn < fres.TotalDyn) {
		t.Fatalf("overhead ordering violated: %d, %d, %d",
			base.TotalDyn, sres.TotalDyn, fres.TotalDyn)
	}
}
