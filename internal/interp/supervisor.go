package interp

import (
	"fmt"
	"strings"
	"sync"
)

// This file implements the rank supervisor: deterministic, structural
// deadlock detection for the simulated MPI runtime. The paper's §4.4.1
// relies on MPI's abort-propagation default — any rank failure becomes
// a job-level symptom — and a hang is exactly the failure mode that
// does NOT produce a local trap. Deciding "these ranks are hung" with a
// wall-clock timer makes the modeled TrapDeadlock outcome depend on
// machine load, which violates the bit-identical-resume and
// worker-invariance invariants every campaign layer builds on. The
// supervisor instead tracks each rank's state and declares deadlock the
// instant the job is provably stuck, with full per-rank attribution.

// rankPhase is a rank's position in the supervision state machine:
//
//	running ──block──▶ blocked ──resume──▶ running
//	running/blocked ──finish──▶ exited | trapped   (terminal)
type rankPhase uint8

const (
	phaseRunning rankPhase = iota
	phaseBlocked
	phaseExited
	phaseTrapped
)

// opKind classifies the MPI operation a rank is blocked in.
type opKind uint8

const (
	opSend opKind = iota
	opRecv
)

func (k opKind) String() string {
	if k == opSend {
		return "send"
	}
	return "recv"
}

// pendingOp describes the operation a blocked rank is parked on.
type pendingOp struct {
	kind     opKind
	peer     int
	tag      int64
	executed int64 // rank's dynamic instruction count at block time
}

// RankBlock attributes one blocked rank inside a DeadlockReport.
type RankBlock struct {
	// Rank is the blocked rank's id.
	Rank int `json:"rank"`
	// Op is the blocked operation kind ("send" or "recv").
	Op string `json:"op"`
	// Peer is the operation's partner rank; Tag its message tag.
	Peer int   `json:"peer"`
	Tag  int64 `json:"tag"`
	// MailboxFull marks a send parked on a full mailbox (the eager
	// buffer to Peer is exhausted and no one drains it).
	MailboxFull bool `json:"mailbox_full,omitempty"`
	// Executed is the rank's dynamic instruction count when it blocked
	// — deterministic, so reports are bit-identical across runs.
	Executed int64 `json:"executed"`
}

// String renders one line of attribution, e.g.
// "rank 2: recv from 0 tag 5 after 1042 instrs".
func (b RankBlock) String() string {
	dir := "from"
	if b.Op == "send" {
		dir = "to"
	}
	s := fmt.Sprintf("rank %d: %s %s %d tag %d after %d instrs", b.Rank, b.Op, dir, b.Peer, b.Tag, b.Executed)
	if b.MailboxFull {
		s += " (mailbox full)"
	}
	return s
}

// DeadlockReport is the structural-deadlock attribution produced by the
// rank supervisor: every blocked rank with its pending operation, plus
// the ranks that exited cleanly while peers still waited on them. Its
// content is a pure function of the program and configuration — no
// wall-clock value enters — so it is bit-identical across runs, worker
// counts, and checkpoint/resume.
type DeadlockReport struct {
	Blocked []RankBlock `json:"blocked"`
	Exited  []int       `json:"exited,omitempty"`
}

// Summary renders the report as a single line (journal- and
// log-friendly), preserving the per-rank attribution.
func (d *DeadlockReport) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "structural deadlock: %d rank(s) blocked", len(d.Blocked))
	if len(d.Exited) > 0 {
		fmt.Fprintf(&sb, ", %d exited", len(d.Exited))
	}
	for i, b := range d.Blocked {
		if i == 0 {
			sb.WriteString(" [")
		} else {
			sb.WriteString("; ")
		}
		sb.WriteString(b.String())
	}
	if len(d.Blocked) > 0 {
		sb.WriteString("]")
	}
	return sb.String()
}

// String renders a multi-line human-readable report (the CLI format).
func (d *DeadlockReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadlock report: %d rank(s) blocked, no operation can match\n", len(d.Blocked))
	for _, b := range d.Blocked {
		fmt.Fprintf(&sb, "  %s\n", b.String())
	}
	for _, r := range d.Exited {
		fmt.Fprintf(&sb, "  rank %d: exited cleanly\n", r)
	}
	return sb.String()
}

// supervisor tracks every rank's phase and pending operation and
// declares deadlock structurally: the instant no rank is running, at
// least one is blocked, no rank has trapped, and no pending operation
// can make progress. Every state transition that can complete the
// quiescence condition re-evaluates it, so detection is immediate (no
// timer is involved) and the declared configuration is the job's unique
// final quiescent state — which is what makes the report deterministic.
type supervisor struct {
	c *comm
	// deadlocked is closed exactly once, when deadlock is declared;
	// blocked operations select on it.
	deadlocked chan struct{}

	mu      sync.Mutex
	phase   []rankPhase
	ops     []pendingOp
	running int
	trapped bool // a rank trapped: the abort path owns the outcome
	report  *DeadlockReport
	// inflight[s][d] counts messages sent from s to d and not yet
	// received. The supervisor owns this accounting rather than
	// reading channel lengths because Go hands a message directly to
	// a parked receiver, bypassing the buffer: len(box) can read 0
	// while a delivery is in flight to a rank that has not yet
	// resumed, which would make a length-based progress check declare
	// a false deadlock. Updates are mutex-protected and the blocked
	// paths fold them into the same critical section as resume, so a
	// woken-but-not-yet-resumed rank always still appears progressable
	// to evaluate (see the soundness note there).
	inflight [][]int
}

func newSupervisor(c *comm, size int) *supervisor {
	s := &supervisor{
		c:          c,
		deadlocked: make(chan struct{}),
		phase:      make([]rankPhase, size),
		ops:        make([]pendingOp, size),
		running:    size,
		inflight:   make([][]int, size),
	}
	for i := range s.inflight {
		s.inflight[i] = make([]int, size)
	}
	return s
}

// sent records a fast-path (non-blocked) message delivery from src to
// dst. No re-evaluation: the sender is running, so the job is not
// quiescent.
func (s *supervisor) sent(src, dst int) {
	s.mu.Lock()
	s.inflight[src][dst]++
	s.mu.Unlock()
}

// received records a fast-path (non-blocked) message consumption.
func (s *supervisor) received(src, dst int) {
	s.mu.Lock()
	s.inflight[src][dst]--
	s.mu.Unlock()
}

// block records that a rank is about to park on an MPI operation and
// re-evaluates the deadlock condition.
func (s *supervisor) block(rank int, kind opKind, peer int, tag, executed int64) {
	s.mu.Lock()
	s.phase[rank] = phaseBlocked
	s.ops[rank] = pendingOp{kind: kind, peer: peer, tag: tag, executed: executed}
	s.running--
	s.evaluate()
	s.mu.Unlock()
}

// resumeSend records that a blocked rank's send completed: the message
// count and the phase change are one atomic step, so evaluate never
// observes a delivered-but-unaccounted message.
func (s *supervisor) resumeSend(rank, peer int) {
	s.mu.Lock()
	s.inflight[rank][peer]++
	s.phase[rank] = phaseRunning
	s.running++
	s.mu.Unlock()
}

// resumeRecv records that a blocked rank's receive completed.
func (s *supervisor) resumeRecv(rank, peer int) {
	s.mu.Lock()
	s.inflight[peer][rank]--
	s.phase[rank] = phaseRunning
	s.running++
	s.mu.Unlock()
}

// finish records a rank's termination: a clean exit re-evaluates the
// deadlock condition (peers may now be provably stuck waiting on the
// exited rank); a trap suppresses any future declaration — the abort
// path wakes the blocked peers and the primary trap is the outcome.
// finish is idempotent: blocked operations mark their own trap before
// unwinding, and the run loop marks every rank again once its goroutine
// returns.
func (s *supervisor) finish(rank int, trap Trap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.phase[rank] {
	case phaseExited, phaseTrapped:
		return
	case phaseRunning:
		s.running--
	}
	if trap == TrapNone {
		s.phase[rank] = phaseExited
		s.evaluate()
		return
	}
	s.phase[rank] = phaseTrapped
	s.trapped = true
}

// Report returns the deadlock attribution, or nil if no deadlock was
// declared.
func (s *supervisor) Report() *DeadlockReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// evaluate declares deadlock iff the job is structurally stuck. Called
// with mu held on every transition that can complete quiescence.
//
// Soundness (no false declaration): a rank whose blocked operation has
// completed at the channel but has not yet resumed always still looks
// progressable here — a woken receiver's in-hand message is still
// counted in inflight (decrement happens atomically with resume), and
// a woken sender's consumed buffer slot is not yet counted (increment
// happens atomically with resume), so its own inflight < cap. Fast-path
// ops are performed by running ranks, and running > 0 short-circuits.
//
// Completeness: when the job is truly quiescent (every rank parked or
// terminated, no wakes pending) inflight is exact, so the final
// transition into that state — which always runs evaluate — declares.
func (s *supervisor) evaluate() {
	if s.report != nil || s.trapped || s.running > 0 {
		return
	}
	blocked := 0
	for r, ph := range s.phase {
		if ph != phaseBlocked {
			continue
		}
		blocked++
		op := s.ops[r]
		switch op.kind {
		case opSend:
			// A parked send completes iff buffer space exists (a recv
			// drained the mailbox after the send parked).
			if s.inflight[r][op.peer] < cap(s.c.boxes[r][op.peer]) {
				return
			}
		case opRecv:
			// A parked recv completes iff a message is in flight to it
			// (buffered, or already handed off by the runtime).
			if s.inflight[op.peer][r] > 0 {
				return
			}
		}
	}
	if blocked == 0 {
		return // every rank exited cleanly: normal termination
	}
	rep := &DeadlockReport{}
	for r, ph := range s.phase {
		switch ph {
		case phaseBlocked:
			op := s.ops[r]
			rep.Blocked = append(rep.Blocked, RankBlock{
				Rank: r, Op: op.kind.String(), Peer: op.peer, Tag: op.tag,
				MailboxFull: op.kind == opSend,
				Executed:    op.executed,
			})
		case phaseExited:
			rep.Exited = append(rep.Exited, r)
		}
	}
	s.report = rep
	close(s.deadlocked)
}
