package interp

import (
	"math"
	"math/rand"
	"testing"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

// This file is the semantic oracle for the flat bytecode engine: a
// reference evaluator that walks the IR directly, block by block with
// phi resolution on block entry — the shape of the engine the bytecode
// lowering replaced. Every behavior the fault-injection layers depend
// on (trap taxonomy, dynamic instruction counts, injectable-instance
// ordering, site counts, single-bit injection, output buffers) is
// compared bit-for-bit between the reference walker and both
// specialized loops over randprog-generated programs.

// refInjectable mirrors fault.Injectable (fault imports interp, so the
// real predicate cannot be imported here): result-producing,
// non-terminator instructions except loads and phis, excluding
// protection checks.
func refInjectable(in *ir.Instr) bool {
	if !in.HasResult() || in.Op().IsTerminator() {
		return false
	}
	switch in.Op() {
	case ir.OpLoad, ir.OpPhi:
		return false
	}
	return in.Prot != ir.ProtCheck
}

// refMachine executes a single-rank module by walking the IR.
type refMachine struct {
	mem      *Memory
	budget   int64
	executed int64

	injectable       func(*ir.Instr) bool
	injectArmed      bool
	injectIndex      int64
	injectBit        int
	injectMask       uint64
	injectCorrelated bool
	injectSticky     bool
	injected         bool
	injectedSite     int
	injectedAt       int64
	injectedMask     uint64
	corruptions      int64

	injectableSeen int64
	countSites     bool
	siteCounts     []int64

	outputF  []float64
	outputI  []int64
	printLog []float64

	callDepth int
}

// refRun executes @main of m with the old engine's semantics and
// reports the outcome in the same Result shape as Run.
func refRun(m *ir.Module, cfg Config, injectable func(*ir.Instr) bool) *Result {
	if injectable == nil {
		injectable = func(*ir.Instr) bool { return false }
	}
	cfg = cfg.withDefaults()
	rm := &refMachine{
		mem:          NewMemory(cfg.HeapBytes, cfg.StackBytes),
		budget:       -1,
		injectable:   injectable,
		injectedSite: -1,
	}
	if cfg.MaxInstrs > 0 {
		rm.budget = cfg.MaxInstrs
	}
	if cfg.Fault != nil && cfg.Fault.Rank == 0 {
		rm.injectArmed = true
		rm.injectIndex = cfg.Fault.Index
		rm.injectBit = cfg.Fault.Bit
		rm.injectMask = cfg.Fault.Mask
		rm.injectCorrelated = cfg.Fault.Correlated
		rm.injectSticky = cfg.Fault.Sticky
	}
	if cfg.CountSites {
		rm.countSites = true
		rm.siteCounts = make([]int64, m.NumSites())
	}

	res := &Result{InjectedSite: -1, TrapRank: -1}
	func() {
		defer func() {
			if p := recover(); p != nil {
				tp, ok := p.(trapPanic)
				if !ok {
					panic(p)
				}
				res.Trap, res.TrapRank, res.TrapMsg = tp.trap, 0, tp.msg
			}
		}()
		rm.callFn(m.FuncByName("main"), nil)
	}()

	res.DynInstrs = []int64{rm.executed}
	res.TotalDyn = rm.executed
	res.MaxRankDyn = rm.executed
	res.Injectable = []int64{rm.injectableSeen}
	res.Injected = rm.injected
	if rm.injected {
		res.InjectedSite = rm.injectedSite
		res.InjectedAt = rm.injectedAt
		res.InjectedRankDyn = rm.executed
		res.InjectedMask = rm.injectedMask
		res.Corruptions = rm.corruptions
	}
	res.OutputF, res.OutputI, res.PrintLog = rm.outputF, rm.outputI, rm.printLog
	res.SiteCounts = rm.siteCounts
	return res
}

func (rm *refMachine) val(env map[ir.Value]Val, v ir.Value) Val {
	if c, ok := v.(*ir.Const); ok {
		if c.Type().IsFloat() {
			return FloatVal(c.Float)
		}
		return IntVal(c.Int)
	}
	return env[v]
}

func (rm *refMachine) callFn(f *ir.Func, args []Val) Val {
	if f.Builtin {
		return rm.builtin(f.Name(), args)
	}
	rm.callDepth++
	if rm.callDepth > maxCallDepth {
		panic(trapPanic{TrapStackOverflow, "call depth exceeded"})
	}
	sp := rm.mem.PushFrame()
	env := map[ir.Value]Val{}
	for i, prm := range f.Params() {
		if i < len(args) {
			env[prm] = args[i]
		}
	}

	blocks := f.Blocks()
	b := blocks[0]
	var prev *ir.Block
	for {
		// Phi resolution on block entry: parallel reads, then writes.
		phis := b.Phis()
		if prev != nil && len(phis) > 0 {
			vals := make([]Val, len(phis))
			for i, phi := range phis {
				for j, inc := range phi.Incoming {
					if inc == prev {
						vals[i] = rm.val(env, phi.Operand(j))
						break
					}
				}
			}
			for i, phi := range phis {
				env[phi] = vals[i]
			}
		}
		prev = b

		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi {
				continue
			}
			rm.executed++
			if rm.budget >= 0 {
				rm.budget--
				if rm.budget < 0 {
					panic(trapPanic{TrapBudget, "instruction budget exceeded"})
				}
			}
			if rm.countSites {
				rm.siteCounts[in.SiteID]++
			}
			switch in.Op() {
			case ir.OpBr:
				b = in.Targets[0]
			case ir.OpCondBr:
				if rm.val(env, in.Operand(0)).I != 0 {
					b = in.Targets[0]
				} else {
					b = in.Targets[1]
				}
			case ir.OpRet:
				var ret Val
				if in.NumOperands() > 0 {
					ret = rm.val(env, in.Operand(0))
				}
				rm.mem.PopFrame(sp)
				rm.callDepth--
				return ret
			case ir.OpTrap:
				raiseTrap(rm.val(env, in.Operand(0)).I)
			case ir.OpStore:
				v := rm.val(env, in.Operand(0))
				w := in.Operand(0).Type().Size()
				rm.mem.Store(rm.val(env, in.Operand(1)).I, w, v, in.Operand(0).Type().IsFloat())
			default:
				v := rm.evalInstr(env, in)
				if in.HasResult() && rm.injectable(in) {
					rm.injectableSeen++
					fired := false
					if rm.injectArmed && rm.injectableSeen-1 == rm.injectIndex {
						v, rm.injectedMask = CorruptValue(v, in.Type(), rm.injectBit, rm.injectMask, rm.injectCorrelated)
						rm.injected = true
						rm.injectedSite = in.SiteID
						rm.injectedAt = rm.executed
						rm.injectArmed = false
						rm.corruptions = 1
						fired = true
					}
					if !fired && rm.injectSticky && rm.injected && in.SiteID == rm.injectedSite {
						v, _ = CorruptValue(v, in.Type(), rm.injectBit, rm.injectMask, rm.injectCorrelated)
						rm.corruptions++
					}
				}
				if in.HasResult() {
					env[in] = v
				}
			}
			if in.Op().IsTerminator() {
				break
			}
		}
	}
}

func (rm *refMachine) evalInstr(env map[ir.Value]Val, in *ir.Instr) Val {
	op0 := func() Val { return rm.val(env, in.Operand(0)) }
	op1 := func() Val { return rm.val(env, in.Operand(1)) }
	t := in.Type()
	switch in.Op() {
	case ir.OpAdd:
		return IntVal(truncToType(t, op0().I+op1().I))
	case ir.OpSub:
		return IntVal(truncToType(t, op0().I-op1().I))
	case ir.OpMul:
		return IntVal(truncToType(t, op0().I*op1().I))
	case ir.OpSDiv:
		d := op1().I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer division by zero"})
		}
		if d == -1 {
			return IntVal(truncToType(t, -op0().I))
		}
		return IntVal(truncToType(t, op0().I/d))
	case ir.OpSRem:
		d := op1().I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer remainder by zero"})
		}
		if d == -1 {
			return IntVal(0)
		}
		return IntVal(truncToType(t, op0().I%d))
	case ir.OpFAdd:
		return FloatVal(op0().F + op1().F)
	case ir.OpFSub:
		return FloatVal(op0().F - op1().F)
	case ir.OpFMul:
		return FloatVal(op0().F * op1().F)
	case ir.OpFDiv:
		return FloatVal(op0().F / op1().F)
	case ir.OpAnd:
		return IntVal(truncToType(t, op0().I&op1().I))
	case ir.OpOr:
		return IntVal(truncToType(t, op0().I|op1().I))
	case ir.OpXor:
		return IntVal(truncToType(t, op0().I^op1().I))
	case ir.OpShl:
		return IntVal(truncToType(t, op0().I<<(uint64(op1().I)&63)))
	case ir.OpLShr:
		w := uint64(t.Bits())
		x := uint64(op0().I) & widthMask(w)
		return IntVal(truncToType(t, int64(x>>(uint64(op1().I)&(w-1)))))
	case ir.OpAShr:
		return IntVal(truncToType(t, op0().I>>(uint64(op1().I)&63)))
	case ir.OpICmp:
		return Bool(icmp(in.Pred, op0().I, op1().I))
	case ir.OpFCmp:
		return Bool(fcmp(in.Pred, op0().F, op1().F))
	case ir.OpLoad:
		return rm.mem.Load(op0().I, t.Size(), t.IsFloat())
	case ir.OpAlloca:
		return IntVal(rm.mem.Alloca(align8(t.Elem().Size() * in.AllocElems)))
	case ir.OpGEP:
		return IntVal(op0().I + op1().I*t.Elem().Size())
	case ir.OpAtomicRMW:
		addr := op0().I
		old := rm.mem.Load(addr, t.Size(), false)
		rm.mem.Store(addr, t.Size(), IntVal(old.I+op1().I), false)
		return old
	case ir.OpTrunc, ir.OpSExt:
		return IntVal(truncToType(t, op0().I))
	case ir.OpZExt:
		return IntVal(op0().I & int64(widthMask(uint64(in.Operand(0).Type().Bits()))))
	case ir.OpSIToFP:
		return FloatVal(float64(op0().I))
	case ir.OpFPToSI:
		return IntVal(truncToType(t, fpToInt(op0().F)))
	case ir.OpPtrToInt, ir.OpIntToPtr:
		return op0()
	case ir.OpBitcast:
		v := op0()
		if t == ir.I64 {
			return IntVal(int64(math.Float64bits(v.F)))
		}
		return FloatVal(math.Float64frombits(uint64(v.I)))
	case ir.OpSelect:
		if op0().I != 0 {
			return op1()
		}
		return rm.val(env, in.Operand(2))
	case ir.OpCall:
		args := make([]Val, in.NumOperands())
		for i := range args {
			args[i] = rm.val(env, in.Operand(i))
		}
		return rm.callFn(in.Callee, args)
	}
	panic(trapPanic{TrapAbort, "unknown opcode " + in.Op().String()})
}

func (rm *refMachine) builtin(name string, args []Val) Val {
	switch name {
	case "sqrt":
		return FloatVal(math.Sqrt(args[0].F))
	case "sin":
		return FloatVal(math.Sin(args[0].F))
	case "cos":
		return FloatVal(math.Cos(args[0].F))
	case "exp":
		return FloatVal(math.Exp(args[0].F))
	case "log":
		return FloatVal(math.Log(args[0].F))
	case "pow":
		return FloatVal(math.Pow(args[0].F, args[1].F))
	case "fabs":
		return FloatVal(math.Abs(args[0].F))
	case "floor":
		return FloatVal(math.Floor(args[0].F))
	case "fmin":
		return FloatVal(math.Min(args[0].F, args[1].F))
	case "fmax":
		return FloatVal(math.Max(args[0].F, args[1].F))
	case "malloc_f64", "malloc_i64":
		return IntVal(rm.mem.Malloc(args[0].I * 8))
	case "out_f64":
		idx := args[0].I
		if idx < 0 || idx > 1<<24 {
			panic(trapPanic{TrapAbort, "bad output index"})
		}
		for int64(len(rm.outputF)) <= idx {
			rm.outputF = append(rm.outputF, 0)
		}
		rm.outputF[idx] = args[1].F
		return Val{}
	case "out_i64":
		idx := args[0].I
		if idx < 0 || idx > 1<<24 {
			panic(trapPanic{TrapAbort, "bad output index"})
		}
		for int64(len(rm.outputI)) <= idx {
			rm.outputI = append(rm.outputI, 0)
		}
		rm.outputI[idx] = args[1].I
		return Val{}
	case "assert_true":
		if args[0].I == 0 {
			panic(trapPanic{TrapAbort, "assertion failed"})
		}
		return Val{}
	case "print_f64":
		rm.printLog = append(rm.printLog, args[0].F)
		return Val{}
	case "print_i64":
		rm.printLog = append(rm.printLog, float64(args[0].I))
		return Val{}
	}
	panic(trapPanic{TrapAbort, "reference engine: unsupported builtin @" + name})
}

// --- comparison helpers ----------------------------------------------------

func diffCompare(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Trap != got.Trap {
		t.Fatalf("%s: trap: ref %v, engine %v (%s)", label, want.Trap, got.Trap, got.TrapMsg)
	}
	if want.TotalDyn != got.TotalDyn {
		t.Fatalf("%s: dynamic count: ref %d, engine %d", label, want.TotalDyn, got.TotalDyn)
	}
	if want.Injectable[0] != got.Injectable[0] {
		t.Fatalf("%s: injectable population: ref %d, engine %d", label, want.Injectable[0], got.Injectable[0])
	}
	if want.Injected != got.Injected || want.InjectedSite != got.InjectedSite || want.InjectedAt != got.InjectedAt {
		t.Fatalf("%s: injection: ref (%v site %d at %d), engine (%v site %d at %d)", label,
			want.Injected, want.InjectedSite, want.InjectedAt,
			got.Injected, got.InjectedSite, got.InjectedAt)
	}
	if want.InjectedMask != got.InjectedMask || want.Corruptions != got.Corruptions {
		t.Fatalf("%s: corruption: ref (mask %#x, %d applications), engine (mask %#x, %d applications)", label,
			want.InjectedMask, want.Corruptions, got.InjectedMask, got.Corruptions)
	}
	if len(want.OutputF) != len(got.OutputF) || len(want.OutputI) != len(got.OutputI) {
		t.Fatalf("%s: output lengths: ref (%d f, %d i), engine (%d f, %d i)", label,
			len(want.OutputF), len(want.OutputI), len(got.OutputF), len(got.OutputI))
	}
	for i := range want.OutputF {
		if math.Float64bits(want.OutputF[i]) != math.Float64bits(got.OutputF[i]) {
			t.Fatalf("%s: OutputF[%d]: ref %v, engine %v", label, i, want.OutputF[i], got.OutputF[i])
		}
	}
	for i := range want.OutputI {
		if want.OutputI[i] != got.OutputI[i] {
			t.Fatalf("%s: OutputI[%d]: ref %d, engine %d", label, i, want.OutputI[i], got.OutputI[i])
		}
	}
	if len(want.PrintLog) != len(got.PrintLog) {
		t.Fatalf("%s: print log length: ref %d, engine %d", label, len(want.PrintLog), len(got.PrintLog))
	}
	for i := range want.PrintLog {
		if math.Float64bits(want.PrintLog[i]) != math.Float64bits(got.PrintLog[i]) {
			t.Fatalf("%s: PrintLog[%d]: ref %v, engine %v", label, i, want.PrintLog[i], got.PrintLog[i])
		}
	}
	if want.SiteCounts != nil || got.SiteCounts != nil {
		if len(want.SiteCounts) != len(got.SiteCounts) {
			t.Fatalf("%s: site-count lengths: ref %d, engine %d", label, len(want.SiteCounts), len(got.SiteCounts))
		}
		for s := range want.SiteCounts {
			if want.SiteCounts[s] != got.SiteCounts[s] {
				t.Fatalf("%s: SiteCounts[%d]: ref %d, engine %d", label, s, want.SiteCounts[s], got.SiteCounts[s])
			}
		}
	}
}

func diffModule(t *testing.T, seed int64) *ir.Module {
	t.Helper()
	m, err := lang.Compile(lang.RandomProgram(seed))
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	return m
}

const diffBudget = 500_000_000

// TestDifferentialGolden compares golden (fault-free) runs between the
// reference walker and both engine loops: the fast loop (plain config)
// and the full loop (site counting + budget armed).
func TestDifferentialGolden(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= seeds; seed++ {
		m := diffModule(t, seed)
		p, err := Compile(m, refInjectable)
		if err != nil {
			t.Fatalf("seed %d: engine compile: %v", seed, err)
		}

		ref := refRun(m, Config{}, refInjectable)
		fast := Run(p, Config{})
		diffCompare(t, "fast", ref, fast)

		refFull := refRun(m, Config{CountSites: true, MaxInstrs: diffBudget}, refInjectable)
		full := Run(p, Config{CountSites: true, MaxInstrs: diffBudget})
		diffCompare(t, "full", refFull, full)

		// The two specialized loops must also agree with each other.
		diffCompare(t, "fast-vs-full", &Result{
			Trap: fast.Trap, TotalDyn: fast.TotalDyn, Injectable: fast.Injectable,
			InjectedSite: -1, OutputF: fast.OutputF, OutputI: fast.OutputI,
			PrintLog: fast.PrintLog, SiteCounts: full.SiteCounts,
		}, full)
	}
}

// TestDifferentialInjection compares armed single-bit injection runs:
// identical Injected/InjectedSite/InjectedAt, traps, dynamic counts and
// outputs between the reference walker and the instrumented loop.
func TestDifferentialInjection(t *testing.T) {
	seeds := int64(12)
	trials := 24
	if testing.Short() {
		seeds, trials = 4, 8
	}
	for seed := int64(1); seed <= seeds; seed++ {
		m := diffModule(t, seed)
		p, err := Compile(m, refInjectable)
		if err != nil {
			t.Fatalf("seed %d: engine compile: %v", seed, err)
		}
		golden := Run(p, Config{})
		if golden.Trap != TrapNone {
			t.Fatalf("seed %d: golden trap %v", seed, golden.Trap)
		}
		pop := golden.Injectable[0]
		if pop == 0 {
			continue
		}
		budget := golden.MaxRankDyn*10 + 1_000_000
		rng := rand.New(rand.NewSource(seed * 7919))
		for k := 0; k < trials; k++ {
			plan := &FaultPlan{Rank: 0, Index: rng.Int63n(pop), Bit: rng.Intn(64)}
			cfg := Config{Fault: plan, MaxInstrs: budget}
			ref := refRun(m, cfg, refInjectable)
			got := Run(p, cfg)
			if !ref.Injected {
				t.Fatalf("seed %d trial %d: reference did not inject (index %d, pop %d)",
					seed, k, plan.Index, pop)
			}
			diffCompare(t, "armed", ref, got)
		}
	}
}

// TestDifferentialErrorModels compares armed runs across the error-model
// parameter space — multi-bit masks, value-correlated flips, and sticky
// per-site faults — between the reference walker and the instrumented
// loop. Random draws mimic the fault package's built-in models without
// importing it (fault imports interp).
func TestDifferentialErrorModels(t *testing.T) {
	seeds := int64(8)
	trials := 12
	if testing.Short() {
		seeds, trials = 3, 6
	}
	draws := []func(rng *rand.Rand, plan *FaultPlan){
		func(rng *rand.Rand, plan *FaultPlan) { // burst-3
			start := rng.Intn(64)
			plan.Bit = start
			for i := 0; i < 3; i++ {
				plan.Mask |= 1 << uint((start+i)%64)
			}
		},
		func(rng *rand.Rand, plan *FaultPlan) { // random-k
			for i := 0; i < 3; i++ {
				plan.Mask |= 1 << uint(rng.Intn(64))
			}
			plan.Bit = rng.Intn(64)
		},
		func(rng *rand.Rand, plan *FaultPlan) { // correlated
			plan.Bit = rng.Intn(64)
			plan.Correlated = true
		},
		func(rng *rand.Rand, plan *FaultPlan) { // sticky
			plan.Bit = rng.Intn(64)
			plan.Sticky = true
		},
	}
	for seed := int64(1); seed <= seeds; seed++ {
		m := diffModule(t, seed)
		p, err := Compile(m, refInjectable)
		if err != nil {
			t.Fatalf("seed %d: engine compile: %v", seed, err)
		}
		golden := Run(p, Config{})
		if golden.Trap != TrapNone {
			t.Fatalf("seed %d: golden trap %v", seed, golden.Trap)
		}
		pop := golden.Injectable[0]
		if pop == 0 {
			continue
		}
		budget := golden.MaxRankDyn*10 + 1_000_000
		rng := rand.New(rand.NewSource(seed * 6121))
		for k := 0; k < trials; k++ {
			plan := &FaultPlan{Rank: 0, Index: rng.Int63n(pop)}
			draws[k%len(draws)](rng, plan)
			cfg := Config{Fault: plan, MaxInstrs: budget}
			ref := refRun(m, cfg, refInjectable)
			got := Run(p, cfg)
			if !ref.Injected {
				t.Fatalf("seed %d trial %d: reference did not inject (plan %+v, pop %d)",
					seed, k, plan, pop)
			}
			diffCompare(t, "model-armed", ref, got)
		}
	}
}

// FuzzDifferential fuzzes (program seed, injection index, bit, mask,
// flags) tuples — flags bit 0 arms value-correlated flips, bit 1 arms
// sticky re-corruption — so the fuzzer explores the full error-model
// plan space. The corpus entries run as part of normal `go test`.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint64(0), uint8(0), uint64(0), uint8(0))
	f.Add(int64(2), uint64(17), uint8(63), uint64(0), uint8(0))
	f.Add(int64(3), uint64(999), uint8(31), uint64(0x7000000000000001), uint8(0))
	f.Add(int64(7), uint64(123456), uint8(7), uint64(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, idxRaw uint64, bit uint8, mask uint64, flags uint8) {
		m, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Skip()
		}
		p, err := Compile(m, refInjectable)
		if err != nil {
			t.Skip()
		}
		golden := Run(p, Config{})
		ref := refRun(m, Config{}, refInjectable)
		diffCompare(t, "fuzz-golden", ref, golden)
		if golden.Trap != TrapNone || golden.Injectable[0] == 0 {
			return
		}
		pop := golden.Injectable[0]
		plan := &FaultPlan{
			Rank: 0, Index: int64(idxRaw % uint64(pop)), Bit: int(bit % 64),
			Mask: mask, Correlated: flags&1 != 0, Sticky: flags&2 != 0,
		}
		cfg := Config{Fault: plan, MaxInstrs: golden.MaxRankDyn*10 + 1_000_000}
		diffCompare(t, "fuzz-armed", refRun(m, cfg, refInjectable), Run(p, cfg))
	})
}
