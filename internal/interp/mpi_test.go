package interp

import (
	"testing"
	"time"

	"ipas/internal/lang"
)

func compileSci(t *testing.T, src string) *Program {
	t.Helper()
	m, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMPISendRecvRing(t *testing.T) {
	// Each rank sends its id to the next rank around a ring and adds
	// what it receives; rank 0 reports the total via allreduce.
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	var np int = mpi_size();
	var next int = (rank + 1) % np;
	var prev int = (rank + np - 1) % np;
	mpi_send_i64(next, 5, rank * 10);
	var got int = mpi_recv_i64(prev, 5);
	var total int = mpi_allreduce_i64(got, 0);
	if (rank == 0) {
		out_i64(0, total);
	}
}
`)
	res := Run(p, Config{Ranks: 5})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputI[0] != (0+1+2+3+4)*10 {
		t.Fatalf("total = %d, want 100", res.OutputI[0])
	}
}

func TestMPIVectorSendRecv(t *testing.T) {
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	var buf *float = malloc_f64(4);
	if (rank == 0) {
		for (var i int = 0; i < 4; i = i + 1) {
			buf[i] = float(i) * 2.5;
		}
		mpi_send_f64s(1, 9, buf, 4);
	}
	if (rank == 1) {
		mpi_recv_f64s(0, 9, buf, 4);
		var s float = 0.0;
		for (var i int = 0; i < 4; i = i + 1) {
			s = s + buf[i];
		}
		mpi_send_f64(0, 10, s);
	}
	if (rank == 0) {
		out_f64(0, mpi_recv_f64(1, 10));
	}
}
`)
	res := Run(p, Config{Ranks: 2})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputF[0] != 15 {
		t.Fatalf("sum = %v, want 15", res.OutputF[0])
	}
}

func TestMPIBcastAndReduceOps(t *testing.T) {
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	var v float = float(rank + 1);
	var mn float = mpi_allreduce_f64(v, 1);
	var mx float = mpi_allreduce_f64(v, 2);
	var root float = 0.0;
	if (rank == 2) {
		root = 42.5;
	}
	var bc float = mpi_bcast_f64(root, 2);
	var imn int = mpi_allreduce_i64(rank, 1);
	var imx int = mpi_allreduce_i64(rank, 2);
	var ibc int = mpi_bcast_i64(rank * 7, 1);
	if (rank == 0) {
		out_f64(0, mn);
		out_f64(1, mx);
		out_f64(2, bc);
		out_i64(0, imn);
		out_i64(1, imx);
		out_i64(2, ibc);
	}
}
`)
	res := Run(p, Config{Ranks: 4})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputF[0] != 1 || res.OutputF[1] != 4 || res.OutputF[2] != 42.5 {
		t.Fatalf("float collectives = %v", res.OutputF)
	}
	if res.OutputI[0] != 0 || res.OutputI[1] != 3 || res.OutputI[2] != 7 {
		t.Fatalf("int collectives = %v", res.OutputI)
	}
}

func TestMPIInvalidPeerAborts(t *testing.T) {
	p := compileSci(t, `
func main() {
	mpi_send_i64(99, 1, 5);
}
`)
	res := Run(p, Config{Ranks: 2})
	if res.Trap != TrapAbort {
		t.Fatalf("trap = %v, want abort for invalid peer", res.Trap)
	}
}

func TestMPITagMismatchAborts(t *testing.T) {
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 0) {
		mpi_send_i64(1, 5, 1);
	}
	if (rank == 1) {
		var x int = mpi_recv_i64(0, 6);
		out_i64(0, x);
	}
}
`)
	res := Run(p, Config{Ranks: 2})
	if res.Trap != TrapAbort {
		t.Fatalf("trap = %v, want abort for tag mismatch", res.Trap)
	}
}

func TestMPIDeadlockDetected(t *testing.T) {
	// Both ranks receive first: classic deadlock. Detection is
	// structural (the rank supervisor declares it the instant both
	// ranks are blocked), so it must be instant even with an
	// effectively infinite watchdog.
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	var peer int = 1 - rank;
	var v int = mpi_recv_i64(peer, 1);
	mpi_send_i64(peer, 1, v);
}
`)
	start := time.Now()
	res := Run(p, Config{Ranks: 2, Watchdog: time.Hour})
	if res.Trap != TrapDeadlock {
		t.Fatalf("trap = %v, want deadlock", res.Trap)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("structural detection took %v — it must not wait on any timer", elapsed)
	}
	rep := res.Deadlock
	if rep == nil {
		t.Fatal("deadlock declared but Result.Deadlock is nil")
	}
	if len(rep.Blocked) != 2 || len(rep.Exited) != 0 {
		t.Fatalf("report = %+v, want both ranks blocked, none exited", rep)
	}
	for i, b := range rep.Blocked {
		if b.Rank != i || b.Op != "recv" || b.Peer != 1-i || b.Tag != 1 {
			t.Fatalf("blocked[%d] = %+v, want rank %d recv from %d tag 1", i, b, i, 1-i)
		}
	}
	if res.TrapRank != 0 {
		t.Fatalf("trap rank = %d, want deterministic lowest blocked rank 0", res.TrapRank)
	}
}

func TestMPIRankTrapAbortsJob(t *testing.T) {
	// Rank 1 divides by zero while rank 0 waits on it: the whole job
	// must abort with the primary trap recorded (the paper's §4.4.1
	// symptom-propagation behaviour).
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 1) {
		var z int = rank - 1;
		out_i64(0, 5 / (z - 0));
	} else {
		var v int = mpi_recv_i64(1, 3);
		out_i64(1, v);
	}
}
`)
	res := Run(p, Config{Ranks: 2, Watchdog: 5 * time.Second})
	if res.Trap != TrapDivZero {
		t.Fatalf("trap = %v (rank %d), want div-by-zero from rank 1", res.Trap, res.TrapRank)
	}
	if res.TrapRank != 1 {
		t.Fatalf("trap rank = %d, want 1", res.TrapRank)
	}
}

func TestMPIDeterministicAcrossRuns(t *testing.T) {
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	var np int = mpi_size();
	var acc float = 0.0;
	for (var i int = 0; i < 50; i = i + 1) {
		acc = acc + mpi_allreduce_f64(float(rank * i), 0);
	}
	if (rank == 0) {
		out_f64(0, acc);
		out_f64(1, float(np));
	}
}
`)
	r1 := Run(p, Config{Ranks: 4})
	r2 := Run(p, Config{Ranks: 4})
	if r1.Trap != TrapNone || r2.Trap != TrapNone {
		t.Fatalf("traps: %v %v", r1.Trap, r2.Trap)
	}
	if r1.OutputF[0] != r2.OutputF[0] || r1.TotalDyn != r2.TotalDyn {
		t.Fatal("multi-rank execution not deterministic")
	}
}
