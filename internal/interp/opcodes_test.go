package interp

import (
	"math"
	"testing"
)

// evalI64 runs a one-off IR main that computes the expression and
// returns it through the output buffer.
func evalI64(t *testing.T, body string) int64 {
	t.Helper()
	src := `
builtin @out_i64(i64, i64) void
func @main() void {
entry:
` + body + `
  call void @out_i64(i64 0, i64 %r)
  ret void
}
`
	res := runIR(t, src, Config{})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v (%s)", res.Trap, res.TrapMsg)
	}
	return res.OutputI[0]
}

func evalF64(t *testing.T, body string) float64 {
	t.Helper()
	src := `
builtin @out_f64(i64, f64) void
func @main() void {
entry:
` + body + `
  call void @out_f64(i64 0, f64 %r)
  ret void
}
`
	res := runIR(t, src, Config{})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v (%s)", res.Trap, res.TrapMsg)
	}
	return res.OutputF[0]
}

func TestIntegerOpcodes(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"  %r = add i64 7, 5", 12},
		{"  %r = sub i64 7, 5", 2},
		{"  %r = mul i64 -3, 5", -15},
		{"  %r = sdiv i64 -7, 2", -3},
		{"  %r = srem i64 -7, 2", -1},
		{"  %r = and i64 12, 10", 8},
		{"  %r = or i64 12, 10", 14},
		{"  %r = xor i64 12, 10", 6},
		{"  %r = shl i64 3, 4", 48},
		{"  %r = ashr i64 -16, 2", -4},
		{"  %r = lshr i64 -1, 60", 15},
		// Shift counts are masked, not UB.
		{"  %r = shl i64 1, 64", 1},
		{"  %r = shl i64 1, 65", 2},
		// Narrow types wrap.
		{"  %a = add i32 2147483647, 1\n  %r = sext i32 %a to i64", math.MinInt32},
		{"  %a = add i8 127, 1\n  %r = sext i8 %a to i64", -128},
		{"  %a = add i8 -1, 0\n  %r = zext i8 %a to i64", 255},
		{"  %a = add i64 511, 0\n  %b = trunc i64 %a to i8\n  %r = sext i8 %b to i64", -1},
		// Comparisons produce 0/1.
		{"  %c = icmp le i64 3, 3\n  %r = zext i1 %c to i64", 1},
		{"  %c = icmp gt i64 3, 3\n  %r = zext i1 %c to i64", 0},
		// Select.
		{"  %c = icmp ne i64 1, 0\n  %r = select %c, i64 11, 22", 11},
		{"  %c = icmp eq i64 1, 0\n  %r = select %c, i64 11, 22", 22},
		// fptosi saturation semantics.
		{"  %r = fptosi f64 1.9 to i64", 1},
		{"  %r = fptosi f64 -1.9 to i64", -1},
		// bitcast roundtrip: f64 1.0 bits.
		{"  %r = bitcast f64 1.0 to i64", 0x3FF0000000000000},
	}
	for _, c := range cases {
		if got := evalI64(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestFloatOpcodes(t *testing.T) {
	cases := []struct {
		body string
		want float64
	}{
		{"  %r = fadd f64 1.5, 2.25", 3.75},
		{"  %r = fsub f64 1.5, 2.25", -0.75},
		{"  %r = fmul f64 1.5, 2.0", 3.0},
		{"  %r = fdiv f64 1.0, 4.0", 0.25},
		{"  %r = sitofp i64 -3 to f64", -3},
		{"  %a = bitcast f64 2.5 to i64\n  %r = bitcast i64 %a to f64", 2.5},
		// Division by zero yields infinity, not a trap (IEEE).
		{"  %r = fdiv f64 1.0, 0.0", math.Inf(1)},
	}
	for _, c := range cases {
		if got := evalF64(t, c.body); got != c.want {
			t.Errorf("%q = %v, want %v", c.body, got, c.want)
		}
	}
	// NaN comparison semantics: eq false, ne true.
	body := `  %nan = fdiv f64 0.0, 0.0
  %e = fcmp eq f64 %nan, %nan
  %n = fcmp ne f64 %nan, %nan
  %ei = zext i1 %e to i64
  %ni = zext i1 %n to i64
  %r = add i64 %ei, %ni`
	if got := evalI64(t, body); got != 1 {
		t.Errorf("NaN cmp semantics: eq+ne = %d, want 1", got)
	}
}

func TestAtomicRMW(t *testing.T) {
	src := `
builtin @out_i64(i64, i64) void
func @main() void {
entry:
  %p = alloca i64, 1
  store i64 40, %p
  %old = atomicrmw i64* %p, 2
  %new = load i64* %p
  call void @out_i64(i64 0, i64 %old)
  call void @out_i64(i64 1, i64 %new)
  ret void
}
`
	res := runIR(t, src, Config{})
	if res.Trap != TrapNone {
		t.Fatal(res.Trap)
	}
	if res.OutputI[0] != 40 || res.OutputI[1] != 42 {
		t.Fatalf("atomicrmw: old=%d new=%d", res.OutputI[0], res.OutputI[1])
	}
}

func TestNarrowMemoryAccess(t *testing.T) {
	// i8 and i32 loads/stores honor their width and sign.
	src := `
builtin @out_i64(i64, i64) void
func @main() void {
entry:
  %p8 = alloca i8, 8
  %v8 = add i8 -1, 0
  store i8 %v8, %p8
  %l8 = load i8* %p8
  %x8 = sext i8 %l8 to i64
  call void @out_i64(i64 0, i64 %x8)
  %p32 = alloca i32, 2
  %v32 = add i32 -123456, 0
  store i32 %v32, %p32
  %l32 = load i32* %p32
  %x32 = sext i32 %l32 to i64
  call void @out_i64(i64 1, i64 %x32)
  ret void
}
`
	res := runIR(t, src, Config{})
	if res.Trap != TrapNone {
		t.Fatal(res.Trap)
	}
	if res.OutputI[0] != -1 || res.OutputI[1] != -123456 {
		t.Fatalf("narrow accesses: %v", res.OutputI)
	}
}
