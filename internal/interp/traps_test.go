package interp

import (
	"testing"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

// runIR parses, verifies, compiles and runs an IR module source.
func runIR(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m.AssignSiteIDs()
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Run(p, cfg)
}

func TestTrapNullDeref(t *testing.T) {
	res := runIR(t, `
func @main() void {
entry:
  %p = inttoptr i64 8 to i64*
  %v = load i64* %p
  ret void
}
`, Config{})
	if res.Trap != TrapNull {
		t.Fatalf("trap = %v, want null-deref", res.Trap)
	}
}

func TestTrapOutOfBounds(t *testing.T) {
	res := runIR(t, `
func @main() void {
entry:
  %p = inttoptr i64 999999999999 to i64*
  store i64 1, %p
  ret void
}
`, Config{})
	if res.Trap != TrapOOB {
		t.Fatalf("trap = %v, want out-of-bounds", res.Trap)
	}
}

func TestTrapUnaligned(t *testing.T) {
	res := runIR(t, `
func @main() void {
entry:
  %a = alloca i64, 4
  %pi = ptrtoint i64* %a to i64
  %off = add i64 %pi, 3
  %p = inttoptr i64 %off to i64*
  %v = load i64* %p
  ret void
}
`, Config{})
	if res.Trap != TrapUnaligned {
		t.Fatalf("trap = %v, want unaligned", res.Trap)
	}
}

func TestTrapDivAndRemByZero(t *testing.T) {
	for _, op := range []string{"sdiv", "srem"} {
		res := runIR(t, `
func @main() void {
entry:
  %z = sub i64 1, 1
  %v = `+op+` i64 10, %z
  ret void
}
`, Config{})
		if res.Trap != TrapDivZero {
			t.Fatalf("%s: trap = %v, want div-by-zero", op, res.Trap)
		}
	}
}

func TestDivOverflowDefined(t *testing.T) {
	// INT64_MIN / -1 must not panic the host; it wraps.
	res := runIR(t, `
func @main() void {
entry:
  %min = shl i64 1, 63
  %m1 = sub i64 0, 1
  %v = sdiv i64 %min, %m1
  %r = srem i64 %min, %m1
  ret void
}
`, Config{})
	if res.Trap != TrapNone {
		t.Fatalf("trap = %v, want clean run", res.Trap)
	}
}

func TestTrapStackOverflowRecursion(t *testing.T) {
	src := `
func rec(n int) int {
	return rec(n + 1);
}
func main() {
	out_i64(0, rec(0));
}
`
	m, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{})
	if res.Trap != TrapStackOverflow {
		t.Fatalf("trap = %v, want stack overflow", res.Trap)
	}
}

func TestTrapStackOverflowAlloca(t *testing.T) {
	res := runIR(t, `
func @main() void {
entry:
  %a = alloca f64, 10000000
  ret void
}
`, Config{StackBytes: 1 << 16})
	if res.Trap != TrapStackOverflow {
		t.Fatalf("trap = %v, want stack overflow", res.Trap)
	}
}

func TestTrapOutOfMemory(t *testing.T) {
	src := `
func main() {
	for (var i int = 0; i < 1000000; i = i + 1) {
		var p *float = malloc_f64(1048576);
		p[0] = 1.0;
	}
}
`
	m, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{HeapBytes: 1 << 22})
	if res.Trap != TrapOOM {
		t.Fatalf("trap = %v, want out-of-memory", res.Trap)
	}
}

func TestAssertTrap(t *testing.T) {
	src := `
func main() {
	assert_true(1 == 2);
}
`
	m, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{})
	if res.Trap != TrapAbort {
		t.Fatalf("trap = %v, want abort", res.Trap)
	}
}

func TestStackFrameReuse(t *testing.T) {
	// Allocas must be released on return: a function with a big alloca
	// called many times must not exhaust the stack.
	src := `
func work(n int) float {
	var buf *float = malloc_f64(8); // heap, fine
	var acc float = 0.0;
	for (var i int = 0; i < 8; i = i + 1) {
		buf[i] = float(n + i);
		acc = acc + buf[i];
	}
	return acc;
}
func main() {
	var s float = 0.0;
	for (var i int = 0; i < 100; i = i + 1) {
		s = s + work(i);
	}
	out_f64(0, s);
}
`
	m, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{HeapBytes: 1 << 20})
	if res.Trap != TrapOOM {
		// 100 iterations x 64 bytes = 6.4 KB: fits in 1 MiB heap, so
		// the run must be clean — this guards the bump allocator
		// accounting, not frame reuse.
		if res.Trap != TrapNone {
			t.Fatalf("trap = %v", res.Trap)
		}
	}
	want := 0.0
	for i := 0; i < 100; i++ {
		for j := 0; j < 8; j++ {
			want += float64(i + j)
		}
	}
	if res.OutputF[0] != want {
		t.Fatalf("sum = %v, want %v", res.OutputF[0], want)
	}
}

func TestZeroInitializedMemory(t *testing.T) {
	res := runIR(t, `
func @main() void {
entry:
  %a = alloca i64, 4
  %v = load i64* %a
  %p = gep i64* %a, 3
  %w = load i64* %p
  %s = add i64 %v, %w
  ret void
}
`, Config{})
	if res.Trap != TrapNone {
		t.Fatalf("trap = %v", res.Trap)
	}
}
