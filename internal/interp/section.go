package interp

import (
	"fmt"
	"math"

	"ipas/internal/ir"
	"ipas/internal/slicer"
)

// This file projects an ir.Sections partition onto a compiled Program
// and implements the runtime side of sectioned campaigns:
//
//   - SectionTables maps every pc of every function onto its section
//     and precomputes, for each block head, the frame slots that are
//     live into the block (via slicer's SSA liveness). Both are pure
//     functions of the IR, so golden and trial runs agree exactly.
//
//   - SectionTrace is what a golden capture run records: per-section
//     injectable-instance populations, instance (entry) counts, and a
//     boundary digest at each instance exit. A trial targeted at one
//     section compares its own boundary digest at the injected
//     instance's first exit against the golden digest; a match means
//     the architectural state visible to the rest of the run is
//     byte-identical to the fault-free run, so the suffix is the golden
//     suffix and the trial is Masked without executing it.
//
// The digest folds, in execution order from the start of the run, every
// event through which state escapes a section: stores (address and
// payload), atomic RMWs, heap allocations, output and print builtins,
// and MPI payloads. At the boundary it additionally folds the heap and
// stack pointers and the live-in slots of the target block. Equality is
// therefore sound up to 64-bit hash collision: matching digests imply
// matching memory images (same store sequence), matching live
// registers, and matching observable output so far.
//
// Early exit is only armed for single-rank runs: a rank that stops at a
// section boundary would otherwise leave MPI peers blocked.
type SectionTables struct {
	// Secs is the underlying IR partition.
	Secs *ir.Sections

	byFunc map[*progFunc]*funcSections
}

// NumSections returns the module-wide section count.
func (t *SectionTables) NumSections() int { return len(t.Secs.All) }

// funcSections is the per-function projection.
type funcSections struct {
	// id is a dense process-independent function index; it enters the
	// boundary digest instead of a pointer so digests are reproducible.
	id int32
	// pcSec maps each pc onto its module-global section ID.
	pcSec []int32
	// liveIn is indexed by pc and non-nil only at block-start pcs: the
	// frame slots (ascending) of values live into that block.
	liveIn [][]int32
}

// NewSectionTables builds the runtime section tables for a compiled
// program from its module's partition. secs must come from the same
// module the program was compiled from.
func NewSectionTables(p *Program, secs *ir.Sections) (*SectionTables, error) {
	t := &SectionTables{Secs: secs, byFunc: map[*progFunc]*funcSections{}}

	// Block -> module-global section ID, across all functions.
	blockSec := map[*ir.Block]int32{}
	for _, s := range secs.All {
		for _, b := range s.Blocks {
			blockSec[b] = int32(s.ID)
		}
	}

	var fid int32
	for _, f := range p.mod.Funcs() {
		if f.Builtin {
			continue
		}
		pf := p.funcs[f]
		if pf == nil || len(pf.code) == 0 {
			continue
		}
		fs := &funcSections{
			id:     fid,
			pcSec:  make([]int32, len(pf.code)),
			liveIn: make([][]int32, len(pf.code)),
		}
		fid++

		// Recover the frame slot map the compiler used: parameters
		// first, then result-producing instructions in block order.
		slot := map[ir.Value]int32{}
		var n int32
		for _, prm := range f.Params() {
			slot[prm] = n
			n++
		}
		blocks := f.Blocks()
		for _, b := range blocks {
			for _, in := range b.Instrs() {
				if in.HasResult() {
					slot[in] = n
					n++
				}
			}
		}

		live := slicer.NewLiveness(f)
		if len(pf.blockOf) != len(pf.code) {
			return nil, fmt.Errorf("interp: @%s has no block table (compiled by an older path?)", f.Name())
		}
		for pc := range pf.code {
			b := blocks[pf.blockOf[pc]]
			sec, ok := blockSec[b]
			if !ok {
				return nil, fmt.Errorf("interp: block %%%s of @%s missing from section partition", b.Name(), f.Name())
			}
			fs.pcSec[pc] = sec
			if pc == 0 || pf.blockOf[pc] != pf.blockOf[pc-1] {
				var slots []int32
				for _, v := range live.LiveIn(b) {
					if s, ok := slot[v]; ok {
						slots = append(slots, s)
					}
				}
				// LiveIn is name-sorted; re-sort by slot for a canonical
				// fold order tied to the frame layout.
				for i := 1; i < len(slots); i++ {
					for j := i; j > 0 && slots[j] < slots[j-1]; j-- {
						slots[j], slots[j-1] = slots[j-1], slots[j]
					}
				}
				fs.liveIn[pc] = slots
			}
		}
		t.byFunc[pf] = fs
	}
	return t, nil
}

// SectionConfig arms section tracking on a run (Config.Sections).
type SectionConfig struct {
	// Tables is the program's section projection (required).
	Tables *SectionTables
	// Capture records a SectionTrace on rank 0 (golden runs).
	Capture bool
	// Golden, when non-nil, enables early-masked exit: a faulty run
	// whose boundary digest at the injected instance's first section
	// exit matches the golden digest stops immediately and reports
	// Result.EarlyMasked.
	Golden *SectionTrace
}

// SectionTrace is the boundary record of one golden run.
type SectionTrace struct {
	// Pops is the per-section injectable dynamic-instance population:
	// the (section x site x occurrence) sampling space.
	Pops []int64
	// Entries counts dynamic instances (entries) of each section.
	Entries []int64
	// Exits holds, per section, the boundary digest of each instance in
	// ordinal order (capped at maxRecordedExits; 0 = unrecorded).
	Exits [][]uint64
}

// maxRecordedExits caps per-section exit recording; instances past the
// cap simply forgo early exit.
const maxRecordedExits = 4096

func newSectionTrace(n int) *SectionTrace {
	return &SectionTrace{
		Pops:    make([]int64, n),
		Entries: make([]int64, n),
		Exits:   make([][]uint64, n),
	}
}

// record stores an instance's exit digest. Instances of one section can
// exit out of ordinal order (recursion), so the slice grows to fit.
func (t *SectionTrace) record(sec int32, ord int64, d uint64) {
	if ord >= maxRecordedExits {
		return
	}
	e := t.Exits[sec]
	for int64(len(e)) <= ord {
		e = append(e, 0)
	}
	e[ord] = d
	t.Exits[sec] = e
}

// exitAt returns the recorded digest for (sec, ord), 0 if absent.
func (t *SectionTrace) exitAt(sec int32, ord int64) uint64 {
	if sec < 0 || int(sec) >= len(t.Exits) {
		return 0
	}
	e := t.Exits[sec]
	if ord < 0 || ord >= int64(len(e)) {
		return 0
	}
	return e[ord]
}

// earlyMaskedExit unwinds a rank that proved its remaining execution
// identical to the golden run; rank.run converts it into a clean stop
// with Result.EarlyMasked set.
type earlyMaskedExit struct{}

// mix folds one value into a running digest (splitmix64 finalizer).
// Order-sensitive: mix(mix(h,a),b) != mix(mix(h,b),a).
func mix(h, v uint64) uint64 {
	h += 0x9e3779b97f4a7c15 + v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// frameSec is the per-frame section cursor execFull threads through a
// call: the pc-to-section table of the executing function, the current
// section, and the ordinal of the open instance.
type frameSec struct {
	tab *funcSections
	cur int32
	ord int64
}

// secEnter opens a new dynamic instance of sec and returns its ordinal.
func (r *rank) secEnter(sec int32) int64 {
	ord := r.secOrd[sec]
	r.secOrd[sec]++
	if r.secCap != nil {
		r.secCap.Entries[sec]++
	}
	return ord
}

// secFrame initializes the section cursor for a frame entering pf.
func (r *rank) secFrame(pf *progFunc) frameSec {
	tab := r.sec.byFunc[pf]
	if tab == nil {
		return frameSec{}
	}
	fs := frameSec{tab: tab, cur: tab.pcSec[0]}
	fs.ord = r.secEnter(fs.cur)
	return fs
}

// secTransition closes the open instance at a branch into a different
// section (target block at pc) and opens the next one.
func (r *rank) secTransition(fs *frameSec, ns int32, pc int, slots []Val) {
	d := r.boundaryDigest(fs.tab, pc, slots)
	r.secExit(fs, d)
	fs.cur = ns
	fs.ord = r.secEnter(ns)
}

// retBoundaryTag distinguishes return exits (no target pc, digest folds
// the return value instead of block live-ins) from branch exits.
const retBoundaryTag = 0x5ec7_ec17

// secRet closes the open instance at a function return. The caller's
// live registers are untouched since before the instance began, so the
// digest only needs the history, the allocator frontiers and the value
// flowing back.
func (r *rank) secRet(fs *frameSec, ret Val) {
	h := mix(r.hist, uint64(fs.tab.id))
	h = mix(h, retBoundaryTag)
	h = mix(h, uint64(r.mem.heapPtr))
	h = mix(h, uint64(r.mem.stackPtr))
	h = mix(h, valBits(ret))
	r.secExit(fs, h)
}

// boundaryDigest summarizes the state a section hands to its successor:
// the event history so far, the allocator frontiers, and the live-in
// slots of the target block (identified by function and pc).
func (r *rank) boundaryDigest(tab *funcSections, pc int, slots []Val) uint64 {
	h := mix(r.hist, uint64(tab.id))
	h = mix(h, uint64(pc))
	h = mix(h, uint64(r.mem.heapPtr))
	h = mix(h, uint64(r.mem.stackPtr))
	for _, s := range tab.liveIn[pc] {
		h = mix(h, valBits(slots[s]))
	}
	return h
}

// secExit records (capture) or checks (trial) an instance exit.
func (r *rank) secExit(fs *frameSec, d uint64) {
	if d == 0 {
		d = 1 // 0 is the "unrecorded" sentinel
	}
	if r.secCap != nil {
		r.secCap.record(fs.cur, fs.ord, d)
	}
	// Sticky plans keep corrupting the suffix, so a boundary digest
	// matching the golden one proves nothing about the remainder of the
	// run; the early-masked exit is sound only for transient faults.
	if r.secGold != nil && r.injected && !r.injectSticky && !r.earlyMasked &&
		fs.cur == r.injSec && fs.ord == r.injOrd {
		if g := r.secGold.exitAt(fs.cur, fs.ord); g != 0 && g == d {
			r.earlyMasked = true
			panic(earlyMaskedExit{})
		}
	}
}

// valBits canonicalizes a Val for hashing: both lanes fold, so an int
// and a float that happen to share bits still digest differently only
// through context, and the unused lane (always zero for SSA-produced
// values of the other kind) costs nothing semantically.
func valBits(v Val) uint64 {
	return mix(uint64(v.I), math.Float64bits(v.F))
}
