package interp

import "math"

// builtinID identifies a natively implemented runtime function.
type builtinID int

const (
	builtinNone builtinID = iota
	bSqrt
	bSin
	bCos
	bExp
	bLog
	bPow
	bFabs
	bFloor
	bFmin
	bFmax
	bMallocF64
	bMallocI64
	bOutF64
	bOutI64
	bAssertTrue
	bPrintF64
	bPrintI64
	bMPIRank
	bMPISize
	bMPIBarrier
	bMPIAllreduceF64
	bMPIAllreduceI64
	bMPIBcastF64
	bMPIBcastI64
	bMPISendF64
	bMPIRecvF64
	bMPISendI64
	bMPIRecvI64
	bMPISendF64s
	bMPIRecvF64s
	bMPISendI64s
	bMPIRecvI64s
)

var builtinByName = map[string]builtinID{
	"sqrt": bSqrt, "sin": bSin, "cos": bCos, "exp": bExp, "log": bLog,
	"pow": bPow, "fabs": bFabs, "floor": bFloor, "fmin": bFmin, "fmax": bFmax,
	"malloc_f64": bMallocF64, "malloc_i64": bMallocI64,
	"out_f64": bOutF64, "out_i64": bOutI64,
	"assert_true": bAssertTrue, "print_f64": bPrintF64, "print_i64": bPrintI64,
	"mpi_rank": bMPIRank, "mpi_size": bMPISize, "mpi_barrier": bMPIBarrier,
	"mpi_allreduce_f64": bMPIAllreduceF64, "mpi_allreduce_i64": bMPIAllreduceI64,
	"mpi_bcast_f64": bMPIBcastF64, "mpi_bcast_i64": bMPIBcastI64,
	"mpi_send_f64": bMPISendF64, "mpi_recv_f64": bMPIRecvF64,
	"mpi_send_i64": bMPISendI64, "mpi_recv_i64": bMPIRecvI64,
	"mpi_send_f64s": bMPISendF64s, "mpi_recv_f64s": bMPIRecvF64s,
	"mpi_send_i64s": bMPISendI64s, "mpi_recv_i64s": bMPIRecvI64s,
}

// callBuiltin executes a builtin in the context of rank r.
//
// args may be arena-backed (call arguments are marshalled through the
// frame arena and released when the call returns), so builtins must
// not retain the slice: anything that outlives the call — an MPI
// message payload, for example — is copied into fresh storage first
// (the send cases wrap scalars in new slices; readVec allocates).
func (r *rank) callBuiltin(id builtinID, args []Val) Val {
	switch id {
	case bSqrt:
		return FloatVal(math.Sqrt(args[0].F))
	case bSin:
		return FloatVal(math.Sin(args[0].F))
	case bCos:
		return FloatVal(math.Cos(args[0].F))
	case bExp:
		return FloatVal(math.Exp(args[0].F))
	case bLog:
		return FloatVal(math.Log(args[0].F))
	case bPow:
		return FloatVal(math.Pow(args[0].F, args[1].F))
	case bFabs:
		return FloatVal(math.Abs(args[0].F))
	case bFloor:
		return FloatVal(math.Floor(args[0].F))
	case bFmin:
		return FloatVal(math.Min(args[0].F, args[1].F))
	case bFmax:
		return FloatVal(math.Max(args[0].F, args[1].F))
	case bMallocF64, bMallocI64:
		// Allocation sizes enter the section digest so that two runs
		// whose heap frontiers coincide by different allocation
		// sequences still digest apart.
		r.fold2(0x9a110c, uint64(args[0].I))
		return IntVal(r.mem.Malloc(args[0].I * 8))
	case bOutF64:
		r.fold2(uint64(args[0].I), math.Float64bits(args[1].F))
		r.outF64(args[0].I, args[1].F)
		return Val{}
	case bOutI64:
		r.fold2(uint64(args[0].I), uint64(args[1].I))
		r.outI64(args[0].I, args[1].I)
		return Val{}
	case bAssertTrue:
		if args[0].I == 0 {
			panic(trapPanic{TrapAbort, "assertion failed"})
		}
		return Val{}
	case bPrintF64:
		r.fold2(0x9c14, math.Float64bits(args[0].F))
		r.printLog = append(r.printLog, args[0].F)
		return Val{}
	case bPrintI64:
		r.fold2(0x9c14, uint64(args[0].I))
		r.printLog = append(r.printLog, float64(args[0].I))
		return Val{}
	case bMPIRank:
		return IntVal(int64(r.id))
	case bMPISize:
		return IntVal(int64(r.comm.size))
	case bMPIBarrier:
		r.comm.barrier(r)
		return Val{}
	case bMPIAllreduceF64:
		v := FloatVal(r.comm.allreduceF64(r, args[0].F, args[1].I))
		r.fold2(0x317, math.Float64bits(v.F))
		return v
	case bMPIAllreduceI64:
		v := IntVal(r.comm.allreduceI64(r, args[0].I, args[1].I))
		r.fold2(0x317, uint64(v.I))
		return v
	case bMPIBcastF64:
		v := FloatVal(r.comm.bcastF64(r, args[0].F, args[1].I))
		r.fold2(0xbc, math.Float64bits(v.F))
		return v
	case bMPIBcastI64:
		v := IntVal(r.comm.bcastI64(r, args[0].I, args[1].I))
		r.fold2(0xbc, uint64(v.I))
		return v
	case bMPISendF64:
		r.foldMsg(args[0].I, args[1].I, args[2:3])
		r.comm.send(r, args[0].I, args[1].I, []Val{args[2]})
		return Val{}
	case bMPIRecvF64:
		v := r.comm.recv(r, args[0].I, args[1].I, 1)[0]
		r.foldMsg(args[0].I, args[1].I, []Val{v})
		return v
	case bMPISendI64:
		r.foldMsg(args[0].I, args[1].I, args[2:3])
		r.comm.send(r, args[0].I, args[1].I, []Val{args[2]})
		return Val{}
	case bMPIRecvI64:
		v := r.comm.recv(r, args[0].I, args[1].I, 1)[0]
		r.foldMsg(args[0].I, args[1].I, []Val{v})
		return v
	case bMPISendF64s:
		vs := r.readVec(args[2].I, args[3].I, true)
		r.foldMsg(args[0].I, args[1].I, vs)
		r.comm.send(r, args[0].I, args[1].I, vs)
		return Val{}
	case bMPIRecvF64s:
		vs := r.comm.recv(r, args[0].I, args[1].I, args[3].I)
		r.foldMsg(args[0].I, args[1].I, vs)
		r.writeVec(args[2].I, vs, true)
		return Val{}
	case bMPISendI64s:
		vs := r.readVec(args[2].I, args[3].I, false)
		r.foldMsg(args[0].I, args[1].I, vs)
		r.comm.send(r, args[0].I, args[1].I, vs)
		return Val{}
	case bMPIRecvI64s:
		vs := r.comm.recv(r, args[0].I, args[1].I, args[3].I)
		r.foldMsg(args[0].I, args[1].I, vs)
		r.writeVec(args[2].I, vs, false)
		return Val{}
	}
	panic(trapPanic{TrapAbort, "unimplemented builtin"})
}

// fold2 folds one tagged event into the section digest; a no-op unless
// section tracking is armed.
func (r *rank) fold2(a, b uint64) {
	if r.sec != nil {
		r.hist = mix(mix(r.hist, a), b)
	}
}

// foldMsg folds an MPI message (peer, tag, payload) into the digest.
func (r *rank) foldMsg(peer, tag int64, vs []Val) {
	if r.sec == nil {
		return
	}
	h := mix(mix(r.hist, uint64(peer)), uint64(tag))
	for _, v := range vs {
		h = mix(h, valBits(v))
	}
	r.hist = h
}

// readVec loads n 8-byte elements starting at addr.
func (r *rank) readVec(addr, n int64, isFloat bool) []Val {
	if n < 0 || n > 1<<24 {
		panic(trapPanic{TrapAbort, "bad vector length"})
	}
	out := make([]Val, n)
	for i := int64(0); i < n; i++ {
		out[i] = r.mem.Load(addr+i*8, 8, isFloat)
	}
	return out
}

// writeVec stores the values as 8-byte elements starting at addr.
func (r *rank) writeVec(addr int64, vs []Val, isFloat bool) {
	for i, v := range vs {
		r.mem.Store(addr+int64(i)*8, 8, v, isFloat)
	}
}

// outF64 grows the rank's float output vector as needed and writes v.
func (r *rank) outF64(idx int64, v float64) {
	if idx < 0 || idx > 1<<24 {
		panic(trapPanic{TrapAbort, "bad output index"})
	}
	for int64(len(r.outputF)) <= idx {
		r.outputF = append(r.outputF, 0)
	}
	r.outputF[idx] = v
}

// outI64 grows the rank's integer output vector as needed and writes v.
func (r *rank) outI64(idx int64, v int64) {
	if idx < 0 || idx > 1<<24 {
		panic(trapPanic{TrapAbort, "bad output index"})
	}
	for int64(len(r.outputI)) <= idx {
		r.outputI = append(r.outputI, 0)
	}
	r.outputI[idx] = v
}
