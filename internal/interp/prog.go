package interp

import (
	"fmt"

	"ipas/internal/ir"
)

// Program is a module lowered to a dense, slot-based form that the
// evaluator executes without map lookups. Compilation is deterministic;
// a Program is immutable and safely shared by concurrent ranks.
type Program struct {
	mod   *ir.Module
	funcs map[*ir.Func]*progFunc
	main  *progFunc

	// Injectable reports whether a static instruction is a fault-
	// injection site; fixed at compile time so instance counting is
	// identical between golden and injection runs.
	injectable func(*ir.Instr) bool

	// NumSites is the module's site-table size.
	NumSites int
}

type progFunc struct {
	fn       *ir.Func
	builtin  builtinID
	numSlots int
	blocks   []*progBlock
}

type progBlock struct {
	instrs []pInstr
	// phiCopies[p] lists the parallel copies to perform when entering
	// this block from predecessor index p (indexes into preds).
	preds     []*progBlock
	phiCopies [][]phiCopy
	id        int
}

type phiCopy struct {
	dst int
	src operand
}

// operand is a resolved instruction operand: either a constant value or
// a frame slot.
type operand struct {
	isConst bool
	c       Val
	slot    int
}

type pInstr struct {
	op     ir.Op
	typ    *ir.Type
	pred   ir.Pred
	ops    []operand
	dst    int // destination slot, -1 if none
	blocks [2]int
	callee *progFunc

	elemSize   int64 // gep scale / alloca element size / load-store width
	allocBytes int64
	storeFloat bool // store payload is f64

	src        *ir.Instr // static instruction (site info, protection tag)
	injectable bool
	isCheck    bool // ProtCheck comparison (excluded from injection)
}

// Compile lowers a verified module into executable form. injectable
// selects fault-injection sites; nil means nothing is injectable.
func Compile(m *ir.Module, injectable func(*ir.Instr) bool) (*Program, error) {
	if injectable == nil {
		injectable = func(*ir.Instr) bool { return false }
	}
	p := &Program{
		mod:        m,
		funcs:      map[*ir.Func]*progFunc{},
		injectable: injectable,
		NumSites:   m.NumSites(),
	}
	// Shells first so calls resolve.
	for _, f := range m.Funcs() {
		pf := &progFunc{fn: f, builtin: builtinNone}
		if f.Builtin {
			id, ok := builtinByName[f.Name()]
			if !ok {
				return nil, fmt.Errorf("interp: unknown builtin @%s", f.Name())
			}
			pf.builtin = id
		}
		p.funcs[f] = pf
	}
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		if err := p.compileFunc(f); err != nil {
			return nil, err
		}
	}
	mainFn := m.FuncByName("main")
	if mainFn == nil {
		return nil, fmt.Errorf("interp: module has no @main")
	}
	if len(mainFn.Params()) != 0 {
		return nil, fmt.Errorf("interp: @main must take no parameters")
	}
	p.main = p.funcs[mainFn]
	return p, nil
}

// Module returns the compiled module.
func (p *Program) Module() *ir.Module { return p.mod }

func (p *Program) compileFunc(f *ir.Func) error {
	pf := p.funcs[f]
	slot := map[ir.Value]int{}
	n := 0
	for _, prm := range f.Params() {
		slot[prm] = n
		n++
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.HasResult() {
				slot[in] = n
				n++
			}
		}
	}
	pf.numSlots = n

	blockIdx := map[*ir.Block]int{}
	for i, b := range f.Blocks() {
		blockIdx[b] = i
		pf.blocks = append(pf.blocks, &progBlock{id: i})
	}

	resolve := func(v ir.Value) operand {
		if c, ok := v.(*ir.Const); ok {
			if c.Type().IsFloat() {
				return operand{isConst: true, c: FloatVal(c.Float)}
			}
			return operand{isConst: true, c: IntVal(c.Int)}
		}
		s, ok := slot[v]
		if !ok {
			panic(fmt.Sprintf("interp: unresolved value %s in @%s", v.Ref(), f.Name()))
		}
		return operand{slot: s}
	}

	for bi, b := range f.Blocks() {
		pb := pf.blocks[bi]
		// Record predecessors for phi-copy resolution.
		for _, pred := range b.Preds() {
			pb.preds = append(pb.preds, pf.blocks[blockIdx[pred]])
		}
		pb.phiCopies = make([][]phiCopy, len(pb.preds))
		for _, phi := range b.Phis() {
			d := slot[phi]
			for i, inc := range phi.Incoming {
				// Find predecessor index of inc.
				pi := -1
				for j, pred := range b.Preds() {
					if pred == inc {
						pi = j
						break
					}
				}
				if pi < 0 {
					return fmt.Errorf("interp: phi incoming %%%s not a predecessor in @%s", inc.Name(), f.Name())
				}
				pb.phiCopies[pi] = append(pb.phiCopies[pi], phiCopy{dst: d, src: resolve(phi.Operand(i))})
			}
		}

		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi {
				continue // handled by edge copies
			}
			pi := pInstr{
				op:   in.Op(),
				typ:  in.Type(),
				pred: in.Pred,
				dst:  -1,
				src:  in,
			}
			if in.HasResult() {
				pi.dst = slot[in]
			}
			for _, opnd := range in.Operands() {
				pi.ops = append(pi.ops, resolve(opnd))
			}
			for i, t := range in.Targets {
				if i < 2 {
					pi.blocks[i] = blockIdx[t]
				}
			}
			switch in.Op() {
			case ir.OpCall:
				pi.callee = p.funcs[in.Callee]
			case ir.OpGEP:
				pi.elemSize = in.Type().Elem().Size()
			case ir.OpAlloca:
				pi.elemSize = in.Type().Elem().Size()
				pi.allocBytes = align8(pi.elemSize * in.AllocElems)
			case ir.OpLoad:
				pi.elemSize = in.Type().Size()
			case ir.OpStore:
				pi.elemSize = in.Operand(0).Type().Size()
				pi.storeFloat = in.Operand(0).Type().IsFloat()
			}
			pi.injectable = in.HasResult() && p.injectable(in)
			pi.isCheck = in.Prot == ir.ProtCheck
			pb.instrs = append(pb.instrs, pi)
		}
	}
	return nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }
