package interp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"ipas/internal/ir"
)

// Program is a module lowered to flat bytecode that the evaluator
// executes without map lookups or IR back-references. Compilation is
// deterministic; a Program is immutable and safely shared by concurrent
// ranks.
type Program struct {
	mod   *ir.Module
	funcs map[*ir.Func]*progFunc
	main  *progFunc

	// Injectable reports whether a static instruction is a fault-
	// injection site; fixed at compile time so instance counting is
	// identical between golden and injection runs.
	injectable func(*ir.Instr) bool

	// NumSites is the module's site-table size.
	NumSites int

	// zeroFrames forces call frames to be zeroed before use. It is off
	// for modules that pass ir.Verify: SSA dominance guarantees every
	// slot is written before it is read, so zeroing is dead work (it
	// dominated call-heavy profiles). Unverifiable modules keep the
	// old deterministic zero-fill behavior.
	zeroFrames bool

	// fusedPairs counts the instruction pairs fused into
	// superinstructions across all functions (see fuse.go).
	fusedPairs int

	// fpOnce/fp back Fingerprint.
	fpOnce sync.Once
	fp     string
}

// FusedPairs reports how many adjacent instruction pairs were fused
// into superinstructions on the fast stream (0 when compiled with
// Options.NoFuse).
func (p *Program) FusedPairs() int { return p.fusedPairs }

// Fingerprint is a stable content hash identifying this compiled
// program for result caching: the module's canonical printed form, the
// per-instruction injectable bitmap (two programs from one module but
// different fault models must not share golden results — their
// injectable populations differ), and the site-table size. It is
// independent of fusion: both instruction streams execute identical
// semantics, so a fused and an unfused compile of the same module may
// share cached results.
func (p *Program) Fingerprint() string {
	p.fpOnce.Do(func() {
		h := sha256.New()
		io.WriteString(h, ir.Print(p.mod))
		h.Write([]byte{0})
		for _, f := range p.mod.Funcs() {
			if f.Builtin {
				continue
			}
			pf := p.funcs[f]
			var b byte
			for i := range pf.code {
				b <<= 1
				if pf.code[i].injectable {
					b |= 1
				}
				if i&7 == 7 {
					h.Write([]byte{b})
					b = 0
				}
			}
			h.Write([]byte{b, 0xff})
		}
		fmt.Fprintf(h, "sites:%d", p.NumSites)
		p.fp = hex.EncodeToString(h.Sum(nil))
	})
	return p.fp
}

// progFunc is one function lowered to a single contiguous instruction
// array. Control flow uses absolute indices into code; there are no
// block boundaries at run time. Entry is pc 0.
type progFunc struct {
	fn       *ir.Func
	builtin  builtinID
	numSlots int
	code     []pInstr
	// consts is the function's constant pool; operand index ^i (i.e.
	// negative) refers to consts[i].
	consts []Val
	// edgeCopies holds the phi parallel-copy lists, one per CFG edge
	// that carries phis; pInstr.edges indexes into it. Resolving the
	// (pred, succ) pair at lowering time is what removes the old
	// per-block-entry predecessor scan from the hot loop.
	edgeCopies [][]phiCopy
	// blockOf maps each pc onto the index of its source block in
	// fn.Blocks(). It is a side table — never consulted by the
	// execution loops — that lets section analysis (section.go)
	// project an IR block partition onto flat pcs.
	blockOf []int32
	// fast is the superinstruction stream execFast dispatches on: code
	// with hot adjacent pairs fused (see fuse.go). It aliases code when
	// fusion is disabled. execFull and every side table (blockOf,
	// section projection) keep using the canonical one-instruction-per-
	// opcode stream, so instrumented semantics are untouched by fusion.
	fast []pInstr
}

// phiCopy is one slot assignment of a parallel copy (dst = src). All
// reads of a copy list happen before any write.
type phiCopy struct {
	dst int32
	src int32 // operand encoding: slot if >= 0, else consts[^src]
}

// pInstr is one packed bytecode instruction. Everything the evaluator
// needs at run time — jump targets, operand encodings, memory widths,
// site id, zext source mask — is precomputed here at lowering time; no
// field points back into the IR.
type pInstr struct {
	typ    *ir.Type
	callee *progFunc
	// ops lists every operand (same encoding as phiCopy.src) for
	// instructions with more than two, and for calls (argument
	// marshalling iterates it). a0/a1 carry the first two operands of
	// everything else.
	ops        []int32
	elemSize   int64 // gep scale / alloca element size / load-store-rmw width
	allocBytes int64
	srcMask    uint64 // zext: mask of the source type's width

	a0, a1  int32
	dst     int32 // destination slot, -1 if none
	siteID  int32
	targets [2]int32 // absolute pc of branch targets
	edges   [2]int32 // edgeCopies index per target, -1 if the edge has no phis

	// Second-half operands of a fused superinstruction (fuse.go); only
	// meaningful in progFunc.fast entries whose op is a super-opcode.
	// b0/b1 carry the second instruction's operands verbatim, dst2 its
	// destination slot, elemSize2 its memory width, and op2 the fused
	// arithmetic opcode for opLoadArith/opArithStore.
	b0, b1    int32
	dst2      int32
	elemSize2 int64

	op         ir.Op
	op2        ir.Op
	pred       ir.Pred
	nops       uint8
	storeFloat bool // store payload is f64
	isFloat    bool // result type is f64 (load/bitcast interpretation)
	injectable bool
	// Fusion flags: fuseB0/fuseB1 mark which second-half operands are
	// the first half's result (read from the value in flight, so the
	// first half's slot write can be elided when it has no other uses);
	// inj2/isFloat2/storeFloat2 mirror injectable/isFloat/storeFloat
	// for the second half.
	fuseB0, fuseB1 bool
	inj2           bool
	isFloat2       bool
	storeFloat2    bool
}

// Options tunes compilation. The zero value is the default used by
// Compile.
type Options struct {
	// NoFuse disables superinstruction fusion: the fast stream aliases
	// the canonical one-instruction-per-opcode stream. Used by the
	// fusion bit-identity tests and available as an escape hatch.
	NoFuse bool
}

// Compile lowers a verified module into executable form. injectable
// selects fault-injection sites; nil means nothing is injectable.
func Compile(m *ir.Module, injectable func(*ir.Instr) bool) (*Program, error) {
	return CompileWithOptions(m, injectable, Options{})
}

// CompileWithOptions is Compile with explicit compilation options.
func CompileWithOptions(m *ir.Module, injectable func(*ir.Instr) bool, opts Options) (*Program, error) {
	if injectable == nil {
		injectable = func(*ir.Instr) bool { return false }
	}
	p := &Program{
		mod:        m,
		funcs:      map[*ir.Func]*progFunc{},
		injectable: injectable,
		NumSites:   m.NumSites(),
		zeroFrames: ir.Verify(m) != nil,
	}
	// Shells first so calls resolve.
	for _, f := range m.Funcs() {
		pf := &progFunc{fn: f, builtin: builtinNone}
		if f.Builtin {
			id, ok := builtinByName[f.Name()]
			if !ok {
				return nil, fmt.Errorf("interp: unknown builtin @%s", f.Name())
			}
			pf.builtin = id
		}
		p.funcs[f] = pf
	}
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		if err := p.compileFunc(f); err != nil {
			return nil, err
		}
		pf := p.funcs[f]
		if opts.NoFuse {
			pf.fast = pf.code
		} else {
			pf.fast = p.fuseFunc(pf)
		}
	}
	mainFn := m.FuncByName("main")
	if mainFn == nil {
		return nil, fmt.Errorf("interp: module has no @main")
	}
	if len(mainFn.Params()) != 0 {
		return nil, fmt.Errorf("interp: @main must take no parameters")
	}
	p.main = p.funcs[mainFn]
	return p, nil
}

// Module returns the compiled module.
func (p *Program) Module() *ir.Module { return p.mod }

func (p *Program) compileFunc(f *ir.Func) error {
	pf := p.funcs[f]
	slot := map[ir.Value]int32{}
	var n int32
	for _, prm := range f.Params() {
		slot[prm] = n
		n++
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.HasResult() {
				slot[in] = n
				n++
			}
		}
	}
	pf.numSlots = int(n)

	constIdx := map[Val]int32{}
	resolve := func(v ir.Value) int32 {
		if c, ok := v.(*ir.Const); ok {
			var cv Val
			if c.Type().IsFloat() {
				cv = FloatVal(c.Float)
			} else {
				cv = IntVal(c.Int)
			}
			// NaN-valued keys never hit; they just take a fresh pool
			// entry each time, which is harmless.
			if i, ok := constIdx[cv]; ok {
				return ^i
			}
			i := int32(len(pf.consts))
			pf.consts = append(pf.consts, cv)
			constIdx[cv] = i
			return ^i
		}
		s, ok := slot[v]
		if !ok {
			panic(fmt.Sprintf("interp: unresolved value %s in @%s", v.Ref(), f.Name()))
		}
		return s
	}

	// Pass 1: assign each block its absolute start pc. A block's code is
	// its non-phi instructions up to and including the first terminator
	// (trailing dead code is unreachable in the old per-block walker too
	// and is simply not emitted).
	start := map[*ir.Block]int32{}
	pc := 0
	for _, b := range f.Blocks() {
		start[b] = int32(pc)
		term := false
		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi {
				continue
			}
			pc++
			if in.Op().IsTerminator() {
				term = true
				break
			}
		}
		if !term {
			return fmt.Errorf("interp: block %%%s in @%s has no terminator", b.Name(), f.Name())
		}
	}
	pf.code = make([]pInstr, 0, pc)

	// edgeFor resolves the phi parallel copies for the CFG edge
	// pred -> succ, indexed by the (pred, succ) pair at lowering time.
	edgeFor := func(pred, succ *ir.Block) ([]phiCopy, error) {
		var cps []phiCopy
		for _, phi := range succ.Phis() {
			found := false
			for i, inc := range phi.Incoming {
				if inc == pred {
					cps = append(cps, phiCopy{dst: slot[phi], src: resolve(phi.Operand(i))})
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("interp: phi %s in %%%s has no incoming for predecessor %%%s in @%s",
					phi.Ref(), succ.Name(), pred.Name(), f.Name())
			}
		}
		return cps, nil
	}

	// Pass 2: emit the flat stream.
	pf.blockOf = make([]int32, 0, pc)
	for bi, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi {
				continue // handled by edge copies
			}
			pi := pInstr{
				op:      in.Op(),
				typ:     in.Type(),
				pred:    in.Pred,
				dst:     -1,
				siteID:  int32(in.SiteID),
				targets: [2]int32{-1, -1},
				edges:   [2]int32{-1, -1},
			}
			if in.HasResult() {
				pi.dst = slot[in]
				pi.isFloat = in.Type().IsFloat()
			}
			opnds := in.Operands()
			nops := len(opnds)
			if nops > 255 {
				return fmt.Errorf("interp: instruction %s in @%s has %d operands", in.Ref(), f.Name(), nops)
			}
			pi.nops = uint8(nops)
			if nops > 0 {
				pi.a0 = resolve(opnds[0])
			}
			if nops > 1 {
				pi.a1 = resolve(opnds[1])
			}
			if nops > 2 || in.Op() == ir.OpCall {
				pi.ops = make([]int32, nops)
				for i, o := range opnds {
					pi.ops[i] = resolve(o)
				}
			}
			for i, t := range in.Targets {
				if i >= 2 {
					break
				}
				pi.targets[i] = start[t]
				cps, err := edgeFor(b, t)
				if err != nil {
					return err
				}
				if len(cps) > 0 {
					pi.edges[i] = int32(len(pf.edgeCopies))
					pf.edgeCopies = append(pf.edgeCopies, cps)
				}
			}
			switch in.Op() {
			case ir.OpCall:
				pi.callee = p.funcs[in.Callee]
			case ir.OpGEP:
				pi.elemSize = in.Type().Elem().Size()
			case ir.OpAlloca:
				pi.elemSize = in.Type().Elem().Size()
				pi.allocBytes = align8(pi.elemSize * in.AllocElems)
			case ir.OpLoad:
				pi.elemSize = in.Type().Size()
			case ir.OpStore:
				pi.elemSize = in.Operand(0).Type().Size()
				pi.storeFloat = in.Operand(0).Type().IsFloat()
			case ir.OpAtomicRMW:
				pi.elemSize = in.Type().Size()
			case ir.OpZExt:
				pi.srcMask = widthMask(uint64(in.Operand(0).Type().Bits()))
			}
			pi.injectable = in.HasResult() && p.injectable(in)
			pf.code = append(pf.code, pi)
			pf.blockOf = append(pf.blockOf, int32(bi))
			if in.Op().IsTerminator() {
				break
			}
		}
	}
	if len(pf.code) != pc {
		return fmt.Errorf("interp: lowering @%s emitted %d instructions, expected %d", f.Name(), len(pf.code), pc)
	}
	return nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }
