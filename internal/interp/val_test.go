package interp

import (
	"math"
	"testing"
	"testing/quick"

	"ipas/internal/ir"
)

func TestFlipBitInt(t *testing.T) {
	v := IntVal(0b1010)
	if got := FlipBit(v, ir.I64, 0).I; got != 0b1011 {
		t.Errorf("flip bit 0: %b", got)
	}
	if got := FlipBit(v, ir.I64, 3).I; got != 0b0010 {
		t.Errorf("flip bit 3: %b", got)
	}
	// Bit positions wrap modulo the type width.
	if got := FlipBit(IntVal(0), ir.I8, 7).I; got != -128 {
		t.Errorf("i8 sign flip = %d, want -128", got)
	}
	if got := FlipBit(IntVal(0), ir.I8, 8).I; got != 1 {
		t.Errorf("i8 bit 8 wraps to bit 0: %d", got)
	}
	if got := FlipBit(IntVal(0), ir.I1, 5).I; got != 1 {
		t.Errorf("i1 flip = %d", got)
	}
	if got := FlipBit(IntVal(0), ir.I32, 31).I; got != math.MinInt32 {
		t.Errorf("i32 sign flip = %d", got)
	}
}

func TestFlipBitFloat(t *testing.T) {
	v := FloatVal(1.0)
	flipped := FlipBit(v, ir.F64, 63).F
	if flipped != -1.0 {
		t.Errorf("sign flip of 1.0 = %v", flipped)
	}
	// Exponent flip: bit 62 of 1.0 gives 2^1024 overflow -> +Inf? The
	// IEEE pattern of 1.0 is 0x3FF0...; flipping bit 62 sets exponent
	// 0x7FF -> Inf.
	if !math.IsInf(FlipBit(v, ir.F64, 62).F, 1) {
		t.Errorf("exponent flip of 1.0 = %v, want +Inf", FlipBit(v, ir.F64, 62).F)
	}
	// Low mantissa flip barely changes the value.
	d := math.Abs(FlipBit(v, ir.F64, 0).F - 1.0)
	if d == 0 || d > 1e-15 {
		t.Errorf("mantissa flip delta = %v", d)
	}
}

// TestFlipBitInvolution: flipping the same bit twice restores the value
// for every type — the property the detector relies on.
func TestFlipBitInvolution(t *testing.T) {
	types := []*ir.Type{ir.I1, ir.I8, ir.I32, ir.I64, ir.F64, ir.PtrTo(ir.F64)}
	f := func(raw int64, bit uint8, ti uint8) bool {
		typ := types[int(ti)%len(types)]
		var v Val
		if typ.IsFloat() {
			v = FloatVal(math.Float64frombits(uint64(raw)))
		} else {
			v = IntVal(truncToType(typ, raw))
		}
		b := int(bit)
		w := FlipBit(FlipBit(v, typ, b), typ, b)
		if typ.IsFloat() {
			return math.Float64bits(w.F) == math.Float64bits(v.F)
		}
		return w.I == v.I
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFlipBitChangesValue: a flip always changes the stored pattern.
func TestFlipBitChangesValue(t *testing.T) {
	f := func(raw int64, bit uint8) bool {
		v := IntVal(raw)
		w := FlipBit(v, ir.I64, int(bit))
		return w.I != v.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrapStrings(t *testing.T) {
	for tr := TrapNone; tr <= TrapWatchdog; tr++ {
		if tr.String() == "" {
			t.Errorf("trap %d has empty name", tr)
		}
	}
	if TrapNone.IsSymptom() || TrapDetected.IsSymptom() {
		t.Error("none/detected are not symptoms")
	}
	if TrapCancelled.IsSymptom() || TrapWatchdog.IsSymptom() {
		t.Error("cancelled/watchdog are infrastructure conditions, not symptoms")
	}
	for _, tr := range []Trap{TrapOOB, TrapNull, TrapDivZero, TrapBudget, TrapDeadlock, TrapAbort, TrapOOM, TrapStackOverflow, TrapUnaligned} {
		if !tr.IsSymptom() {
			t.Errorf("%v must be a symptom", tr)
		}
	}
}

func TestFpToInt(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{1.9, 1},
		{-1.9, -1},
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
	}
	for _, c := range cases {
		if got := fpToInt(c.in); got != c.want {
			t.Errorf("fpToInt(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
