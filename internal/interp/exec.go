package interp

import (
	"math"

	"ipas/internal/ir"
)

// rank is the per-MPI-process execution state.
type rank struct {
	id   int
	prog *Program
	mem  *Memory
	comm *comm

	// cancel, when non-nil, is the embedding context's Done channel;
	// the instruction loops poll it every cancelPollPeriod instructions
	// and raise TrapCancelled.
	cancel <-chan struct{}

	// instrumented selects the execution loop, once per run: the fully
	// instrumented loop when a fault plan is armed on this rank, site
	// counting is on, or an instruction budget is set; the fast loop
	// otherwise (golden runs, verification re-runs, timing runs).
	instrumented bool

	budget   int64 // remaining instruction budget (-1: unlimited)
	executed int64

	// Fault plan.
	injectArmed      bool
	injectIndex      int64 // dynamic injectable-instance index to corrupt
	injectBit        int
	injectMask       uint64 // raw multi-bit mask (0 = single-bit)
	injectCorrelated bool   // value-correlated flip
	injectSticky     bool   // persistent per-site fault
	injected         bool
	injectedSite     int
	injectedAt       int64  // executed-instruction count when the flip fired
	injectedMask     uint64 // effective mask of the first firing
	corruptions      int64  // corruption applications (> 1 only when sticky)

	injectableSeen int64

	countSites bool
	siteCounts []int64

	// Section tracking (see section.go). sec non-nil selects the full
	// loop and enables boundary hooks; secTarget >= 0 restricts
	// injectable-instance counting to one section; hist is the running
	// observable-event digest; secOrd holds per-section entry counters.
	sec         *SectionTables
	secCap      *SectionTrace // capture target (golden runs)
	secGold     *SectionTrace // golden trace (trials; arms early exit)
	secTarget   int32
	secOrd      []int64
	hist        uint64
	injSec      int32 // section of the fired injection
	injOrd      int64 // instance ordinal of the fired injection
	earlyMasked bool

	outputF  []float64
	outputI  []int64
	printLog []float64

	callDepth  int
	zeroFrames bool  // mirror of Program.zeroFrames
	scratch    []Val // phi parallel-copy buffer

	// arenaBlocks back call frames and call-argument marshalling:
	// regions are carved off sequentially and released LIFO on return,
	// avoiding per-call heap allocation. Blocks never move, so
	// outstanding frames stay valid as the arena grows.
	arenaBlocks [][]Val
	arenaCur    int
	arenaOff    int
}

const arenaBlockSize = 16384

// frame carves a slot slice of length n from the arena. zero clears it
// first; callers that overwrite every element before any read (call
// frames of verified-SSA functions, argument marshalling) pass false.
func (r *rank) frame(n int, zero bool) []Val {
	if r.arenaBlocks == nil {
		size := arenaBlockSize
		if n > size {
			size = n
		}
		r.arenaBlocks = [][]Val{make([]Val, size)}
	}
	if r.arenaOff+n > len(r.arenaBlocks[r.arenaCur]) {
		r.arenaCur++
		if r.arenaCur == len(r.arenaBlocks) {
			size := arenaBlockSize
			if n > size {
				size = n
			}
			r.arenaBlocks = append(r.arenaBlocks, make([]Val, size))
		} else if len(r.arenaBlocks[r.arenaCur]) < n {
			r.arenaBlocks[r.arenaCur] = make([]Val, n)
		}
		r.arenaOff = 0
	}
	blk := r.arenaBlocks[r.arenaCur]
	s := blk[r.arenaOff : r.arenaOff+n : r.arenaOff+n]
	if zero {
		for i := range s {
			s[i] = Val{}
		}
	}
	r.arenaOff += n
	return s
}

const maxCallDepth = 4096

// cancelPollPeriod is how many executed instructions pass between
// cancellation polls (power of two; the poll is a non-blocking select).
// Both loops poll only cancel — an infrastructure signal — and
// deliberately never the job-abort channel: a compute-bound rank runs
// on until it blocks in an MPI operation before observing an abort,
// keeping
// executed counts a pure function of the program rather than of how
// quickly a peer's trap propagated (the supervisor makes the same
// determinism argument for blocked operations; see supervisor.go).
const cancelPollPeriod = 4096

// run executes @main on this rank and returns the trap (TrapNone on
// normal termination).
func (r *rank) run() (trap Trap, msg string) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(earlyMaskedExit); ok {
				// Clean stop: the suffix was proven identical to the
				// golden run (r.earlyMasked is already set).
				trap, msg = TrapNone, ""
				return
			}
			tp, ok := p.(trapPanic)
			if !ok {
				panic(p)
			}
			trap, msg = tp.trap, tp.msg
		}
	}()
	r.callFunc(r.prog.main, nil)
	return TrapNone, ""
}

// callFunc invokes a compiled function with the given arguments,
// dispatching to the loop selected for this run. The per-call branch is
// the only specialization cost; inside the loops there are no disarmed
// instrumentation checks.
func (r *rank) callFunc(pf *progFunc, args []Val) Val {
	if pf.builtin != builtinNone {
		return r.callBuiltin(pf.builtin, args)
	}
	r.callDepth++
	if r.callDepth > maxCallDepth {
		panic(trapPanic{TrapStackOverflow, "call depth exceeded"})
	}
	sp := r.mem.PushFrame()
	saveCur, saveOff := r.arenaCur, r.arenaOff
	slots := r.frame(pf.numSlots, r.zeroFrames)
	copy(slots, args)
	var ret Val
	if r.instrumented {
		ret = r.execFull(pf, slots)
	} else {
		ret = r.execFast(pf, slots)
	}
	r.mem.PopFrame(sp)
	r.arenaCur, r.arenaOff = saveCur, saveOff
	r.callDepth--
	return ret
}

// get resolves an encoded operand: a frame slot if x >= 0, else the
// constant-pool entry consts[^x].
func get(slots, consts []Val, x int32) Val {
	if x >= 0 {
		return slots[x]
	}
	return consts[^x]
}

// runCopies performs one edge's phi parallel copies: all sources are
// read before any destination is written.
func (r *rank) runCopies(slots, consts []Val, cps []phiCopy) {
	if len(cps) == 1 {
		slots[cps[0].dst] = get(slots, consts, cps[0].src)
		return
	}
	if cap(r.scratch) < len(cps) {
		r.scratch = make([]Val, len(cps))
	}
	tmp := r.scratch[:len(cps)]
	for i, cp := range cps {
		tmp[i] = get(slots, consts, cp.src)
	}
	for i, cp := range cps {
		slots[cp.dst] = tmp[i]
	}
}

// raiseTrap maps an OpTrap code onto its trap.
func raiseTrap(code int64) {
	if code == TrapCodeDetected {
		panic(trapPanic{TrapDetected, "duplication check failed"})
	}
	panic(trapPanic{TrapAbort, "explicit trap"})
}

// execFast is the uninstrumented hot loop: no budget accounting, no
// site counting, no injection arming — just the dynamic-instruction
// counter every result consumer relies on, the injectable-population
// counter (fault.Campaign sizes its sampling space from the golden
// run), and a cancellation poll when a context is attached. The hottest
// opcodes are inlined so each instruction pays a single dispatch, and
// the stream it executes is the fused one (progFunc.fast): hot adjacent
// pairs collapsed into superinstructions (fuse.go) that still maintain
// the executed and injectable counters per original dynamic
// instruction, so every observable of this loop is bit-identical to the
// canonical stream.
//
// Any semantic change here must be mirrored in execFull and eval; the
// differential tests in differential_test.go compare all three against
// a reference IR walker, and the fusion tests additionally pin this
// loop against an unfused compile.
func (r *rank) execFast(pf *progFunc, slots []Val) Val {
	code := pf.fast
	consts := pf.consts
	cancel := r.cancel
	pc := 0
	for {
		pi := &code[pc]
		r.executed++
		// Superinstructions advance executed by 2 per iteration, so an
		// exact-zero test could step over the poll boundary; < 2
		// catches every crossing at the next iteration.
		if cancel != nil && r.executed&(cancelPollPeriod-1) < 2 {
			select {
			case <-cancel:
				panic(trapPanic{TrapCancelled, "execution cancelled"})
			default:
			}
		}
		var v Val
		switch pi.op {
		case ir.OpBr:
			if e := pi.edges[0]; e >= 0 {
				r.runCopies(slots, consts, pf.edgeCopies[e])
			}
			pc = int(pi.targets[0])
			continue
		case ir.OpCondBr:
			k := 1
			if get(slots, consts, pi.a0).I != 0 {
				k = 0
			}
			if e := pi.edges[k]; e >= 0 {
				r.runCopies(slots, consts, pf.edgeCopies[e])
			}
			pc = int(pi.targets[k])
			continue
		case ir.OpRet:
			if pi.nops > 0 {
				return get(slots, consts, pi.a0)
			}
			return Val{}
		case ir.OpTrap:
			raiseTrap(get(slots, consts, pi.a0).I)
		case ir.OpStore:
			r.mem.Store(get(slots, consts, pi.a1).I, pi.elemSize, get(slots, consts, pi.a0), pi.storeFloat)
			pc++
			continue
		case ir.OpFAdd:
			v = FloatVal(get(slots, consts, pi.a0).F + get(slots, consts, pi.a1).F)
		case ir.OpFSub:
			v = FloatVal(get(slots, consts, pi.a0).F - get(slots, consts, pi.a1).F)
		case ir.OpFMul:
			v = FloatVal(get(slots, consts, pi.a0).F * get(slots, consts, pi.a1).F)
		case ir.OpFDiv:
			v = FloatVal(get(slots, consts, pi.a0).F / get(slots, consts, pi.a1).F)
		case ir.OpAdd:
			v = IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I+get(slots, consts, pi.a1).I))
		case ir.OpSub:
			v = IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I-get(slots, consts, pi.a1).I))
		case ir.OpMul:
			v = IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I*get(slots, consts, pi.a1).I))
		case ir.OpICmp:
			v = Bool(icmp(pi.pred, get(slots, consts, pi.a0).I, get(slots, consts, pi.a1).I))
		case ir.OpFCmp:
			v = Bool(fcmp(pi.pred, get(slots, consts, pi.a0).F, get(slots, consts, pi.a1).F))
		case ir.OpLoad:
			v = r.mem.Load(get(slots, consts, pi.a0).I, pi.elemSize, pi.isFloat)
		case ir.OpGEP:
			v = IntVal(get(slots, consts, pi.a0).I + get(slots, consts, pi.a1).I*pi.elemSize)

		// Superinstructions (fuse.go). Each case executes its two halves
		// strictly sequentially — first half, slot write, second half —
		// incrementing executed before and injectableSeen after each
		// half exactly like two unfused iterations would, so counters
		// observed at any trap point are bit-identical.
		case opICmpBr, opFCmpBr:
			var c bool
			if pi.op == opICmpBr {
				c = icmp(pi.pred, get(slots, consts, pi.a0).I, get(slots, consts, pi.a1).I)
			} else {
				c = fcmp(pi.pred, get(slots, consts, pi.a0).F, get(slots, consts, pi.a1).F)
			}
			if pi.injectable {
				r.injectableSeen++
			}
			if pi.dst >= 0 {
				slots[pi.dst] = Bool(c)
			}
			r.executed++ // the condbr half
			k := 1
			if c {
				k = 0
			}
			if e := pi.edges[k]; e >= 0 {
				r.runCopies(slots, consts, pf.edgeCopies[e])
			}
			pc = int(pi.targets[k])
			continue
		case opGEPLoad:
			v1 := IntVal(get(slots, consts, pi.a0).I + get(slots, consts, pi.a1).I*pi.elemSize)
			if pi.injectable {
				r.injectableSeen++
			}
			if pi.dst >= 0 {
				slots[pi.dst] = v1
			}
			r.executed++ // the load half (counted before it can trap)
			v2 := r.mem.Load(v1.I, pi.elemSize2, pi.isFloat2)
			if pi.inj2 {
				r.injectableSeen++
			}
			slots[pi.dst2] = v2
			pc++
			continue
		case opLoadArith:
			v1 := r.mem.Load(get(slots, consts, pi.a0).I, pi.elemSize, pi.isFloat)
			if pi.injectable {
				r.injectableSeen++
			}
			if pi.dst >= 0 {
				slots[pi.dst] = v1
			}
			r.executed++ // the arith half
			a := v1
			if !pi.fuseB0 {
				a = get(slots, consts, pi.b0)
			}
			b := v1
			if !pi.fuseB1 {
				b = get(slots, consts, pi.b1)
			}
			v2 := arith2(pi.op2, pi.typ, a, b)
			if pi.inj2 {
				r.injectableSeen++
			}
			slots[pi.dst2] = v2
			pc++
			continue
		case opArithStore:
			v1 := arith2(pi.op2, pi.typ, get(slots, consts, pi.a0), get(slots, consts, pi.a1))
			if pi.injectable {
				r.injectableSeen++
			}
			if pi.dst >= 0 {
				slots[pi.dst] = v1
			}
			r.executed++ // the store half (counted before it can trap)
			sv := v1
			if !pi.fuseB0 {
				sv = get(slots, consts, pi.b0)
			}
			addr := v1
			if !pi.fuseB1 {
				addr = get(slots, consts, pi.b1)
			}
			r.mem.Store(addr.I, pi.elemSize2, sv, pi.storeFloat2)
			pc++
			continue

		default:
			v = r.eval(pi, slots, consts)
		}
		if pi.injectable {
			r.injectableSeen++
		}
		if pi.dst >= 0 {
			slots[pi.dst] = v
		}
		pc++
	}
}

// execFull is the fully instrumented loop for armed trials: budget
// accounting (the hang detector), per-site dynamic counting, the
// single-bit injection hook, and the section-boundary hooks, all over
// the same flat stream. Section state is block-constant, so
// transitions are only checked at branch targets and returns.
func (r *rank) execFull(pf *progFunc, slots []Val) Val {
	code := pf.code
	consts := pf.consts
	var fs frameSec
	if r.sec != nil {
		fs = r.secFrame(pf)
	}
	pc := 0
	for {
		pi := &code[pc]
		r.executed++
		if r.cancel != nil && r.executed&(cancelPollPeriod-1) == 0 {
			select {
			case <-r.cancel:
				panic(trapPanic{TrapCancelled, "execution cancelled"})
			default:
			}
		}
		if r.budget >= 0 {
			r.budget--
			if r.budget < 0 {
				panic(trapPanic{TrapBudget, "instruction budget exceeded"})
			}
		}
		if r.countSites {
			r.siteCounts[pi.siteID]++
		}
		switch pi.op {
		case ir.OpBr:
			if e := pi.edges[0]; e >= 0 {
				r.runCopies(slots, consts, pf.edgeCopies[e])
			}
			pc = int(pi.targets[0])
			if fs.tab != nil {
				if ns := fs.tab.pcSec[pc]; ns != fs.cur {
					r.secTransition(&fs, ns, pc, slots)
				}
			}
		case ir.OpCondBr:
			k := 1
			if get(slots, consts, pi.a0).I != 0 {
				k = 0
			}
			if e := pi.edges[k]; e >= 0 {
				r.runCopies(slots, consts, pf.edgeCopies[e])
			}
			pc = int(pi.targets[k])
			if fs.tab != nil {
				if ns := fs.tab.pcSec[pc]; ns != fs.cur {
					r.secTransition(&fs, ns, pc, slots)
				}
			}
		case ir.OpRet:
			var ret Val
			if pi.nops > 0 {
				ret = get(slots, consts, pi.a0)
			}
			if fs.tab != nil {
				r.secRet(&fs, ret)
			}
			return ret
		case ir.OpTrap:
			raiseTrap(get(slots, consts, pi.a0).I)
		case ir.OpStore:
			addr := get(slots, consts, pi.a1).I
			v := get(slots, consts, pi.a0)
			if r.sec != nil {
				r.hist = mix(mix(r.hist, uint64(addr)), valBits(v))
			}
			r.mem.Store(addr, pi.elemSize, v, pi.storeFloat)
			pc++
		default:
			v := r.eval(pi, slots, consts)
			if pi.injectable {
				if r.secCap != nil && fs.tab != nil {
					r.secCap.Pops[fs.cur]++
				}
				fired := false
				if r.secTarget < 0 || (fs.tab != nil && fs.cur == r.secTarget) {
					r.injectableSeen++
					if r.injectArmed && r.injectableSeen-1 == r.injectIndex {
						v, r.injectedMask = CorruptValue(v, pi.typ, r.injectBit, r.injectMask, r.injectCorrelated)
						r.injected = true
						r.injectedSite = int(pi.siteID)
						r.injectedAt = r.executed
						r.injectArmed = false
						r.corruptions = 1
						r.injSec, r.injOrd = fs.cur, fs.ord
						fired = true
					}
				}
				// Persistent fault: once fired, every later dynamic
				// execution of the defective static instruction
				// re-applies the corruption (with the plan's raw
				// parameters — the effective mask depends on the value).
				if !fired && r.injectSticky && r.injected && int(pi.siteID) == r.injectedSite {
					v, _ = CorruptValue(v, pi.typ, r.injectBit, r.injectMask, r.injectCorrelated)
					r.corruptions++
				}
			}
			if pi.dst >= 0 {
				slots[pi.dst] = v
			}
			pc++
		}
	}
}

// TrapCodeDetected is the trap operand used by protection checks; it
// maps to TrapDetected (the "detected by duplication" outcome).
const TrapCodeDetected = 1

// eval computes the result of a non-control, non-store instruction. It
// is the single shared implementation of value semantics: execFull
// routes every value opcode here, execFast only the cold ones.
func (r *rank) eval(pi *pInstr, slots, consts []Val) Val {
	switch pi.op {
	case ir.OpAdd:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I+get(slots, consts, pi.a1).I))
	case ir.OpSub:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I-get(slots, consts, pi.a1).I))
	case ir.OpMul:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I*get(slots, consts, pi.a1).I))
	case ir.OpSDiv:
		d := get(slots, consts, pi.a1).I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer division by zero"})
		}
		if d == -1 {
			return IntVal(truncToType(pi.typ, -get(slots, consts, pi.a0).I))
		}
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I/d))
	case ir.OpSRem:
		d := get(slots, consts, pi.a1).I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer remainder by zero"})
		}
		if d == -1 {
			return IntVal(0)
		}
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I%d))
	case ir.OpFAdd:
		return FloatVal(get(slots, consts, pi.a0).F + get(slots, consts, pi.a1).F)
	case ir.OpFSub:
		return FloatVal(get(slots, consts, pi.a0).F - get(slots, consts, pi.a1).F)
	case ir.OpFMul:
		return FloatVal(get(slots, consts, pi.a0).F * get(slots, consts, pi.a1).F)
	case ir.OpFDiv:
		return FloatVal(get(slots, consts, pi.a0).F / get(slots, consts, pi.a1).F)
	case ir.OpAnd:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I&get(slots, consts, pi.a1).I))
	case ir.OpOr:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I|get(slots, consts, pi.a1).I))
	case ir.OpXor:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I^get(slots, consts, pi.a1).I))
	case ir.OpShl:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I<<(uint64(get(slots, consts, pi.a1).I)&63)))
	case ir.OpLShr:
		w := uint64(pi.typ.Bits())
		x := uint64(get(slots, consts, pi.a0).I) & widthMask(w)
		return IntVal(truncToType(pi.typ, int64(x>>(uint64(get(slots, consts, pi.a1).I)&(w-1)))))
	case ir.OpAShr:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I>>(uint64(get(slots, consts, pi.a1).I)&63)))
	case ir.OpICmp:
		return Bool(icmp(pi.pred, get(slots, consts, pi.a0).I, get(slots, consts, pi.a1).I))
	case ir.OpFCmp:
		return Bool(fcmp(pi.pred, get(slots, consts, pi.a0).F, get(slots, consts, pi.a1).F))
	case ir.OpLoad:
		return r.mem.Load(get(slots, consts, pi.a0).I, pi.elemSize, pi.isFloat)
	case ir.OpAlloca:
		return IntVal(r.mem.Alloca(pi.allocBytes))
	case ir.OpGEP:
		return IntVal(get(slots, consts, pi.a0).I + get(slots, consts, pi.a1).I*pi.elemSize)
	case ir.OpAtomicRMW:
		addr := get(slots, consts, pi.a0).I
		old := r.mem.Load(addr, pi.elemSize, false)
		nv := IntVal(old.I + get(slots, consts, pi.a1).I)
		if r.sec != nil {
			r.hist = mix(mix(r.hist, uint64(addr)), uint64(nv.I))
		}
		r.mem.Store(addr, pi.elemSize, nv, false)
		return old
	case ir.OpTrunc, ir.OpSExt:
		return IntVal(truncToType(pi.typ, get(slots, consts, pi.a0).I))
	case ir.OpZExt:
		return IntVal(get(slots, consts, pi.a0).I & int64(pi.srcMask))
	case ir.OpSIToFP:
		return FloatVal(float64(get(slots, consts, pi.a0).I))
	case ir.OpFPToSI:
		return IntVal(truncToType(pi.typ, fpToInt(get(slots, consts, pi.a0).F)))
	case ir.OpPtrToInt, ir.OpIntToPtr:
		return get(slots, consts, pi.a0)
	case ir.OpBitcast:
		v := get(slots, consts, pi.a0)
		if !pi.isFloat {
			return IntVal(int64(math.Float64bits(v.F)))
		}
		return FloatVal(math.Float64frombits(uint64(v.I)))
	case ir.OpSelect:
		if get(slots, consts, pi.a0).I != 0 {
			return get(slots, consts, pi.a1)
		}
		return get(slots, consts, pi.ops[2])
	case ir.OpCall:
		// Marshal arguments through the frame arena (released right
		// after the call returns) instead of allocating per call.
		saveCur, saveOff := r.arenaCur, r.arenaOff
		args := r.frame(len(pi.ops), false)
		for i, o := range pi.ops {
			args[i] = get(slots, consts, o)
		}
		v := r.callFunc(pi.callee, args)
		r.arenaCur, r.arenaOff = saveCur, saveOff
		return v
	}
	panic(trapPanic{TrapAbort, "unknown opcode " + pi.op.String()})
}

// arith2 evaluates the fused arithmetic half of a superinstruction.
// The fusion pass only admits ops from fusableArith, so the default arm
// is unreachable; it returns a zero Val rather than panicking to keep
// the function inlinable into the hot loop.
func arith2(op ir.Op, t *ir.Type, a, b Val) Val {
	switch op {
	case ir.OpAdd:
		return IntVal(truncToType(t, a.I+b.I))
	case ir.OpSub:
		return IntVal(truncToType(t, a.I-b.I))
	case ir.OpMul:
		return IntVal(truncToType(t, a.I*b.I))
	case ir.OpFAdd:
		return FloatVal(a.F + b.F)
	case ir.OpFSub:
		return FloatVal(a.F - b.F)
	case ir.OpFMul:
		return FloatVal(a.F * b.F)
	case ir.OpFDiv:
		return FloatVal(a.F / b.F)
	}
	return Val{}
}

func widthMask(w uint64) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// fpToInt converts a float to int64 deterministically: NaN becomes 0
// and out-of-range values saturate.
func fpToInt(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

func icmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}
