package interp

import (
	"math"

	"ipas/internal/ir"
)

// rank is the per-MPI-process execution state.
type rank struct {
	id   int
	prog *Program
	mem  *Memory
	comm *comm

	// cancel, when non-nil, is the embedding context's Done channel;
	// the instruction loop polls it every cancelPollPeriod instructions
	// and raises TrapCancelled.
	cancel <-chan struct{}

	budget   int64 // remaining instruction budget (-1: unlimited)
	executed int64

	// Fault plan.
	injectArmed  bool
	injectIndex  int64 // dynamic injectable-instance index to corrupt
	injectBit    int
	injected     bool
	injectedSite int
	injectedAt   int64 // executed-instruction count when the flip fired

	injectableSeen int64

	countSites bool
	siteCounts []int64

	outputF  []float64
	outputI  []int64
	printLog []float64

	callDepth int
	scratch   []Val // phi parallel-copy buffer

	// arenaBlocks back call frames: frames are carved off sequentially
	// and released LIFO on return, avoiding per-call heap allocation.
	// Blocks never move, so outstanding frames stay valid as the arena
	// grows.
	arenaBlocks [][]Val
	arenaCur    int
	arenaOff    int
}

const arenaBlockSize = 16384

// frame carves a zeroed slot slice of length n from the arena.
func (r *rank) frame(n int) []Val {
	if r.arenaBlocks == nil {
		size := arenaBlockSize
		if n > size {
			size = n
		}
		r.arenaBlocks = [][]Val{make([]Val, size)}
	}
	if r.arenaOff+n > len(r.arenaBlocks[r.arenaCur]) {
		r.arenaCur++
		if r.arenaCur == len(r.arenaBlocks) {
			size := arenaBlockSize
			if n > size {
				size = n
			}
			r.arenaBlocks = append(r.arenaBlocks, make([]Val, size))
		} else if len(r.arenaBlocks[r.arenaCur]) < n {
			r.arenaBlocks[r.arenaCur] = make([]Val, n)
		}
		r.arenaOff = 0
	}
	blk := r.arenaBlocks[r.arenaCur]
	s := blk[r.arenaOff : r.arenaOff+n : r.arenaOff+n]
	for i := range s {
		s[i] = Val{}
	}
	r.arenaOff += n
	return s
}

const maxCallDepth = 4096

// cancelPollPeriod is how many executed instructions pass between
// cancellation polls (power of two; the poll is a non-blocking select).
const cancelPollPeriod = 4096

// run executes @main on this rank and returns the trap (TrapNone on
// normal termination).
func (r *rank) run() (trap Trap, msg string) {
	defer func() {
		if p := recover(); p != nil {
			tp, ok := p.(trapPanic)
			if !ok {
				panic(p)
			}
			trap, msg = tp.trap, tp.msg
		}
	}()
	r.callFunc(r.prog.main, nil)
	return TrapNone, ""
}

// callFunc invokes a compiled function with the given arguments.
func (r *rank) callFunc(pf *progFunc, args []Val) Val {
	if pf.builtin != builtinNone {
		return r.callBuiltin(pf.builtin, args)
	}
	r.callDepth++
	if r.callDepth > maxCallDepth {
		panic(trapPanic{TrapStackOverflow, "call depth exceeded"})
	}
	sp := r.mem.PushFrame()
	saveCur, saveOff := r.arenaCur, r.arenaOff
	slots := r.frame(pf.numSlots)
	copy(slots, args)

	bi := 0
	var prev *progBlock
	for {
		b := pf.blocks[bi]
		// PHI parallel copies for the edge prev->b.
		if prev != nil && len(b.phiCopies) > 0 {
			pi := -1
			for i, p := range b.preds {
				if p == prev {
					pi = i
					break
				}
			}
			if pi >= 0 && len(b.phiCopies[pi]) > 0 {
				cps := b.phiCopies[pi]
				if cap(r.scratch) < len(cps) {
					r.scratch = make([]Val, len(cps))
				}
				tmp := r.scratch[:len(cps)]
				for i, cp := range cps {
					tmp[i] = r.get(slots, cp.src)
				}
				for i, cp := range cps {
					slots[cp.dst] = tmp[i]
				}
			}
		}
		prev = b

		for ii := range b.instrs {
			pi := &b.instrs[ii]
			r.executed++
			if r.cancel != nil && r.executed&(cancelPollPeriod-1) == 0 {
				select {
				case <-r.cancel:
					panic(trapPanic{TrapCancelled, "execution cancelled"})
				default:
				}
			}
			if r.budget >= 0 {
				r.budget--
				if r.budget < 0 {
					panic(trapPanic{TrapBudget, "instruction budget exceeded"})
				}
			}
			if r.countSites {
				r.siteCounts[pi.src.SiteID]++
			}
			switch pi.op {
			case ir.OpBr:
				bi = pi.blocks[0]
			case ir.OpCondBr:
				if r.get(slots, pi.ops[0]).I != 0 {
					bi = pi.blocks[0]
				} else {
					bi = pi.blocks[1]
				}
			case ir.OpRet:
				var ret Val
				if len(pi.ops) > 0 {
					ret = r.get(slots, pi.ops[0])
				}
				r.mem.PopFrame(sp)
				r.arenaCur, r.arenaOff = saveCur, saveOff
				r.callDepth--
				return ret
			case ir.OpTrap:
				code := r.get(slots, pi.ops[0]).I
				if code == TrapCodeDetected {
					panic(trapPanic{TrapDetected, "duplication check failed"})
				}
				panic(trapPanic{TrapAbort, "explicit trap"})
			case ir.OpStore:
				v := r.get(slots, pi.ops[0])
				addr := r.get(slots, pi.ops[1]).I
				r.mem.Store(addr, pi.elemSize, v, pi.storeFloat)
			default:
				v := r.eval(pi, slots)
				if pi.injectable {
					r.injectableSeen++
					if r.injectArmed && r.injectableSeen-1 == r.injectIndex {
						v = FlipBit(v, pi.typ, r.injectBit)
						r.injected = true
						r.injectedSite = pi.src.SiteID
						r.injectedAt = r.executed
						r.injectArmed = false
					}
				}
				if pi.dst >= 0 {
					slots[pi.dst] = v
				}
			}
			if pi.op.IsTerminator() {
				break
			}
		}
	}
}

// TrapCodeDetected is the trap operand used by protection checks; it
// maps to TrapDetected (the "detected by duplication" outcome).
const TrapCodeDetected = 1

func (r *rank) get(slots []Val, o operand) Val {
	if o.isConst {
		return o.c
	}
	return slots[o.slot]
}

// eval computes the result of a non-control, non-store instruction.
func (r *rank) eval(pi *pInstr, slots []Val) Val {
	switch pi.op {
	case ir.OpAdd:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I+r.get(slots, pi.ops[1]).I))
	case ir.OpSub:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I-r.get(slots, pi.ops[1]).I))
	case ir.OpMul:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I*r.get(slots, pi.ops[1]).I))
	case ir.OpSDiv:
		d := r.get(slots, pi.ops[1]).I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer division by zero"})
		}
		if d == -1 {
			return IntVal(truncToType(pi.typ, -r.get(slots, pi.ops[0]).I))
		}
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I/d))
	case ir.OpSRem:
		d := r.get(slots, pi.ops[1]).I
		if d == 0 {
			panic(trapPanic{TrapDivZero, "integer remainder by zero"})
		}
		if d == -1 {
			return IntVal(0)
		}
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I%d))
	case ir.OpFAdd:
		return FloatVal(r.get(slots, pi.ops[0]).F + r.get(slots, pi.ops[1]).F)
	case ir.OpFSub:
		return FloatVal(r.get(slots, pi.ops[0]).F - r.get(slots, pi.ops[1]).F)
	case ir.OpFMul:
		return FloatVal(r.get(slots, pi.ops[0]).F * r.get(slots, pi.ops[1]).F)
	case ir.OpFDiv:
		return FloatVal(r.get(slots, pi.ops[0]).F / r.get(slots, pi.ops[1]).F)
	case ir.OpAnd:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I&r.get(slots, pi.ops[1]).I))
	case ir.OpOr:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I|r.get(slots, pi.ops[1]).I))
	case ir.OpXor:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I^r.get(slots, pi.ops[1]).I))
	case ir.OpShl:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I<<(uint64(r.get(slots, pi.ops[1]).I)&63)))
	case ir.OpLShr:
		w := uint64(pi.typ.Bits())
		x := uint64(r.get(slots, pi.ops[0]).I) & widthMask(w)
		return IntVal(truncToType(pi.typ, int64(x>>(uint64(r.get(slots, pi.ops[1]).I)&(w-1)))))
	case ir.OpAShr:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I>>(uint64(r.get(slots, pi.ops[1]).I)&63)))
	case ir.OpICmp:
		a, b := r.get(slots, pi.ops[0]).I, r.get(slots, pi.ops[1]).I
		return Bool(icmp(pi.pred, a, b))
	case ir.OpFCmp:
		a, b := r.get(slots, pi.ops[0]).F, r.get(slots, pi.ops[1]).F
		return Bool(fcmp(pi.pred, a, b))
	case ir.OpLoad:
		addr := r.get(slots, pi.ops[0]).I
		return r.mem.Load(addr, pi.elemSize, pi.typ.IsFloat())
	case ir.OpAlloca:
		return IntVal(r.mem.Alloca(pi.allocBytes))
	case ir.OpGEP:
		return IntVal(r.get(slots, pi.ops[0]).I + r.get(slots, pi.ops[1]).I*pi.elemSize)
	case ir.OpAtomicRMW:
		addr := r.get(slots, pi.ops[0]).I
		old := r.mem.Load(addr, 8, false)
		r.mem.Store(addr, 8, IntVal(old.I+r.get(slots, pi.ops[1]).I), false)
		return old
	case ir.OpTrunc, ir.OpSExt:
		return IntVal(truncToType(pi.typ, r.get(slots, pi.ops[0]).I))
	case ir.OpZExt:
		src := pi.src.Operand(0).Type()
		return IntVal(r.get(slots, pi.ops[0]).I & int64(widthMask(uint64(src.Bits()))))
	case ir.OpSIToFP:
		return FloatVal(float64(r.get(slots, pi.ops[0]).I))
	case ir.OpFPToSI:
		return IntVal(truncToType(pi.typ, fpToInt(r.get(slots, pi.ops[0]).F)))
	case ir.OpPtrToInt, ir.OpIntToPtr:
		return r.get(slots, pi.ops[0])
	case ir.OpBitcast:
		v := r.get(slots, pi.ops[0])
		if pi.typ == ir.I64 {
			return IntVal(int64(math.Float64bits(v.F)))
		}
		return FloatVal(math.Float64frombits(uint64(v.I)))
	case ir.OpSelect:
		if r.get(slots, pi.ops[0]).I != 0 {
			return r.get(slots, pi.ops[1])
		}
		return r.get(slots, pi.ops[2])
	case ir.OpCall:
		args := make([]Val, len(pi.ops))
		for i := range pi.ops {
			args[i] = r.get(slots, pi.ops[i])
		}
		return r.callFunc(pi.callee, args)
	}
	panic(trapPanic{TrapAbort, "unknown opcode " + pi.op.String()})
}

func widthMask(w uint64) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// fpToInt converts a float to int64 deterministically: NaN becomes 0
// and out-of-range values saturate.
func fpToInt(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

func icmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}
