package interp

import (
	"testing"

	"ipas/internal/ir"
)

// secSrc exercises every section shape the runtime must handle: a
// prologue that allocates, a loop nest that stores and accumulates, a
// helper call inside the loop, and an epilogue that emits outputs.
const secSrc = `
builtin @malloc_f64(i64) i64
builtin @out_f64(i64, f64) void
builtin @out_i64(i64, i64) void

func @sq(f64 %x) f64 {
entry:
  %r = fmul f64 %x, %x
  ret f64 %r
}

func @main() void {
entry:
  %n = add i64 6, 0
  %raw = call i64 @malloc_f64(i64 %n)
  %buf = inttoptr i64 %raw to f64*
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i1, %loop]
  %acc = phi f64 [0.0, %entry], [%acc1, %loop]
  %xf = sitofp i64 %i to f64
  %s = call f64 @sq(f64 %xf)
  %p = gep f64* %buf, %i
  store f64 %s, %p
  %acc1 = fadd f64 %acc, %s
  %i1 = add i64 %i, 1
  %c = icmp lt i64 %i1, %n
  condbr %c, %loop, %exit
exit:
  %half = fmul f64 %acc1, 0.5
  call void @out_f64(i64 0, f64 %acc1)
  call void @out_f64(i64 1, f64 %half)
  call void @out_i64(i64 0, i64 %i1)
  ret void
}
`

// compileSectioned parses, compiles and builds section tables.
func compileSectioned(t *testing.T, src string) (*Program, *SectionTables) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m.AssignSiteIDs()
	p, err := Compile(m, refInjectable)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tabs, err := NewSectionTables(p, ir.ModuleSections(m))
	if err != nil {
		t.Fatalf("section tables: %v", err)
	}
	return p, tabs
}

// TestSectionCaptureMatchesPlainRun checks that arming section capture
// perturbs nothing observable and that the per-section populations it
// records partition the global injectable population exactly.
func TestSectionCaptureMatchesPlainRun(t *testing.T) {
	p, tabs := compileSectioned(t, secSrc)

	plain := Run(p, Config{CountSites: true})
	if plain.Trap != TrapNone {
		t.Fatalf("plain run trapped: %v (%s)", plain.Trap, plain.TrapMsg)
	}
	cap := Run(p, Config{Sections: &SectionConfig{Tables: tabs, Capture: true}})
	if cap.Trap != TrapNone {
		t.Fatalf("capture run trapped: %v (%s)", cap.Trap, cap.TrapMsg)
	}
	if cap.Sections == nil {
		t.Fatal("capture run recorded no SectionTrace")
	}
	if len(cap.OutputF) != len(plain.OutputF) {
		t.Fatalf("output lengths differ: %d vs %d", len(cap.OutputF), len(plain.OutputF))
	}
	for i := range plain.OutputF {
		if cap.OutputF[i] != plain.OutputF[i] {
			t.Errorf("OutputF[%d] = %v, plain %v", i, cap.OutputF[i], plain.OutputF[i])
		}
	}
	if cap.TotalDyn != plain.TotalDyn {
		t.Errorf("dynamic counts differ: %d vs %d", cap.TotalDyn, plain.TotalDyn)
	}
	var popSum int64
	for _, n := range cap.Sections.Pops {
		popSum += n
	}
	if popSum != plain.Injectable[0] {
		t.Errorf("section populations sum to %d, global injectable population is %d",
			popSum, plain.Injectable[0])
	}
	for s, n := range cap.Sections.Entries {
		if n > 0 && len(cap.Sections.Exits[s]) == 0 {
			t.Errorf("section %d entered %d times but recorded no exits", s, n)
		}
	}
}

// TestSectionTargetedInjectionEquivalence proves the (section, local
// index) trial space is exactly the global index space: running every
// targeted trial reproduces, instance for instance, what global-index
// trials hit (site, dynamic position, and effect).
func TestSectionTargetedInjectionEquivalence(t *testing.T) {
	p, tabs := compileSectioned(t, secSrc)
	golden := Run(p, Config{Sections: &SectionConfig{Tables: tabs, Capture: true}})
	if golden.Trap != TrapNone {
		t.Fatalf("golden trapped: %v", golden.Trap)
	}
	pop := int64(0)
	for _, n := range golden.Sections.Pops {
		pop += n
	}

	type hit struct {
		site int
		at   int64
	}
	count := map[hit]int{}
	// Global trials, one per instance (bit 0, no section config).
	for idx := int64(0); idx < pop; idx++ {
		res := Run(p, Config{Fault: &FaultPlan{Index: idx, Bit: 0}, MaxInstrs: 1 << 20})
		if !res.Injected {
			t.Fatalf("global trial %d did not inject", idx)
		}
		count[hit{res.InjectedSite, res.InjectedAt}]++
	}
	// Targeted trials, one per (section, local ordinal).
	for sec, n := range golden.Sections.Pops {
		for idx := int64(0); idx < n; idx++ {
			res := Run(p, Config{
				Fault:     &FaultPlan{Index: idx, Bit: 0, Section: int32(sec)},
				MaxInstrs: 1 << 20,
				Sections:  &SectionConfig{Tables: tabs},
			})
			if !res.Injected {
				t.Fatalf("trial (sec %d, idx %d) did not inject", sec, idx)
			}
			h := hit{res.InjectedSite, res.InjectedAt}
			count[h]--
			if count[h] < 0 {
				t.Fatalf("targeted trial (sec %d, idx %d) hit %+v, never hit globally", sec, idx, h)
			}
		}
	}
	for h, n := range count {
		if n != 0 {
			t.Errorf("instance %+v hit %d more times globally than targeted", h, n)
		}
	}
}

// TestSectionEarlyMaskedSoundness runs every (section, ordinal, bit)
// trial twice — with and without the golden trace armed — and checks
// that whenever the armed run declares EarlyMasked, the full run really
// was masked (identical outputs), i.e. the boundary digest never
// promotes a corrupting trial to Masked.
func TestSectionEarlyMaskedSoundness(t *testing.T) {
	p, tabs := compileSectioned(t, secSrc)
	golden := Run(p, Config{Sections: &SectionConfig{Tables: tabs, Capture: true}})
	if golden.Trap != TrapNone {
		t.Fatalf("golden trapped: %v", golden.Trap)
	}

	sameOutputs := func(r *Result) bool {
		if len(r.OutputF) != len(golden.OutputF) || len(r.OutputI) != len(golden.OutputI) {
			return false
		}
		for i := range golden.OutputF {
			if r.OutputF[i] != golden.OutputF[i] {
				return false
			}
		}
		for i := range golden.OutputI {
			if r.OutputI[i] != golden.OutputI[i] {
				return false
			}
		}
		return true
	}

	early, total := 0, 0
	for sec, n := range golden.Sections.Pops {
		for idx := int64(0); idx < n; idx++ {
			for _, bit := range []int{0, 1, 17, 52, 63} {
				total++
				plan := FaultPlan{Index: idx, Bit: bit, Section: int32(sec)}
				armed := Run(p, Config{
					Fault:     &plan,
					MaxInstrs: 1 << 20,
					Sections:  &SectionConfig{Tables: tabs, Golden: golden.Sections},
				})
				if !armed.EarlyMasked {
					continue
				}
				early++
				full := Run(p, Config{
					Fault:     &plan,
					MaxInstrs: 1 << 20,
					Sections:  &SectionConfig{Tables: tabs},
				})
				if full.Trap != TrapNone || !sameOutputs(full) {
					t.Fatalf("trial (sec %d, idx %d, bit %d) early-masked but full run differs (trap %v)",
						sec, idx, bit, full.Trap)
				}
			}
		}
	}
	if early == 0 {
		t.Errorf("no trial early-masked out of %d — the fast path never fires", total)
	}
	t.Logf("early-masked %d of %d trials", early, total)
}
