package interp_test

import (
	"math"
	"reflect"
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/workloads"
)

// compileTwice compiles a workload's module into a fused program and a
// fusion-disabled one. Each gets its own module instance so neither
// compile can observe the other's side effects.
func compileTwice(t *testing.T, spec *workloads.Spec) (fused, plain *interp.Program) {
	t.Helper()
	compile := func(opts interp.Options) *interp.Program {
		m, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		m.AssignSiteIDs()
		p, err := interp.CompileWithOptions(m, fault.Injectable, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return compile(interp.Options{}), compile(interp.Options{NoFuse: true})
}

// TestFusionWorkloadBitIdentity runs all five mini-apps with and
// without superinstruction fusion and requires every observable to be
// bit-identical: outputs, print log, dynamic instruction counts, the
// injectable population, and the sectioned golden capture (per-section
// populations, entry counts and boundary digests). Fusion is an
// encoding of the fast stream, never a semantic change.
func TestFusionWorkloadBitIdentity(t *testing.T) {
	for _, name := range workloads.Names {
		t.Run(name, func(t *testing.T) {
			spec := workloads.MustGet(name, 1)
			fused, plain := compileTwice(t, spec)

			if fused.FusedPairs() == 0 {
				t.Errorf("%s: no pairs fused on a real workload", name)
			}
			if plain.FusedPairs() != 0 {
				t.Errorf("%s: NoFuse program reports %d fused pairs", name, plain.FusedPairs())
			}
			// Fusion is invisible to content identity: campaigns over a
			// fused and an unfused build of the same module must share
			// golden-cache entries.
			if fused.Fingerprint() != plain.Fingerprint() {
				t.Errorf("%s: fingerprints differ across fusion: %s vs %s",
					name, fused.Fingerprint(), plain.Fingerprint())
			}

			cfg := spec.BaseConfig(1)
			a := interp.Run(fused, cfg)
			b := interp.Run(plain, cfg)
			compareResults(t, a, b)

			// Sectioned golden capture (instrumented loop): the section
			// tables project the canonical stream, which fusion must not
			// have disturbed.
			secA := sectionedCapture(t, fused, cfg)
			secB := sectionedCapture(t, plain, cfg)
			if !reflect.DeepEqual(secA.Pops, secB.Pops) {
				t.Errorf("%s: section populations differ: %v vs %v", name, secA.Pops, secB.Pops)
			}
			if !reflect.DeepEqual(secA.Entries, secB.Entries) {
				t.Errorf("%s: section entry counts differ: %v vs %v", name, secA.Entries, secB.Entries)
			}
			if !reflect.DeepEqual(secA.Exits, secB.Exits) {
				t.Errorf("%s: section boundary digests differ", name)
			}
		})
	}
}

func sectionedCapture(t *testing.T, p *interp.Program, cfg interp.Config) *interp.SectionTrace {
	t.Helper()
	parts := ir.ModuleSections(p.Module())
	tables, err := interp.NewSectionTables(p, parts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sections = &interp.SectionConfig{Tables: tables, Capture: true}
	cfg.CountSites = true
	res := interp.Run(p, cfg)
	if res.Trap != interp.TrapNone {
		t.Fatalf("sectioned run trapped: %v (%s)", res.Trap, res.TrapMsg)
	}
	if res.Sections == nil {
		t.Fatal("sectioned run captured no trace")
	}
	return res.Sections
}

func compareResults(t *testing.T, a, b *interp.Result) {
	t.Helper()
	if a.Trap != b.Trap {
		t.Fatalf("trap: %v vs %v", a.Trap, b.Trap)
	}
	if a.TotalDyn != b.TotalDyn {
		t.Errorf("TotalDyn: %d vs %d", a.TotalDyn, b.TotalDyn)
	}
	if !reflect.DeepEqual(a.DynInstrs, b.DynInstrs) {
		t.Errorf("DynInstrs: %v vs %v", a.DynInstrs, b.DynInstrs)
	}
	if !reflect.DeepEqual(a.Injectable, b.Injectable) {
		t.Errorf("Injectable: %v vs %v", a.Injectable, b.Injectable)
	}
	if len(a.OutputF) != len(b.OutputF) {
		t.Fatalf("OutputF length: %d vs %d", len(a.OutputF), len(b.OutputF))
	}
	for i := range a.OutputF {
		if math.Float64bits(a.OutputF[i]) != math.Float64bits(b.OutputF[i]) {
			t.Errorf("OutputF[%d]: %x vs %x", i,
				math.Float64bits(a.OutputF[i]), math.Float64bits(b.OutputF[i]))
		}
	}
	if !reflect.DeepEqual(a.OutputI, b.OutputI) {
		t.Errorf("OutputI differs")
	}
	if len(a.PrintLog) != len(b.PrintLog) {
		t.Fatalf("PrintLog length: %d vs %d", len(a.PrintLog), len(b.PrintLog))
	}
	for i := range a.PrintLog {
		if math.Float64bits(a.PrintLog[i]) != math.Float64bits(b.PrintLog[i]) {
			t.Errorf("PrintLog[%d] differs", i)
		}
	}
}
