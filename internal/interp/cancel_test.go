package interp

import (
	"context"
	"testing"
	"time"
)

// A context cancelled before the run starts must stop execution at the
// first poll point with the infrastructure trap, not a symptom.
func TestRunContextPreCancelled(t *testing.T) {
	p := compileSci(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 100000; i = i + 1) {
		s = s + i;
	}
	out_i64(0, s);
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunContext(ctx, p, Config{})
	if res.Trap != TrapCancelled {
		t.Fatalf("trap = %v (%s), want TrapCancelled", res.Trap, res.TrapMsg)
	}
	if res.Trap.IsSymptom() {
		t.Fatal("cancellation counted as a symptom — it is an infrastructure condition")
	}
}

// Cancellation must interrupt an execution already deep inside the
// instruction loop (the poll fires every few thousand instructions), so
// a hung or very long run cannot outlive its campaign.
func TestRunContextCancelMidRun(t *testing.T) {
	p := compileSci(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 2000000000; i = i + 1) {
		s = s + i % 7;
	}
	out_i64(0, s);
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := RunContext(ctx, p, Config{})
	if res.Trap != TrapCancelled {
		t.Fatalf("trap = %v (%s), want TrapCancelled", res.Trap, res.TrapMsg)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// A receive blocked on a message that is still (very) far away must
// unblock on cancellation. Rank 1 busy-computes a long finite loop
// before sending, so rank 0's recv is blocked-but-not-deadlocked (a
// rank is still running, so the supervisor must NOT declare deadlock)
// when the cancel lands.
func TestRunContextCancelUnblocksRecv(t *testing.T) {
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 0) {
		var got int = mpi_recv_i64(1, 5);
		out_i64(0, got);
	} else {
		var s int = 0;
		for (var i int = 0; i < 2000000000; i = i + 1) {
			s = s + i % 7;
		}
		mpi_send_i64(0, 5, s);
	}
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res := RunContext(ctx, p, Config{Ranks: 2, Watchdog: time.Hour})
	if res.Trap != TrapCancelled {
		t.Fatalf("trap = %v (%s), want TrapCancelled", res.Trap, res.TrapMsg)
	}
	if res.Deadlock != nil {
		t.Fatalf("supervisor declared deadlock %v while a rank was still running", res.Deadlock)
	}
}
