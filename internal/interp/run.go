package interp

import (
	"context"
	"sync"
	"time"
)

// FaultPlan asks the interpreter to corrupt the result of the Index-th
// dynamic injectable-instruction instance executed on Rank. The default
// corruption is a single flipped bit (Bit); Mask, Correlated and Sticky
// select the richer error models (see CorruptValue for the exact
// semantics of each knob and how raw positions fold into the result
// type's width).
type FaultPlan struct {
	Rank  int
	Index int64
	// Bit is the raw flip position in [0, 64): reduced modulo the result
	// width at injection time when neither Mask nor Correlated is set.
	Bit int
	// Mask, when non-zero, replaces the single-bit flip with a multi-bit
	// corruption: every set raw position folds modulo the result width
	// and the folded positions XOR together (so two raw positions
	// landing on the same physical bit cancel — a defective bus lane
	// model, not an OR).
	Mask uint64
	// Correlated, when set, makes the flip value-correlated: the flipped
	// position sits Bit+1 places above the value's most significant set
	// bit (wrapped to the width), so corruption magnitude tracks value
	// magnitude.
	Correlated bool
	// Sticky, when set, models a defective functional unit: after the
	// plan fires once, every subsequent dynamic execution of the same
	// static instruction re-applies the corruption. Sticky runs never
	// take the early-masked section exit (the suffix keeps being
	// corrupted, so a matching boundary digest proves nothing).
	Sticky bool
	// Section restricts instance counting to dynamic instances executed
	// while the named section is current: Index then selects within the
	// section's own population (SectionTrace.Pops). Only consulted when
	// Config.Sections is armed; a plain plan leaves it zero.
	Section int32
}

// Config parameterizes a job execution.
type Config struct {
	// Ranks is the number of simulated MPI processes (default 1).
	Ranks int
	// HeapBytes and StackBytes size each rank's address space
	// (defaults: 64 MiB heap, 1 MiB stack).
	HeapBytes  int64
	StackBytes int64
	// MaxInstrs is the per-rank dynamic instruction budget; exceeding
	// it raises TrapBudget (the hang detector). 0 means unlimited.
	//
	// MaxInstrs, Fault and CountSites together select the execution
	// loop: when all three are off, ranks run the uninstrumented fast
	// loop (see exec.go); arming any of them selects the fully
	// instrumented loop. The choice is made once per run, never per
	// instruction, and is invisible to results: both loops produce
	// byte-identical outputs, traps, dynamic counts and injectable
	// populations.
	MaxInstrs int64
	// Fault, when non-nil, arms single-bit corruption.
	Fault *FaultPlan
	// CountSites enables per-site dynamic instruction counting.
	CountSites bool
	// Sections arms section-boundary tracking (capture on golden runs,
	// section-targeted injection and early-masked exit on trials). It
	// selects the instrumented loop and is honored only for
	// single-rank runs: a rank stopping early at a boundary would
	// strand MPI peers, so multi-rank configurations ignore it.
	Sections *SectionConfig
	// Watchdog bounds the wall-clock blocking of one MPI operation as
	// defense in depth (default 60s). Deadlocks are detected
	// structurally and instantly by the rank supervisor; the watchdog
	// only fires on supervisor bugs or pathological host overload, and
	// its TrapWatchdog is an infrastructure error, never a modeled
	// outcome.
	Watchdog time.Duration
}

// WithDefaults resolves zero-valued knobs to their defaults. RunContext
// applies it internally; external callers needing the resolved values —
// e.g. the golden cache keying on the effective heap and stack sizes —
// call it explicitly.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.HeapBytes <= 0 {
		c.HeapBytes = 64 << 20
	}
	if c.StackBytes <= 0 {
		c.StackBytes = 1 << 20
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 60 * time.Second
	}
	return c
}

// Result reports the outcome of a job execution.
type Result struct {
	// Trap is the first abnormal termination observed across ranks
	// (TrapNone for a clean run), with the rank and message. For
	// TrapDeadlock the fields are derived deterministically from
	// Deadlock (lowest blocked rank, report summary).
	Trap     Trap
	TrapRank int
	TrapMsg  string

	// Deadlock is the rank supervisor's structural-deadlock
	// attribution, non-nil iff deadlock was declared. Its content is a
	// pure function of the program and configuration (no wall-clock
	// value enters), so it is bit-identical across runs, worker counts
	// and checkpoint/resume.
	Deadlock *DeadlockReport

	// Injected reports whether the fault plan actually fired, on which
	// static site, and after how many executed instructions on the
	// injected rank (for detection-latency analysis).
	Injected     bool
	InjectedSite int
	InjectedAt   int64
	// InjectedRankDyn is the injected rank's final executed count.
	InjectedRankDyn int64
	// InjectedMask is the effective corruption mask the first firing
	// actually XORed into the value's bit pattern, in the result type's
	// own width (raw plan positions fold modulo the width, so this can
	// differ from the plan — and can even be zero when folded positions
	// cancel, in which case the value was left unchanged).
	InjectedMask uint64
	// Corruptions counts corruption applications: 1 for a transient
	// fault, >= 1 for a sticky plan (one per dynamic re-execution of the
	// defective static instruction).
	Corruptions int64

	// DynInstrs is the per-rank executed dynamic instruction count;
	// TotalDyn is their sum (the slowdown metric numerator).
	DynInstrs []int64
	TotalDyn  int64
	// MaxRankDyn is the largest per-rank count (parallel makespan).
	MaxRankDyn int64

	// Injectable is the per-rank count of injectable dynamic
	// instruction instances (the fault-sampling population).
	Injectable []int64

	// OutputF and OutputI are rank 0's output buffers, written by the
	// out_f64/out_i64 builtins and consumed by verification routines.
	OutputF []float64
	OutputI []int64

	// PrintLog collects print_f64/print_i64 values from rank 0.
	PrintLog []float64

	// SiteCounts is the per-site dynamic instruction count summed over
	// ranks (only when Config.CountSites).
	SiteCounts []int64

	// EarlyMasked reports that the run stopped at a section boundary
	// because its state digest matched the golden run's: the suffix
	// would replay the fault-free execution, so the trial is Masked.
	// Outputs are truncated at the stop point and must not be verified.
	EarlyMasked bool
	// Sections is the boundary trace captured on rank 0 when
	// Config.Sections.Capture was set.
	Sections *SectionTrace
}

// Run executes the program under the given configuration.
func Run(p *Program, cfg Config) *Result {
	return RunContext(context.Background(), p, cfg)
}

// RunContext executes the program, aborting with TrapCancelled as soon
// as ctx is cancelled or its deadline expires. Cancellation is polled
// in the instruction loop and honored by blocked MPI operations, so a
// hung or long run stops within a bounded number of instructions.
func RunContext(ctx context.Context, p *Program, cfg Config) *Result {
	cfg = cfg.withDefaults()
	cancel := ctx.Done()
	c := newComm(cfg.Ranks, cfg.Watchdog, cancel)
	ranks := make([]*rank, cfg.Ranks)
	for i := range ranks {
		r := &rank{
			id:           i,
			prog:         p,
			mem:          NewMemory(cfg.HeapBytes, cfg.StackBytes),
			comm:         c,
			cancel:       cancel,
			budget:       -1,
			injectedSite: -1,
			secTarget:    -1,
			injSec:       -1,
			zeroFrames:   p.zeroFrames,
		}
		if cfg.MaxInstrs > 0 {
			r.budget = cfg.MaxInstrs
		}
		if cfg.Fault != nil && cfg.Fault.Rank == i {
			r.injectArmed = true
			r.injectIndex = cfg.Fault.Index
			r.injectBit = cfg.Fault.Bit
			r.injectMask = cfg.Fault.Mask
			r.injectCorrelated = cfg.Fault.Correlated
			r.injectSticky = cfg.Fault.Sticky
		}
		if cfg.CountSites {
			r.countSites = true
			r.siteCounts = make([]int64, p.NumSites)
		}
		if cfg.Sections != nil && cfg.Sections.Tables != nil && cfg.Ranks == 1 {
			r.sec = cfg.Sections.Tables
			r.secOrd = make([]int64, r.sec.NumSections())
			if cfg.Sections.Capture {
				r.secCap = newSectionTrace(r.sec.NumSections())
			}
			r.secGold = cfg.Sections.Golden
			if r.injectArmed {
				r.secTarget = cfg.Fault.Section
			}
		}
		// Loop specialization (decided once per run): a rank with any
		// instrumentation armed — budget, site counting, section
		// tracking, or an injection plan targeting it — takes the full
		// loop; everything else takes the fast loop.
		r.instrumented = r.budget >= 0 || r.countSites || r.injectArmed || r.sec != nil
		ranks[i] = r
	}

	var mu sync.Mutex
	res := &Result{InjectedSite: -1, TrapRank: -1}

	var wg sync.WaitGroup
	for i := range ranks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trap, msg := ranks[i].run()
			// Tell the supervisor this rank terminated (idempotent —
			// blocked ops mark their own trap before unwinding). A
			// clean exit may complete the structural-deadlock
			// condition for still-blocked peers.
			c.sup.finish(i, trap)
			if trap != TrapNone {
				mu.Lock()
				if res.Trap == TrapNone {
					res.Trap, res.TrapRank, res.TrapMsg = trap, i, msg
				}
				mu.Unlock()
				c.abort()
			}
		}(i)
	}
	wg.Wait()

	// On deadlock, every blocked rank panicked TrapDeadlock
	// concurrently and the first-recorded one won the race above;
	// override the attribution deterministically from the report (the
	// report itself is the unique final quiescent configuration).
	if rep := c.sup.Report(); rep != nil {
		res.Deadlock = rep
		if res.Trap == TrapDeadlock {
			res.TrapRank = rep.Blocked[0].Rank
			res.TrapMsg = rep.Summary()
		}
	}

	// Secondary aborts ("job aborted") on other ranks are consequences
	// of the primary trap already recorded.
	for i, r := range ranks {
		res.DynInstrs = append(res.DynInstrs, r.executed)
		res.TotalDyn += r.executed
		if r.executed > res.MaxRankDyn {
			res.MaxRankDyn = r.executed
		}
		res.Injectable = append(res.Injectable, r.injectableSeen)
		if r.injected {
			res.Injected = true
			res.InjectedSite = r.injectedSite
			res.InjectedAt = r.injectedAt
			// Latency from injection to this rank's termination.
			res.InjectedRankDyn = r.executed
			res.InjectedMask = r.injectedMask
			res.Corruptions = r.corruptions
		}
		if r.earlyMasked {
			res.EarlyMasked = true
		}
		if i == 0 {
			res.OutputF = r.outputF
			res.OutputI = r.outputI
			res.PrintLog = r.printLog
			res.Sections = r.secCap
		}
		if cfg.CountSites {
			if res.SiteCounts == nil {
				res.SiteCounts = make([]int64, p.NumSites)
			}
			for s, n := range r.siteCounts {
				res.SiteCounts[s] += n
			}
		}
	}
	// All observables have been copied out of rank state; the address
	// spaces can be recycled for the next run.
	for _, r := range ranks {
		r.mem.Release()
	}
	return res
}
