package interp

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"ipas/internal/lang"
)

// FuzzMPISchedule generates random multi-rank communication programs
// and checks the supervision invariants: the outcome CLASS (clean /
// deadlock / trapped) is a pure function of the program — never of the
// Go scheduler — and for clean and deadlock runs the entire result
// (trap fields, per-rank instruction counts, outputs, and the deadlock
// report) is bit-identical run to run. Trapped runs are only compared
// by class: which rank's trap is recorded as primary, and how far
// other ranks get before observing the abort, legitimately depend on
// scheduling; everything up to the first event does not.
//
// Run as a short smoke in CI (see the fuzz-smoke Makefile target) and
// indefinitely with: go test -fuzz FuzzMPISchedule ./internal/interp
func FuzzMPISchedule(f *testing.F) {
	f.Add([]byte{2, 0, 0, 1, 0, 2, 0})                // send/recv pairs
	f.Add([]byte{0, 1, 1, 1, 2, 3, 3, 0, 4, 1})       // recv first: deadlock shapes
	f.Add([]byte{1, 2, 0, 3, 3, 1, 2, 2, 5, 9, 0, 0}) // collectives + compute
	f.Add([]byte{2, 6, 200, 6, 200, 1, 0})            // mailbox-full bursts
	f.Fuzz(func(t *testing.T, data []byte) {
		src, ranks := genMPIProgram(data)
		m, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("generator produced invalid program:\n%s\n%v", src, err)
		}
		p, err := Compile(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Ranks: ranks, Watchdog: time.Hour}
		r1 := Run(p, cfg)
		r2 := Run(p, cfg)
		c1, c2 := outcomeClass(r1), outcomeClass(r2)
		if c1 != c2 {
			t.Fatalf("outcome class diverged: %s vs %s\nprogram:\n%s", c1, c2, src)
		}
		if r1.Trap == TrapCancelled || r1.Trap == TrapWatchdog {
			t.Fatalf("infrastructure trap %v from a pure run\nprogram:\n%s", r1.Trap, src)
		}
		if (r1.Deadlock != nil) != (r1.Trap == TrapDeadlock) {
			t.Fatalf("trap %v with report %v\nprogram:\n%s", r1.Trap, r1.Deadlock, src)
		}
		if c1 == "trapped" {
			return
		}
		if fp1, fp2 := fuzzFingerprint(t, r1), fuzzFingerprint(t, r2); fp1 != fp2 {
			t.Fatalf("%s outcome not bit-identical:\n%s\nvs\n%s\nprogram:\n%s", c1, fp1, fp2, src)
		}
	})
}

func outcomeClass(r *Result) string {
	switch r.Trap {
	case TrapNone:
		return "clean"
	case TrapDeadlock:
		return "deadlock"
	}
	return "trapped"
}

func fuzzFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	rep, err := json.Marshal(r.Deadlock)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("trap=%v rank=%d msg=%q dyn=%v outI=%v outF=%v report=%s",
		r.Trap, r.TrapRank, r.TrapMsg, r.DynInstrs, r.OutputI, r.OutputF, rep)
}

// genMPIProgram decodes fuzz bytes into a valid sci program: 2-4 ranks,
// each with a bounded sequence of communication and compute operations
// (peers and tags bounded so matches are plausible), including rare
// large send bursts that exercise the mailbox-full path.
func genMPIProgram(data []byte) (string, int) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	ranks := 2 + int(next())%3 // 2..4

	var sb strings.Builder
	sb.WriteString("func main() {\n")
	sb.WriteString("\tvar rank int = mpi_rank();\n")
	sb.WriteString("\tvar acc int = rank + 1;\n")
	opsTotal := 0
	for r := 0; r < ranks && opsTotal < 32; r++ {
		fmt.Fprintf(&sb, "\tif (rank == %d) {\n", r)
		nops := 1 + int(next())%8
		for i := 0; i < nops && opsTotal < 32; i++ {
			opsTotal++
			arg := int(next())
			switch next() % 7 {
			case 0:
				fmt.Fprintf(&sb, "\t\tmpi_send_i64(%d, %d, acc + %d);\n", arg%ranks, arg%4, i)
			case 1:
				fmt.Fprintf(&sb, "\t\tacc = acc + mpi_recv_i64(%d, %d);\n", arg%ranks, arg%4)
			case 2:
				sb.WriteString("\t\tmpi_barrier();\n")
			case 3:
				fmt.Fprintf(&sb, "\t\tacc = acc + mpi_allreduce_i64(acc, %d);\n", arg%3)
			case 4:
				fmt.Fprintf(&sb, "\t\tacc = acc + mpi_bcast_i64(acc, %d);\n", arg%ranks)
			case 5:
				fmt.Fprintf(&sb, "\t\tfor (var j int = 0; j < %d; j = j + 1) { acc = (acc * 31 + j) %% 65521; }\n", 1+arg%64)
			case 6:
				// Burst: enough sends to fill the 4096-slot mailbox
				// when nothing drains it.
				if arg >= 192 {
					fmt.Fprintf(&sb, "\t\tfor (var j int = 0; j < 5000; j = j + 1) { mpi_send_i64(%d, 3, j); }\n", arg%ranks)
				} else {
					fmt.Fprintf(&sb, "\t\tmpi_send_i64(%d, 3, acc);\n", arg%ranks)
				}
			}
		}
		sb.WriteString("\t}\n")
	}
	sb.WriteString("\tout_i64(0, acc);\n")
	sb.WriteString("}\n")
	return sb.String(), ranks
}
