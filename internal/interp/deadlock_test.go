package interp

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// The structural-deadlock corpus: every scenario must be detected
// instantly (the watchdog is set to an hour, so any timer dependence
// hangs the test), with exact per-rank attribution, and produce
// bit-identical results across GOMAXPROCS settings.

// runDeadlock executes the program and asserts the run ended in a
// structurally declared deadlock without consuming wall-clock time.
func runDeadlock(t *testing.T, src string, ranks int) *Result {
	t.Helper()
	p := compileSci(t, src)
	start := time.Now()
	res := Run(p, Config{Ranks: ranks, Watchdog: time.Hour})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("detection took %v — structural detection must not wait on a timer", elapsed)
	}
	if res.Trap != TrapDeadlock {
		t.Fatalf("trap = %v (%s), want deadlock", res.Trap, res.TrapMsg)
	}
	if res.Deadlock == nil {
		t.Fatal("TrapDeadlock without a DeadlockReport")
	}
	return res
}

const earlyExitProg = `
func main() {
	var rank int = mpi_rank();
	if (rank == 1) {
		var v int = mpi_recv_i64(0, 5);
		out_i64(0, v);
	}
}
`

func TestDeadlockEarlyRankExit(t *testing.T) {
	// Rank 0 exits cleanly while rank 1 still waits on it: the clean
	// exit itself must complete the deadlock condition.
	res := runDeadlock(t, earlyExitProg, 2)
	rep := res.Deadlock
	if len(rep.Blocked) != 1 || len(rep.Exited) != 1 {
		t.Fatalf("report %+v, want 1 blocked + 1 exited", rep)
	}
	b := rep.Blocked[0]
	if b.Rank != 1 || b.Op != "recv" || b.Peer != 0 || b.Tag != 5 || b.MailboxFull {
		t.Fatalf("blocked = %+v, want rank 1 recv from 0 tag 5", b)
	}
	if rep.Exited[0] != 0 {
		t.Fatalf("exited = %v, want [0]", rep.Exited)
	}
	if res.TrapRank != 1 {
		t.Fatalf("trap rank = %d, want 1 (the only blocked rank)", res.TrapRank)
	}
}

func TestDeadlockMismatchedCollective(t *testing.T) {
	// Rank 0 enters the allreduce; rank 1 never does. Collectives are
	// built on point-to-point, so rank 0 is parked in the gather recv
	// when rank 1's exit completes the condition.
	res := runDeadlock(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 0) {
		out_i64(0, mpi_allreduce_i64(rank, 0));
	}
}
`, 2)
	rep := res.Deadlock
	if len(rep.Blocked) != 1 || len(rep.Exited) != 1 {
		t.Fatalf("report %+v, want 1 blocked + 1 exited", rep)
	}
	b := rep.Blocked[0]
	if b.Rank != 0 || b.Op != "recv" || b.Peer != 1 {
		t.Fatalf("blocked = %+v, want rank 0 parked in the gather recv from 1", b)
	}
}

func TestDeadlockCorruptedRecvCount(t *testing.T) {
	// Rank 0 sends one message where rank 1 expects two — the shape a
	// corrupted loop bound produces. Rank 1 consumes the first and
	// parks forever on the second.
	res := runDeadlock(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 0) {
		mpi_send_i64(1, 7, 41);
	}
	if (rank == 1) {
		var a int = mpi_recv_i64(0, 7);
		var b int = mpi_recv_i64(0, 7);
		out_i64(0, a + b);
	}
}
`, 2)
	rep := res.Deadlock
	if len(rep.Blocked) != 1 || len(rep.Exited) != 1 || rep.Exited[0] != 0 {
		t.Fatalf("report %+v, want rank 1 blocked, rank 0 exited", rep)
	}
	b := rep.Blocked[0]
	if b.Rank != 1 || b.Op != "recv" || b.Peer != 0 || b.Tag != 7 {
		t.Fatalf("blocked = %+v, want rank 1 recv from 0 tag 7", b)
	}
	// The first recv completed, so rank 1 blocked strictly later than
	// a rank that never received anything would have.
	if b.Executed <= 0 {
		t.Fatalf("executed = %d, want a positive dynamic instruction count", b.Executed)
	}
}

func TestDeadlockCyclicMailboxFullSends(t *testing.T) {
	// Each rank floods its ring successor without ever receiving: the
	// eager buffers (4096 messages) fill up and every rank parks in a
	// send — a cycle of mailbox-full senders with no receiver.
	res := runDeadlock(t, `
func main() {
	var rank int = mpi_rank();
	var np int = mpi_size();
	var next int = (rank + 1) % np;
	for (var i int = 0; i < 5000; i = i + 1) {
		mpi_send_i64(next, 9, i);
	}
	var v int = mpi_recv_i64((rank + np - 1) % np, 9);
	out_i64(0, v);
}
`, 3)
	rep := res.Deadlock
	if len(rep.Blocked) != 3 || len(rep.Exited) != 0 {
		t.Fatalf("report %+v, want all 3 ranks blocked", rep)
	}
	for i, b := range rep.Blocked {
		if b.Rank != i || b.Op != "send" || b.Peer != (i+1)%3 || b.Tag != 9 {
			t.Fatalf("blocked[%d] = %+v, want rank %d send to %d tag 9", i, b, i, (i+1)%3)
		}
		if !b.MailboxFull {
			t.Fatalf("blocked[%d] = %+v, want MailboxFull", i, b)
		}
	}
}

// fingerprint captures everything a deadlock outcome is allowed to
// depend on; it must be bit-identical across scheduler configurations.
type fingerprint struct {
	Trap      Trap
	TrapRank  int
	TrapMsg   string
	DynInstrs []int64
	Report    string
}

func deadlockFingerprint(t *testing.T, src string, ranks int) fingerprint {
	t.Helper()
	res := runDeadlock(t, src, ranks)
	rep, err := json.Marshal(res.Deadlock)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint{
		Trap: res.Trap, TrapRank: res.TrapRank, TrapMsg: res.TrapMsg,
		DynInstrs: append([]int64(nil), res.DynInstrs...),
		Report:    string(rep),
	}
}

func fingerprintsEqual(a, b fingerprint) bool {
	if a.Trap != b.Trap || a.TrapRank != b.TrapRank || a.TrapMsg != b.TrapMsg || a.Report != b.Report {
		return false
	}
	if len(a.DynInstrs) != len(b.DynInstrs) {
		return false
	}
	for i := range a.DynInstrs {
		if a.DynInstrs[i] != b.DynInstrs[i] {
			return false
		}
	}
	return true
}

func TestDeadlockBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	// The acceptance criterion: no wall-clock value influences the
	// modeled outcome, so the full deadlock fingerprint — trap fields,
	// per-rank instruction counts, and the serialized report — must be
	// identical under serial and parallel Go schedulers.
	const prog = `
func main() {
	var rank int = mpi_rank();
	var np int = mpi_size();
	var acc int = mpi_allreduce_i64(rank * 3, 0);
	if (rank == 0) {
		mpi_send_i64(1, 2, acc);
	}
	if (rank == 1) {
		var v int = mpi_recv_i64(0, 2);
		var w int = mpi_recv_i64(0, 2);
		out_i64(0, v + w);
	}
}
`
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref fingerprint
	for i, procs := range []int{1, 4, old} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 5; rep++ {
			fp := deadlockFingerprint(t, prog, 4)
			if i == 0 && rep == 0 {
				ref = fp
				continue
			}
			if !fingerprintsEqual(ref, fp) {
				t.Fatalf("GOMAXPROCS=%d run %d diverged:\n%+v\nvs reference\n%+v", procs, rep, fp, ref)
			}
		}
	}
}

func TestBlockedDeliveryBeatsAbort(t *testing.T) {
	// Rank 1 sends 42 and then traps. Rank 0's blocked recv resolves
	// message delivery before the job abort by fixed priority, so rank
	// 0 must output 42 on every run — never unwind with TrapAbort
	// first. Repeated to give a racy implementation every chance to
	// show itself.
	p := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 1) {
		mpi_send_i64(0, 1, 42);
		out_i64(0, 5 / (rank - 1));
	}
	if (rank == 0) {
		out_i64(0, mpi_recv_i64(1, 1));
	}
}
`)
	for i := 0; i < 50; i++ {
		res := Run(p, Config{Ranks: 2, Watchdog: time.Hour})
		if res.Trap != TrapDivZero || res.TrapRank != 1 {
			t.Fatalf("run %d: trap = %v on rank %d, want div-by-zero on rank 1", i, res.Trap, res.TrapRank)
		}
		if len(res.OutputI) != 1 || res.OutputI[0] != 42 {
			t.Fatalf("run %d: rank 0 outputs %v — delivery lost the race against abort", i, res.OutputI)
		}
		if res.Deadlock != nil {
			t.Fatalf("run %d: spurious deadlock report %v", i, res.Deadlock)
		}
	}
}

func TestGoroutineHygieneAfterRuns(t *testing.T) {
	// Every run — clean, deadlocked, trapped, cancelled — must leave
	// no rank goroutines or timer machinery behind.
	clean := compileSci(t, `
func main() {
	var s int = mpi_allreduce_i64(mpi_rank(), 0);
	if (mpi_rank() == 0) { out_i64(0, s); }
}
`)
	deadlock := compileSci(t, earlyExitProg)
	spin := compileSci(t, `
func main() {
	var rank int = mpi_rank();
	if (rank == 0) {
		var got int = mpi_recv_i64(1, 5);
		out_i64(0, got);
	} else {
		var s int = 0;
		for (var i int = 0; i < 2000000000; i = i + 1) { s = s + i; }
		mpi_send_i64(0, 5, s);
	}
}
`)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		Run(clean, Config{Ranks: 4})
		Run(deadlock, Config{Ranks: 2, Watchdog: time.Hour})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		RunContext(ctx, spin, Config{Ranks: 2, Watchdog: time.Hour})
		cancel()
	}
	// Goroutine teardown is asynchronous; poll briefly before judging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
