package interp

import (
	"encoding/binary"
	"math"
)

// Memory is a rank's flat byte-addressed address space:
//
//	[0, nullGuard)          unmapped null guard page
//	[nullGuard, heapEnd)    bump-allocated heap (malloc builtins)
//	[stackLimit, stackTop)  stack, growing downwards (allocas)
//
// All accesses are bounds- and alignment-checked; a violation raises
// the corresponding trap, which the campaign classifies as a crash
// symptom (the paper's "observable symptom" category).
type Memory struct {
	data       []byte
	heapPtr    int64
	heapEnd    int64
	stackPtr   int64
	stackLimit int64
	size       int64
}

const nullGuard = 4096

// NewMemory creates an address space with the given heap and stack
// capacities in bytes.
func NewMemory(heapBytes, stackBytes int64) *Memory {
	size := nullGuard + heapBytes + stackBytes
	return &Memory{
		data:       make([]byte, size),
		heapPtr:    nullGuard,
		heapEnd:    nullGuard + heapBytes,
		stackPtr:   size,
		stackLimit: nullGuard + heapBytes,
		size:       size,
	}
}

// Malloc bump-allocates n bytes on the heap (8-byte aligned).
func (m *Memory) Malloc(n int64) int64 {
	if n < 0 {
		panic(trapPanic{TrapAbort, "malloc with negative size"})
	}
	n = align8(n)
	if m.heapPtr+n > m.heapEnd || m.heapPtr+n < m.heapPtr {
		panic(trapPanic{TrapOOM, "heap exhausted"})
	}
	p := m.heapPtr
	m.heapPtr += n
	return p
}

// PushFrame returns the current stack pointer so a call can restore it
// on return.
func (m *Memory) PushFrame() int64 { return m.stackPtr }

// PopFrame restores a saved stack pointer.
func (m *Memory) PopFrame(sp int64) { m.stackPtr = sp }

// Alloca carves n bytes from the stack (8-byte aligned).
func (m *Memory) Alloca(n int64) int64 {
	p := m.stackPtr - align8(n)
	if p < m.stackLimit || p > m.stackPtr {
		panic(trapPanic{TrapStackOverflow, "stack overflow"})
	}
	m.stackPtr = p
	return p
}

// check validates an access of width bytes at addr.
func (m *Memory) check(addr, width int64) {
	if addr >= 0 && addr < nullGuard {
		panic(trapPanic{TrapNull, "null-page access"})
	}
	if addr < 0 || addr+width > m.size || addr+width < addr {
		panic(trapPanic{TrapOOB, "access out of bounds"})
	}
	if width > 1 && addr&(width-1) != 0 {
		panic(trapPanic{TrapUnaligned, "misaligned access"})
	}
}

// Load reads a value of the given width (1, 4, or 8 bytes) at addr.
// isFloat selects the interpretation of 8-byte payloads.
func (m *Memory) Load(addr, width int64, isFloat bool) Val {
	m.check(addr, width)
	switch width {
	case 1:
		return IntVal(int64(int8(m.data[addr])))
	case 4:
		return IntVal(int64(int32(binary.LittleEndian.Uint32(m.data[addr:]))))
	case 8:
		bits := binary.LittleEndian.Uint64(m.data[addr:])
		if isFloat {
			return FloatVal(math.Float64frombits(bits))
		}
		return IntVal(int64(bits))
	}
	panic(trapPanic{TrapAbort, "bad load width"})
}

// Store writes a value of the given width at addr.
func (m *Memory) Store(addr, width int64, v Val, isFloat bool) {
	m.check(addr, width)
	switch width {
	case 1:
		m.data[addr] = byte(v.I)
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(v.I))
	case 8:
		bits := uint64(v.I)
		if isFloat {
			bits = math.Float64bits(v.F)
		}
		binary.LittleEndian.PutUint64(m.data[addr:], bits)
	default:
		panic(trapPanic{TrapAbort, "bad store width"})
	}
}

// HeapUsed reports the number of heap bytes allocated so far.
func (m *Memory) HeapUsed() int64 { return m.heapPtr - nullGuard }
