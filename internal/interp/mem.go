package interp

import (
	"encoding/binary"
	"math"
	"sync"
)

// Memory is a rank's flat byte-addressed address space:
//
//	[0, nullGuard)          unmapped null guard page
//	[nullGuard, heapEnd)    bump-allocated heap (malloc builtins)
//	[stackLimit, stackTop)  stack, growing downwards (allocas)
//
// All accesses are bounds- and alignment-checked; a violation raises
// the corresponding trap, which the campaign classifies as a crash
// symptom (the paper's "observable symptom" category).
type Memory struct {
	data       []byte
	heapPtr    int64
	heapEnd    int64
	stackPtr   int64
	stackLimit int64
	size       int64

	// Dirty-span tracking for pooled reuse. Stores record the extent of
	// written bytes on each side of the address space: the heap dirties
	// upward from nullGuard (heapDirtyHi), the stack downward from the
	// top (stackDirtyLo). Tracking the two sides separately keeps the
	// untouched middle of a mostly-unused heap out of the re-zero: a
	// rank that mallocs 2 MiB of a 64 MiB heap costs 2 MiB of clearing
	// on reuse, not 64. Wild stores (fault trials corrupting an address)
	// still pass check(), so they land in one of the two spans and are
	// cleared like any other write.
	heapDirtyHi  int64
	stackDirtyLo int64
}

const nullGuard = 4096

// memPool recycles address spaces across runs. Zeroing a fresh 64 MiB
// heap dominates short executions (it is pure memclr in the allocator),
// and campaigns run thousands of short executions; reuse plus dirty-span
// clearing makes per-run memory cost proportional to bytes written, not
// bytes configured.
var memPool sync.Pool

// NewMemory creates an address space with the given heap and stack
// capacities in bytes, reusing a pooled buffer when one is large enough.
func NewMemory(heapBytes, stackBytes int64) *Memory {
	size := nullGuard + heapBytes + stackBytes
	if v := memPool.Get(); v != nil {
		m := v.(*Memory)
		if int64(len(m.data)) >= size {
			m.reset(heapBytes, stackBytes)
			return m
		}
		// Too small for this configuration; drop it and allocate.
	}
	m := &Memory{data: make([]byte, size)}
	m.init(heapBytes, stackBytes)
	return m
}

// Release returns the address space to the pool. The caller must not
// touch m afterwards. Results never alias the buffer (outputs, print
// logs and section digests are copied out by the builtins), so release
// at end of run is safe.
func (m *Memory) Release() {
	memPool.Put(m)
}

// reset clears exactly the bytes the previous run wrote and re-initializes
// the layout. The buffer invariant — every byte outside the dirty spans
// is zero — is restored before the new bounds take effect, so reads of
// never-written memory see zero exactly as with a fresh allocation.
func (m *Memory) reset(heapBytes, stackBytes int64) {
	if m.heapDirtyHi > nullGuard {
		clear(m.data[nullGuard:m.heapDirtyHi])
	}
	if m.stackDirtyLo < m.size {
		clear(m.data[m.stackDirtyLo:m.size])
	}
	m.init(heapBytes, stackBytes)
}

func (m *Memory) init(heapBytes, stackBytes int64) {
	size := nullGuard + heapBytes + stackBytes
	m.heapPtr = nullGuard
	m.heapEnd = nullGuard + heapBytes
	m.stackPtr = size
	m.stackLimit = nullGuard + heapBytes
	m.size = size
	m.heapDirtyHi = nullGuard
	m.stackDirtyLo = size
}

// dirty records a store's span. One compare against the heap/stack
// boundary plus one span update; stores through a corrupted address are
// covered because dirty runs after the same check() every store passes.
func (m *Memory) dirty(addr, width int64) {
	if addr >= m.stackLimit {
		if addr < m.stackDirtyLo {
			m.stackDirtyLo = addr
		}
	} else if addr+width > m.heapDirtyHi {
		m.heapDirtyHi = addr + width
	}
}

// Malloc bump-allocates n bytes on the heap (8-byte aligned).
func (m *Memory) Malloc(n int64) int64 {
	if n < 0 {
		panic(trapPanic{TrapAbort, "malloc with negative size"})
	}
	n = align8(n)
	if m.heapPtr+n > m.heapEnd || m.heapPtr+n < m.heapPtr {
		panic(trapPanic{TrapOOM, "heap exhausted"})
	}
	p := m.heapPtr
	m.heapPtr += n
	return p
}

// PushFrame returns the current stack pointer so a call can restore it
// on return.
func (m *Memory) PushFrame() int64 { return m.stackPtr }

// PopFrame restores a saved stack pointer.
func (m *Memory) PopFrame(sp int64) { m.stackPtr = sp }

// Alloca carves n bytes from the stack (8-byte aligned).
func (m *Memory) Alloca(n int64) int64 {
	p := m.stackPtr - align8(n)
	if p < m.stackLimit || p > m.stackPtr {
		panic(trapPanic{TrapStackOverflow, "stack overflow"})
	}
	m.stackPtr = p
	return p
}

// check validates an access of width bytes at addr.
func (m *Memory) check(addr, width int64) {
	if addr >= 0 && addr < nullGuard {
		panic(trapPanic{TrapNull, "null-page access"})
	}
	if addr < 0 || addr+width > m.size || addr+width < addr {
		panic(trapPanic{TrapOOB, "access out of bounds"})
	}
	if width > 1 && addr&(width-1) != 0 {
		panic(trapPanic{TrapUnaligned, "misaligned access"})
	}
}

// Load reads a value of the given width (1, 4, or 8 bytes) at addr.
// isFloat selects the interpretation of 8-byte payloads.
func (m *Memory) Load(addr, width int64, isFloat bool) Val {
	m.check(addr, width)
	switch width {
	case 1:
		return IntVal(int64(int8(m.data[addr])))
	case 4:
		return IntVal(int64(int32(binary.LittleEndian.Uint32(m.data[addr:]))))
	case 8:
		bits := binary.LittleEndian.Uint64(m.data[addr:])
		if isFloat {
			return FloatVal(math.Float64frombits(bits))
		}
		return IntVal(int64(bits))
	}
	panic(trapPanic{TrapAbort, "bad load width"})
}

// Store writes a value of the given width at addr.
func (m *Memory) Store(addr, width int64, v Val, isFloat bool) {
	m.check(addr, width)
	m.dirty(addr, width)
	switch width {
	case 1:
		m.data[addr] = byte(v.I)
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(v.I))
	case 8:
		bits := uint64(v.I)
		if isFloat {
			bits = math.Float64bits(v.F)
		}
		binary.LittleEndian.PutUint64(m.data[addr:], bits)
	default:
		panic(trapPanic{TrapAbort, "bad store width"})
	}
}

// HeapUsed reports the number of heap bytes allocated so far.
func (m *Memory) HeapUsed() int64 { return m.heapPtr - nullGuard }
