package interp

import "ipas/internal/ir"

// Superinstruction fusion: at lowering time, hot adjacent instruction
// pairs are fused into single dispatch units on a second instruction
// stream (progFunc.fast) that only the uninstrumented fast loop
// executes. The canonical stream (progFunc.code) is untouched, so the
// fully instrumented injection loop — budgets, per-site counts, the
// single-bit injection hook, section boundaries — keeps its
// one-dynamic-instruction-per-opcode semantics bit for bit.
//
// A fused pair still accounts for two dynamic instructions and for each
// half's injectable instance exactly where the unfused stream would:
// the fast loop increments rank.executed before each half and
// rank.injectableSeen after evaluating an injectable half, so trap
// points mid-pair (a store to a bad address, a load past the heap)
// observe identical counters, and the golden sampling population is
// unchanged. Execution of a pair is strictly sequential — the first
// half's result is written to its slot (unless provably dead, see
// below) before the second half's operands are read — so fusion is an
// encoding change, never a reordering.
//
// Fused shapes (the hot pairs in the mini-app profiles):
//
//	icmp/fcmp + condbr   -> opICmpBr / opFCmpBr
//	load      + arith    -> opLoadArith  (arith ∈ add/sub/mul/fadd/fsub/fmul/fdiv)
//	arith     + store    -> opArithStore
//	gep       + load     -> opGEPLoad
//
// sdiv/srem are excluded from the arith set: they can trap between the
// halves and buy nothing on the profiles that matter.
//
// When the first half's result has exactly one use — necessarily the
// second half, since fusion requires the second half to read it — the
// slot write is elided (dst = -1) and the value flows through the
// superinstruction in flight (fuseB0/fuseB1). That removes the bool
// materialization from compare-and-branch loop back-edges and the
// address materialization from gep+load, the two most common shapes.
const (
	opICmpBr ir.Op = ir.OpTrap + 1 + iota
	opFCmpBr
	opLoadArith
	opArithStore
	opGEPLoad
)

// fusableArith reports whether op may be the arithmetic half of a
// load+arith or arith+store pair: two-operand, result-producing, and —
// so a pair never traps between its halves on the arithmetic — unable
// to trap.
func fusableArith(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return true
	}
	return false
}

// fuseFunc builds the fused fast stream for one compiled function and
// returns it. pf.code and pf.blockOf must be final.
func (p *Program) fuseFunc(pf *progFunc) []pInstr {
	code := pf.code
	n := len(code)
	if n == 0 {
		return code
	}

	// Slot use counts: a first-half result with exactly one use is dead
	// after the pair, so its slot write can be elided. Uses are operand
	// references in instructions (ops when present, else a0/a1 by
	// arity) plus phi parallel-copy sources.
	uses := make([]int32, pf.numSlots)
	count := func(x int32) {
		if x >= 0 {
			uses[x]++
		}
	}
	for i := range code {
		pi := &code[i]
		if pi.ops != nil {
			for _, o := range pi.ops {
				count(o)
			}
			continue
		}
		if pi.nops > 0 {
			count(pi.a0)
		}
		if pi.nops > 1 {
			count(pi.a1)
		}
	}
	for _, cps := range pf.edgeCopies {
		for _, cp := range cps {
			count(cp.src)
		}
	}

	// blockStart[pc] marks pcs that begin a block — the only possible
	// branch targets, and the only place a pair may not span.
	blockStart := func(pc int) bool {
		return pc == 0 || pf.blockOf[pc] != pf.blockOf[pc-1]
	}

	old2new := make([]int32, n)
	fast := make([]pInstr, 0, n)
	for i := 0; i < n; {
		old2new[i] = int32(len(fast))
		if i+1 < n && !blockStart(i+1) {
			if fi, ok := tryFuse(&code[i], &code[i+1], uses); ok {
				old2new[i+1] = int32(len(fast)) // never a branch target
				fast = append(fast, fi)
				p.fusedPairs++
				i += 2
				continue
			}
		}
		fast = append(fast, code[i])
		i++
	}
	// Branch targets in the fused stream still hold canonical pcs;
	// remap them. Targets always name block starts, which are never
	// consumed as the second half of a pair, so the mapping is exact.
	for j := range fast {
		for k := 0; k < 2; k++ {
			if t := fast[j].targets[k]; t >= 0 {
				fast[j].targets[k] = old2new[t]
			}
		}
	}
	return fast
}

// tryFuse attempts to fuse the adjacent pair (a, b) and returns the
// superinstruction. Both instructions are in the same block and b is
// not a branch target.
func tryFuse(a, b *pInstr, uses []int32) (pInstr, bool) {
	switch {
	case (a.op == ir.OpICmp || a.op == ir.OpFCmp) && b.op == ir.OpCondBr && b.a0 == a.dst:
		fi := *a
		if a.op == ir.OpICmp {
			fi.op = opICmpBr
		} else {
			fi.op = opFCmpBr
		}
		fi.targets = b.targets
		fi.edges = b.edges
		elideDst(&fi, uses)
		return fi, true

	case a.op == ir.OpLoad && fusableArith(b.op) && b.ops == nil &&
		(b.a0 == a.dst || b.a1 == a.dst):
		fi := *a
		fi.op = opLoadArith
		fi.op2 = b.op
		fi.typ = b.typ // the arith result type (load needs only elemSize/isFloat)
		fi.b0, fi.b1 = b.a0, b.a1
		fi.fuseB0, fi.fuseB1 = b.a0 == a.dst, b.a1 == a.dst
		fi.dst2 = b.dst
		fi.inj2 = b.injectable
		elideDst(&fi, uses)
		return fi, true

	case fusableArith(a.op) && a.ops == nil && b.op == ir.OpStore &&
		(b.a0 == a.dst || b.a1 == a.dst):
		fi := *a
		fi.op = opArithStore
		fi.op2 = a.op
		fi.b0, fi.b1 = b.a0, b.a1
		fi.fuseB0, fi.fuseB1 = b.a0 == a.dst, b.a1 == a.dst
		fi.elemSize2 = b.elemSize
		fi.storeFloat2 = b.storeFloat
		elideDst(&fi, uses)
		return fi, true

	case a.op == ir.OpGEP && b.op == ir.OpLoad && b.a0 == a.dst:
		fi := *a
		fi.op = opGEPLoad
		fi.fuseB0 = true
		fi.elemSize2 = b.elemSize
		fi.isFloat2 = b.isFloat
		fi.dst2 = b.dst
		fi.inj2 = b.injectable
		elideDst(&fi, uses)
		return fi, true
	}
	return pInstr{}, false
}

// elideDst drops the first half's slot write when its only use is the
// second half of the pair. uses counts every operand reference in the
// function, so a count of 1 means the reference that justified fusion
// is the only one.
func elideDst(fi *pInstr, uses []int32) {
	if fi.dst >= 0 && uses[fi.dst] == 1 {
		fi.dst = -1
	}
}
