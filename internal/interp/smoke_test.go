package interp

import (
	"testing"

	"ipas/internal/ir"
	"ipas/internal/rt"
)

// buildSumProgram constructs: sum of i*i for i in [0,n), written to the
// output buffer, using a loop with phis.
func buildSumProgram(t *testing.T, n int64) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	bt := rt.Declare(m)
	f := m.NewFunc("main", ir.Void, nil, nil)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b := ir.NewBuilder(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	acc := b.Phi(ir.I64)
	cond := b.ICmp(ir.PredLT, i, ir.ConstInt(ir.I64, n))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	sq := b.Mul(i, i)
	acc2 := b.Add(acc, sq)
	i2 := b.Add(i, ir.ConstInt(ir.I64, 1))
	b.Br(loop)

	ir.AddIncoming(i, ir.ConstInt(ir.I64, 0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(acc, ir.ConstInt(ir.I64, 0), entry)
	ir.AddIncoming(acc, acc2, body)

	b.SetBlock(exit)
	b.Call(bt["out_i64"], ir.ConstInt(ir.I64, 0), acc)
	b.Ret(nil)

	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m.AssignSiteIDs()
	return m
}

func TestInterpLoopSum(t *testing.T) {
	m := buildSumProgram(t, 10)
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v (%s)", res.Trap, res.TrapMsg)
	}
	if len(res.OutputI) != 1 || res.OutputI[0] != 285 {
		t.Fatalf("output = %v, want [285]", res.OutputI)
	}
	if res.TotalDyn == 0 {
		t.Fatal("no dynamic instructions counted")
	}
}

func TestInterpPrintRoundtrip(t *testing.T) {
	m := buildSumProgram(t, 5)
	text := ir.Print(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	m2.AssignSiteIDs()
	p, err := Compile(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{})
	if res.Trap != TrapNone || res.OutputI[0] != 30 {
		t.Fatalf("reparsed run: trap=%v out=%v", res.Trap, res.OutputI)
	}
}

func TestInterpFaultInjection(t *testing.T) {
	m := buildSumProgram(t, 10)
	injectable := func(in *ir.Instr) bool {
		return in.HasResult() && in.Op() != ir.OpLoad && in.Op() != ir.OpPhi
	}
	p, err := Compile(m, injectable)
	if err != nil {
		t.Fatal(err)
	}
	golden := Run(p, Config{})
	if golden.Injectable[0] == 0 {
		t.Fatal("no injectable instances")
	}
	// Flip bit 20 of every injectable instance in turn; at least one
	// run must corrupt the output and none may diverge silently from
	// the fault model (trap or complete).
	corrupted := 0
	for idx := int64(0); idx < golden.Injectable[0]; idx++ {
		res := Run(p, Config{
			Fault:     &FaultPlan{Rank: 0, Index: idx, Bit: 20},
			MaxInstrs: golden.TotalDyn * 10,
		})
		if !res.Injected && res.Trap == TrapNone {
			t.Fatalf("instance %d: fault did not fire", idx)
		}
		if res.Trap == TrapNone && len(res.OutputI) == 1 && res.OutputI[0] != 285 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no run produced corrupted output; fault model inert")
	}
}

func TestInterpBudgetHang(t *testing.T) {
	m := buildSumProgram(t, 1<<40)
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{MaxInstrs: 10000})
	if res.Trap != TrapBudget {
		t.Fatalf("trap = %v, want TrapBudget", res.Trap)
	}
}

func TestInterpMPIAllreduce(t *testing.T) {
	m := ir.NewModule()
	bt := rt.Declare(m)
	f := m.NewFunc("main", ir.Void, nil, nil)
	b := ir.NewBuilder(f.NewBlock("entry"))
	rk := b.Call(bt["mpi_rank"])
	rkf := b.SIToFP(rk)
	sum := b.Call(bt["mpi_allreduce_f64"], rkf, ir.ConstInt(ir.I64, ReduceSum))
	b.Call(bt["out_f64"], ir.ConstInt(ir.I64, 0), sum)
	b.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	m.AssignSiteIDs()
	p, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Config{Ranks: 4})
	if res.Trap != TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputF[0] != 6 { // 0+1+2+3
		t.Fatalf("allreduce sum = %v, want 6", res.OutputF[0])
	}
}
