// Package interp executes the IPAS IR deterministically. It provides
// the behaviours the paper's evaluation observes: crashes (traps),
// hangs (instruction-budget exhaustion), duplication-check detections,
// dynamic instruction counts (the slowdown metric), and a fault hook
// that flips one bit in the result of a chosen dynamic instruction
// instance (the FlipIt fault model).
//
// Execution is a flat bytecode engine: Compile lowers each function to
// a contiguous instruction array with absolute jump targets and
// per-edge phi copy lists (prog.go), and RunContext selects — once per
// rank per run — between an uninstrumented fast loop and a fully
// instrumented one (exec.go). Both loops are observationally
// identical; DESIGN.md §7 documents the layout, the specialization
// matrix, and the invariants fault injection relies on.
package interp

import (
	"fmt"
	"math"
	"math/bits"

	"ipas/internal/ir"
)

// Val is a runtime value. Integer and pointer payloads live in I;
// floating payloads live in F. The static type of the producing
// instruction decides which field is meaningful.
type Val struct {
	I int64
	F float64
}

// IntVal wraps an integer payload.
func IntVal(v int64) Val { return Val{I: v} }

// FloatVal wraps a floating payload.
func FloatVal(v float64) Val { return Val{F: v} }

// Bool converts a truth value to the runtime representation of i1.
func Bool(b bool) Val {
	if b {
		return Val{I: 1}
	}
	return Val{}
}

// FlipBit returns v with bit flipped, interpreting v according to t.
// For floats the flip happens in the IEEE-754 bit pattern; for integers
// in the two's-complement pattern truncated to the type's width.
// The injection hook applies it to an instruction's produced value
// before the frame-slot write, exactly once per armed run.
func FlipBit(v Val, t *ir.Type, bit int) Val {
	if t.IsFloat() {
		bits := math.Float64bits(v.F)
		bits ^= 1 << uint(bit%64)
		return Val{F: math.Float64frombits(bits)}
	}
	w := t.Bits()
	if w == 0 {
		return v
	}
	flipped := v.I ^ (1 << uint(bit%w))
	return Val{I: truncToType(t, flipped)}
}

// CorruptValue generalizes FlipBit to the pluggable error models: it
// returns v corrupted per (bit, mask, correlated) and the *effective*
// mask actually XORed into the value's bit pattern, expressed in the
// result type's own width. The effective mask is what journals record —
// plans carry raw 64-bit positions, but a position only means something
// after folding modulo the width of the value it lands on.
//
//   - correlated: one flip, bit+1 positions above the value's most
//     significant set bit (wrapped to the width); a zero pattern
//     degrades to the plain bit%w flip. Corruption magnitude tracks
//     value magnitude.
//   - mask != 0: every set raw position folds modulo the width and the
//     folded positions XOR together. Folded positions can cancel — the
//     effective mask may be zero, leaving the value unchanged (the run
//     still counts as injected; callers see InjectedMask == 0).
//   - otherwise: the classic single flip at bit%w (== FlipBit).
//
// Stickiness is not a per-application property: the execution loop
// re-invokes CorruptValue with the same parameters on every subsequent
// execution of the defective site.
func CorruptValue(v Val, t *ir.Type, bit int, mask uint64, correlated bool) (Val, uint64) {
	if t.IsFloat() {
		raw := math.Float64bits(v.F)
		eff := effectiveMask(raw, 64, bit, mask, correlated)
		return Val{F: math.Float64frombits(raw ^ eff)}, eff
	}
	w := t.Bits()
	if w == 0 {
		return v, 0
	}
	eff := effectiveMask(uint64(v.I)&widthMask(uint64(w)), w, bit, mask, correlated)
	return Val{I: truncToType(t, v.I^int64(eff))}, eff
}

// effectiveMask folds a plan's raw corruption parameters into the
// XOR mask for a w-bit value whose current bit pattern is pattern.
func effectiveMask(pattern uint64, w, bit int, mask uint64, correlated bool) uint64 {
	switch {
	case correlated:
		pos := bit % w
		if pattern != 0 {
			// bits.Len64 is the MSB index + 1, so this lands bit+1
			// positions above the top set bit, wrapped to the width.
			pos = (bits.Len64(pattern) + bit) % w
		}
		return 1 << uint(pos)
	case mask != 0:
		var eff uint64
		for m := mask; m != 0; m &= m - 1 {
			eff ^= 1 << (uint(bits.TrailingZeros64(m)) % uint(w))
		}
		return eff
	default:
		return 1 << uint(bit%w)
	}
}

func truncToType(t *ir.Type, v int64) int64 {
	switch t.Kind() {
	case ir.I1Kind:
		return v & 1
	case ir.I8Kind:
		return int64(int8(v))
	case ir.I32Kind:
		return int64(int32(v))
	default:
		return v
	}
}

// Trap enumerates abnormal-termination causes. The fault-outcome
// classifier maps traps onto the paper's outcome categories: every trap
// except TrapDetected is an "observable symptom"; TrapDetected is
// "detected by duplication".
type Trap int

const (
	// TrapNone means normal termination.
	TrapNone Trap = iota
	// TrapOOB is an out-of-bounds or unmapped memory access (segfault).
	TrapOOB
	// TrapNull is a null-page dereference.
	TrapNull
	// TrapUnaligned is a misaligned memory access.
	TrapUnaligned
	// TrapDivZero is an integer division or remainder by zero.
	TrapDivZero
	// TrapStackOverflow is stack exhaustion (deep recursion / big allocas).
	TrapStackOverflow
	// TrapOOM is heap exhaustion.
	TrapOOM
	// TrapBudget is the hang detector: the per-rank dynamic instruction
	// budget was exceeded.
	TrapBudget
	// TrapDetected is a duplication-check mismatch (protection fired).
	TrapDetected
	// TrapAbort is an explicit abort (failed runtime assertion, bad
	// builtin argument, invalid MPI destination, ...).
	TrapAbort
	// TrapDeadlock is declared structurally by the rank supervisor
	// (supervisor.go): every non-exited rank is blocked in an MPI
	// operation and no pending operation can match. No wall-clock
	// value is involved, so the outcome is deterministic.
	TrapDeadlock
	// TrapCancelled means the embedding Go context was cancelled (or
	// its deadline expired) while the job ran. It is an infrastructure
	// condition of the harness, not a modeled fault outcome: campaign
	// layers must treat it as "trial not executed", never as a symptom.
	TrapCancelled
	// TrapWatchdog means the defense-in-depth wall-clock watchdog on a
	// blocked MPI operation expired. Like TrapCancelled it is an
	// infrastructure condition — genuine deadlocks are detected
	// structurally and instantly, so an expiry indicates a supervisor
	// bug or a pathologically overloaded host, and campaign layers
	// must retry the trial, never classify it.
	TrapWatchdog
)

var trapNames = map[Trap]string{
	TrapNone: "none", TrapOOB: "out-of-bounds", TrapNull: "null-deref",
	TrapUnaligned: "unaligned", TrapDivZero: "div-by-zero",
	TrapStackOverflow: "stack-overflow", TrapOOM: "out-of-memory",
	TrapBudget: "instruction-budget (hang)", TrapDetected: "detected-by-duplication",
	TrapAbort: "abort", TrapDeadlock: "deadlock", TrapCancelled: "cancelled",
	TrapWatchdog: "watchdog (infrastructure)",
}

// String names the trap.
func (t Trap) String() string {
	if s, ok := trapNames[t]; ok {
		return s
	}
	return fmt.Sprintf("trap(%d)", int(t))
}

// IsSymptom reports whether the trap is an observable system- or
// architecture-level symptom in the paper's taxonomy (crash or hang),
// as opposed to a duplication detection.
func (t Trap) IsSymptom() bool {
	switch t {
	case TrapNone, TrapDetected, TrapCancelled, TrapWatchdog:
		return false
	}
	return true
}

// trapPanic carries a trap through the Go stack of the evaluator.
type trapPanic struct {
	trap Trap
	msg  string
}
