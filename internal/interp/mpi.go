package interp

import (
	"fmt"
	"time"
)

// comm is the simulated MPI communicator. Point-to-point messages use
// eager buffered channels per directed (src, dst) pair with in-order
// tag matching; collectives are built on top of point-to-point with
// reserved system tags, mirroring a tree-less gather+broadcast
// implementation. If any rank traps, the job aborts (the paper's §4.4.1
// relies on exactly this MPI default).
type comm struct {
	size  int
	boxes [][]chan message // boxes[src][dst]
	done  chan struct{}    // closed on job abort
	// cancel, when non-nil, is the embedding context's Done channel;
	// blocked MPI operations wake on it with TrapCancelled.
	cancel <-chan struct{}
	// recvTimeout bounds a blocking receive; expiry means the ranks
	// have deadlocked (possible only under fault injection).
	recvTimeout time.Duration
}

type message struct {
	tag int64
	// data must be owned by the message: payloads sit in mailbox
	// channels across sender returns, so senders pass freshly
	// allocated slices, never frame-arena memory (which is reused as
	// soon as the sending call unwinds).
	data []Val
}

const (
	// System tags used by collectives (user tags must be >= 0).
	tagGather int64 = -1
	tagResult int64 = -2
)

func newComm(size int, recvTimeout time.Duration, cancel <-chan struct{}) *comm {
	c := &comm{size: size, done: make(chan struct{}), cancel: cancel, recvTimeout: recvTimeout}
	c.boxes = make([][]chan message, size)
	for s := 0; s < size; s++ {
		c.boxes[s] = make([]chan message, size)
		for d := 0; d < size; d++ {
			c.boxes[s][d] = make(chan message, 4096)
		}
	}
	return c
}

// abort wakes every blocked rank; first caller wins.
func (c *comm) abort() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

func (c *comm) checkPeer(r *rank, peer int64) int {
	if peer < 0 || peer >= int64(c.size) {
		panic(trapPanic{TrapAbort, fmt.Sprintf("invalid MPI peer rank %d", peer)})
	}
	return int(peer)
}

// send delivers data to dst with an eager (buffered) protocol.
func (c *comm) send(r *rank, dst, tag int64, data []Val) {
	d := c.checkPeer(r, dst)
	select {
	case c.boxes[r.id][d] <- message{tag: tag, data: data}:
	case <-c.done:
		panic(trapPanic{TrapAbort, "job aborted"})
	default:
		// Mailbox full: block with abort/cancel/deadlock detection.
		t := time.NewTimer(c.recvTimeout)
		defer t.Stop()
		select {
		case c.boxes[r.id][d] <- message{tag: tag, data: data}:
		case <-c.done:
			panic(trapPanic{TrapAbort, "job aborted"})
		case <-c.cancel:
			panic(trapPanic{TrapCancelled, "execution cancelled"})
		case <-t.C:
			panic(trapPanic{TrapDeadlock, "send blocked"})
		}
	}
}

// recv blocks until the in-order next message from src arrives; its tag
// and length must match (a mismatch is a runtime error, which becomes a
// visible symptom).
func (c *comm) recv(r *rank, src, tag int64, n int64) []Val {
	s := c.checkPeer(r, src)
	var m message
	select {
	case m = <-c.boxes[s][r.id]:
	case <-c.done:
		panic(trapPanic{TrapAbort, "job aborted"})
	default:
		t := time.NewTimer(c.recvTimeout)
		select {
		case m = <-c.boxes[s][r.id]:
			t.Stop()
		case <-c.done:
			t.Stop()
			panic(trapPanic{TrapAbort, "job aborted"})
		case <-c.cancel:
			t.Stop()
			panic(trapPanic{TrapCancelled, "execution cancelled"})
		case <-t.C:
			panic(trapPanic{TrapDeadlock, "recv blocked"})
		}
	}
	if m.tag != tag {
		panic(trapPanic{TrapAbort, fmt.Sprintf("MPI tag mismatch: want %d, got %d", tag, m.tag)})
	}
	if int64(len(m.data)) != n {
		panic(trapPanic{TrapAbort, fmt.Sprintf("MPI length mismatch: want %d, got %d", n, len(m.data))})
	}
	return m.data
}

// barrier blocks until every rank arrives.
func (c *comm) barrier(r *rank) { c.allreduceI64(r, 0, 0) }

// Reduction opcodes for the allreduce builtins.
const (
	ReduceSum = 0
	ReduceMin = 1
	ReduceMax = 2
)

func (c *comm) allreduceF64(r *rank, v float64, op int64) float64 {
	out := c.allreduce(r, FloatVal(v), func(a, b Val) Val {
		switch op {
		case ReduceMin:
			if b.F < a.F {
				return b
			}
			return a
		case ReduceMax:
			if b.F > a.F {
				return b
			}
			return a
		default:
			return FloatVal(a.F + b.F)
		}
	})
	return out.F
}

func (c *comm) allreduceI64(r *rank, v int64, op int64) int64 {
	out := c.allreduce(r, IntVal(v), func(a, b Val) Val {
		switch op {
		case ReduceMin:
			if b.I < a.I {
				return b
			}
			return a
		case ReduceMax:
			if b.I > a.I {
				return b
			}
			return a
		default:
			return IntVal(a.I + b.I)
		}
	})
	return out.I
}

// allreduce gathers every rank's contribution at rank 0, combines, and
// broadcasts the result.
func (c *comm) allreduce(r *rank, v Val, combine func(a, b Val) Val) Val {
	if c.size == 1 {
		return v
	}
	if r.id == 0 {
		acc := v
		for s := 1; s < c.size; s++ {
			acc = combine(acc, c.recv(r, int64(s), tagGather, 1)[0])
		}
		for d := 1; d < c.size; d++ {
			c.send(r, int64(d), tagResult, []Val{acc})
		}
		return acc
	}
	c.send(r, 0, tagGather, []Val{v})
	return c.recv(r, 0, tagResult, 1)[0]
}

func (c *comm) bcastF64(r *rank, v float64, root int64) float64 {
	return c.bcast(r, FloatVal(v), root).F
}

func (c *comm) bcastI64(r *rank, v int64, root int64) int64 {
	return c.bcast(r, IntVal(v), root).I
}

func (c *comm) bcast(r *rank, v Val, root int64) Val {
	if c.size == 1 {
		return v
	}
	rt := c.checkPeer(r, root)
	if r.id == rt {
		for d := 0; d < c.size; d++ {
			if d != rt {
				c.send(r, int64(d), tagResult, []Val{v})
			}
		}
		return v
	}
	return c.recv(r, root, tagResult, 1)[0]
}
