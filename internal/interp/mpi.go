package interp

import (
	"fmt"
	"time"
)

// comm is the simulated MPI communicator. Point-to-point messages use
// eager buffered channels per directed (src, dst) pair with in-order
// tag matching; collectives are built on top of point-to-point with
// reserved system tags, mirroring a tree-less gather+broadcast
// implementation. If any rank traps, the job aborts (the paper's §4.4.1
// relies on exactly this MPI default).
//
// Blocked operations are resolved in a FIXED priority order — message
// delivery, structural deadlock, job abort, cancellation, watchdog —
// never by Go's randomized select. Delivery outranking abort means a
// live rank always drains whatever progress is available before it
// observes the teardown, which keeps per-rank executed counts and
// outputs deterministic; deadlock is declared structurally by the rank
// supervisor (supervisor.go), never by a timer.
type comm struct {
	size  int
	boxes [][]chan message // boxes[src][dst]
	done  chan struct{}    // closed on job abort
	// cancel, when non-nil, is the embedding context's Done channel;
	// blocked MPI operations wake on it with TrapCancelled.
	cancel <-chan struct{}
	// watchdog bounds the wall-clock blocking of one MPI operation as
	// defense in depth against supervisor bugs. Its expiry raises
	// TrapWatchdog — an infrastructure error, never a modeled outcome:
	// genuine deadlocks are detected structurally and instantly.
	watchdog time.Duration
	// sup is the rank supervisor: per-rank state tracking and
	// structural deadlock declaration.
	sup *supervisor
}

type message struct {
	tag int64
	// data must be owned by the message: payloads sit in mailbox
	// channels across sender returns, so senders pass freshly
	// allocated slices, never frame-arena memory (which is reused as
	// soon as the sending call unwinds).
	data []Val
}

const (
	// System tags used by collectives (user tags must be >= 0).
	tagGather int64 = -1
	tagResult int64 = -2
)

func newComm(size int, watchdog time.Duration, cancel <-chan struct{}) *comm {
	c := &comm{size: size, done: make(chan struct{}), cancel: cancel, watchdog: watchdog}
	c.boxes = make([][]chan message, size)
	for s := 0; s < size; s++ {
		c.boxes[s] = make([]chan message, size)
		for d := 0; d < size; d++ {
			c.boxes[s][d] = make(chan message, 4096)
		}
	}
	c.sup = newSupervisor(c, size)
	return c
}

// abort wakes every blocked rank; first caller wins.
func (c *comm) abort() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

func (c *comm) checkPeer(r *rank, peer int64) int {
	if peer < 0 || peer >= int64(c.size) {
		panic(trapPanic{TrapAbort, fmt.Sprintf("invalid MPI peer rank %d", peer)})
	}
	return int(peer)
}

// send delivers data to dst with an eager (buffered) protocol. The
// non-blocking fast path gives delivery priority over every teardown
// condition; a full mailbox takes the supervised blocked path.
func (c *comm) send(r *rank, dst, tag int64, data []Val) {
	d := c.checkPeer(r, dst)
	box := c.boxes[r.id][d]
	m := message{tag: tag, data: data}
	select {
	case box <- m:
		c.sup.sent(r.id, d)
		return
	default:
	}
	c.blockedSend(r, box, d, m)
}

// blockedSend parks a send whose mailbox is full under supervision.
func (c *comm) blockedSend(r *rank, box chan message, peer int, m message) {
	s := c.sup
	s.block(r.id, opSend, peer, m.tag, r.executed)
	what := fmt.Sprintf("send to %d tag %d blocked (mailbox full)", peer, m.tag)
	wd := time.NewTimer(c.watchdog)
	defer wd.Stop()
	expired := false
	for {
		// Fixed priority: delivery first, then the terminal conditions.
		select {
		case box <- m:
			s.resumeSend(r.id, peer)
			return
		default:
		}
		c.checkTerminal(r, expired, what)
		// Nothing is ready: park until any event, then re-resolve in
		// priority order (Go's select picks randomly when several cases
		// are ready; the loop re-check imposes the fixed order).
		select {
		case box <- m:
			s.resumeSend(r.id, peer)
			return
		case <-s.deadlocked:
		case <-c.done:
		case <-c.cancel:
		case <-wd.C:
			expired = true
		}
	}
}

// recv blocks until the in-order next message from src arrives; its tag
// and length must match (a mismatch is a runtime error, which becomes a
// visible symptom).
func (c *comm) recv(r *rank, src, tag int64, n int64) []Val {
	sp := c.checkPeer(r, src)
	box := c.boxes[sp][r.id]
	var m message
	select {
	case m = <-box:
		c.sup.received(sp, r.id)
	default:
		m = c.blockedRecv(r, box, sp, tag)
	}
	if m.tag != tag {
		panic(trapPanic{TrapAbort, fmt.Sprintf("MPI tag mismatch: want %d, got %d", tag, m.tag)})
	}
	if int64(len(m.data)) != n {
		panic(trapPanic{TrapAbort, fmt.Sprintf("MPI length mismatch: want %d, got %d", n, len(m.data))})
	}
	return m.data
}

// blockedRecv parks a receive whose mailbox is empty under supervision.
func (c *comm) blockedRecv(r *rank, box chan message, peer int, tag int64) message {
	s := c.sup
	s.block(r.id, opRecv, peer, tag, r.executed)
	what := fmt.Sprintf("recv from %d tag %d blocked", peer, tag)
	wd := time.NewTimer(c.watchdog)
	defer wd.Stop()
	expired := false
	for {
		select {
		case m := <-box:
			s.resumeRecv(r.id, peer)
			return m
		default:
		}
		c.checkTerminal(r, expired, what)
		select {
		case m := <-box:
			s.resumeRecv(r.id, peer)
			return m
		case <-s.deadlocked:
		case <-c.done:
		case <-c.cancel:
		case <-wd.C:
			expired = true
		}
	}
}

// checkTerminal raises the trap for a blocked operation's terminal
// conditions in the fixed priority order — structural deadlock, job
// abort, cancellation, watchdog — after the caller has already given
// message delivery its chance. It returns normally when the operation
// should keep blocking. Each panic path marks the rank's terminal state
// with the supervisor first, so a rank unwinding on an infrastructure
// condition (cancel, watchdog) can never be mistaken for a quiescent
// blocked rank by a later deadlock evaluation.
func (c *comm) checkTerminal(r *rank, expired bool, what string) {
	s := c.sup
	select {
	case <-s.deadlocked:
		s.finish(r.id, TrapDeadlock)
		panic(trapPanic{TrapDeadlock, "structural deadlock: " + what})
	default:
	}
	select {
	case <-c.done:
		s.finish(r.id, TrapAbort)
		panic(trapPanic{TrapAbort, "job aborted"})
	default:
	}
	if c.cancel != nil {
		select {
		case <-c.cancel:
			s.finish(r.id, TrapCancelled)
			panic(trapPanic{TrapCancelled, "execution cancelled"})
		default:
		}
	}
	if expired {
		s.finish(r.id, TrapWatchdog)
		panic(trapPanic{TrapWatchdog, fmt.Sprintf("infrastructure watchdog expired after %v: %s", c.watchdog, what)})
	}
}

// barrier blocks until every rank arrives.
func (c *comm) barrier(r *rank) { c.allreduceI64(r, 0, 0) }

// Reduction opcodes for the allreduce builtins.
const (
	ReduceSum = 0
	ReduceMin = 1
	ReduceMax = 2
)

func (c *comm) allreduceF64(r *rank, v float64, op int64) float64 {
	out := c.allreduce(r, FloatVal(v), func(a, b Val) Val {
		switch op {
		case ReduceMin:
			if b.F < a.F {
				return b
			}
			return a
		case ReduceMax:
			if b.F > a.F {
				return b
			}
			return a
		default:
			return FloatVal(a.F + b.F)
		}
	})
	return out.F
}

func (c *comm) allreduceI64(r *rank, v int64, op int64) int64 {
	out := c.allreduce(r, IntVal(v), func(a, b Val) Val {
		switch op {
		case ReduceMin:
			if b.I < a.I {
				return b
			}
			return a
		case ReduceMax:
			if b.I > a.I {
				return b
			}
			return a
		default:
			return IntVal(a.I + b.I)
		}
	})
	return out.I
}

// allreduce gathers every rank's contribution at rank 0, combines, and
// broadcasts the result.
func (c *comm) allreduce(r *rank, v Val, combine func(a, b Val) Val) Val {
	if c.size == 1 {
		return v
	}
	if r.id == 0 {
		acc := v
		for s := 1; s < c.size; s++ {
			acc = combine(acc, c.recv(r, int64(s), tagGather, 1)[0])
		}
		for d := 1; d < c.size; d++ {
			c.send(r, int64(d), tagResult, []Val{acc})
		}
		return acc
	}
	c.send(r, 0, tagGather, []Val{v})
	return c.recv(r, 0, tagResult, 1)[0]
}

func (c *comm) bcastF64(r *rank, v float64, root int64) float64 {
	return c.bcast(r, FloatVal(v), root).F
}

func (c *comm) bcastI64(r *rank, v int64, root int64) int64 {
	return c.bcast(r, IntVal(v), root).I
}

func (c *comm) bcast(r *rank, v Val, root int64) Val {
	if c.size == 1 {
		return v
	}
	rt := c.checkPeer(r, root)
	if r.id == rt {
		for d := 0; d < c.size; d++ {
			if d != rt {
				c.send(r, int64(d), tagResult, []Val{v})
			}
		}
		return v
	}
	return c.recv(r, root, tagResult, 1)[0]
}
