package fault

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ipas/internal/interp"
	"ipas/internal/lang"
)

// compileCampaignProg compiles the shared test program and returns it
// with its exact-match verifier.
func compileCampaignProg(t *testing.T) (*interp.Program, Verifier) {
	t.Helper()
	m, err := lang.Compile(campaignProg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == 1 && faulty.OutputF[0] == golden.OutputF[0]
	}
	return p, verify
}

// A worker panic on one attempt must be retried, and the retried trial
// must produce the same outcome as an undisturbed campaign — only the
// attempt count differs.
func TestCampaignPanicIsolationRetries(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 40

	ref := &Campaign{Prog: p, Verify: verify, Seed: 11}
	refRes, err := ref.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	c := &Campaign{Prog: p, Verify: verify, Seed: 11, Workers: 2, RetryBackoff: time.Millisecond}
	c.beforeTrial = func(trial, attempt int) {
		if trial == 7 && attempt == 0 {
			panic("injected test panic")
		}
	}
	res, err := c.RunContext(context.Background(), n)
	if err != nil {
		t.Fatalf("campaign with one recovered panic errored: %v", err)
	}
	if res.Completed != n || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", res.Completed, res.Failed, n)
	}
	if got := res.Trials[7].Attempts; got != 2 {
		t.Fatalf("trial 7 attempts = %d, want 2", got)
	}
	for i := range res.Trials {
		got := res.Trials[i]
		got.Attempts = refRes.Trials[i].Attempts // only the retry count may differ
		if got != refRes.Trials[i] {
			t.Fatalf("trial %d diverged after retry: %+v vs %+v", i, res.Trials[i], refRes.Trials[i])
		}
	}
}

// A trial that panics on every attempt must be recorded as TrialFailed
// with the panic message, while the rest of the campaign completes and
// its statistics cover completed trials only.
func TestCampaignPanicIsolationExhaustsRetries(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 30

	c := &Campaign{Prog: p, Verify: verify, Seed: 13, Workers: 2, MaxRetries: 1, RetryBackoff: time.Millisecond}
	c.beforeTrial = func(trial, attempt int) {
		if trial == 3 {
			panic("persistent test panic")
		}
	}
	res, err := c.RunContext(context.Background(), n)
	if err == nil {
		t.Fatal("campaign with a permanently failing trial reported no error")
	}
	if !strings.Contains(err.Error(), "trial 3") || !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("error does not identify the failed trial: %v", err)
	}
	if res == nil {
		t.Fatal("campaign with a failing trial must still return its result")
	}
	if res.Completed != n-1 || res.Failed != 1 || res.Pending != 0 {
		t.Fatalf("completed=%d failed=%d pending=%d, want %d/1/0", res.Completed, res.Failed, res.Pending, n-1)
	}
	tr := res.Trials[3]
	if tr.Status != TrialFailed || tr.Attempts != 2 || !strings.Contains(tr.Err, "persistent test panic") {
		t.Fatalf("failed trial recorded as %+v", tr)
	}
	total := 0
	for _, cnt := range res.Counts {
		total += cnt
	}
	if total != res.Completed {
		t.Fatalf("counts sum to %d, want completed=%d", total, res.Completed)
	}
	var sum float64
	for _, o := range []Outcome{OutcomeSymptom, OutcomeDetected, OutcomeMasked, OutcomeSOC} {
		sum += res.Proportion(o)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("proportions over completed trials sum to %v", sum)
	}
	if res.ErrorSummary() == "" {
		t.Fatal("degraded campaign produced an empty error summary")
	}
}

// A campaign cancelled mid-run and resumed from its journal must be
// bit-identical to an uninterrupted campaign.
func TestCampaignCancelThenResumeBitIdentical(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 50

	ref := &Campaign{Prog: p, Verify: verify, Seed: 21}
	refRes, err := ref.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1 := &Campaign{
		Prog: p, Verify: verify, Seed: 21, Workers: 2, Journal: j1,
		Progress: func(done, total, failed, deadlocked int) {
			if done >= 10 {
				cancel()
			}
		},
	}
	partial, err := c1.RunContext(ctx, n)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if partial == nil || partial.Pending == 0 {
		t.Fatalf("cancellation left no pending trials (partial=%+v)", partial)
	}
	if partial.Completed+partial.Failed+partial.Pending != n {
		t.Fatalf("status partition does not cover all trials: %+v", partial)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() == 0 {
		t.Fatal("journal restored no trials")
	}
	c2 := &Campaign{Prog: p, Verify: verify, Seed: 21, Workers: 2, Journal: j2}
	resumed, err := c2.RunContext(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Completed != n {
		t.Fatalf("resumed campaign completed %d/%d", resumed.Completed, n)
	}
	for i := range refRes.Trials {
		if resumed.Trials[i] != refRes.Trials[i] {
			t.Fatalf("trial %d differs after resume: %+v vs %+v", i, resumed.Trials[i], refRes.Trials[i])
		}
	}
	if resumed.Counts != refRes.Counts {
		t.Fatalf("outcome counts differ after resume: %v vs %v", resumed.Counts, refRes.Counts)
	}
}

// A journal written by one campaign must refuse to drive a different
// one (different seed => different plan sequence).
func TestJournalRejectsDifferentCampaign(t *testing.T) {
	p, verify := compileCampaignProg(t)
	path := filepath.Join(t.TempDir(), "trials.jsonl")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Campaign{Prog: p, Verify: verify, Seed: 5, Journal: j1}
	if _, err := c1.Run(10); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2 := &Campaign{Prog: p, Verify: verify, Seed: 6, Journal: j2}
	if _, err := c2.Run(10); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("journal accepted a campaign with a different seed: %v", err)
	}
}

// A torn trailing line (crash mid-write) must be discarded on open, and
// the journal must still resume from the records before it.
func TestJournalDiscardsTornTail(t *testing.T) {
	p, verify := compileCampaignProg(t)
	path := filepath.Join(t.TempDir(), "trials.jsonl")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Campaign{Prog: p, Verify: verify, Seed: 8, Journal: j1}
	if _, err := c1.Run(10); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":99,"tri`); err != nil { // no newline: torn write
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal with torn tail failed to open: %v", err)
	}
	defer j2.Close()
	if j2.Restored() != 10 {
		t.Fatalf("restored %d trials, want 10", j2.Restored())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(intact) {
		t.Fatal("torn tail was not truncated back to the last complete record")
	}
}

// Runs that end before their fault injects are injector-infrastructure
// conditions, never modeled outcomes (they must not surface as
// OutcomeSymptom in the statistics).
func TestTrialFromResultPreInjectionIsInfraError(t *testing.T) {
	golden := &interp.Result{}
	plan := interp.FaultPlan{Index: 5, Bit: 3}
	okVerify := func(_, _ *interp.Result) bool { return true }

	if _, err := trialFromResult(plan, golden, &interp.Result{Trap: interp.TrapOOB}, okVerify); err == nil {
		t.Fatal("pre-injection trap was classified instead of erroring")
	}
	if _, err := trialFromResult(plan, golden, &interp.Result{Trap: interp.TrapNone}, okVerify); err == nil {
		t.Fatal("clean run that never injected was classified instead of erroring")
	}
	if _, err := trialFromResult(plan, golden, &interp.Result{Trap: interp.TrapCancelled}, okVerify); !errors.Is(err, errCancelled) {
		t.Fatalf("cancelled run returned %v, want errCancelled", err)
	}
	tr, err := trialFromResult(plan, golden, &interp.Result{Injected: true, InjectedSite: 4, Trap: interp.TrapOOB}, okVerify)
	if err != nil {
		t.Fatalf("post-injection trap errored: %v", err)
	}
	if tr.Status != TrialCompleted || tr.Outcome != OutcomeSymptom {
		t.Fatalf("post-injection trap classified as %+v, want completed symptom", tr)
	}
}

// Cancellation raised while trials are executing must leave unexecuted
// trials pending (to be re-run on resume), never charge them as failed.
func TestCampaignCancelDuringTrialLeavesPending(t *testing.T) {
	p, verify := compileCampaignProg(t)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Bool
	c := &Campaign{
		Prog: p, Verify: verify, Seed: 3, Workers: 1,
		beforeTrial: func(trial, attempt int) {
			if started.CompareAndSwap(false, true) {
				cancel()
			}
		},
	}
	res, err := c.RunContext(ctx, 20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled campaign returned no result")
	}
	for i, tr := range res.Trials {
		if tr.Status == TrialFailed {
			t.Fatalf("cancellation charged trial %d as failed: %+v", i, tr)
		}
	}
}

// The invariance extends to GOMAXPROCS workers (the satellite asks for
// 1, 4 and GOMAXPROCS explicitly; 1 vs 4 is covered by
// TestCampaignWorkerCountInvariant).
func TestCampaignWorkerCountInvariantGOMAXPROCS(t *testing.T) {
	p, verify := compileCampaignProg(t)
	run := func(workers int) *CampaignResult {
		c := &Campaign{Prog: p, Verify: verify, Seed: 55, Workers: workers}
		res, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	rg := run(runtime.GOMAXPROCS(0))
	for i := range r1.Trials {
		if r1.Trials[i] != rg.Trials[i] {
			t.Fatalf("trial %d differs between 1 and GOMAXPROCS=%d workers", i, runtime.GOMAXPROCS(0))
		}
	}
}
