//go:build !unix

package fault

import "os"

// lockFile is a no-op off unix: advisory journal locking is
// best-effort, and the header fingerprint (Journal.Begin) still
// rejects cross-campaign mixing even without it.
func lockFile(*os.File) error { return nil }
