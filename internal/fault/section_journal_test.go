package fault

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ipas/internal/interp"
	"ipas/internal/lang"
)

func sectionedCampaign(t *testing.T, coverage int) *Campaign {
	t.Helper()
	m, err := lang.Compile(campaignProg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == 1 && faulty.OutputF[0] == golden.OutputF[0]
	}
	return &Campaign{Prog: p, Verify: verify, Seed: 11, Sections: true, Coverage: coverage}
}

func runSectioned(t *testing.T, coverage int, dir string) *SectionResult {
	t.Helper()
	prep, err := sectionedCampaign(t, coverage).Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.RunSections(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSectionsJournalReuse(t *testing.T) {
	dir := t.TempDir()
	first := runSectioned(t, 2, dir)
	if first.Executed != first.Plan.Total || first.Restored != 0 {
		t.Fatalf("cold run: executed=%d restored=%d, want %d/0",
			first.Executed, first.Restored, first.Plan.Total)
	}
	second := runSectioned(t, 2, dir)
	if second.Executed != 0 || second.Restored != first.Plan.Total {
		t.Fatalf("warm run: executed=%d restored=%d, want 0/%d",
			second.Executed, second.Restored, first.Plan.Total)
	}
	for i, st := range second.Stats {
		if st.Restored != st.Trials {
			t.Errorf("section %d: restored %d of %d trials", i, st.Restored, st.Trials)
		}
	}
}

func TestRunSectionsStaleJournalRebuilt(t *testing.T) {
	dir := t.TempDir()
	runSectioned(t, 1, dir)
	// A different coverage changes per-section trial counts, so every
	// journal header mismatches and must be discarded and rebuilt —
	// not trusted, not fatal.
	res := runSectioned(t, 3, dir)
	if res.Restored != 0 || res.Executed != res.Plan.Total {
		t.Fatalf("after coverage change: executed=%d restored=%d, want %d/0",
			res.Executed, res.Restored, res.Plan.Total)
	}
}

func TestRunSectionsCorruptJournalRebuilt(t *testing.T) {
	dir := t.TempDir()
	first := runSectioned(t, 2, dir)
	names, err := filepath.Glob(filepath.Join(dir, "sec-*.jsonl"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no section journals written (err=%v)", err)
	}
	if err := os.WriteFile(names[0], []byte("{half a rec"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := runSectioned(t, 2, dir)
	if res.Executed == 0 {
		t.Error("corrupt journal re-used instead of rebuilt")
	}
	if res.Executed+res.Restored != first.Plan.Total {
		t.Errorf("executed %d + restored %d != total %d",
			res.Executed, res.Restored, first.Plan.Total)
	}
}

// TestJournalCrossFormatMismatch is the admission rule both the local
// runner and campaignd rely on: a plain campaign may not adopt a
// sectioned journal, and vice versa.
func TestJournalCrossFormatMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sectioned := JournalMeta{
		Format: JournalFormatSectioned, Seed: 11, Trials: 8,
		Population: 100, SectionFP: "deadbeefdeadbeefdeadbeefdeadbeef",
	}
	if _, err := j.Begin(sectioned); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A plain campaign with otherwise identical parameters must be
	// refused: the trial spaces are incompatible (section-local site
	// ordinals vs global SiteIDs).
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	plain := sectioned
	plain.Format = ""
	plain.SectionFP = ""
	if _, err := j2.Begin(plain); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("plain Begin on sectioned journal: err=%v, want ErrCampaignMismatch", err)
	}

	// And the reverse: a sectioned campaign must not adopt a plain
	// journal.
	path2 := filepath.Join(dir, "plain.jsonl")
	j3, err := OpenJournal(path2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Begin(JournalMeta{Seed: 11, Trials: 8, Population: 100}); err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	j4, err := OpenJournal(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if _, err := j4.Begin(sectioned); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("sectioned Begin on plain journal: err=%v, want ErrCampaignMismatch", err)
	}
}
