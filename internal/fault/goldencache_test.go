package fault

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ipas/internal/interp"
	"ipas/internal/lang"
)

// A golden-cache hit must return byte-identical results to a cold
// compute: the golden Result itself and every trial of a campaign run
// against it.
func TestGoldenCacheHitBitIdentical(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 60

	// Cold reference, caching disabled: always recomputes.
	cold := &Campaign{Prog: p, Verify: verify, Seed: 9, NoGoldenCache: true}
	coldPrep, err := cold.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if coldPrep.GoldenCached {
		t.Fatal("NoGoldenCache campaign reported a cache hit")
	}
	coldRes, err := cold.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	// Prime a private cache, then hit it from a separately compiled
	// program with identical content (the cross-campaign sharing case).
	gc := NewGoldenCache(8)
	prime := &Campaign{Prog: p, Verify: verify, Seed: 9, GoldenCache: gc}
	primePrep, err := prime.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if primePrep.GoldenCached {
		t.Fatal("first Prepare on an empty cache reported a hit")
	}
	p2, _ := compileCampaignProg(t)
	warm := &Campaign{Prog: p2, Verify: verify, Seed: 9, GoldenCache: gc}
	warmPrep, err := warm.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !warmPrep.GoldenCached {
		t.Fatal("second Prepare of identical content missed the cache")
	}
	if gc.Hits() != 1 || gc.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", gc.Hits(), gc.Misses())
	}
	if !reflect.DeepEqual(warmPrep.Golden, coldPrep.Golden) {
		t.Fatalf("cached golden differs from cold compute:\n%+v\nvs\n%+v",
			warmPrep.Golden, coldPrep.Golden)
	}
	if warmPrep.Population != coldPrep.Population {
		t.Fatalf("population %d vs %d", warmPrep.Population, coldPrep.Population)
	}

	warmRes, err := warm.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(warmRes.Trials) != len(coldRes.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(warmRes.Trials), len(coldRes.Trials))
	}
	for i := range coldRes.Trials {
		if warmRes.Trials[i] != coldRes.Trials[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, warmRes.Trials[i], coldRes.Trials[i])
		}
	}
	if warmRes.Counts != coldRes.Counts {
		t.Fatalf("outcome counts differ: %v vs %v", warmRes.Counts, coldRes.Counts)
	}
	if warmRes.GoldenDyn != coldRes.GoldenDyn {
		t.Fatalf("GoldenDyn %d vs %d", warmRes.GoldenDyn, coldRes.GoldenDyn)
	}
}

// A campaign cancelled mid-run and resumed from its journal with a warm
// golden cache must be bit-identical to an uninterrupted, uncached
// campaign: the cached golden run anchors the same plans, budgets and
// classifications.
func TestGoldenCacheCancelResumeBitIdentical(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 50

	ref := &Campaign{Prog: p, Verify: verify, Seed: 21, NoGoldenCache: true}
	refRes, err := ref.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	gc := NewGoldenCache(8)
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1 := &Campaign{
		Prog: p, Verify: verify, Seed: 21, Workers: 2, Journal: j1, GoldenCache: gc,
		Progress: func(done, total, failed, deadlocked int) {
			if done >= 10 {
				cancel()
			}
		},
	}
	if _, err := c1.RunContext(ctx, n); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process" (freshly compiled program), golden
	// served from the warm cache.
	p2, _ := compileCampaignProg(t)
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2 := &Campaign{Prog: p2, Verify: verify, Seed: 21, Workers: 2, Journal: j2, GoldenCache: gc}
	prep, err := c2.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !prep.GoldenCached {
		t.Fatal("resume did not hit the warm golden cache")
	}
	resumed, err := c2.RunContext(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Completed != n {
		t.Fatalf("resumed campaign completed %d/%d", resumed.Completed, n)
	}
	for i := range refRes.Trials {
		if resumed.Trials[i] != refRes.Trials[i] {
			t.Fatalf("trial %d differs after cached resume: %+v vs %+v",
				i, resumed.Trials[i], refRes.Trials[i])
		}
	}
	if resumed.Counts != refRes.Counts {
		t.Fatalf("outcome counts differ: %v vs %v", resumed.Counts, refRes.Counts)
	}
}

// Concurrent Prepares of the same content share one compute: exactly
// one golden run executes, everyone else blocks and adopts its result.
func TestGoldenCacheConcurrentPrepareSharesCompute(t *testing.T) {
	const workers = 8
	gc := NewGoldenCache(8)
	var wg sync.WaitGroup
	preps := make([]*Prepared, workers)
	for i := 0; i < workers; i++ {
		p, verify := compileCampaignProg(t)
		c := &Campaign{Prog: p, Verify: verify, Seed: 4, GoldenCache: gc}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prep, err := c.Prepare(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			preps[i] = prep
		}(i)
	}
	wg.Wait()
	if gc.Misses() != 1 {
		t.Fatalf("%d golden runs executed, want 1 (hits=%d)", gc.Misses(), gc.Hits())
	}
	if gc.Hits() != workers-1 {
		t.Fatalf("hits=%d, want %d", gc.Hits(), workers-1)
	}
	for i := 1; i < workers; i++ {
		if preps[i].Golden != preps[0].Golden {
			t.Fatalf("prepare %d did not share the cached golden result", i)
		}
	}
}

// A trapped golden run must fail Prepare and leave no cache entry
// behind — the next Prepare retries instead of replaying the failure.
func TestGoldenCacheTrapNotCached(t *testing.T) {
	m, err := lang.Compile(`func main() { var z int = 0; out_i64(0, 1 / z); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	gc := NewGoldenCache(8)
	c := &Campaign{Prog: p, Verify: func(_, _ *interp.Result) bool { return true }, GoldenCache: gc}
	for i := 0; i < 2; i++ {
		if _, err := c.Prepare(context.Background()); err == nil {
			t.Fatalf("attempt %d: Prepare of a trapping program succeeded", i)
		}
		if gc.Len() != 0 {
			t.Fatalf("attempt %d: failed golden run left %d cache entries", i, gc.Len())
		}
	}
}

// The cache key includes the execution configuration: the same program
// under a different address-space size is a different golden run.
func TestGoldenCacheKeyedByConfig(t *testing.T) {
	p, verify := compileCampaignProg(t)
	gc := NewGoldenCache(8)
	a := &Campaign{Prog: p, Verify: verify, GoldenCache: gc}
	if _, err := a.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := &Campaign{
		Prog: p, Verify: verify, GoldenCache: gc,
		Config: interp.Config{HeapBytes: 32 << 20},
	}
	prep, err := b.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prep.GoldenCached {
		t.Fatal("different HeapBytes hit the same cache entry")
	}
	if gc.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", gc.Len())
	}
}

// Capacity bounds the cache: older entries are evicted LRU.
func TestGoldenCacheLRUEviction(t *testing.T) {
	p, verify := compileCampaignProg(t)
	gc := NewGoldenCache(1)
	a := &Campaign{Prog: p, Verify: verify, GoldenCache: gc}
	if _, err := a.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := &Campaign{
		Prog: p, Verify: verify, GoldenCache: gc,
		Config: interp.Config{HeapBytes: 32 << 20},
	}
	if _, err := b.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 (capacity)", gc.Len())
	}
	// The first key was evicted: preparing it again is a miss.
	prep, err := a.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prep.GoldenCached {
		t.Fatal("evicted entry reported a hit")
	}
}

// Sectioned campaigns share the cached golden run (trace, site counts)
// while rebuilding program-bound section tables per campaign.
func TestGoldenCacheSectioned(t *testing.T) {
	gc := NewGoldenCache(8)
	var totals []int
	for i := 0; i < 2; i++ {
		c := sectionedCampaign(t, 2)
		c.GoldenCache = gc
		prep, err := c.Prepare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if prep.GoldenCached != (i == 1) {
			t.Fatalf("prepare %d: GoldenCached=%v", i, prep.GoldenCached)
		}
		totals = append(totals, prep.SectionTotal())
		res, err := prep.RunSections(context.Background(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if res.Executed != res.Plan.Total {
			t.Fatalf("prepare %d: executed %d of %d", i, res.Executed, res.Plan.Total)
		}
	}
	if totals[0] != totals[1] {
		t.Fatalf("section totals differ across cache hit: %d vs %d", totals[0], totals[1])
	}
}
