package fault

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ipas/internal/interp"
)

// GoldenCache memoizes golden (fault-free) runs across campaigns. A
// campaign's trial count multiplies executions of the same program —
// and sweeps, shards, resumed checkpoints and server workers multiply
// campaigns over the same (workload, input) — but the golden run each
// one opens with is a pure function of the program content and the
// execution configuration. The cache keys on exactly that pure-function
// domain:
//
//	(program fingerprint, ranks, heap, stack, budget, sectioned)
//
// where the fingerprint (interp.Program.Fingerprint) hashes the printed
// IR — which embeds the workload's baked-in input — plus the injectable
// bitmap and site count, so two programs compiled from the same module
// with the same fault model share an entry even across processes'
// recompiles, while any change to code, input or fault model misses.
// Config.Watchdog is deliberately excluded: it bounds wall-clock
// blocking only and cannot alter a clean run's observables.
//
// Only clean results (TrapNone) are cached: a trapped or cancelled
// golden run fails Prepare and must be re-attempted, not replayed.
// Concurrent Prepares of the same key share one compute — later
// arrivals block on the first; if the computing Prepare fails, one
// waiter takes over rather than inheriting the error.
//
// Only the golden Result is cached — pure content: outputs, counts,
// per-site counts, the section boundary trace. Section tables are NOT
// cached: they bind to one Program instance (interp.SectionTables keys
// on its compiled functions by pointer), so Prepare rebuilds them per
// campaign — compile-time work, not an execution — and reuses only the
// run.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[goldenKey]*goldenEntry
	order   []goldenKey // LRU order, oldest first
	cap     int

	hits   atomic.Int64
	misses atomic.Int64
}

type goldenKey struct {
	progFP    string
	ranks     int
	heap      int64
	stack     int64
	maxInstrs int64
	sectioned bool
}

// goldenEntry is a compute-once slot. ready is closed when the compute
// finishes; ok reports whether it succeeded (a failed compute removes
// the entry, so waiters observing !ok retry and one of them becomes the
// next computer).
type goldenEntry struct {
	ready chan struct{}
	ok    bool

	golden *interp.Result
}

// DefaultGoldenCacheCap bounds SharedGoldenCache; each entry holds one
// golden Result (outputs, per-site counts, optionally a section trace).
const DefaultGoldenCacheCap = 128

// SharedGoldenCache is the process-wide cache campaigns use by default.
// Campaign.NoGoldenCache opts a campaign out; Campaign.GoldenCache
// points one at a private cache (isolation in tests, bounded lifetime
// in long-lived servers).
var SharedGoldenCache = NewGoldenCache(DefaultGoldenCacheCap)

// NewGoldenCache creates a cache holding at most capacity entries
// (evicting least-recently-used beyond that). capacity <= 0 selects
// DefaultGoldenCacheCap.
func NewGoldenCache(capacity int) *GoldenCache {
	if capacity <= 0 {
		capacity = DefaultGoldenCacheCap
	}
	return &GoldenCache{
		entries: make(map[goldenKey]*goldenEntry),
		cap:     capacity,
	}
}

// Hits and Misses report lookup counters (hits include waits on an
// in-flight compute that succeeded).
func (gc *GoldenCache) Hits() int64   { return gc.hits.Load() }
func (gc *GoldenCache) Misses() int64 { return gc.misses.Load() }

// Len reports the number of completed entries currently held.
func (gc *GoldenCache) Len() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.entries)
}

// lookup returns the entry for key, or claims the compute slot: claimed
// is true when the caller must run the golden run and finish with
// complete or abandon.
func (gc *GoldenCache) lookup(key goldenKey) (e *goldenEntry, claimed bool) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if e, found := gc.entries[key]; found {
		gc.touch(key)
		return e, false
	}
	e = &goldenEntry{ready: make(chan struct{})}
	gc.entries[key] = e
	gc.order = append(gc.order, key)
	gc.evict()
	return e, true
}

// touch moves key to the most-recently-used position.
func (gc *GoldenCache) touch(key goldenKey) {
	for i, k := range gc.order {
		if k == key {
			gc.order = append(append(gc.order[:i:i], gc.order[i+1:]...), key)
			return
		}
	}
}

// evict drops least-recently-used completed entries beyond capacity.
// In-flight entries are skipped: their computer still expects to
// complete them, and waiters hold the pointer regardless.
func (gc *GoldenCache) evict() {
	for len(gc.entries) > gc.cap {
		victim := -1
		for i, k := range gc.order {
			e := gc.entries[k]
			select {
			case <-e.ready:
				victim = i
			default:
				continue
			}
			break
		}
		if victim < 0 {
			return // everything in flight; capacity is advisory then
		}
		delete(gc.entries, gc.order[victim])
		gc.order = append(gc.order[:victim], gc.order[victim+1:]...)
	}
}

// complete publishes a successful compute.
func (gc *GoldenCache) complete(key goldenKey, e *goldenEntry) {
	gc.mu.Lock()
	e.ok = true
	gc.mu.Unlock()
	close(e.ready)
}

// abandon withdraws a failed compute so the key can be retried.
func (gc *GoldenCache) abandon(key goldenKey, e *goldenEntry) {
	gc.mu.Lock()
	if cur, found := gc.entries[key]; found && cur == e {
		delete(gc.entries, key)
		for i, k := range gc.order {
			if k == key {
				gc.order = append(gc.order[:i], gc.order[i+1:]...)
				break
			}
		}
	}
	gc.mu.Unlock()
	close(e.ready)
}

// goldenRun resolves the campaign's golden run through the cache:
// cached result on a hit, compute-and-fill on a miss, wait-then-retry
// when another Prepare is already computing the same key. compute must
// return a clean result or an error; its successful result is cached
// verbatim and shared, so callers treat it as immutable.
func (gc *GoldenCache) goldenRun(
	ctx context.Context,
	key goldenKey,
	compute func() (*interp.Result, error),
) (*interp.Result, bool, error) {
	for {
		e, claimed := gc.lookup(key)
		if claimed {
			golden, err := compute()
			if err != nil {
				gc.abandon(key, e)
				return nil, false, err
			}
			e.golden = golden
			gc.complete(key, e)
			gc.misses.Add(1)
			return e.golden, false, nil
		}
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, fmt.Errorf("fault: golden run cancelled: %w", ctx.Err())
		}
		if e.ok {
			gc.hits.Add(1)
			return e.golden, true, nil
		}
		// The computing Prepare failed and withdrew the entry; take
		// over (or wait on whoever beat us to the retry).
	}
}
