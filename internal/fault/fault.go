// Package fault implements statistical fault injection over the IPAS
// IR, the role FlipIt plays in the paper: it samples uniformly random
// dynamic instances of injectable instructions, flips one uniformly
// random bit in the instruction's result, and classifies the run's
// outcome into the paper's four categories (§5.5): observable symptom,
// detected by duplication, masked, and silent output corruption.
package fault

import (
	"context"
	"errors"
	"fmt"
	mbits "math/bits"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

// Injectable is the paper's fault model (§3): faults corrupt the
// resulting register value of computational instructions — functional
// units, address computations, stack allocation, and values returned
// from calls. Loads and stores are excluded (memory and its datapaths
// are ECC-protected), control-flow instructions are excluded (handled
// by control-flow checking, out of scope), and PHI nodes are excluded
// (SSA bookkeeping, not a hardware operation). Shadow duplicates are
// legitimate targets — protection code is code — but the comparison
// checks themselves are not (they are branch logic).
func Injectable(in *ir.Instr) bool {
	if !in.HasResult() || in.Op().IsTerminator() {
		return false
	}
	switch in.Op() {
	case ir.OpLoad, ir.OpPhi:
		return false
	}
	return in.Prot != ir.ProtCheck
}

// InjectableIncludingLoads widens the fault model to load results,
// modeling a machine WITHOUT ECC on the memory datapath. The paper
// assumes ECC (§3); this variant exists for the ablation that
// quantifies how much that assumption matters (loads are never
// duplicable, so every protection scheme loses coverage under it).
func InjectableIncludingLoads(in *ir.Instr) bool {
	if Injectable(in) {
		return true
	}
	return in.Op() == ir.OpLoad && in.Prot != ir.ProtCheck
}

// CompileWithModel compiles a module with an explicit injectable
// predicate (used by ablations; Compile uses the paper's model).
func CompileWithModel(m *ir.Module, injectable func(*ir.Instr) bool) (*interp.Program, error) {
	return interp.Compile(m, injectable)
}

// Outcome classifies one fault-injection run (§5.5 of the paper).
type Outcome int

const (
	// OutcomeSymptom: crash, hang, or other system-visible failure;
	// recoverable by checkpoint/restart.
	OutcomeSymptom Outcome = iota
	// OutcomeDetected: a duplication check caught the corruption.
	OutcomeDetected
	// OutcomeMasked: the run completed and the verification routine
	// accepted the output.
	OutcomeMasked
	// OutcomeSOC: silent output corruption — the run completed but the
	// verification routine rejected the output.
	OutcomeSOC

	NumOutcomes = 4
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSymptom:
		return "symptom"
	case OutcomeDetected:
		return "detected"
	case OutcomeMasked:
		return "masked"
	case OutcomeSOC:
		return "SOC"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Verifier decides whether a completed faulty run's output is
// acceptable (true = no SOC). It receives the golden (fault-free)
// result for reference-based checks such as the FFT L2 norm.
type Verifier func(golden, faulty *interp.Result) bool

// Classify maps a run result onto an outcome category.
func Classify(golden, res *interp.Result, verify Verifier) Outcome {
	switch {
	case res.Trap == interp.TrapDetected:
		return OutcomeDetected
	case res.Trap != interp.TrapNone:
		return OutcomeSymptom
	case verify(golden, res):
		return OutcomeMasked
	default:
		return OutcomeSOC
	}
}

// TrialStatus separates modeled fault outcomes from campaign
// infrastructure conditions (REFINE's distinction: faults of the
// injector harness must never be counted as faults of the application).
type TrialStatus uint8

const (
	// TrialCompleted means the trial ran and Outcome is valid. It is
	// the zero value so a plainly constructed Trial is a completed one.
	TrialCompleted TrialStatus = iota
	// TrialFailed means every attempt hit an infrastructure error
	// (worker panic, pre-injection trap, plan that never fired); Err
	// holds the last error and the trial carries no outcome.
	TrialFailed
	// TrialPending means the trial was never executed (campaign
	// cancelled before its turn); it is re-run on resume.
	TrialPending
)

// String names the status.
func (s TrialStatus) String() string {
	switch s {
	case TrialCompleted:
		return "completed"
	case TrialFailed:
		return "failed"
	case TrialPending:
		return "pending"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Trial records one injection.
type Trial struct {
	// Site is the static instruction (SiteID) the fault landed on.
	Site int `json:"site"`
	// Bit is the *effective* flipped bit position: the plan's raw draw
	// reduced modulo the victim value's width at injection time (a plan
	// bit of 37 landing on an i1 comparison flips bit 0, and that is
	// what gets recorded). For multi-bit corruptions it is the lowest
	// set bit of Mask; -1 when the folded mask cancelled to zero (the
	// plan fired but left the value unchanged). Pending trials hold the
	// plan's raw bit until they execute.
	Bit int `json:"bit"`
	// Mask is the effective corruption mask the injection XORed into the
	// value's bit pattern, in the value's own width. Zero — and omitted,
	// keeping single-bit journal lines byte-identical to the v1 format —
	// when the corruption was the single flip 1<<Bit.
	Mask uint64 `json:"mask,omitempty"`
	// Index is the dynamic injectable-instance index targeted.
	Index int64 `json:"index"`
	// Outcome is the classified result (valid only when Status is
	// TrialCompleted).
	Outcome Outcome `json:"outcome"`
	// Latency is the number of dynamic instructions the injected rank
	// executed between the bit flip and the run's termination — the
	// error-detection latency for Detected/Symptom outcomes, and the
	// residual run length for Masked/SOC (§2.1: duplication detects
	// "close to the occurrence", enabling recent checkpoints).
	Latency int64 `json:"latency"`
	// Deadlock carries the rank supervisor's structural-deadlock
	// attribution (one line, per-rank detail) when the injected fault
	// hung the job. Empty for every other outcome. Deterministic: the
	// report is a pure function of the program and plan, so resumed
	// campaigns restore the identical string.
	Deadlock string `json:"deadlock,omitempty"`
	// Status partitions trials into completed / failed / pending.
	Status TrialStatus `json:"status,omitempty"`
	// Err is the last infrastructure error when Status is TrialFailed.
	Err string `json:"err,omitempty"`
	// Attempts counts executions performed for this trial (1 = no
	// retries were needed).
	Attempts int `json:"attempts,omitempty"`
}

// CampaignResult aggregates a statistical fault-injection campaign. It
// degrades gracefully: Trials always holds one slot per planned trial,
// Completed/Failed/Pending partition them, and the outcome statistics
// (Counts, Proportion, MeanLatency) are computed over completed trials
// only.
type CampaignResult struct {
	Trials []Trial
	Counts [NumOutcomes]int
	// GoldenDyn is the fault-free total dynamic instruction count.
	GoldenDyn int64
	// Completed, Failed and Pending partition Trials by status.
	Completed int
	Failed    int
	Pending   int
	// Deadlocks counts completed trials whose injected fault hung the
	// job (structural deadlock declared by the rank supervisor); each
	// such trial carries the attribution in Trial.Deadlock.
	Deadlocks int
}

// Proportion returns the fraction of completed trials with outcome o.
func (c *CampaignResult) Proportion(o Outcome) float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(c.Completed)
}

// MeanLatency returns the average injection-to-termination latency (in
// dynamic instructions) over completed trials with outcome o, or -1
// when none.
func (c *CampaignResult) MeanLatency(o Outcome) float64 {
	var sum float64
	n := 0
	for _, tr := range c.Trials {
		if tr.Status == TrialCompleted && tr.Outcome == o {
			sum += float64(tr.Latency)
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// ErrorSummary renders a short human-readable account of trials that
// did not complete ("" when every trial completed). At most three
// distinct error messages are spelled out.
func (c *CampaignResult) ErrorSummary() string {
	if c.Failed == 0 && c.Pending == 0 {
		return ""
	}
	s := fmt.Sprintf("%d/%d trials completed", c.Completed, len(c.Trials))
	if c.Failed > 0 {
		s += fmt.Sprintf(", %d failed", c.Failed)
		shown := 0
		for t, tr := range c.Trials {
			if tr.Status != TrialFailed {
				continue
			}
			if shown == 3 {
				s += ", ..."
				break
			}
			s += fmt.Sprintf(" [trial %d after %d attempts: %s]", t, tr.Attempts, tr.Err)
			shown++
		}
	}
	if c.Pending > 0 {
		s += fmt.Sprintf(", %d pending (cancelled before execution)", c.Pending)
	}
	return s
}

// Campaign drives statistical fault injection against one program.
type Campaign struct {
	// Prog must be compiled with fault.Injectable as its injectable
	// predicate (see Compile).
	Prog *interp.Program
	// Verify is the application's output verification routine.
	Verify Verifier
	// Config is the base execution configuration; the campaign adds
	// the fault plan and hang budget per trial.
	Config interp.Config
	// HangFactor multiplies the golden dynamic count to form the
	// hang-detection budget (default 10).
	HangFactor int64
	// Seed makes the campaign deterministic.
	Seed int64
	// Model selects the injection strategy each trial's plan is drawn
	// with (nil = SingleBit, the paper's model). The model's name rides
	// journal headers and campaign specs, so resuming or remotely
	// executing a campaign under a different model fails with
	// ErrCampaignMismatch instead of mixing incompatible trial spaces.
	Model ErrorModel
	// Sections partitions the trial space by IR section (FastFlip-style
	// compositional analysis): the golden run captures per-section
	// boundary state, each section gets its own deterministic trial
	// allocation sized by Coverage, plans carry section targets, and
	// trials that return to the golden boundary state stop early as
	// Masked. Requires Ranks == 1 and AssignSiteIDs on the module.
	Sections bool
	// Coverage is the per-site dynamic-occurrence coverage target k for
	// sectioned campaigns: section s receives
	// ceil(k * pop_s / dmin_s) trials, where pop_s is its injectable
	// instance population and dmin_s the dynamic count of its rarest
	// exercised site — enough uniform draws to hit every site about k
	// times in expectation. Required (>= 1) when Sections is set.
	Coverage int
	// MaxPerSection caps one section's trial allocation (test and
	// smoke-run budgets); 0 = uncapped. Capping trades per-site
	// coverage in hot sections for bounded wall clock; the analytic
	// trial-count comparison (cmd/composebench) always reports the
	// uncapped numbers.
	MaxPerSection int
	// Workers bounds concurrent trial execution (default: GOMAXPROCS).
	// Trials are independent interpreter runs and the plan sequence is
	// drawn up front, so results are identical for any worker count.
	Workers int
	// MaxRetries bounds how many times a trial is re-executed after an
	// infrastructure error — a worker panic, a trap raised before the
	// fault injected, or a plan that never fired. Like Workers and
	// HangFactor, the zero value selects the default
	// (DefaultMaxRetries, so up to 3 attempts); to request zero
	// retries set NoRetries. After the budget is exhausted the trial
	// is recorded as TrialFailed instead of aborting the campaign.
	MaxRetries int
	// RetryBackoff is the base delay before re-running a failed trial;
	// attempt k waits RetryBackoff << (k-1), and cancellation
	// interrupts the wait (default 10ms).
	RetryBackoff time.Duration
	// Journal, when non-nil, receives every finished trial as it
	// completes and seeds resume: trials already recorded are restored
	// instead of re-executed. Because the plan sequence is drawn up
	// front from Seed, a resumed campaign is bit-identical to an
	// uninterrupted one.
	Journal *Journal
	// Progress, when non-nil, is invoked (serialized) after every
	// finished trial with the number done so far (including restored
	// ones), the total, the infrastructure-failure count, and the
	// count of trials whose fault deadlocked the job.
	Progress func(done, total, failed, deadlocked int)

	// GoldenCache overrides the golden-run cache consulted by Prepare
	// (nil selects SharedGoldenCache). Campaigns over the same program
	// content and execution configuration then share one golden run —
	// outputs, instruction counts, per-site counts and section boundary
	// digests are computed once per (workload, input), not once per
	// campaign or shard. The cached Result is shared and must be
	// treated as immutable.
	GoldenCache *GoldenCache
	// NoGoldenCache opts this campaign out of golden-run caching: its
	// golden run is always recomputed and never published.
	NoGoldenCache bool

	// beforeTrial is a test hook called at the start of every trial
	// attempt; panics it raises exercise the worker isolation path.
	beforeTrial func(t, attempt int)
}

// Retry sentinels for Campaign.MaxRetries (and the analogous
// shard-level knob in internal/fault/shard). The field follows the
// Workers/HangFactor convention — zero means "default" — which would
// otherwise leave no way to ask for zero retries.
const (
	// DefaultMaxRetries is the retry budget selected by a zero
	// MaxRetries.
	DefaultMaxRetries = 2
	// NoRetries requests zero retries explicitly (any negative value
	// is treated the same; this named sentinel is the documented one).
	NoRetries = -1
)

// ExplicitRetries converts a literal retry count — as a user states it
// on a CLI flag, where 0 means "no retries" — into a MaxRetries field
// value, mapping 0 (and negatives) onto NoRetries so it is not
// silently promoted to the default.
func ExplicitRetries(n int) int {
	if n <= 0 {
		return NoRetries
	}
	return n
}

// retries resolves the MaxRetries convention into a concrete budget.
func retries(maxRetries int) int {
	switch {
	case maxRetries < 0:
		return 0
	case maxRetries == 0:
		return DefaultMaxRetries
	}
	return maxRetries
}

// Compile compiles a module for fault injection.
func Compile(m *ir.Module) (*interp.Program, error) {
	return interp.Compile(m, Injectable)
}

// Run executes the golden run plus n injection trials.
func (c *Campaign) Run(n int) (*CampaignResult, error) {
	return c.RunContext(context.Background(), n)
}

// errCancelled marks a trial attempt interrupted by context
// cancellation; the trial stays pending (re-run on resume) rather than
// being charged a retry.
var errCancelled = errors.New("fault: trial cancelled")

// Prepared binds a campaign to its golden run: the immutable substrate
// every trial executes against. The single-loop engine prepares and
// runs in one call (RunContext); sharded engines (internal/fault/shard)
// prepare once and execute disjoint trial-index ranges concurrently,
// which is sound because Plans is a pure function of (Seed, trial
// index) and RunTrial touches only shared-immutable state.
type Prepared struct {
	c *Campaign
	// Golden is the fault-free reference result.
	Golden *interp.Result
	// Population is the injectable dynamic-instance count on rank 0 —
	// the sampling population every plan draws from.
	Population int64

	// GoldenCached reports that Golden was served from the golden-run
	// cache rather than executed by this Prepare.
	GoldenCached bool

	budget     int64
	maxRetries int
	backoff    time.Duration

	// secs is the sectioned-campaign substrate (nil for plain
	// campaigns): the partition, the golden boundary trace, and the
	// per-section trial allocation.
	secs *SectionPlan
}

// SectionPlan returns the sectioned substrate, nil for plain campaigns.
func (p *Prepared) SectionPlan() *SectionPlan { return p.secs }

// SectionTotal returns the sectioned campaign's total trial count (the
// sum of per-section allocations); 0 for plain campaigns. Coordinators
// that size shard ranges from a trial count call this after Prepare.
func (p *Prepared) SectionTotal() int {
	if p.secs == nil {
		return 0
	}
	return p.secs.Total
}

// Prepare performs the golden run and resolves the campaign's knobs,
// returning the substrate trials execute against.
//
// The golden run carries no instrumentation, so it executes on the
// interpreter's fast loop; that loop still counts injectable instances
// (Result.Injectable) precisely because Prepare sizes the sampling
// population from it. Armed trials run the full loop with the same
// compile-time injectable predicate, so an Index drawn here names the
// same dynamic instance there.
func (c *Campaign) Prepare(ctx context.Context) (*Prepared, error) {
	hang := c.HangFactor
	if hang <= 0 {
		hang = 10
	}
	var (
		parts  *ir.Sections
		tables *interp.SectionTables
	)
	if c.Sections {
		if c.Config.Ranks > 1 {
			return nil, fmt.Errorf("fault: sectioned campaigns require Ranks == 1 (got %d)", c.Config.Ranks)
		}
		if c.Coverage < 1 {
			return nil, fmt.Errorf("fault: sectioned campaign needs Coverage >= 1 (got %d)", c.Coverage)
		}
		// The partition and tables bind to this Program instance (they
		// key on its compiled functions), so they are rebuilt per
		// campaign even when the golden run itself is served from the
		// cache — they are compile-time derivations, not executions.
		parts = ir.ModuleSections(c.Prog.Module())
		var err error
		tables, err = interp.NewSectionTables(c.Prog, parts)
		if err != nil {
			return nil, err
		}
	}

	// compute executes the golden run (sectioned golden runs also
	// capture boundary digests and per-site dynamic counts — the
	// allocation inputs — on the same run) and is invoked only on a
	// cache miss, or directly when caching is off.
	compute := func() (*interp.Result, error) {
		cfg := c.Config
		if c.Sections {
			cfg.Sections = &interp.SectionConfig{Tables: tables, Capture: true}
			cfg.CountSites = true
		}
		golden := interp.RunContext(ctx, c.Prog, cfg)
		if golden.Trap == interp.TrapCancelled || ctx.Err() != nil {
			return nil, fmt.Errorf("fault: golden run cancelled: %w", ctx.Err())
		}
		if golden.Trap != interp.TrapNone {
			return nil, fmt.Errorf("fault: golden run trapped: %v (%s)", golden.Trap, golden.TrapMsg)
		}
		return golden, nil
	}

	gc := c.GoldenCache
	if gc == nil && !c.NoGoldenCache {
		gc = SharedGoldenCache
	}
	var (
		golden *interp.Result
		cached bool
		err    error
	)
	if gc != nil {
		norm := c.Config.WithDefaults()
		key := goldenKey{
			progFP:    c.Prog.Fingerprint(),
			ranks:     norm.Ranks,
			heap:      norm.HeapBytes,
			stack:     norm.StackBytes,
			maxInstrs: norm.MaxInstrs,
			sectioned: c.Sections,
		}
		golden, cached, err = gc.goldenRun(ctx, key, compute)
	} else {
		golden, err = compute()
	}
	if err != nil {
		return nil, err
	}
	pop := golden.Injectable[0]
	if pop == 0 {
		return nil, fmt.Errorf("fault: program has no injectable dynamic instances")
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	p := &Prepared{
		c:            c,
		Golden:       golden,
		Population:   pop,
		GoldenCached: cached,
		budget:       golden.MaxRankDyn*hang + 1_000_000,
		maxRetries:   retries(c.MaxRetries),
		backoff:      backoff,
	}
	if c.Sections {
		sp, err := newSectionPlan(c, parts, tables, golden)
		if err != nil {
			return nil, err
		}
		p.secs = sp
	}
	return p, nil
}

// Plans draws the campaign's first n fault plans up front so results
// do not depend on worker scheduling — this is also what makes
// checkpoint/resume bit-identical and sharding a pure index partition:
// trial t's plan is a pure function of (Seed, t).
func (p *Prepared) Plans(n int) []interp.FaultPlan {
	if p.secs != nil {
		return p.secs.plans(n)
	}
	rng := rand.New(rand.NewSource(p.c.Seed))
	model := p.c.model()
	plans := make([]interp.FaultPlan, n)
	for t := range plans {
		// Index first, then the model's draws, all from one sequential
		// stream: the single-bit model consumes exactly the historical
		// rng.Intn(64), so its plans match pre-model journals bit for
		// bit.
		plans[t] = interp.FaultPlan{Rank: 0, Index: rng.Int63n(p.Population)}
		model.Draw(rng, &plans[t])
	}
	return plans
}

// Meta fingerprints an n-trial campaign over this substrate for
// journal validation.
func (p *Prepared) Meta(n int) JournalMeta {
	m := JournalMeta{
		Format: JournalFormat, Seed: p.c.Seed, Trials: n,
		GoldenDyn: p.Golden.TotalDyn, Population: p.Population,
		Model: ModelName(p.c.Model),
	}
	if p.secs != nil {
		// The distinct format and the partition fingerprint make a
		// sectioned journal refuse a plain campaign (and vice versa)
		// with ErrCampaignMismatch instead of misreading trial spaces.
		m.Format = JournalFormatSectioned
		m.SectionFP = p.secs.FP
	}
	return m
}

// NewResult allocates a result with one pending trial per plan.
func (p *Prepared) NewResult(plans []interp.FaultPlan) *CampaignResult {
	out := &CampaignResult{GoldenDyn: p.Golden.TotalDyn, Trials: make([]Trial, len(plans))}
	for t := range out.Trials {
		out.Trials[t] = Trial{Site: -1, Bit: plans[t].Bit, Index: plans[t].Index, Status: TrialPending}
	}
	return out
}

// RunTrial executes trial t under its plan with panic isolation and
// bounded retry-with-backoff; a still-pending result means ctx was
// cancelled. Safe for concurrent use: trials share only the immutable
// golden result and program.
func (p *Prepared) RunTrial(ctx context.Context, t int, plan interp.FaultPlan) Trial {
	return p.runTrial(ctx, t, plan)
}

// Finalize recomputes the status partition and outcome statistics from
// Trials and returns the joined per-trial infrastructure errors (nil
// when every trial completed). Engines call it once after execution
// stops; it is idempotent.
func (r *CampaignResult) Finalize() error {
	r.Completed, r.Failed, r.Pending, r.Deadlocks = 0, 0, 0, 0
	r.Counts = [NumOutcomes]int{}
	var errs []error
	for t := range r.Trials {
		switch r.Trials[t].Status {
		case TrialCompleted:
			r.Completed++
			r.Counts[r.Trials[t].Outcome]++
			if r.Trials[t].Deadlock != "" {
				r.Deadlocks++
			}
		case TrialFailed:
			r.Failed++
			errs = append(errs, fmt.Errorf("fault: trial %d failed after %d attempts: %s",
				t, r.Trials[t].Attempts, r.Trials[t].Err))
		case TrialPending:
			r.Pending++
		}
	}
	return errors.Join(errs...)
}

// RunContext executes the golden run plus n injection trials, honoring
// ctx for cancellation and deadlines.
//
// The engine is resilient: every trial attempt runs with panic
// isolation, infrastructure errors are retried up to MaxRetries times
// with exponential backoff, and a trial that still fails is recorded
// as TrialFailed instead of aborting the campaign. On cancellation the
// partial result is returned together with ctx.Err(); unexecuted
// trials stay TrialPending. When any trial failed, the (complete)
// result is returned together with the joined per-trial errors.
//
// A non-nil result always accounts for all n trials; inspect
// Completed/Failed/Pending (or ErrorSummary) to see how the campaign
// degraded. For sharded, crash-tolerant execution of the same trial
// space see internal/fault/shard.
func (c *Campaign) RunContext(ctx context.Context, n int) (*CampaignResult, error) {
	p, err := c.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	plans := p.Plans(n)
	out := p.NewResult(plans)

	// Resume: restore trials already journaled by a previous run of
	// the same campaign (the journal header pins seed, trial count and
	// the golden run's fingerprint, so restored plans line up).
	restored := 0
	if c.Journal != nil {
		prev, err := c.Journal.Begin(p.Meta(n))
		if err != nil {
			return nil, err
		}
		for t, tr := range prev {
			if t >= 0 && t < n && tr.Status != TrialPending {
				out.Trials[t] = tr
				restored++
			}
		}
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu         sync.Mutex
		done       = restored
		failed     = 0
		deadlocked = 0
		journalErr error
	)
	for _, tr := range out.Trials {
		if tr.Status == TrialFailed {
			failed++
		}
		if tr.Deadlock != "" {
			deadlocked++
		}
	}
	finish := func(t int, tr Trial) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if tr.Status == TrialFailed {
			failed++
		}
		if tr.Deadlock != "" {
			deadlocked++
		}
		if c.Journal != nil {
			if err := c.Journal.Record(t, tr); err != nil && journalErr == nil {
				journalErr = err
			}
		}
		if c.Progress != nil {
			c.Progress(done, n, failed, deadlocked)
		}
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tr := p.RunTrial(ctx, t, plans[t])
				if tr.Status == TrialPending {
					continue // cancelled mid-trial; re-run on resume
				}
				out.Trials[t] = tr
				finish(t, tr)
			}
		}()
	}
feed:
	for t := 0; t < n; t++ {
		if out.Trials[t].Status != TrialPending {
			continue // restored from the journal
		}
		select {
		case next <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	var errs []error
	if ferr := out.Finalize(); ferr != nil {
		errs = append(errs, ferr)
	}
	if journalErr != nil {
		errs = append(errs, fmt.Errorf("fault: journal write: %w", journalErr))
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if len(errs) > 0 {
		return out, errors.Join(errs...)
	}
	return out, nil
}

// runTrial executes one trial with panic isolation and bounded
// retry-with-backoff; a still-pending result means cancellation.
func (p *Prepared) runTrial(ctx context.Context, t int, plan interp.FaultPlan) Trial {
	pending := Trial{Site: -1, Bit: plan.Bit, Index: plan.Index, Status: TrialPending}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= p.maxRetries; attempt++ {
		if ctx.Err() != nil {
			return pending
		}
		if attempt > 0 {
			select {
			case <-time.After(p.backoff << (attempt - 1)):
			case <-ctx.Done():
				return pending
			}
		}
		attempts++
		tr, err := p.attemptTrial(ctx, t, plan, attempt)
		if err == nil {
			tr.Attempts = attempts
			return tr
		}
		if errors.Is(err, errCancelled) {
			return pending
		}
		lastErr = err
	}
	pending.Status = TrialFailed
	pending.Err = lastErr.Error()
	pending.Attempts = attempts
	return pending
}

// attemptTrial performs a single isolated execution of one trial; any
// panic in the interpreter or the user's verification routine is
// converted into an infrastructure error.
func (p *Prepared) attemptTrial(ctx context.Context, t int, plan interp.FaultPlan, attempt int) (tr Trial, err error) {
	defer func() {
		if pv := recover(); pv != nil {
			err = fmt.Errorf("worker panic: %v", pv)
		}
	}()
	c := p.c
	if c.beforeTrial != nil {
		c.beforeTrial(t, attempt)
	}
	cfg := c.Config
	cfg.Fault = &plan
	cfg.MaxInstrs = p.budget
	if p.secs != nil {
		// Arm section targeting and the early-masked exit against the
		// golden boundary trace.
		cfg.Sections = p.secs.trialCfg
	}
	res := interp.RunContext(ctx, c.Prog, cfg)
	return trialFromResult(plan, p.Golden, res, c.Verify)
}

// trialFromResult converts one interpreter run into a completed Trial
// or an infrastructure error. A run that terminates — cleanly or with
// a trap — before its fault ever injected observed no modeled fault:
// classifying such a trap as a symptom would corrupt the outcome
// statistics, so both cases are errors of the harness, retried and
// ultimately reported as TrialFailed rather than counted.
func trialFromResult(plan interp.FaultPlan, golden, res *interp.Result, verify Verifier) (Trial, error) {
	switch {
	case res.Trap == interp.TrapCancelled:
		return Trial{}, errCancelled
	case res.Trap == interp.TrapWatchdog:
		// The defense-in-depth wall-clock watchdog fired. Genuine
		// deadlocks are detected structurally (TrapDeadlock), so this
		// is a harness malfunction or host overload: retry, never
		// classify.
		return Trial{}, fmt.Errorf("infrastructure watchdog expired (%s)", res.TrapMsg)
	case !res.Injected && res.Trap == interp.TrapNone:
		return Trial{}, fmt.Errorf("did not inject (index %d never reached)", plan.Index)
	case !res.Injected:
		return Trial{}, fmt.Errorf("pre-injection trap %v (%s)", res.Trap, res.TrapMsg)
	case res.EarlyMasked:
		// The run stopped at a section boundary whose state digest
		// matched the golden run: the suffix would replay the fault-free
		// execution verbatim, so the trial is Masked by construction.
		// Outputs are truncated at the stop point — verification must
		// not run (it would misread the truncation as corruption).
		bit, mask := effectiveBitMask(res.InjectedMask)
		return Trial{
			Site:    res.InjectedSite,
			Bit:     bit,
			Mask:    mask,
			Index:   plan.Index,
			Outcome: OutcomeMasked,
			Latency: res.InjectedRankDyn - res.InjectedAt,
		}, nil
	}
	bit, mask := effectiveBitMask(res.InjectedMask)
	tr := Trial{
		Site:    res.InjectedSite,
		Bit:     bit,
		Mask:    mask,
		Index:   plan.Index,
		Outcome: Classify(golden, res, verify),
		Latency: res.InjectedRankDyn - res.InjectedAt,
	}
	if res.Trap == interp.TrapDeadlock && res.Deadlock != nil {
		tr.Deadlock = res.Deadlock.Summary()
	}
	return tr, nil
}

// effectiveBitMask renders the interpreter's effective corruption mask
// into Trial fields: a single-bit corruption records only its position
// (Mask 0 keeps the v1 journal line format); a multi-bit one records the
// full mask plus its lowest position; an empty mask — folded raw bits
// cancelled — records Bit -1.
func effectiveBitMask(eff uint64) (bit int, mask uint64) {
	switch {
	case eff == 0:
		return -1, 0
	case eff&(eff-1) == 0:
		return mbits.TrailingZeros64(eff), 0
	default:
		return mbits.TrailingZeros64(eff), eff
	}
}

// Golden runs the program fault-free and returns the result.
func (c *Campaign) Golden() *interp.Result {
	return interp.Run(c.Prog, c.Config)
}
