// Package fault implements statistical fault injection over the IPAS
// IR, the role FlipIt plays in the paper: it samples uniformly random
// dynamic instances of injectable instructions, flips one uniformly
// random bit in the instruction's result, and classifies the run's
// outcome into the paper's four categories (§5.5): observable symptom,
// detected by duplication, masked, and silent output corruption.
package fault

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

// Injectable is the paper's fault model (§3): faults corrupt the
// resulting register value of computational instructions — functional
// units, address computations, stack allocation, and values returned
// from calls. Loads and stores are excluded (memory and its datapaths
// are ECC-protected), control-flow instructions are excluded (handled
// by control-flow checking, out of scope), and PHI nodes are excluded
// (SSA bookkeeping, not a hardware operation). Shadow duplicates are
// legitimate targets — protection code is code — but the comparison
// checks themselves are not (they are branch logic).
func Injectable(in *ir.Instr) bool {
	if !in.HasResult() || in.Op().IsTerminator() {
		return false
	}
	switch in.Op() {
	case ir.OpLoad, ir.OpPhi:
		return false
	}
	return in.Prot != ir.ProtCheck
}

// InjectableIncludingLoads widens the fault model to load results,
// modeling a machine WITHOUT ECC on the memory datapath. The paper
// assumes ECC (§3); this variant exists for the ablation that
// quantifies how much that assumption matters (loads are never
// duplicable, so every protection scheme loses coverage under it).
func InjectableIncludingLoads(in *ir.Instr) bool {
	if Injectable(in) {
		return true
	}
	return in.Op() == ir.OpLoad && in.Prot != ir.ProtCheck
}

// CompileWithModel compiles a module with an explicit injectable
// predicate (used by ablations; Compile uses the paper's model).
func CompileWithModel(m *ir.Module, injectable func(*ir.Instr) bool) (*interp.Program, error) {
	return interp.Compile(m, injectable)
}

// Outcome classifies one fault-injection run (§5.5 of the paper).
type Outcome int

const (
	// OutcomeSymptom: crash, hang, or other system-visible failure;
	// recoverable by checkpoint/restart.
	OutcomeSymptom Outcome = iota
	// OutcomeDetected: a duplication check caught the corruption.
	OutcomeDetected
	// OutcomeMasked: the run completed and the verification routine
	// accepted the output.
	OutcomeMasked
	// OutcomeSOC: silent output corruption — the run completed but the
	// verification routine rejected the output.
	OutcomeSOC

	NumOutcomes = 4
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSymptom:
		return "symptom"
	case OutcomeDetected:
		return "detected"
	case OutcomeMasked:
		return "masked"
	case OutcomeSOC:
		return "SOC"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Verifier decides whether a completed faulty run's output is
// acceptable (true = no SOC). It receives the golden (fault-free)
// result for reference-based checks such as the FFT L2 norm.
type Verifier func(golden, faulty *interp.Result) bool

// Classify maps a run result onto an outcome category.
func Classify(golden, res *interp.Result, verify Verifier) Outcome {
	switch {
	case res.Trap == interp.TrapDetected:
		return OutcomeDetected
	case res.Trap != interp.TrapNone:
		return OutcomeSymptom
	case verify(golden, res):
		return OutcomeMasked
	default:
		return OutcomeSOC
	}
}

// Trial records one injection.
type Trial struct {
	// Site is the static instruction (SiteID) the fault landed on.
	Site int
	// Bit is the flipped bit position (modulo the result width).
	Bit int
	// Index is the dynamic injectable-instance index targeted.
	Index int64
	// Outcome is the classified result.
	Outcome Outcome
	// Latency is the number of dynamic instructions the injected rank
	// executed between the bit flip and the run's termination — the
	// error-detection latency for Detected/Symptom outcomes, and the
	// residual run length for Masked/SOC (§2.1: duplication detects
	// "close to the occurrence", enabling recent checkpoints).
	Latency int64
}

// CampaignResult aggregates a statistical fault-injection campaign.
type CampaignResult struct {
	Trials []Trial
	Counts [NumOutcomes]int
	// GoldenDyn is the fault-free total dynamic instruction count.
	GoldenDyn int64
}

// Proportion returns the fraction of trials with outcome o.
func (c *CampaignResult) Proportion(o Outcome) float64 {
	if len(c.Trials) == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(len(c.Trials))
}

// MeanLatency returns the average injection-to-termination latency (in
// dynamic instructions) over trials with outcome o, or -1 when none.
func (c *CampaignResult) MeanLatency(o Outcome) float64 {
	var sum float64
	n := 0
	for _, tr := range c.Trials {
		if tr.Outcome == o {
			sum += float64(tr.Latency)
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Campaign drives statistical fault injection against one program.
type Campaign struct {
	// Prog must be compiled with fault.Injectable as its injectable
	// predicate (see Compile).
	Prog *interp.Program
	// Verify is the application's output verification routine.
	Verify Verifier
	// Config is the base execution configuration; the campaign adds
	// the fault plan and hang budget per trial.
	Config interp.Config
	// HangFactor multiplies the golden dynamic count to form the
	// hang-detection budget (default 10).
	HangFactor int64
	// Seed makes the campaign deterministic.
	Seed int64
	// Workers bounds concurrent trial execution (default: GOMAXPROCS).
	// Trials are independent interpreter runs and the plan sequence is
	// drawn up front, so results are identical for any worker count.
	Workers int
}

// Compile compiles a module for fault injection.
func Compile(m *ir.Module) (*interp.Program, error) {
	return interp.Compile(m, Injectable)
}

// Run executes the golden run plus n injection trials.
func (c *Campaign) Run(n int) (*CampaignResult, error) {
	hang := c.HangFactor
	if hang <= 0 {
		hang = 10
	}
	golden := interp.Run(c.Prog, c.Config)
	if golden.Trap != interp.TrapNone {
		return nil, fmt.Errorf("fault: golden run trapped: %v (%s)", golden.Trap, golden.TrapMsg)
	}
	pop := golden.Injectable[0]
	if pop == 0 {
		return nil, fmt.Errorf("fault: program has no injectable dynamic instances")
	}

	// Draw the whole plan sequence up front so results do not depend
	// on worker scheduling.
	rng := rand.New(rand.NewSource(c.Seed))
	plans := make([]interp.FaultPlan, n)
	for t := range plans {
		plans[t] = interp.FaultPlan{Rank: 0, Index: rng.Int63n(pop), Bit: rng.Intn(64)}
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	out := &CampaignResult{GoldenDyn: golden.TotalDyn, Trials: make([]Trial, n)}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				plan := plans[t]
				cfg := c.Config
				cfg.Fault = &plan
				cfg.MaxInstrs = golden.MaxRankDyn*hang + 1_000_000
				res := interp.Run(c.Prog, cfg)
				if !res.Injected && res.Trap == interp.TrapNone {
					errs[t] = fmt.Errorf("fault: trial %d did not inject (index %d of %d)", t, plan.Index, pop)
					continue
				}
				out.Trials[t] = Trial{
					Site:    res.InjectedSite,
					Bit:     plan.Bit,
					Index:   plan.Index,
					Outcome: Classify(golden, res, c.Verify),
					Latency: res.InjectedRankDyn - res.InjectedAt,
				}
			}
		}()
	}
	for t := 0; t < n; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, tr := range out.Trials {
		out.Counts[tr.Outcome]++
	}
	return out, nil
}

// Golden runs the program fault-free and returns the result.
func (c *Campaign) Golden() *interp.Result {
	return interp.Run(c.Prog, c.Config)
}
