package fault

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

// This file implements sectioned campaigns: the trial space is
// stratified by IR section (outermost loop nests and straight-line
// runs; see internal/ir/section.go), each stratum gets its own
// deterministic allocation and seed derived from the section's content
// fingerprint, and per-section journals make re-analysis after a code
// edit incremental — only sections whose fingerprints changed re-run.
//
// Two execution paths share the substrate:
//
//   - The generic engines (Campaign.RunContext, internal/fault/shard,
//     internal/campaign) see a sectioned campaign as an ordinary one
//     whose Plans carry section targets: Prepare captures the golden
//     boundary trace, Plans returns the concatenated per-section
//     lists, and Meta pins the partition fingerprint in a
//     distinct journal format.
//
//   - RunSections adds incrementality on top: one journal per section,
//     named by fingerprint, holding section-local site ordinals so a
//     journal stays valid even when edits elsewhere shift global
//     SiteIDs. A journal whose header still matches is reused
//     wholesale; a stale one (the section's code changed) is discarded
//     and its trials re-run.

// SectionAlloc is one section's slice of a sectioned trial space.
type SectionAlloc struct {
	// Section is the module-global section ID (ir.Section.ID).
	Section int
	// FP is the section's content fingerprint.
	FP string
	// Label is the section's human-readable name ("@fn#i(loop hdr)").
	Label string
	// Pop is the section's injectable dynamic-instance population in
	// the golden run — the space Index draws from.
	Pop int64
	// Dmin is the dynamic count of the section's rarest exercised site.
	Dmin int64
	// Trials is the allocation: ceil(Coverage * Pop / Dmin), capped by
	// Campaign.MaxPerSection.
	Trials int
	// Seed drives this section's plan sequence; derived from the
	// campaign seed and FP, so it survives edits to other sections.
	Seed int64
	// Start is the section's offset in the concatenated plan list.
	Start int
}

// SectionPlan is the sectioned substrate Prepare builds: the partition,
// the golden boundary trace, and the per-section allocations.
type SectionPlan struct {
	// Partition is the module's section partition.
	Partition *ir.Sections
	// Trace is the golden run's boundary capture.
	Trace *interp.SectionTrace
	// FP is the whole-partition fingerprint (journal headers pin it).
	FP string
	// Alloc holds one entry per section, in section-ID order.
	Alloc []SectionAlloc
	// Total is the summed trial count.
	Total int
	// MonoTrials is the analytic trial count a monolithic campaign
	// needs for the same per-site coverage target:
	// ceil(Coverage * Population / dmin-global). The sectioned saving
	// is MonoTrials / Total.
	MonoTrials int64

	tables   *interp.SectionTables
	trialCfg *interp.SectionConfig
	model    ErrorModel
}

// sectionSeed derives a per-section plan seed from the campaign seed
// and the section's content fingerprint: stable across edits elsewhere
// in the module, changed whenever the section itself changes.
func sectionSeed(seed int64, fp string) int64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h := sha256.New()
	h.Write(b[:])
	h.Write([]byte(fp))
	return int64(binary.LittleEndian.Uint64(h.Sum(nil)[:8]))
}

// newSectionPlan sizes every section's allocation from the golden run.
func newSectionPlan(c *Campaign, parts *ir.Sections, tables *interp.SectionTables, golden *interp.Result) (*SectionPlan, error) {
	trace := golden.Sections
	if trace == nil {
		return nil, fmt.Errorf("fault: sectioned golden run recorded no boundary trace")
	}
	sp := &SectionPlan{
		Partition: parts,
		Trace:     trace,
		FP:        parts.Fingerprint(),
		tables:    tables,
		trialCfg:  &interp.SectionConfig{Tables: tables, Golden: trace},
		model:     c.model(),
	}
	var dminGlobal int64 = -1
	for sid, s := range parts.All {
		a := SectionAlloc{
			Section: sid,
			FP:      s.Fingerprint,
			Label:   s.String(),
			Pop:     trace.Pops[sid],
			Seed:    sectionSeed(c.Seed, s.Fingerprint),
			Start:   sp.Total,
		}
		if a.Pop > 0 {
			for _, site := range parts.Sites(sid) {
				n := golden.SiteCounts[site]
				if n > 0 && (a.Dmin <= 0 || n < a.Dmin) {
					a.Dmin = n
				}
				if n > 0 && (dminGlobal <= 0 || n < dminGlobal) {
					dminGlobal = n
				}
			}
			if a.Dmin <= 0 {
				a.Dmin = a.Pop // defensive; Pop > 0 implies an exercised site
			}
			n := (int64(c.Coverage)*a.Pop + a.Dmin - 1) / a.Dmin
			if c.MaxPerSection > 0 && n > int64(c.MaxPerSection) {
				n = int64(c.MaxPerSection)
			}
			a.Trials = int(n)
		}
		sp.Total += a.Trials
		sp.Alloc = append(sp.Alloc, a)
	}
	if sp.Total == 0 {
		return nil, fmt.Errorf("fault: no section has injectable dynamic instances")
	}
	if dminGlobal <= 0 {
		dminGlobal = golden.Injectable[0]
	}
	sp.MonoTrials = (int64(c.Coverage)*golden.Injectable[0] + dminGlobal - 1) / dminGlobal
	return sp, nil
}

// plans returns the concatenated per-section plan lists. Each section's
// subsequence is a pure function of (campaign seed, section
// fingerprint), so it is bit-identical across runs and unaffected by
// edits to other sections.
func (sp *SectionPlan) plans(n int) []interp.FaultPlan {
	out := make([]interp.FaultPlan, 0, sp.Total)
	for _, a := range sp.Alloc {
		if a.Trials == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(a.Seed))
		for t := 0; t < a.Trials; t++ {
			// Index first, then the model's draws — the same stream
			// discipline as the flat engine, so the single-bit model's
			// sequences match pre-model sectioned journals bit for bit.
			plan := interp.FaultPlan{
				Rank:    0,
				Index:   rng.Int63n(a.Pop),
				Section: int32(a.Section),
			}
			sp.model.Draw(rng, &plan)
			out = append(out, plan)
		}
	}
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// allocOf maps a concatenated trial index onto its section allocation.
func (sp *SectionPlan) allocOf(t int) *SectionAlloc {
	i := sort.Search(len(sp.Alloc), func(i int) bool { return sp.Alloc[i].Start+sp.Alloc[i].Trials > t })
	if i == len(sp.Alloc) {
		return nil
	}
	return &sp.Alloc[i]
}

// localizeSite rewrites a trial's global SiteID into the section-local
// ordinal stored in per-section journals: global IDs shift when other
// sections change, local ordinals are pinned by the section's own
// fingerprint.
func (sp *SectionPlan) localizeSite(sec int, tr Trial) Trial {
	sites := sp.Partition.Sites(sec)
	i := sort.SearchInts(sites, tr.Site)
	if i < len(sites) && sites[i] == tr.Site {
		tr.Site = i
	} else {
		tr.Site = -1
	}
	return tr
}

// globalizeSite is the inverse mapping applied on journal restore.
func (sp *SectionPlan) globalizeSite(sec int, tr Trial) Trial {
	sites := sp.Partition.Sites(sec)
	if tr.Site >= 0 && tr.Site < len(sites) {
		tr.Site = sites[tr.Site]
	} else {
		tr.Site = -1
	}
	return tr
}

// sectionMeta pins one section's journal. GoldenDyn is deliberately 0:
// the whole-program dynamic count changes when *other* sections change,
// and must not invalidate this section's trials — the section
// fingerprint and population pin everything the trials depend on.
func (sp *SectionPlan) sectionMeta(a *SectionAlloc) JournalMeta {
	return JournalMeta{
		Format:     JournalFormatSectioned,
		Seed:       a.Seed,
		Trials:     a.Trials,
		Population: a.Pop,
		Model:      ModelName(sp.model),
		SectionFP:  a.FP,
	}
}

// sectionJournalName names a section's journal by fingerprint prefix.
func sectionJournalName(fp string) string {
	if len(fp) > 16 {
		fp = fp[:16]
	}
	return "sec-" + fp + ".jsonl"
}

// SectionStat is one section's disposition in a sectioned run.
type SectionStat struct {
	Section  int    `json:"section"`
	FP       string `json:"fp"`
	Label    string `json:"label"`
	Pop      int64  `json:"pop"`
	Trials   int    `json:"trials"`
	Restored int    `json:"restored"`
}

// / SectionResult is a sectioned campaign's outcome: the concatenated
// trials (global SiteIDs, ready for internal/features and
// internal/compose) plus per-section accounting that incremental
// re-analysis and its tests assert against.
type SectionResult struct {
	*CampaignResult
	// Plan is the substrate the trials were drawn from.
	Plan *SectionPlan
	// Stats has one entry per section, in section-ID order.
	Stats []SectionStat
	// Restored counts trials reused from matching per-section journals;
	// Executed counts trials actually run this invocation.
	Restored int
	Executed int
}

// SectionTrials returns section sec's slice of the concatenated trials.
func (r *SectionResult) SectionTrials(sec int) []Trial {
	a := &r.Plan.Alloc[sec]
	return r.Trials[a.Start : a.Start+a.Trials]
}

// RunSections executes the sectioned campaign with per-section journals
// under dir (created if missing; "" disables journaling): sections
// whose journal header still matches — same fingerprint, seed,
// population, allocation — restore their trials without running
// anything; stale journals (the section's code changed, so the
// fingerprint-derived name or header differs) are discarded and
// re-run. This is the edit-one-function re-protect path: after an
// edit, only the changed sections' trial budgets are spent.
func (p *Prepared) RunSections(ctx context.Context, dir string) (*SectionResult, error) {
	sp := p.secs
	if sp == nil {
		return nil, fmt.Errorf("fault: RunSections on a non-sectioned campaign (set Campaign.Sections)")
	}
	plans := sp.plans(sp.Total)
	out := &SectionResult{CampaignResult: p.NewResult(plans), Plan: sp}

	journals := make([]*Journal, len(sp.Alloc))
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fault: creating section journal dir: %w", err)
		}
		defer func() {
			for _, j := range journals {
				if j != nil {
					j.Close()
				}
			}
		}()
		for i := range sp.Alloc {
			a := &sp.Alloc[i]
			if a.Trials == 0 {
				continue
			}
			j, restored, err := openSectionJournal(dir, sp, a)
			if err != nil {
				return nil, err
			}
			journals[i] = j
			n := 0
			for t, tr := range restored {
				if t < 0 || t >= a.Trials || tr.Status == TrialPending {
					continue
				}
				out.Trials[a.Start+t] = sp.globalizeSite(a.Section, tr)
				n++
			}
			out.Restored += n
		}
	}

	// Execute what the journals did not cover.
	var pendingIdx []int
	for t := range out.Trials {
		if out.Trials[t].Status == TrialPending {
			pendingIdx = append(pendingIdx, t)
		}
	}
	workers := p.c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pendingIdx) {
		workers = len(pendingIdx)
	}
	var (
		mu         sync.Mutex
		journalErr error
	)
	record := func(t int, tr Trial) {
		mu.Lock()
		defer mu.Unlock()
		out.Executed++
		a := sp.allocOf(t)
		if j := journals[a.Section]; j != nil {
			if err := j.Record(t-a.Start, sp.localizeSite(a.Section, tr)); err != nil && journalErr == nil {
				journalErr = err
			}
		}
		if p.c.Progress != nil {
			p.c.Progress(out.Restored+out.Executed, sp.Total, 0, 0)
		}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tr := p.RunTrial(ctx, t, plans[t])
				if tr.Status == TrialPending {
					continue // cancelled mid-trial
				}
				out.Trials[t] = tr
				record(t, tr)
			}
		}()
	}
feed:
	for _, t := range pendingIdx {
		select {
		case next <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for i := range sp.Alloc {
		a := &sp.Alloc[i]
		st := SectionStat{
			Section: a.Section, FP: a.FP, Label: a.Label,
			Pop: a.Pop, Trials: a.Trials,
		}
		for t := a.Start; t < a.Start+a.Trials; t++ {
			if out.Trials[t].Status != TrialPending {
				st.Restored++ // provisional: executed subtracted below
			}
		}
		out.Stats = append(out.Stats, st)
	}
	// Restored per section = finished minus executed this invocation;
	// recompute exactly from the global counters when nothing pended.
	executedBySec := make([]int, len(sp.Alloc))
	for _, t := range pendingIdx {
		if out.Trials[t].Status != TrialPending {
			executedBySec[sp.allocOf(t).Section]++
		}
	}
	for i := range out.Stats {
		out.Stats[i].Restored -= executedBySec[i]
	}

	var errs []error
	if ferr := out.Finalize(); ferr != nil {
		errs = append(errs, ferr)
	}
	if journalErr != nil {
		errs = append(errs, fmt.Errorf("fault: section journal write: %w", journalErr))
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if len(errs) > 0 {
		return out, errors.Join(errs...)
	}
	return out, nil
}

// openSectionJournal opens (or rebuilds) one section's journal and
// binds it to the allocation. A corrupt or mismatched journal under our
// own checkpoint directory is a stale artifact of an earlier binary or
// allocation — deleted and recreated, never fatal. A locked journal is
// a genuinely concurrent campaign and stays fatal.
func openSectionJournal(dir string, sp *SectionPlan, a *SectionAlloc) (*Journal, map[int]Trial, error) {
	path := filepath.Join(dir, sectionJournalName(a.FP))
	for attempt := 0; ; attempt++ {
		j, err := OpenJournal(path)
		if err != nil {
			if errors.Is(err, ErrJournalLocked) || attempt > 0 {
				return nil, nil, err
			}
			os.Remove(path)
			continue
		}
		restored, err := j.Begin(sp.sectionMeta(a))
		if err != nil {
			j.Close()
			// A header naming an unknown error model is a newer build's
			// checkpoint, not a stale artifact: rebuilding it would
			// silently re-run its trials under our default model.
			if attempt > 0 || errors.Is(err, ErrModelUnknown) {
				return nil, nil, err
			}
			// Stale header (e.g. a different Coverage or an older
			// allocation of the same section content): rebuild.
			os.Remove(path)
			continue
		}
		return j, restored, nil
	}
}
