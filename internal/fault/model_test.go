package fault

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"ipas/internal/interp"
)

// TestParseModelRoundTrip pins the wire names: every accepted name
// resolves to a model whose Name round-trips, and malformed names are
// refused (the same ParseModel guards CLI flags, campaign specs and
// journal forward-compat, so the name grammar is load-bearing).
func TestParseModelRoundTrip(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "single-bit"},
		{"single-bit", "single-bit"},
		{"burst-1", "burst-1"},
		{"burst-3", "burst-3"},
		{"burst-64", "burst-64"},
		{"random-1", "random-1"},
		{"random-3", "random-3"},
		{"correlated", "correlated"},
		{"sticky", "sticky"},
	} {
		m, err := ParseModel(tc.in)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", tc.in, err)
		}
		if m.Name() != tc.want {
			t.Errorf("ParseModel(%q).Name() = %q, want %q", tc.in, m.Name(), tc.want)
		}
		if !KnownModel(tc.in) {
			t.Errorf("KnownModel(%q) = false", tc.in)
		}
	}
	for _, bad := range []string{"burst-0", "burst-65", "burst-", "burst-x", "random-0", "random--1", "flip", "BURST-3", "future-model-v9"} {
		if _, err := ParseModel(bad); err == nil {
			t.Errorf("ParseModel(%q) accepted a malformed name", bad)
		}
		if KnownModel(bad) {
			t.Errorf("KnownModel(%q) = true", bad)
		}
	}
}

// TestModelNameCanonical pins the wire canonicalization that keeps
// pre-model journals and content-hashed campaign IDs stable: the
// default model — nil or SingleBit — serializes as the empty string.
func TestModelNameCanonical(t *testing.T) {
	if got := ModelName(nil); got != "" {
		t.Errorf("ModelName(nil) = %q, want \"\"", got)
	}
	if got := ModelName(SingleBit); got != "" {
		t.Errorf("ModelName(SingleBit) = %q, want \"\"", got)
	}
	if got := ModelName(Burst(3)); got != "burst-3" {
		t.Errorf("ModelName(Burst(3)) = %q, want \"burst-3\"", got)
	}
}

// TestDefaultModelPlansMatchLegacy: a campaign with no model and one
// with the explicit single-bit model must draw identical plan
// sequences (the model's only draw is the rng.Intn(64) the engine made
// before models existed), and both must write the pre-model journal
// header (Model == "") — the properties that make old journals resume
// cleanly under new builds.
func TestDefaultModelPlansMatchLegacy(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 25

	prepare := func(m ErrorModel) *Prepared {
		c := &Campaign{Prog: p, Verify: verify, Seed: 17, Model: m}
		prep, err := c.Prepare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return prep
	}
	implicit, explicit := prepare(nil), prepare(SingleBit)
	ip, ep := implicit.Plans(n), explicit.Plans(n)
	for i := range ip {
		if ip[i] != ep[i] {
			t.Fatalf("plan %d differs between nil and explicit single-bit model: %+v vs %+v", i, ip[i], ep[i])
		}
		if ip[i].Mask != 0 || ip[i].Correlated || ip[i].Sticky {
			t.Fatalf("single-bit plan %d carries model extras: %+v", i, ip[i])
		}
	}
	if meta := implicit.Meta(n); meta.Model != "" {
		t.Fatalf("default-model journal header carries model %q, want \"\"", meta.Model)
	}
}

// TestModelDrawIsStreamPure: every built-in model must be a pure
// function of the rng stream — the determinism contract sharding,
// resume and remote dispatch all lean on.
func TestModelDrawIsStreamPure(t *testing.T) {
	for _, m := range BuiltinModels() {
		for seed := int64(0); seed < 20; seed++ {
			var a, b interp.FaultPlan
			m.Draw(rand.New(rand.NewSource(seed)), &a)
			m.Draw(rand.New(rand.NewSource(seed)), &b)
			if a != b {
				t.Fatalf("%s: Draw is not a pure function of the stream (seed %d): %+v vs %+v", m.Name(), seed, a, b)
			}
		}
	}
}

// TestModelWorkerInvariance extends the worker-count invariance suite
// to every built-in model: trial results must be bit-identical with 1,
// 4 and GOMAXPROCS workers.
func TestModelWorkerInvariance(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 40
	for _, model := range BuiltinModels() {
		t.Run(model.Name(), func(t *testing.T) {
			run := func(workers int) *CampaignResult {
				c := &Campaign{Prog: p, Verify: verify, Seed: 55, Model: model, Workers: workers}
				res, err := c.Run(n)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(1)
			for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
				got := run(w)
				for i := range ref.Trials {
					if got.Trials[i] != ref.Trials[i] {
						t.Fatalf("trial %d differs between 1 and %d workers: %+v vs %+v",
							i, w, got.Trials[i], ref.Trials[i])
					}
				}
			}
		})
	}
}

// TestModelCancelThenResumeBitIdentical extends the cancel/resume
// invariance suite to every built-in model: a campaign cancelled
// mid-run and resumed from its journal must be bit-identical to an
// uninterrupted one, and the journal header must carry the model name
// so a resume under a different model is refused.
func TestModelCancelThenResumeBitIdentical(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 30
	for _, model := range BuiltinModels() {
		t.Run(model.Name(), func(t *testing.T) {
			ref := &Campaign{Prog: p, Verify: verify, Seed: 21, Model: model}
			refRes, err := ref.Run(n)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "trials.jsonl")
			j1, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c1 := &Campaign{
				Prog: p, Verify: verify, Seed: 21, Model: model, Workers: 2, Journal: j1,
				Progress: func(done, total, failed, deadlocked int) {
					if done >= 8 {
						cancel()
					}
				},
			}
			if _, err := c1.RunContext(ctx, n); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
			}
			if err := j1.Close(); err != nil {
				t.Fatal(err)
			}

			// Resuming under a *different* model must be refused: the
			// journal's trials were drawn from another plan space.
			other := Sticky
			if model.Name() == Sticky.Name() {
				other = Burst(3)
			}
			jx, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			cx := &Campaign{Prog: p, Verify: verify, Seed: 21, Model: other, Journal: jx}
			if _, err := cx.RunContext(context.Background(), n); !errors.Is(err, ErrCampaignMismatch) {
				t.Fatalf("resume under model %s of a %s journal: err=%v, want ErrCampaignMismatch",
					other.Name(), model.Name(), err)
			}
			jx.Close()

			j2, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if j2.Restored() == 0 {
				t.Fatal("journal restored no trials")
			}
			c2 := &Campaign{Prog: p, Verify: verify, Seed: 21, Model: model, Workers: 2, Journal: j2}
			resumed, err := c2.RunContext(context.Background(), n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range refRes.Trials {
				if resumed.Trials[i] != refRes.Trials[i] {
					t.Fatalf("trial %d differs after resume: %+v vs %+v", i, resumed.Trials[i], refRes.Trials[i])
				}
			}
		})
	}
}

// TestTrialRecordsEffectiveBitAndMask is the Trial.Bit regression: the
// recorded bit must be the *effective* position after folding modulo
// the victim's width — derived from what the interpreter actually
// XORed in, never the plan's raw 0..63 draw.
func TestTrialRecordsEffectiveBitAndMask(t *testing.T) {
	golden := &interp.Result{}
	plan := interp.FaultPlan{Index: 5, Bit: 37}
	okVerify := func(_, _ *interp.Result) bool { return true }

	for _, tc := range []struct {
		name     string
		eff      uint64
		wantBit  int
		wantMask uint64
	}{
		{"folded to width 1", 1 << 0, 0, 0},
		{"raw single bit", 1 << 37, 37, 0},
		{"multi-bit keeps mask", 1<<3 | 1<<7, 3, 1<<3 | 1<<7},
		{"cancelled mask", 0, -1, 0},
	} {
		res := &interp.Result{Injected: true, InjectedSite: 4, InjectedMask: tc.eff}
		tr, err := trialFromResult(plan, golden, res, okVerify)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tr.Bit != tc.wantBit || tr.Mask != tc.wantMask {
			t.Errorf("%s: recorded bit=%d mask=%#x, want bit=%d mask=%#x",
				tc.name, tr.Bit, tr.Mask, tc.wantBit, tc.wantMask)
		}
	}
}

// fixedDrawModel is a test model that stamps a constant corruption onto
// every plan — it isolates the recording path from the draw.
type fixedDrawModel struct {
	name string
	bit  int
	mask uint64
}

func (m fixedDrawModel) Name() string { return m.name }
func (m fixedDrawModel) Draw(_ *rand.Rand, plan *interp.FaultPlan) {
	plan.Bit, plan.Mask = m.bit, m.mask
}

// TestCampaignEffectiveBitFoldsNarrowSites runs the regression end to
// end: with a model that always draws raw bit 37, trials landing on
// 1-bit comparison sites must record bit 0 (37 mod 1), trials on
// 64-bit sites record 37, and nothing else can appear. The shared test
// program's loop comparisons guarantee both widths occur.
func TestCampaignEffectiveBitFoldsNarrowSites(t *testing.T) {
	p, verify := compileCampaignProg(t)
	c := &Campaign{Prog: p, Verify: verify, Seed: 9, Model: fixedDrawModel{name: "test-bit-37", bit: 37}}
	res, err := c.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, tr := range res.Trials {
		if tr.Status != TrialCompleted {
			continue
		}
		if tr.Bit != 0 && tr.Bit != 37 {
			t.Fatalf("trial recorded bit %d; raw draw 37 can only fold to 0 (width 1) or stay 37 (width 64): %+v", tr.Bit, tr)
		}
		if tr.Mask != 0 {
			t.Fatalf("single-bit corruption recorded a mask: %+v", tr)
		}
		seen[tr.Bit]++
	}
	if seen[0] == 0 || seen[37] == 0 {
		t.Fatalf("expected trials on both 1-bit and 64-bit sites, got distribution %v", seen)
	}
}

// TestCampaignCancelledMaskRecordsNoFlip: a multi-bit mask whose
// positions collide after width folding XORs to zero on narrow sites —
// injected but value unchanged. Such trials must record Bit -1, no
// mask, and classify as masked (the fault landed; the hardware upset
// happened; the program was unaffected).
func TestCampaignCancelledMaskRecordsNoFlip(t *testing.T) {
	p, verify := compileCampaignProg(t)
	// Bits 5 and 37 both fold to position 0 at width 1 and cancel;
	// at width 64 they remain a genuine two-bit corruption.
	c := &Campaign{Prog: p, Verify: verify, Seed: 9, Model: fixedDrawModel{name: "test-cancel", bit: 5, mask: 1<<5 | 1<<37}}
	res, err := c.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled, wide int
	for _, tr := range res.Trials {
		if tr.Status != TrialCompleted {
			continue
		}
		switch tr.Bit {
		case -1:
			cancelled++
			if tr.Mask != 0 {
				t.Fatalf("cancelled injection recorded mask %#x: %+v", tr.Mask, tr)
			}
			if tr.Outcome != OutcomeMasked {
				t.Fatalf("cancelled injection classified %v, want masked: %+v", tr.Outcome, tr)
			}
		case 5:
			wide++
			if tr.Mask != 1<<5|1<<37 {
				t.Fatalf("wide-site injection recorded mask %#x, want %#x: %+v", tr.Mask, uint64(1<<5|1<<37), tr)
			}
		default:
			t.Fatalf("unexpected effective bit %d: %+v", tr.Bit, tr)
		}
	}
	if cancelled == 0 || wide == 0 {
		t.Fatalf("expected both cancelled and wide injections, got %d/%d", cancelled, wide)
	}
}

// TestJournalUnknownModelRefusesResume is the forward-compat satellite:
// a journal whose header names a model this build does not know must
// fail resume with ErrCampaignMismatch *and* ErrModelUnknown — across
// the plain and sectioned header formats — never silently re-run its
// trials under the default model.
func TestJournalUnknownModelRefusesResume(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format string
		fp     string
	}{
		{"plain", JournalFormat, ""},
		{"sectioned", JournalFormatSectioned, "deadbeefdeadbeefdeadbeefdeadbeef"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trials.jsonl")
			meta := JournalMeta{
				Format: tc.format, Seed: 11, Trials: 8, Population: 100,
				Model: "future-model-v9", SectionFP: tc.fp,
			}
			writeJournalHeader(t, path, meta)

			j, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			want := meta
			want.Model = "" // this build would drive the default model
			_, err = j.Begin(want)
			if !errors.Is(err, ErrCampaignMismatch) || !errors.Is(err, ErrModelUnknown) {
				t.Fatalf("Begin on unknown-model journal: err=%v, want ErrCampaignMismatch wrapping ErrModelUnknown", err)
			}
			if !strings.Contains(err.Error(), "future-model-v9") {
				t.Fatalf("diagnostic does not name the unknown model: %v", err)
			}
		})
	}

	// End to end on the plain format: a whole campaign resume must
	// surface the same refusal.
	t.Run("campaign resume", func(t *testing.T) {
		p, verify := compileCampaignProg(t)
		c := &Campaign{Prog: p, Verify: verify, Seed: 11}
		prep, err := c.Prepare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		meta := prep.Meta(8)
		meta.Model = "future-model-v9"
		path := filepath.Join(t.TempDir(), "trials.jsonl")
		writeJournalHeader(t, path, meta)

		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		c2 := &Campaign{Prog: p, Verify: verify, Seed: 11, Journal: j}
		_, err = c2.RunContext(context.Background(), 8)
		if !errors.Is(err, ErrCampaignMismatch) || !errors.Is(err, ErrModelUnknown) {
			t.Fatalf("campaign resume on unknown-model journal: err=%v, want ErrCampaignMismatch wrapping ErrModelUnknown", err)
		}
	})
}

// writeJournalHeader writes a journal file holding only the given meta
// header — simulating a checkpoint left behind by another (newer)
// build.
func writeJournalHeader(t *testing.T, path string, meta JournalMeta) {
	t.Helper()
	data, err := json.Marshal(journalLine{Meta: &meta})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunSectionsUnknownModelFailsNotRebuilds guards the sectioned
// engine's rebuild-on-mismatch path: a stale or corrupt section
// journal is rebuilt, but one naming an unknown model must hard-fail —
// rebuilding would silently discard a newer build's trials.
func TestRunSectionsUnknownModelFailsNotRebuilds(t *testing.T) {
	dir := t.TempDir()
	runSectioned(t, 2, dir)
	names, err := filepath.Glob(filepath.Join(dir, "sec-*.jsonl"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no section journals written (err=%v)", err)
	}

	// Stamp an unknown model into one journal's header, preserving
	// everything else so only the model mismatches.
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	var rec journalLine
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Meta == nil {
		t.Fatalf("section journal %s: malformed header (err=%v)", names[0], err)
	}
	rec.Meta.Model = "future-model-v9"
	hdr, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	rest := ""
	if len(lines) > 1 {
		rest = lines[1]
	}
	if err := os.WriteFile(names[0], []byte(string(hdr)+"\n"+rest), 0o644); err != nil {
		t.Fatal(err)
	}

	prep, err := sectionedCampaign(t, 2).Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = prep.RunSections(context.Background(), dir)
	if !errors.Is(err, ErrModelUnknown) {
		t.Fatalf("sectioned run over unknown-model journal: err=%v, want ErrModelUnknown", err)
	}
	if _, err := os.Stat(names[0]); err != nil {
		t.Fatalf("unknown-model journal was removed (rebuilt) instead of preserved: %v", err)
	}
}
