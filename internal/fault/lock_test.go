//go:build unix

package fault

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Two concurrent campaigns must never interleave writes into one
// journal: the second opener is rejected with ErrJournalLocked, and
// the lock dies with the first journal's Close.
func TestJournalLockRejectsConcurrentOpener(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	_, err = OpenJournal(path)
	if err == nil {
		t.Fatal("second opener acquired a locked journal")
	}
	if !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("second opener failed with %v, want ErrJournalLocked", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("lock error does not name the journal: %v", err)
	}

	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal stayed locked after Close: %v", err)
	}
	j2.Close()
}

// MaxRetries semantics: the zero value selects DefaultMaxRetries (so a
// bare Campaign literal keeps its safety net), and NoRetries requests
// genuinely zero retries — a first-attempt failure is terminal.
func TestCampaignNoRetriesSentinel(t *testing.T) {
	p, verify := compileCampaignProg(t)
	const n = 12

	c := &Campaign{Prog: p, Verify: verify, Seed: 17, MaxRetries: NoRetries, RetryBackoff: time.Millisecond}
	c.beforeTrial = func(trial, attempt int) {
		if trial == 5 {
			panic("no-retry panic")
		}
	}
	res, err := c.RunContext(context.Background(), n)
	if err == nil {
		t.Fatal("failing trial under NoRetries reported no error")
	}
	tr := res.Trials[5]
	if tr.Status != TrialFailed || tr.Attempts != 1 {
		t.Fatalf("NoRetries trial recorded as %+v, want failed after exactly 1 attempt", tr)
	}
	if res.Completed != n-1 {
		t.Fatalf("completed=%d, want %d", res.Completed, n-1)
	}
}

func TestRetriesResolution(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultMaxRetries}, // zero value keeps the safety net
		{NoRetries, 0},         // explicit opt-out
		{-7, 0},                // any negative means none
		{5, 5},
	} {
		if got := retries(tc.in); got != tc.want {
			t.Errorf("retries(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, tc := range []struct{ in, want int }{
		{0, NoRetries}, // a CLI literal 0 means "no retries", not "default"
		{-1, NoRetries},
		{2, 2},
	} {
		if got := ExplicitRetries(tc.in); got != tc.want {
			t.Errorf("ExplicitRetries(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
