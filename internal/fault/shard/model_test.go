package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipas/internal/fault"
)

// TestModelShardCountInvariance extends the shard-count invariance to
// every built-in error model: each shard count must reproduce the
// single-loop engine's result and merged journal bit for bit, which is
// only possible if the per-trial model draws survive partitioning.
func TestModelShardCountInvariance(t *testing.T) {
	const seed, n = 29, 36
	for _, model := range fault.BuiltinModels() {
		t.Run(model.Name(), func(t *testing.T) {
			ref := testCampaign(t, seed)
			ref.Model = model
			refPath := filepath.Join(t.TempDir(), "ref.jsonl")
			j, err := fault.OpenJournal(refPath)
			if err != nil {
				t.Fatal(err)
			}
			ref.Journal = j
			ref.Workers = 1
			refRes, err := ref.RunContext(context.Background(), n)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			refJournal, err := os.ReadFile(refPath)
			if err != nil {
				t.Fatal(err)
			}

			for _, k := range []int{1, 2, 7} {
				t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
					dir := t.TempDir()
					c := testCampaign(t, seed)
					c.Model = model
					res, err := Run(context.Background(), c, n, Options{Shards: k, Workers: 2, Dir: dir})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, res, refRes)
					assertMergedJournal(t, dir, refJournal)
				})
			}
		})
	}
}

// TestShardJournalUnknownModelFailsShard: a shard journal whose header
// names a model this build does not know must refuse admission
// (ErrCampaignMismatch path), not silently re-run the shard's trials
// under the default model.
func TestShardJournalUnknownModelFailsShard(t *testing.T) {
	const seed, n = 29, 20
	dir := t.TempDir()
	c := testCampaign(t, seed)
	if _, err := Run(context.Background(), c, n, Options{Shards: 2, Workers: 2, Dir: dir}); err != nil {
		t.Fatal(err)
	}

	// Stamp an unknown model into shard 0's header, keeping the rest of
	// the journal intact so only the model mismatches.
	path := filepath.Join(dir, JournalName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	var rec struct {
		Meta *fault.JournalMeta `json:"meta"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Meta == nil {
		t.Fatalf("shard journal %s: malformed header (err=%v)", path, err)
	}
	rec.Meta.Model = "future-model-v9"
	hdr, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(string(hdr)+"\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the merged journal so the resume actually re-opens the
	// per-shard journals.
	if err := os.Remove(MergedJournalPath(dir)); err != nil {
		t.Fatal(err)
	}

	c2 := testCampaign(t, seed)
	_, err = Run(context.Background(), c2, n, Options{Shards: 2, Workers: 2, Dir: dir, Retries: fault.ExplicitRetries(0)})
	if err == nil {
		t.Fatal("sharded resume accepted a journal naming an unknown model")
	}
	if !errors.Is(err, fault.ErrCampaignMismatch) && !strings.Contains(err.Error(), "future-model-v9") {
		t.Fatalf("sharded resume failed with %v, want the unknown-model mismatch", err)
	}
}
