package shard

import "fmt"

// State enumerates the lifecycle of one shard in any dispatch engine.
// Two engines drive it today: the in-process work-stealing scheduler
// in this package, and the campaign coordinator's lease registry
// (internal/campaign), which adds time-bounded leases on top. Both
// share the same invariants — a shard is retried through quarantine
// with a bounded budget, and only exhaustion makes it terminal — so
// the transition rules live here, once.
type State uint8

const (
	// StateQueued: runnable, waiting for a worker (or a remote lease).
	StateQueued State = iota
	// StateRunning: executing under a worker or an active lease.
	StateRunning
	// StateBackoff: quarantined after a failed attempt, waiting out
	// its backoff delay before becoming runnable again.
	StateBackoff
	// StateDone: every trial in the shard's range is settled.
	StateDone
	// StateFailed: the retry budget is exhausted; the shard's
	// unexecuted trials are recorded as TrialFailed.
	StateFailed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// StateMachine tracks the dispatch state and quarantine accounting of
// every shard in one campaign. It owns the truth about what each shard
// is doing and validates every transition (an invalid one panics —
// such a transition is an engine bug, never an environmental
// condition); engines own their queues, timers, and lease deadlines.
//
// Not safe for concurrent use on its own: callers serialize access
// under their engine lock.
type StateMachine struct {
	states   []State
	attempts []int
	terminal int
}

// NewStateMachine returns a machine with every shard queued and zero
// attempts.
func NewStateMachine(shards int) *StateMachine {
	return &StateMachine{states: make([]State, shards), attempts: make([]int, shards)}
}

// Len returns the shard count.
func (m *StateMachine) Len() int { return len(m.states) }

// State returns shard s's current state.
func (m *StateMachine) State(s int) State { return m.states[s] }

// Attempts returns how many attempts shard s has started.
func (m *StateMachine) Attempts(s int) int { return m.attempts[s] }

// Acquire starts an attempt on shard s and returns its 1-based attempt
// number. A shard is acquirable from StateQueued, or directly from
// StateBackoff for engines whose backoff timers feed their own run
// queue (the in-process scheduler): there the pop is the requeue.
func (m *StateMachine) Acquire(s int) int {
	m.mustBe(s, "Acquire", StateQueued, StateBackoff)
	m.states[s] = StateRunning
	m.attempts[s]++
	return m.attempts[s]
}

// Complete marks a running shard done.
func (m *StateMachine) Complete(s int) {
	m.mustBe(s, "Complete", StateRunning)
	m.states[s] = StateDone
	m.terminal++
}

// Settle marks a queued shard done without charging an attempt: every
// trial in its range was restored from a durable journal, so no
// execution is owed.
func (m *StateMachine) Settle(s int) {
	m.mustBe(s, "Settle", StateQueued)
	m.states[s] = StateDone
	m.terminal++
}

// Quarantine moves a running shard into backoff after a failed
// attempt (panic, watchdog expiry, journal write failure, expired or
// explicitly failed lease).
func (m *StateMachine) Quarantine(s int) {
	m.mustBe(s, "Quarantine", StateRunning)
	m.states[s] = StateBackoff
}

// Requeue makes a quarantined shard runnable again once its backoff
// delay has elapsed.
func (m *StateMachine) Requeue(s int) {
	m.mustBe(s, "Requeue", StateBackoff)
	m.states[s] = StateQueued
}

// Fail terminally quarantines a shard whose retry budget is exhausted,
// from StateRunning (the attempt that broke the budget just finished)
// or StateBackoff (an engine deciding at expiry time).
func (m *StateMachine) Fail(s int) {
	m.mustBe(s, "Fail", StateRunning, StateBackoff)
	m.states[s] = StateFailed
	m.terminal++
}

// Terminal counts shards in a final state.
func (m *StateMachine) Terminal() int { return m.terminal }

// AllTerminal reports whether every shard reached a final state.
func (m *StateMachine) AllTerminal() bool { return m.terminal == len(m.states) }

// Counts tallies shards per state.
func (m *StateMachine) Counts() (queued, running, backoff, done, failed int) {
	for _, st := range m.states {
		switch st {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateBackoff:
			backoff++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	return
}

// mustBe panics unless shard s is in one of the allowed states.
func (m *StateMachine) mustBe(s int, op string, allowed ...State) {
	for _, a := range allowed {
		if m.states[s] == a {
			return
		}
	}
	panic(fmt.Sprintf("shard: %s(%d) in state %v", op, s, m.states[s]))
}
