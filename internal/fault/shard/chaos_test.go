package shard

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ipas/internal/fault"
)

// cancelAfter returns a context cancelled once the campaign's progress
// callback has fired `after` times, wired into c via opts.Progress.
func cancelAfter(opts *Options, after int64) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	opts.Progress = func(d, total, failed, deadlocked int) {
		if done.Add(1) >= after {
			cancel()
		}
	}
	return ctx
}

// TestChaosCrashResumeBitIdentical is the chaos gauntlet: a campaign
// is killed mid-flight twice, its journals are mutilated between
// resumes — a torn tail (process killed mid-write), a wholesale
// corrupt shard journal, a deleted shard journal — and a shard panics
// on its first attempt of the final leg. The survivor must be
// bit-identical, result and merged journal both, to an uninterrupted
// single-loop campaign.
func TestChaosCrashResumeBitIdentical(t *testing.T) {
	const seed, n, shards = 31, 60, 6
	refRes, refJournal := referenceRun(t, seed, n)
	dir := t.TempDir()
	base := Options{Shards: shards, Workers: 3, Backoff: time.Millisecond, Dir: dir}

	// Leg 1: kill after ~10 trials.
	opts := base
	ctx := cancelAfter(&opts, 10)
	if _, err := Run(ctx, testCampaign(t, seed), n, opts); err != context.Canceled {
		t.Fatalf("leg 1 returned %v, want context.Canceled", err)
	}

	// Chaos: a torn tail on shard 0 (the journal's own crash-recovery
	// drops it) and a half-overwritten, structurally corrupt journal on
	// shard 1 (the sharded engine deletes it and re-runs the shard).
	torn := filepath.Join(dir, JournalName(0))
	f, err := os.OpenFile(torn, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":999,"trial":{"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	corrupt := filepath.Join(dir, JournalName(1))
	if err := os.WriteFile(corrupt, []byte("{\"meta\":{\"format\":\"bogus-v9\"}}\n{\"t\":0}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Leg 2: kill again after ~15 more trials.
	opts = base
	ctx = cancelAfter(&opts, 15)
	if _, err := Run(ctx, testCampaign(t, seed), n, opts); err != context.Canceled {
		t.Fatalf("leg 2 returned %v, want context.Canceled", err)
	}

	// Chaos: lose shard 2's journal entirely.
	if err := os.Remove(filepath.Join(dir, JournalName(2))); err != nil {
		t.Fatal(err)
	}

	// Leg 3: run to completion, with shard 3 panicking on its first
	// attempt of this leg — quarantine must back off, retry, and heal.
	opts = base
	opts.beforeShard = func(sh, attempt int) {
		if sh == 3 && attempt == 1 {
			panic("chaos: injected shard panic")
		}
	}
	res, err := Run(context.Background(), testCampaign(t, seed), n, opts)
	if err != nil {
		t.Fatalf("final leg failed: %v", err)
	}
	assertSameResult(t, res, refRes)
	assertMergedJournal(t, dir, refJournal)
}

// TestChaosQuarantineIsolation verifies failure-domain isolation: a
// shard whose every attempt panics is quarantined without poisoning
// its siblings — their trials match the reference exactly, the sick
// shard's unexecuted trials are recorded as failed with the cause, and
// the campaign degrades (partial result + error) instead of dying.
func TestChaosQuarantineIsolation(t *testing.T) {
	const seed, n, shards = 41, 40, 4
	refRes, _ := referenceRun(t, seed, n)

	var attempts atomic.Int64
	res, err := Run(context.Background(), testCampaign(t, seed), n, Options{
		Shards: shards, Workers: 2, Retries: 1, Backoff: time.Millisecond,
		beforeShard: func(sh, attempt int) {
			if sh == 2 {
				attempts.Add(1)
				panic("chaos: permanently sick shard")
			}
		},
	})
	if err == nil {
		t.Fatal("campaign with a permanently sick shard reported no error")
	}
	if !strings.Contains(err.Error(), "shard 2/4 quarantined") ||
		!strings.Contains(err.Error(), "permanently sick shard") {
		t.Fatalf("error does not attribute the quarantine: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("sick shard attempted %d times, want 2 (1 + Retries)", got)
	}
	lo, hi := Range(n, shards, 2)
	if res.Pending != 0 || res.Failed != hi-lo || res.Completed != n-(hi-lo) {
		t.Fatalf("pending=%d failed=%d completed=%d, want 0/%d/%d",
			res.Pending, res.Failed, res.Completed, hi-lo, n-(hi-lo))
	}
	for i := range res.Trials {
		if i >= lo && i < hi {
			tr := res.Trials[i]
			if tr.Status != fault.TrialFailed || !strings.Contains(tr.Err, "quarantined") || tr.Attempts != 2 {
				t.Fatalf("quarantined trial %d recorded as %+v", i, tr)
			}
			continue
		}
		if res.Trials[i] != refRes.Trials[i] {
			t.Fatalf("sibling trial %d poisoned by the quarantine: %+v vs %+v",
				i, res.Trials[i], refRes.Trials[i])
		}
	}
}

// TestChaosWatchdogQuarantine verifies that a shard attempt outliving
// its watchdog is quarantined through the same path as a panic, with
// the expiry named in the failure.
func TestChaosWatchdogQuarantine(t *testing.T) {
	const seed, n = 43, 8
	res, err := Run(context.Background(), testCampaign(t, seed), n, Options{
		Shards: 2, Workers: 2, Retries: fault.NoRetries, Backoff: time.Millisecond,
		Watchdog: time.Nanosecond,
	})
	if err == nil {
		t.Fatal("campaign under a 1ns watchdog reported no error")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error does not name the watchdog: %v", err)
	}
	if res.Failed != n || res.Pending != 0 {
		t.Fatalf("failed=%d pending=%d, want %d/0", res.Failed, res.Pending, n)
	}
}
