package shard

import "testing"

// The state machine is shared between the in-process scheduler and the
// campaign coordinator's lease registry; its transition rules are the
// quarantine semantics both engines must agree on.
func TestStateMachineLifecycle(t *testing.T) {
	m := NewStateMachine(3)
	if m.Len() != 3 || m.Terminal() != 0 || m.AllTerminal() {
		t.Fatalf("fresh machine: len=%d terminal=%d", m.Len(), m.Terminal())
	}
	for s := 0; s < 3; s++ {
		if got := m.State(s); got != StateQueued {
			t.Fatalf("shard %d starts in %v, want queued", s, got)
		}
	}

	// Happy path: acquire → complete.
	if a := m.Acquire(0); a != 1 {
		t.Fatalf("first acquire attempt = %d, want 1", a)
	}
	m.Complete(0)
	if m.State(0) != StateDone || m.Terminal() != 1 {
		t.Fatalf("after complete: state=%v terminal=%d", m.State(0), m.Terminal())
	}

	// Quarantine loop: acquire → quarantine → requeue → acquire counts
	// attempts monotonically.
	m.Acquire(1)
	m.Quarantine(1)
	if m.State(1) != StateBackoff {
		t.Fatalf("after quarantine: %v", m.State(1))
	}
	m.Requeue(1)
	if a := m.Acquire(1); a != 2 {
		t.Fatalf("second acquire attempt = %d, want 2", a)
	}
	// Direct Backoff → Running re-acquire (the in-process scheduler's
	// pop-is-the-requeue path).
	m.Quarantine(1)
	if a := m.Acquire(1); a != 3 {
		t.Fatalf("backoff re-acquire attempt = %d, want 3", a)
	}
	m.Fail(1)
	if m.State(1) != StateFailed || m.Attempts(1) != 3 {
		t.Fatalf("after fail: state=%v attempts=%d", m.State(1), m.Attempts(1))
	}

	// Fail from backoff (the lease registry's expiry-time decision).
	m.Acquire(2)
	m.Quarantine(2)
	m.Fail(2)
	if !m.AllTerminal() {
		t.Fatal("machine not terminal after every shard finished")
	}
	q, r, b, d, f := m.Counts()
	if q != 0 || r != 0 || b != 0 || d != 1 || f != 2 {
		t.Fatalf("counts = %d/%d/%d/%d/%d, want 0/0/0/1/2", q, r, b, d, f)
	}
}

func TestStateMachineRejectsInvalidTransitions(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(m *StateMachine)
	}{
		{"complete while queued", func(m *StateMachine) { m.Complete(0) }},
		{"quarantine while queued", func(m *StateMachine) { m.Quarantine(0) }},
		{"requeue while queued", func(m *StateMachine) { m.Requeue(0) }},
		{"fail while queued", func(m *StateMachine) { m.Fail(0) }},
		{"acquire while running", func(m *StateMachine) { m.Acquire(0); m.Acquire(0) }},
		{"acquire after done", func(m *StateMachine) { m.Acquire(0); m.Complete(0); m.Acquire(0) }},
		{"fail after done", func(m *StateMachine) { m.Acquire(0); m.Complete(0); m.Fail(0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid transition did not panic")
				}
			}()
			tc.fn(NewStateMachine(1))
		})
	}
}
