// Package shard executes a fault-injection campaign as K
// failure-isolated shards on a work-stealing scheduler.
//
// A campaign's trial space is a pure index partition: trial t's plan
// is a pure function of (Seed, t) (see fault.Prepared.Plans), so
// splitting [0, n) into K contiguous ranges changes nothing about what
// any trial executes — only where and when. Each shard is a failure
// domain: a shard attempt that panics, outlives its watchdog, or fails
// its journal is quarantined and re-queued with backoff, and only
// after its retry budget is exhausted are its unexecuted trials
// recorded as TrialFailed — its siblings never notice either way.
//
// With a journal directory configured, every shard streams finished
// trials into its own JSONL journal (the PR 1 format plus a shard
// header), and a completed campaign additionally writes a canonical
// merged journal byte-identical to the one the single-loop engine
// (Workers=1) writes. Killing the process at any point and calling Run
// again resumes from the per-shard journals — torn tails are dropped,
// a missing or corrupt shard journal just re-runs that shard — and
// reproduces the uninterrupted result bit for bit.
package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ipas/internal/fault"
	"ipas/internal/interp"
)

// Options configures sharded execution. The zero value runs one shard
// on a GOMAXPROCS-worker scheduler with default quarantine retries and
// no journaling — behaviorally the single-loop engine.
type Options struct {
	// Shards partitions the trial space into this many contiguous
	// index ranges (default 1, capped at the trial count). Results are
	// bit-identical for every shard count.
	Shards int
	// Workers bounds scheduler goroutines (default GOMAXPROCS, capped
	// at the shard count). Results are bit-identical for every worker
	// count.
	Workers int
	// Retries bounds shard-level quarantine retries: how many times a
	// shard that panicked, expired its watchdog, or failed a journal
	// write is re-queued before its unexecuted trials are recorded as
	// TrialFailed. Zero selects fault.DefaultMaxRetries; use
	// fault.NoRetries to request zero. (Per-trial infrastructure
	// retries remain the campaign's MaxRetries and do not quarantine
	// the shard.)
	Retries int
	// Backoff is the base quarantine delay: re-queue k waits
	// Backoff << (k-1) (default 10ms). Cancellation interrupts it.
	Backoff time.Duration
	// Watchdog bounds one shard attempt's wall-clock time (0 = none).
	// Expiry quarantines the attempt; trials finished before it are
	// already recorded (and journaled), so the retry resumes where the
	// attempt stopped instead of repeating work.
	Watchdog time.Duration
	// Dir, when non-empty, is the journal directory: one JSONL journal
	// per shard (shard-0000.jsonl, ...) plus the canonical
	// merged.jsonl once the campaign completes. It makes the campaign
	// crash-tolerant: a re-run with the same options resumes from the
	// shard journals and is bit-identical to an uninterrupted run.
	Dir string
	// Progress matches fault.Campaign.Progress: invoked (serialized)
	// after every finished trial with campaign-wide tallies. When nil,
	// the campaign's own Progress is used.
	Progress func(done, total, failed, deadlocked int)

	// beforeShard is a test hook invoked at the start of every shard
	// attempt; panics it raises exercise the quarantine path.
	beforeShard func(shard, attempt int)
}

// Range returns shard s's trial-index range [lo, hi) in the
// deterministic contiguous partition of n trials into k shards: ranges
// differ in size by at most one and cover [0, n) exactly.
func Range(n, k, s int) (lo, hi int) {
	return s * n / k, (s + 1) * n / k
}

// mergedJournalName is the canonical merged journal inside Options.Dir.
const mergedJournalName = "merged.jsonl"

// JournalName returns the file name of shard s's journal inside
// Options.Dir.
func JournalName(s int) string { return fmt.Sprintf("shard-%04d.jsonl", s) }

// MergedJournalPath returns the canonical merged journal's path for a
// journal directory.
func MergedJournalPath(dir string) string { return filepath.Join(dir, mergedJournalName) }

// errCancelled marks a shard attempt interrupted by campaign
// cancellation: the shard is neither terminal nor quarantined, and its
// remaining trials stay pending for resume.
var errCancelled = errors.New("shard: campaign cancelled")

// Run executes the golden run plus n injection trials of campaign c,
// sharded per opts. The campaign's Prog/Verify/Config/Seed/HangFactor/
// MaxRetries/RetryBackoff fields apply per trial exactly as in the
// single-loop engine; its Workers field and Journal are ignored here
// (scheduling is opts.Workers, journaling is opts.Dir).
//
// The contract matches Campaign.RunContext — a non-nil result accounts
// for all n trials, cancellation returns the partial result with
// ctx.Err(), per-trial failures are joined into the returned error —
// with one addition: the result (and the merged journal) is
// bit-identical to the single-loop engine's for every shard count and
// worker count, including runs interrupted and resumed any number of
// times.
func Run(ctx context.Context, c *fault.Campaign, n int, opts Options) (*fault.CampaignResult, error) {
	if n < 0 {
		n = 0
	}
	k := opts.Shards
	if k <= 0 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	if n == 0 {
		k = 1
	}

	prep, err := c.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	plans := prep.Plans(n)
	e := &engine{
		prep:     prep,
		plans:    plans,
		out:      prep.NewResult(plans),
		n:        n,
		k:        k,
		opts:     opts,
		meta:     prep.Meta(n),
		journals: make([]*fault.Journal, k),
	}
	if e.opts.Progress == nil {
		e.opts.Progress = c.Progress
	}
	if opts.Dir != "" {
		if err := e.openJournals(); err != nil {
			e.closeJournals()
			return nil, err
		}
		defer e.closeJournals()
	}
	for _, tr := range e.out.Trials {
		if tr.Status != fault.TrialPending {
			e.done++
		}
		if tr.Status == fault.TrialFailed {
			e.failed++
		}
		if tr.Deadlock != "" {
			e.deadlocked++
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	retries := opts.Retries
	switch {
	case retries < 0:
		retries = 0
	case retries == 0:
		retries = fault.DefaultMaxRetries
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}

	sched := newScheduler(workers, k)
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			sched.stop()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				sh, attempt, ok := sched.next(w)
				if !ok {
					return
				}
				err := e.runShard(ctx, sh, attempt)
				switch {
				case err == nil:
					sched.finish(sh)
				case errors.Is(err, errCancelled):
					// The scheduler is stopping; the shard stays
					// non-terminal and resumes from its journal.
				case attempt > retries:
					e.failShard(sh, attempt, err)
					sched.fail(sh)
				default:
					sched.requeue(w, sh, backoff<<(attempt-1))
				}
			}
		}(w)
	}
	wg.Wait()
	sched.stop() // release any backoff timers left by a cancellation

	var errs []error
	if ferr := e.out.Finalize(); ferr != nil {
		errs = append(errs, ferr)
	}
	e.mu.Lock()
	jerr := e.jerr
	e.mu.Unlock()
	if opts.Dir != "" && ctx.Err() == nil && e.out.Pending == 0 && jerr == nil {
		if err := fault.WriteCanonical(MergedJournalPath(opts.Dir), e.meta, e.out.Trials); err != nil {
			errs = append(errs, err)
		}
	}
	if jerr != nil {
		errs = append(errs, fmt.Errorf("fault: journal write: %w", jerr))
	}
	if err := ctx.Err(); err != nil {
		return e.out, err
	}
	if len(errs) > 0 {
		return e.out, errors.Join(errs...)
	}
	return e.out, nil
}

// engine is one Run invocation's state. Trials land in out.Trials
// (disjoint indices per shard) and the tallies/journals are serialized
// by mu, mirroring the single-loop engine's finish path.
type engine struct {
	prep  *fault.Prepared
	plans []interp.FaultPlan
	out   *fault.CampaignResult
	n, k  int
	opts  Options
	meta  fault.JournalMeta // merged-journal (campaign-wide) header

	mu         sync.Mutex
	done       int
	failed     int
	deadlocked int
	journals   []*fault.Journal
	jerr       error
}

// runShard executes one attempt of shard sh: every not-yet-settled
// trial in its range, in index order. Any panic — the runner's own,
// or one escaping a hook — converts into a quarantine error.
func (e *engine) runShard(ctx context.Context, sh, attempt int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("shard runner panic: %v", p)
		}
	}()
	if e.opts.beforeShard != nil {
		e.opts.beforeShard(sh, attempt)
	}
	sctx := ctx
	if e.opts.Watchdog > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, e.opts.Watchdog)
		defer cancel()
	}
	lo, hi := Range(e.n, e.k, sh)
	for t := lo; t < hi; t++ {
		if e.settled(t) {
			continue // restored from the journal, or an earlier attempt
		}
		tr := e.prep.RunTrial(sctx, t, e.plans[t])
		if tr.Status == fault.TrialPending {
			// RunTrial only leaves a trial pending on cancellation:
			// the campaign's, or this attempt's watchdog.
			if ctx.Err() != nil {
				return errCancelled
			}
			return fmt.Errorf("shard watchdog (%v) expired at trial %d", e.opts.Watchdog, t)
		}
		if jerr := e.record(sh, t, tr); jerr != nil {
			return fmt.Errorf("journal write: %w", jerr)
		}
	}
	return nil
}

// settled reports whether trial t already has a terminal record.
func (e *engine) settled(t int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.out.Trials[t].Status != fault.TrialPending
}

// record lands one finished trial: result slot, shard journal, and
// progress callback, serialized exactly like the single-loop finish
// path. The journal error is returned so the shard can quarantine on a
// failing disk instead of silently dropping its checkpoint.
func (e *engine) record(sh, t int, tr fault.Trial) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.out.Trials[t] = tr
	e.done++
	if tr.Status == fault.TrialFailed {
		e.failed++
	}
	if tr.Deadlock != "" {
		e.deadlocked++
	}
	var jerr error
	if j := e.journals[sh]; j != nil {
		jerr = j.Record(t, tr)
		if jerr != nil && e.jerr == nil {
			e.jerr = jerr
		}
	}
	if e.opts.Progress != nil {
		e.opts.Progress(e.done, e.n, e.failed, e.deadlocked)
	}
	return jerr
}

// failShard records a terminally quarantined shard's unexecuted trials
// as TrialFailed carrying the quarantine cause — the shard-level
// analogue of a trial exhausting its retries. Already-settled trials
// (earlier attempts, journal restores) keep their real results.
func (e *engine) failShard(sh, attempts int, cause error) {
	lo, hi := Range(e.n, e.k, sh)
	msg := fmt.Sprintf("shard %d/%d quarantined after %d attempts: %v", sh, e.k, attempts, cause)
	for t := lo; t < hi; t++ {
		if e.settled(t) {
			continue
		}
		tr := fault.Trial{
			Site: -1, Bit: e.plans[t].Bit, Index: e.plans[t].Index,
			Status: fault.TrialFailed, Err: msg, Attempts: attempts,
		}
		// Journal write errors are unactionable here: the shard is
		// already terminally failed, and the verdict is re-derived on
		// resume if it never reached disk.
		e.record(sh, t, tr)
	}
}

// openJournals binds the journal directory: restore the merged journal
// if a completed campaign left one, then open (or recover, or recreate)
// every shard journal and restore its trials.
func (e *engine) openJournals() error {
	if err := os.MkdirAll(e.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating journal dir: %w", err)
	}
	if err := e.restoreMerged(); err != nil {
		return err
	}
	for s := 0; s < e.k; s++ {
		j, prev, err := e.openShardJournal(s)
		if err != nil {
			return err
		}
		e.journals[s] = j
		lo, hi := Range(e.n, e.k, s)
		for t, tr := range prev {
			if t >= lo && t < hi && tr.Status != fault.TrialPending {
				e.out.Trials[t] = tr
			}
		}
	}
	return nil
}

// restoreMerged loads a previous run's completed merged journal, if
// any. A corrupt merged journal is deleted and rebuilt from the shard
// journals; one belonging to a different campaign is a hard error — a
// journal directory is never silently clobbered.
func (e *engine) restoreMerged() error {
	path := MergedJournalPath(e.opts.Dir)
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	j, err := fault.OpenJournal(path)
	if err != nil {
		if errors.Is(err, fault.ErrJournalCorrupt) {
			return os.Remove(path)
		}
		return err
	}
	prev, err := j.Begin(e.meta)
	closeErr := j.Close()
	if err != nil {
		if errors.Is(err, fault.ErrCampaignMismatch) {
			return err
		}
		return os.Remove(path)
	}
	if closeErr != nil {
		return closeErr
	}
	for t, tr := range prev {
		if t >= 0 && t < e.n && tr.Status != fault.TrialPending {
			e.out.Trials[t] = tr
		}
	}
	return nil
}

// openShardJournal opens shard s's journal, validating its shard
// header. A corrupt journal, or one whose header does not match —
// except a valid journal of a *different campaign*, which is a hard
// error — is deleted and recreated fresh, which simply re-runs the
// shard: exactly the recovery the trial-space partition makes cheap.
func (e *engine) openShardJournal(s int) (*fault.Journal, map[int]fault.Trial, error) {
	path := filepath.Join(e.opts.Dir, JournalName(s))
	lo, hi := Range(e.n, e.k, s)
	meta := e.meta
	meta.Shards, meta.Shard, meta.ShardStart, meta.ShardEnd = e.k, s, lo, hi
	for recreated := false; ; recreated = true {
		j, err := fault.OpenJournal(path)
		if err != nil {
			if errors.Is(err, fault.ErrJournalCorrupt) && !recreated {
				if err := os.Remove(path); err != nil {
					return nil, nil, err
				}
				continue
			}
			return nil, nil, err
		}
		prev, err := j.Begin(meta)
		if err != nil {
			j.Close()
			if errors.Is(err, fault.ErrCampaignMismatch) {
				sameCampaign := e.sameCampaignDifferentSharding(path)
				if !sameCampaign {
					return nil, nil, err
				}
				// Same campaign, different shard partition (the
				// -shards flag changed between runs): the records are
				// valid but the ownership ranges are not — refuse
				// with a precise message instead of mixing them.
				return nil, nil, fmt.Errorf(
					"shard: journal %s was written with a different shard partition; resume with the original -shards value or use a fresh directory (%w)",
					path, err)
			}
			if !recreated {
				if err := os.Remove(path); err != nil {
					return nil, nil, err
				}
				continue
			}
			return nil, nil, err
		}
		return j, prev, nil
	}
}

// sameCampaignDifferentSharding reports whether the journal at path
// belongs to this campaign (same seed/trials/golden fingerprint) but
// was partitioned differently.
func (e *engine) sameCampaignDifferentSharding(path string) bool {
	j, err := fault.OpenJournal(path)
	if err != nil {
		return false
	}
	defer j.Close()
	m := j.Meta()
	if m == nil {
		return false
	}
	return m.Seed == e.meta.Seed && m.Trials == e.meta.Trials &&
		m.GoldenDyn == e.meta.GoldenDyn && m.Population == e.meta.Population
}

// closeJournals closes every open shard journal; the files stay on
// disk for resume.
func (e *engine) closeJournals() {
	for i, j := range e.journals {
		if j != nil {
			j.Close()
			e.journals[i] = nil
		}
	}
}
