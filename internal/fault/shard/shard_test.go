package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/lang"
)

// shardProg mirrors the fault package's shared test program: 32
// pseudo-random floats reduced to a single sqrt-of-sum-of-squares
// output, verified by exact match so any corruption is SOC.
const shardProg = `
func main() {
	var n int = 32;
	var a *float = malloc_f64(n);
	var seed int = 77;
	for (var i int = 0; i < n; i = i + 1) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		a[i] = float(seed % 100) / 7.0;
	}
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		s = s + a[i] * a[i];
	}
	out_f64(0, sqrt(s));
}
`

func testCampaign(t *testing.T, seed int64) *fault.Campaign {
	t.Helper()
	m, err := lang.Compile(shardProg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := fault.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == 1 && faulty.OutputF[0] == golden.OutputF[0]
	}
	return &fault.Campaign{Prog: p, Verify: verify, Seed: seed}
}

// referenceRun produces the ground truth every sharded configuration
// must reproduce bit for bit: the single-loop engine with one worker,
// journaling to a file, whose journal bytes are the canonical form.
func referenceRun(t *testing.T, seed int64, n int) (*fault.CampaignResult, []byte) {
	t.Helper()
	c := testCampaign(t, seed)
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	j, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Journal = j
	c.Workers = 1
	res, err := c.RunContext(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

func assertSameResult(t *testing.T, got, want *fault.CampaignResult) {
	t.Helper()
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(got.Trials), len(want.Trials))
	}
	for i := range got.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, got.Trials[i], want.Trials[i])
		}
	}
	if got.Completed != want.Completed || got.Failed != want.Failed ||
		got.Pending != want.Pending || got.Deadlocks != want.Deadlocks ||
		got.Counts != want.Counts || got.GoldenDyn != want.GoldenDyn {
		t.Fatalf("statistics differ: %+v vs %+v", got, want)
	}
}

func assertMergedJournal(t *testing.T, dir string, want []byte) {
	t.Helper()
	got, err := os.ReadFile(MergedJournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged journal differs from the single-loop journal (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {1, 1}, {7, 1}, {7, 2}, {7, 7}, {60, 7}, {100, 16}, {5, 5},
	} {
		prev := 0
		for s := 0; s < tc.k; s++ {
			lo, hi := Range(tc.n, tc.k, s)
			if lo != prev {
				t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d (gap or overlap)", tc.n, tc.k, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d k=%d: shard %d has negative range [%d,%d)", tc.n, tc.k, s, lo, hi)
			}
			if size := hi - lo; size > tc.n/tc.k+1 || size < tc.n/tc.k {
				t.Fatalf("n=%d k=%d: shard %d size %d not balanced", tc.n, tc.k, s, size)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d k=%d: partition covers [0,%d), want [0,%d)", tc.n, tc.k, prev, tc.n)
		}
	}
}

// Every shard count × worker count must produce a CampaignResult and a
// merged journal bit-identical to the single-loop engine's.
func TestShardCountInvariance(t *testing.T) {
	const seed, n = 29, 60
	refRes, refJournal := referenceRun(t, seed, n)

	for _, k := range []int{1, 2, 7, n} {
		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("shards=%d,workers=%d", k, w), func(t *testing.T) {
				dir := t.TempDir()
				res, err := Run(context.Background(), testCampaign(t, seed), n,
					Options{Shards: k, Workers: w, Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, res, refRes)
				assertMergedJournal(t, dir, refJournal)
			})
		}
	}
}

// Cancelling mid-campaign and resuming from the per-shard journals
// must reproduce the uninterrupted result — for every shard and worker
// count, including resuming with a different worker count.
func TestShardCancelThenResumeInvariance(t *testing.T) {
	const seed, n = 37, 48
	refRes, refJournal := referenceRun(t, seed, n)

	for _, k := range []int{1, 2, 7, n} {
		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("shards=%d,workers=%d", k, w), func(t *testing.T) {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var done atomic.Int64
				c := testCampaign(t, seed)
				c.Progress = func(d, total, failed, deadlocked int) {
					if done.Add(1) >= n/3 {
						cancel()
					}
				}
				res, err := Run(ctx, c, n, Options{Shards: k, Workers: w, Dir: dir})
				if err != context.Canceled {
					t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
				}
				if res == nil || res.Pending == 0 {
					t.Fatal("cancellation did not interrupt the campaign")
				}
				if _, err := os.Stat(MergedJournalPath(dir)); !os.IsNotExist(err) {
					t.Fatal("interrupted campaign wrote a merged journal")
				}

				// Resume with a different worker count: scheduling
				// must not leak into results.
				res2, err := Run(context.Background(), testCampaign(t, seed), n,
					Options{Shards: k, Workers: w%3 + 1, Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, res2, refRes)
				assertMergedJournal(t, dir, refJournal)
			})
		}
	}
}

// A second campaign pointed at a directory whose shard journals belong
// to a different campaign must refuse rather than clobber them; one
// resumed with a different shard partition must refuse with a message
// naming the cure.
func TestShardJournalOwnership(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	if _, err := Run(context.Background(), testCampaign(t, 5), n, Options{Shards: 3, Dir: dir}); err != nil {
		t.Fatal(err)
	}

	_, err := Run(context.Background(), testCampaign(t, 6), n, Options{Shards: 3, Dir: dir})
	if err == nil {
		t.Fatal("foreign campaign reused another campaign's journal directory")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("different campaign")) {
		t.Fatalf("foreign-directory error does not say so: %v", err)
	}

	_, err = Run(context.Background(), testCampaign(t, 5), n, Options{Shards: 4, Dir: dir})
	if err == nil {
		t.Fatal("resume with a different shard partition silently proceeded")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("different shard partition")) {
		t.Fatalf("repartition error does not explain itself: %v", err)
	}

	// The original configuration still resumes (instantly: everything
	// is journaled).
	if _, err := Run(context.Background(), testCampaign(t, 5), n, Options{Shards: 3, Dir: dir}); err != nil {
		t.Fatal(err)
	}
}
