package shard

import (
	"sync"
	"time"
)

// scheduler is the work-stealing shard queue. Every worker owns a
// deque seeded round-robin; a worker pops its own deque LIFO and, when
// empty, steals the oldest entry from the fullest sibling (FIFO end),
// so long-running shards migrate toward idle workers. Quarantined
// shards re-enter their owner's deque after a backoff timer instead of
// blocking a worker, which is what keeps one sick shard from poisoning
// its siblings' throughput.
//
// Shard lifecycle and quarantine accounting live in the shared
// StateMachine (state.go) — the same machine the campaign
// coordinator's lease registry drives — serialized under the
// scheduler's lock; the deques and backoff timers are this engine's
// own dispatch mechanics.
//
// Results never depend on which worker runs which shard — trials are
// addressed by index and plans are pure functions of (Seed, index) —
// so the scheduler is free to balance load arbitrarily.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]int // per-worker shard-index deques
	sm      *StateMachine
	stopped bool
	timers  []*time.Timer
}

// newScheduler seeds `shards` shard indices round-robin across
// `workers` deques.
func newScheduler(workers, shards int) *scheduler {
	s := &scheduler{deques: make([][]int, workers), sm: NewStateMachine(shards)}
	s.cond = sync.NewCond(&s.mu)
	// Deal in reverse so each worker's LIFO pop yields its lowest
	// shard first (cosmetic: journals and progress fill in order on an
	// idle machine; correctness never depends on it).
	for sh := shards - 1; sh >= 0; sh-- {
		w := sh % workers
		s.deques[w] = append(s.deques[w], sh)
	}
	return s
}

// next returns the next shard for worker w together with its 1-based
// attempt number, blocking while every runnable shard is elsewhere
// (executing or in quarantine backoff). ok=false means the scheduler
// stopped or every shard reached a terminal state.
func (s *scheduler) next(w int) (shard, attempt int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.sm.AllTerminal() {
			return 0, 0, false
		}
		if d := s.deques[w]; len(d) > 0 {
			shard = d[len(d)-1]
			s.deques[w] = d[:len(d)-1]
			return shard, s.sm.Acquire(shard), true
		}
		victim, best := -1, 0
		for v := range s.deques {
			if v != w && len(s.deques[v]) > best {
				victim, best = v, len(s.deques[v])
			}
		}
		if victim >= 0 {
			shard = s.deques[victim][0]
			s.deques[victim] = s.deques[victim][1:]
			return shard, s.sm.Acquire(shard), true
		}
		s.cond.Wait()
	}
}

// finish marks one shard done; when the last shard turns terminal,
// waiting workers drain and exit.
func (s *scheduler) finish(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sm.Complete(shard)
	if s.sm.AllTerminal() {
		s.cond.Broadcast()
	}
}

// fail marks one shard terminally quarantined (retry budget
// exhausted).
func (s *scheduler) fail(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sm.Fail(shard)
	if s.sm.AllTerminal() {
		s.cond.Broadcast()
	}
}

// requeue quarantines a shard and schedules it back onto worker w's
// deque after the backoff delay. The worker is free the whole time —
// backoff never occupies a scheduler slot. The shard stays in
// StateBackoff while queued; the eventual pop re-acquires it directly
// (Backoff → Running), so the deque entry is the requeue.
func (s *scheduler) requeue(w, shard int, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sm.Quarantine(shard)
	if s.stopped {
		return
	}
	t := time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.stopped {
			return
		}
		s.deques[w] = append(s.deques[w], shard)
		s.cond.Broadcast()
	})
	s.timers = append(s.timers, t)
}

// stop aborts scheduling: waiting workers wake and exit, and pending
// backoff timers are cancelled. Idempotent.
func (s *scheduler) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for _, t := range s.timers {
		t.Stop()
	}
	s.timers = nil
	s.cond.Broadcast()
}
