package shard

import (
	"sync"
	"time"
)

// scheduler is the work-stealing shard queue. Every worker owns a
// deque seeded round-robin; a worker pops its own deque LIFO and, when
// empty, steals the oldest entry from the fullest sibling (FIFO end),
// so long-running shards migrate toward idle workers. Quarantined
// shards re-enter their owner's deque after a backoff timer instead of
// blocking a worker, which is what keeps one sick shard from poisoning
// its siblings' throughput.
//
// Results never depend on which worker runs which shard — trials are
// addressed by index and plans are pure functions of (Seed, index) —
// so the scheduler is free to balance load arbitrarily.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]int // per-worker shard-index deques
	pending int     // shards not yet terminal (queued, running, or in backoff)
	stopped bool
	timers  []*time.Timer
}

// newScheduler seeds `shards` shard indices round-robin across
// `workers` deques.
func newScheduler(workers, shards int) *scheduler {
	s := &scheduler{deques: make([][]int, workers), pending: shards}
	s.cond = sync.NewCond(&s.mu)
	// Deal in reverse so each worker's LIFO pop yields its lowest
	// shard first (cosmetic: journals and progress fill in order on an
	// idle machine; correctness never depends on it).
	for sh := shards - 1; sh >= 0; sh-- {
		w := sh % workers
		s.deques[w] = append(s.deques[w], sh)
	}
	return s
}

// next returns the next shard for worker w, blocking while every
// runnable shard is elsewhere (executing or in quarantine backoff).
// ok=false means the scheduler stopped or every shard reached a
// terminal state.
func (s *scheduler) next(w int) (shard int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.pending == 0 {
			return 0, false
		}
		if d := s.deques[w]; len(d) > 0 {
			shard = d[len(d)-1]
			s.deques[w] = d[:len(d)-1]
			return shard, true
		}
		victim, best := -1, 0
		for v := range s.deques {
			if v != w && len(s.deques[v]) > best {
				victim, best = v, len(s.deques[v])
			}
		}
		if victim >= 0 {
			shard = s.deques[victim][0]
			s.deques[victim] = s.deques[victim][1:]
			return shard, true
		}
		s.cond.Wait()
	}
}

// finish marks one shard terminal (completed, or quarantined for
// good); when the last one lands, waiting workers drain and exit.
func (s *scheduler) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending--
	if s.pending == 0 {
		s.cond.Broadcast()
	}
}

// requeue schedules a quarantined shard back onto worker w's deque
// after the backoff delay. The worker is free the whole time — backoff
// never occupies a scheduler slot.
func (s *scheduler) requeue(w, shard int, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	t := time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.stopped {
			return
		}
		s.deques[w] = append(s.deques[w], shard)
		s.cond.Broadcast()
	})
	s.timers = append(s.timers, t)
}

// stop aborts scheduling: waiting workers wake and exit, and pending
// backoff timers are cancelled. Idempotent.
func (s *scheduler) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for _, t := range s.timers {
		t.Stop()
	}
	s.timers = nil
	s.cond.Broadcast()
}
