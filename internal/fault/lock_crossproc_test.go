//go:build unix

package fault

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// lockHelperEnv tells a re-executed test binary to act as the
// lock-holding peer process instead of running the test suite.
const lockHelperEnv = "IPAS_TEST_HOLD_JOURNAL"

// TestMain lets this test binary double as the cross-process lock
// helper: when lockHelperEnv names a journal path, the process opens
// it, announces the held lock on stdout, and holds it until stdin
// closes (or a deadline passes).
func TestMain(m *testing.M) {
	if path := os.Getenv(lockHelperEnv); path != "" {
		j, err := OpenJournal(path)
		if err != nil {
			os.Stdout.WriteString("ERR " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Stdout.WriteString("LOCKED\n")
		// Hold the lock until the parent closes our stdin (or a safety
		// deadline, so an orphaned helper cannot outlive its test run).
		done := make(chan struct{})
		go func() {
			buf := make([]byte, 1)
			for {
				if _, err := os.Stdin.Read(buf); err != nil {
					close(done)
					return
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(time.Minute):
		}
		j.Close()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// A journal held by another PROCESS — a remote worker streaming into a
// coordinator directory while a local CLI opens the same file, or two
// workers colliding on one shard directory — must fail fast with
// ErrJournalLocked and an actionable message, exactly like the
// in-process (per-OFD) case lock_test.go covers.
func TestJournalLockRejectsCrossProcessOpener(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.jsonl")

	helper := exec.Command(os.Args[0], "-test.run=^$")
	helper.Env = append(os.Environ(), lockHelperEnv+"="+path)
	stdin, err := helper.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := helper.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := helper.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		helper.Wait()
	}()

	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "LOCKED") {
		t.Fatalf("helper process did not take the lock: %q (%v)", line, err)
	}

	_, err = OpenJournal(path)
	if err == nil {
		t.Fatal("opened a journal locked by another process")
	}
	if !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("cross-process opener failed with %v, want ErrJournalLocked", err)
	}
	for _, want := range []string{path, "another worker", "different journal path"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("lock error %q is not actionable: missing %q", err, want)
		}
	}

	// Releasing the helper's lock makes the journal usable again.
	stdin.Close()
	if err := helper.Wait(); err != nil {
		t.Fatalf("helper exited with %v", err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal stayed locked after the holder exited: %v", err)
	}
	j.Close()
}
