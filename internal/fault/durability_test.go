package fault

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// durabilityJournal records n trials under the given fsync policy and
// returns the journal plus its on-disk bytes after Close.
func durabilityRun(t *testing.T, fsyncEvery, n int) (syncs int, data []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetFsyncEvery(fsyncEvery)
	if _, err := j.Begin(JournalMeta{Seed: 9, Trials: n, GoldenDyn: 100, Population: 50}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Record(i, Trial{Site: i, Bit: i % 64, Index: int64(i), Latency: int64(10 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return j.syncs, data
}

// The durability policy changes only when bytes reach stable storage,
// never which bytes: every policy writes identical journals, and the
// fsync accounting matches the configured checkpoint interval.
func TestJournalDurabilityPolicy(t *testing.T) {
	const n = 7
	baseSyncs, baseBytes := durabilityRun(t, 0, n)
	if baseSyncs != 0 {
		t.Fatalf("buffered journal issued %d fsyncs, want 0", baseSyncs)
	}
	for _, tc := range []struct {
		every, wantSyncs int
	}{
		// Per trial: one fsync per appended line (meta header + 7
		// trials); nothing left unsynced for Close.
		{1, n + 1},
		// Interval 3: 8 lines fsync at 3 and 6, Close syncs the tail.
		{3, 3},
		// Interval larger than the journal: only Close syncs.
		{100, 1},
	} {
		syncs, data := durabilityRun(t, tc.every, n)
		if syncs != tc.wantSyncs {
			t.Errorf("fsyncEvery=%d issued %d fsyncs, want %d", tc.every, syncs, tc.wantSyncs)
		}
		if !bytes.Equal(data, baseBytes) {
			t.Errorf("fsyncEvery=%d journal bytes differ from the buffered journal", tc.every)
		}
	}
}

// Sync forces buffered records to disk on demand (the coordinator
// calls it before acknowledging a worker's segment), and a synced
// journal still resumes exactly.
func TestJournalExplicitSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := JournalMeta{Seed: 4, Trials: 2, GoldenDyn: 10, Population: 5}
	if _, err := j.Begin(meta); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, Trial{Site: 3, Bit: 2, Index: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if j.syncs != 1 {
		t.Fatalf("explicit Sync issued %d fsyncs, want 1", j.syncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	prev, err := j2.Begin(meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev) != 1 || prev[0].Site != 3 {
		t.Fatalf("restored %v, want the synced trial", prev)
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
}
