//go:build unix

package fault

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f, held
// until the file is closed. flock locks attach to the open file
// description, so a second OpenJournal on the same path conflicts even
// within one process — exactly the property the journal needs: one
// writer per file, whether the competitor is another process on a
// shared filesystem or another campaign in this one.
func lockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err != syscall.EINTR {
			return err
		}
	}
}
