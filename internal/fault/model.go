package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"ipas/internal/interp"
)

// ErrorModel is a pluggable injection strategy: given the trial's rng
// stream, it draws the corruption parameters of one fault plan. The
// engine draws the target instance (Index) first, then hands the same
// stream to the model, so for the default single-bit model — whose only
// draw is rng.Intn(64), exactly what the engine drew before models
// existed — plan sequences are bit-identical to historical journals.
//
// Determinism contract: Draw must consume rng deterministically (same
// stream in, same plan out) and must not retain rng or the plan. Trial
// t's plan is then a pure function of (Seed, t) for every model, which
// is what keeps sharding, checkpoint/resume, sectioned campaigns and
// remote dispatch bit-identical across worker counts and processes.
type ErrorModel interface {
	// Name is the model's stable wire identifier — it rides journal
	// headers (JournalMeta.Model), campaign specs (campaign.Spec.Model)
	// and CLI flags, and must round-trip through ParseModel.
	Name() string
	// Draw fills the corruption fields of a plan whose Rank, Index and
	// Section are already set.
	Draw(rng *rand.Rand, plan *interp.FaultPlan)
}

// Built-in models. SingleBit is the paper's model and the default
// (Campaign.Model == nil); the others reproduce the fault behaviors the
// GPU SDC anatomy and ITHICA studies report: spatially adjacent
// multi-bit bursts, uncorrelated multi-bit upsets, value-correlated
// flips, and defect-induced persistent (sticky) faults.
var (
	SingleBit  ErrorModel = singleBitModel{}
	Correlated ErrorModel = correlatedModel{}
	Sticky     ErrorModel = stickyModel{}
)

// Burst returns the contiguous n-bit burst model: n adjacent raw
// positions starting at a uniform draw, wrapping inside the 64-bit raw
// space (positions fold modulo the victim's width at injection time).
func Burst(n int) ErrorModel { return burstModel{n: n} }

// RandomK returns the random-k model: k distinct uniform raw positions.
func RandomK(k int) ErrorModel { return randomKModel{k: k} }

// BuiltinModels returns one canonical instance of every built-in model
// family, single-bit first — the iteration set for per-model reports
// and determinism suites.
func BuiltinModels() []ErrorModel {
	return []ErrorModel{SingleBit, Burst(3), RandomK(3), Correlated, Sticky}
}

type singleBitModel struct{}

func (singleBitModel) Name() string { return "single-bit" }
func (singleBitModel) Draw(rng *rand.Rand, plan *interp.FaultPlan) {
	plan.Bit = rng.Intn(64)
}

type burstModel struct{ n int }

func (m burstModel) Name() string { return fmt.Sprintf("burst-%d", m.n) }
func (m burstModel) Draw(rng *rand.Rand, plan *interp.FaultPlan) {
	start := rng.Intn(64)
	plan.Bit = start
	var mask uint64
	for i := 0; i < m.n; i++ {
		mask |= 1 << uint((start+i)%64)
	}
	plan.Mask = mask
}

type randomKModel struct{ k int }

func (m randomKModel) Name() string { return fmt.Sprintf("random-%d", m.k) }
func (m randomKModel) Draw(rng *rand.Rand, plan *interp.FaultPlan) {
	var mask uint64
	first := -1
	for n := 0; n < m.k; {
		b := rng.Intn(64)
		if mask&(1<<uint(b)) != 0 {
			continue // re-draw duplicates; still a pure function of the stream
		}
		mask |= 1 << uint(b)
		if first < 0 {
			first = b
		}
		n++
	}
	plan.Bit = first
	plan.Mask = mask
}

type correlatedModel struct{}

func (correlatedModel) Name() string { return "correlated" }
func (correlatedModel) Draw(rng *rand.Rand, plan *interp.FaultPlan) {
	plan.Bit = rng.Intn(64)
	plan.Correlated = true
}

type stickyModel struct{}

func (stickyModel) Name() string { return "sticky" }
func (stickyModel) Draw(rng *rand.Rand, plan *interp.FaultPlan) {
	plan.Bit = rng.Intn(64)
	plan.Sticky = true
}

// maxMaskBits bounds the burst-N / random-N parameter: the raw draw
// space is 64 bits wide.
const maxMaskBits = 64

// ParseModel resolves a model name from a flag, spec or journal header.
// The empty string and "single-bit" both yield the default model;
// "burst-N" and "random-N" accept 1 <= N <= 64.
func ParseModel(name string) (ErrorModel, error) {
	switch name {
	case "", "single-bit":
		return SingleBit, nil
	case "correlated":
		return Correlated, nil
	case "sticky":
		return Sticky, nil
	}
	for _, fam := range []struct {
		prefix string
		mk     func(int) ErrorModel
	}{{"burst-", Burst}, {"random-", RandomK}} {
		if rest, ok := strings.CutPrefix(name, fam.prefix); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n < 1 || n > maxMaskBits {
				return nil, fmt.Errorf("fault: error model %q: want %sN with 1 <= N <= %d", name, fam.prefix, maxMaskBits)
			}
			return fam.mk(n), nil
		}
	}
	return nil, fmt.Errorf("fault: unknown error model %q (known: single-bit, burst-N, random-N, correlated, sticky)", name)
}

// KnownModel reports whether name resolves to a built-in model (the
// journal forward-compat guard: headers naming a model this build does
// not know must refuse resume rather than silently re-running trials
// under the default model).
func KnownModel(name string) bool {
	_, err := ParseModel(name)
	return err == nil
}

// ModelName canonicalizes a model for wire formats: the default
// single-bit model — nil or SingleBit — maps to "", keeping journal
// headers and spec JSON byte-identical to the pre-model formats.
func ModelName(m ErrorModel) string {
	if m == nil {
		return ""
	}
	if name := m.Name(); name != SingleBit.Name() {
		return name
	}
	return ""
}

// model resolves the campaign's model field (nil = single-bit).
func (c *Campaign) model() ErrorModel {
	if c.Model == nil {
		return SingleBit
	}
	return c.Model
}
