package fault

import (
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

const campaignProg = `
func main() {
	var n int = 32;
	var a *float = malloc_f64(n);
	var seed int = 77;
	for (var i int = 0; i < n; i = i + 1) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		a[i] = float(seed % 100) / 7.0;
	}
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		s = s + a[i] * a[i];
	}
	out_f64(0, sqrt(s));
}
`

func testCampaign(t *testing.T, seed int64) (*Campaign, *CampaignResult) {
	t.Helper()
	m, err := lang.Compile(campaignProg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Exact-match verifier: any change to the output is SOC.
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == 1 && faulty.OutputF[0] == golden.OutputF[0]
	}
	c := &Campaign{Prog: p, Verify: verify, Seed: seed}
	res, err := c.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestCampaignBasics(t *testing.T) {
	_, res := testCampaign(t, 3)
	if len(res.Trials) != 120 {
		t.Fatalf("%d trials", len(res.Trials))
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 120 {
		t.Fatalf("counts sum to %d", total)
	}
	if res.Counts[OutcomeDetected] != 0 {
		t.Error("unprotected program detected faults")
	}
	if res.Counts[OutcomeSOC] == 0 {
		t.Error("exact-match verifier saw no SOC in 120 flips (implausible)")
	}
	for _, tr := range res.Trials {
		if tr.Site < 0 {
			t.Fatal("trial without a site")
		}
		if tr.Bit < 0 || tr.Bit > 63 {
			t.Fatalf("bit %d out of range", tr.Bit)
		}
	}
	var sum float64
	for _, o := range []Outcome{OutcomeSymptom, OutcomeDetected, OutcomeMasked, OutcomeSOC} {
		sum += res.Proportion(o)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("proportions sum to %v", sum)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	_, r1 := testCampaign(t, 42)
	_, r2 := testCampaign(t, 42)
	if len(r1.Trials) != len(r2.Trials) {
		t.Fatal("trial counts differ")
	}
	for i := range r1.Trials {
		if r1.Trials[i] != r2.Trials[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, r1.Trials[i], r2.Trials[i])
		}
	}
	_, r3 := testCampaign(t, 43)
	same := true
	for i := range r1.Trials {
		if r1.Trials[i] != r3.Trials[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical campaigns")
	}
}

func TestInjectablePredicate(t *testing.T) {
	m, err := lang.Compile(campaignProg)
	if err != nil {
		t.Fatal(err)
	}
	sawGEP, sawCall := false, false
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				ok := Injectable(in)
				switch in.Op() {
				case ir.OpLoad, ir.OpStore, ir.OpPhi, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpTrap:
					if ok {
						t.Fatalf("%s must not be injectable", in.Op())
					}
				case ir.OpGEP:
					sawGEP = true
					if !ok {
						t.Fatal("gep must be injectable")
					}
				case ir.OpCall:
					sawCall = true
					if in.HasResult() != ok {
						t.Fatalf("call injectability must follow HasResult (%v vs %v)", in.HasResult(), ok)
					}
				}
			}
		}
	}
	if !sawGEP || !sawCall {
		t.Fatal("test program lacks GEP/call coverage")
	}
}

func TestClassifyMapping(t *testing.T) {
	g := &interp.Result{OutputF: []float64{1}}
	okVerify := func(_, _ *interp.Result) bool { return true }
	badVerify := func(_, _ *interp.Result) bool { return false }

	cases := []struct {
		trap   interp.Trap
		verify Verifier
		want   Outcome
	}{
		{interp.TrapDetected, badVerify, OutcomeDetected},
		{interp.TrapOOB, okVerify, OutcomeSymptom},
		{interp.TrapBudget, okVerify, OutcomeSymptom},
		{interp.TrapDivZero, okVerify, OutcomeSymptom},
		{interp.TrapDeadlock, okVerify, OutcomeSymptom},
		{interp.TrapNone, okVerify, OutcomeMasked},
		{interp.TrapNone, badVerify, OutcomeSOC},
	}
	for _, c := range cases {
		r := &interp.Result{Trap: c.trap}
		if got := Classify(g, r, c.verify); got != c.want {
			t.Errorf("Classify(trap=%v) = %v, want %v", c.trap, got, c.want)
		}
	}
}

// TestCampaignCoversManySites: uniform dynamic-instance sampling must
// spread across many static sites, not fixate on a few.
func TestCampaignCoversManySites(t *testing.T) {
	_, res := testCampaign(t, 9)
	sites := map[int]bool{}
	for _, tr := range res.Trials {
		sites[tr.Site] = true
	}
	if len(sites) < 10 {
		t.Fatalf("campaign hit only %d distinct sites", len(sites))
	}
}

func TestCampaignRejectsBrokenGolden(t *testing.T) {
	m, err := lang.Compile(`func main() { var z int = 0; out_i64(0, 1 / z); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Prog: p, Verify: func(_, _ *interp.Result) bool { return true }}
	if _, err := c.Run(5); err == nil {
		t.Fatal("campaign accepted a trapping golden run")
	}
}

// TestCampaignWorkerCountInvariant: the trial sequence must be
// identical regardless of worker parallelism.
func TestCampaignWorkerCountInvariant(t *testing.T) {
	m, err := lang.Compile(campaignProg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == 1 && faulty.OutputF[0] == golden.OutputF[0]
	}
	run := func(workers int) *CampaignResult {
		c := &Campaign{Prog: p, Verify: verify, Seed: 55, Workers: workers}
		res, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r4 := run(4)
	for i := range r1.Trials {
		if r1.Trials[i] != r4.Trials[i] {
			t.Fatalf("trial %d differs between 1 and 4 workers", i)
		}
	}
}
