package fault

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ipas/internal/interp"
	"ipas/internal/lang"
)

// A 2-rank program whose message count is computed, so bit flips on
// rank 0 can corrupt it and hang the job: rank 0 derives n == 3 and
// sends that many messages, rank 1 consumes exactly three and replies.
// Flips that push n below 3 leave rank 1 waiting while rank 0 waits on
// the ack — a structural deadlock the campaign must classify as a
// symptom with a deterministic attribution string.
const deadlockProg = `
func main() {
	var rank int = mpi_rank();
	var n int = 12 / 4;
	if (rank == 0) {
		var s int = 0;
		for (var i int = 0; i < n; i = i + 1) {
			mpi_send_i64(1, 7, i * i);
			s = s + i;
		}
		var ack int = mpi_recv_i64(1, 8);
		out_i64(0, ack + s);
	}
	if (rank == 1) {
		var acc int = 0;
		for (var i int = 0; i < 3; i = i + 1) {
			acc = acc + mpi_recv_i64(0, 7);
		}
		mpi_send_i64(0, 8, acc);
	}
}
`

func deadlockCampaign(seed int64, workers int, j *Journal) *Campaign {
	m, err := lang.Compile(deadlockProg)
	if err != nil {
		panic(err)
	}
	p, err := Compile(m)
	if err != nil {
		panic(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputI) == 1 && faulty.OutputI[0] == golden.OutputI[0]
	}
	return &Campaign{
		Prog:    p,
		Verify:  verify,
		Config:  interp.Config{Ranks: 2},
		Seed:    seed,
		Workers: workers,
		Journal: j,
	}
}

const deadlockTrials = 60

func TestCampaignClassifiesDeadlocks(t *testing.T) {
	res, err := deadlockCampaign(11, 0, nil).Run(deadlockTrials)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks == 0 {
		t.Fatal("no trial deadlocked — the corpus program should hang under some flips")
	}
	seen := 0
	for _, tr := range res.Trials {
		if tr.Deadlock == "" {
			continue
		}
		seen++
		if tr.Status != TrialCompleted {
			t.Fatalf("deadlocked trial not completed: %+v", tr)
		}
		if tr.Outcome != OutcomeSymptom {
			t.Fatalf("deadlock classified as %v, want symptom (the paper's hang class)", tr.Outcome)
		}
	}
	if seen != res.Deadlocks {
		t.Fatalf("Deadlocks = %d but %d trials carry attributions", res.Deadlocks, seen)
	}
}

func TestCampaignDeadlocksWorkerInvariant(t *testing.T) {
	// The deadlock outcomes — including every attribution string —
	// must be bit-identical for any worker count.
	ref, err := deadlockCampaign(11, 1, nil).Run(deadlockTrials)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Deadlocks == 0 {
		t.Fatal("reference campaign saw no deadlocks")
	}
	for _, workers := range []int{4, 0} {
		res, err := deadlockCampaign(11, workers, nil).Run(deadlockTrials)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Trials, res.Trials) {
			t.Fatalf("trials differ between 1 and %d workers", workers)
		}
		if res.Deadlocks != ref.Deadlocks {
			t.Fatalf("deadlock count %d with %d workers, want %d", res.Deadlocks, workers, ref.Deadlocks)
		}
	}
}

func TestCampaignDeadlocksSurviveResume(t *testing.T) {
	// Cancel a journaled campaign partway, resume it, and require the
	// final result — attribution strings included — to be identical to
	// an uninterrupted run.
	ref, err := deadlockCampaign(11, 2, nil).Run(deadlockTrials)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Deadlocks == 0 {
		t.Fatal("reference campaign saw no deadlocks")
	}

	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1 := deadlockCampaign(11, 2, j1)
	c1.Progress = func(done, total, failed, deadlocked int) {
		if done >= deadlockTrials/3 {
			cancel()
		}
	}
	partial, err := c1.RunContext(ctx, deadlockTrials)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if partial.Pending == 0 {
		t.Fatal("cancellation left nothing to resume")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := deadlockCampaign(11, 2, j2).Run(deadlockTrials)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Trials, resumed.Trials) {
		t.Fatal("resumed trials differ from an uninterrupted run")
	}
	if resumed.Deadlocks != ref.Deadlocks {
		t.Fatalf("resumed deadlock count %d, want %d", resumed.Deadlocks, ref.Deadlocks)
	}
}

func TestProgressReportsDeadlocks(t *testing.T) {
	var lastDone, lastDeadlocked int
	c := deadlockCampaign(11, 1, nil)
	c.Progress = func(done, total, failed, deadlocked int) {
		if total != deadlockTrials {
			t.Errorf("progress total = %d, want %d", total, deadlockTrials)
		}
		lastDone, lastDeadlocked = done, deadlocked
	}
	res, err := c.Run(deadlockTrials)
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != deadlockTrials {
		t.Fatalf("final progress done = %d, want %d", lastDone, deadlockTrials)
	}
	if lastDeadlocked != res.Deadlocks {
		t.Fatalf("final progress deadlocked = %d, want %d", lastDeadlocked, res.Deadlocks)
	}
}
