package fault

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalFormat identifies the trial-journal file format.
const JournalFormat = "ipas-trial-journal-v1"

// JournalMeta fingerprints the campaign a journal belongs to. Seed and
// Trials pin the plan sequence; GoldenDyn and Population pin the
// program + configuration (a different binary or input produces a
// different golden run, and resuming across them would silently mix
// incompatible trials).
type JournalMeta struct {
	Format    string `json:"format"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	GoldenDyn int64  `json:"golden_dyn"`
	// Population is the injectable dynamic-instance count on rank 0.
	Population int64 `json:"population"`
}

// journalLine is one JSONL record: exactly one of Meta (first line) or
// Trial is set.
type journalLine struct {
	Meta  *JournalMeta `json:"meta,omitempty"`
	T     int          `json:"t,omitempty"`
	Trial *Trial       `json:"trial,omitempty"`
}

// Journal is an append-only JSONL checkpoint of a fault-injection
// campaign: a meta header followed by one line per finished trial.
// Opening an existing journal restores its trials so the campaign can
// resume; a trailing partial line (crash mid-write) is discarded and
// overwritten. Record order does not matter — trials carry their index
// — so any worker interleaving checkpoints correctly.
type Journal struct {
	path string

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	meta     *JournalMeta
	restored map[int]Trial
	began    bool
}

// OpenJournal opens (or creates) the campaign journal at path and
// loads every complete record already present.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: opening journal: %w", err)
	}
	j := &Journal{path: path, f: f, restored: map[int]Trial{}}
	valid, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn trailing line and position appends after the last
	// complete record.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: truncating journal %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load parses the journal, filling meta and restored, and returns the
// byte offset just past the last complete, well-formed line. A record
// is only trusted when newline-terminated and valid JSON; anything
// after the first torn or malformed line is discarded.
func (j *Journal) load() (int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return 0, fmt.Errorf("fault: reading journal %s: %w", j.path, err)
	}
	var valid int64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := bytes.TrimSpace(rest[:nl])
		advance := int64(nl) + 1
		rest = rest[nl+1:]
		if len(line) == 0 {
			valid += advance
			continue
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: keep what parsed so far
		}
		switch {
		case rec.Meta != nil:
			if rec.Meta.Format != JournalFormat {
				return 0, fmt.Errorf("fault: journal %s: unknown format %q", j.path, rec.Meta.Format)
			}
			if j.meta != nil {
				return 0, fmt.Errorf("fault: journal %s: duplicate meta header", j.path)
			}
			j.meta = rec.Meta
		case rec.Trial != nil:
			if j.meta == nil {
				return 0, fmt.Errorf("fault: journal %s: trial record before meta header", j.path)
			}
			j.restored[rec.T] = *rec.Trial
		}
		valid += advance
	}
	return valid, nil
}

// Restored reports how many trials the journal already holds.
func (j *Journal) Restored() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.restored)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// begin binds the journal to a campaign: a fresh journal writes the
// meta header; an existing one verifies that it belongs to the same
// campaign (same seed, trial count and golden-run fingerprint) and
// hands back the restored trials.
func (j *Journal) begin(meta JournalMeta) (map[int]Trial, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	meta.Format = JournalFormat
	if j.began {
		return nil, fmt.Errorf("fault: journal %s: already driving a campaign", j.path)
	}
	if j.meta != nil {
		if *j.meta != meta {
			return nil, fmt.Errorf(
				"fault: journal %s belongs to a different campaign (journal seed=%d trials=%d goldenDyn=%d pop=%d; campaign seed=%d trials=%d goldenDyn=%d pop=%d)",
				j.path, j.meta.Seed, j.meta.Trials, j.meta.GoldenDyn, j.meta.Population,
				meta.Seed, meta.Trials, meta.GoldenDyn, meta.Population)
		}
		j.began = true
		return j.restored, nil
	}
	if err := j.append(journalLine{Meta: &meta}); err != nil {
		return nil, err
	}
	j.meta = &meta
	j.began = true
	return nil, nil
}

// record appends one finished trial and flushes it to the OS, so a
// killed process loses at most the line being written.
func (j *Journal) record(t int, tr Trial) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("fault: journal %s: closed", j.path)
	}
	j.restored[t] = tr
	return j.append(journalLine{T: t, Trial: &tr})
}

func (j *Journal) append(rec journalLine) error {
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close flushes and closes the journal file. The journal stays on disk
// for later resume; delete it once its campaign result is consumed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.w, j.f = nil, nil
	return err
}
