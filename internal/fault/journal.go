package fault

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalFormat identifies the trial-journal file format.
const JournalFormat = "ipas-trial-journal-v1"

// JournalFormatSectioned identifies per-section trial journals
// (internal/fault section campaigns): same line format, but Trial.Site
// holds section-local site ordinals and the header carries the
// section's content fingerprint. The distinct format string makes a
// plain campaign driving a sectioned journal (or vice versa) fail
// loudly with ErrCampaignMismatch instead of silently misreading
// site ids.
const JournalFormatSectioned = "ipas-trial-journal-sectioned-v1"

// JournalMeta fingerprints the campaign a journal belongs to. Seed and
// Trials pin the plan sequence; GoldenDyn and Population pin the
// program + configuration (a different binary or input produces a
// different golden run, and resuming across them would silently mix
// incompatible trials).
type JournalMeta struct {
	Format    string `json:"format"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	GoldenDyn int64  `json:"golden_dyn"`
	// Population is the injectable dynamic-instance count on rank 0.
	Population int64 `json:"population"`

	// Shard header: the per-shard journals of a sharded campaign
	// (internal/fault/shard) record which slice of the trial space
	// they own. Shards is the total shard count, Shard this journal's
	// index, and [ShardStart, ShardEnd) its trial-index range; Trials
	// above stays the *whole* campaign's count, pinning the plan
	// sequence the range indexes into. All four are zero — and
	// omitted from the JSON, so pre-shard v1 journals parse and
	// compare equal — in single-journal campaigns and in the merged
	// journal.
	Shards     int `json:"shards,omitempty"`
	Shard      int `json:"shard,omitempty"`
	ShardStart int `json:"shard_start,omitempty"`
	ShardEnd   int `json:"shard_end,omitempty"`

	// Model names the error model the campaign's plans were drawn with
	// (fault.ErrorModel wire name). Empty — and omitted, so pre-model
	// journals parse and compare equal — for the default single-bit
	// model. Begin refuses a header naming a model this build does not
	// know (ErrModelUnknown wrapping ErrCampaignMismatch): re-running
	// such a journal's trials under the default model would silently
	// replace one trial space with another.
	Model string `json:"model,omitempty"`

	// SectionFP pins a sectioned journal to code content: the section's
	// own fingerprint for a per-section journal, or the whole-partition
	// fingerprint for a campaign-level sectioned header. Empty — and
	// omitted, so plain v1 journals parse and compare equal — outside
	// sectioned campaigns. Incremental re-analysis keys on it: a
	// journal whose fingerprint still matches the recompiled section is
	// reused wholesale, one that does not is discarded.
	SectionFP string `json:"section_fp,omitempty"`
}

// journalLine is one JSONL record: exactly one of Meta (first line) or
// Trial is set.
type journalLine struct {
	Meta  *JournalMeta `json:"meta,omitempty"`
	T     int          `json:"t,omitempty"`
	Trial *Trial       `json:"trial,omitempty"`
}

// Journal is an append-only JSONL checkpoint of a fault-injection
// campaign: a meta header followed by one line per finished trial.
// Opening an existing journal restores its trials so the campaign can
// resume; a trailing partial line (crash mid-write) is discarded and
// overwritten. Record order does not matter — trials carry their index
// — so any worker interleaving checkpoints correctly.
type Journal struct {
	path string

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	meta      *JournalMeta
	restored  map[int]Trial
	began     bool
	fsyncEach int // fsync every N appended records; 0 = never (buffered)
	sinceSync int
	syncs     int // fsyncs issued (tests assert the policy's accounting)
}

// ErrJournalLocked reports that a journal file is already open in
// another campaign (this process or another); OpenJournal wraps it.
var ErrJournalLocked = errors.New("journal is locked by a concurrent campaign")

// ErrJournalCorrupt reports structural damage beyond a torn tail — an
// unknown format, a duplicate header, a body without a header. The
// sharded engine treats a corrupt *shard* journal as "re-run that
// shard"; a locked or foreign journal is never recoverable that way.
var ErrJournalCorrupt = errors.New("journal is corrupt")

// ErrCampaignMismatch reports that a journal's header pins a different
// campaign than the one trying to drive it; Journal.Begin wraps it.
// Callers distinguishing "foreign but valid journal" (hard error:
// never clobber someone else's checkpoint) from "corrupt journal"
// (recoverable: rebuild) test for it with errors.Is.
var ErrCampaignMismatch = errors.New("journal belongs to a different campaign")

// ErrModelUnknown reports that a journal's header names an error model
// this build does not know — a forward-compatibility refusal, not
// corruption. It always arrives wrapped together with
// ErrCampaignMismatch, so shard and server layers that hard-fail on
// foreign journals inherit the right behavior; paths that *rebuild* on
// mismatch (per-section journals) must check for this sentinel first
// and fail instead: rebuilding would silently re-run a newer build's
// trials under the default model.
var ErrModelUnknown = errors.New("journal names an unknown error model")

// OpenJournal opens (or creates) the campaign journal at path and
// loads every complete record already present. The file is held under
// an exclusive advisory lock for the journal's lifetime, so two
// concurrent campaigns can never interleave writes into one journal:
// the second opener fails with ErrJournalLocked.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: opening journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf(
			"fault: journal %s: %w: another worker, campaign, or CLI in this or another process holds it; stop that run or point this one at a different journal path (%v)",
			path, ErrJournalLocked, err)
	}
	j := &Journal{path: path, f: f, restored: map[int]Trial{}}
	valid, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn trailing line and position appends after the last
	// complete record.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: truncating journal %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load parses the journal, filling meta and restored, and returns the
// byte offset just past the last complete, well-formed line. A record
// is only trusted when newline-terminated and valid JSON; anything
// after the first torn or malformed line is discarded.
func (j *Journal) load() (int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return 0, fmt.Errorf("fault: reading journal %s: %w", j.path, err)
	}
	var valid int64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := bytes.TrimSpace(rest[:nl])
		advance := int64(nl) + 1
		rest = rest[nl+1:]
		if len(line) == 0 {
			valid += advance
			continue
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: keep what parsed so far
		}
		switch {
		case rec.Meta != nil:
			if rec.Meta.Format != JournalFormat && rec.Meta.Format != JournalFormatSectioned {
				return 0, fmt.Errorf("fault: journal %s: %w: unknown format %q", j.path, ErrJournalCorrupt, rec.Meta.Format)
			}
			if j.meta != nil {
				return 0, fmt.Errorf("fault: journal %s: %w: duplicate meta header", j.path, ErrJournalCorrupt)
			}
			j.meta = rec.Meta
		case rec.Trial != nil:
			if j.meta == nil {
				return 0, fmt.Errorf("fault: journal %s: %w: trial record before meta header", j.path, ErrJournalCorrupt)
			}
			j.restored[rec.T] = *rec.Trial
		}
		valid += advance
	}
	return valid, nil
}

// Restored reports how many trials the journal already holds.
func (j *Journal) Restored() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.restored)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Meta returns the header restored from an existing journal, or nil
// for a fresh one (no header is written until Begin).
func (j *Journal) Meta() *JournalMeta {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.meta == nil {
		return nil
	}
	m := *j.meta
	return &m
}

// Begin binds the journal to a campaign: a fresh journal writes the
// meta header; an existing one verifies that it belongs to the same
// campaign (same seed, trial count, golden-run fingerprint, and shard
// header) and hands back the restored trials.
func (j *Journal) Begin(meta JournalMeta) (map[int]Trial, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if meta.Format == "" {
		meta.Format = JournalFormat
	}
	if j.began {
		return nil, fmt.Errorf("fault: journal %s: already driving a campaign", j.path)
	}
	if j.meta != nil {
		if !KnownModel(j.meta.Model) {
			return nil, fmt.Errorf(
				"fault: journal %s: %w: %w: model %q (written by a newer build?); refusing to resume its trials under a different model",
				j.path, ErrCampaignMismatch, ErrModelUnknown, j.meta.Model)
		}
		if *j.meta != meta {
			return nil, fmt.Errorf(
				"fault: journal %s: %w (journal format=%q seed=%d trials=%d goldenDyn=%d pop=%d shard=%d/%d model=%q sectionFP=%.16s; campaign format=%q seed=%d trials=%d goldenDyn=%d pop=%d shard=%d/%d model=%q sectionFP=%.16s)",
				j.path, ErrCampaignMismatch,
				j.meta.Format, j.meta.Seed, j.meta.Trials, j.meta.GoldenDyn, j.meta.Population, j.meta.Shard, j.meta.Shards, j.meta.Model, j.meta.SectionFP,
				meta.Format, meta.Seed, meta.Trials, meta.GoldenDyn, meta.Population, meta.Shard, meta.Shards, meta.Model, meta.SectionFP)
		}
		j.began = true
		return j.restored, nil
	}
	if err := j.append(journalLine{Meta: &meta}); err != nil {
		return nil, err
	}
	j.meta = &meta
	j.began = true
	return nil, nil
}

// SetFsyncEvery selects the journal's durability policy: how many
// appended records may accumulate before the journal forces them to
// stable storage with fsync.
//
//	n == 0  buffered (default): every record is flushed to the OS, so
//	        a killed process loses at most the line being written, but
//	        host power loss can lose recent records.
//	n == 1  per trial: fsync after every record — a record handed back
//	        to the caller is on stable storage.
//	n > 1   per checkpoint interval: fsync every n records and on
//	        Sync/Close — amortizes the fsync cost, bounding power-loss
//	        exposure to the last n records.
//
// Local campaigns keep the buffered default (a crashed process resumes
// from its own disk cache anyway); the campaign coordinator syncs
// before acknowledging worker segments, so an acked trial survives
// host power loss.
func (j *Journal) SetFsyncEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 {
		n = 0
	}
	j.fsyncEach = n
	j.sinceSync = 0
}

// Sync flushes buffered records and forces them to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("fault: journal %s: closed", j.path)
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.fsync()
}

// fsync forces the file to stable storage; callers hold j.mu and have
// flushed the buffer.
func (j *Journal) fsync() error {
	j.sinceSync = 0
	j.syncs++
	return j.f.Sync()
}

// Record appends one finished trial and flushes it to the OS (and, per
// the SetFsyncEvery policy, to stable storage), so a killed process
// loses at most the line being written.
func (j *Journal) Record(t int, tr Trial) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("fault: journal %s: closed", j.path)
	}
	j.restored[t] = tr
	return j.append(journalLine{T: t, Trial: &tr})
}

func (j *Journal) append(rec journalLine) error {
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.fsyncEach > 0 {
		j.sinceSync++
		if j.sinceSync >= j.fsyncEach {
			return j.fsync()
		}
	}
	return nil
}

// WriteCanonical writes a complete campaign journal to path in
// canonical form: the meta header followed by every non-pending trial
// in trial-index order — byte-identical to the journal an
// uninterrupted single-loop Campaign with Workers=1 writes. The write
// is atomic (temp file + rename), so a crash mid-merge leaves either
// the previous file or the complete new one, never a torn hybrid.
func WriteCanonical(path string, meta JournalMeta, trials []Trial) error {
	if meta.Format == "" {
		meta.Format = JournalFormat
	}
	var buf bytes.Buffer
	write := func(rec journalLine) error {
		data, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		buf.Write(data)
		buf.WriteByte('\n')
		return nil
	}
	if err := write(journalLine{Meta: &meta}); err != nil {
		return fmt.Errorf("fault: writing canonical journal %s: %w", path, err)
	}
	for t := range trials {
		if trials[t].Status == TrialPending {
			continue
		}
		if err := write(journalLine{T: t, Trial: &trials[t]}); err != nil {
			return fmt.Errorf("fault: writing canonical journal %s: %w", path, err)
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("fault: writing canonical journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fault: writing canonical journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file. The journal stays on disk
// for later resume; delete it once its campaign result is consumed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	err := j.w.Flush()
	if j.fsyncEach > 0 && j.sinceSync > 0 {
		if serr := j.fsync(); err == nil {
			err = serr
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.w, j.f = nil, nil
	return err
}
