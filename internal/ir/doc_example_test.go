package ir

import "testing"

func TestDocExampleParses(t *testing.T) {
	src := `
builtin @sqrt(f64) f64
func @norm(i64 %n, f64* %v) f64 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%inc, %loop]
  %acc = phi f64 [0.0, %entry], [%acc2, %loop]
  %p = gep f64* %v, %i
  %x = load f64* %p
  %xx = fmul f64 %x, %x
  %acc2 = fadd f64 %acc, %xx
  %inc = add i64 %i, 1
  %c = icmp lt i64 %inc, %n
  condbr %c, %loop, %exit
exit:
  %r = call f64 @sqrt(f64 %acc2)
  ret f64 %r
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}
