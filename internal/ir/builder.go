package ir

import "fmt"

// Builder constructs instructions at an insertion point, in the style
// of LLVM's IRBuilder. All factory methods register def-use edges and
// assign fresh SSA names to value-producing instructions.
type Builder struct {
	blk *Block
	// pos, when non-nil, makes the builder insert before this
	// instruction instead of appending at the block end.
	pos *Instr
}

// NewBuilder returns a builder appending to the end of b.
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// SetBlock repositions the builder at the end of b.
func (bd *Builder) SetBlock(b *Block) { bd.blk, bd.pos = b, nil }

// SetInsertBefore repositions the builder before instruction pos.
func (bd *Builder) SetInsertBefore(pos *Instr) { bd.blk, bd.pos = pos.block, pos }

// Block returns the current insertion block.
func (bd *Builder) Block() *Block { return bd.blk }

// insert finalizes and places a new instruction.
func (bd *Builder) insert(in *Instr) *Instr {
	if in.typ != Void && in.name == "" {
		in.name = bd.blk.fn.genName()
	}
	for _, opnd := range in.operands {
		if d, ok := opnd.(*Instr); ok {
			d.users = append(d.users, in)
		}
	}
	if bd.pos != nil {
		bd.blk.InsertBefore(in, bd.pos)
	} else {
		bd.blk.Append(in)
	}
	return in
}

func (bd *Builder) binary(op Op, x, y Value) *Instr {
	if x.Type() != y.Type() {
		panic(fmt.Sprintf("ir: %s operand type mismatch: %s vs %s", op, x.Type(), y.Type()))
	}
	return bd.insert(&Instr{op: op, typ: x.Type(), operands: []Value{x, y}})
}

// Integer arithmetic.

// Add builds an integer addition.
func (bd *Builder) Add(x, y Value) *Instr { return bd.binary(OpAdd, x, y) }

// Sub builds an integer subtraction.
func (bd *Builder) Sub(x, y Value) *Instr { return bd.binary(OpSub, x, y) }

// Mul builds an integer multiplication.
func (bd *Builder) Mul(x, y Value) *Instr { return bd.binary(OpMul, x, y) }

// SDiv builds a signed integer division.
func (bd *Builder) SDiv(x, y Value) *Instr { return bd.binary(OpSDiv, x, y) }

// SRem builds a signed integer remainder.
func (bd *Builder) SRem(x, y Value) *Instr { return bd.binary(OpSRem, x, y) }

// Floating-point arithmetic.

// FAdd builds a floating addition.
func (bd *Builder) FAdd(x, y Value) *Instr { return bd.binary(OpFAdd, x, y) }

// FSub builds a floating subtraction.
func (bd *Builder) FSub(x, y Value) *Instr { return bd.binary(OpFSub, x, y) }

// FMul builds a floating multiplication.
func (bd *Builder) FMul(x, y Value) *Instr { return bd.binary(OpFMul, x, y) }

// FDiv builds a floating division.
func (bd *Builder) FDiv(x, y Value) *Instr { return bd.binary(OpFDiv, x, y) }

// Logical operations.

// And builds a bitwise AND.
func (bd *Builder) And(x, y Value) *Instr { return bd.binary(OpAnd, x, y) }

// Or builds a bitwise OR.
func (bd *Builder) Or(x, y Value) *Instr { return bd.binary(OpOr, x, y) }

// Xor builds a bitwise XOR.
func (bd *Builder) Xor(x, y Value) *Instr { return bd.binary(OpXor, x, y) }

// Shl builds a left shift.
func (bd *Builder) Shl(x, y Value) *Instr { return bd.binary(OpShl, x, y) }

// LShr builds a logical right shift.
func (bd *Builder) LShr(x, y Value) *Instr { return bd.binary(OpLShr, x, y) }

// AShr builds an arithmetic right shift.
func (bd *Builder) AShr(x, y Value) *Instr { return bd.binary(OpAShr, x, y) }

// Comparisons.

// ICmp builds an integer/pointer comparison producing i1.
func (bd *Builder) ICmp(p Pred, x, y Value) *Instr {
	if x.Type() != y.Type() {
		panic(fmt.Sprintf("ir: icmp type mismatch: %s vs %s", x.Type(), y.Type()))
	}
	return bd.insert(&Instr{op: OpICmp, typ: I1, Pred: p, operands: []Value{x, y}})
}

// FCmp builds a floating comparison producing i1.
func (bd *Builder) FCmp(p Pred, x, y Value) *Instr {
	if x.Type() != F64 || y.Type() != F64 {
		panic("ir: fcmp requires f64 operands")
	}
	return bd.insert(&Instr{op: OpFCmp, typ: I1, Pred: p, operands: []Value{x, y}})
}

// Memory operations.

// Alloca builds a stack allocation of elems elements of type elem and
// returns a pointer to the first.
func (bd *Builder) Alloca(elem *Type, elems int64) *Instr {
	return bd.insert(&Instr{op: OpAlloca, typ: PtrTo(elem), AllocElems: elems})
}

// Load reads a value of the pointer's element type.
func (bd *Builder) Load(ptr Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir: load requires pointer operand")
	}
	return bd.insert(&Instr{op: OpLoad, typ: ptr.Type().Elem(), operands: []Value{ptr}})
}

// Store writes val through ptr; produces no value.
func (bd *Builder) Store(val, ptr Value) *Instr {
	if !ptr.Type().IsPtr() || ptr.Type().Elem() != val.Type() {
		panic(fmt.Sprintf("ir: store type mismatch: %s into %s", val.Type(), ptr.Type()))
	}
	return bd.insert(&Instr{op: OpStore, typ: Void, operands: []Value{val, ptr}})
}

// GEP computes ptr + idx*sizeof(elem) and returns a pointer of the same
// type ("get-pointer instruction", the paper's feature 9).
func (bd *Builder) GEP(ptr, idx Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir: gep requires pointer operand")
	}
	if idx.Type() != I64 {
		panic("ir: gep index must be i64")
	}
	return bd.insert(&Instr{op: OpGEP, typ: ptr.Type(), operands: []Value{ptr, idx}})
}

// AtomicRMW builds an atomic fetch-and-add on an i64 location, returning
// the old value (the paper's feature 8).
func (bd *Builder) AtomicRMW(ptr, delta Value) *Instr {
	if !ptr.Type().IsPtr() || ptr.Type().Elem() != I64 || delta.Type() != I64 {
		panic("ir: atomicrmw requires i64* and i64 operands")
	}
	return bd.insert(&Instr{op: OpAtomicRMW, typ: I64, operands: []Value{ptr, delta}})
}

// Casts.

// Cast builds the conversion op from x to type to.
func (bd *Builder) Cast(op Op, x Value, to *Type) *Instr {
	if !op.IsCast() {
		panic("ir: Cast with non-cast op " + op.String())
	}
	return bd.insert(&Instr{op: op, typ: to, operands: []Value{x}})
}

// SIToFP converts a signed integer to f64.
func (bd *Builder) SIToFP(x Value) *Instr { return bd.Cast(OpSIToFP, x, F64) }

// FPToSI converts an f64 to a signed integer of type to.
func (bd *Builder) FPToSI(x Value, to *Type) *Instr { return bd.Cast(OpFPToSI, x, to) }

// SExt sign-extends an integer to a wider integer type.
func (bd *Builder) SExt(x Value, to *Type) *Instr { return bd.Cast(OpSExt, x, to) }

// ZExt zero-extends an integer to a wider integer type.
func (bd *Builder) ZExt(x Value, to *Type) *Instr { return bd.Cast(OpZExt, x, to) }

// Trunc truncates an integer to a narrower integer type.
func (bd *Builder) Trunc(x Value, to *Type) *Instr { return bd.Cast(OpTrunc, x, to) }

// Other.

// Phi builds an empty PHI node of type t; fill it with AddIncoming.
func (bd *Builder) Phi(t *Type) *Instr {
	return bd.insert(&Instr{op: OpPhi, typ: t})
}

// AddIncoming appends an (value, predecessor) pair to a PHI node.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.operands = append(phi.operands, v)
	phi.Incoming = append(phi.Incoming, pred)
	if d, ok := v.(*Instr); ok {
		d.users = append(d.users, phi)
	}
}

// Select builds a conditional select: cond ? x : y.
func (bd *Builder) Select(cond, x, y Value) *Instr {
	if cond.Type() != I1 || x.Type() != y.Type() {
		panic("ir: select type mismatch")
	}
	return bd.insert(&Instr{op: OpSelect, typ: x.Type(), operands: []Value{cond, x, y}})
}

// Call builds a function call.
func (bd *Builder) Call(callee *Func, args ...Value) *Instr {
	if len(args) != len(callee.params) {
		panic(fmt.Sprintf("ir: call %s: want %d args, got %d", callee.name, len(callee.params), len(args)))
	}
	for i, a := range args {
		if a.Type() != callee.params[i].Type() {
			panic(fmt.Sprintf("ir: call %s arg %d: want %s, got %s",
				callee.name, i, callee.params[i].Type(), a.Type()))
		}
	}
	return bd.insert(&Instr{op: OpCall, typ: callee.retType, Callee: callee, operands: args})
}

// Terminators.

// Br builds an unconditional branch.
func (bd *Builder) Br(target *Block) *Instr {
	return bd.insert(&Instr{op: OpBr, typ: Void, Targets: []*Block{target}})
}

// CondBr builds a conditional branch (cond ? yes : no).
func (bd *Builder) CondBr(cond Value, yes, no *Block) *Instr {
	if cond.Type() != I1 {
		panic("ir: condbr condition must be i1")
	}
	return bd.insert(&Instr{op: OpCondBr, typ: Void, operands: []Value{cond}, Targets: []*Block{yes, no}})
}

// Ret builds a return; v is nil for void functions.
func (bd *Builder) Ret(v Value) *Instr {
	in := &Instr{op: OpRet, typ: Void}
	if v != nil {
		in.operands = []Value{v}
	}
	return bd.insert(in)
}

// Trap builds an abnormal-termination terminator with a reason code.
func (bd *Builder) Trap(code int64) *Instr {
	return bd.insert(&Instr{op: OpTrap, typ: Void, operands: []Value{ConstInt(I64, code)}})
}
