package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads a module from the textual syntax produced by Print.
func Parse(src string) (*Module, error) {
	p := &parser{mod: NewModule()}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// MustParse is Parse that panics on error; for tests and embedded IR.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	mod  *Module
	line int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ir: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// run splits the source into functions and parses each.
func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		p.line = i + 1
		ln := stripComment(lines[i])
		if ln == "" {
			i++
			continue
		}
		switch {
		case strings.HasPrefix(ln, "builtin "):
			if err := p.parseBuiltin(ln); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(ln, "func "):
			end := i + 1
			for end < len(lines) && stripComment(lines[end]) != "}" {
				end++
			}
			if end == len(lines) {
				return p.errf("unterminated function")
			}
			if err := p.parseFunc(lines[i:end], i); err != nil {
				return err
			}
			i = end + 1
		default:
			return p.errf("expected 'func' or 'builtin', got %q", ln)
		}
	}
	return nil
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseBuiltin handles "builtin @name(t1, t2) ret".
func (p *parser) parseBuiltin(ln string) error {
	rest := strings.TrimPrefix(ln, "builtin ")
	name, sig, ok := cutSig(rest)
	if !ok {
		return p.errf("malformed builtin declaration %q", ln)
	}
	open := strings.IndexByte(sig, '(')
	close_ := strings.LastIndexByte(sig, ')')
	if open != 0 || close_ < 0 {
		return p.errf("malformed builtin signature %q", sig)
	}
	var ptypes []*Type
	for _, f := range splitArgs(sig[1:close_]) {
		t, err := ParseType(strings.TrimSpace(f))
		if err != nil {
			return p.errf("%v", err)
		}
		ptypes = append(ptypes, t)
	}
	ret, err := ParseType(strings.TrimSpace(sig[close_+1:]))
	if err != nil {
		return p.errf("%v", err)
	}
	p.mod.NewBuiltin(name, ret, ptypes...)
	return nil
}

// cutSig splits "@name(...)..." into the name and the remainder
// starting at '('.
func cutSig(s string) (name, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "@") {
		return "", "", false
	}
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return "", "", false
	}
	return s[1:i], s[i:], true
}

// splitArgs splits a comma-separated list at top level (no nesting in
// our syntax, so a plain split suffices after trimming).
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseFunc parses one function (lines[0] is the header; body follows).
func (p *parser) parseFunc(lines []string, base int) error {
	p.line = base + 1
	header := stripComment(lines[0])
	header = strings.TrimPrefix(header, "func ")
	header = strings.TrimSuffix(strings.TrimSpace(header), "{")
	name, sig, ok := cutSig(header)
	if !ok {
		return p.errf("malformed function header %q", header)
	}
	close_ := strings.LastIndexByte(sig, ')')
	if close_ < 0 {
		return p.errf("missing ')' in function header")
	}
	var pnames []string
	var ptypes []*Type
	for _, f := range splitArgs(sig[1:close_]) {
		sp := strings.Fields(f)
		if len(sp) != 2 || !strings.HasPrefix(sp[1], "%") {
			return p.errf("malformed parameter %q", f)
		}
		t, err := ParseType(sp[0])
		if err != nil {
			return p.errf("%v", err)
		}
		ptypes = append(ptypes, t)
		pnames = append(pnames, sp[1][1:])
	}
	ret, err := ParseType(strings.TrimSpace(sig[close_+1:]))
	if err != nil {
		return p.errf("%v", err)
	}
	fn := p.mod.NewFunc(name, ret, pnames, ptypes)

	// Pass 1: create blocks and instruction shells (names and types).
	vals := map[string]Value{}
	for _, prm := range fn.params {
		vals[prm.name] = prm
	}
	type pending struct {
		in   *Instr
		toks []string
		line int
	}
	var work []pending
	var cur *Block
	for li := 1; li < len(lines); li++ {
		p.line = base + li + 1
		ln := stripComment(lines[li])
		if ln == "" {
			continue
		}
		if strings.HasSuffix(ln, ":") {
			cur = fn.NewBlock(strings.TrimSuffix(ln, ":"))
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label")
		}
		in, toks, err := p.instrShell(ln)
		if err != nil {
			return err
		}
		cur.Append(in)
		if in.HasResult() {
			if _, dup := vals[in.name]; dup {
				return p.errf("duplicate SSA name %%%s", in.name)
			}
			vals[in.name] = in
		}
		work = append(work, pending{in, toks, p.line})
	}

	// Pass 2: resolve operands now that all names and blocks exist.
	for _, w := range work {
		p.line = w.line
		if err := p.fillOperands(fn, w.in, w.toks, vals); err != nil {
			return err
		}
	}
	return nil
}

// instrShell creates an instruction with its opcode, name and type set,
// returning the raw tokens for operand resolution in pass 2.
func (p *parser) instrShell(ln string) (*Instr, []string, error) {
	var name string
	if strings.HasPrefix(ln, "%") {
		eq := strings.Index(ln, "=")
		if eq < 0 {
			return nil, nil, p.errf("missing '=' in %q", ln)
		}
		name = strings.TrimSpace(ln[1:eq])
		ln = strings.TrimSpace(ln[eq+1:])
	}
	toks := tokenize(ln)
	if len(toks) == 0 {
		return nil, nil, p.errf("empty instruction")
	}
	op, ok := opByName[toks[0]]
	if !ok {
		return nil, nil, p.errf("unknown opcode %q", toks[0])
	}
	in := &Instr{op: op, typ: Void, name: name}
	switch op {
	case OpICmp, OpFCmp:
		in.typ = I1
	case OpLoad:
		pt, err := ParseType(toks[1])
		if err != nil || !pt.IsPtr() {
			return nil, nil, p.errf("load needs pointer type, got %q", toks[1])
		}
		in.typ = pt.Elem()
	case OpAlloca:
		et, err := ParseType(toks[1])
		if err != nil {
			return nil, nil, p.errf("%v", err)
		}
		n, err := strconv.ParseInt(toks[2], 10, 64)
		if err != nil {
			return nil, nil, p.errf("bad alloca count %q", toks[2])
		}
		in.typ = PtrTo(et)
		in.AllocElems = n
	case OpGEP:
		pt, err := ParseType(toks[1])
		if err != nil || !pt.IsPtr() {
			return nil, nil, p.errf("gep needs pointer type, got %q", toks[1])
		}
		in.typ = pt
	case OpAtomicRMW:
		in.typ = I64
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpPtrToInt, OpIntToPtr, OpBitcast:
		// "...<fromty> <val> to <toty>"
		if len(toks) < 5 || toks[len(toks)-2] != "to" {
			return nil, nil, p.errf("malformed cast %q", ln)
		}
		t, err := ParseType(toks[len(toks)-1])
		if err != nil {
			return nil, nil, p.errf("%v", err)
		}
		in.typ = t
	case OpPhi, OpSelect, OpCall:
		idx := 1
		if op == OpSelect {
			idx = 2 // select %cond, <ty> ...
		}
		t, err := ParseType(toks[idx])
		if err != nil {
			return nil, nil, p.errf("%v", err)
		}
		in.typ = t
	case OpStore, OpBr, OpCondBr, OpRet, OpTrap:
		// void
	default: // binary/logical: "<op> <ty> a, b"
		t, err := ParseType(toks[1])
		if err != nil {
			return nil, nil, p.errf("%v", err)
		}
		in.typ = t
	}
	return in, toks, nil
}

// addOperand resolves a reference token against vals with an expected
// type for constants, and wires def-use edges.
func (p *parser) addOperand(in *Instr, tok string, want *Type, vals map[string]Value) error {
	v, err := p.resolve(tok, want, vals)
	if err != nil {
		return err
	}
	in.operands = append(in.operands, v)
	if d, ok := v.(*Instr); ok {
		d.users = append(d.users, in)
	}
	return nil
}

func (p *parser) resolve(tok string, want *Type, vals map[string]Value) (Value, error) {
	if strings.HasPrefix(tok, "%") {
		v, ok := vals[tok[1:]]
		if !ok {
			return nil, p.errf("undefined value %s", tok)
		}
		return v, nil
	}
	if tok == "null" {
		if want == nil || !want.IsPtr() {
			return nil, p.errf("null constant needs pointer type")
		}
		return NullPtr(want), nil
	}
	if strings.HasPrefix(tok, "0xfp") {
		bits, err := strconv.ParseUint(tok[4:], 16, 64)
		if err != nil {
			return nil, p.errf("bad float bits %q", tok)
		}
		return ConstFloat(math.Float64frombits(bits)), nil
	}
	if want != nil && want.IsFloat() {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, p.errf("bad float constant %q", tok)
		}
		return ConstFloat(f), nil
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, p.errf("bad integer constant %q", tok)
	}
	if want == nil {
		want = I64
	}
	return ConstInt(want, n), nil
}

func (p *parser) block(fn *Func, tok string) (*Block, error) {
	name := strings.TrimPrefix(tok, "%")
	b := fn.BlockByName(name)
	if b == nil {
		return nil, p.errf("undefined block %%%s", name)
	}
	return b, nil
}

// fillOperands completes an instruction shell from its tokens.
func (p *parser) fillOperands(fn *Func, in *Instr, toks []string, vals map[string]Value) error {
	switch in.op {
	case OpICmp, OpFCmp:
		pr, ok := predByName[toks[1]]
		if !ok {
			return p.errf("unknown predicate %q", toks[1])
		}
		in.Pred = pr
		t, err := ParseType(toks[2])
		if err != nil {
			return p.errf("%v", err)
		}
		if err := p.addOperand(in, toks[3], t, vals); err != nil {
			return err
		}
		return p.addOperand(in, toks[4], t, vals)
	case OpLoad:
		pt, _ := ParseType(toks[1])
		return p.addOperand(in, toks[2], pt, vals)
	case OpStore:
		vt, err := ParseType(toks[1])
		if err != nil {
			return p.errf("%v", err)
		}
		if err := p.addOperand(in, toks[2], vt, vals); err != nil {
			return err
		}
		return p.addOperand(in, toks[3], PtrTo(vt), vals)
	case OpAlloca:
		return nil
	case OpGEP, OpAtomicRMW:
		pt, _ := ParseType(toks[1])
		if err := p.addOperand(in, toks[2], pt, vals); err != nil {
			return err
		}
		return p.addOperand(in, toks[3], I64, vals)
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpPtrToInt, OpIntToPtr, OpBitcast:
		ft, err := ParseType(toks[1])
		if err != nil {
			return p.errf("%v", err)
		}
		return p.addOperand(in, toks[2], ft, vals)
	case OpPhi:
		// phi <ty> [v, %bb] [v, %bb] ... (commas removed by tokenizer)
		i := 2
		for i+3 < len(toks)+1 && i < len(toks) {
			if toks[i] != "[" {
				return p.errf("malformed phi at token %q", toks[i])
			}
			if err := p.addOperand(in, toks[i+1], in.typ, vals); err != nil {
				return err
			}
			b, err := p.block(fn, toks[i+2])
			if err != nil {
				return err
			}
			in.Incoming = append(in.Incoming, b)
			if toks[i+3] != "]" {
				return p.errf("malformed phi, expected ']'")
			}
			i += 4
		}
		return nil
	case OpSelect:
		if err := p.addOperand(in, toks[1], I1, vals); err != nil {
			return err
		}
		if err := p.addOperand(in, toks[3], in.typ, vals); err != nil {
			return err
		}
		return p.addOperand(in, toks[4], in.typ, vals)
	case OpCall:
		// call <ty> @name ( t a t a ... )
		cname := strings.TrimPrefix(toks[2], "@")
		callee := p.mod.FuncByName(cname)
		if callee == nil {
			return p.errf("undefined function @%s", cname)
		}
		in.Callee = callee
		i := 4 // skip "("
		arg := 0
		for i < len(toks) && toks[i] != ")" {
			t, err := ParseType(toks[i])
			if err != nil {
				return p.errf("%v", err)
			}
			if err := p.addOperand(in, toks[i+1], t, vals); err != nil {
				return err
			}
			i += 2
			arg++
		}
		if arg != len(callee.Params()) {
			return p.errf("call @%s: want %d args, got %d", cname, len(callee.Params()), arg)
		}
		return nil
	case OpBr:
		b, err := p.block(fn, toks[1])
		if err != nil {
			return err
		}
		in.Targets = []*Block{b}
		return nil
	case OpCondBr:
		if err := p.addOperand(in, toks[1], I1, vals); err != nil {
			return err
		}
		t1, err := p.block(fn, toks[2])
		if err != nil {
			return err
		}
		t2, err := p.block(fn, toks[3])
		if err != nil {
			return err
		}
		in.Targets = []*Block{t1, t2}
		return nil
	case OpRet:
		if len(toks) == 2 && toks[1] == "void" {
			return nil
		}
		t, err := ParseType(toks[1])
		if err != nil {
			return p.errf("%v", err)
		}
		return p.addOperand(in, toks[2], t, vals)
	case OpTrap:
		return p.addOperand(in, toks[1], I64, vals)
	default: // binary/logical
		t := in.typ
		if err := p.addOperand(in, toks[2], t, vals); err != nil {
			return err
		}
		return p.addOperand(in, toks[3], t, vals)
	}
}

// tokenize splits an instruction body into tokens, treating commas and
// parentheses/brackets as separators ('[', ']', '(' and ')' are kept as
// standalone tokens).
func tokenize(s string) []string {
	var toks []string
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case ' ', '\t', ',':
			flush()
		case '(', ')', '[', ']':
			flush()
			toks = append(toks, string(c))
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return toks
}
