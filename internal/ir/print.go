package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR syntax accepted by Parse.
func Print(m *Module) string {
	var sb strings.Builder
	for i, f := range m.funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Func) {
	if f.Builtin {
		sb.WriteString("builtin @")
		sb.WriteString(f.name)
		sb.WriteByte('(')
		for i, p := range f.params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Type().String())
		}
		sb.WriteString(") ")
		sb.WriteString(f.retType.String())
		sb.WriteByte('\n')
		return
	}
	sb.WriteString("func @")
	sb.WriteString(f.name)
	sb.WriteByte('(')
	for i, p := range f.params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type().String())
		sb.WriteString(" %")
		sb.WriteString(p.name)
	}
	sb.WriteString(") ")
	sb.WriteString(f.retType.String())
	sb.WriteString(" {\n")
	for _, b := range f.blocks {
		sb.WriteString(b.name)
		sb.WriteString(":\n")
		for _, in := range b.instrs {
			sb.WriteString("  ")
			sb.WriteString(printInstr(in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
}

// printInstr renders a single instruction.
func printInstr(in *Instr) string {
	var sb strings.Builder
	if in.HasResult() {
		sb.WriteByte('%')
		sb.WriteString(in.name)
		sb.WriteString(" = ")
	}
	switch in.op {
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s %s, %s", in.op, in.Pred,
			in.Operand(0).Type(), in.Operand(0).Ref(), in.Operand(1).Ref())
	case OpLoad:
		fmt.Fprintf(&sb, "load %s %s", in.Operand(0).Type(), in.Operand(0).Ref())
	case OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s", in.Operand(0).Type(), in.Operand(0).Ref(), in.Operand(1).Ref())
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %s, %d", in.typ.Elem(), in.AllocElems)
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s %s, %s", in.Operand(0).Type(), in.Operand(0).Ref(), in.Operand(1).Ref())
	case OpAtomicRMW:
		fmt.Fprintf(&sb, "atomicrmw %s %s, %s", in.Operand(0).Type(), in.Operand(0).Ref(), in.Operand(1).Ref())
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpPtrToInt, OpIntToPtr, OpBitcast:
		fmt.Fprintf(&sb, "%s %s %s to %s", in.op, in.Operand(0).Type(), in.Operand(0).Ref(), in.typ)
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.typ)
		for i := range in.operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %%%s]", in.Operand(i).Ref(), in.Incoming[i].name)
		}
	case OpSelect:
		fmt.Fprintf(&sb, "select %s, %s %s, %s", in.Operand(0).Ref(),
			in.typ, in.Operand(1).Ref(), in.Operand(2).Ref())
	case OpCall:
		fmt.Fprintf(&sb, "call %s @%s(", in.typ, in.Callee.name)
		for i, a := range in.operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", a.Type(), a.Ref())
		}
		sb.WriteByte(')')
	case OpBr:
		fmt.Fprintf(&sb, "br %%%s", in.Targets[0].name)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %%%s, %%%s", in.Operand(0).Ref(), in.Targets[0].name, in.Targets[1].name)
	case OpRet:
		if len(in.operands) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s %s", in.Operand(0).Type(), in.Operand(0).Ref())
		}
	case OpTrap:
		fmt.Fprintf(&sb, "trap %s", in.Operand(0).Ref())
	default: // binary and logical operations
		fmt.Fprintf(&sb, "%s %s %s, %s", in.op, in.typ, in.Operand(0).Ref(), in.Operand(1).Ref())
	}
	if in.Prot == ProtDup {
		sb.WriteString(" ;dup")
	} else if in.Prot == ProtCheck {
		sb.WriteString(" ;check")
	}
	return sb.String()
}
