package ir

// Mem2Reg promotes single-element stack allocations whose address never
// escapes (used only as the pointer operand of loads and stores) into
// SSA registers, inserting PHI nodes at iterated dominance frontiers.
// It mirrors LLVM's mem2reg pass and gives the IR the PHI structure the
// paper's feature 18 observes. Returns the number of promoted allocas.
func Mem2Reg(f *Func) int {
	if f.Builtin || len(f.blocks) == 0 {
		return 0
	}
	dom := ComputeDom(f)
	df := dom.Frontier()

	var promoted int
	for _, alloca := range promotableAllocas(f, dom) {
		promoteAlloca(f, alloca, dom, df)
		promoted++
	}
	return promoted
}

// promotableAllocas returns allocas that can be rewritten into SSA
// form: one element, reachable block, and every use is a load from it
// or a store to it (never storing the pointer itself).
func promotableAllocas(f *Func, dom *DomTree) []*Instr {
	var out []*Instr
	for _, b := range f.blocks {
		if !dom.Reachable(b) {
			continue
		}
		for _, in := range b.instrs {
			if in.op != OpAlloca || in.AllocElems != 1 {
				continue
			}
			ok := true
			for _, u := range in.users {
				switch {
				case u.op == OpLoad:
				case u.op == OpStore && u.Operand(1) == in && u.Operand(0) != in:
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
			if ok {
				out = append(out, in)
			}
		}
	}
	return out
}

func promoteAlloca(f *Func, alloca *Instr, dom *DomTree, df map[*Block][]*Block) {
	elem := alloca.typ.Elem()

	// Blocks containing stores (definitions).
	defBlocks := map[*Block]bool{}
	for _, u := range alloca.users {
		if u.op == OpStore {
			defBlocks[u.block] = true
		}
	}

	// Place PHIs at the iterated dominance frontier of the def blocks.
	phiAt := map[*Block]*Instr{}
	work := make([]*Block, 0, len(defBlocks))
	for b := range defBlocks {
		work = append(work, b)
	}
	// Deterministic order.
	orderBlocks(f, work)
	inWork := map[*Block]bool{}
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, fr := range df[b] {
			if phiAt[fr] != nil {
				continue
			}
			phi := &Instr{op: OpPhi, typ: elem, name: f.genName()}
			// Insert at block head.
			fr.instrs = append(fr.instrs, nil)
			copy(fr.instrs[1:], fr.instrs)
			fr.instrs[0] = phi
			phi.block = fr
			phiAt[fr] = phi
			if !inWork[fr] {
				inWork[fr] = true
				work = append(work, fr)
			}
		}
	}

	// Rename along the dominator tree.
	var rename func(b *Block, cur Value)
	rename = func(b *Block, cur Value) {
		if phi := phiAt[b]; phi != nil {
			cur = phi
		}
		for _, in := range append([]*Instr(nil), b.instrs...) {
			switch {
			case in.op == OpLoad && in.Operand(0) == alloca:
				v := cur
				if v == nil {
					v = zeroValue(elem) // load before any store: zero init
				}
				in.ReplaceAllUsesWith(v)
				b.Remove(in)
			case in.op == OpStore && in.NumOperands() == 2 && in.Operand(1) == alloca:
				cur = in.Operand(0)
				b.Remove(in)
			}
		}
		for _, s := range b.Succs() {
			if phi := phiAt[s]; phi != nil {
				v := cur
				if v == nil {
					v = zeroValue(elem)
				}
				AddIncoming(phi, v, b)
			}
		}
		for _, k := range dom.Children(b) {
			rename(k, cur)
		}
	}
	rename(f.Entry(), nil)

	if len(alloca.users) == 0 {
		alloca.block.Remove(alloca)
	}
}

// zeroValue returns the zero constant of type t (our memory model zero
// initializes stack slots, so this matches runtime semantics).
func zeroValue(t *Type) Value {
	switch {
	case t.IsFloat():
		return ConstFloat(0)
	case t.IsPtr():
		return NullPtr(t)
	default:
		return ConstInt(t, 0)
	}
}

// orderBlocks sorts blocks by their layout position for determinism.
func orderBlocks(f *Func, bs []*Block) {
	pos := map[*Block]int{}
	for i, b := range f.blocks {
		pos[b] = i
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && pos[bs[j]] < pos[bs[j-1]]; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
