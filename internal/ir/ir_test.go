package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeBasics(t *testing.T) {
	cases := []struct {
		typ  *Type
		str  string
		size int64
		bits int
	}{
		{Void, "void", 0, 0},
		{I1, "i1", 1, 1},
		{I8, "i8", 1, 8},
		{I32, "i32", 4, 32},
		{I64, "i64", 8, 64},
		{F64, "f64", 8, 64},
		{PtrTo(F64), "f64*", 8, 64},
		{PtrTo(PtrTo(I64)), "i64**", 8, 64},
	}
	for _, c := range cases {
		if c.typ.String() != c.str {
			t.Errorf("String() = %q, want %q", c.typ.String(), c.str)
		}
		if c.typ.Size() != c.size {
			t.Errorf("%s Size() = %d, want %d", c.str, c.typ.Size(), c.size)
		}
		if c.typ.Bits() != c.bits {
			t.Errorf("%s Bits() = %d, want %d", c.str, c.typ.Bits(), c.bits)
		}
		if c.typ != Void {
			got, err := ParseType(c.str)
			if err != nil || got != c.typ {
				t.Errorf("ParseType(%q) = %v, %v; want interned %v", c.str, got, err, c.typ)
			}
		}
	}
	if PtrTo(F64) != PtrTo(F64) {
		t.Error("pointer types not interned")
	}
	if _, err := ParseType("void*"); err == nil {
		t.Error("pointer to void accepted")
	}
	if _, err := ParseType("i7"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestConstTruncation(t *testing.T) {
	if ConstInt(I8, 300).Int != 44 {
		t.Errorf("i8 300 = %d, want 44", ConstInt(I8, 300).Int)
	}
	if ConstInt(I8, -1).Int != -1 {
		t.Error("i8 -1 must stay -1")
	}
	if ConstInt(I1, 3).Int != 1 {
		t.Error("i1 3 must truncate to 1")
	}
	if ConstInt(I32, 1<<40).Int != 0 {
		t.Error("i32 2^40 must truncate to 0")
	}
	if ConstBool(true).Int != 1 || ConstBool(false).Int != 0 {
		t.Error("bool constants")
	}
}

func TestFloatConstantRoundtrip(t *testing.T) {
	// Every float64 (including NaN payloads and infinities) must print
	// to a token the parser reads back to identical bits.
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		tok := formatFloat(v)
		m := NewModule()
		fn := m.NewFunc("main", Void, nil, nil)
		b := NewBuilder(fn.NewBlock("entry"))
		b.FAdd(ConstFloat(v), ConstFloat(0))
		b.Ret(nil)
		src := Print(m)
		m2, err := Parse(src)
		if err != nil {
			t.Logf("parse error for %q: %v", tok, err)
			return false
		}
		in := m2.FuncByName("main").Entry().Instrs()[0]
		c := in.Operand(0).(*Const)
		return math.Float64bits(c.Float) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUseDefChains(t *testing.T) {
	m := NewModule()
	fn := m.NewFunc("f", I64, []string{"a"}, []*Type{I64})
	b := NewBuilder(fn.NewBlock("entry"))
	a := fn.Params()[0]
	x := b.Add(a, ConstInt(I64, 1))
	y := b.Mul(x, x)
	b.Ret(y)

	if len(x.Users()) != 2 {
		t.Fatalf("x has %d users, want 2 (mul uses it twice)", len(x.Users()))
	}
	// ReplaceAllUsesWith rewires both uses.
	z := b2Add(fn, a)
	x.ReplaceAllUsesWith(z)
	if len(x.Users()) != 0 {
		t.Fatal("x still has users after RAUW")
	}
	if y.Operand(0) != z || y.Operand(1) != z {
		t.Fatal("mul operands not rewritten")
	}
	// Removing x must now succeed.
	x.Block().Remove(x)
	if err := Verify(m); err != nil {
		t.Fatalf("verify after RAUW/remove: %v", err)
	}
}

// b2Add appends "a+2" at the start of the entry block.
func b2Add(fn *Func, a Value) *Instr {
	entry := fn.Entry()
	bld := NewBuilder(entry)
	bld.SetInsertBefore(entry.Instrs()[0])
	return bld.Add(a, ConstInt(I64, 2))
}

func TestVerifyRejectsBrokenModules(t *testing.T) {
	build := func(f func(*Module)) error {
		m := NewModule()
		f(m)
		return Verify(m)
	}
	cases := []struct {
		name string
		f    func(*Module)
	}{
		{"no blocks", func(m *Module) {
			m.NewFunc("main", Void, nil, nil)
		}},
		{"no terminator", func(m *Module) {
			fn := m.NewFunc("main", Void, nil, nil)
			b := NewBuilder(fn.NewBlock("entry"))
			b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
		}},
		{"ret type mismatch", func(m *Module) {
			fn := m.NewFunc("main", I64, nil, nil)
			b := NewBuilder(fn.NewBlock("entry"))
			b.Ret(ConstFloat(1))
		}},
		{"use before def", func(m *Module) {
			fn := m.NewFunc("main", Void, nil, nil)
			entry := fn.NewBlock("entry")
			b := NewBuilder(entry)
			x := b.Add(ConstInt(I64, 1), ConstInt(I64, 1))
			b.Ret(nil)
			y := NewInstr(OpAdd, I64, []Value{x, x})
			y.SetName("y")
			entry.InsertBefore(y, x) // y uses x but precedes it
		}},
		{"phi bad incoming", func(m *Module) {
			fn := m.NewFunc("main", Void, nil, nil)
			entry := fn.NewBlock("entry")
			other := fn.NewBlock("other")
			b := NewBuilder(entry)
			b.Br(other)
			b.SetBlock(other)
			phi := b.Phi(I64)
			AddIncoming(phi, ConstInt(I64, 1), other) // not a predecessor
			b.Ret(nil)
		}},
		{"call arity", func(m *Module) {
			callee := m.NewBuiltin("sqrt", F64, F64)
			fn := m.NewFunc("main", Void, nil, nil)
			b := NewBuilder(fn.NewBlock("entry"))
			in := NewInstr(OpCall, F64, nil)
			in.Callee = callee
			in.SetName("r")
			fn.Entry().Append(in)
			b.Ret(nil)
		}},
	}
	for _, c := range cases {
		if err := build(c.f); err == nil {
			t.Errorf("%s: verify accepted invalid module", c.name)
		}
	}
}

func TestDominators(t *testing.T) {
	// Diamond: entry -> a, b -> merge; loop back merge -> a.
	m := NewModule()
	fn := m.NewFunc("main", Void, nil, nil)
	entry := fn.NewBlock("entry")
	a := fn.NewBlock("a")
	bb := fn.NewBlock("b")
	merge := fn.NewBlock("merge")
	exit := fn.NewBlock("exit")

	bld := NewBuilder(entry)
	cond := bld.ICmp(PredLT, ConstInt(I64, 1), ConstInt(I64, 2))
	bld.CondBr(cond, a, bb)
	bld.SetBlock(a)
	bld.Br(merge)
	bld.SetBlock(bb)
	bld.Br(merge)
	bld.SetBlock(merge)
	c2 := bld.ICmp(PredGT, ConstInt(I64, 3), ConstInt(I64, 4))
	bld.CondBr(c2, a, exit)
	bld.SetBlock(exit)
	bld.Ret(nil)

	dom := ComputeDom(fn)
	if dom.IDom(entry) != nil {
		t.Error("entry must have no idom")
	}
	if dom.IDom(merge) != entry {
		t.Errorf("idom(merge) = %v, want entry (a is in a loop)", dom.IDom(merge).Name())
	}
	if dom.IDom(a) != entry || dom.IDom(bb) != entry {
		t.Error("idom of diamond arms must be entry")
	}
	if dom.IDom(exit) != merge {
		t.Error("idom(exit) must be merge")
	}
	if !dom.Dominates(entry, exit) || dom.Dominates(a, exit) {
		t.Error("dominance relation wrong")
	}
	// Dominance frontier: a and b have {merge}; merge has {a} (back edge).
	df := dom.Frontier()
	if len(df[a]) != 1 || df[a][0] != merge {
		t.Errorf("DF(a) = %v", names(df[a]))
	}
	if len(df[merge]) != 1 || df[merge][0] != a {
		t.Errorf("DF(merge) = %v, want [a]", names(df[merge]))
	}

	// The merge->a edge is a retreat edge into a block that does not
	// dominate its tail: no *natural* loop exists in this CFG.
	li := ComputeLoops(fn, dom)
	if len(li.Loops) != 0 {
		t.Fatalf("found %d natural loops in an irreducible CFG, want 0", len(li.Loops))
	}
}

func TestNaturalLoops(t *testing.T) {
	// entry -> header; header -> body | exit; body -> header.
	m := NewModule()
	fn := m.NewFunc("main", Void, nil, nil)
	entry := fn.NewBlock("entry")
	header := fn.NewBlock("header")
	body := fn.NewBlock("body")
	exit := fn.NewBlock("exit")

	bld := NewBuilder(entry)
	bld.Br(header)
	bld.SetBlock(header)
	c := bld.ICmp(PredLT, ConstInt(I64, 0), ConstInt(I64, 1))
	bld.CondBr(c, body, exit)
	bld.SetBlock(body)
	bld.Br(header)
	bld.SetBlock(exit)
	bld.Ret(nil)

	dom := ComputeDom(fn)
	li := ComputeLoops(fn, dom)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != header {
		t.Errorf("loop header = %s, want header", l.Header.Name())
	}
	if !li.InLoop(header) || !li.InLoop(body) || li.InLoop(entry) || li.InLoop(exit) {
		t.Error("loop membership wrong")
	}
}

func names(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name())
	}
	return out
}

func TestSplitBlockBefore(t *testing.T) {
	m := NewModule()
	fn := m.NewFunc("main", Void, nil, nil)
	entry := fn.NewBlock("entry")
	next := fn.NewBlock("next")
	bld := NewBuilder(entry)
	x := bld.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	term := bld.Br(next)
	bld.SetBlock(next)
	phi := bld.Phi(I64)
	AddIncoming(phi, x, entry)
	bld.Ret(nil)

	nb := SplitBlockBefore(entry, term)
	if entry.Terminator().Op() != OpBr || entry.Terminator().Targets[0] != nb {
		t.Fatal("entry must branch to the split block")
	}
	if nb.Instrs()[0] != term {
		t.Fatal("terminator must move to the split block")
	}
	if phi.Incoming[0] != nb {
		t.Fatal("phi incoming must be remapped to the split block")
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify after split: %v", err)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	src := `
func @main() void {
entry:
  br %live
dead:
  %x = add i64 1, 2
  br %live
live:
  %p = phi i64 [0, %entry], [%x, %dead]
  ret void
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := m.FuncByName("main")
	if n := RemoveUnreachable(fn); n != 1 {
		t.Fatalf("removed %d blocks, want 1", n)
	}
	if fn.BlockByName("dead") != nil {
		t.Fatal("dead block still present")
	}
	phi := fn.BlockByName("live").Phis()[0]
	if phi.NumOperands() != 1 {
		t.Fatalf("phi has %d incoming after cleanup, want 1", phi.NumOperands())
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestDCE(t *testing.T) {
	src := `
func @main() void {
entry:
  %dead1 = add i64 1, 2
  %dead2 = mul i64 %dead1, 3
  %keep = sdiv i64 10, 2
  ret void
}
`
	m := MustParse(src)
	fn := m.FuncByName("main")
	removed := DCE(fn)
	if removed != 2 {
		t.Fatalf("DCE removed %d, want 2 (sdiv may trap and must stay)", removed)
	}
	if fn.NumInstrs() != 2 { // sdiv + ret
		t.Fatalf("%d instrs left, want 2", fn.NumInstrs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"garbage",
		"func @f() void {", // unterminated
		"func @f() void {\nentry:\n  frob i64 1, 2\n}",   // unknown op
		"func @f() void {\nentry:\n  ret i64 %nope\n}",   // undefined value
		"func @f() void {\nentry:\n  br %missing\n}",     // undefined block
		"builtin @b(i64 i64",                             // malformed builtin
		"func @f() void {\n  %x = add i64 1, 2\n}",       // instr before label
		"func @f() void {\nentry:\n  %x = add i9 1,2\n}", // bad type
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestPrintContainsProtTags(t *testing.T) {
	m := MustParse("func @main() void {\nentry:\n  %x = add i64 1, 2\n  ret void\n}")
	in := m.FuncByName("main").Entry().Instrs()[0]
	in.Prot = ProtDup
	if !strings.Contains(Print(m), ";dup") {
		t.Error("dup tag not printed")
	}
}
