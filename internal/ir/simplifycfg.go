package ir

// SimplifyCFG performs three classic clean-ups to a fixpoint:
//
//  1. condbr on a constant condition becomes an unconditional br;
//  2. condbr with identical targets becomes a br;
//  3. a block whose single predecessor ends in an unconditional br is
//     merged into that predecessor (when it is the predecessor's only
//     successor and starts with no PHI nodes).
//
// Unreachable blocks produced along the way are removed. Returns the
// number of rewrites applied.
func SimplifyCFG(f *Func) int {
	total := 0
	for {
		n := 0
		n += foldConstBranches(f)
		n += mergeBlocks(f)
		if n == 0 {
			break
		}
		total += n
		RemoveUnreachable(f)
	}
	return total
}

func foldConstBranches(f *Func) int {
	n := 0
	for _, b := range f.blocks {
		t := b.Terminator()
		if t == nil || t.op != OpCondBr {
			continue
		}
		var target *Block
		var dead *Block
		if c, ok := t.Operand(0).(*Const); ok {
			if c.Int != 0 {
				target, dead = t.Targets[0], t.Targets[1]
			} else {
				target, dead = t.Targets[1], t.Targets[0]
			}
		} else if t.Targets[0] == t.Targets[1] {
			target = t.Targets[0]
		}
		if target == nil {
			continue
		}
		// Remove this block from the dead target's phis (if it no
		// longer branches there).
		if dead != nil && dead != target {
			for _, phi := range dead.Phis() {
				for i := 0; i < len(phi.Incoming); {
					if phi.Incoming[i] == b {
						phi.removeIncoming(i)
					} else {
						i++
					}
				}
			}
		}
		br := NewInstr(OpBr, Void, nil)
		br.Targets = []*Block{target}
		br.Prot = t.Prot
		br.SiteID = t.SiteID
		b.InsertBefore(br, t)
		t.ReplaceAllUsesWith(nil) // terminators have no users; defensive
		b.Remove(t)
		n++
	}
	return n
}

func mergeBlocks(f *Func) int {
	n := 0
	for _, b := range append([]*Block(nil), f.blocks...) {
		t := b.Terminator()
		if t == nil || t.op != OpBr {
			continue
		}
		succ := t.Targets[0]
		if succ == b || succ == f.Entry() {
			continue
		}
		preds := succ.Preds()
		if len(preds) != 1 || preds[0] != b {
			continue
		}
		if len(succ.Phis()) > 0 {
			// A phi with a single incoming is just a copy; resolve it.
			for _, phi := range succ.Phis() {
				phi.ReplaceAllUsesWith(phi.Operand(0))
				succ.Remove(phi)
			}
		}
		// Splice succ's instructions into b, dropping b's br.
		b.Remove(t)
		for _, in := range succ.instrs {
			in.block = b
			b.instrs = append(b.instrs, in)
		}
		// Successors' phis that referenced succ now come from b.
		if nt := b.Terminator(); nt != nil {
			for _, s := range nt.Targets {
				for _, phi := range s.Phis() {
					for i, inc := range phi.Incoming {
						if inc == succ {
							phi.Incoming[i] = b
						}
					}
				}
			}
		}
		succ.instrs = nil
		f.RemoveBlock(succ)
		n++
	}
	return n
}

// Optimize runs the full opt-in optimization pipeline on every function
// of m: unreachable-code removal, mem2reg, constant folding, CFG
// simplification, and dead-code elimination, iterated twice (folding
// exposes branch simplifications which expose more folding).
func Optimize(m *Module) {
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		RemoveUnreachable(f)
		Mem2Reg(f)
		for i := 0; i < 2; i++ {
			ConstFold(f)
			SimplifyCFG(f)
			DCE(f)
		}
	}
}
