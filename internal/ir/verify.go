package ir

import "fmt"

// Verify checks module well-formedness: every block ends in exactly one
// terminator, operand types match opcode rules, PHI nodes agree with
// their block's predecessors, def-use chains are consistent, and every
// use is dominated by its definition (SSA property).
func Verify(m *Module) error {
	for _, f := range m.funcs {
		if f.Builtin {
			if len(f.blocks) != 0 {
				return fmt.Errorf("ir: builtin @%s has a body", f.name)
			}
			continue
		}
		if err := verifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.blocks) == 0 {
		return fmt.Errorf("ir: function @%s has no blocks", f.name)
	}
	errf := func(in *Instr, format string, args ...interface{}) error {
		loc := fmt.Sprintf("@%s", f.name)
		if in != nil {
			loc += ": " + in.String()
		}
		return fmt.Errorf("ir: %s: %s", loc, fmt.Sprintf(format, args...))
	}

	for _, b := range f.blocks {
		if len(b.instrs) == 0 {
			return fmt.Errorf("ir: @%s: empty block %%%s", f.name, b.name)
		}
		for i, in := range b.instrs {
			isLast := i == len(b.instrs)-1
			if in.op.IsTerminator() != isLast {
				if isLast {
					return errf(in, "block %%%s does not end in a terminator", b.name)
				}
				return errf(in, "terminator in the middle of block %%%s", b.name)
			}
			if in.op == OpPhi && i > 0 && b.instrs[i-1].op != OpPhi {
				return errf(in, "phi after non-phi instruction")
			}
			if err := verifyInstr(f, b, in, errf); err != nil {
				return err
			}
			// def-use consistency: every instruction operand must list
			// this instruction among its users.
			for _, opnd := range in.operands {
				d, ok := opnd.(*Instr)
				if !ok {
					continue
				}
				found := false
				for _, u := range d.users {
					if u == in {
						found = true
						break
					}
				}
				if !found {
					return errf(in, "missing def-use edge from %%%s", d.name)
				}
				if d.block == nil || d.block.fn != f {
					return errf(in, "operand %%%s belongs to another function", d.name)
				}
			}
		}
	}

	// SSA dominance.
	dom := ComputeDom(f)
	for _, b := range f.blocks {
		if !dom.Reachable(b) {
			continue
		}
		for _, in := range b.instrs {
			for oi, opnd := range in.operands {
				d, ok := opnd.(*Instr)
				if !ok {
					continue
				}
				if in.op == OpPhi {
					// The operand must dominate the end of the incoming block.
					pred := in.Incoming[oi]
					if d.block != pred && !dom.Dominates(d.block, pred) {
						return errf(in, "phi operand %%%s does not dominate incoming block %%%s", d.name, pred.name)
					}
					continue
				}
				if !dom.DominatesInstr(d, in) {
					return errf(in, "use of %%%s is not dominated by its definition", d.name)
				}
			}
		}
	}
	return nil
}

func verifyInstr(f *Func, b *Block, in *Instr, errf func(*Instr, string, ...interface{}) error) error {
	wantOperands := func(n int) error {
		if len(in.operands) != n {
			return errf(in, "want %d operands, have %d", n, len(in.operands))
		}
		return nil
	}
	switch {
	case in.op.IsBinary():
		if err := wantOperands(2); err != nil {
			return err
		}
		if in.Operand(0).Type() != in.typ || in.Operand(1).Type() != in.typ {
			return errf(in, "binary operand type mismatch")
		}
		switch in.op {
		case OpFAdd, OpFSub, OpFMul, OpFDiv:
			if !in.typ.IsFloat() {
				return errf(in, "float op on non-float type %s", in.typ)
			}
		default:
			if !in.typ.IsInt() {
				return errf(in, "integer op on non-integer type %s", in.typ)
			}
		}
	case in.op == OpICmp:
		if err := wantOperands(2); err != nil {
			return err
		}
		t := in.Operand(0).Type()
		if !t.IsInt() && !t.IsPtr() {
			return errf(in, "icmp on non-integer type %s", t)
		}
		if in.Operand(1).Type() != t {
			return errf(in, "icmp operand type mismatch")
		}
	case in.op == OpFCmp:
		if err := wantOperands(2); err != nil {
			return err
		}
		if in.Operand(0).Type() != F64 || in.Operand(1).Type() != F64 {
			return errf(in, "fcmp on non-float operands")
		}
	case in.op == OpLoad:
		if err := wantOperands(1); err != nil {
			return err
		}
		pt := in.Operand(0).Type()
		if !pt.IsPtr() || pt.Elem() != in.typ {
			return errf(in, "load type mismatch")
		}
	case in.op == OpStore:
		if err := wantOperands(2); err != nil {
			return err
		}
		pt := in.Operand(1).Type()
		if !pt.IsPtr() || pt.Elem() != in.Operand(0).Type() {
			return errf(in, "store type mismatch")
		}
	case in.op == OpAlloca:
		if err := wantOperands(0); err != nil {
			return err
		}
		if !in.typ.IsPtr() || in.AllocElems <= 0 {
			return errf(in, "malformed alloca")
		}
	case in.op == OpGEP:
		if err := wantOperands(2); err != nil {
			return err
		}
		if in.Operand(0).Type() != in.typ || !in.typ.IsPtr() {
			return errf(in, "gep pointer type mismatch")
		}
		if in.Operand(1).Type() != I64 {
			return errf(in, "gep index must be i64")
		}
	case in.op == OpAtomicRMW:
		if err := wantOperands(2); err != nil {
			return err
		}
		if in.Operand(0).Type() != PtrTo(I64) || in.Operand(1).Type() != I64 {
			return errf(in, "atomicrmw type mismatch")
		}
	case in.op.IsCast():
		if err := wantOperands(1); err != nil {
			return err
		}
		if err := verifyCast(in); err != nil {
			return errf(in, "%v", err)
		}
	case in.op == OpPhi:
		preds := b.Preds()
		if len(in.operands) != len(in.Incoming) {
			return errf(in, "phi operands/incoming mismatch")
		}
		if len(in.operands) != len(preds) {
			return errf(in, "phi has %d incoming, block has %d predecessors", len(in.operands), len(preds))
		}
		for i, inc := range in.Incoming {
			if !containsBlock(preds, inc) {
				return errf(in, "phi incoming %%%s is not a predecessor", inc.name)
			}
			if in.Operand(i).Type() != in.typ {
				return errf(in, "phi operand %d type mismatch", i)
			}
		}
	case in.op == OpSelect:
		if err := wantOperands(3); err != nil {
			return err
		}
		if in.Operand(0).Type() != I1 || in.Operand(1).Type() != in.typ || in.Operand(2).Type() != in.typ {
			return errf(in, "select type mismatch")
		}
	case in.op == OpCall:
		if in.Callee == nil {
			return errf(in, "call without callee")
		}
		if in.Callee.mod != f.mod {
			return errf(in, "cross-module call")
		}
		if len(in.operands) != len(in.Callee.params) {
			return errf(in, "call arity mismatch")
		}
		for i, a := range in.operands {
			if a.Type() != in.Callee.params[i].Type() {
				return errf(in, "call arg %d type mismatch", i)
			}
		}
		if in.typ != in.Callee.retType {
			return errf(in, "call result type mismatch")
		}
	case in.op == OpBr:
		if len(in.Targets) != 1 {
			return errf(in, "br must have 1 target")
		}
	case in.op == OpCondBr:
		if err := wantOperands(1); err != nil {
			return err
		}
		if in.Operand(0).Type() != I1 || len(in.Targets) != 2 {
			return errf(in, "malformed condbr")
		}
	case in.op == OpRet:
		if f.retType == Void {
			if len(in.operands) != 0 {
				return errf(in, "ret with value in void function")
			}
		} else {
			if len(in.operands) != 1 || in.Operand(0).Type() != f.retType {
				return errf(in, "ret type mismatch (want %s)", f.retType)
			}
		}
	case in.op == OpTrap:
		if err := wantOperands(1); err != nil {
			return err
		}
	default:
		return errf(in, "unknown opcode")
	}
	// Targets must belong to this function.
	for _, t := range in.Targets {
		if t.fn != f {
			return errf(in, "branch target in another function")
		}
	}
	return nil
}

func verifyCast(in *Instr) error {
	from := in.Operand(0).Type()
	to := in.typ
	switch in.op {
	case OpTrunc:
		if !from.IsInt() || !to.IsInt() || from.Size() <= to.Size() {
			return fmt.Errorf("invalid trunc %s to %s", from, to)
		}
	case OpZExt, OpSExt:
		if !from.IsInt() || !to.IsInt() || from.Size() >= to.Size() {
			return fmt.Errorf("invalid ext %s to %s", from, to)
		}
	case OpSIToFP:
		if !from.IsInt() || !to.IsFloat() {
			return fmt.Errorf("invalid sitofp %s to %s", from, to)
		}
	case OpFPToSI:
		if !from.IsFloat() || !to.IsInt() {
			return fmt.Errorf("invalid fptosi %s to %s", from, to)
		}
	case OpPtrToInt:
		if !from.IsPtr() || to != I64 {
			return fmt.Errorf("invalid ptrtoint %s to %s", from, to)
		}
	case OpIntToPtr:
		if from != I64 || !to.IsPtr() {
			return fmt.Errorf("invalid inttoptr %s to %s", from, to)
		}
	case OpBitcast:
		ok := (from == F64 && to == I64) || (from == I64 && to == F64)
		if !ok {
			return fmt.Errorf("invalid bitcast %s to %s", from, to)
		}
	}
	return nil
}
