package ir

import (
	"fmt"
	"strconv"
)

// Func is a function: a signature plus a list of basic blocks. Builtin
// functions (math intrinsics, runtime calls) have no blocks and are
// executed natively by the interpreter.
type Func struct {
	name    string
	params  []*Param
	retType *Type
	blocks  []*Block
	mod     *Module

	// Builtin marks functions implemented natively by the interpreter
	// (sqrt, mpi_rank, out_f64, ...). Builtins have no body.
	Builtin bool

	nextName int // counter for automatic SSA names
}

// Name returns the function name without the leading '@'.
func (f *Func) Name() string { return f.name }

// Params returns the formal parameters.
func (f *Func) Params() []*Param { return f.params }

// RetType returns the declared return type.
func (f *Func) RetType() *Type { return f.retType }

// Module returns the module the function belongs to.
func (f *Func) Module() *Module { return f.mod }

// Blocks returns the function's basic blocks in layout order; the entry
// block is first.
func (f *Func) Blocks() []*Block { return f.blocks }

// Entry returns the entry block, or nil for builtins.
func (f *Func) Entry() *Block {
	if len(f.blocks) == 0 {
		return nil
	}
	return f.blocks[0]
}

// NumInstrs returns the total number of instructions in the function
// (the paper's feature 21).
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.blocks {
		n += len(b.instrs)
	}
	return n
}

// NewBlock appends a new basic block with the given label. An empty
// label gets an automatically generated one.
func (f *Func) NewBlock(label string) *Block {
	if label == "" {
		label = "bb" + strconv.Itoa(len(f.blocks))
	}
	b := &Block{name: f.uniqueBlockName(label), fn: f}
	f.blocks = append(f.blocks, b)
	return b
}

func (f *Func) uniqueBlockName(label string) string {
	if f.BlockByName(label) == nil {
		return label
	}
	for i := 1; ; i++ {
		cand := label + "." + strconv.Itoa(i)
		if f.BlockByName(cand) == nil {
			return cand
		}
	}
}

// BlockByName returns the block with the given label, or nil.
func (f *Func) BlockByName(label string) *Block {
	for _, b := range f.blocks {
		if b.name == label {
			return b
		}
	}
	return nil
}

// RemoveBlock removes an (unreachable) block from the function.
func (f *Func) RemoveBlock(b *Block) {
	for i, x := range f.blocks {
		if x == b {
			f.blocks = append(f.blocks[:i], f.blocks[i+1:]...)
			return
		}
	}
}

// genName produces a fresh SSA register name.
func (f *Func) genName() string {
	f.nextName++
	return "t" + strconv.Itoa(f.nextName)
}

// Module is a translation unit: a set of functions. The function named
// "main" is the program entry point.
type Module struct {
	funcs      []*Func
	nextSiteID int
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{} }

// Funcs returns the module's functions in declaration order.
func (m *Module) Funcs() []*Func { return m.funcs }

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.funcs {
		if f.name == name {
			return f
		}
	}
	return nil
}

// NewFunc declares a new function in the module.
func (m *Module) NewFunc(name string, ret *Type, paramNames []string, paramTypes []*Type) *Func {
	if m.FuncByName(name) != nil {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	if len(paramNames) != len(paramTypes) {
		panic("ir: mismatched parameter names/types")
	}
	f := &Func{name: name, retType: ret, mod: m}
	for i := range paramNames {
		f.params = append(f.params, &Param{name: paramNames[i], typ: paramTypes[i], Index: i})
	}
	m.funcs = append(m.funcs, f)
	return f
}

// NewBuiltin declares a native (interpreter-implemented) function.
func (m *Module) NewBuiltin(name string, ret *Type, paramTypes ...*Type) *Func {
	names := make([]string, len(paramTypes))
	for i := range names {
		names[i] = "a" + strconv.Itoa(i)
	}
	f := m.NewFunc(name, ret, names, paramTypes)
	f.Builtin = true
	return f
}

// AssignSiteIDs walks every instruction of every non-builtin function
// and assigns module-unique SiteIDs to original (non-protection)
// instructions in deterministic order. It returns the number of sites.
// Protection instructions keep the SiteID of the instruction they
// shadow (set by the duplication pass).
func (m *Module) AssignSiteIDs() int {
	id := 0
	for _, f := range m.funcs {
		for _, b := range f.blocks {
			for _, in := range b.instrs {
				if in.Prot == ProtNone {
					in.SiteID = id
					id++
				}
			}
		}
	}
	m.nextSiteID = id
	return id
}

// NumSites returns the number of SiteIDs assigned by AssignSiteIDs.
func (m *Module) NumSites() int { return m.nextSiteID }

// InstrBySite returns a site-indexed table of original instructions.
// AssignSiteIDs must have been called.
func (m *Module) InstrBySite() []*Instr {
	table := make([]*Instr, m.nextSiteID)
	for _, f := range m.funcs {
		for _, b := range f.blocks {
			for _, in := range b.instrs {
				if in.Prot == ProtNone && in.SiteID >= 0 && in.SiteID < len(table) {
					table[in.SiteID] = in
				}
			}
		}
	}
	return table
}

// NumInstrs returns the total static instruction count of the module
// (Table 3 of the paper).
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.funcs {
		n += f.NumInstrs()
	}
	return n
}
