package ir

// Loop is a natural loop: a header block plus the set of blocks that
// can reach one of the header's back edges without passing through the
// header.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
}

// LoopInfo records, per function, which blocks are inside some natural
// loop (the paper's feature 17) and the loops themselves.
type LoopInfo struct {
	Loops  []*Loop
	inLoop map[*Block]bool
}

// ComputeLoops finds all natural loops of fn using back edges of the
// dominator tree (an edge t→h where h dominates t).
func ComputeLoops(fn *Func, dom *DomTree) *LoopInfo {
	li := &LoopInfo{inLoop: map[*Block]bool{}}
	loops := map[*Block]*Loop{} // by header: merge loops sharing a header
	for _, b := range dom.RPO() {
		for _, s := range b.Succs() {
			if !dom.Dominates(s, b) {
				continue
			}
			// b→s is a back edge with header s.
			l := loops[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				loops[s] = l
				li.Loops = append(li.Loops, l)
			}
			// Walk predecessors backwards from the latch.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range x.Preds() {
					if dom.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, l := range li.Loops {
		for b := range l.Blocks {
			li.inLoop[b] = true
		}
	}
	return li
}

// InLoop reports whether block b belongs to any natural loop.
func (li *LoopInfo) InLoop(b *Block) bool { return li.inLoop[b] }
