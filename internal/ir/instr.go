package ir

import "fmt"

// Op enumerates the instruction opcodes of the IR.
type Op int

const (
	// Integer arithmetic.
	OpAdd Op = iota
	OpSub
	OpMul
	OpSDiv
	OpSRem
	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	// Logical / bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	// Comparisons (produce i1).
	OpICmp
	OpFCmp
	// Memory.
	OpLoad
	OpStore
	OpAlloca
	OpGEP
	OpAtomicRMW // modeled atomic read-modify-write add on i64
	// Casts.
	OpTrunc
	OpZExt
	OpSExt
	OpSIToFP
	OpFPToSI
	OpPtrToInt
	OpIntToPtr
	OpBitcast // f64 <-> i64 bit reinterpretation
	// Other value-producing instructions.
	OpPhi
	OpSelect
	OpCall
	// Terminators.
	OpBr
	OpCondBr
	OpRet
	OpTrap // abnormal termination inserted by protection checks

	numOps
)

var opNames = [numOps]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpLoad: "load", OpStore: "store", OpAlloca: "alloca", OpGEP: "gep", OpAtomicRMW: "atomicrmw",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi", OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr",
	OpBitcast: "bitcast",
	OpPhi:     "phi", OpSelect: "select", OpCall: "call",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpTrap: "trap",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// opByName maps mnemonics back to opcodes for the parser.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, name := range opNames {
		m[name] = Op(op)
	}
	return m
}()

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpTrap:
		return true
	}
	return false
}

// IsBinary reports whether the opcode is a two-operand arithmetic or
// logical operation (the paper's feature 1).
func (o Op) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		return true
	}
	return false
}

// IsCast reports whether the opcode is a type conversion.
func (o Op) IsCast() bool {
	switch o {
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpPtrToInt, OpIntToPtr, OpBitcast:
		return true
	}
	return false
}

// IsLogical reports whether the opcode is a bitwise/logical operation
// (the paper's feature 5).
func (o Op) IsLogical() bool {
	switch o {
	case OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		return true
	}
	return false
}

// Pred is a comparison predicate for icmp/fcmp.
type Pred int

const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE

	numPreds
)

var predNames = [numPreds]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if p < 0 || p >= numPreds {
		return fmt.Sprintf("pred(%d)", int(p))
	}
	return predNames[p]
}

// predByName maps mnemonics back to predicates for the parser.
var predByName = map[string]Pred{
	"eq": PredEQ, "ne": PredNE, "lt": PredLT, "le": PredLE, "gt": PredGT, "ge": PredGE,
}

// ProtKind tags instructions added by the protection passes so that the
// fault injector and the reporters can distinguish them from original
// application code.
type ProtKind uint8

const (
	// ProtNone marks original application instructions.
	ProtNone ProtKind = iota
	// ProtDup marks shadow copies inserted by a duplication pass.
	ProtDup
	// ProtCheck marks comparison/branch instructions that validate a
	// duplication path.
	ProtCheck
)

// Instr is a single IR instruction. Value-producing instructions are
// themselves Values and can be used as operands of later instructions.
type Instr struct {
	op   Op
	typ  *Type
	name string // SSA register name (empty for void instructions)

	operands []Value
	users    []*Instr // def-use chain: instructions using this instruction
	block    *Block

	// Pred is the comparison predicate (icmp/fcmp only).
	Pred Pred
	// Callee is the called function (call only).
	Callee *Func
	// Incoming lists the predecessor block per operand (phi only),
	// parallel to the operand list.
	Incoming []*Block
	// Targets lists the successor blocks (br: 1, condbr: 2 [true, false]).
	Targets []*Block
	// AllocElems is the static element count of an alloca.
	AllocElems int64

	// SiteID is a module-unique identifier assigned to original
	// instructions; protection code inherits the SiteID of the
	// instruction it shadows. It keys feature vectors and the fault
	// injector's site table.
	SiteID int
	// Prot records whether the instruction is original code, a shadow
	// duplicate, or a protection check.
	Prot ProtKind
	// Shadow links a ProtDup instruction back to the original it copies.
	Shadow *Instr
}

// NewInstr creates a detached instruction with the given opcode, result
// type and operands, wiring def-use edges. The caller must place it
// into a block (Append/InsertBefore/InsertAfter) and, for named values,
// set a name. Used by transformation passes; the Builder is the usual
// construction path.
func NewInstr(op Op, typ *Type, operands []Value) *Instr {
	in := &Instr{op: op, typ: typ}
	for _, v := range operands {
		in.operands = append(in.operands, v)
		if d, ok := v.(*Instr); ok {
			d.users = append(d.users, in)
		}
	}
	return in
}

// Op returns the opcode.
func (in *Instr) Op() Op { return in.op }

// Type implements Value.
func (in *Instr) Type() *Type { return in.typ }

// Ref implements Value.
func (in *Instr) Ref() string { return "%" + in.name }

// Name returns the SSA register name without the leading '%'.
func (in *Instr) Name() string { return in.name }

// SetName renames the instruction's SSA register.
func (in *Instr) SetName(n string) { in.name = n }

// Block returns the basic block containing the instruction.
func (in *Instr) Block() *Block { return in.block }

// Operands returns the operand list. The returned slice must not be
// mutated directly; use SetOperand.
func (in *Instr) Operands() []Value { return in.operands }

// Operand returns the i-th operand.
func (in *Instr) Operand(i int) Value { return in.operands[i] }

// NumOperands returns the number of operands.
func (in *Instr) NumOperands() int { return len(in.operands) }

// SetOperand replaces the i-th operand, maintaining def-use chains.
func (in *Instr) SetOperand(i int, v Value) {
	if old, ok := in.operands[i].(*Instr); ok {
		old.removeUser(in)
	}
	in.operands[i] = v
	if nv, ok := v.(*Instr); ok {
		nv.users = append(nv.users, in)
	}
}

// Users returns the instructions that use this instruction as an
// operand (the def-use chain). An instruction using this value several
// times appears once per use.
func (in *Instr) Users() []*Instr { return in.users }

func (in *Instr) removeUser(u *Instr) {
	for i, x := range in.users {
		if x == u {
			in.users = append(in.users[:i], in.users[i+1:]...)
			return
		}
	}
}

// ReplaceAllUsesWith rewrites every use of in to refer to v instead.
func (in *Instr) ReplaceAllUsesWith(v Value) {
	for len(in.users) > 0 {
		u := in.users[0]
		for i, opnd := range u.operands {
			if opnd == in {
				u.SetOperand(i, v)
			}
		}
	}
}

// clearOperands detaches the instruction from the def-use chains of its
// operands; used when removing instructions.
func (in *Instr) clearOperands() {
	for i := range in.operands {
		if d, ok := in.operands[i].(*Instr); ok {
			d.removeUser(in)
		}
		in.operands[i] = nil
	}
	in.operands = in.operands[:0]
}

// HasResult reports whether the instruction produces a value.
func (in *Instr) HasResult() bool { return in.typ != Void }

// IsProtection reports whether the instruction was inserted by a
// protection pass (shadow duplicate or check).
func (in *Instr) IsProtection() bool { return in.Prot != ProtNone }

// String renders the instruction in the textual IR syntax.
func (in *Instr) String() string { return printInstr(in) }
