package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, and the results of instructions.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ref renders the value as an operand reference ("%x", "42", "3.5").
	Ref() string
}

// Const is a compile-time constant of integer, float, or pointer type.
// Integer payloads (including i1 and pointers) live in Int; float
// payloads live in Float.
type Const struct {
	typ   *Type
	Int   int64
	Float float64
}

// ConstInt returns an integer constant of the given type.
func ConstInt(t *Type, v int64) *Const {
	if !t.IsInt() && !t.IsPtr() {
		panic("ir: ConstInt with non-integer type " + t.String())
	}
	return &Const{typ: t, Int: truncInt(t, v)}
}

// ConstFloat returns an f64 constant.
func ConstFloat(v float64) *Const { return &Const{typ: F64, Float: v} }

// ConstBool returns an i1 constant.
func ConstBool(b bool) *Const {
	if b {
		return &Const{typ: I1, Int: 1}
	}
	return &Const{typ: I1}
}

// NullPtr returns the null pointer constant of the given pointer type.
func NullPtr(t *Type) *Const {
	if !t.IsPtr() {
		panic("ir: NullPtr with non-pointer type")
	}
	return &Const{typ: t}
}

// truncInt wraps v into the representable range of integer type t,
// matching two's-complement truncation semantics.
func truncInt(t *Type, v int64) int64 {
	switch t.Kind() {
	case I1Kind:
		return v & 1
	case I8Kind:
		return int64(int8(v))
	case I32Kind:
		return int64(int32(v))
	default:
		return v
	}
}

// Type implements Value.
func (c *Const) Type() *Type { return c.typ }

// Ref implements Value.
func (c *Const) Ref() string {
	switch {
	case c.typ.IsFloat():
		return formatFloat(c.Float)
	case c.typ.IsPtr():
		if c.Int == 0 {
			return "null"
		}
		return strconv.FormatInt(c.Int, 10)
	default:
		return strconv.FormatInt(c.Int, 10)
	}
}

// formatFloat prints a float so that it round-trips exactly through the
// IR parser (including NaN and infinities, which use bit syntax).
func formatFloat(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Sprintf("0xfp%016x", math.Float64bits(f))
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure the token is recognizably a float.
	if !hasFloatMarker(s) {
		s += ".0"
	}
	return s
}

func hasFloatMarker(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.', 'e', 'E', 'n', 'i': // ".", exponent, "nan", "inf"
			return true
		}
	}
	return false
}

// Param is a formal parameter of a function.
type Param struct {
	name string
	typ  *Type
	// Index is the position of the parameter in the function signature.
	Index int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.typ }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.name }

// Name returns the parameter's name without the leading '%'.
func (p *Param) Name() string { return p.name }
