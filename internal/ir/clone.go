package ir

// CloneModule returns a deep copy of m. SiteIDs, protection tags and
// all structure are preserved, so a clone can be transformed by a
// protection pass while the original stays pristine.
func CloneModule(m *Module) *Module {
	nm := NewModule()
	nm.nextSiteID = m.nextSiteID

	// First create all function shells so calls can be remapped.
	fmap := map[*Func]*Func{}
	for _, f := range m.funcs {
		names := make([]string, len(f.params))
		types := make([]*Type, len(f.params))
		for i, p := range f.params {
			names[i] = p.name
			types[i] = p.Type()
		}
		nf := nm.NewFunc(f.name, f.retType, names, types)
		nf.Builtin = f.Builtin
		nf.nextName = f.nextName
		fmap[f] = nf
	}

	for _, f := range m.funcs {
		if f.Builtin {
			continue
		}
		nf := fmap[f]
		bmap := map[*Block]*Block{}
		for _, b := range f.blocks {
			bmap[b] = nf.NewBlock(b.name)
		}
		vmap := map[Value]Value{}
		for i, p := range f.params {
			vmap[p] = nf.params[i]
		}
		// Create instruction shells in order.
		imap := map[*Instr]*Instr{}
		for _, b := range f.blocks {
			nb := bmap[b]
			for _, in := range b.instrs {
				ni := &Instr{
					op:         in.op,
					typ:        in.typ,
					name:       in.name,
					Pred:       in.Pred,
					AllocElems: in.AllocElems,
					SiteID:     in.SiteID,
					Prot:       in.Prot,
				}
				if in.Callee != nil {
					ni.Callee = fmap[in.Callee]
				}
				for _, t := range in.Targets {
					ni.Targets = append(ni.Targets, bmap[t])
				}
				for _, inc := range in.Incoming {
					ni.Incoming = append(ni.Incoming, bmap[inc])
				}
				nb.Append(ni)
				imap[in] = ni
				if in.HasResult() {
					vmap[in] = ni
				}
			}
		}
		// Wire operands and shadow links.
		for _, b := range f.blocks {
			for _, in := range b.instrs {
				ni := imap[in]
				for _, opnd := range in.operands {
					var nv Value
					if mapped, ok := vmap[opnd]; ok {
						nv = mapped
					} else {
						nv = opnd // constants are immutable and shared
					}
					ni.operands = append(ni.operands, nv)
					if d, ok := nv.(*Instr); ok {
						d.users = append(d.users, ni)
					}
				}
				if in.Shadow != nil {
					ni.Shadow = imap[in.Shadow]
				}
			}
		}
	}
	return nm
}
