package ir

// DCE removes trivially dead instructions: value-producing, side-effect
// free instructions with no users. It iterates to a fixpoint and
// returns the number of removed instructions.
func DCE(f *Func) int {
	removed := 0
	for {
		n := 0
		for _, b := range f.blocks {
			for _, in := range append([]*Instr(nil), b.instrs...) {
				if len(in.users) != 0 || !isPure(in) {
					continue
				}
				b.Remove(in)
				n++
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// isPure reports whether removing the instruction cannot change program
// behaviour (no side effects, no traps in our semantics other than
// data-dependent ones we conservatively keep).
func isPure(in *Instr) bool {
	switch in.op {
	case OpStore, OpCall, OpAtomicRMW, OpBr, OpCondBr, OpRet, OpTrap:
		return false
	case OpSDiv, OpSRem:
		// May trap on divide-by-zero; keep.
		return false
	case OpLoad:
		// May trap on a bad address; keep.
		return false
	case OpAlloca:
		// Dead allocas are removable.
		return true
	default:
		return true
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry,
// fixing up PHI nodes in surviving blocks. Returns removed count.
func RemoveUnreachable(f *Func) int {
	dom := ComputeDom(f)
	var dead []*Block
	for _, b := range f.blocks {
		if !dom.Reachable(b) {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return 0
	}
	deadSet := map[*Block]bool{}
	for _, b := range dead {
		deadSet[b] = true
	}
	// Drop PHI incomings that arrive from dead blocks.
	for _, b := range f.blocks {
		if deadSet[b] {
			continue
		}
		for _, phi := range b.Phis() {
			for i := 0; i < len(phi.Incoming); {
				if deadSet[phi.Incoming[i]] {
					phi.removeIncoming(i)
				} else {
					i++
				}
			}
		}
	}
	// Detach and remove dead blocks (their instructions may form cycles
	// among themselves, so clear all operand lists first).
	for _, b := range dead {
		for _, in := range b.instrs {
			in.users = nil
		}
	}
	for _, b := range dead {
		for _, in := range b.instrs {
			in.clearOperands()
			in.block = nil
		}
		b.instrs = nil
		f.RemoveBlock(b)
	}
	return len(dead)
}

// removeIncoming drops the i-th (value, predecessor) pair of a phi.
func (in *Instr) removeIncoming(i int) {
	if d, ok := in.operands[i].(*Instr); ok {
		d.removeUser(in)
	}
	in.operands = append(in.operands[:i], in.operands[i+1:]...)
	in.Incoming = append(in.Incoming[:i], in.Incoming[i+1:]...)
}
