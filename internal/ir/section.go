package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
)

// Section is one unit of the per-function partition used by sectioned
// fault-injection campaigns (FastFlip-style compositional analysis):
// either one outermost natural loop nest, or a maximal run of
// consecutive non-loop blocks in layout order. Every block of a
// function belongs to exactly one section.
type Section struct {
	// ID is the module-wide section index (assigned by ModuleSections
	// in deterministic function/layout order).
	ID int
	// Index is the section's index within its function.
	Index int
	// Fn is the owning function.
	Fn *Func
	// Header is the section's first block: the loop header for a loop
	// section, the first block of the run otherwise.
	Header *Block
	// Blocks lists the section's blocks in function layout order.
	Blocks []*Block
	// Loop reports whether the section is an outermost loop nest.
	Loop bool
	// Fingerprint is a stable content hash over the section's canonical
	// printed form (plus its position: function name, section index and
	// header label), so a section's identity survives edits elsewhere in
	// the module and changes whenever its own code changes.
	Fingerprint string
}

// ComputeSections partitions fn's blocks into sections: each outermost
// natural loop nest (all blocks of the loop, including nested loops)
// forms one section, and the remaining blocks form maximal runs of
// consecutive-in-layout-order non-loop blocks. The partition is a pure
// function of the IR, so both sides of a campaign protocol compute the
// identical sections.
func ComputeSections(fn *Func) []*Section {
	if fn.Builtin || len(fn.Blocks()) == 0 {
		return nil
	}
	dom := ComputeDom(fn)
	li := ComputeLoops(fn, dom)

	// An outermost loop is one whose header is inside no other loop.
	outer := map[*Block]*Loop{} // block -> its outermost loop
	for _, l := range li.Loops {
		outermost := true
		for _, o := range li.Loops {
			if o != l && o.Blocks[l.Header] {
				outermost = false
				break
			}
		}
		if !outermost {
			continue
		}
		for b := range l.Blocks {
			outer[b] = l
		}
	}

	var (
		secs    []*Section
		byLoop  = map[*Loop]*Section{}
		current *Section // open straight-line run
	)
	for _, b := range fn.Blocks() {
		if l := outer[b]; l != nil {
			current = nil
			s := byLoop[l]
			if s == nil {
				s = &Section{Fn: fn, Header: l.Header, Loop: true}
				byLoop[l] = s
				secs = append(secs, s)
			}
			s.Blocks = append(s.Blocks, b)
			continue
		}
		if current == nil {
			current = &Section{Fn: fn, Header: b}
			secs = append(secs, current)
		}
		current.Blocks = append(current.Blocks, b)
	}
	for i, s := range secs {
		s.Index = i
		s.Fingerprint = s.fingerprint()
	}
	return secs
}

// fingerprint hashes the section's canonical printed content together
// with its position. Position (function name, in-function index, header
// label) disambiguates textually identical sections — two copies of the
// same helper must not share per-section journals.
func (s *Section) fingerprint() string {
	h := sha256.New()
	h.Write([]byte(s.Fn.Name()))
	h.Write([]byte{0})
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(s.Index))
	h.Write(idx[:])
	h.Write([]byte(s.Header.Name()))
	h.Write([]byte{0})
	for _, b := range s.Blocks {
		h.Write([]byte(b.Name()))
		h.Write([]byte(":\n"))
		for _, in := range b.Instrs() {
			h.Write([]byte(printInstr(in)))
			h.Write([]byte{'\n'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders a short human-readable section label.
func (s *Section) String() string {
	kind := "line"
	if s.Loop {
		kind = "loop"
	}
	return "@" + s.Fn.Name() + "#" + strconv.Itoa(s.Index) + "(" + kind + " " + s.Header.Name() + ")"
}

// Sections is the module-wide section partition.
type Sections struct {
	// All lists every section in deterministic order (functions in
	// module order, sections in layout order); Section.ID indexes it.
	All []*Section
	// SiteSection maps a SiteID onto its section's ID (-1 for sites the
	// partition does not cover). AssignSiteIDs must have run.
	SiteSection []int32

	sites [][]int // per-section sorted global SiteIDs (ProtNone instrs)
}

// ModuleSections partitions every non-builtin function of m and indexes
// the partition by SiteID. AssignSiteIDs must have been called (it is
// by every compile path that feeds fault injection).
func ModuleSections(m *Module) *Sections {
	ms := &Sections{SiteSection: make([]int32, m.NumSites())}
	for i := range ms.SiteSection {
		ms.SiteSection[i] = -1
	}
	for _, f := range m.Funcs() {
		for _, s := range ComputeSections(f) {
			s.ID = len(ms.All)
			ms.All = append(ms.All, s)
			ms.sites = append(ms.sites, nil)
			for _, b := range s.Blocks {
				for _, in := range b.Instrs() {
					if in.Prot == ProtNone && in.SiteID >= 0 && in.SiteID < len(ms.SiteSection) {
						ms.SiteSection[in.SiteID] = int32(s.ID)
						ms.sites[s.ID] = append(ms.sites[s.ID], in.SiteID)
					}
				}
			}
		}
	}
	return ms
}

// Sites returns section sec's global SiteIDs in ascending order (site
// IDs are assigned in layout order, which is the iteration order
// above). The slice is shared; callers must not mutate it.
func (ms *Sections) Sites(sec int) []int { return ms.sites[sec] }

// Fingerprint hashes the whole partition — the combined campaign-level
// section fingerprint journal headers carry.
func (ms *Sections) Fingerprint() string {
	h := sha256.New()
	for _, s := range ms.All {
		h.Write([]byte(s.Fingerprint))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Describe renders a one-line-per-section summary (debugging aid).
func (ms *Sections) Describe() string {
	var sb strings.Builder
	for _, s := range ms.All {
		sb.WriteString(s.String())
		sb.WriteString(" blocks=")
		sb.WriteString(strconv.Itoa(len(s.Blocks)))
		sb.WriteString(" sites=")
		sb.WriteString(strconv.Itoa(len(ms.sites[s.ID])))
		sb.WriteByte('\n')
	}
	return sb.String()
}
