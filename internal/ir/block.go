package ir

// Block is a basic block: a straight-line sequence of instructions
// ending in exactly one terminator.
type Block struct {
	name   string
	fn     *Func
	instrs []*Instr
}

// Name returns the block label without the leading '%'.
func (b *Block) Name() string { return b.name }

// Func returns the function containing the block.
func (b *Block) Func() *Func { return b.fn }

// Instrs returns the block's instructions in order. The slice must not
// be mutated directly.
func (b *Block) Instrs() []*Instr { return b.instrs }

// NumInstrs returns the number of instructions in the block (the
// paper's feature 14, "size of basic block").
func (b *Block) NumInstrs() int { return len(b.instrs) }

// Terminator returns the block's final instruction, or nil if the block
// is still under construction.
func (b *Block) Terminator() *Instr {
	if n := len(b.instrs); n > 0 && b.instrs[n-1].op.IsTerminator() {
		return b.instrs[n-1]
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Preds returns the predecessor blocks, computed by scanning the
// function (cheap at our scale and always up to date).
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, bb := range b.fn.blocks {
		for _, s := range bb.Succs() {
			if s == b {
				preds = append(preds, bb)
				break
			}
		}
	}
	return preds
}

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) {
	in.block = b
	b.instrs = append(b.instrs, in)
}

// InsertBefore inserts in immediately before pos, which must be in b.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	idx := b.indexOf(pos)
	in.block = b
	b.instrs = append(b.instrs, nil)
	copy(b.instrs[idx+1:], b.instrs[idx:])
	b.instrs[idx] = in
}

// InsertAfter inserts in immediately after pos, which must be in b.
func (b *Block) InsertAfter(in *Instr, pos *Instr) {
	idx := b.indexOf(pos) + 1
	in.block = b
	b.instrs = append(b.instrs, nil)
	copy(b.instrs[idx+1:], b.instrs[idx:])
	b.instrs[idx] = in
}

// Remove deletes in from the block, detaching its operand uses. The
// instruction must have no remaining users.
func (b *Block) Remove(in *Instr) {
	if len(in.users) > 0 {
		panic("ir: removing instruction that still has users: " + in.String())
	}
	idx := b.indexOf(in)
	in.clearOperands()
	in.block = nil
	b.instrs = append(b.instrs[:idx], b.instrs[idx+1:]...)
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.instrs {
		if x == in {
			return i
		}
	}
	panic("ir: instruction not in block " + b.name)
}

// Index returns the position of in within the block.
func (b *Block) Index(in *Instr) int { return b.indexOf(in) }

// Phis returns the leading PHI instructions of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.instrs {
		if in.op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// FirstNonPhi returns the first non-PHI instruction of the block.
func (b *Block) FirstNonPhi() *Instr {
	for _, in := range b.instrs {
		if in.op != OpPhi {
			return in
		}
	}
	return nil
}
