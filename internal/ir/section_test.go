package ir

import "testing"

// loopySrc has the canonical shape sectioning must handle: a prologue,
// an outer loop with a nested inner loop, and an epilogue.
const loopySrc = `
func @main() i64 {
entry:
  %n = add i64 8, 0
  br %outer
outer:
  %i = phi i64 [0, %entry], [%i1, %outerlatch]
  br %inner
inner:
  %j = phi i64 [0, %outer], [%j1, %inner]
  %j1 = add i64 %j, 1
  %jc = icmp lt i64 %j1, %n
  condbr %jc, %inner, %outerlatch
outerlatch:
  %i1 = add i64 %i, 1
  %ic = icmp lt i64 %i1, %n
  condbr %ic, %outer, %exit
exit:
  %r = mul i64 %i1, 2
  ret i64 %r
}
`

func TestComputeSectionsPartition(t *testing.T) {
	m := MustParse(loopySrc)
	fn := m.FuncByName("main")
	secs := ComputeSections(fn)
	if len(secs) != 3 {
		t.Fatalf("got %d sections, want 3 (prologue, loop nest, epilogue):\n%v", len(secs), secs)
	}
	if secs[0].Loop || secs[0].Header.Name() != "entry" {
		t.Errorf("section 0 = %v, want straight-line run at entry", secs[0])
	}
	if !secs[1].Loop || secs[1].Header.Name() != "outer" {
		t.Errorf("section 1 = %v, want loop nest headed at outer", secs[1])
	}
	if len(secs[1].Blocks) != 3 {
		t.Errorf("loop section has %d blocks, want 3 (outer, inner, outerlatch)", len(secs[1].Blocks))
	}
	if secs[2].Loop || secs[2].Header.Name() != "exit" {
		t.Errorf("section 2 = %v, want straight-line run at exit", secs[2])
	}
	// Partition: every block in exactly one section.
	seen := map[*Block]int{}
	for _, s := range secs {
		for _, b := range s.Blocks {
			seen[b]++
		}
	}
	for _, b := range fn.Blocks() {
		if seen[b] != 1 {
			t.Errorf("block %s appears in %d sections, want 1", b.Name(), seen[b])
		}
	}
}

func TestSectionFingerprintStability(t *testing.T) {
	a := ComputeSections(MustParse(loopySrc).FuncByName("main"))
	b := ComputeSections(MustParse(loopySrc).FuncByName("main"))
	for i := range a {
		if a[i].Fingerprint != b[i].Fingerprint {
			t.Errorf("section %d fingerprint not reproducible", i)
		}
	}

	// An edit in the epilogue must change only the epilogue's
	// fingerprint; the prologue and the loop nest keep theirs.
	edited := MustParse(loopySrc)
	exit := edited.FuncByName("main").BlockByName("exit")
	mul := exit.Instrs()[0]
	if mul.Op() != OpMul {
		t.Fatalf("expected mul first in exit, got %v", mul.Op())
	}
	mul.SetOperand(1, ConstInt(I64, 3))
	c := ComputeSections(edited.FuncByName("main"))
	if c[0].Fingerprint != a[0].Fingerprint || c[1].Fingerprint != a[1].Fingerprint {
		t.Error("edit in epilogue changed an unrelated section's fingerprint")
	}
	if c[2].Fingerprint == a[2].Fingerprint {
		t.Error("edit in epilogue did not change its own fingerprint")
	}
}

func TestModuleSectionsSiteIndex(t *testing.T) {
	m := MustParse(loopySrc)
	m.AssignSiteIDs()
	ms := ModuleSections(m)
	if len(ms.All) != 3 {
		t.Fatalf("got %d sections, want 3", len(ms.All))
	}
	if len(ms.SiteSection) != m.NumSites() {
		t.Fatalf("SiteSection len %d, want %d", len(ms.SiteSection), m.NumSites())
	}
	covered := 0
	for site, sec := range ms.SiteSection {
		if sec < 0 {
			t.Errorf("site %d not assigned to a section", site)
			continue
		}
		covered++
		found := false
		for _, s := range ms.Sites(int(sec)) {
			if s == site {
				found = true
			}
		}
		if !found {
			t.Errorf("site %d missing from Sites(%d)", site, sec)
		}
	}
	if covered != m.NumSites() {
		t.Errorf("covered %d of %d sites", covered, m.NumSites())
	}
	// Per-section site lists must be ascending (local<->global
	// remapping in sectioned journals relies on it).
	for sec := range ms.All {
		sites := ms.Sites(sec)
		for i := 1; i < len(sites); i++ {
			if sites[i] <= sites[i-1] {
				t.Errorf("section %d sites not ascending: %v", sec, sites)
			}
		}
	}
	if ms.Fingerprint() == "" || ms.Fingerprint() != ModuleSections(m).Fingerprint() {
		t.Error("module section fingerprint not reproducible")
	}
}

func TestSectionsIdenticalFunctionsDistinctFingerprints(t *testing.T) {
	src := `
func @a() i64 {
entry:
  %x = add i64 1, 2
  ret i64 %x
}

func @b() i64 {
entry:
  %x = add i64 1, 2
  ret i64 %x
}
`
	m := MustParse(src)
	m.AssignSiteIDs()
	ms := ModuleSections(m)
	if len(ms.All) != 2 {
		t.Fatalf("got %d sections, want 2", len(ms.All))
	}
	if ms.All[0].Fingerprint == ms.All[1].Fingerprint {
		t.Error("textually identical sections of different functions must not share a fingerprint")
	}
}
