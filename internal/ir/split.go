package ir

// SplitBlockBefore splits b at instruction pos: pos and everything after
// it move into a new block, b is terminated with an unconditional
// branch to the new block, and PHI nodes in b's former successors are
// remapped to the new block. Returns the new block.
func SplitBlockBefore(b *Block, pos *Instr) *Block {
	f := b.fn
	idx := b.indexOf(pos)
	nb := f.NewBlock(b.name + ".split")

	moved := b.instrs[idx:]
	b.instrs = b.instrs[:idx:idx]
	for _, in := range moved {
		in.block = nb
	}
	nb.instrs = moved

	// Remap PHIs in the successors of the moved terminator.
	if t := nb.Terminator(); t != nil {
		for _, s := range t.Targets {
			for _, phi := range s.Phis() {
				for i, inc := range phi.Incoming {
					if inc == b {
						phi.Incoming[i] = nb
					}
				}
			}
		}
	}

	bld := NewBuilder(b)
	bld.Br(nb)
	return nb
}
