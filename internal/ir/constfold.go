package ir

import "math"

// ConstFold evaluates instructions whose operands are all constants and
// replaces their uses with the folded constant, iterating with trivial
// dead-code elimination until a fixpoint. Division by a constant zero
// is left in place (it must trap at run time). Returns the number of
// folded instructions.
//
// The sci front end keeps its default pipeline at mem2reg+DCE so the
// shipped evaluation numbers stay reproducible; ConstFold is part of
// the opt-in Optimize pipeline.
func ConstFold(f *Func) int {
	folded := 0
	for {
		n := 0
		for _, b := range f.blocks {
			for _, in := range append([]*Instr(nil), b.instrs...) {
				c, ok := foldInstr(in)
				if !ok {
					continue
				}
				in.ReplaceAllUsesWith(c)
				b.Remove(in)
				n++
			}
		}
		folded += n
		if n == 0 {
			return folded
		}
	}
}

// foldInstr computes the constant result of in if possible.
func foldInstr(in *Instr) (*Const, bool) {
	if !in.HasResult() || len(in.users) == 0 {
		return nil, false
	}
	for _, op := range in.operands {
		if _, ok := op.(*Const); !ok {
			return nil, false
		}
	}
	ci := func(i int) *Const { return in.operands[i].(*Const) }

	switch in.op {
	case OpAdd:
		return ConstInt(in.typ, ci(0).Int+ci(1).Int), true
	case OpSub:
		return ConstInt(in.typ, ci(0).Int-ci(1).Int), true
	case OpMul:
		return ConstInt(in.typ, ci(0).Int*ci(1).Int), true
	case OpSDiv:
		d := ci(1).Int
		if d == 0 {
			return nil, false // must trap at run time
		}
		if d == -1 {
			return ConstInt(in.typ, -ci(0).Int), true
		}
		return ConstInt(in.typ, ci(0).Int/d), true
	case OpSRem:
		d := ci(1).Int
		if d == 0 {
			return nil, false
		}
		if d == -1 {
			return ConstInt(in.typ, 0), true
		}
		return ConstInt(in.typ, ci(0).Int%d), true
	case OpFAdd:
		return ConstFloat(ci(0).Float + ci(1).Float), true
	case OpFSub:
		return ConstFloat(ci(0).Float - ci(1).Float), true
	case OpFMul:
		return ConstFloat(ci(0).Float * ci(1).Float), true
	case OpFDiv:
		return ConstFloat(ci(0).Float / ci(1).Float), true
	case OpAnd:
		return ConstInt(in.typ, ci(0).Int&ci(1).Int), true
	case OpOr:
		return ConstInt(in.typ, ci(0).Int|ci(1).Int), true
	case OpXor:
		return ConstInt(in.typ, ci(0).Int^ci(1).Int), true
	case OpShl:
		return ConstInt(in.typ, ci(0).Int<<(uint64(ci(1).Int)&63)), true
	case OpAShr:
		return ConstInt(in.typ, ci(0).Int>>(uint64(ci(1).Int)&63)), true
	case OpLShr:
		w := uint64(in.typ.Bits())
		mask := ^uint64(0)
		if w < 64 {
			mask = (1 << w) - 1
		}
		x := uint64(ci(0).Int) & mask
		return ConstInt(in.typ, int64(x>>(uint64(ci(1).Int)&(w-1)))), true
	case OpICmp:
		return ConstBool(evalIPred(in.Pred, ci(0).Int, ci(1).Int)), true
	case OpFCmp:
		return ConstBool(evalFPred(in.Pred, ci(0).Float, ci(1).Float)), true
	case OpTrunc, OpSExt:
		return ConstInt(in.typ, ci(0).Int), true
	case OpZExt:
		w := uint64(in.operands[0].Type().Bits())
		mask := ^uint64(0)
		if w < 64 {
			mask = (1 << w) - 1
		}
		return ConstInt(in.typ, int64(uint64(ci(0).Int)&mask)), true
	case OpSIToFP:
		return ConstFloat(float64(ci(0).Int)), true
	case OpFPToSI:
		v := ci(0).Float
		switch {
		case math.IsNaN(v):
			return ConstInt(in.typ, 0), true
		case v >= math.MaxInt64:
			return ConstInt(in.typ, math.MaxInt64), true
		case v <= math.MinInt64:
			return ConstInt(in.typ, math.MinInt64), true
		}
		return ConstInt(in.typ, int64(v)), true
	case OpBitcast:
		if in.typ == I64 {
			return ConstInt(I64, int64(math.Float64bits(ci(0).Float))), true
		}
		return ConstFloat(math.Float64frombits(uint64(ci(0).Int))), true
	case OpSelect:
		if ci(0).Int != 0 {
			return ci(1), true
		}
		return ci(2), true
	}
	return nil, false
}

func evalIPred(p Pred, a, b int64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	default:
		return a >= b
	}
}

func evalFPred(p Pred, a, b float64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	default:
		return a >= b
	}
}
