// Package ir implements a typed, SSA-form intermediate representation
// modeled after LLVM IR at the level of abstraction the IPAS paper
// operates on: value-producing instructions grouped into basic blocks,
// basic blocks grouped into functions, with explicit use-def and
// def-use chains.
//
// The IR is deliberately small but complete: integer and floating
// arithmetic, logical operations, comparisons, pointer arithmetic
// (GEP), stack allocation, casts, PHI nodes, calls, loads/stores and
// control flow. Everything the IPAS feature extractor (Table 1 of the
// paper), the Weiser slicer, and the duplication pass need is
// represented directly.
package ir

import "fmt"

// TypeKind enumerates the primitive type families of the IR.
type TypeKind int

const (
	// VoidKind is the type of functions that return nothing and of
	// instructions that produce no value (store, br, ret void).
	VoidKind TypeKind = iota
	// I1Kind is the boolean type produced by comparisons.
	I1Kind
	// I8Kind is an 8-bit integer.
	I8Kind
	// I32Kind is a 32-bit integer.
	I32Kind
	// I64Kind is a 64-bit integer.
	I64Kind
	// F64Kind is a 64-bit IEEE-754 float.
	F64Kind
	// PtrKind is a byte-addressed pointer carrying its element type.
	PtrKind
)

// Type describes the type of a Value. Types are interned: compare with ==.
type Type struct {
	kind TypeKind
	elem *Type // element type for PtrKind
}

// Pre-interned primitive types.
var (
	Void = &Type{kind: VoidKind}
	I1   = &Type{kind: I1Kind}
	I8   = &Type{kind: I8Kind}
	I32  = &Type{kind: I32Kind}
	I64  = &Type{kind: I64Kind}
	F64  = &Type{kind: F64Kind}

	ptrCache = map[*Type]*Type{}
)

// PtrTo returns the (interned) pointer type with element type elem.
func PtrTo(elem *Type) *Type {
	if p, ok := ptrCache[elem]; ok {
		return p
	}
	p := &Type{kind: PtrKind, elem: elem}
	ptrCache[elem] = p
	return p
}

// Kind reports the type's kind.
func (t *Type) Kind() TypeKind { return t.kind }

// Elem returns the element type of a pointer type, or nil.
func (t *Type) Elem() *Type { return t.elem }

// IsInt reports whether t is an integer type (including i1).
func (t *Type) IsInt() bool {
	switch t.kind {
	case I1Kind, I8Kind, I32Kind, I64Kind:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.kind == F64Kind }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t.kind == PtrKind }

// Size returns the size of a value of type t in bytes. Pointers are 8
// bytes; i1 occupies one byte in memory.
func (t *Type) Size() int64 {
	switch t.kind {
	case VoidKind:
		return 0
	case I1Kind, I8Kind:
		return 1
	case I32Kind:
		return 4
	case I64Kind, F64Kind, PtrKind:
		return 8
	}
	panic("ir: unknown type kind")
}

// Bits returns the number of value-carrying bits of type t, used by the
// fault injector to pick a random bit to flip.
func (t *Type) Bits() int {
	switch t.kind {
	case I1Kind:
		return 1
	case I8Kind:
		return 8
	case I32Kind:
		return 32
	case I64Kind, F64Kind, PtrKind:
		return 64
	}
	return 0
}

// String renders the type in LLVM-like syntax.
func (t *Type) String() string {
	switch t.kind {
	case VoidKind:
		return "void"
	case I1Kind:
		return "i1"
	case I8Kind:
		return "i8"
	case I32Kind:
		return "i32"
	case I64Kind:
		return "i64"
	case F64Kind:
		return "f64"
	case PtrKind:
		return t.elem.String() + "*"
	}
	return fmt.Sprintf("?type%d", int(t.kind))
}

// ParseType parses a type written in the String syntax.
func ParseType(s string) (*Type, error) {
	stars := 0
	for len(s) > 0 && s[len(s)-1] == '*' {
		stars++
		s = s[:len(s)-1]
	}
	var base *Type
	switch s {
	case "void":
		base = Void
	case "i1":
		base = I1
	case "i8":
		base = I8
	case "i32":
		base = I32
	case "i64":
		base = I64
	case "f64":
		base = F64
	default:
		return nil, fmt.Errorf("ir: unknown type %q", s)
	}
	if base == Void && stars > 0 {
		return nil, fmt.Errorf("ir: pointer to void")
	}
	for i := 0; i < stars; i++ {
		base = PtrTo(base)
	}
	return base, nil
}
