package ir

// DomTree is the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *Func
	rpo   []*Block       // reverse postorder of reachable blocks
	num   map[*Block]int // block -> RPO index
	idom  map[*Block]*Block
	kids  map[*Block][]*Block
	depth map[*Block]int
}

// ComputeDom builds the dominator tree of fn. Unreachable blocks are
// not part of the tree (Dominates and IDom treat them as undominated).
func ComputeDom(fn *Func) *DomTree {
	t := &DomTree{
		fn:    fn,
		num:   map[*Block]int{},
		idom:  map[*Block]*Block{},
		kids:  map[*Block][]*Block{},
		depth: map[*Block]int{},
	}
	if len(fn.blocks) == 0 {
		return t
	}
	// Reverse postorder DFS from entry.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	entry := fn.Entry()
	dfs(entry)
	t.rpo = make([]*Block, len(post))
	for i, b := range post {
		t.rpo[len(post)-1-i] = b
	}
	for i, b := range t.rpo {
		t.num[b] = i
	}

	// Iterate to fixpoint (Cooper, Harvey, Kennedy 2001).
	t.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds() {
				if _, ok := t.num[p]; !ok {
					continue // unreachable predecessor
				}
				if t.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	t.idom[entry] = nil // entry has no immediate dominator

	// Children in RPO order: map iteration here would make the
	// dominator-tree walk — and everything downstream of it, like
	// mem2reg's phi-incoming order and therefore the printed IR and the
	// program fingerprint — vary run to run.
	for _, b := range t.rpo {
		if id := t.idom[b]; id != nil {
			t.kids[id] = append(t.kids[id], b)
		}
	}
	// Depths by walk from entry.
	var setDepth func(b *Block, d int)
	setDepth = func(b *Block, d int) {
		t.depth[b] = d
		for _, k := range t.kids[b] {
			setDepth(k, d+1)
		}
	}
	setDepth(entry, 0)
	return t
}

func (t *DomTree) intersect(b1, b2 *Block) *Block {
	f1, f2 := b1, b2
	for f1 != f2 {
		for t.num[f1] > t.num[f2] {
			f1 = t.idom[f1]
		}
		for t.num[f2] > t.num[f1] {
			f2 = t.idom[f2]
		}
	}
	return f1
}

// IDom returns the immediate dominator of b (nil for entry and
// unreachable blocks).
func (t *DomTree) IDom(b *Block) *Block { return t.idom[b] }

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *Block) []*Block { return t.kids[b] }

// Reachable reports whether b is reachable from the entry block.
func (t *DomTree) Reachable(b *Block) bool {
	_, ok := t.num[b]
	return ok
}

// RPO returns the reachable blocks in reverse postorder.
func (t *DomTree) RPO() []*Block { return t.rpo }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		b = t.idom[b]
	}
	return false
}

// DominatesInstr reports whether the definition of value a is available
// at instruction user (strict SSA dominance, with same-block ordering).
func (t *DomTree) DominatesInstr(a, user *Instr) bool {
	if a.block == user.block {
		return a.block.Index(a) < user.block.Index(user)
	}
	return t.Dominates(a.block, user.block)
}

// Frontier computes the dominance frontier of every reachable block
// (used for PHI placement in mem2reg).
func (t *DomTree) Frontier() map[*Block][]*Block {
	df := map[*Block][]*Block{}
	for _, b := range t.rpo {
		preds := b.Preds()
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != t.idom[b] && runner != nil {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				runner = t.idom[runner]
			}
		}
	}
	return df
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
