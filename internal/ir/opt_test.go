package ir

import "testing"

func TestConstFold(t *testing.T) {
	m := MustParse(`
func @main() i64 {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = icmp lt i64 %b, 100
  %d = select %c, i64 %b, 7
  ret i64 %d
}
`)
	fn := m.FuncByName("main")
	folded := ConstFold(fn)
	if folded != 4 {
		t.Fatalf("folded %d, want 4", folded)
	}
	ret := fn.Entry().Terminator()
	c, ok := ret.Operand(0).(*Const)
	if !ok || c.Int != 20 {
		t.Fatalf("ret operand = %v", ret.Operand(0).Ref())
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestConstFoldKeepsTrappingDiv(t *testing.T) {
	m := MustParse(`
func @main() i64 {
entry:
  %z = sub i64 1, 1
  %d = sdiv i64 10, 0
  ret i64 %d
}
`)
	fn := m.FuncByName("main")
	ConstFold(fn)
	found := false
	for _, in := range fn.Entry().Instrs() {
		if in.Op() == OpSDiv {
			found = true
		}
	}
	if !found {
		t.Fatal("constant division by zero was folded away; it must trap at run time")
	}
}

func TestSimplifyCFGConstBranch(t *testing.T) {
	m := MustParse(`
func @main() i64 {
entry:
  condbr 1, %yes, %no
yes:
  ret i64 1
no:
  %p = phi i64 [9, %entry]
  ret i64 %p
}
`)
	fn := m.FuncByName("main")
	if n := SimplifyCFG(fn); n == 0 {
		t.Fatal("nothing simplified")
	}
	if fn.BlockByName("no") != nil {
		t.Fatal("dead branch target survived")
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// After merging, the function should be a single block returning 1.
	if len(fn.Blocks()) != 1 {
		t.Fatalf("%d blocks after simplify, want 1", len(fn.Blocks()))
	}
}

func TestSimplifyCFGMergesChain(t *testing.T) {
	m := MustParse(`
func @main() i64 {
entry:
  %a = add i64 1, 2
  br %mid
mid:
  %b = add i64 %a, 3
  br %end
end:
  %p = phi i64 [%b, %mid]
  ret i64 %p
}
`)
	fn := m.FuncByName("main")
	SimplifyCFG(fn)
	if len(fn.Blocks()) != 1 {
		t.Fatalf("%d blocks, want 1", len(fn.Blocks()))
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	ret := fn.Entry().Terminator()
	if ret.Op() != OpRet {
		t.Fatal("merged block has no ret")
	}
}

func TestSimplifyCFGIdenticalTargets(t *testing.T) {
	m := MustParse(`
func @main() i64 {
entry:
  %c = icmp lt i64 1, 2
  condbr %c, %next, %next
next:
  ret i64 5
}
`)
	fn := m.FuncByName("main")
	SimplifyCFG(fn)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, b := range fn.Blocks() {
		if tr := b.Terminator(); tr.Op() == OpCondBr {
			t.Fatal("condbr with identical targets not folded")
		}
	}
}
