// Package features extracts the 31 instruction features of Table 1 of
// the IPAS paper. Features fall into four categories: properties of the
// instruction itself (1–12), of its basic block (13–19), of its
// function (20–24), and of its forward program slice (25–31).
package features

import (
	"ipas/internal/ir"
	"ipas/internal/slicer"
)

// Dim is the feature-vector dimensionality.
const Dim = 31

// Names documents each feature, indexed 0..30 (paper numbering 1..31).
var Names = [Dim]string{
	"is binary operation",
	"is add or sub operation",
	"is multiplication or division operation",
	"is division remainder operation",
	"is logical operation",
	"is call instruction",
	"is comparison instruction",
	"is atomic read/write instruction",
	"is get-pointer instruction",
	"is stack-allocation instruction",
	"is cast instruction",
	"bytes in the instruction's result",
	"number of remaining instructions in BB",
	"size of basic block",
	"number of successor basic blocks",
	"sum of basic block sizes of successor BBs",
	"basic block is within a loop",
	"BB has a PHI instruction",
	"BB terminator is a branch instruction",
	"remaining instructions to reach return",
	"number of instructions in the function",
	"number of basic blocks in the function",
	"number of future function calls",
	"function returns a value",
	"number of instructions in the slice",
	"number of loads in the slice",
	"number of stores in the slice",
	"number of function calls in the slice",
	"number of binary operations in the slice",
	"number of stack-allocation instructions in the slice",
	"number of get-pointer instructions in the slice",
}

// unreachableDist caps feature 20 for instructions from which no return
// is reachable.
const unreachableDist = 1 << 20

// Options configures the extractor.
type Options struct {
	// InterproceduralSlices computes features 25-31 over slices that
	// cross call boundaries (full Weiser slicing) instead of staying
	// within the instruction's function. Default off: the shipped
	// evaluation numbers use intraprocedural slices.
	InterproceduralSlices bool
}

// Extractor computes feature vectors for a module's instructions,
// caching the per-function CFG analyses.
type Extractor struct {
	mod    *ir.Module
	slices *slicer.Computer
	fns    map[*ir.Func]*fnInfo
}

type fnInfo struct {
	loops *ir.LoopInfo
	// distToRet[b] is the minimum dynamic instruction count from the
	// first instruction of b to (and including) a return.
	distToRet map[*ir.Block]int
	// callsFrom[b] is the number of static call instructions in b and
	// in every block reachable from b.
	callsFrom map[*ir.Block]int
	// callsIn[b] is the number of calls inside b alone.
	callsIn map[*ir.Block]int
}

// NewExtractor prepares feature extraction for m with default options.
func NewExtractor(m *ir.Module) *Extractor {
	return NewExtractorOpts(m, Options{})
}

// NewExtractorOpts prepares feature extraction with explicit options.
func NewExtractorOpts(m *ir.Module, opts Options) *Extractor {
	e := &Extractor{
		mod: m,
		slices: slicer.NewComputerOpts(m, slicer.Options{
			Interprocedural: opts.InterproceduralSlices,
		}),
		fns: map[*ir.Func]*fnInfo{},
	}
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		e.fns[f] = analyzeFunc(f)
	}
	return e
}

func analyzeFunc(f *ir.Func) *fnInfo {
	dom := ir.ComputeDom(f)
	info := &fnInfo{
		loops:     ir.ComputeLoops(f, dom),
		distToRet: map[*ir.Block]int{},
		callsIn:   map[*ir.Block]int{},
		callsFrom: map[*ir.Block]int{},
	}

	// distToRet: Bellman-Ford style relaxation over the reverse CFG.
	for _, b := range f.Blocks() {
		info.distToRet[b] = unreachableDist
		for _, in := range b.Instrs() {
			if in.Op() == ir.OpCall {
				info.callsIn[b]++
			}
		}
	}
	for _, b := range f.Blocks() {
		if t := b.Terminator(); t != nil && t.Op() == ir.OpRet {
			info.distToRet[b] = b.NumInstrs()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks() {
			best := info.distToRet[b]
			for _, s := range b.Succs() {
				if d := info.distToRet[s]; d < unreachableDist && b.NumInstrs()+d < best {
					best = b.NumInstrs() + d
				}
			}
			if best < info.distToRet[b] {
				info.distToRet[b] = best
				changed = true
			}
		}
	}

	// callsFrom: calls in all blocks reachable from b (including b).
	for _, b := range f.Blocks() {
		seen := map[*ir.Block]bool{}
		stack := []*ir.Block{b}
		total := 0
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			total += info.callsIn[x]
			stack = append(stack, x.Succs()...)
		}
		info.callsFrom[b] = total
	}
	return info
}

// Vector computes the 31-feature vector of an instruction. Booleans are
// encoded 0/1; integers as float64.
func (e *Extractor) Vector(in *ir.Instr) []float64 {
	f := e.fns[in.Block().Func()]
	v := make([]float64, Dim)
	op := in.Op()
	b := in.Block()
	fn := b.Func()
	idx := b.Index(in)

	// Instruction category (1–12).
	v[0] = b2f(op.IsBinary())
	v[1] = b2f(op == ir.OpAdd || op == ir.OpSub || op == ir.OpFAdd || op == ir.OpFSub)
	v[2] = b2f(op == ir.OpMul || op == ir.OpSDiv || op == ir.OpFMul || op == ir.OpFDiv)
	v[3] = b2f(op == ir.OpSRem)
	v[4] = b2f(op.IsLogical())
	v[5] = b2f(op == ir.OpCall)
	v[6] = b2f(op == ir.OpICmp || op == ir.OpFCmp)
	v[7] = b2f(op == ir.OpAtomicRMW)
	v[8] = b2f(op == ir.OpGEP)
	v[9] = b2f(op == ir.OpAlloca)
	v[10] = b2f(op.IsCast())
	v[11] = float64(in.Type().Size())

	// Basic-block category (13–19).
	v[12] = float64(b.NumInstrs() - idx - 1)
	v[13] = float64(b.NumInstrs())
	succs := b.Succs()
	v[14] = float64(len(succs))
	sumSucc := 0
	for _, s := range succs {
		sumSucc += s.NumInstrs()
	}
	v[15] = float64(sumSucc)
	v[16] = b2f(f.loops.InLoop(b))
	v[17] = b2f(len(b.Phis()) > 0)
	term := b.Terminator()
	v[18] = b2f(term != nil && (term.Op() == ir.OpBr || term.Op() == ir.OpCondBr))

	// Function category (20–24).
	d := f.distToRet[b]
	if d >= unreachableDist {
		v[19] = unreachableDist
	} else {
		v[19] = float64(d - idx - 1)
	}
	v[20] = float64(fn.NumInstrs())
	v[21] = float64(len(fn.Blocks()))
	future := f.callsFrom[b] - f.callsIn[b] // reachable beyond this block
	for _, x := range b.Instrs()[idx+1:] {
		if x.Op() == ir.OpCall {
			future++
		}
	}
	// Avoid double counting when the block can reach itself (loop):
	// callsFrom includes callsIn of every reachable block including b
	// when b is in a cycle; the subtraction above removed b once, which
	// is the best static approximation without path enumeration.
	v[22] = float64(future)
	v[23] = b2f(fn.RetType() != ir.Void)

	// Slice category (25–31).
	c := e.slices.Forward(in).Counts()
	v[24] = float64(c.Total)
	v[25] = float64(c.Loads)
	v[26] = float64(c.Stores)
	v[27] = float64(c.Calls)
	v[28] = float64(c.Binary)
	v[29] = float64(c.Allocas)
	v[30] = float64(c.GEPs)
	return v
}

// VectorBySite returns feature vectors for all original instructions,
// indexed by SiteID. AssignSiteIDs must have been called on the module.
func (e *Extractor) VectorBySite() [][]float64 {
	out := make([][]float64, e.mod.NumSites())
	for _, fn := range e.mod.Funcs() {
		for _, b := range fn.Blocks() {
			for _, in := range b.Instrs() {
				if in.Prot == ir.ProtNone {
					out[in.SiteID] = e.Vector(in)
				}
			}
		}
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
