package features

import (
	"testing"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

// featureModule builds a function with known structure for exact
// feature assertions.
func featureModule(t *testing.T) *ir.Module {
	t.Helper()
	src := `
builtin @sqrt(f64) f64
func @helper(f64 %x) f64 {
entry:
  %r = call f64 @sqrt(f64 %x)
  ret f64 %r
}
func @main() void {
entry:
  %i0 = add i64 0, 0
  br %loop
loop:
  %i = phi i64 [%i0, %entry], [%inc, %loop]
  %f = sitofp i64 %i to f64
  %s = call f64 @helper(f64 %f)
  %inc = add i64 %i, 1
  %c = icmp lt i64 %inc, 10
  condbr %c, %loop, %exit
exit:
  ret void
}
`
	m := ir.MustParse(src)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	m.AssignSiteIDs()
	return m
}

func find(m *ir.Module, fn, name string) *ir.Instr {
	for _, b := range m.FuncByName(fn).Blocks() {
		for _, in := range b.Instrs() {
			if in.Name() == name {
				return in
			}
		}
	}
	return nil
}

func TestFeatureValues(t *testing.T) {
	m := featureModule(t)
	e := NewExtractor(m)

	// %f = sitofp in the loop block of @main.
	f := find(m, "main", "f")
	v := e.Vector(f)
	check := func(idx int, want float64, what string) {
		t.Helper()
		if v[idx] != want {
			t.Errorf("feature %d (%s) = %v, want %v", idx+1, what, v[idx], want)
		}
	}
	check(0, 0, "is binary")          // sitofp is not binary
	check(10, 1, "is cast")           // sitofp is a cast
	check(11, 8, "result bytes")      // f64
	check(12, 4, "remaining in BB")   // s, inc, c, condbr after %f
	check(13, 6, "BB size")           // phi f s inc c condbr
	check(14, 2, "successor count")   // loop, exit
	check(15, 7, "succ sizes")        // loop(6) + exit(1)
	check(16, 1, "in loop")           // loop block
	check(17, 1, "has phi")           //
	check(18, 1, "terminator branch") // condbr
	check(20, 9, "function instrs")   // i0, br, phi, f, s, inc, c, condbr, ret
	check(21, 3, "function blocks")   //
	check(23, 0, "returns value")     // main is void

	// Feature 20: remaining instructions to reach return. From %f:
	// s, inc, c, condbr (4) then exit's ret (1) = 5.
	check(19, 5, "remaining to return")

	// Feature 23 (index 22): future function calls. After %f in its
	// block: %s. Reachable: loop (1 call) and exit (0). callsFrom(loop)
	// includes loop itself once; the approximation counts 1 (reachable
	// beyond block) + 1 (rest of block) = 2.
	if v[22] < 1 {
		t.Errorf("future calls = %v, want >= 1", v[22])
	}

	// The call instruction's own type features.
	s := find(m, "main", "s")
	vs := e.Vector(s)
	if vs[5] != 1 {
		t.Error("call feature not set on call instruction")
	}
	if vs[6] != 0 {
		t.Error("cmp feature set on call instruction")
	}

	// Slice features of %f: f -> s -> (ret path? s used by nothing) —
	// %s is unused, so slice = {f, s}.
	if v[24] != 2 {
		t.Errorf("slice size = %v, want 2", v[24])
	}
	if v[27] != 1 {
		t.Errorf("slice calls = %v, want 1", v[27])
	}
}

func TestVectorBySiteCoversAllSites(t *testing.T) {
	m := featureModule(t)
	e := NewExtractor(m)
	vecs := e.VectorBySite()
	if len(vecs) != m.NumSites() {
		t.Fatalf("got %d vectors for %d sites", len(vecs), m.NumSites())
	}
	for site, v := range vecs {
		if v == nil {
			t.Fatalf("site %d has no vector", site)
		}
		if len(v) != Dim {
			t.Fatalf("site %d has %d features", site, len(v))
		}
	}
}

// TestFeatureInvariantsOnRandomPrograms checks structural invariants
// over arbitrary modules: boolean features are 0/1, counts are
// non-negative, type-category features are mutually exclusive, and BB
// positions are consistent.
func TestFeatureInvariantsOnRandomPrograms(t *testing.T) {
	boolIdx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 16, 17, 18, 23}
	for seed := int64(1); seed <= 10; seed++ {
		m, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		e := NewExtractor(m)
		for _, v := range e.VectorBySite() {
			if v == nil {
				t.Fatal("missing vector")
			}
			for _, bi := range boolIdx {
				if v[bi] != 0 && v[bi] != 1 {
					t.Fatalf("seed %d: boolean feature %d = %v", seed, bi+1, v[bi])
				}
			}
			for i, x := range v {
				if x < 0 {
					t.Fatalf("seed %d: negative feature %d = %v", seed, i+1, x)
				}
			}
			// A single instruction belongs to at most one type class
			// among binary/call/cmp/atomic/gep/alloca/cast.
			sum := v[0] + v[5] + v[6] + v[7] + v[8] + v[9] + v[10]
			if sum > 1 {
				t.Fatalf("seed %d: instruction in %v type classes", seed, sum)
			}
			// Remaining-in-BB strictly less than BB size.
			if v[12] >= v[13] {
				t.Fatalf("seed %d: remaining %v >= bb size %v", seed, v[12], v[13])
			}
			// Slice is non-empty (contains the root).
			if v[24] < 1 {
				t.Fatalf("seed %d: empty slice", seed)
			}
		}
	}
}
