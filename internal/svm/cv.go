package svm

// FScore computes the paper's Eq. 1 from the two per-class accuracies:
// 2·A1·A2/(A1+A2), where A1 is the fraction of class-1 (SOC-generating)
// examples classified correctly and A2 the fraction of class-2.
func FScore(acc1, acc2 float64) float64 {
	if acc1+acc2 == 0 {
		return 0
	}
	return 2 * acc1 * acc2 / (acc1 + acc2)
}

// StratifiedFolds deterministically partitions sample indices into k
// folds preserving the class ratio: samples of each class are dealt
// round-robin across folds in index order.
func StratifiedFolds(y []int, k int) [][]int {
	if k < 2 {
		k = 2
	}
	folds := make([][]int, k)
	cnt := map[int]int{}
	for i, yi := range y {
		f := cnt[yi] % k
		folds[f] = append(folds[f], i)
		cnt[yi]++
	}
	return folds
}

// CVResult aggregates cross-validation outcomes for one configuration.
type CVResult struct {
	Acc1   float64 // recall on class +1 (SOC-generating)
	Acc2   float64 // recall on class -1
	FScore float64
	// PredictedPos is the fraction of all held-out samples predicted
	// positive, an overhead proxy used in reporting.
	PredictedPos float64
}

// CrossValidate evaluates params with k-fold stratified CV. dist must
// be the squared-distance matrix of p.X (see SqDistMatrix); it is
// shared across folds and configurations.
func CrossValidate(p *Problem, params Params, dist [][]float64, k int) (CVResult, error) {
	folds := StratifiedFolds(p.Y, k)
	var ok1, n1, ok2, n2, predPos, total int
	for fi := range folds {
		test := folds[fi]
		inTest := map[int]bool{}
		for _, i := range test {
			inTest[i] = true
		}
		var trainIdx []int
		for i := range p.X {
			if !inTest[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		sub := &Problem{}
		for _, i := range trainIdx {
			sub.X = append(sub.X, p.X[i])
			sub.Y = append(sub.Y, p.Y[i])
		}
		if pos, neg := sub.Count(); pos == 0 || neg == 0 {
			continue // degenerate fold
		}
		model, err := TrainWithDist(sub, params, dist, trainIdx)
		if err != nil {
			return CVResult{}, err
		}
		for _, i := range test {
			pred := model.Predict(p.X[i])
			total++
			if pred == 1 {
				predPos++
			}
			if p.Y[i] == 1 {
				n1++
				if pred == 1 {
					ok1++
				}
			} else {
				n2++
				if pred == -1 {
					ok2++
				}
			}
		}
	}
	res := CVResult{}
	if n1 > 0 {
		res.Acc1 = float64(ok1) / float64(n1)
	}
	if n2 > 0 {
		res.Acc2 = float64(ok2) / float64(n2)
	}
	if total > 0 {
		res.PredictedPos = float64(predPos) / float64(total)
	}
	res.FScore = FScore(res.Acc1, res.Acc2)
	return res, nil
}
