package svm

import "context"

// FScore computes the paper's Eq. 1 from the two per-class accuracies:
// 2·A1·A2/(A1+A2), where A1 is the fraction of class-1 (SOC-generating)
// examples classified correctly and A2 the fraction of class-2.
func FScore(acc1, acc2 float64) float64 {
	if acc1+acc2 == 0 {
		return 0
	}
	return 2 * acc1 * acc2 / (acc1 + acc2)
}

// StratifiedFolds deterministically partitions sample indices into k
// folds preserving the class ratio: samples of each class are dealt
// round-robin across folds in index order.
func StratifiedFolds(y []int, k int) [][]int {
	if k < 2 {
		k = 2
	}
	folds := make([][]int, k)
	cnt := map[int]int{}
	for i, yi := range y {
		f := cnt[yi] % k
		folds[f] = append(folds[f], i)
		cnt[yi]++
	}
	return folds
}

// CVResult aggregates cross-validation outcomes for one configuration.
type CVResult struct {
	Acc1   float64 // recall on class +1 (SOC-generating)
	Acc2   float64 // recall on class -1
	FScore float64
	// PredictedPos is the fraction of all held-out samples predicted
	// positive, an overhead proxy used in reporting.
	PredictedPos float64
}

// foldSplit is one precomputed train/test partition: grid search
// evaluates every (C, γ) on the same folds, so the index bookkeeping
// and the training sub-problem are built once per search, not once per
// configuration.
type foldSplit struct {
	test     []int
	trainIdx []int
	sub      *Problem
	// degenerate marks folds whose training half contains one class
	// only; they are skipped, matching the serial path.
	degenerate bool
}

// makeFoldSplits precomputes the k stratified train/test partitions.
func makeFoldSplits(p *Problem, k int) []foldSplit {
	folds := StratifiedFolds(p.Y, k)
	splits := make([]foldSplit, len(folds))
	for fi := range folds {
		test := folds[fi]
		inTest := map[int]bool{}
		for _, i := range test {
			inTest[i] = true
		}
		sp := foldSplit{test: test}
		sub := &Problem{}
		for i := range p.X {
			if !inTest[i] {
				sp.trainIdx = append(sp.trainIdx, i)
				sub.X = append(sub.X, p.X[i])
				sub.Y = append(sub.Y, p.Y[i])
			}
		}
		sp.sub = sub
		if pos, neg := sub.Count(); pos == 0 || neg == 0 {
			sp.degenerate = true
		}
		splits[fi] = sp
	}
	return splits
}

// CrossValidate evaluates params with k-fold stratified CV. dist must
// be the squared-distance matrix of p.X (see SqDistMatrix); it is
// shared across folds and configurations.
//
// This is the reference (serial) path: each fold exponentiates its own
// sub-kernel and scores held-out samples through Model.Predict. The
// kernel-cached path (CrossValidateContext) is test-asserted to be
// bit-identical to it.
func CrossValidate(p *Problem, params Params, dist [][]float64, k int) (CVResult, error) {
	var agg cvAccum
	for _, sp := range makeFoldSplits(p, k) {
		if sp.degenerate {
			continue
		}
		model, err := TrainWithDist(sp.sub, params, dist, sp.trainIdx)
		if err != nil {
			return CVResult{}, err
		}
		for _, i := range sp.test {
			agg.add(p.Y[i], model.Predict(p.X[i]))
		}
	}
	return agg.result(), nil
}

// CrossValidateContext evaluates params with k-fold stratified CV using
// a precomputed kernel matrix for params.Gamma over all of p.X (see
// KernelCache.Matrix). Training selects sub-kernels by lookup and
// held-out samples are scored from the same matrix rows, so no
// exp(-γ·d) is recomputed; results are bit-identical to CrossValidate
// because the kernel entries and the accumulation order are the same.
func CrossValidateContext(ctx context.Context, p *Problem, params Params, kernel [][]float64, k int) (CVResult, error) {
	return crossValidateKernel(ctx, p, params, kernel, makeFoldSplits(p, k))
}

// crossValidateKernel is CrossValidateContext over pre-built splits
// (the grid search shares one split set across all configurations).
func crossValidateKernel(ctx context.Context, p *Problem, params Params, kernel [][]float64, splits []foldSplit) (CVResult, error) {
	var agg cvAccum
	for _, sp := range splits {
		if sp.degenerate {
			continue
		}
		if err := ctx.Err(); err != nil {
			return CVResult{}, err
		}
		model, svIdx, err := trainKernel(ctx, sp.sub, params, kernel, sp.trainIdx)
		if err != nil {
			return CVResult{}, err
		}
		for _, i := range sp.test {
			// Decision by kernel lookup: kernel[sv][i] carries the
			// identical bits rbf(SV, x) would produce, in the same
			// summation order as Model.Decision.
			s := model.B
			for c, g := range svIdx {
				s += model.Coef[c] * kernel[g][i]
			}
			pred := -1
			if s >= 0 {
				pred = 1
			}
			agg.add(p.Y[i], pred)
		}
	}
	return agg.result(), nil
}

// cvAccum tallies per-class hit counts across folds.
type cvAccum struct {
	ok1, n1, ok2, n2, predPos, total int
}

func (a *cvAccum) add(label, pred int) {
	a.total++
	if pred == 1 {
		a.predPos++
	}
	if label == 1 {
		a.n1++
		if pred == 1 {
			a.ok1++
		}
	} else {
		a.n2++
		if pred == -1 {
			a.ok2++
		}
	}
}

func (a *cvAccum) result() CVResult {
	res := CVResult{}
	if a.n1 > 0 {
		res.Acc1 = float64(a.ok1) / float64(a.n1)
	}
	if a.n2 > 0 {
		res.Acc2 = float64(a.ok2) / float64(a.n2)
	}
	if a.total > 0 {
		res.PredictedPos = float64(a.predPos) / float64(a.total)
	}
	res.FScore = FScore(res.Acc1, res.Acc2)
	return res
}
