package svm

import (
	"math"
	"sort"
)

// GridSpec describes the (C, γ) hyper-parameter grid. The paper varies
// C between 1 and 100,000 and γ between 0.00001 and 1 with 500
// combinations; LogGrid reproduces that on logarithmic axes.
type GridSpec struct {
	Cs     []float64
	Gammas []float64
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// WeightByClassFreq enables inverse-frequency class weights, the
	// imbalance countermeasure §4.3.1 motivates.
	WeightByClassFreq bool
}

// LogGrid builds nc log-spaced C values in [cLo, cHi] and ng log-spaced
// gamma values in [gLo, gHi].
func LogGrid(cLo, cHi float64, nc int, gLo, gHi float64, ng int) GridSpec {
	return GridSpec{Cs: logSpace(cLo, cHi, nc), Gammas: logSpace(gLo, gHi, ng), Folds: 5}
}

// PaperGrid is the paper's search space: 25 × 20 = 500 configurations,
// C ∈ [1, 1e5], γ ∈ [1e-5, 1].
func PaperGrid() GridSpec { return LogGrid(1, 1e5, 25, 1e-5, 1, 20) }

// QuickGrid is a reduced 48-point grid for laptop-scale runs.
func QuickGrid() GridSpec { return LogGrid(1, 1e5, 8, 1e-5, 1, 6) }

func logSpace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Config is one evaluated grid point.
type Config struct {
	Params Params
	CV     CVResult
}

// GridSearch cross-validates every (C, γ) combination and returns the
// configurations sorted by descending F-score (ties broken towards
// smaller predicted-positive fraction, i.e. less protection overhead,
// then by C and γ for determinism).
func GridSearch(p *Problem, spec GridSpec) ([]Config, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	folds := spec.Folds
	if folds <= 0 {
		folds = 5
	}
	var wPos, wNeg float64
	if spec.WeightByClassFreq {
		pos, neg := p.Count()
		if pos > 0 && neg > 0 {
			n := float64(pos + neg)
			// Inverse class frequency, normalized so weights average 1.
			wPos = n / (2 * float64(pos))
			wNeg = n / (2 * float64(neg))
		}
	}
	dist := SqDistMatrix(p.X)
	var out []Config
	for _, c := range spec.Cs {
		for _, g := range spec.Gammas {
			params := Params{C: c, Gamma: g, WeightPos: wPos, WeightNeg: wNeg}
			cv, err := CrossValidate(p, params, dist, folds)
			if err != nil {
				return nil, err
			}
			out = append(out, Config{Params: params, CV: cv})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CV.FScore != b.CV.FScore {
			return a.CV.FScore > b.CV.FScore
		}
		if a.CV.PredictedPos != b.CV.PredictedPos {
			return a.CV.PredictedPos < b.CV.PredictedPos
		}
		if a.Params.C != b.Params.C {
			return a.Params.C < b.Params.C
		}
		return a.Params.Gamma < b.Params.Gamma
	})
	return out, nil
}

// TopN returns the best n configurations (fewer if the grid is small),
// the paper's "top-5 configurations" selection (§6.1).
func TopN(cfgs []Config, n int) []Config {
	if n > len(cfgs) {
		n = len(cfgs)
	}
	return cfgs[:n]
}
