package svm

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
)

// GridSpec describes the (C, γ) hyper-parameter grid. The paper varies
// C between 1 and 100,000 and γ between 0.00001 and 1 with 500
// combinations; LogGrid reproduces that on logarithmic axes.
type GridSpec struct {
	Cs     []float64
	Gammas []float64
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// WeightByClassFreq enables inverse-frequency class weights, the
	// imbalance countermeasure §4.3.1 motivates.
	WeightByClassFreq bool
	// MaxIter, when positive, bounds SMO iterations per trained model
	// (0 keeps the per-problem default, 100·n with a 10,000 floor).
	MaxIter int
}

// LogGrid builds nc log-spaced C values in [cLo, cHi] and ng log-spaced
// gamma values in [gLo, gHi].
func LogGrid(cLo, cHi float64, nc int, gLo, gHi float64, ng int) GridSpec {
	return GridSpec{Cs: logSpace(cLo, cHi, nc), Gammas: logSpace(gLo, gHi, ng), Folds: 5}
}

// PaperGrid is the paper's search space: 25 × 20 = 500 configurations,
// C ∈ [1, 1e5], γ ∈ [1e-5, 1].
func PaperGrid() GridSpec { return LogGrid(1, 1e5, 25, 1e-5, 1, 20) }

// QuickGrid is a reduced 48-point grid for laptop-scale runs.
func QuickGrid() GridSpec { return LogGrid(1, 1e5, 8, 1e-5, 1, 6) }

func logSpace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Config is one evaluated grid point.
type Config struct {
	Params Params
	CV     CVResult
}

// SearchOptions tunes GridSearchContext. The zero value searches with
// one worker per CPU and no progress reporting.
type SearchOptions struct {
	// Workers bounds concurrent grid-point evaluations (≤ 0 uses
	// GOMAXPROCS). Every grid point is evaluated independently and
	// gathered by grid index, so results are bit-identical for any
	// worker count.
	Workers int
	// Progress, when non-nil, is called under the search's lock after
	// each evaluated grid point with the completed and total counts.
	Progress func(done, total int)
	// CacheCapacity bounds retained per-γ kernel matrices (≤ 0 uses
	// DefaultKernelCacheCap). Grid points are dispatched γ-major, so a
	// small capacity already captures nearly all reuse.
	CacheCapacity int
}

// GridSearch cross-validates every (C, γ) combination and returns the
// configurations sorted by descending F-score (ties broken towards
// smaller predicted-positive fraction, i.e. less protection overhead,
// then by C and γ for determinism).
func GridSearch(p *Problem, spec GridSpec) ([]Config, error) {
	return GridSearchContext(context.Background(), p, spec, SearchOptions{})
}

// GridSearchContext is GridSearch with a bounded worker pool,
// cancellation, and progress reporting. Each (C, γ) point is evaluated
// independently against a shared per-γ kernel cache and gathered by
// grid index, so the ranking is bit-identical regardless of worker
// count or scheduling. On cancellation the configurations evaluated so
// far are returned — sorted — together with ctx's error, matching the
// campaign engine's partial-results contract.
func GridSearchContext(ctx context.Context, p *Problem, spec GridSpec, opts SearchOptions) ([]Config, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	folds := spec.Folds
	if folds <= 0 {
		folds = 5
	}
	var wPos, wNeg float64
	if spec.WeightByClassFreq {
		pos, neg := p.Count()
		if pos > 0 && neg > 0 {
			n := float64(pos + neg)
			// Inverse class frequency, normalized so weights average 1.
			wPos = n / (2 * float64(pos))
			wNeg = n / (2 * float64(neg))
		}
	}

	total := len(spec.Cs) * len(spec.Gammas)
	if total == 0 {
		return nil, errors.New("svm: empty grid")
	}
	// γ-major dispatch order: consecutive tasks share a kernel matrix,
	// so even a small cache serves every C and fold of a γ from one
	// exponentiation. The task index doubles as the deterministic
	// gather slot (and final sort tiebreaker).
	params := make([]Params, 0, total)
	for _, g := range spec.Gammas {
		for _, c := range spec.Cs {
			params = append(params, Params{C: c, Gamma: g, WeightPos: wPos, WeightNeg: wNeg, MaxIter: spec.MaxIter})
		}
	}

	dist := SqDistMatrix(p.X)
	cache := NewKernelCache(dist, opts.CacheCapacity)
	splits := makeFoldSplits(p, folds)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	results := make([]Config, total)
	evaluated := make([]bool, total)
	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				kernel := cache.Matrix(params[t].Gamma)
				cv, err := crossValidateKernel(ctx, p, params[t], kernel, splits)
				mu.Lock()
				if err != nil {
					// Cancellation surfaces through ctx below; any
					// other error fails the search.
					if ctx.Err() == nil && firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				results[t] = Config{Params: params[t], CV: cv}
				evaluated[t] = true
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for t := 0; t < total; t++ {
		select {
		case next <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	order := make([]int, 0, total)
	for t := range results {
		if evaluated[t] {
			order = append(order, t)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return configLess(&results[order[a]], &results[order[b]], order[a], order[b])
	})
	out := make([]Config, len(order))
	for i, t := range order {
		out[i] = results[t]
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// configLess is the ranking order: descending F-score, then smaller
// predicted-positive fraction (less protection overhead), then C and γ,
// then grid index — a strict total order, so the sorted ranking is
// identical however the evaluations were scheduled.
func configLess(a, b *Config, ai, bi int) bool {
	if a.CV.FScore != b.CV.FScore {
		return a.CV.FScore > b.CV.FScore
	}
	if a.CV.PredictedPos != b.CV.PredictedPos {
		return a.CV.PredictedPos < b.CV.PredictedPos
	}
	if a.Params.C != b.Params.C {
		return a.Params.C < b.Params.C
	}
	if a.Params.Gamma != b.Params.Gamma {
		return a.Params.Gamma < b.Params.Gamma
	}
	return ai < bi
}

// TopN returns the best n configurations (fewer if the grid is small),
// the paper's "top-5 configurations" selection (§6.1).
func TopN(cfgs []Config, n int) []Config {
	if n > len(cfgs) {
		n = len(cfgs)
	}
	return cfgs[:n]
}
