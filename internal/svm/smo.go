package svm

import (
	"context"
	"fmt"
	"math"
)

// Train fits a C-SVC model on the problem.
func Train(p *Problem, params Params) (*Model, error) {
	return TrainContext(context.Background(), p, params)
}

// TrainContext is Train with cancellation: the SMO loop polls ctx
// periodically and aborts with its error. Cancellation never alters
// results — a run that completes is bit-identical to one trained
// without a context.
func TrainContext(ctx context.Context, p *Problem, params Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := SqDistMatrix(p.X)
	return trainDist(ctx, p, params, d, nil)
}

// TrainWithDist fits a model using a precomputed squared-distance
// matrix over a superset of samples. idx maps problem rows to distance-
// matrix rows (nil means identity). This lets cross validation and grid
// search share one O(n²·dim) distance computation.
func TrainWithDist(p *Problem, params Params, dist [][]float64, idx []int) (*Model, error) {
	return trainDist(context.Background(), p, params, dist, idx)
}

// TrainWithKernel fits a model using a precomputed kernel matrix for
// params.Gamma over a superset of samples (see KernelCache). idx maps
// problem rows to kernel-matrix rows (nil means identity). Because the
// cached kernel entries are the same exp(-γ·d) values TrainWithDist
// computes, the resulting model is bit-identical.
func TrainWithKernel(ctx context.Context, p *Problem, params Params, kernel [][]float64, idx []int) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, _, err := trainKernel(ctx, p, params, kernel, idx)
	return m, err
}

func trainDist(ctx context.Context, p *Problem, params Params, dist [][]float64, idx []int) (*Model, error) {
	n := len(p.X)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty problem")
	}
	if idx == nil {
		idx = identity(n)
	}
	// Kernel matrix for this gamma.
	K := newSquare(n)
	for i := 0; i < n; i++ {
		di := dist[idx[i]]
		for j := 0; j < n; j++ {
			K[i][j] = math.Exp(-params.Gamma * di[idx[j]])
		}
	}
	m, _, err := solve(ctx, p, params, K)
	return m, err
}

// trainKernel fits a model on the sub-kernel selected by idx from a
// full kernel matrix. It additionally returns, for each support vector,
// its row index in the full matrix, so cross validation can score
// held-out samples by kernel lookup instead of recomputing exp(-γ·d).
func trainKernel(ctx context.Context, p *Problem, params Params, kernel [][]float64, idx []int) (*Model, []int, error) {
	n := len(p.X)
	if n == 0 {
		return nil, nil, fmt.Errorf("svm: empty problem")
	}
	if idx == nil {
		idx = identity(n)
	}
	K := newSquare(n)
	for i := 0; i < n; i++ {
		ki := kernel[idx[i]]
		row := K[i]
		for j := 0; j < n; j++ {
			row[j] = ki[idx[j]]
		}
	}
	m, sv, err := solve(ctx, p, params, K)
	if err != nil {
		return nil, nil, err
	}
	svIdx := make([]int, len(sv))
	for i, t := range sv {
		svIdx[i] = idx[t]
	}
	return m, svIdx, nil
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// newSquare allocates an n×n matrix backed by one contiguous buffer.
func newSquare(n int) [][]float64 {
	rows := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range rows {
		rows[i] = buf[i*n : (i+1)*n]
	}
	return rows
}

// ctxCheckInterval is how many SMO iterations run between cancellation
// polls; cheap enough to be invisible, frequent enough that training
// honours a cancel within microseconds.
const ctxCheckInterval = 1024

// solve runs SMO with maximal-violating-pair selection on the dense
// kernel matrix K and assembles the model. It returns the problem-row
// indices of the support vectors alongside.
//
// We solve: min 1/2 αᵀQα - eᵀα, 0 ≤ α_i ≤ C_i, yᵀα = 0,
// where Q_ij = y_i y_j K_ij. G is the gradient Qα - e.
func solve(ctx context.Context, p *Problem, params Params, K [][]float64) (*Model, []int, error) {
	n := len(p.X)
	params = params.withDefaults(n)

	y := make([]float64, n)
	cN := make([]float64, n) // per-sample penalty
	for i, yi := range p.Y {
		y[i] = float64(yi)
		if yi == 1 {
			cN[i] = params.C * params.WeightPos
		} else {
			cN[i] = params.C * params.WeightNeg
		}
	}

	alpha := make([]float64, n)
	G := make([]float64, n)
	for i := range G {
		G[i] = -1
	}

	iter := 0
	for ; iter < params.MaxIter; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		// Select the maximal violating pair (i, j).
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			if (y[t] > 0 && alpha[t] < cN[t]) || (y[t] < 0 && alpha[t] > 0) {
				if v := -y[t] * G[t]; v > gmax {
					gmax = v
					i = t
				}
			}
		}
		if i < 0 {
			break
		}
		// Second-order selection (LIBSVM WSS2): among violating j,
		// pick the one with the largest decrease of the objective.
		objMin := math.Inf(1)
		for t := 0; t < n; t++ {
			if (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < cN[t]) {
				gt := -y[t] * G[t]
				if gt < gmin {
					gmin = gt
				}
				diff := gmax - gt
				if diff > 0 {
					quad := K[i][i] + K[t][t] - 2*y[i]*y[t]*K[i][t]
					if quad <= 0 {
						quad = 1e-12
					}
					if obj := -diff * diff / quad; obj < objMin {
						objMin = obj
						j = t
					}
				}
			}
		}
		if gmax-gmin < params.Eps || j < 0 {
			break
		}

		// Analytic update of the pair.
		quad := K[i][i] + K[j][j] - 2*y[i]*y[j]*K[i][j]
		if quad <= 0 {
			quad = 1e-12
		}
		delta := (-y[i]*G[i] + y[j]*G[j]) / quad
		oldAi, oldAj := alpha[i], alpha[j]
		alpha[i] += y[i] * delta
		alpha[j] -= y[j] * delta

		// Clip to the feasible box keeping yᵀα constant.
		sum := y[i]*oldAi + y[j]*oldAj
		alpha[i] = clamp(alpha[i], 0, cN[i])
		alpha[j] = y[j] * (sum - y[i]*alpha[i])
		alpha[j] = clamp(alpha[j], 0, cN[j])
		alpha[i] = y[i] * (sum - y[j]*alpha[j])
		alpha[i] = clamp(alpha[i], 0, cN[i])

		dAi, dAj := alpha[i]-oldAi, alpha[j]-oldAj
		if dAi == 0 && dAj == 0 {
			break
		}
		for t := 0; t < n; t++ {
			G[t] += y[t] * (y[i]*K[i][t]*dAi + y[j]*K[j][t]*dAj)
		}
	}

	// Bias: average -y_t G_t over free vectors, or the KKT midpoint.
	var bSum float64
	nFree := 0
	lb, ub := math.Inf(-1), math.Inf(1)
	for t := 0; t < n; t++ {
		v := -y[t] * G[t]
		if alpha[t] > 0 && alpha[t] < cN[t] {
			bSum += v
			nFree++
		} else if (y[t] > 0 && alpha[t] == 0) || (y[t] < 0 && alpha[t] == cN[t]) {
			if v > lb {
				lb = v
			}
		} else {
			if v < ub {
				ub = v
			}
		}
	}
	var b float64
	if nFree > 0 {
		b = bSum / float64(nFree)
	} else if !math.IsInf(lb, -1) && !math.IsInf(ub, 1) {
		b = (lb + ub) / 2
	}

	m := &Model{Gamma: params.Gamma, B: b, Iters: iter}
	var sv []int
	for t := 0; t < n; t++ {
		if alpha[t] > 0 {
			m.SV = append(m.SV, p.X[t])
			m.Coef = append(m.Coef, alpha[t]*y[t])
			sv = append(sv, t)
		}
	}
	return m, sv, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
