package svm

import (
	"encoding/json"
	"fmt"
	"math"
)

// modelJSON is the on-disk form of a trained model. Floats are stored
// as IEEE-754 bit patterns so models round-trip exactly.
type modelJSON struct {
	Gamma uint64     `json:"gamma_bits"`
	B     uint64     `json:"b_bits"`
	Coef  []uint64   `json:"coef_bits"`
	SV    [][]uint64 `json:"sv_bits"`
}

// MarshalJSON implements json.Marshaler with bit-exact floats.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Gamma: math.Float64bits(m.Gamma),
		B:     math.Float64bits(m.B),
	}
	for _, c := range m.Coef {
		out.Coef = append(out.Coef, math.Float64bits(c))
	}
	for _, sv := range m.SV {
		row := make([]uint64, len(sv))
		for i, v := range sv {
			row[i] = math.Float64bits(v)
		}
		out.SV = append(out.SV, row)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Coef) != len(in.SV) {
		return fmt.Errorf("svm: model has %d coefficients for %d support vectors", len(in.Coef), len(in.SV))
	}
	m.Gamma = math.Float64frombits(in.Gamma)
	m.B = math.Float64frombits(in.B)
	m.Coef = nil
	m.SV = nil
	for _, c := range in.Coef {
		m.Coef = append(m.Coef, math.Float64frombits(c))
	}
	dim := -1
	for _, row := range in.SV {
		if dim < 0 {
			dim = len(row)
		} else if len(row) != dim {
			return fmt.Errorf("svm: ragged support vectors")
		}
		sv := make([]float64, len(row))
		for i, v := range row {
			sv[i] = math.Float64frombits(v)
		}
		m.SV = append(m.SV, sv)
	}
	return nil
}

// scalerJSON is the on-disk form of a Scaler.
type scalerJSON struct {
	Min []uint64 `json:"min_bits"`
	Max []uint64 `json:"max_bits"`
}

// MarshalJSON implements json.Marshaler.
func (s *Scaler) MarshalJSON() ([]byte, error) {
	out := scalerJSON{}
	for _, v := range s.Min {
		out.Min = append(out.Min, math.Float64bits(v))
	}
	for _, v := range s.Max {
		out.Max = append(out.Max, math.Float64bits(v))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Scaler) UnmarshalJSON(data []byte) error {
	var in scalerJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Min) != len(in.Max) {
		return fmt.Errorf("svm: scaler min/max length mismatch")
	}
	s.Min, s.Max = nil, nil
	for _, v := range in.Min {
		s.Min = append(s.Min, math.Float64frombits(v))
	}
	for _, v := range in.Max {
		s.Max = append(s.Max, math.Float64frombits(v))
	}
	return nil
}
