package svm

import (
	"math"
	"testing"
	"testing/quick"
)

// lcg is a tiny deterministic RNG for test data.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

func blobs(n int, sep float64) *Problem {
	r := lcg(42)
	p := &Problem{}
	for i := 0; i < n; i++ {
		y := 1
		cx, cy := sep, sep
		if i%2 == 0 {
			y = -1
			cx, cy = -sep, -sep
		}
		p.X = append(p.X, []float64{cx + r.next() - 0.5, cy + r.next() - 0.5})
		p.Y = append(p.Y, y)
	}
	return p
}

func TestTrainSeparable(t *testing.T) {
	p := blobs(120, 2.0)
	m, err := Train(p, Params{C: 10, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range p.X {
		if m.Predict(p.X[i]) != p.Y[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Fatalf("separable data: %d training errors", errs)
	}
	if len(m.SV) == 0 || len(m.SV) == len(p.X) {
		t.Fatalf("suspicious SV count %d of %d", len(m.SV), len(p.X))
	}
}

func TestTrainXOR(t *testing.T) {
	// XOR is not linearly separable; RBF must handle it.
	p := &Problem{}
	r := lcg(7)
	for i := 0; i < 200; i++ {
		x := []float64{r.next()*2 - 1, r.next()*2 - 1}
		y := -1
		if (x[0] > 0) != (x[1] > 0) {
			y = 1
		}
		// Margin: drop points too close to the axes.
		if math.Abs(x[0]) < 0.1 || math.Abs(x[1]) < 0.1 {
			continue
		}
		p.X = append(p.X, x)
		p.Y = append(p.Y, y)
	}
	m, err := Train(p, Params{C: 100, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range p.X {
		if m.Predict(p.X[i]) != p.Y[i] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(p.X)); frac > 0.05 {
		t.Fatalf("XOR training error rate %.2f > 0.05", frac)
	}
}

func TestClassWeightsHelpImbalance(t *testing.T) {
	// 5% positives inside a wide negative cloud; with inverse-frequency
	// weights the positive recall must improve.
	r := lcg(99)
	p := &Problem{}
	for i := 0; i < 400; i++ {
		if i%20 == 0 {
			p.X = append(p.X, []float64{1.5 + 0.3*(r.next()-0.5), 1.5 + 0.3*(r.next()-0.5)})
			p.Y = append(p.Y, 1)
		} else {
			p.X = append(p.X, []float64{3 * (r.next() - 0.5), 3 * (r.next() - 0.5)})
			p.Y = append(p.Y, -1)
		}
	}
	recall := func(wp, wn float64) float64 {
		m, err := Train(p, Params{C: 1, Gamma: 0.5, WeightPos: wp, WeightNeg: wn})
		if err != nil {
			t.Fatal(err)
		}
		ok, n := 0, 0
		for i := range p.X {
			if p.Y[i] == 1 {
				n++
				if m.Predict(p.X[i]) == 1 {
					ok++
				}
			}
		}
		return float64(ok) / float64(n)
	}
	unweighted := recall(1, 1)
	weighted := recall(10, 0.526)
	if weighted < unweighted {
		t.Fatalf("weighted recall %.2f < unweighted %.2f", weighted, unweighted)
	}
	if weighted < 0.9 {
		t.Fatalf("weighted recall %.2f < 0.9", weighted)
	}
}

func TestFScore(t *testing.T) {
	if FScore(0, 0) != 0 {
		t.Error("FScore(0,0) != 0")
	}
	if FScore(1, 1) != 1 {
		t.Error("FScore(1,1) != 1")
	}
	if got := FScore(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("FScore(0.5,1) = %v", got)
	}
	// Property: symmetric and bounded by min*2/(sum) <= 1.
	f := func(a, b uint8) bool {
		x, y := float64(a)/255, float64(b)/255
		s1, s2 := FScore(x, y), FScore(y, x)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStratifiedFolds(t *testing.T) {
	y := make([]int, 100)
	for i := range y {
		if i < 10 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	folds := StratifiedFolds(y, 5)
	seen := map[int]bool{}
	for _, f := range folds {
		pos := 0
		for _, i := range f {
			if seen[i] {
				t.Fatal("index in two folds")
			}
			seen[i] = true
			if y[i] == 1 {
				pos++
			}
		}
		if pos != 2 {
			t.Fatalf("fold has %d positives, want 2", pos)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d of 100", len(seen))
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{0, 10, 5}, {4, 20, 5}, {2, 15, 5}}
	s := FitScaler(X)
	for _, x := range s.ApplyAll(X) {
		for d, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("scaled value %v out of range (dim %d)", v, d)
			}
		}
	}
	// Constant dimension maps to zero; out-of-range clamps.
	out := s.Apply([]float64{100, -5, 7})
	if out[0] != 1 || out[1] != 0 || out[2] != 0 {
		t.Fatalf("scaled outlier = %v", out)
	}
	// Property: output always within [0,1] regardless of input.
	f := func(a, b, c int16) bool {
		v := s.Apply([]float64{float64(a), float64(b), float64(c)})
		for _, x := range v {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridSearchRanksByFScore(t *testing.T) {
	p := blobs(80, 1.5)
	cfgs, err := GridSearch(p, GridSpec{Cs: []float64{1, 100}, Gammas: []float64{0.01, 1}, Folds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs, want 4", len(cfgs))
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].CV.FScore > cfgs[i-1].CV.FScore {
			t.Fatal("configs not sorted by F-score")
		}
	}
	if cfgs[0].CV.FScore < 0.9 {
		t.Fatalf("best F-score %.2f < 0.9 on easy data", cfgs[0].CV.FScore)
	}
	top := TopN(cfgs, 3)
	if len(top) != 3 {
		t.Fatal("TopN failed")
	}
}

func TestPaperGridShape(t *testing.T) {
	g := PaperGrid()
	if len(g.Cs)*len(g.Gammas) != 500 {
		t.Fatalf("paper grid has %d points, want 500", len(g.Cs)*len(g.Gammas))
	}
	if g.Cs[0] != 1 || math.Abs(g.Cs[len(g.Cs)-1]-1e5)/1e5 > 1e-9 {
		t.Fatalf("C range %v..%v", g.Cs[0], g.Cs[len(g.Cs)-1])
	}
	if math.Abs(g.Gammas[0]-1e-5)/1e-5 > 1e-9 || math.Abs(g.Gammas[len(g.Gammas)-1]-1)/1 > 1e-9 {
		t.Fatalf("gamma range %v..%v", g.Gammas[0], g.Gammas[len(g.Gammas)-1])
	}
}

func TestDecisionConsistency(t *testing.T) {
	p := blobs(60, 2)
	m, err := Train(p, Params{C: 10, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Property: Predict agrees with the sign of Decision.
	f := func(a, b int8) bool {
		x := []float64{float64(a) / 32, float64(b) / 32}
		d := m.Decision(x)
		pr := m.Predict(x)
		return (d >= 0 && pr == 1) || (d < 0 && pr == -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
