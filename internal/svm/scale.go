package svm

// Scaler linearly maps each feature dimension into [0, 1] using the
// ranges observed on the training set (the standard LIBSVM
// preprocessing the paper's workflow relies on).
type Scaler struct {
	Min []float64
	Max []float64
}

// FitScaler learns per-dimension ranges from X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	dim := len(X[0])
	s := &Scaler{Min: make([]float64, dim), Max: make([]float64, dim)}
	copy(s.Min, X[0])
	copy(s.Max, X[0])
	for _, x := range X[1:] {
		for d, v := range x {
			if v < s.Min[d] {
				s.Min[d] = v
			}
			if v > s.Max[d] {
				s.Max[d] = v
			}
		}
	}
	return s
}

// Apply returns a scaled copy of x. Dimensions that were constant on
// the training set map to 0. Values outside the training range clamp
// to [0, 1] so outliers at prediction time cannot blow up the kernel.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for d, v := range x {
		if d >= len(s.Min) {
			break
		}
		span := s.Max[d] - s.Min[d]
		if span <= 0 {
			continue
		}
		out[d] = clamp((v-s.Min[d])/span, 0, 1)
	}
	return out
}

// ApplyAll scales every row.
func (s *Scaler) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = s.Apply(x)
	}
	return out
}
