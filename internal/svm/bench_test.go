package svm

import (
	"context"
	"fmt"
	"testing"
)

// benchGridProblem is the grid-search benchmark dataset: two separable
// classes, large enough that kernel exponentiation is the dominant
// serial cost (as it is on the paper's feature vectors).
func benchGridProblem() *Problem {
	r := lcg(17)
	p := &Problem{}
	for i := 0; i < 640; i++ {
		y := 1
		c := 2.0
		if i%3 == 0 {
			y = -1
			c = -2.0
		}
		p.X = append(p.X, []float64{
			c + (r.next() - 0.5),
			c + (r.next() - 0.5),
			r.next(),
		})
		p.Y = append(p.Y, y)
	}
	return p
}

func benchGridSpec() GridSpec {
	spec := PaperGrid()
	spec.WeightByClassFreq = true
	// Bound SMO so hopeless corners of the grid (γ→0 kernels that
	// never separate) cost the same in every variant being compared.
	spec.MaxIter = 300
	return spec
}

// BenchmarkGridSearch measures the paper-scale 500-point (C, γ) search.
// serial-baseline is the pre-pipeline implementation (one goroutine,
// per-fold kernel exponentiation, rbf predictions); the workers-N
// variants run the pooled search with the per-γ kernel cache. All
// variants produce bit-identical rankings.
func BenchmarkGridSearch(b *testing.B) {
	p := benchGridProblem()
	spec := benchGridSpec()

	b.Run("serial-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := serialReferenceSearch(p, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 8} {
		// key=value naming, not workers-8: a trailing -digits group
		// would be indistinguishable from go test's -GOMAXPROCS name
		// suffix, which benchdiff strips to compare across machines.
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GridSearchContext(context.Background(), p, spec, SearchOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelCache isolates the cache's unit of work: producing the
// kernel matrix for one γ. miss exponentiates the distance matrix;
// hit returns the memoized rows (the state all but 1 of the ~125
// same-γ requests on the paper grid are served from).
func BenchmarkKernelCache(b *testing.B) {
	p := benchGridProblem()
	dist := SqDistMatrix(p.X)

	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewKernelCache(dist, 1)
			if rows := c.Matrix(0.1); len(rows) != len(dist) {
				b.Fatal("bad matrix")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := NewKernelCache(dist, 1)
		c.Matrix(0.1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rows := c.Matrix(0.1); len(rows) != len(dist) {
				b.Fatal("bad matrix")
			}
		}
	})
}
