package svm

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// overlappingBlobs builds a two-class problem with enough overlap that
// different (C, γ) points rank differently, exercising the sort.
func overlappingBlobs(n int) *Problem {
	r := lcg(7)
	p := &Problem{}
	for i := 0; i < n; i++ {
		y := 1
		c := 0.6
		if i%3 == 0 {
			y = -1
			c = -0.6
		}
		p.X = append(p.X, []float64{c + 1.5*(r.next()-0.5), c + 1.5*(r.next()-0.5)})
		p.Y = append(p.Y, y)
	}
	return p
}

// serialReferenceSearch replicates the pre-pipeline GridSearch: one
// goroutine, C-major order, per-fold kernel exponentiation through
// TrainWithDist, stable sort. It is the bit-exactness oracle for the
// parallel cached path (and the baseline its speedup is measured
// against in BenchmarkGridSearch).
func serialReferenceSearch(p *Problem, spec GridSpec) ([]Config, error) {
	folds := spec.Folds
	if folds <= 0 {
		folds = 5
	}
	var wPos, wNeg float64
	if spec.WeightByClassFreq {
		pos, neg := p.Count()
		if pos > 0 && neg > 0 {
			n := float64(pos + neg)
			wPos = n / (2 * float64(pos))
			wNeg = n / (2 * float64(neg))
		}
	}
	dist := SqDistMatrix(p.X)
	var out []Config
	for _, c := range spec.Cs {
		for _, g := range spec.Gammas {
			params := Params{C: c, Gamma: g, WeightPos: wPos, WeightNeg: wNeg, MaxIter: spec.MaxIter}
			cv, err := CrossValidate(p, params, dist, folds)
			if err != nil {
				return nil, err
			}
			out = append(out, Config{Params: params, CV: cv})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CV.FScore != b.CV.FScore {
			return a.CV.FScore > b.CV.FScore
		}
		if a.CV.PredictedPos != b.CV.PredictedPos {
			return a.CV.PredictedPos < b.CV.PredictedPos
		}
		if a.Params.C != b.Params.C {
			return a.Params.C < b.Params.C
		}
		return a.Params.Gamma < b.Params.Gamma
	})
	return out, nil
}

func testSpec() GridSpec {
	s := LogGrid(1, 1e4, 5, 1e-4, 1, 4)
	s.WeightByClassFreq = true
	return s
}

// TestGridSearchMatchesSerialReference pins the pipeline's core
// invariant: the cached, pooled search returns bit-identical rankings
// to the original serial implementation.
func TestGridSearchMatchesSerialReference(t *testing.T) {
	p := overlappingBlobs(90)
	spec := testSpec()
	want, err := serialReferenceSearch(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GridSearchContext(context.Background(), p, spec, SearchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flattenConfigs(got), flattenConfigs(want)) {
		t.Fatal("parallel cached search diverges from the serial reference")
	}
}

// TestGridSearchDeterministicAcrossWorkers asserts bit-identical output
// for workers ∈ {1, 4, GOMAXPROCS} (the acceptance invariant: worker
// count and scheduling must not leak into the ranking).
func TestGridSearchDeterministicAcrossWorkers(t *testing.T) {
	p := overlappingBlobs(90)
	spec := testSpec()
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref [][]uint64
	for _, w := range counts {
		cfgs, err := GridSearchContext(context.Background(), p, spec, SearchOptions{Workers: w, CacheCapacity: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		bits := flattenConfigs(cfgs)
		if ref == nil {
			ref = bits
			continue
		}
		if !reflect.DeepEqual(bits, ref) {
			t.Fatalf("workers=%d produced a different ranking than workers=%d", w, counts[0])
		}
	}
}

// flattenConfigs renders configs as float bit patterns so equality is
// exact (no -0/NaN surprises through reflect on floats).
func flattenConfigs(cfgs []Config) [][]uint64 {
	out := make([][]uint64, len(cfgs))
	for i, c := range cfgs {
		out[i] = []uint64{
			math.Float64bits(c.Params.C),
			math.Float64bits(c.Params.Gamma),
			math.Float64bits(c.Params.WeightPos),
			math.Float64bits(c.Params.WeightNeg),
			math.Float64bits(c.CV.Acc1),
			math.Float64bits(c.CV.Acc2),
			math.Float64bits(c.CV.FScore),
			math.Float64bits(c.CV.PredictedPos),
		}
	}
	return out
}

// TestGridSearchCancellation cancels mid-grid and asserts the partial-
// results contract: what came back is sorted, smaller than the grid,
// carries ctx's error, and the worker pool fully drains (no leaked
// goroutines).
func TestGridSearchCancellation(t *testing.T) {
	p := overlappingBlobs(90)
	spec := PaperGrid()
	spec.WeightByClassFreq = true
	spec.MaxIter = 2000

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	cfgs, err := GridSearchContext(ctx, p, spec, SearchOptions{
		Workers: 4,
		Progress: func(done, total int) {
			if calls.Add(1) == 10 {
				cancel()
			}
		},
	})
	cancel()
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := len(spec.Cs) * len(spec.Gammas)
	if len(cfgs) == 0 || len(cfgs) >= total {
		t.Fatalf("partial results: got %d of %d", len(cfgs), total)
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].CV.FScore > cfgs[i-1].CV.FScore {
			t.Fatal("partial results not sorted by F-score")
		}
	}
	// The pool must have drained: goroutine count returns to (about)
	// its pre-search level.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before search, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGridSearchProgress verifies the progress callback counts every
// grid point exactly once and ends at the total.
func TestGridSearchProgress(t *testing.T) {
	p := overlappingBlobs(60)
	spec := testSpec()
	var last, calls int
	_, err := GridSearchContext(context.Background(), p, spec, SearchOptions{
		Workers: 2,
		Progress: func(done, total int) {
			calls++
			if done != last+1 || total != len(spec.Cs)*len(spec.Gammas) {
				t.Errorf("progress(%d, %d) after %d", done, total, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(spec.Cs)*len(spec.Gammas) {
		t.Fatalf("progress called %d times, want %d", calls, len(spec.Cs)*len(spec.Gammas))
	}
}

// TestTrainContextCancelled asserts training honours a pre-cancelled
// context instead of fitting a model.
func TestTrainContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := overlappingBlobs(60)
	if _, err := TrainContext(ctx, p, Params{C: 10, Gamma: 0.5}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
