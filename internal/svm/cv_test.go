package svm

import (
	"context"
	"testing"
)

// TestCrossValidateMoreFoldsThanSamples covers k > n: stratified folds
// come out empty or degenerate and must be skipped, not crash.
func TestCrossValidateMoreFoldsThanSamples(t *testing.T) {
	p := &Problem{
		X: [][]float64{{0, 0}, {0.1, 0}, {1, 1}, {1.1, 1}, {0, 0.2}, {1, 0.9}},
		Y: []int{-1, -1, 1, 1, -1, 1},
	}
	dist := SqDistMatrix(p.X)
	res, err := CrossValidate(p, Params{C: 10, Gamma: 1}, dist, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedPos < 0 || res.PredictedPos > 1 {
		t.Fatalf("PredictedPos = %v", res.PredictedPos)
	}
	kres, err := CrossValidateContext(context.Background(), p, Params{C: 10, Gamma: 1},
		NewKernelCache(dist, 1).Matrix(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cvBits(kres) != cvBits(res) {
		t.Fatalf("kernel path %+v != reference %+v with k > n", kres, res)
	}
}

// TestCrossValidateSingleClassFold covers a lone positive sample: the
// fold holding it in the test half trains on one class only, is marked
// degenerate, and must be skipped without failing the other folds.
func TestCrossValidateSingleClassFold(t *testing.T) {
	p := &Problem{}
	r := lcg(3)
	p.X = append(p.X, []float64{2, 2})
	p.Y = append(p.Y, 1)
	for i := 0; i < 9; i++ {
		p.X = append(p.X, []float64{r.next() - 0.5, r.next() - 0.5})
		p.Y = append(p.Y, -1)
	}
	dist := SqDistMatrix(p.X)
	res, err := CrossValidate(p, Params{C: 10, Gamma: 0.5}, dist, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The positive sample only ever appears in the degenerate fold's
	// test half, so class-1 recall is never measured.
	if res.Acc1 != 0 || res.FScore != 0 {
		t.Fatalf("expected zero class-1 recall, got %+v", res)
	}
	if res.Acc2 == 0 {
		t.Fatalf("negative folds were not evaluated: %+v", res)
	}

	splits := makeFoldSplits(p, 5)
	degenerate := 0
	for _, sp := range splits {
		if sp.degenerate {
			degenerate++
		}
	}
	if degenerate != 1 {
		t.Fatalf("%d degenerate folds, want 1", degenerate)
	}
}
