package svm

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestKernelCacheMatchesDirect(t *testing.T) {
	p := overlappingBlobs(40)
	dist := SqDistMatrix(p.X)
	c := NewKernelCache(dist, 2)
	for _, gamma := range []float64{1e-5, 0.1, 1} {
		got := c.Matrix(gamma)
		for i := range dist {
			for j := range dist[i] {
				want := math.Exp(-gamma * dist[i][j])
				if math.Float64bits(got[i][j]) != math.Float64bits(want) {
					t.Fatalf("γ=%v K[%d][%d] = %v, want %v", gamma, i, j, got[i][j], want)
				}
			}
		}
	}
}

func TestKernelCacheHitsAndEviction(t *testing.T) {
	p := overlappingBlobs(20)
	c := NewKernelCache(SqDistMatrix(p.X), 2)

	a := c.Matrix(0.5)
	if b := c.Matrix(0.5); &b[0][0] != &a[0][0] {
		t.Fatal("second request recomputed the matrix")
	}
	c.Matrix(1.0)
	c.Matrix(2.0) // capacity 2: evicts the LRU entry (γ=0.5)
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 3 misses / 1 hit", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want at least one eviction", st)
	}
	if b := c.Matrix(0.5); &b[0][0] == &a[0][0] {
		t.Fatal("evicted entry was still served from cache")
	}
}

// TestKernelCacheConcurrent hammers one γ from many goroutines: the
// matrix must be computed once and shared (run under -race this also
// checks the publication discipline).
func TestKernelCacheConcurrent(t *testing.T) {
	p := overlappingBlobs(30)
	c := NewKernelCache(SqDistMatrix(p.X), 2)
	const goroutines = 16
	rows := make([][][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rows[g] = c.Matrix(0.25)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if &rows[g][0][0] != &rows[0][0][0] {
			t.Fatal("concurrent requesters got distinct matrices")
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestCrossValidateKernelMatchesReference locks the bit-exact
// equivalence between the kernel-lookup CV path and the dist-based
// reference path, including with class weights.
func TestCrossValidateKernelMatchesReference(t *testing.T) {
	p := overlappingBlobs(75)
	dist := SqDistMatrix(p.X)
	cache := NewKernelCache(dist, 2)
	for _, params := range []Params{
		{C: 10, Gamma: 0.5},
		{C: 1e4, Gamma: 1e-3, WeightPos: 3, WeightNeg: 0.6},
		{C: 1, Gamma: 1},
	} {
		want, err := CrossValidate(p, params, dist, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CrossValidateContext(context.Background(), p, params, cache.Matrix(params.Gamma), 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cvBits(got), cvBits(want)) {
			t.Fatalf("params %+v: kernel path %+v != reference %+v", params, got, want)
		}
	}
}

func cvBits(r CVResult) [4]uint64 {
	return [4]uint64{
		math.Float64bits(r.Acc1),
		math.Float64bits(r.Acc2),
		math.Float64bits(r.FScore),
		math.Float64bits(r.PredictedPos),
	}
}
