// Package svm implements a C-support-vector classifier with an RBF
// kernel, trained by sequential minimal optimization with maximal-
// violating-pair working-set selection (the algorithm family behind
// LIBSVM, which the paper uses via Chang & Lin's C-SVM). It supports
// per-class penalty weights for the class-imbalanced data the paper
// highlights (3–10 % SOC-generating samples), k-fold cross validation,
// and (C, γ) grid search ranked by the paper's F-score metric (Eq. 1).
package svm

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a binary classification dataset. Labels are +1 / -1.
type Problem struct {
	X [][]float64
	Y []int
}

// Validate checks dataset consistency.
func (p *Problem) Validate() error {
	if len(p.X) != len(p.Y) {
		return errors.New("svm: len(X) != len(Y)")
	}
	if len(p.X) == 0 {
		return errors.New("svm: empty problem")
	}
	dim := len(p.X[0])
	for i, x := range p.X {
		if len(x) != dim {
			return fmt.Errorf("svm: sample %d has dimension %d, want %d", i, len(x), dim)
		}
	}
	for i, y := range p.Y {
		if y != 1 && y != -1 {
			return fmt.Errorf("svm: label %d is %d, want ±1", i, y)
		}
	}
	return nil
}

// Count returns the number of positive and negative samples.
func (p *Problem) Count() (pos, neg int) {
	for _, y := range p.Y {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return
}

// Params configures training.
type Params struct {
	// C is the penalty factor (the paper sweeps 1..100,000).
	C float64
	// Gamma is the RBF kernel coefficient (the paper sweeps 1e-5..1).
	Gamma float64
	// ClassWeights scales C per class to counter imbalance; 0 values
	// default to 1. The IPAS pipeline sets them inversely proportional
	// to class frequency.
	WeightPos float64
	WeightNeg float64
	// Eps is the KKT-violation stopping tolerance (default 1e-3).
	Eps float64
	// MaxIter bounds SMO iterations (default 100 * n, min 10,000).
	MaxIter int
}

func (p Params) withDefaults(n int) Params {
	if p.WeightPos <= 0 {
		p.WeightPos = 1
	}
	if p.WeightNeg <= 0 {
		p.WeightNeg = 1
	}
	if p.Eps <= 0 {
		p.Eps = 1e-3
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 100 * n
		if p.MaxIter < 10000 {
			p.MaxIter = 10000
		}
	}
	return p
}

// Model is a trained classifier.
type Model struct {
	Gamma float64
	// SV are the support vectors with their dual coefficients
	// (alpha_i * y_i) and the bias term B.
	SV   [][]float64
	Coef []float64
	B    float64
	// Iters reports SMO iterations used in training.
	Iters int
}

// Decision returns the decision value f(x); the predicted class is its
// sign.
func (m *Model) Decision(x []float64) float64 {
	s := m.B
	for i, sv := range m.SV {
		s += m.Coef[i] * rbf(sv, x, m.Gamma)
	}
	return s
}

// Predict returns +1 or -1 for x.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// rbf is the radial basis kernel exp(-gamma * ||a-b||^2).
func rbf(a, b []float64, gamma float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-gamma * d)
}

// SqDistMatrix precomputes pairwise squared distances so a (C, γ) grid
// search can derive each kernel matrix with just an exponential, as
// K_ij = exp(-γ D_ij).
func SqDistMatrix(X [][]float64) [][]float64 {
	n := len(X)
	d := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range d {
		d[i] = buf[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			xi, xj := X[i], X[j]
			for k := range xi {
				diff := xi[k] - xj[k]
				s += diff * diff
			}
			d[i][j] = s
			d[j][i] = s
		}
	}
	return d
}
