package svm

import (
	"encoding/json"
	"math"
	"testing"
)

// TestModelRoundTripWithClassWeights trains on imbalanced data with
// inverse-frequency class weights (the IPAS configuration) and asserts
// the model survives JSON serialization bit-exactly.
func TestModelRoundTripWithClassWeights(t *testing.T) {
	r := lcg(5)
	p := &Problem{}
	for i := 0; i < 200; i++ {
		if i%10 == 0 {
			p.X = append(p.X, []float64{1.2 + 0.4*(r.next()-0.5), 1.2 + 0.4*(r.next()-0.5)})
			p.Y = append(p.Y, 1)
		} else {
			p.X = append(p.X, []float64{2.5 * (r.next() - 0.5), 2.5 * (r.next() - 0.5)})
			p.Y = append(p.Y, -1)
		}
	}
	m, err := Train(p, Params{C: 50, Gamma: 0.8, WeightPos: 5, WeightNeg: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SV) == 0 {
		t.Fatal("no support vectors")
	}

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(back.Gamma) != math.Float64bits(m.Gamma) ||
		math.Float64bits(back.B) != math.Float64bits(m.B) {
		t.Fatal("gamma/bias changed across round trip")
	}
	if len(back.Coef) != len(m.Coef) || len(back.SV) != len(m.SV) {
		t.Fatalf("shape changed: %d/%d coef, %d/%d SV", len(back.Coef), len(m.Coef), len(back.SV), len(m.SV))
	}
	for i := range m.Coef {
		if math.Float64bits(back.Coef[i]) != math.Float64bits(m.Coef[i]) {
			t.Fatalf("coef %d changed", i)
		}
		for d := range m.SV[i] {
			if math.Float64bits(back.SV[i][d]) != math.Float64bits(m.SV[i][d]) {
				t.Fatalf("SV %d dim %d changed", i, d)
			}
		}
	}
	// Decisions must agree bitwise everywhere, not just on training data.
	for i := 0; i < 50; i++ {
		x := []float64{4 * (r.next() - 0.5), 4 * (r.next() - 0.5)}
		if math.Float64bits(back.Decision(x)) != math.Float64bits(m.Decision(x)) {
			t.Fatalf("decision diverges at %v", x)
		}
	}
}

func TestModelUnmarshalRejectsCorruptShapes(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"coef_bits":[1],"sv_bits":[]}`), &m); err == nil {
		t.Fatal("coef/SV length mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`{"coef_bits":[1,2],"sv_bits":[[1],[1,2]]}`), &m); err == nil {
		t.Fatal("ragged support vectors accepted")
	}
}
