package svm

import (
	"math"
	"sync"
)

// KernelCache memoizes full RBF kernel matrices K_ij = exp(-γ·D_ij)
// per γ over one shared squared-distance matrix. On the paper's grid
// every γ is paired with 25 C values and 5 CV folds, so without the
// cache each exp(-γ·d) row is recomputed ~125 times; with it, once.
//
// The cache is safe for concurrent use by the grid-search worker pool:
// the first goroutine to request a γ computes its matrix while later
// requesters block on that entry, so a matrix is never built twice.
// Matrices are immutable once published; eviction only drops the
// cache's reference, so rows handed out earlier remain valid.
type KernelCache struct {
	dist     [][]float64
	capacity int

	mu      sync.Mutex
	entries map[uint64]*kernelEntry
	tick    uint64

	hits, misses, evictions uint64
}

type kernelEntry struct {
	ready   chan struct{}
	rows    [][]float64
	lastUse uint64
}

// DefaultKernelCacheCap bounds retained γ matrices when no explicit
// capacity is given: enough that a worker pool rarely thrashes, small
// enough that an n-sample search holds only a few n² matrices.
const DefaultKernelCacheCap = 4

// NewKernelCache wraps a squared-distance matrix (see SqDistMatrix).
// capacity bounds how many γ matrices are retained (≤ 0 uses
// DefaultKernelCacheCap); least-recently-used entries are evicted.
func NewKernelCache(dist [][]float64, capacity int) *KernelCache {
	if capacity <= 0 {
		capacity = DefaultKernelCacheCap
	}
	return &KernelCache{dist: dist, capacity: capacity, entries: map[uint64]*kernelEntry{}}
}

// Matrix returns the full kernel matrix for gamma, computing it at
// most once per residency. The returned rows are shared and must not
// be modified.
func (c *KernelCache) Matrix(gamma float64) [][]float64 {
	key := math.Float64bits(gamma)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.tick++
		e.lastUse = c.tick
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.rows
	}
	c.misses++
	c.tick++
	e := &kernelEntry{ready: make(chan struct{}), lastUse: c.tick}
	c.evictLocked()
	c.entries[key] = e
	c.mu.Unlock()

	e.rows = kernelMatrix(c.dist, gamma)
	close(e.ready)
	return e.rows
}

// evictLocked drops least-recently-used completed entries until there
// is room for one more. In-flight entries (still being computed) are
// never evicted — other goroutines are blocked on them.
func (c *KernelCache) evictLocked() {
	for len(c.entries) >= c.capacity {
		var victim uint64
		var oldest *kernelEntry
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // in flight
			}
			if oldest == nil || e.lastUse < oldest.lastUse {
				victim, oldest = k, e
			}
		}
		if oldest == nil {
			return // everything in flight; allow temporary overshoot
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

// KernelCacheStats reports cache effectiveness.
type KernelCacheStats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (c *KernelCache) Stats() KernelCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return KernelCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// kernelMatrix exponentiates the distance matrix for one γ. Symmetry
// halves the exp calls; the mirrored entries are bit-identical to
// recomputing them, since exp of the same input yields the same bits.
func kernelMatrix(dist [][]float64, gamma float64) [][]float64 {
	n := len(dist)
	rows := newSquare(n)
	for i := 0; i < n; i++ {
		di := dist[i]
		ri := rows[i]
		for j := i; j < n; j++ {
			v := math.Exp(-gamma * di[j])
			ri[j] = v
			rows[j][i] = v
		}
	}
	return rows
}
