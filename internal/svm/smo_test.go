package svm

import (
	"math"
	"testing"
)

// TestSMOKKTConditions verifies the solver's optimality certificate on
// a small problem: for every training point, the KKT conditions of the
// C-SVC dual must hold within the solver tolerance:
//
//	alpha_i = 0    =>  y_i f(x_i) >= 1 - eps
//	alpha_i = C_i  =>  y_i f(x_i) <= 1 + eps
//	0 < a_i < C_i  =>  |y_i f(x_i) - 1| <= eps
func TestSMOKKTConditions(t *testing.T) {
	p := blobs(100, 1.2)
	params := Params{C: 5, Gamma: 0.7, Eps: 1e-4}
	m, err := Train(p, params)
	if err != nil {
		t.Fatal(err)
	}
	// Recover alphas: coef_i = alpha_i * y_i for support vectors; non-SV
	// points have alpha 0. Rebuild per-sample alpha by matching rows.
	alpha := make([]float64, len(p.X))
	svIdx := 0
	for i := range p.X {
		if svIdx < len(m.SV) && sameVec(p.X[i], m.SV[svIdx]) {
			alpha[i] = math.Abs(m.Coef[svIdx])
			svIdx++
		}
	}
	if svIdx != len(m.SV) {
		t.Fatalf("could not align %d support vectors (got %d)", len(m.SV), svIdx)
	}
	const slack = 1e-2 // solver eps plus numerical headroom
	violations := 0
	for i := range p.X {
		yf := float64(p.Y[i]) * m.Decision(p.X[i])
		switch {
		case alpha[i] <= 1e-12:
			if yf < 1-slack {
				violations++
			}
		case alpha[i] >= params.C-1e-9:
			if yf > 1+slack {
				violations++
			}
		default:
			if math.Abs(yf-1) > slack {
				violations++
			}
		}
	}
	if violations > len(p.X)/50 {
		t.Fatalf("%d/%d KKT violations", violations, len(p.X))
	}
	// Dual feasibility: sum alpha_i y_i = 0.
	var s float64
	for _, c := range m.Coef {
		s += c
	}
	if math.Abs(s) > 1e-6 {
		t.Fatalf("sum(alpha*y) = %v, want 0", s)
	}
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTrainDeterministic(t *testing.T) {
	p := blobs(80, 1.0)
	m1, err := Train(p, Params{C: 10, Gamma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(p, Params{C: 10, Gamma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if m1.B != m2.B || len(m1.SV) != len(m2.SV) || m1.Iters != m2.Iters {
		t.Fatal("training is not deterministic")
	}
	for i := range m1.Coef {
		if m1.Coef[i] != m2.Coef[i] {
			t.Fatal("coefficients differ between runs")
		}
	}
}

func TestTrainBoundedIterations(t *testing.T) {
	p := blobs(60, 0.05) // heavily overlapping: hard problem
	m, err := Train(p, Params{C: 1e5, Gamma: 10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters > 500 {
		t.Fatalf("solver ran %d iterations past its budget", m.Iters)
	}
}

func TestTrainRejectsBadProblems(t *testing.T) {
	if _, err := Train(&Problem{}, Params{C: 1, Gamma: 1}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Train(&Problem{X: [][]float64{{1}}, Y: []int{2}}, Params{C: 1, Gamma: 1}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := Train(&Problem{X: [][]float64{{1}, {1, 2}}, Y: []int{1, -1}}, Params{C: 1, Gamma: 1}); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestModelJSONRoundtrip(t *testing.T) {
	p := blobs(60, 1.5)
	m, err := Train(p, Params{C: 10, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := m2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	for i := range p.X {
		if m.Decision(p.X[i]) != m2.Decision(p.X[i]) {
			t.Fatal("decision changed after JSON roundtrip")
		}
	}
	if err := m2.UnmarshalJSON([]byte(`{"coef_bits":[1],"sv_bits":[]}`)); err == nil {
		t.Fatal("inconsistent model accepted")
	}
}
