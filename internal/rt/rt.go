// Package rt declares the runtime builtin functions shared by the sci
// front end (which emits calls to them) and the interpreter (which
// implements them natively). The set mirrors what the paper's
// workloads need from libm, libc, and MPI.
package rt

import "ipas/internal/ir"

// Builtin describes one runtime function signature.
type Builtin struct {
	Name   string
	Params []*ir.Type
	Ret    *ir.Type
}

var (
	f64   = ir.F64
	i64   = ir.I64
	i1    = ir.I1
	pf64  = ir.PtrTo(ir.F64)
	pi64  = ir.PtrTo(ir.I64)
	void_ = ir.Void
)

// Builtins is the full runtime surface, in stable order.
var Builtins = []Builtin{
	// libm.
	{"sqrt", []*ir.Type{f64}, f64},
	{"sin", []*ir.Type{f64}, f64},
	{"cos", []*ir.Type{f64}, f64},
	{"exp", []*ir.Type{f64}, f64},
	{"log", []*ir.Type{f64}, f64},
	{"pow", []*ir.Type{f64, f64}, f64},
	{"fabs", []*ir.Type{f64}, f64},
	{"floor", []*ir.Type{f64}, f64},
	{"fmin", []*ir.Type{f64, f64}, f64},
	{"fmax", []*ir.Type{f64, f64}, f64},
	// Heap.
	{"malloc_f64", []*ir.Type{i64}, pf64},
	{"malloc_i64", []*ir.Type{i64}, pi64},
	// Output buffer (read by verification routines).
	{"out_f64", []*ir.Type{i64, f64}, void_},
	{"out_i64", []*ir.Type{i64, i64}, void_},
	// Diagnostics.
	{"assert_true", []*ir.Type{i1}, void_},
	{"print_f64", []*ir.Type{f64}, void_},
	{"print_i64", []*ir.Type{i64}, void_},
	// MPI.
	{"mpi_rank", nil, i64},
	{"mpi_size", nil, i64},
	{"mpi_barrier", nil, void_},
	{"mpi_allreduce_f64", []*ir.Type{f64, i64}, f64}, // op: 0 sum, 1 min, 2 max
	{"mpi_allreduce_i64", []*ir.Type{i64, i64}, i64},
	{"mpi_bcast_f64", []*ir.Type{f64, i64}, f64}, // (value, root)
	{"mpi_bcast_i64", []*ir.Type{i64, i64}, i64},
	{"mpi_send_f64", []*ir.Type{i64, i64, f64}, void_}, // (dest, tag, v)
	{"mpi_recv_f64", []*ir.Type{i64, i64}, f64},        // (src, tag)
	{"mpi_send_i64", []*ir.Type{i64, i64, i64}, void_},
	{"mpi_recv_i64", []*ir.Type{i64, i64}, i64},
	{"mpi_send_f64s", []*ir.Type{i64, i64, pf64, i64}, void_}, // (dest, tag, buf, n)
	{"mpi_recv_f64s", []*ir.Type{i64, i64, pf64, i64}, void_},
	{"mpi_send_i64s", []*ir.Type{i64, i64, pi64, i64}, void_},
	{"mpi_recv_i64s", []*ir.Type{i64, i64, pi64, i64}, void_},
}

// Declare adds every builtin to m and returns them by name.
func Declare(m *ir.Module) map[string]*ir.Func {
	out := make(map[string]*ir.Func, len(Builtins))
	for _, b := range Builtins {
		out[b.Name] = m.NewBuiltin(b.Name, b.Ret, b.Params...)
	}
	return out
}
