package rt

import (
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

func TestDeclareRegistersAll(t *testing.T) {
	m := ir.NewModule()
	fns := Declare(m)
	if len(fns) != len(Builtins) {
		t.Fatalf("declared %d of %d builtins", len(fns), len(Builtins))
	}
	for _, b := range Builtins {
		f := fns[b.Name]
		if f == nil || !f.Builtin {
			t.Fatalf("builtin %q not declared", b.Name)
		}
		if f.RetType() != b.Ret || len(f.Params()) != len(b.Params) {
			t.Fatalf("builtin %q signature mismatch", b.Name)
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestEveryBuiltinHasInterpreterImplementation: a module calling every
// declared builtin must compile in the interpreter (an unknown builtin
// would fail interp.Compile).
func TestEveryBuiltinHasInterpreterImplementation(t *testing.T) {
	m := ir.NewModule()
	Declare(m)
	main := m.NewFunc("main", ir.Void, nil, nil)
	b := ir.NewBuilder(main.NewBlock("entry"))
	b.Ret(nil)
	if _, err := interp.Compile(m, nil); err != nil {
		t.Fatalf("interpreter rejects declared builtins: %v", err)
	}
}

func TestDuplicateDeclarePanics(t *testing.T) {
	m := ir.NewModule()
	Declare(m)
	defer func() {
		if recover() == nil {
			t.Fatal("second Declare must panic on duplicate functions")
		}
	}()
	Declare(m)
}
