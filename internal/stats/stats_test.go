package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarginOfError95(t *testing.T) {
	// p=0.5, n=100 -> 1.96 * sqrt(0.25/100) = 0.098.
	if got := MarginOfError95(0.5, 100); math.Abs(got-0.098) > 0.0005 {
		t.Errorf("moe(0.5,100) = %v", got)
	}
	if MarginOfError95(0, 100) != 0 {
		t.Error("moe at p=0 must be 0")
	}
	if MarginOfError95(0.3, 0) != 0 {
		t.Error("moe with n=0 must be 0")
	}
	// Property: non-negative, maximal at p=0.5, shrinks with n.
	f := func(pq uint8, n uint16) bool {
		p := float64(pq) / 255
		nn := int(n)%1000 + 1
		m := MarginOfError95(p, nn)
		if m < 0 || math.IsNaN(m) {
			return false
		}
		if MarginOfError95(0.5, nn) < m-1e-12 {
			return false
		}
		return MarginOfError95(p, nn*4) <= m+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-input behaviour")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty minmax")
	}
}
