// Package stats provides the statistical helpers the paper's
// evaluation uses: margins of error for sampled proportions (§5.4,
// §6.2) and summary statistics.
package stats

import "math"

// z95 is the normal quantile for a 95% confidence level.
const z95 = 1.959963984540054

// MarginOfError95 returns the 95%-confidence margin of error for an
// observed proportion p estimated from n samples, under the paper's
// normal-approximation assumption (§5.4).
func MarginOfError95(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return z95 * math.Sqrt(p*(1-p)/float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// MinMax returns the extrema (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
