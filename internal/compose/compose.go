// Package compose folds per-section fault-injection outcome
// distributions into whole-program estimates — the compositional half
// of sectioned campaigns (FastFlip-style). A hardware fault is modeled
// as landing uniformly at random on the whole-program injectable
// dynamic-instance population P = Σ_s P_s, so the law of total
// probability gives the whole-program outcome distribution as the
// population-weighted average of the per-section estimates:
//
//	π_o = Σ_s (P_s / P) · (c_{s,o} / n_s)
//
// where c_{s,o} counts section s's completed trials with outcome o and
// n_s its completed-trial total. Each stratum's estimate is unbiased
// for its conditional distribution, so the composition is unbiased for
// the whole — with far fewer trials than a monolithic campaign, because
// rare-but-cold sections no longer need the hot loop's sampling depth
// to be covered.
package compose

import (
	"fmt"

	"ipas/internal/fault"
)

// SectionOutcome is one section's observed outcome counts.
type SectionOutcome struct {
	// FP identifies the section (content fingerprint).
	FP string `json:"fp"`
	// Population is P_s: the section's injectable dynamic-instance
	// count in the golden run.
	Population int64 `json:"population"`
	// Trials is n_s: completed trials for this section.
	Trials int `json:"trials"`
	// Counts are the per-outcome completed-trial counts; they must sum
	// to Trials.
	Counts [fault.NumOutcomes]int `json:"counts"`
}

// Distribution is a probability distribution over fault outcomes,
// indexed by fault.Outcome.
type Distribution [fault.NumOutcomes]float64

// Whole composes per-section outcome distributions into the
// whole-program distribution. Sections with zero population carry no
// probability mass and may have zero trials; a section with positive
// population and no completed trials is an uncovered stratum and an
// error — silently dropping it would bias every estimate.
func Whole(secs []SectionOutcome) (Distribution, error) {
	var d Distribution
	var pop int64
	for _, s := range secs {
		if s.Population < 0 {
			return d, fmt.Errorf("compose: section %.16s has negative population %d", s.FP, s.Population)
		}
		pop += s.Population
	}
	if pop == 0 {
		return d, fmt.Errorf("compose: no section has injectable population")
	}
	for _, s := range secs {
		if s.Population == 0 {
			continue
		}
		if s.Trials <= 0 {
			return d, fmt.Errorf("compose: section %.16s has population %d but no completed trials", s.FP, s.Population)
		}
		n := 0
		for _, c := range s.Counts {
			if c < 0 {
				return d, fmt.Errorf("compose: section %.16s has negative outcome count", s.FP)
			}
			n += c
		}
		if n != s.Trials {
			return d, fmt.Errorf("compose: section %.16s counts sum to %d, trials = %d", s.FP, n, s.Trials)
		}
		w := float64(s.Population) / float64(pop)
		for o, c := range s.Counts {
			d[o] += w * float64(c) / float64(s.Trials)
		}
	}
	return d, nil
}

// FromSectionResult extracts per-section outcomes from a sectioned
// campaign run. Only completed trials count; a section whose trials all
// failed surfaces later as an uncovered stratum in Whole.
func FromSectionResult(r *fault.SectionResult) []SectionOutcome {
	out := make([]SectionOutcome, 0, len(r.Plan.Alloc))
	for i := range r.Plan.Alloc {
		a := &r.Plan.Alloc[i]
		s := SectionOutcome{FP: a.FP, Population: a.Pop}
		for _, tr := range r.SectionTrials(i) {
			if tr.Status != fault.TrialCompleted {
				continue
			}
			s.Trials++
			s.Counts[tr.Outcome]++
		}
		out = append(out, s)
	}
	return out
}

// FromCampaignResult renders a monolithic campaign's completed-trial
// proportions as a Distribution (the differential reference).
func FromCampaignResult(r *fault.CampaignResult) Distribution {
	var d Distribution
	for o := range d {
		d[o] = r.Proportion(fault.Outcome(o))
	}
	return d
}

// MaxDiff returns the L∞ distance between two distributions — the
// agreement metric the differential harness bounds.
func MaxDiff(a, b Distribution) float64 {
	var m float64
	for o := range a {
		diff := a[o] - b[o]
		if diff < 0 {
			diff = -diff
		}
		if diff > m {
			m = diff
		}
	}
	return m
}

// Sum returns the distribution's total probability mass (1 within
// floating-point error for any successful composition).
func (d Distribution) Sum() float64 {
	var s float64
	for _, p := range d {
		s += p
	}
	return s
}
