package compose_test

import (
	"context"
	"strings"
	"testing"

	"ipas/internal/compose"
	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/workloads"
)

// The differential harness: for every mini-app, run a monolithic
// campaign and a sectioned campaign against the same binary and
// compare the composed whole-program outcome distribution against the
// monolithic estimate. Both are unbiased estimators of the same
// distribution, so they must agree within sampling noise.
//
// agreementBound is the documented L∞ agreement bound. With ~120
// monolithic trials (per-outcome stderr ≈ 0.046) and per-section
// budgets capped at 40 (population-weighted composed stderr ≈ 0.07 in
// the worst case), three combined standard errors stay under 0.25.
// Seeds are fixed, so the comparison is deterministic — the bound
// guards against estimator bugs, not flakiness.
const (
	agreementBound = 0.25
	monoTrials     = 120
	maxPerSection  = 40
)

func runDifferential(t *testing.T, name string) {
	t.Helper()
	spec := workloads.MustGet(name, 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := fault.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	mono := &fault.Campaign{Prog: prog, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 42}
	monoRes, err := mono.RunContext(ctx, monoTrials)
	if err != nil {
		t.Fatalf("monolithic campaign: %v", err)
	}

	sec := &fault.Campaign{
		Prog: prog, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 42,
		Sections: true, Coverage: 1, MaxPerSection: maxPerSection,
	}
	prep, err := sec.Prepare(ctx)
	if err != nil {
		t.Fatalf("sectioned prepare: %v", err)
	}
	secRes, err := prep.RunSections(ctx, "")
	if err != nil {
		t.Fatalf("sectioned campaign: %v", err)
	}

	composed, err := compose.Whole(compose.FromSectionResult(secRes))
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if s := composed.Sum(); s < 0.999 || s > 1.001 {
		t.Errorf("composed mass = %v, want 1", s)
	}
	monoD := compose.FromCampaignResult(monoRes)
	diff := compose.MaxDiff(composed, monoD)
	t.Logf("%s: composed=%v monolithic=%v L∞=%.3f sectioned-trials=%d mono-equivalent=%d",
		name, composed, monoD, diff, secRes.Plan.Total, secRes.Plan.MonoTrials)
	if diff > agreementBound {
		t.Errorf("composed and monolithic distributions disagree: L∞ = %.3f > %.2f", diff, agreementBound)
	}
	// The analytic equal-coverage comparison must favor sectioning on
	// every mini-app (the checked-in BENCH_compose.json asserts the
	// aggregate ≥5× bound; here we only require it helps at all).
	if secRes.Plan.MonoTrials <= int64(secRes.Plan.Total) {
		t.Errorf("sectioning does not reduce trials: %d sectioned vs %d monolithic",
			secRes.Plan.Total, secRes.Plan.MonoTrials)
	}
}

func TestDifferentialComposedVsMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is long; run without -short")
	}
	for _, name := range workloads.Names {
		t.Run(name, func(t *testing.T) { runDifferential(t, name) })
	}
}

// incrSrcA is a controlled multi-function program for exact incremental
// accounting; incrSrcB differs from it in exactly one constant inside
// @scale (a value-only edit: no control flow or dynamic counts change,
// so every other section's fingerprint, population and allocation are
// identical between the two binaries).
const incrSrcA = `
builtin @out_f64(i64, f64) void

func @scale(f64 %x) f64 {
entry:
  %r = fmul f64 %x, 3.0
  ret f64 %r
}

func @accum(i64 %n) f64 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i1, %loop]
  %acc = phi f64 [0.0, %entry], [%acc1, %loop]
  %xf = sitofp i64 %i to f64
  %s = call f64 @scale(f64 %xf)
  %acc1 = fadd f64 %acc, %s
  %i1 = add i64 %i, 1
  %c = icmp lt i64 %i1, %n
  condbr %c, %loop, %exit
exit:
  ret f64 %acc1
}

func @main() void {
entry:
  %n = add i64 20, 0
  %a = call f64 @accum(i64 %n)
  %b = fmul f64 %a, 0.25
  call void @out_f64(i64 0, f64 %a)
  call void @out_f64(i64 1, f64 %b)
  ret void
}
`

func incrProgram(t *testing.T, src string) (*fault.Campaign, *ir.Module) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	m.AssignSiteIDs()
	prog, err := fault.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	c := &fault.Campaign{
		Prog: prog,
		Verify: func(golden, faulty *interp.Result) bool {
			return sameF(golden.OutputF, faulty.OutputF)
		},
		Seed: 7, Sections: true, Coverage: 2,
	}
	return c, m
}

func sameF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalReanalysis drives the edit-one-function re-protect
// loop and asserts the journal trial-count accounting exactly:
// run A, re-run A (everything restored), then run the edited binary B
// (only @scale's section re-executes).
func TestIncrementalReanalysis(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cA, _ := incrProgram(t, incrSrcA)
	prepA, err := cA.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := prepA.RunSections(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Restored != 0 || resA.Executed != resA.Plan.Total {
		t.Fatalf("first run: restored=%d executed=%d, want 0/%d",
			resA.Restored, resA.Executed, resA.Plan.Total)
	}

	// Same binary again: every trial restores, nothing executes.
	cA2, _ := incrProgram(t, incrSrcA)
	prepA2, err := cA2.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resA2, err := prepA2.RunSections(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if resA2.Executed != 0 || resA2.Restored != resA.Plan.Total {
		t.Fatalf("unchanged re-run: restored=%d executed=%d, want %d/0",
			resA2.Restored, resA2.Executed, resA.Plan.Total)
	}
	for i := range resA.Trials {
		x, y := resA.Trials[i], resA2.Trials[i]
		if x.Site != y.Site || x.Outcome != y.Outcome || x.Index != y.Index || x.Bit != y.Bit {
			t.Fatalf("trial %d differs after restore: %+v vs %+v", i, x, y)
		}
	}

	// Edit @scale's constant: only its section re-runs.
	if !strings.Contains(incrSrcA, "fmul f64 %x, 3.0") {
		t.Fatal("edit pattern not found in source")
	}
	incrSrcB := strings.Replace(incrSrcA, "fmul f64 %x, 3.0", "fmul f64 %x, 5.0", 1)
	cB, _ := incrProgram(t, incrSrcB)
	prepB, err := cB.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := prepB.RunSections(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	changed := 0
	fpsA := map[string]bool{}
	for _, a := range prepA.SectionPlan().Alloc {
		fpsA[a.FP] = true
	}
	for _, b := range prepB.SectionPlan().Alloc {
		if !fpsA[b.FP] {
			changed += b.Trials
		}
	}
	if changed == 0 {
		t.Fatal("edit changed no section fingerprint")
	}
	if resB.Executed != changed {
		t.Errorf("incremental run executed %d trials, want %d (only the edited section)",
			resB.Executed, changed)
	}
	if resB.Restored != resB.Plan.Total-changed {
		t.Errorf("incremental run restored %d trials, want %d",
			resB.Restored, resB.Plan.Total-changed)
	}
}
