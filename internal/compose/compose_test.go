package compose

import (
	"math"
	"testing"

	"ipas/internal/fault"
)

const eps = 1e-12

func almost(a, b float64) bool { return math.Abs(a-b) < eps }

func TestWholeSingleSection(t *testing.T) {
	// One section: the composition is just its empirical distribution.
	d, err := Whole([]SectionOutcome{{
		FP: "a", Population: 100, Trials: 10,
		Counts: [fault.NumOutcomes]int{2, 3, 4, 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := Distribution{0.2, 0.3, 0.4, 0.1}
	for o := range d {
		if !almost(d[o], want[o]) {
			t.Errorf("outcome %v: got %v, want %v", fault.Outcome(o), d[o], want[o])
		}
	}
	if !almost(d.Sum(), 1) {
		t.Errorf("sum = %v, want 1", d.Sum())
	}
}

func TestWholeTwoSequentialSections(t *testing.T) {
	// Two straight-line sections, populations 30 and 70: the whole is
	// the 0.3/0.7 weighted average.
	d, err := Whole([]SectionOutcome{
		{FP: "a", Population: 30, Trials: 10, Counts: [fault.NumOutcomes]int{10, 0, 0, 0}},
		{FP: "b", Population: 70, Trials: 10, Counts: [fault.NumOutcomes]int{0, 0, 10, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d[fault.OutcomeSymptom], 0.3) || !almost(d[fault.OutcomeMasked], 0.7) {
		t.Errorf("got %v, want symptom 0.3 / masked 0.7", d)
	}
}

func TestWholeLoopSectionOccurrenceWeighting(t *testing.T) {
	// A loop section's population counts dynamic occurrences, not
	// static sites: a 2-site loop body running 500 iterations carries
	// 1000 instances against a 10-instance epilogue — the loop's
	// conditional SOC rate dominates the whole at weight 1000/1010,
	// even though both sections have the same trial budget.
	loopSOC := 0.5
	d, err := Whole([]SectionOutcome{
		{FP: "loop", Population: 1000, Trials: 20, Counts: [fault.NumOutcomes]int{0, 0, 10, 10}},
		{FP: "epi", Population: 10, Trials: 20, Counts: [fault.NumOutcomes]int{0, 0, 20, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSOC := (1000.0 / 1010.0) * loopSOC
	if !almost(d[fault.OutcomeSOC], wantSOC) {
		t.Errorf("SOC = %v, want %v", d[fault.OutcomeSOC], wantSOC)
	}
	if !almost(d.Sum(), 1) {
		t.Errorf("sum = %v, want 1", d.Sum())
	}
}

func TestWholeAllCrashSection(t *testing.T) {
	// A section whose every trial crashes contributes pure symptom mass
	// scaled by its population share.
	d, err := Whole([]SectionOutcome{
		{FP: "crash", Population: 25, Trials: 8, Counts: [fault.NumOutcomes]int{8, 0, 0, 0}},
		{FP: "rest", Population: 75, Trials: 8, Counts: [fault.NumOutcomes]int{0, 0, 8, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d[fault.OutcomeSymptom], 0.25) {
		t.Errorf("symptom = %v, want 0.25", d[fault.OutcomeSymptom])
	}
}

func TestWholeZeroPopulationSectionIgnored(t *testing.T) {
	// A never-executed section (zero population) carries no mass and
	// needs no trials.
	d, err := Whole([]SectionOutcome{
		{FP: "dead", Population: 0, Trials: 0},
		{FP: "live", Population: 50, Trials: 4, Counts: [fault.NumOutcomes]int{0, 4, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d[fault.OutcomeDetected], 1) {
		t.Errorf("detected = %v, want 1", d[fault.OutcomeDetected])
	}
}

func TestWholeErrors(t *testing.T) {
	cases := []struct {
		name string
		secs []SectionOutcome
	}{
		{"no population", []SectionOutcome{{FP: "a", Population: 0}}},
		{"uncovered stratum", []SectionOutcome{
			{FP: "a", Population: 10, Trials: 0},
		}},
		{"counts mismatch", []SectionOutcome{
			{FP: "a", Population: 10, Trials: 5, Counts: [fault.NumOutcomes]int{1, 1, 1, 1}},
		}},
		{"negative population", []SectionOutcome{{FP: "a", Population: -1}}},
	}
	for _, c := range cases {
		if _, err := Whole(c.secs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// FuzzWholeIsDistribution feeds arbitrary section shapes through Whole
// and asserts the composition, whenever it succeeds, is a probability
// distribution: every component in [0, 1] and the total mass 1.
func FuzzWholeIsDistribution(f *testing.F) {
	f.Add(int64(100), 5, 2, 1, 1, int64(3), 4, 0, 0, 0)
	f.Add(int64(1), 1, 0, 0, 0, int64(1_000_000), 1, 0, 0, 0)
	f.Add(int64(7), 0, 0, 0, 0, int64(0), 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, pop1 int64, c10, c11, c12, c13 int, pop2 int64, c20, c21, c22, c23 int) {
		mk := func(fp string, pop int64, c [4]int) SectionOutcome {
			n := 0
			for _, v := range c {
				n += v
			}
			return SectionOutcome{FP: fp, Population: pop, Trials: n, Counts: c}
		}
		d, err := Whole([]SectionOutcome{
			mk("a", pop1, [4]int{c10, c11, c12, c13}),
			mk("b", pop2, [4]int{c20, c21, c22, c23}),
		})
		if err != nil {
			return // rejected inputs are fine; only successes must be sound
		}
		for o, p := range d {
			if p < 0 || p > 1+eps || math.IsNaN(p) {
				t.Fatalf("outcome %d probability %v out of range (input %v / %v)", o, p, pop1, pop2)
			}
		}
		if s := d.Sum(); math.Abs(s-1) > 1e-9 {
			t.Fatalf("mass sums to %v, want 1", s)
		}
	})
}
