package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"ipas/internal/interp"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`func main() { var x int = 42; // comment
	/* block
	   comment */ x = x << 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tokFunc, tokIdent, tokLParen, tokRParen, tokLBrace,
		tokVar, tokIdent, tokInt, tokAssign, tokIntLit, tokSemi,
		tokIdent, tokAssign, tokIdent, tokShl, tokIntLit, tokSemi, tokRBrace, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"func main() { $ }",
		"/* unterminated",
		"func main() { var x float = 1e; }",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Compile("func main() {\n\tvar x int = yy;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 2 {
		t.Errorf("error line = %d, want 2", e.Line)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing semi", "func main() { var x int = 1 }"},
		{"missing paren", "func main() { if (true { } }"},
		{"bad assignment target", "func main() { 1 = 2; }"},
		{"expr stmt not call", "func main() { 1 + 2; }"},
		{"unterminated block", "func main() { if (true) {"},
		{"missing type", "func main() { var x = 1; }"},
		{"top level junk", "int x;"},
		{"param missing type", "func f(a) { } func main() { }"},
		{"pointer to bool", "func main() { var p *bool; }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPrecedence(t *testing.T) {
	res := runMain(t, `
func main() {
	out_i64(0, 2 + 3 * 4);          // 14
	out_i64(1, (2 + 3) * 4);        // 20
	out_i64(2, 10 - 4 - 3);         // 3 (left assoc)
	out_i64(3, 1 << 3 + 1);         // C precedence: 1 << (3+1) = 16
	out_i64(4, 7 & 3 | 4);          // (7&3)|4 = 7
	out_i64(5, -3 * 2);             // -6
	var b bool = 1 < 2 == true;     // (1<2) == true
	if (b) {
		out_i64(6, 1);
	}
}
`)
	want := []int64{14, 20, 3, 16, 7, -6, 1}
	for i, w := range want {
		if res.OutputI[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, res.OutputI[i], w)
		}
	}
}

func TestNestedPointers(t *testing.T) {
	// **float works end to end via offset() and indexing.
	res := runMain(t, `
func main() {
	var a *float = malloc_f64(4);
	a[0] = 2.5;
	var p *float = offset(a, 0);
	out_f64(0, p[0]);
	var q *float = offset(a, 3);
	q[0] = 7.0;
	out_f64(1, a[3]);
}
`)
	if res.Trap != interp.TrapNone {
		t.Fatalf("trap %v", res.Trap)
	}
	if res.OutputF[0] != 2.5 || res.OutputF[1] != 7.0 {
		t.Fatalf("outputs %v", res.OutputF)
	}
}

func TestVoidFunctionAndEarlyReturn(t *testing.T) {
	res := runMain(t, `
func emit(v int) {
	if (v < 0) {
		return;
	}
	out_i64(0, v);
}
func main() {
	emit(-5);
	emit(9);
}
`)
	if res.OutputI[0] != 9 {
		t.Fatalf("outputs %v", res.OutputI)
	}
}

func TestMissingReturnTraps(t *testing.T) {
	// Falling off the end of a value-returning function aborts at
	// runtime (matching a C sanitizer rather than a compile error).
	res := runMain(t, `
func bad(x int) int {
	if (x > 0) {
		return 1;
	}
}
func main() {
	out_i64(0, bad(-1));
}
`)
	if res.Trap != interp.TrapAbort {
		t.Fatalf("trap = %v, want abort", res.Trap)
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	res := runMain(t, `
func main() {
	var x int = 1;
	{
		var x int = 2;
		out_i64(0, x);
	}
	out_i64(1, x);
	for (var x int = 10; x < 11; x = x + 1) {
		out_i64(2, x);
	}
	out_i64(3, x);
}
`)
	want := []int64{2, 1, 10, 1}
	for i, w := range want {
		if res.OutputI[i] != w {
			t.Fatalf("outputs %v, want %v", res.OutputI, want)
		}
	}
}

func TestGeneratedSourceIsReadable(t *testing.T) {
	src := RandomProgram(1)
	if !strings.Contains(src, "func main()") {
		t.Fatal("no main in generated program")
	}
	if len(strings.Split(src, "\n")) < 20 {
		t.Fatal("suspiciously small generated program")
	}
}

// TestCompileNeverPanics: arbitrary byte soup must produce an error,
// never a panic (testing/quick drives random strings through the full
// front end).
func TestCompileNeverPanics(t *testing.T) {
	check := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Compile(src)
		return true
	}
	f := func(src string) bool { return check(src) }
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	// Adversarial fragments around every token class.
	for _, src := range []string{
		"func", "func main(", "func main() {", "func main() { var",
		"func main() { x[", "func main() { f(", "/*", "//", "1.e",
		"func main() { var x int = ((((((1)))))); }",
		"func main() { return; }",
		"func main() { if (true) { } else }",
		"\x00\x01\x02", "func main() { out_i64(0, -9223372036854775808); }",
	} {
		check(src)
	}
}
