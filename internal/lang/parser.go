package lang

import "strconv"

// parser is a recursive-descent parser with precedence climbing for
// expressions.
type parser struct {
	toks []token
	i    int
}

// parse builds the AST for a source file.
func parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.peek().kind != tokEOF {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fd)
	}
	return f, nil
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) next() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.peek().kind == k }

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, got %s", what, t)
	}
	p.i++
	return t, nil
}

func tokenPos(t token) pos { return pos{t.line, t.col} }

// typeExpr parses "*...*base".
func (p *parser) typeExpr() (*TypeExpr, error) {
	t := p.peek()
	te := &TypeExpr{pos: tokenPos(t)}
	for p.accept(tokStar) {
		te.Stars++
	}
	switch p.peek().kind {
	case tokInt:
		te.Base = "int"
	case tokFloat:
		te.Base = "float"
	case tokBool:
		te.Base = "bool"
	default:
		t := p.peek()
		return nil, errf(t.line, t.col, "expected type, got %s", t)
	}
	p.i++
	return te, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(tokFunc, "'func'")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "function name")
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{pos: tokenPos(kw), Name: name.text}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for !p.at(tokRParen) {
		if len(fd.Params) > 0 {
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(tokIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		pt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, ParamDecl{pos: tokenPos(pn), Name: pn.text, Type: pt})
	}
	p.i++ // ')'
	if !p.at(tokLBrace) {
		ret, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fd.Ret = ret
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() (*BlockStmt, error) {
	lb, err := p.expect(tokLBrace, "'{'")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{pos: tokenPos(lb)}
	for !p.at(tokRBrace) {
		if p.at(tokEOF) {
			return nil, errf(lb.line, lb.col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.i++ // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch t.kind {
	case tokLBrace:
		return p.block()
	case tokVar:
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return s, nil
	case tokIf:
		return p.ifStmt()
	case tokWhile:
		p.i++
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{pos: tokenPos(t), Cond: cond, Body: body}, nil
	case tokFor:
		return p.forStmt()
	case tokReturn:
		p.i++
		rs := &ReturnStmt{pos: tokenPos(t)}
		if !p.at(tokSemi) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return rs, nil
	case tokBreak:
		p.i++
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &BreakStmt{pos: tokenPos(t)}, nil
	case tokContinue:
		p.i++
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ContinueStmt{pos: tokenPos(t)}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varDecl parses "var name type [= expr]" (no trailing ';').
func (p *parser) varDecl() (Stmt, error) {
	kw := p.next() // 'var'
	name, err := p.expect(tokIdent, "variable name")
	if err != nil {
		return nil, err
	}
	ty, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{pos: tokenPos(kw), Name: name.text, Type: ty}
	if p.accept(tokAssign) {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	return vd, nil
}

// simpleStmt parses an assignment or an expression statement (no ';').
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.peek()
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokAssign) {
		switch x.(type) {
		case *IdentExpr, *IndexExpr:
		default:
			return nil, errf(t.line, t.col, "invalid assignment target")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{pos: tokenPos(t), LHS: x, RHS: rhs}, nil
	}
	if _, ok := x.(*CallExpr); !ok {
		return nil, errf(t.line, t.col, "expression statement must be a call")
	}
	return &ExprStmt{pos: tokenPos(t), X: x}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // 'if'
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{pos: tokenPos(t), Cond: cond, Then: then}
	if p.accept(tokElse) {
		if p.at(tokIf) {
			es, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			is.Else = es
		} else {
			eb, err := p.block()
			if err != nil {
				return nil, err
			}
			is.Else = eb
		}
	}
	return is, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // 'for'
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	fs := &ForStmt{pos: tokenPos(t)}
	if !p.at(tokSemi) {
		var err error
		if p.at(tokVar) {
			fs.Init, err = p.varDecl()
		} else {
			fs.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	if !p.at(tokSemi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	if !p.at(tokRParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokPipe:   3,
	tokCaret:  4,
	tokAmp:    5,
	tokEq:     6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		prec, ok := binPrec[t.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{pos: tokenPos(t), Op: t.kind, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokMinus, tokNot:
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{pos: tokenPos(t), Op: t.kind, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokLBracket) {
		lb := p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		x = &IndexExpr{pos: tokenPos(lb), Ptr: x, Idx: idx}
	}
	return x, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIntLit:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.line, t.col, "bad integer literal %q", t.text)
		}
		return &IntLit{pos: tokenPos(t), Value: v}, nil
	case tokFloatLit:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.line, t.col, "bad float literal %q", t.text)
		}
		return &FloatLit{pos: tokenPos(t), Value: v}, nil
	case tokTrue:
		return &BoolLit{pos: tokenPos(t), Value: true}, nil
	case tokFalse:
		return &BoolLit{pos: tokenPos(t), Value: false}, nil
	case tokLParen:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case tokInt, tokFloat: // cast spelled as call: int(x), float(x)
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &CallExpr{pos: tokenPos(t), Name: t.text, Args: []Expr{arg}}, nil
	case tokIdent:
		if p.at(tokLParen) {
			p.i++
			call := &CallExpr{pos: tokenPos(t), Name: t.text}
			for !p.at(tokRParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokComma, "','"); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.i++ // ')'
			return call, nil
		}
		return &IdentExpr{pos: tokenPos(t), Name: t.text}, nil
	}
	return nil, errf(t.line, t.col, "unexpected token %s", t)
}
