package lang

// lexer converts sci source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes the whole source.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		tk, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tk)
		if tk.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.advance()

	mk := func(k tokKind, text string) (token, error) {
		return token{kind: k, text: text, line: line, col: col}, nil
	}

	switch {
	case isAlpha(c):
		start := l.pos - 1
		for l.pos < len(l.src) && isAlnum(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return mk(k, text)
		}
		return mk(tokIdent, text)
	case isDigit(c):
		start := l.pos - 1
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		if l.peekByte() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if l.peekByte() == 'e' || l.peekByte() == 'E' {
			isFloat = true
			l.advance()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.advance()
			}
			if !isDigit(l.peekByte()) {
				return token{}, errf(l.line, l.col, "malformed exponent")
			}
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			return mk(tokFloatLit, text)
		}
		return mk(tokIntLit, text)
	}

	two := func(next byte, withKind, withoutKind tokKind) (token, error) {
		if l.peekByte() == next {
			l.advance()
			return mk(withKind, string(c)+string(next))
		}
		return mk(withoutKind, string(c))
	}

	switch c {
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case '{':
		return mk(tokLBrace, "{")
	case '}':
		return mk(tokRBrace, "}")
	case '[':
		return mk(tokLBracket, "[")
	case ']':
		return mk(tokRBracket, "]")
	case ',':
		return mk(tokComma, ",")
	case ';':
		return mk(tokSemi, ";")
	case '+':
		return mk(tokPlus, "+")
	case '-':
		return mk(tokMinus, "-")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '%':
		return mk(tokPercent, "%")
	case '^':
		return mk(tokCaret, "^")
	case '=':
		return two('=', tokEq, tokAssign)
	case '!':
		return two('=', tokNe, tokNot)
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return mk(tokShl, "<<")
		}
		return two('=', tokLe, tokLt)
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			return mk(tokShr, ">>")
		}
		return two('=', tokGe, tokGt)
	case '&':
		return two('&', tokAndAnd, tokAmp)
	case '|':
		return two('|', tokOrOr, tokPipe)
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
