package lang

import (
	"math"
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

const randProgSeeds = 40

// execModule runs @main and fails the test on traps.
func execModule(t *testing.T, m *ir.Module, what string, seed int64) *interp.Result {
	t.Helper()
	p, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatalf("seed %d: %s: compile: %v", seed, what, err)
	}
	res := interp.Run(p, interp.Config{MaxInstrs: 200_000_000})
	if res.Trap != interp.TrapNone {
		t.Fatalf("seed %d: %s: trap %v (%s)", seed, what, res.Trap, res.TrapMsg)
	}
	return res
}

// sameOutputs compares outputs bitwise (NaN-safe).
func sameOutputs(a, b *interp.Result) bool {
	if len(a.OutputF) != len(b.OutputF) || len(a.OutputI) != len(b.OutputI) {
		return false
	}
	for i := range a.OutputF {
		if math.Float64bits(a.OutputF[i]) != math.Float64bits(b.OutputF[i]) {
			return false
		}
	}
	for i := range a.OutputI {
		if a.OutputI[i] != b.OutputI[i] {
			return false
		}
	}
	return true
}

// TestRandomProgramsCompileAndRun: every generated program must
// compile, verify, and terminate cleanly.
func TestRandomProgramsCompileAndRun(t *testing.T) {
	for seed := int64(1); seed <= randProgSeeds; seed++ {
		src := RandomProgram(seed)
		m, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		res := execModule(t, m, "optimized", seed)
		if len(res.OutputF) == 0 && len(res.OutputI) == 0 {
			t.Fatalf("seed %d: program produced no outputs", seed)
		}
	}
}

// TestMem2RegPreservesSemantics: optimized and unoptimized builds of
// the same random program must produce bitwise-identical outputs.
func TestMem2RegPreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= randProgSeeds; seed++ {
		src := RandomProgram(seed)
		opt, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		raw, err := CompileNoOpt(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1 := execModule(t, opt, "optimized", seed)
		r2 := execModule(t, raw, "unoptimized", seed)
		if !sameOutputs(r1, r2) {
			t.Fatalf("seed %d: mem2reg/DCE changed program behaviour", seed)
		}
		if r2.TotalDyn < r1.TotalDyn {
			t.Fatalf("seed %d: unoptimized build executed fewer instructions (%d < %d)",
				seed, r2.TotalDyn, r1.TotalDyn)
		}
	}
}

// TestRandomProgramsPrintParseRoundtrip: the IR text format must
// round-trip random modules exactly.
func TestRandomProgramsPrintParseRoundtrip(t *testing.T) {
	for seed := int64(1); seed <= randProgSeeds; seed++ {
		m, err := Compile(RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		text := ir.Print(m)
		m2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		text2 := ir.Print(m2)
		if text != text2 {
			t.Fatalf("seed %d: print/parse/print not a fixpoint", seed)
		}
		m2.AssignSiteIDs()
		r1 := execModule(t, m, "original", seed)
		r2 := execModule(t, m2, "reparsed", seed)
		if !sameOutputs(r1, r2) || r1.TotalDyn != r2.TotalDyn {
			t.Fatalf("seed %d: reparsed module behaves differently", seed)
		}
	}
}

// TestOptimizePreservesSemantics: the full opt-in pipeline (mem2reg,
// constant folding, CFG simplification, DCE) must not change observable
// behaviour and must never make a program dynamically longer.
func TestOptimizePreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= randProgSeeds; seed++ {
		src := RandomProgram(seed)
		base, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := ir.CloneModule(base)
		ir.Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("seed %d: optimized module invalid: %v", seed, err)
		}
		opt.AssignSiteIDs()
		r1 := execModule(t, base, "base", seed)
		r2 := execModule(t, opt, "optimized", seed)
		if !sameOutputs(r1, r2) {
			t.Fatalf("seed %d: Optimize changed program behaviour", seed)
		}
		if r2.TotalDyn > r1.TotalDyn {
			t.Fatalf("seed %d: optimization made the program slower (%d > %d)",
				seed, r2.TotalDyn, r1.TotalDyn)
		}
	}
}

// TestInterpreterDeterminism: two runs of the same program are
// bitwise identical in outputs and instruction counts.
func TestInterpreterDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		m, err := Compile(RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1 := execModule(t, m, "run1", seed)
		r2 := execModule(t, m, "run2", seed)
		if !sameOutputs(r1, r2) || r1.TotalDyn != r2.TotalDyn {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
	}
}

// TestCloneModulePreservesRandomPrograms: a deep clone prints and
// behaves identically, and mutating the clone leaves the original
// intact.
func TestCloneModulePreservesRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		m, err := Compile(RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clone := ir.CloneModule(m)
		if ir.Print(m) != ir.Print(clone) {
			t.Fatalf("seed %d: clone prints differently", seed)
		}
		r1 := execModule(t, m, "orig", seed)
		r2 := execModule(t, clone, "clone", seed)
		if !sameOutputs(r1, r2) {
			t.Fatalf("seed %d: clone behaves differently", seed)
		}
	}
}
