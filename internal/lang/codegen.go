package lang

import (
	"fmt"

	"ipas/internal/ir"
	"ipas/internal/rt"
)

// Compile translates sci source text into a verified IR module with
// runtime builtins declared, mem2reg and DCE applied (so the IR carries
// the SSA/PHI structure the feature extractor expects), and SiteIDs
// assigned.
func Compile(src string) (*ir.Module, error) {
	return compile(src, true)
}

// CompileNoOpt compiles without the mem2reg/DCE cleanup pipeline,
// leaving every local variable as an alloca with loads and stores. Used
// by property tests that check the optimization passes preserve
// semantics.
func CompileNoOpt(src string) (*ir.Module, error) {
	return compile(src, false)
}

func compile(src string, optimize bool) (*ir.Module, error) {
	file, err := parse(src)
	if err != nil {
		return nil, err
	}
	cg := &codegen{
		mod:   ir.NewModule(),
		funcs: map[string]*ir.Func{},
		decls: map[string]*FuncDecl{},
	}
	cg.builtins = rt.Declare(cg.mod)

	// Declare signatures first so calls can be forward references.
	for _, fd := range file.Funcs {
		if _, dup := cg.decls[fd.Name]; dup {
			return nil, errf(fd.line, fd.col, "duplicate function %q", fd.Name)
		}
		if _, isBuiltin := cg.builtins[fd.Name]; isBuiltin {
			return nil, errf(fd.line, fd.col, "function %q shadows a builtin", fd.Name)
		}
		var names []string
		var types []*ir.Type
		for _, prm := range fd.Params {
			t, err := cg.irType(prm.Type)
			if err != nil {
				return nil, err
			}
			names = append(names, prm.Name)
			types = append(types, t)
		}
		ret := ir.Void
		if fd.Ret != nil {
			r, err := cg.irType(fd.Ret)
			if err != nil {
				return nil, err
			}
			ret = r
		}
		cg.funcs[fd.Name] = cg.mod.NewFunc(fd.Name, ret, names, types)
		cg.decls[fd.Name] = fd
	}
	if cg.funcs["main"] == nil {
		return nil, errf(1, 1, "missing func main")
	}
	if len(cg.funcs["main"].Params()) != 0 || cg.funcs["main"].RetType() != ir.Void {
		return nil, errf(1, 1, "func main must take no parameters and return nothing")
	}

	for _, fd := range file.Funcs {
		if err := cg.genFunc(fd); err != nil {
			return nil, err
		}
	}

	// LLVM-like cleanup pipeline: drop unreachable blocks created by
	// early returns/breaks, promote locals to SSA, sweep dead code.
	for _, f := range cg.mod.Funcs() {
		if f.Builtin {
			continue
		}
		ir.RemoveUnreachable(f)
		if optimize {
			ir.Mem2Reg(f)
			ir.DCE(f)
		}
	}
	if err := ir.Verify(cg.mod); err != nil {
		return nil, fmt.Errorf("sci: internal error: generated invalid IR: %w", err)
	}
	cg.mod.AssignSiteIDs()
	return cg.mod, nil
}

// MustCompile is Compile that panics on error; for embedded workloads.
func MustCompile(src string) *ir.Module {
	m, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return m
}

type codegen struct {
	mod      *ir.Module
	builtins map[string]*ir.Func
	funcs    map[string]*ir.Func
	decls    map[string]*FuncDecl
}

func (cg *codegen) irType(te *TypeExpr) (*ir.Type, error) {
	var base *ir.Type
	switch te.Base {
	case "int":
		base = ir.I64
	case "float":
		base = ir.F64
	case "bool":
		base = ir.I1
	default:
		return nil, errf(te.line, te.col, "unknown type %q", te.Base)
	}
	for i := 0; i < te.Stars; i++ {
		if base == ir.I1 {
			return nil, errf(te.line, te.col, "pointers to bool are not supported")
		}
		base = ir.PtrTo(base)
	}
	return base, nil
}

// varInfo binds a name to its stack slot.
type varInfo struct {
	slot *ir.Instr // alloca
	typ  *ir.Type
}

// fctx is per-function code generation state.
type fctx struct {
	cg     *codegen
	fn     *ir.Func
	fd     *FuncDecl
	b      *ir.Builder
	allocB *ir.Builder // positioned in the entry block, before its br
	scopes []map[string]*varInfo
	loops  []loopTargets
	// terminated is true when the current block already has a
	// terminator; further statements open a dead block.
	terminated bool
}

type loopTargets struct {
	brk, cont *ir.Block
}

func (cg *codegen) genFunc(fd *FuncDecl) error {
	fn := cg.funcs[fd.Name]
	entry := fn.NewBlock("entry")
	body := fn.NewBlock("body")
	eb := ir.NewBuilder(entry)
	entryBr := eb.Br(body)
	eb.SetInsertBefore(entryBr)

	fc := &fctx{
		cg:     cg,
		fn:     fn,
		fd:     fd,
		b:      ir.NewBuilder(body),
		allocB: eb,
		scopes: []map[string]*varInfo{{}},
	}
	// Spill parameters into stack slots so they are assignable; mem2reg
	// lifts them back.
	for i, prm := range fd.Params {
		t := fn.Params()[i].Type()
		slot := fc.allocB.Alloca(t, 1)
		fc.allocB.Store(fn.Params()[i], slot)
		fc.scopes[0][prm.Name] = &varInfo{slot: slot, typ: t}
	}
	if err := fc.genBlock(fd.Body); err != nil {
		return err
	}
	if !fc.terminated {
		if fn.RetType() == ir.Void {
			fc.b.Ret(nil)
		} else {
			// Falling off the end of a value-returning function is a
			// runtime abort.
			fc.b.Trap(2)
		}
	}
	return nil
}

func (fc *fctx) pushScope() { fc.scopes = append(fc.scopes, map[string]*varInfo{}) }
func (fc *fctx) popScope()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *fctx) lookup(name string) *varInfo {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if v, ok := fc.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (fc *fctx) declare(p pos, name string, t *ir.Type) (*varInfo, error) {
	cur := fc.scopes[len(fc.scopes)-1]
	if _, dup := cur[name]; dup {
		return nil, errf(p.line, p.col, "redeclared variable %q", name)
	}
	v := &varInfo{slot: fc.allocB.Alloca(t, 1), typ: t}
	cur[name] = v
	return v, nil
}

// startBlock switches emission to a new block, resetting termination.
func (fc *fctx) startBlock(b *ir.Block) {
	fc.b.SetBlock(b)
	fc.terminated = false
}

// ensureLive opens a dead block if the current one is terminated, so
// unreachable trailing statements still generate (and are later swept).
func (fc *fctx) ensureLive() {
	if fc.terminated {
		fc.startBlock(fc.fn.NewBlock("dead"))
	}
}

func (fc *fctx) genBlock(b *BlockStmt) error {
	fc.pushScope()
	defer fc.popScope()
	for _, s := range b.Stmts {
		if err := fc.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fctx) genStmt(s Stmt) error {
	fc.ensureLive()
	switch s := s.(type) {
	case *BlockStmt:
		return fc.genBlock(s)
	case *VarDecl:
		t, err := fc.cg.irType(s.Type)
		if err != nil {
			return err
		}
		v, err := fc.declare(s.pos, s.Name, t)
		if err != nil {
			return err
		}
		var init ir.Value
		if s.Init != nil {
			iv, it, err := fc.genExpr(s.Init)
			if err != nil {
				return err
			}
			if it != t {
				return errf(s.line, s.col, "cannot initialize %s with %s", t, it)
			}
			init = iv
		} else {
			init = zeroConst(t)
		}
		fc.b.Store(init, v.slot)
		return nil
	case *AssignStmt:
		return fc.genAssign(s)
	case *IfStmt:
		return fc.genIf(s)
	case *WhileStmt:
		return fc.genWhile(s)
	case *ForStmt:
		return fc.genFor(s)
	case *ReturnStmt:
		return fc.genReturn(s)
	case *BreakStmt:
		if len(fc.loops) == 0 {
			return errf(s.line, s.col, "break outside loop")
		}
		fc.b.Br(fc.loops[len(fc.loops)-1].brk)
		fc.terminated = true
		return nil
	case *ContinueStmt:
		if len(fc.loops) == 0 {
			return errf(s.line, s.col, "continue outside loop")
		}
		fc.b.Br(fc.loops[len(fc.loops)-1].cont)
		fc.terminated = true
		return nil
	case *ExprStmt:
		_, _, err := fc.genExprAllowVoid(s.X)
		return err
	}
	return fmt.Errorf("sci: unknown statement %T", s)
}

func zeroConst(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return ir.ConstFloat(0)
	case t.IsPtr():
		return ir.NullPtr(t)
	default:
		return ir.ConstInt(t, 0)
	}
}

func (fc *fctx) genAssign(s *AssignStmt) error {
	rv, rtype, err := fc.genExpr(s.RHS)
	if err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *IdentExpr:
		v := fc.lookup(lhs.Name)
		if v == nil {
			return errf(lhs.line, lhs.col, "undefined variable %q", lhs.Name)
		}
		if rtype != v.typ {
			return errf(s.line, s.col, "cannot assign %s to %s variable", rtype, v.typ)
		}
		fc.b.Store(rv, v.slot)
		return nil
	case *IndexExpr:
		ptr, elem, err := fc.genIndexAddr(lhs)
		if err != nil {
			return err
		}
		if rtype != elem {
			return errf(s.line, s.col, "cannot store %s into %s element", rtype, elem)
		}
		fc.b.Store(rv, ptr)
		return nil
	}
	return errf(s.line, s.col, "invalid assignment target")
}

func (fc *fctx) genIf(s *IfStmt) error {
	cond, ct, err := fc.genExpr(s.Cond)
	if err != nil {
		return err
	}
	if ct != ir.I1 {
		return errf(s.line, s.col, "if condition must be bool, got %s", ct)
	}
	thenB := fc.fn.NewBlock("then")
	mergeB := fc.fn.NewBlock("endif")
	elseB := mergeB
	if s.Else != nil {
		elseB = fc.fn.NewBlock("else")
	}
	fc.b.CondBr(cond, thenB, elseB)

	fc.startBlock(thenB)
	if err := fc.genBlock(s.Then); err != nil {
		return err
	}
	if !fc.terminated {
		fc.b.Br(mergeB)
	}
	if s.Else != nil {
		fc.startBlock(elseB)
		if err := fc.genStmt(s.Else); err != nil {
			return err
		}
		if !fc.terminated {
			fc.b.Br(mergeB)
		}
	}
	fc.startBlock(mergeB)
	return nil
}

func (fc *fctx) genWhile(s *WhileStmt) error {
	condB := fc.fn.NewBlock("while.cond")
	bodyB := fc.fn.NewBlock("while.body")
	exitB := fc.fn.NewBlock("while.end")
	fc.b.Br(condB)

	fc.startBlock(condB)
	cond, ct, err := fc.genExpr(s.Cond)
	if err != nil {
		return err
	}
	if ct != ir.I1 {
		return errf(s.line, s.col, "while condition must be bool, got %s", ct)
	}
	fc.b.CondBr(cond, bodyB, exitB)

	fc.startBlock(bodyB)
	fc.loops = append(fc.loops, loopTargets{brk: exitB, cont: condB})
	err = fc.genBlock(s.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	if err != nil {
		return err
	}
	if !fc.terminated {
		fc.b.Br(condB)
	}
	fc.startBlock(exitB)
	return nil
}

func (fc *fctx) genFor(s *ForStmt) error {
	fc.pushScope()
	defer fc.popScope()
	if s.Init != nil {
		if err := fc.genStmt(s.Init); err != nil {
			return err
		}
	}
	condB := fc.fn.NewBlock("for.cond")
	bodyB := fc.fn.NewBlock("for.body")
	postB := fc.fn.NewBlock("for.post")
	exitB := fc.fn.NewBlock("for.end")
	fc.b.Br(condB)

	fc.startBlock(condB)
	if s.Cond != nil {
		cond, ct, err := fc.genExpr(s.Cond)
		if err != nil {
			return err
		}
		if ct != ir.I1 {
			return errf(s.line, s.col, "for condition must be bool, got %s", ct)
		}
		fc.b.CondBr(cond, bodyB, exitB)
	} else {
		fc.b.Br(bodyB)
	}

	fc.startBlock(bodyB)
	fc.loops = append(fc.loops, loopTargets{brk: exitB, cont: postB})
	err := fc.genBlock(s.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	if err != nil {
		return err
	}
	if !fc.terminated {
		fc.b.Br(postB)
	}

	fc.startBlock(postB)
	if s.Post != nil {
		if err := fc.genStmt(s.Post); err != nil {
			return err
		}
	}
	if !fc.terminated {
		fc.b.Br(condB)
	}
	fc.startBlock(exitB)
	return nil
}

func (fc *fctx) genReturn(s *ReturnStmt) error {
	want := fc.fn.RetType()
	if s.Value == nil {
		if want != ir.Void {
			return errf(s.line, s.col, "missing return value (want %s)", want)
		}
		fc.b.Ret(nil)
		fc.terminated = true
		return nil
	}
	v, t, err := fc.genExpr(s.Value)
	if err != nil {
		return err
	}
	if t != want {
		return errf(s.line, s.col, "return type mismatch: have %s, want %s", t, want)
	}
	fc.b.Ret(v)
	fc.terminated = true
	return nil
}
