package lang

import (
	"fmt"
	"strings"
)

// RandomProgram deterministically generates a random, well-formed,
// terminating sci program from a seed. Generated programs never trap on
// a fault-free run: loops have static bounds, there is no recursion,
// integer divisions and remainders have non-zero denominators, and
// array indices are reduced into bounds. They exercise arithmetic,
// logic, comparisons, short-circuit operators, arrays, calls, casts,
// and nested control flow — the input distribution for the semantic-
// preservation property tests of mem2reg and the duplication pass.
func RandomProgram(seed int64) string {
	g := &progGen{rng: uint64(seed)*2862933555777941757 + 3037000493}
	return g.program()
}

type progGen struct {
	rng    uint64
	sb     strings.Builder
	indent int

	intVars   []string
	floatVars []string
	arrVars   []string
	// roInts are readable but never assigned (loop induction
	// variables — assigning them could make loops diverge).
	roInts []string
	funcs  []randFn // previously defined, callable functions

	nameSeq int
	depth   int
}

type randFn struct {
	name   string
	params int // int params followed by one float param
	retInt bool
}

const randArrLen = 16

func (g *progGen) next() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 11
}

func (g *progGen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *progGen) line(format string, args ...interface{}) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *progGen) fresh(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *progGen) program() string {
	// A few helper functions, then main.
	nFuncs := 1 + g.intn(3)
	for i := 0; i < nFuncs; i++ {
		g.genFunc()
	}
	g.genMain()
	return g.sb.String()
}

func (g *progGen) genFunc() {
	name := g.fresh("fn")
	retInt := g.intn(2) == 0
	nInt := 1 + g.intn(2)
	var params []string
	saveI, saveF, saveA := g.intVars, g.floatVars, g.arrVars
	g.intVars, g.floatVars, g.arrVars = nil, nil, nil
	for i := 0; i < nInt; i++ {
		p := g.fresh("a")
		params = append(params, p+" int")
		g.intVars = append(g.intVars, p)
	}
	fp := g.fresh("a")
	params = append(params, fp+" float")
	g.floatVars = append(g.floatVars, fp)

	ret := "float"
	if retInt {
		ret = "int"
	}
	g.line("func %s(%s) %s {", name, strings.Join(params, ", "), ret)
	g.indent++
	// Helper functions are called from within loops, so keep them
	// shallow (at most one loop level) and leaf-like (no calls to
	// other helpers, which would compound loop nests exponentially).
	g.depth = 2
	saveFns := g.funcs
	g.funcs = nil
	g.genBody(2 + g.intn(4))
	if retInt {
		g.line("return %s;", g.intExpr(0))
	} else {
		g.line("return %s;", g.floatExpr(0))
	}
	g.indent--
	g.line("}")
	g.depth = 0
	g.intVars, g.floatVars, g.arrVars = saveI, saveF, saveA
	g.funcs = append(saveFns, randFn{name: name, params: nInt, retInt: retInt})
}

func (g *progGen) genMain() {
	g.line("func main() {")
	g.indent++
	// Seed variables so expressions always have material.
	for i := 0; i < 2; i++ {
		v := g.fresh("x")
		g.line("var %s int = %d;", v, g.intn(100))
		g.intVars = append(g.intVars, v)
	}
	for i := 0; i < 2; i++ {
		v := g.fresh("f")
		g.line("var %s float = %d.%d;", v, g.intn(10), g.intn(100))
		g.floatVars = append(g.floatVars, v)
	}
	a := g.fresh("arr")
	g.line("var %s *float = malloc_f64(%d);", a, randArrLen)
	g.arrVars = append(g.arrVars, a)
	g.line("for (var i0 int = 0; i0 < %d; i0 = i0 + 1) {", randArrLen)
	g.line("\t%s[i0] = float(i0) * 1.5;", a)
	g.line("}")

	g.genBody(6 + g.intn(8))

	// Deterministic observation points.
	for i, v := range g.intVars {
		g.line("out_i64(%d, %s);", i, v)
	}
	for i, v := range g.floatVars {
		g.line("out_f64(%d, %s);", i, v)
	}
	for i, arr := range g.arrVars {
		g.line("for (var k%d int = 0; k%d < %d; k%d = k%d + 1) {", i, i, randArrLen, i, i)
		g.line("\tout_f64(%d + k%d, %s[k%d]);", 100+i*randArrLen, i, arr, i)
		g.line("}")
	}
	g.indent--
	g.line("}")
}

// genBody emits n statements at the current scope.
func (g *progGen) genBody(n int) {
	for i := 0; i < n; i++ {
		g.genStmt()
	}
}

func (g *progGen) genStmt() {
	if g.depth > 3 {
		g.genAssign()
		return
	}
	switch g.intn(10) {
	case 0, 1, 2, 3:
		g.genAssign()
	case 4:
		g.genVarDecl()
	case 5, 6:
		g.genIf()
	case 7, 8:
		if g.depth < 2 {
			g.genLoop() // cap loop nesting at two levels
		} else {
			g.genAssign()
		}
	default:
		g.genArrayStore()
	}
}

func (g *progGen) genVarDecl() {
	if g.intn(2) == 0 {
		v := g.fresh("x")
		g.line("var %s int = %s;", v, g.intExpr(0))
		g.intVars = append(g.intVars, v)
	} else {
		v := g.fresh("f")
		g.line("var %s float = %s;", v, g.floatExpr(0))
		g.floatVars = append(g.floatVars, v)
	}
}

func (g *progGen) genAssign() {
	if g.intn(2) == 0 && len(g.intVars) > 0 {
		v := g.intVars[g.intn(len(g.intVars))]
		g.line("%s = %s;", v, g.intExpr(0))
	} else if len(g.floatVars) > 0 {
		v := g.floatVars[g.intn(len(g.floatVars))]
		g.line("%s = %s;", v, g.floatExpr(0))
	}
}

func (g *progGen) genArrayStore() {
	if len(g.arrVars) == 0 {
		g.genAssign()
		return
	}
	a := g.arrVars[g.intn(len(g.arrVars))]
	g.line("%s[%s] = %s;", a, g.indexExpr(), g.floatExpr(0))
}

// scoped runs body with the variable environment snapshotted, so
// declarations inside a block do not leak into the enclosing scope
// (matching sci's scoping rules).
func (g *progGen) scoped(body func()) {
	nI, nF, nA, nR := len(g.intVars), len(g.floatVars), len(g.arrVars), len(g.roInts)
	body()
	g.intVars = g.intVars[:nI]
	g.floatVars = g.floatVars[:nF]
	g.arrVars = g.arrVars[:nA]
	g.roInts = g.roInts[:nR]
}

func (g *progGen) genIf() {
	g.depth++
	g.line("if (%s) {", g.boolExpr(0))
	g.indent++
	g.scoped(func() { g.genBody(1 + g.intn(3)) })
	g.indent--
	if g.intn(2) == 0 {
		g.line("} else {")
		g.indent++
		g.scoped(func() { g.genBody(1 + g.intn(3)) })
		g.indent--
	}
	g.line("}")
	g.depth--
}

func (g *progGen) genLoop() {
	g.depth++
	iv := g.fresh("i")
	bound := 2 + g.intn(7)
	g.line("for (var %s int = 0; %s < %d; %s = %s + 1) {", iv, iv, bound, iv, iv)
	g.indent++
	g.scoped(func() {
		g.roInts = append(g.roInts, iv)
		g.genBody(1 + g.intn(3))
	})
	g.indent--
	g.line("}")
	g.depth--
}

// indexExpr yields an always-in-bounds array index.
func (g *progGen) indexExpr() string {
	return fmt.Sprintf("((%s) %% %d + %d) %% %d", g.intExpr(2), randArrLen, randArrLen, randArrLen)
}

func (g *progGen) intExpr(depth int) string {
	if depth > 2 {
		return g.intLeaf()
	}
	switch g.intn(8) {
	case 0, 1:
		return g.intLeaf()
	case 2:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 3:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 4:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 5:
		// Guarded division: denominator in [1, 8].
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", g.intExpr(depth+1), g.intExpr(depth+1))
	case 6:
		op := []string{"&", "|", "^"}[g.intn(3)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth+1), op, g.intExpr(depth+1))
	default:
		return fmt.Sprintf("int(%s)", g.floatExpr(depth+1))
	}
}

func (g *progGen) intLeaf() string {
	readable := len(g.intVars) + len(g.roInts)
	if readable > 0 && g.intn(3) != 0 {
		k := g.intn(readable)
		if k < len(g.intVars) {
			return g.intVars[k]
		}
		return g.roInts[k-len(g.intVars)]
	}
	return fmt.Sprint(g.intn(64))
}

func (g *progGen) floatExpr(depth int) string {
	if depth > 2 {
		return g.floatLeaf()
	}
	switch g.intn(9) {
	case 0, 1:
		return g.floatLeaf()
	case 2:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 3:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 4:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 5:
		// Division with a denominator bounded away from zero.
		return fmt.Sprintf("(%s / (fabs(%s) + 1.0))", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 6:
		fn := []string{"sqrt", "fabs"}[g.intn(2)]
		return fmt.Sprintf("%s(fabs(%s))", fn, g.floatExpr(depth+1))
	case 7:
		if len(g.arrVars) > 0 {
			a := g.arrVars[g.intn(len(g.arrVars))]
			return fmt.Sprintf("%s[%s]", a, g.indexExpr())
		}
		return g.floatLeaf()
	default:
		if len(g.funcs) > 0 {
			f := g.funcs[g.intn(len(g.funcs))]
			args := make([]string, 0, f.params+1)
			for i := 0; i < f.params; i++ {
				args = append(args, g.intExpr(depth+1))
			}
			args = append(args, g.floatExpr(depth+1))
			call := fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
			if f.retInt {
				return fmt.Sprintf("float(%s)", call)
			}
			return call
		}
		return fmt.Sprintf("float(%s)", g.intExpr(depth+1))
	}
}

func (g *progGen) floatLeaf() string {
	if len(g.floatVars) > 0 && g.intn(3) != 0 {
		return g.floatVars[g.intn(len(g.floatVars))]
	}
	return fmt.Sprintf("%d.%02d", g.intn(8), g.intn(100))
}

func (g *progGen) boolExpr(depth int) string {
	cmp := []string{"<", "<=", ">", ">=", "==", "!="}[g.intn(6)]
	var base string
	if g.intn(2) == 0 {
		base = fmt.Sprintf("(%s %s %s)", g.intExpr(1), cmp, g.intExpr(1))
	} else {
		base = fmt.Sprintf("(%s %s %s)", g.floatExpr(1), cmp, g.floatExpr(1))
	}
	if depth == 0 {
		switch g.intn(4) {
		case 0:
			return fmt.Sprintf("(%s && %s)", base, g.boolExpr(1))
		case 1:
			return fmt.Sprintf("(%s || %s)", base, g.boolExpr(1))
		case 2:
			return "!" + base
		}
	}
	return base
}
