// Package lang implements "sci", a small C-like language for writing
// the paper's scientific workloads. A sci source file is compiled to
// the IPAS IR through a conventional pipeline: lexer, recursive-descent
// parser, type checking, and IR code generation, followed by mem2reg
// and dead-code elimination so the IR has the SSA/PHI structure that
// LLVM would give the paper's C codes.
package lang

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit

	// Keywords.
	tokFunc
	tokVar
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue
	tokTrue
	tokFalse
	tokInt
	tokFloat
	tokBool

	// Punctuation.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokAssign
	tokStar
	tokPlus
	tokMinus
	tokSlash
	tokPercent
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
	tokNot
	tokShl
	tokShr
	tokAmp
	tokPipe
	tokCaret
)

var keywords = map[string]tokKind{
	"func": tokFunc, "var": tokVar, "if": tokIf, "else": tokElse,
	"while": tokWhile, "for": tokFor, "return": tokReturn,
	"break": tokBreak, "continue": tokContinue,
	"true": tokTrue, "false": tokFalse,
	"int": tokInt, "float": tokFloat, "bool": tokBool,
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("sci:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
