package lang

import (
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
)

// runMain compiles and executes src, returning the result.
func runMain(t *testing.T, src string) *interp.Result {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatalf("interp compile: %v", err)
	}
	res := interp.Run(p, interp.Config{})
	return res
}

func TestHelloSum(t *testing.T) {
	res := runMain(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		s = s + i * i;
	}
	out_i64(0, s);
}
`)
	if res.Trap != interp.TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputI[0] != 285 {
		t.Fatalf("sum = %d, want 285", res.OutputI[0])
	}
}

func TestFunctionsAndFloats(t *testing.T) {
	res := runMain(t, `
func hypot(a float, b float) float {
	return sqrt(a*a + b*b);
}
func main() {
	out_f64(0, hypot(3.0, 4.0));
}
`)
	if res.Trap != interp.TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputF[0] != 5.0 {
		t.Fatalf("hypot = %v, want 5", res.OutputF[0])
	}
}

func TestArraysAndWhile(t *testing.T) {
	res := runMain(t, `
func main() {
	var n int = 100;
	var a *float = malloc_f64(n);
	var i int = 0;
	while (i < n) {
		a[i] = float(i) * 0.5;
		i = i + 1;
	}
	var s float = 0.0;
	for (var j int = 0; j < n; j = j + 1) {
		s = s + a[j];
	}
	out_f64(0, s);
}
`)
	if res.Trap != interp.TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if want := 0.5 * 99 * 100 / 2; res.OutputF[0] != want {
		t.Fatalf("sum = %v, want %v", res.OutputF[0], want)
	}
}

func TestShortCircuitAndRecursion(t *testing.T) {
	res := runMain(t, `
func fib(n int) int {
	if (n < 2) {
		return n;
	}
	return fib(n-1) + fib(n-2);
}
func main() {
	var x int = 7;
	if (x > 3 && fib(x) == 13) {
		out_i64(0, 1);
	} else {
		out_i64(0, 0);
	}
	// || must not evaluate the RHS when the LHS is true.
	var guard int = 0;
	if (x > 0 || 1/guard == 0) {
		out_i64(1, 42);
	}
}
`)
	if res.Trap != interp.TrapNone {
		t.Fatalf("trap: %v %s", res.Trap, res.TrapMsg)
	}
	if res.OutputI[0] != 1 || res.OutputI[1] != 42 {
		t.Fatalf("outputs = %v", res.OutputI)
	}
}

func TestBreakContinueElseIf(t *testing.T) {
	res := runMain(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) {
			continue;
		} else if (i > 10) {
			break;
		}
		s = s + i;
	}
	out_i64(0, s); // 1+3+5+7+9 = 25
}
`)
	if res.Trap != interp.TrapNone || res.OutputI[0] != 25 {
		t.Fatalf("trap=%v out=%v, want 25", res.Trap, res.OutputI)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"type mismatch", `func main() { var x int = 1.5; }`},
		{"undefined var", `func main() { y = 1; }`},
		{"undefined func", `func main() { frob(); }`},
		{"missing main", `func helper() {}`},
		{"bad arity", `func main() { out_i64(1); }`},
		{"void in expr", `func main() { var x int = int(out_i64(0,0)); }`},
		{"break outside loop", `func main() { break; }`},
		{"dup function", `func main() {} func main() {}`},
		{"shadow builtin", `func sqrt(x float) float { return x; } func main() {}`},
		{"non-bool cond", `func main() { if (1) {} }`},
		{"float mod", `func main() { var x float = 1.0 % 2.0; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: compile succeeded, want error", c.name)
		}
	}
}

func TestMem2RegProducesPhis(t *testing.T) {
	m, err := Compile(`
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		s = s + i;
	}
	out_i64(0, s);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	phis, allocas := 0, 0
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				switch in.Op() {
				case ir.OpPhi:
					phis++
				case ir.OpAlloca:
					allocas++
				}
			}
		}
	}
	if phis == 0 {
		t.Error("expected PHI nodes after mem2reg")
	}
	if allocas != 0 {
		t.Errorf("expected all allocas promoted, found %d", allocas)
	}
}

func TestIRRoundtripAfterCompile(t *testing.T) {
	m, err := Compile(`
func axpy(n int, a float, x *float, y *float) {
	for (var i int = 0; i < n; i = i + 1) {
		y[i] = a * x[i] + y[i];
	}
}
func main() {
	var n int = 8;
	var x *float = malloc_f64(n);
	var y *float = malloc_f64(n);
	for (var i int = 0; i < n; i = i + 1) {
		x[i] = 1.0;
		y[i] = 2.0;
	}
	axpy(n, 3.0, x, y);
	out_f64(0, y[7]);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m2.AssignSiteIDs()
	p, err := interp.Compile(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := interp.Run(p, interp.Config{})
	if res.Trap != interp.TrapNone || res.OutputF[0] != 5.0 {
		t.Fatalf("trap=%v out=%v, want 5", res.Trap, res.OutputF)
	}
}
