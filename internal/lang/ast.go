package lang

// The sci abstract syntax tree. Nodes carry the position of their
// leading token for diagnostics.

type pos struct{ line, col int }

// File is a parsed source file.
type File struct {
	Funcs []*FuncDecl
}

// TypeExpr is a parsed type: base ("int", "float", "bool") with
// optional pointer stars.
type TypeExpr struct {
	pos
	Base  string
	Stars int
}

// FuncDecl is a function declaration with its body.
type FuncDecl struct {
	pos
	Name   string
	Params []ParamDecl
	Ret    *TypeExpr // nil for void
	Body   *BlockStmt
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	pos
	Name string
	Type *TypeExpr
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtPos() pos }

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct {
	pos
	Stmts []Stmt
}

// VarDecl declares a local variable with an optional initializer.
type VarDecl struct {
	pos
	Name string
	Type *TypeExpr
	Init Expr // may be nil (zero value)
}

// AssignStmt assigns to a variable or array element.
type AssignStmt struct {
	pos
	LHS Expr // IdentExpr or IndexExpr
	RHS Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post may be nil.
type ForStmt struct {
	pos
	Init Stmt // VarDecl or AssignStmt
	Cond Expr // may be nil (infinite)
	Post Stmt // AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	pos
	Value Expr // nil in void functions
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	pos
	X Expr
}

func (s *BlockStmt) stmtPos() pos    { return s.pos }
func (s *VarDecl) stmtPos() pos      { return s.pos }
func (s *AssignStmt) stmtPos() pos   { return s.pos }
func (s *IfStmt) stmtPos() pos       { return s.pos }
func (s *WhileStmt) stmtPos() pos    { return s.pos }
func (s *ForStmt) stmtPos() pos      { return s.pos }
func (s *ReturnStmt) stmtPos() pos   { return s.pos }
func (s *BreakStmt) stmtPos() pos    { return s.pos }
func (s *ContinueStmt) stmtPos() pos { return s.pos }
func (s *ExprStmt) stmtPos() pos     { return s.pos }

// Expr is implemented by all expression nodes.
type Expr interface{ exprPos() pos }

// IdentExpr references a variable.
type IdentExpr struct {
	pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	pos
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	pos
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	pos
	Value bool
}

// BinaryExpr is a binary operation identified by its token kind.
type BinaryExpr struct {
	pos
	Op   tokKind
	L, R Expr
}

// UnaryExpr is unary minus or logical not.
type UnaryExpr struct {
	pos
	Op tokKind
	X  Expr
}

// CallExpr calls a user function, a runtime builtin, or a type cast
// spelled like a call (int(x), float(x)).
type CallExpr struct {
	pos
	Name string
	Args []Expr
}

// IndexExpr reads (or, as an assignment target, writes) ptr[idx].
type IndexExpr struct {
	pos
	Ptr Expr
	Idx Expr
}

func (e *IdentExpr) exprPos() pos  { return e.pos }
func (e *IntLit) exprPos() pos     { return e.pos }
func (e *FloatLit) exprPos() pos   { return e.pos }
func (e *BoolLit) exprPos() pos    { return e.pos }
func (e *BinaryExpr) exprPos() pos { return e.pos }
func (e *UnaryExpr) exprPos() pos  { return e.pos }
func (e *CallExpr) exprPos() pos   { return e.pos }
func (e *IndexExpr) exprPos() pos  { return e.pos }
