package lang

import (
	"ipas/internal/ir"
)

// genExpr generates code for an expression that must produce a value.
func (fc *fctx) genExpr(e Expr) (ir.Value, *ir.Type, error) {
	v, t, err := fc.genExprAllowVoid(e)
	if err != nil {
		return nil, nil, err
	}
	if t == ir.Void {
		p := e.exprPos()
		return nil, nil, errf(p.line, p.col, "void value used in expression")
	}
	return v, t, nil
}

// genExprAllowVoid also accepts calls to void functions (for statement
// position).
func (fc *fctx) genExprAllowVoid(e Expr) (ir.Value, *ir.Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.ConstInt(ir.I64, e.Value), ir.I64, nil
	case *FloatLit:
		return ir.ConstFloat(e.Value), ir.F64, nil
	case *BoolLit:
		return ir.ConstBool(e.Value), ir.I1, nil
	case *IdentExpr:
		v := fc.lookup(e.Name)
		if v == nil {
			return nil, nil, errf(e.line, e.col, "undefined variable %q", e.Name)
		}
		return fc.b.Load(v.slot), v.typ, nil
	case *IndexExpr:
		ptr, elem, err := fc.genIndexAddr(e)
		if err != nil {
			return nil, nil, err
		}
		return fc.b.Load(ptr), elem, nil
	case *UnaryExpr:
		return fc.genUnary(e)
	case *BinaryExpr:
		return fc.genBinary(e)
	case *CallExpr:
		return fc.genCall(e)
	}
	p := e.exprPos()
	return nil, nil, errf(p.line, p.col, "unsupported expression")
}

// genIndexAddr computes the element address of ptr[idx].
func (fc *fctx) genIndexAddr(e *IndexExpr) (ir.Value, *ir.Type, error) {
	pv, pt, err := fc.genExpr(e.Ptr)
	if err != nil {
		return nil, nil, err
	}
	if !pt.IsPtr() {
		return nil, nil, errf(e.line, e.col, "indexing non-pointer type %s", pt)
	}
	iv, it, err := fc.genExpr(e.Idx)
	if err != nil {
		return nil, nil, err
	}
	if it != ir.I64 {
		return nil, nil, errf(e.line, e.col, "index must be int, got %s", it)
	}
	return fc.b.GEP(pv, iv), pt.Elem(), nil
}

func (fc *fctx) genUnary(e *UnaryExpr) (ir.Value, *ir.Type, error) {
	v, t, err := fc.genExpr(e.X)
	if err != nil {
		return nil, nil, err
	}
	switch e.Op {
	case tokMinus:
		switch {
		case t == ir.I64:
			return fc.b.Sub(ir.ConstInt(ir.I64, 0), v), ir.I64, nil
		case t == ir.F64:
			return fc.b.FSub(ir.ConstFloat(0), v), ir.F64, nil
		}
		return nil, nil, errf(e.line, e.col, "unary '-' on %s", t)
	case tokNot:
		if t != ir.I1 {
			return nil, nil, errf(e.line, e.col, "'!' on non-bool %s", t)
		}
		return fc.b.Xor(v, ir.ConstBool(true)), ir.I1, nil
	}
	return nil, nil, errf(e.line, e.col, "unsupported unary operator")
}

func (fc *fctx) genBinary(e *BinaryExpr) (ir.Value, *ir.Type, error) {
	// Short-circuit logical operators introduce control flow.
	if e.Op == tokAndAnd || e.Op == tokOrOr {
		return fc.genShortCircuit(e)
	}
	lv, lt, err := fc.genExpr(e.L)
	if err != nil {
		return nil, nil, err
	}
	rv, rtyp, err := fc.genExpr(e.R)
	if err != nil {
		return nil, nil, err
	}
	if lt != rtyp {
		return nil, nil, errf(e.line, e.col, "operand type mismatch: %s vs %s", lt, rtyp)
	}
	bad := func() (ir.Value, *ir.Type, error) {
		return nil, nil, errf(e.line, e.col, "invalid operand type %s", lt)
	}
	switch e.Op {
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent:
		switch lt {
		case ir.I64:
			switch e.Op {
			case tokPlus:
				return fc.b.Add(lv, rv), lt, nil
			case tokMinus:
				return fc.b.Sub(lv, rv), lt, nil
			case tokStar:
				return fc.b.Mul(lv, rv), lt, nil
			case tokSlash:
				return fc.b.SDiv(lv, rv), lt, nil
			default:
				return fc.b.SRem(lv, rv), lt, nil
			}
		case ir.F64:
			switch e.Op {
			case tokPlus:
				return fc.b.FAdd(lv, rv), lt, nil
			case tokMinus:
				return fc.b.FSub(lv, rv), lt, nil
			case tokStar:
				return fc.b.FMul(lv, rv), lt, nil
			case tokSlash:
				return fc.b.FDiv(lv, rv), lt, nil
			default:
				return bad()
			}
		}
		return bad()
	case tokAmp, tokPipe, tokCaret, tokShl, tokShr:
		if lt != ir.I64 {
			return bad()
		}
		switch e.Op {
		case tokAmp:
			return fc.b.And(lv, rv), lt, nil
		case tokPipe:
			return fc.b.Or(lv, rv), lt, nil
		case tokCaret:
			return fc.b.Xor(lv, rv), lt, nil
		case tokShl:
			return fc.b.Shl(lv, rv), lt, nil
		default:
			return fc.b.AShr(lv, rv), lt, nil
		}
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		pred := map[tokKind]ir.Pred{
			tokEq: ir.PredEQ, tokNe: ir.PredNE, tokLt: ir.PredLT,
			tokLe: ir.PredLE, tokGt: ir.PredGT, tokGe: ir.PredGE,
		}[e.Op]
		switch {
		case lt == ir.F64:
			return fc.b.FCmp(pred, lv, rv), ir.I1, nil
		case lt.IsInt() || lt.IsPtr():
			if lt == ir.I1 && pred != ir.PredEQ && pred != ir.PredNE {
				return bad()
			}
			return fc.b.ICmp(pred, lv, rv), ir.I1, nil
		}
		return bad()
	}
	return nil, nil, errf(e.line, e.col, "unsupported binary operator")
}

// genShortCircuit lowers && and || into control flow with a PHI merge.
func (fc *fctx) genShortCircuit(e *BinaryExpr) (ir.Value, *ir.Type, error) {
	lv, lt, err := fc.genExpr(e.L)
	if err != nil {
		return nil, nil, err
	}
	if lt != ir.I1 {
		return nil, nil, errf(e.line, e.col, "logical operator on non-bool %s", lt)
	}
	rhsB := fc.fn.NewBlock("sc.rhs")
	mergeB := fc.fn.NewBlock("sc.end")
	lhsEnd := fc.b.Block()
	if e.Op == tokAndAnd {
		fc.b.CondBr(lv, rhsB, mergeB)
	} else {
		fc.b.CondBr(lv, mergeB, rhsB)
	}

	fc.startBlock(rhsB)
	rv, rtyp, err := fc.genExpr(e.R)
	if err != nil {
		return nil, nil, err
	}
	if rtyp != ir.I1 {
		return nil, nil, errf(e.line, e.col, "logical operator on non-bool %s", rtyp)
	}
	rhsEnd := fc.b.Block()
	fc.b.Br(mergeB)

	fc.startBlock(mergeB)
	phi := fc.b.Phi(ir.I1)
	ir.AddIncoming(phi, ir.ConstBool(e.Op == tokOrOr), lhsEnd)
	ir.AddIncoming(phi, rv, rhsEnd)
	return phi, ir.I1, nil
}

func (fc *fctx) genCall(e *CallExpr) (ir.Value, *ir.Type, error) {
	// Type casts spelled as calls.
	if e.Name == "int" || e.Name == "float" {
		return fc.genCast(e)
	}
	// offset(p, i) is pointer arithmetic, lowered directly to GEP.
	if e.Name == "offset" {
		if len(e.Args) != 2 {
			return nil, nil, errf(e.line, e.col, "offset() takes (pointer, int)")
		}
		pv, pt, err := fc.genExpr(e.Args[0])
		if err != nil {
			return nil, nil, err
		}
		if !pt.IsPtr() {
			return nil, nil, errf(e.line, e.col, "offset() first argument must be a pointer, got %s", pt)
		}
		iv, it, err := fc.genExpr(e.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if it != ir.I64 {
			return nil, nil, errf(e.line, e.col, "offset() second argument must be int, got %s", it)
		}
		return fc.b.GEP(pv, iv), pt, nil
	}
	callee := fc.cg.funcs[e.Name]
	if callee == nil {
		callee = fc.cg.builtins[e.Name]
	}
	if callee == nil {
		return nil, nil, errf(e.line, e.col, "undefined function %q", e.Name)
	}
	if len(e.Args) != len(callee.Params()) {
		return nil, nil, errf(e.line, e.col, "%s takes %d arguments, got %d",
			e.Name, len(callee.Params()), len(e.Args))
	}
	args := make([]ir.Value, len(e.Args))
	for i, a := range e.Args {
		av, at, err := fc.genExpr(a)
		if err != nil {
			return nil, nil, err
		}
		want := callee.Params()[i].Type()
		if at != want {
			return nil, nil, errf(e.line, e.col, "%s argument %d: have %s, want %s",
				e.Name, i+1, at, want)
		}
		args[i] = av
	}
	call := fc.b.Call(callee, args...)
	return call, callee.RetType(), nil
}

func (fc *fctx) genCast(e *CallExpr) (ir.Value, *ir.Type, error) {
	if len(e.Args) != 1 {
		return nil, nil, errf(e.line, e.col, "%s() takes exactly one argument", e.Name)
	}
	v, t, err := fc.genExpr(e.Args[0])
	if err != nil {
		return nil, nil, err
	}
	if e.Name == "int" {
		switch t {
		case ir.I64:
			return v, ir.I64, nil
		case ir.F64:
			return fc.b.FPToSI(v, ir.I64), ir.I64, nil
		case ir.I1:
			return fc.b.ZExt(v, ir.I64), ir.I64, nil
		}
		return nil, nil, errf(e.line, e.col, "cannot convert %s to int", t)
	}
	switch t {
	case ir.F64:
		return v, ir.F64, nil
	case ir.I64:
		return fc.b.SIToFP(v), ir.F64, nil
	}
	return nil, nil, errf(e.line, e.col, "cannot convert %s to float", t)
}
