// Package workloads provides the five scientific codes the paper
// evaluates — CoMD, HPCCG, AMG, FFT, and NPB IS — rewritten in the sci
// language with the same algorithmic structure, plus each code's output
// verification routine (Table 2) and input ladder (Table 5).
//
// All codes are SPMD MPI programs: run with one rank they execute the
// serial algorithm (the paper's coverage experiments use a single MPI
// process); with more ranks they partition work and exchange data
// through the simulated MPI runtime (the paper's scalability
// experiments).
package workloads

import (
	"fmt"
	"math"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

// Names lists the workloads in the paper's order.
var Names = []string{"CoMD", "HPCCG", "AMG", "FFT", "IS"}

// ConvergenceNames lists the iterative-convergence mini-apps used by
// the error-model evaluation: solvers whose verifiers track not just
// the answer but the convergence trajectory (iteration count and
// converged flag), so faults that merely slow or stall convergence
// surface as silent output corruption. They are deliberately kept out
// of Names — the paper's tables sweep the five evaluation codes only.
var ConvergenceNames = []string{"Jacobi", "GradDesc"}

// Spec is one workload at one input level.
type Spec struct {
	// Name is the workload name (one of Names).
	Name string
	// Input is the input level, 1..4; level 1 is the training input
	// (Table 5).
	Input int
	// InputDesc describes the input, e.g. "nx=ny=nz=12".
	InputDesc string
	// Source is the sci program text.
	Source string
	// Verify is the output verification routine (Table 2).
	Verify fault.Verifier
	// Heap is the per-rank heap size the input needs.
	Heap int64
}

// Get builds the spec for a workload at an input level.
func Get(name string, input int) (*Spec, error) {
	if input < 1 || input > 4 {
		return nil, fmt.Errorf("workloads: input level %d out of range 1..4", input)
	}
	switch name {
	case "CoMD":
		return comdSpec(input), nil
	case "HPCCG":
		return hpccgSpec(input), nil
	case "AMG":
		return amgSpec(input), nil
	case "FFT":
		return fftSpec(input), nil
	case "IS":
		return isSpec(input), nil
	case "Jacobi":
		return jacobiSpec(input), nil
	case "GradDesc":
		return graddescSpec(input), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// MustGet is Get that panics on error.
func MustGet(name string, input int) *Spec {
	s, err := Get(name, input)
	if err != nil {
		panic(err)
	}
	return s
}

// Compile compiles the spec's source to IR.
func (s *Spec) Compile() (*ir.Module, error) {
	m, err := lang.Compile(s.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s input %d: %w", s.Name, s.Input, err)
	}
	return m, nil
}

// BaseConfig returns the interpreter configuration the workload needs.
func (s *Spec) BaseConfig(ranks int) interp.Config {
	heap := s.Heap
	if heap <= 0 {
		heap = 64 << 20
	}
	return interp.Config{Ranks: ranks, HeapBytes: heap}
}

// Verification helpers shared by the workload definitions.

// outF safely reads index i of a float output vector.
func outF(r *interp.Result, i int) float64 {
	if i < 0 || i >= len(r.OutputF) {
		return math.NaN()
	}
	return r.OutputF[i]
}

// sameLenF reports whether the float outputs have equal length.
func sameLenF(a, b *interp.Result) bool { return len(a.OutputF) == len(b.OutputF) }

// l2Diff computes the L2 norm of the difference of two float output
// ranges [from, from+n).
func l2Diff(a, b *interp.Result, from, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		d := outF(a, from+i) - outF(b, from+i)
		s += d * d
	}
	return math.Sqrt(s)
}

// finite reports whether v is a usable number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
