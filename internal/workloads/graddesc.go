package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// graddescSizes gives the problem dimension per input level.
var graddescSizes = [4]int{96, 192, 384, 768}

const (
	graddescMaxIter = 199
	graddescGTol    = "0.000000001" // gradient tolerance 1e-9
	graddescErrTol  = 1e-5          // solution-error tolerance
	// graddescIterSlack bounds how many extra iterations a faulty run
	// may take over the golden run and still verify (same contract as
	// jacobiIterSlack: slowed convergence is a wrong answer).
	graddescIterSlack = 15
)

// graddescSource is the gradient-descent mini-app: fixed-step steepest
// descent on the strongly convex quadratic f(x) = x'Ax/2 - b'x with
// A = 3I - adjacency over a 1-D chain (eigenvalues in [1, 5], so the
// classic step 2/(L+mu) = 1/3 contracts the error every iteration) and
// b chosen so the minimizer is all ones. The optimizer's contraction
// anneals transient faults but a sticky fault biases every gradient,
// turning clean convergence into a stall — the behaviour the
// error-model evaluation quantifies. Rows are block-partitioned; the
// iterate is re-gathered each step and the gradient norm uses
// allreduce.
//
// Outputs: [0] max |x_i - 1| (solution error), [1] final gradient
// norm, [2] iterations used, [3] converged flag.
const graddescSource = sciMPILib + `
// grad computes g = A x - b on rows [lo, hi) of the chain operator
// A = 3I - adjacency and returns this rank's partial squared norm.
func grad(n int, lo int, hi int, b *float, x *float, g *float) float {
	var gg float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		var s float = 3.0 * x[r];
		if (r > 0)     { s = s - x[r - 1]; }
		if (r < n - 1) { s = s - x[r + 1]; }
		var gr float = s - b[r];
		g[r] = gr;
		gg = gg + gr * gr;
	}
	return gg;
}

func main() {
	var n int = @N@;
	var rank int = mpi_rank();
	var np int = mpi_size();
	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);

	var x *float = malloc_f64(n);
	var g *float = malloc_f64(n);
	var b *float = malloc_f64(n);

	// b = A * ones, so the minimizer is all ones. Every rank computes
	// the replicated setup identically.
	for (var r int = 0; r < n; r = r + 1) {
		var deg float = 0.0;
		if (r > 0)     { deg = deg + 1.0; }
		if (r < n - 1) { deg = deg + 1.0; }
		b[r] = 3.0 - deg;
		x[r] = 0.0;
		g[r] = 0.0;
	}

	// Reference gradient norm ||A x0 - b||^2 = ||b||^2 for the
	// relative stopping test.
	var g0 float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		g0 = g0 + b[r] * b[r];
	}
	g0 = mpi_allreduce_f64(g0, 0);
	var gtol float = @GTOL@;
	var tol2 float = gtol * gtol * g0;
	var step float = 1.0 / 3.0;
	var maxit int = @MAXIT@;
	var iters int = 0;
	var converged int = 0;
	var gg float = g0;

	for (var it int = 0; it < maxit; it = it + 1) {
		iters = it + 1;
		gg = mpi_allreduce_f64(grad(n, lo, hi, b, x, g), 0);
		if (gg < tol2) {
			converged = 1;
			break;
		}
		for (var r int = lo; r < hi; r = r + 1) {
			x[r] = x[r] - step * g[r];
		}
		allgather_f64(x, n, rank, np, 31);
	}

	// Solution error against the known minimizer.
	var err float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		err = fmax(err, fabs(x[r] - 1.0));
	}
	err = mpi_allreduce_f64(err, 2);
	if (rank == 0) {
		out_f64(0, err);
		out_f64(1, sqrt(gg));
		out_f64(2, float(iters));
		out_f64(3, float(converged));
	}
}
`

func graddescSpec(input int) *Spec {
	n := graddescSizes[input-1]
	src := subst(graddescSource, map[string]string{
		"N":     fmt.Sprint(n),
		"GTOL":  graddescGTol,
		"MAXIT": fmt.Sprint(graddescMaxIter),
	})
	return &Spec{
		Name:      "GradDesc",
		Input:     input,
		InputDesc: fmt.Sprintf("n=%d, max %d steps", n, graddescMaxIter),
		Source:    src,
		Verify:    graddescVerify,
		Heap:      16 << 20,
	}
}

// graddescVerify is the residual-based convergence check mirroring
// jacobiVerify: converged within the iteration-slack of the golden
// run, with the solution error below tolerance. Slowed or diverged
// convergence fails the check and (absent a detector) classifies as
// silent output corruption.
func graddescVerify(golden, faulty *interp.Result) bool {
	if !sameLenF(golden, faulty) {
		return false
	}
	err := outF(faulty, 0)
	iters := outF(faulty, 2)
	converged := outF(faulty, 3)
	return finite(err) && err < graddescErrTol && converged == 1 &&
		iters <= outF(golden, 2)+graddescIterSlack
}
