package workloads

import (
	"testing"

	"ipas/internal/ir"
)

// TestPrintRoundTripDeterminism checks print -> parse -> print
// byte-identity for every corpus module. Section fingerprints hash the
// canonical printed form, so any nondeterminism (map-ordered iteration,
// unstable renaming) in the printer or parser would make fingerprints
// unstable across processes and silently invalidate per-section
// journals.
func TestPrintRoundTripDeterminism(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			m, err := MustGet(name, 1).Compile()
			if err != nil {
				t.Fatal(err)
			}
			first := ir.Print(m)
			if again := ir.Print(m); again != first {
				t.Fatal("Print is not deterministic for one module value")
			}
			reparsed, err := ir.Parse(first)
			if err != nil {
				t.Fatalf("canonical print does not re-parse: %v", err)
			}
			second := ir.Print(reparsed)
			if second != first {
				t.Fatalf("print -> parse -> print not byte-identical (lens %d vs %d)", len(first), len(second))
			}
			// Fingerprints must survive the round trip too: the
			// reparsed module's section partition hashes identically.
			m.AssignSiteIDs()
			reparsed.AssignSiteIDs()
			if ir.ModuleSections(m).Fingerprint() != ir.ModuleSections(reparsed).Fingerprint() {
				t.Fatal("section fingerprints differ across a print/parse round trip")
			}
		})
	}
}
