package workloads

import "strings"

// subst replaces @KEY@ placeholders in sci source templates. Templates
// use placeholders instead of fmt verbs so the sci modulo operator '%'
// needs no escaping.
func subst(src string, kv map[string]string) string {
	pairs := make([]string, 0, 2*len(kv))
	for k, v := range kv {
		pairs = append(pairs, "@"+k+"@", v)
	}
	return strings.NewReplacer(pairs...).Replace(src)
}

// sciMPILib is a small SPMD support library shared by the workloads:
// deterministic LCG random numbers, block partitioning, and vector
// collectives built from the runtime's point-to-point primitives.
const sciMPILib = `
// lcg advances a 31-bit linear congruential generator stored at s[0].
func lcg(s *int) int {
	s[0] = (s[0] * 1103515245 + 12345) % 2147483648;
	if (s[0] < 0) {
		s[0] = -s[0];
	}
	return s[0];
}

// frand returns a uniform value in [0, 1).
func frand(s *int) float {
	return float(lcg(s)) / 2147483648.0;
}

// block_lo returns the start of rank p's block of n items over np ranks.
func block_lo(n int, p int, np int) int {
	return p * n / np;
}

// allgather_f64 exchanges the blocks of a replicated vector: rank p
// owns [block_lo(n,p,np), block_lo(n,p+1,np)); afterwards every rank
// holds the full vector.
func allgather_f64(buf *float, n int, rank int, np int, tag int) {
	if (np > 1) {
		for (var owner int = 0; owner < np; owner = owner + 1) {
			var lo int = block_lo(n, owner, np);
			var cnt int = block_lo(n, owner + 1, np) - lo;
			if (cnt > 0) {
				if (rank == owner) {
					for (var q int = 0; q < np; q = q + 1) {
						if (q != rank) {
							mpi_send_f64s(q, tag, offset(buf, lo), cnt);
						}
					}
				} else {
					mpi_recv_f64s(owner, tag, offset(buf, lo), cnt);
				}
			}
		}
	}
}

// allgather_rows exchanges row blocks of a cols-column matrix whose
// rows are block-partitioned across ranks.
func allgather_rows(buf *float, rows int, cols int, rank int, np int, tag int) {
	if (np > 1) {
		for (var owner int = 0; owner < np; owner = owner + 1) {
			var rlo int = block_lo(rows, owner, np);
			var cnt int = (block_lo(rows, owner + 1, np) - rlo) * cols;
			if (cnt > 0) {
				if (rank == owner) {
					for (var q int = 0; q < np; q = q + 1) {
						if (q != rank) {
							mpi_send_f64s(q, tag, offset(buf, rlo * cols), cnt);
						}
					}
				} else {
					mpi_recv_f64s(owner, tag, offset(buf, rlo * cols), cnt);
				}
			}
		}
	}
}

// allreduce_sum_i64s sums a replicated integer vector across ranks in
// place (every rank ends with the global sums).
func allreduce_sum_i64s(buf *int, tmp *int, n int, rank int, np int, tag int) {
	if (np > 1) {
		if (rank == 0) {
			for (var q int = 1; q < np; q = q + 1) {
				mpi_recv_i64s(q, tag, tmp, n);
				for (var i int = 0; i < n; i = i + 1) {
					buf[i] = buf[i] + tmp[i];
				}
			}
			for (var q int = 1; q < np; q = q + 1) {
				mpi_send_i64s(q, tag + 1, buf, n);
			}
		} else {
			mpi_send_i64s(0, tag, buf, n);
			mpi_recv_i64s(0, tag + 1, buf, n);
		}
	}
}
`
