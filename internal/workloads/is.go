package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// isSizes gives the number of keys per input level (NPB IS classes in
// miniature: the paper uses S/W/A/B).
var isSizes = [4]int{1 << 12, 1 << 14, 1 << 16, 1 << 18}

const (
	isBuckets = 1024
	isIters   = 3
)

// isSource is an NPB-IS-style integer sort: deterministic pseudo-random
// keys are ranked by bucketed counting sort, repeated for a few
// iterations with a rotating perturbation as NPB IS does. Key ranges
// are block-partitioned; per-bucket counts are combined with a vector
// allreduce and every rank computes the global ranks.
//
// Outputs (integers): [0..n) the fully sorted key array from the final
// iteration (written by rank 0).
const isSource = sciMPILib + `
func main() {
	var n int = @N@;
	var nb int = @NB@;
	var iters int = @ITERS@;
	var rank int = mpi_rank();
	var np int = mpi_size();

	var keys *int = malloc_i64(n);
	var counts *int = malloc_i64(nb);
	var tmp *int = malloc_i64(nb);
	var sorted *int = malloc_i64(n);

	// Deterministic keys, replicated on every rank.
	var seed *int = malloc_i64(1);
	seed[0] = 314159;
	for (var i int = 0; i < n; i = i + 1) {
		keys[i] = lcg(seed) % nb;
	}

	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);

	for (var it int = 0; it < iters; it = it + 1) {
		// NPB IS perturbs two keys each iteration before re-ranking.
		keys[it % n] = (keys[it % n] + it) % nb;
		keys[(it * 37 + 11) % n] = (keys[(it * 37 + 11) % n] + nb - it % nb) % nb;

		// Histogram of this rank's key block.
		for (var b int = 0; b < nb; b = b + 1) {
			counts[b] = 0;
		}
		for (var i int = lo; i < hi; i = i + 1) {
			var k int = keys[i];
			if (k < 0 || k >= nb) {
				// Corrupted key range: defensive clamp, as NPB's
				// verification would flag it later anyway.
				k = 0;
			}
			counts[k] = counts[k] + 1;
		}
		allreduce_sum_i64s(counts, tmp, nb, rank, np, 50 + it * 2);

		// Exclusive prefix sum gives each bucket's start rank.
		var acc int = 0;
		for (var b int = 0; b < nb; b = b + 1) {
			var c int = counts[b];
			counts[b] = acc;
			acc = acc + c;
		}

		// Scatter keys to their ranks (full scan on every rank keeps
		// the replicated sorted array consistent).
		for (var i int = 0; i < n; i = i + 1) {
			var k int = keys[i];
			if (k < 0 || k >= nb) {
				k = 0;
			}
			var pos int = counts[k];
			counts[k] = pos + 1;
			if (pos >= 0 && pos < n) {
				sorted[pos] = k;
			}
		}
	}

	if (rank == 0) {
		for (var i int = 0; i < n; i = i + 1) {
			out_i64(i, sorted[i]);
		}
	}
}
`

func isSpec(input int) *Spec {
	n := isSizes[input-1]
	src := subst(isSource, map[string]string{
		"N":     fmt.Sprint(n),
		"NB":    fmt.Sprint(isBuckets),
		"ITERS": fmt.Sprint(isIters),
	})
	return &Spec{
		Name:      "IS",
		Input:     input,
		InputDesc: fmt.Sprintf("%d keys, %d buckets, %d ranking iterations", n, isBuckets, isIters),
		Source:    src,
		Verify:    isVerify,
		Heap:      32 << 20,
	}
}

// isVerify is the benchmark's own check (Table 2): every key must be >=
// its predecessor; we additionally require the sorted array to be the
// same multiset the error-free run produced (NPB IS verifies key counts
// as part of full verification).
func isVerify(golden, faulty *interp.Result) bool {
	if len(golden.OutputI) != len(faulty.OutputI) {
		return false
	}
	var sumG, sumF int64
	for i, k := range faulty.OutputI {
		if i > 0 && faulty.OutputI[i-1] > k {
			return false
		}
		sumF += k
		sumG += golden.OutputI[i]
	}
	return sumF == sumG
}
