package workloads

import (
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
)

func TestGoldenRunsPassVerification(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := interp.Run(p, spec.BaseConfig(1))
			if res.Trap != interp.TrapNone {
				t.Fatalf("golden trap: %v (%s)", res.Trap, res.TrapMsg)
			}
			if !spec.Verify(res, res) {
				t.Fatalf("golden run fails its own verification: F=%v I(len)=%d",
					head(res.OutputF, 6), len(res.OutputI))
			}
			if res.TotalDyn < 50_000 {
				t.Fatalf("workload too small to be representative: %d dyn instrs", res.TotalDyn)
			}
			t.Logf("%s: %d dyn instrs, %d injectable", name, res.TotalDyn, res.Injectable[0])
		})
	}
}

func head(v []float64, n int) []float64 {
	if len(v) < n {
		return v
	}
	return v[:n]
}

func TestMultiRankMatchesSingleRank(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			r1 := interp.Run(p, spec.BaseConfig(1))
			r3 := interp.Run(p, spec.BaseConfig(3))
			if r3.Trap != interp.TrapNone {
				t.Fatalf("3-rank trap: %v (%s)", r3.Trap, r3.TrapMsg)
			}
			if len(r1.OutputF) != len(r3.OutputF) || len(r1.OutputI) != len(r3.OutputI) {
				t.Fatalf("output shapes differ: %d/%d vs %d/%d",
					len(r1.OutputF), len(r1.OutputI), len(r3.OutputF), len(r3.OutputI))
			}
			// Floating outputs may differ by reduction rounding; the
			// workload's own verifier is the right equivalence notion.
			if !spec.Verify(r1, r3) {
				t.Fatalf("3-rank run fails verification against 1-rank golden: %v vs %v",
					head(r1.OutputF, 6), head(r3.OutputF, 6))
			}
		})
	}
}

func TestInputLaddersGrow(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			prev := int64(0)
			for in := 1; in <= 2; in++ {
				spec := MustGet(name, in)
				m, err := spec.Compile()
				if err != nil {
					t.Fatal(err)
				}
				p, err := interp.Compile(m, nil)
				if err != nil {
					t.Fatal(err)
				}
				res := interp.Run(p, spec.BaseConfig(1))
				if res.Trap != interp.TrapNone {
					t.Fatalf("input %d trap: %v", in, res.Trap)
				}
				if res.TotalDyn <= prev {
					t.Fatalf("input %d not larger: %d <= %d", in, res.TotalDyn, prev)
				}
				prev = res.TotalDyn
			}
		})
	}
}

// TestCampaignOutcomeMix injects faults into two contrasting workloads
// and checks the phenomenology the paper reports: every outcome
// category is populated, SOC is a minority outcome, and masking exists.
func TestCampaignOutcomeMix(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign is slow")
	}
	for _, name := range []string{"HPCCG", "IS"} {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := fault.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			c := &fault.Campaign{Prog: p, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 7}
			res, err := c.Run(120)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: symptom=%d detected=%d masked=%d soc=%d", name,
				res.Counts[fault.OutcomeSymptom], res.Counts[fault.OutcomeDetected],
				res.Counts[fault.OutcomeMasked], res.Counts[fault.OutcomeSOC])
			if res.Counts[fault.OutcomeDetected] != 0 {
				t.Error("unprotected code cannot detect by duplication")
			}
			if res.Counts[fault.OutcomeMasked] == 0 {
				t.Error("no masking observed; fault model implausible")
			}
			if res.Counts[fault.OutcomeSymptom] == 0 {
				t.Error("no crash/hang symptoms observed; fault model implausible")
			}
			soc := res.Proportion(fault.OutcomeSOC)
			if soc <= 0 || soc > 0.5 {
				t.Errorf("SOC proportion %.2f outside plausible band (0, 0.5]", soc)
			}
		})
	}
}

// TestAllInputsCompile ensures every input level of every workload
// compiles and verifies statically (execution of the big inputs is
// covered by Figure 9's harness).
func TestAllInputsCompile(t *testing.T) {
	for _, name := range Names {
		for in := 1; in <= 4; in++ {
			spec := MustGet(name, in)
			m, err := spec.Compile()
			if err != nil {
				t.Fatalf("%s input %d: %v", name, in, err)
			}
			if m.NumSites() == 0 {
				t.Fatalf("%s input %d: no sites", name, in)
			}
			if spec.InputDesc == "" {
				t.Fatalf("%s input %d: missing description", name, in)
			}
		}
	}
}

// TestStaticSizeInputInvariant: changing only the input constants must
// not change the static shape of the code (Figure 9 depends on this:
// the classifier's site decisions transfer across inputs one-to-one).
func TestStaticSizeInputInvariant(t *testing.T) {
	for _, name := range Names {
		base := -1
		for in := 1; in <= 4; in++ {
			m, err := MustGet(name, in).Compile()
			if err != nil {
				t.Fatal(err)
			}
			if base < 0 {
				base = m.NumInstrs()
			} else if m.NumInstrs() != base {
				t.Fatalf("%s: input %d has %d instrs, input 1 has %d",
					name, in, m.NumInstrs(), base)
			}
		}
	}
}
