package workloads

import (
	"fmt"
	"math"

	"ipas/internal/interp"
)

// comdSteps is the number of velocity-Verlet timesteps.
const comdSteps = 6

// comdSides gives the cubic lattice side per input level (Table 5
// analogue: the training input is the smallest).
var comdSides = [4]int{4, 5, 6, 7}

// comdSource is a CoMD-like molecular dynamics mini-app: a cluster of
// Lennard-Jones atoms on a jittered cubic lattice integrated with
// velocity Verlet. Atoms are block-partitioned across MPI ranks; every
// rank holds replicated position arrays that are re-gathered after
// each position update, and energies are summed with allreduce.
//
// Outputs: [0] final total energy, [1] kinetic, [2] potential,
// [3..3+steps) total energy after each step.
const comdSource = sciMPILib + `
// cell_index clamps a coordinate into its link cell along one axis.
func cell_index(coord float, cellsize float, nc int) int {
	var c int = int(coord / cellsize);
	if (c < 0) {
		c = 0;
	}
	if (c >= nc) {
		c = nc - 1;
	}
	return c;
}

// build_cells files every atom into its link cell: head[c] is the first
// atom of cell c and next[i] chains the rest (CoMD's neighbor-search
// structure for short-range potentials).
func build_cells(n int, x *float, y *float, z *float,
                 head *int, next *int, nc int, cellsize float) {
	var ncells int = nc * nc * nc;
	for (var c int = 0; c < ncells; c = c + 1) {
		head[c] = -1;
	}
	for (var i int = 0; i < n; i = i + 1) {
		var cx int = cell_index(x[i], cellsize, nc);
		var cy int = cell_index(y[i], cellsize, nc);
		var cz int = cell_index(z[i], cellsize, nc);
		var c int = (cx * nc + cy) * nc + cz;
		next[i] = head[c];
		head[c] = i;
	}
}

// pair_force accumulates the Lennard-Jones interaction of atom i with
// every atom in cell c (skipping i itself) and returns the potential
// energy contribution (half per pair: both ends visit it).
func pair_force(i int, c int, x *float, y *float, z *float,
                fx *float, fy *float, fz *float,
                head *int, next *int, rc2 float) float {
	var pe float = 0.0;
	var j int = head[c];
	while (j >= 0) {
		if (j != i) {
			var dx float = x[i] - x[j];
			var dy float = y[i] - y[j];
			var dz float = z[i] - z[j];
			var r2 float = dx*dx + dy*dy + dz*dz;
			if (r2 < rc2) {
				var inv2 float = 1.0 / r2;
				var inv6 float = inv2 * inv2 * inv2;
				var fmag float = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
				fx[i] = fx[i] + fmag * dx;
				fy[i] = fy[i] + fmag * dy;
				fz[i] = fz[i] + fmag * dz;
				pe = pe + 2.0 * inv6 * (inv6 - 1.0);
			}
		}
		j = next[j];
	}
	return pe;
}

// forces accumulates Lennard-Jones forces on atoms [lo, hi) using the
// link cells and returns this rank's share of the potential energy.
func forces(n int, lo int, hi int, x *float, y *float, z *float,
            fx *float, fy *float, fz *float,
            head *int, next *int, nc int, cellsize float, rc2 float) float {
	var pe float = 0.0;
	for (var i int = lo; i < hi; i = i + 1) {
		fx[i] = 0.0;
		fy[i] = 0.0;
		fz[i] = 0.0;
	}
	build_cells(n, x, y, z, head, next, nc, cellsize);
	for (var i int = lo; i < hi; i = i + 1) {
		var cx int = cell_index(x[i], cellsize, nc);
		var cy int = cell_index(y[i], cellsize, nc);
		var cz int = cell_index(z[i], cellsize, nc);
		for (var ox int = cx - 1; ox <= cx + 1; ox = ox + 1) {
			if (ox >= 0 && ox < nc) {
				for (var oy int = cy - 1; oy <= cy + 1; oy = oy + 1) {
					if (oy >= 0 && oy < nc) {
						for (var oz int = cz - 1; oz <= cz + 1; oz = oz + 1) {
							if (oz >= 0 && oz < nc) {
								var c int = (ox * nc + oy) * nc + oz;
								pe = pe + pair_force(i, c, x, y, z, fx, fy, fz, head, next, rc2);
							}
						}
					}
				}
			}
		}
	}
	return pe;
}

// kinetic returns this rank's share of the kinetic energy.
func kinetic(lo int, hi int, vx *float, vy *float, vz *float) float {
	var ke float = 0.0;
	for (var i int = lo; i < hi; i = i + 1) {
		ke = ke + 0.5 * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i]);
	}
	return ke;
}

func main() {
	var side int = @SIDE@;
	var steps int = @STEPS@;
	var n int = side * side * side;
	var rank int = mpi_rank();
	var np int = mpi_size();

	var x *float = malloc_f64(n);
	var y *float = malloc_f64(n);
	var z *float = malloc_f64(n);
	var vx *float = malloc_f64(n);
	var vy *float = malloc_f64(n);
	var vz *float = malloc_f64(n);
	var fx *float = malloc_f64(n);
	var fy *float = malloc_f64(n);
	var fz *float = malloc_f64(n);

	// Jittered cubic lattice; every rank generates the identical
	// replicated initial state from the same seed.
	var seed *int = malloc_i64(1);
	seed[0] = 20160312;
	var a float = 1.12;   // lattice spacing near the LJ minimum
	var idx int = 0;
	for (var i int = 0; i < side; i = i + 1) {
		for (var j int = 0; j < side; j = j + 1) {
			for (var k int = 0; k < side; k = k + 1) {
				x[idx] = a * float(i) + 0.03 * (frand(seed) - 0.5);
				y[idx] = a * float(j) + 0.03 * (frand(seed) - 0.5);
				z[idx] = a * float(k) + 0.03 * (frand(seed) - 0.5);
				vx[idx] = 0.08 * (frand(seed) - 0.5);
				vy[idx] = 0.08 * (frand(seed) - 0.5);
				vz[idx] = 0.08 * (frand(seed) - 0.5);
				idx = idx + 1;
			}
		}
	}

	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);
	var dt float = 0.002;
	var rc float = 1.75;  // short-range cutoff (in sigma)
	var rc2 float = rc * rc;

	// Link-cell geometry: cells at least one cutoff wide.
	var box float = a * float(side);
	var nc int = int(box / rc);
	if (nc < 1) {
		nc = 1;
	}
	var cellsize float = box / float(nc) + 0.0001;
	var head *int = malloc_i64(nc * nc * nc);
	var next *int = malloc_i64(n);

	var pe float = forces(n, lo, hi, x, y, z, fx, fy, fz, head, next, nc, cellsize, rc2);
	pe = mpi_allreduce_f64(pe, 0);
	var ke float = mpi_allreduce_f64(kinetic(lo, hi, vx, vy, vz), 0);

	for (var s int = 0; s < steps; s = s + 1) {
		// Velocity Verlet: half kick, drift, force, half kick.
		for (var i int = lo; i < hi; i = i + 1) {
			vx[i] = vx[i] + 0.5 * dt * fx[i];
			vy[i] = vy[i] + 0.5 * dt * fy[i];
			vz[i] = vz[i] + 0.5 * dt * fz[i];
			x[i] = x[i] + dt * vx[i];
			y[i] = y[i] + dt * vy[i];
			z[i] = z[i] + dt * vz[i];
		}
		allgather_f64(x, n, rank, np, 10);
		allgather_f64(y, n, rank, np, 11);
		allgather_f64(z, n, rank, np, 12);
		pe = forces(n, lo, hi, x, y, z, fx, fy, fz, head, next, nc, cellsize, rc2);
		pe = mpi_allreduce_f64(pe, 0);
		for (var i int = lo; i < hi; i = i + 1) {
			vx[i] = vx[i] + 0.5 * dt * fx[i];
			vy[i] = vy[i] + 0.5 * dt * fy[i];
			vz[i] = vz[i] + 0.5 * dt * fz[i];
		}
		ke = mpi_allreduce_f64(kinetic(lo, hi, vx, vy, vz), 0);
		if (rank == 0) {
			out_f64(3 + s, ke + pe);
		}
	}
	if (rank == 0) {
		out_f64(0, ke + pe);
		out_f64(1, ke);
		out_f64(2, pe);
	}
}
`

func comdSpec(input int) *Spec {
	side := comdSides[input-1]
	src := subst(comdSource, map[string]string{
		"SIDE":  fmt.Sprint(side),
		"STEPS": fmt.Sprint(comdSteps),
	})
	return &Spec{
		Name:      "CoMD",
		Input:     input,
		InputDesc: fmt.Sprintf("natoms=%d (side %d), %d steps", side*side*side, side, comdSteps),
		Source:    src,
		Verify:    comdVerify,
		Heap:      8 << 20,
	}
}

// comdVerify is the paper's CoMD check (Table 2): total energy must be
// conserved — every per-step energy of the faulty run must lie within
// 3 standard deviations of the golden run's energy trajectory (with a
// tiny relative floor so a perfectly flat golden trajectory does not
// reject numerically identical runs).
func comdVerify(golden, faulty *interp.Result) bool {
	if !sameLenF(golden, faulty) {
		return false
	}
	n := comdSteps
	var mean float64
	for s := 0; s < n; s++ {
		mean += outF(golden, 3+s)
	}
	mean /= float64(n)
	var variance float64
	for s := 0; s < n; s++ {
		d := outF(golden, 3+s) - mean
		variance += d * d
	}
	sigma := math.Sqrt(variance / float64(n))
	// The relative floor stands in for the thermal energy fluctuations
	// a production-length MD trajectory would exhibit; our short
	// trajectories are integrator-quiet, which would make a bare 3-sigma
	// band reject physically irrelevant perturbations.
	tol := 3*sigma + math.Abs(mean)*1e-6 + 1e-12
	for s := 0; s < n; s++ {
		e := outF(faulty, 3+s)
		if !finite(e) || math.Abs(e-mean) > tol {
			return false
		}
	}
	return finite(outF(faulty, 0))
}
