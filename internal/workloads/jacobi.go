package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// jacobiSizes gives nx=ny=nz per input level.
var jacobiSizes = [4]int{6, 8, 10, 12}

const (
	jacobiMaxIter = 399
	jacobiRTol    = "0.00000001" // residual tolerance 1e-8
	jacobiErrTol  = 1e-5         // solution-error tolerance
	// jacobiIterSlack bounds how many extra iterations a faulty run may
	// take over the golden run and still verify: a corruption that only
	// delays convergence past this margin counts as a wrong answer
	// (slowed convergence is an SOC for iterative solvers — the result
	// is bit-different and the time-to-solution contract is broken).
	jacobiIterSlack = 20
)

// jacobiSource is the Jacobi solver mini-app: weighted point-Jacobi
// iteration on the same 7-point operator HPCCG solves (A = 7I -
// adjacency over an nx*ny*nz grid), with the right-hand side chosen so
// the exact solution is all ones. Unlike CG's short recurrences, every
// sweep rebuilds the iterate from the operator, so transient faults
// tend to be annealed away while persistent (sticky) faults re-corrupt
// every sweep — the contrast the error-model evaluation measures.
// Rows are block-partitioned; the iterate is re-gathered each sweep and
// the residual norm uses allreduce.
//
// Outputs: [0] max |x_i - 1| (solution error), [1] final residual,
// [2] iterations used, [3] converged flag.
const jacobiSource = sciMPILib + `
// sweep performs one Jacobi update x_new = (b + adjacency x) / 7 on
// rows [lo, hi) and returns this rank's partial squared residual of
// the INCOMING iterate, sum((b - A x)_r^2): since A x = 7 x -
// adjacency x, the row residual is b[r] + s - 7 x[r] with s the
// neighbour sum already in hand.
func sweep(nx int, ny int, nz int, lo int, hi int, b *float, x *float, xn *float) float {
	var nxy int = nx * ny;
	var res float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		var k int = r / nxy;
		var rem int = r % nxy;
		var j int = rem / nx;
		var i int = rem % nx;
		var s float = 0.0;
		if (i > 0)      { s = s + x[r - 1]; }
		if (i < nx - 1) { s = s + x[r + 1]; }
		if (j > 0)      { s = s + x[r - nx]; }
		if (j < ny - 1) { s = s + x[r + nx]; }
		if (k > 0)      { s = s + x[r - nxy]; }
		if (k < nz - 1) { s = s + x[r + nxy]; }
		xn[r] = (b[r] + s) / 7.0;
		var rr float = b[r] + s - 7.0 * x[r];
		res = res + rr * rr;
	}
	return res;
}

func main() {
	var nx int = @NX@;
	var ny int = @NX@;
	var nz int = @NX@;
	var n int = nx * ny * nz;
	var rank int = mpi_rank();
	var np int = mpi_size();
	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);

	var x *float = malloc_f64(n);
	var xn *float = malloc_f64(n);
	var b *float = malloc_f64(n);

	// b = A * ones, so the exact solution is all ones. Every rank
	// computes the replicated setup identically.
	var nxy int = nx * ny;
	for (var r int = 0; r < n; r = r + 1) {
		var k int = r / nxy;
		var rem int = r % nxy;
		var j int = rem / nx;
		var i int = rem % nx;
		var deg float = 0.0;
		if (i > 0)      { deg = deg + 1.0; }
		if (i < nx - 1) { deg = deg + 1.0; }
		if (j > 0)      { deg = deg + 1.0; }
		if (j < ny - 1) { deg = deg + 1.0; }
		if (k > 0)      { deg = deg + 1.0; }
		if (k < nz - 1) { deg = deg + 1.0; }
		b[r] = 7.0 - deg;
		x[r] = 0.0;
		xn[r] = 0.0;
	}

	// Reference residual ||b - A x0||^2 = ||b||^2 for the relative test.
	var r0 float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		r0 = r0 + b[r] * b[r];
	}
	r0 = mpi_allreduce_f64(r0, 0);
	var rtol float = @RTOL@;
	var tol2 float = rtol * rtol * r0;
	var maxit int = @MAXIT@;
	var iters int = 0;
	var converged int = 0;
	var res float = r0;

	for (var it int = 0; it < maxit; it = it + 1) {
		iters = it + 1;
		res = mpi_allreduce_f64(sweep(nx, ny, nz, lo, hi, b, x, xn), 0);
		// Swap iterates by copying: xn -> x on the owned block, then
		// re-gather so every rank sees the full new iterate.
		for (var r int = lo; r < hi; r = r + 1) {
			x[r] = xn[r];
		}
		allgather_f64(x, n, rank, np, 30);
		if (res < tol2) {
			converged = 1;
			break;
		}
	}

	// Solution error against the known exact solution.
	var err float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		err = fmax(err, fabs(x[r] - 1.0));
	}
	err = mpi_allreduce_f64(err, 2);
	if (rank == 0) {
		out_f64(0, err);
		out_f64(1, sqrt(res));
		out_f64(2, float(iters));
		out_f64(3, float(converged));
	}
}
`

func jacobiSpec(input int) *Spec {
	nx := jacobiSizes[input-1]
	src := subst(jacobiSource, map[string]string{
		"NX":    fmt.Sprint(nx),
		"RTOL":  jacobiRTol,
		"MAXIT": fmt.Sprint(jacobiMaxIter),
	})
	return &Spec{
		Name:      "Jacobi",
		Input:     input,
		InputDesc: fmt.Sprintf("nx=ny=nz=%d, max %d sweeps", nx, jacobiMaxIter),
		Source:    src,
		Verify:    jacobiVerify,
		Heap:      16 << 20,
	}
}

// jacobiVerify is the residual-based convergence check: the run must
// converge, the solution error against the known exact answer must be
// below tolerance, and — the clause that makes slowed convergence
// visible — it must not need more than jacobiIterSlack sweeps beyond
// the golden run. A fault that merely delays convergence past the
// slack, or tips the iteration into non-convergence, fails the check
// and (absent a detector) classifies as silent output corruption.
func jacobiVerify(golden, faulty *interp.Result) bool {
	if !sameLenF(golden, faulty) {
		return false
	}
	err := outF(faulty, 0)
	iters := outF(faulty, 2)
	converged := outF(faulty, 3)
	return finite(err) && err < jacobiErrTol && converged == 1 &&
		iters <= outF(golden, 2)+jacobiIterSlack
}
