package workloads

import (
	"math"
	"testing"

	"ipas/internal/interp"
)

// goldenOf runs a spec fault-free.
func goldenOf(t *testing.T, spec *Spec) *interp.Result {
	t.Helper()
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := interp.Run(p, spec.BaseConfig(1))
	if res.Trap != interp.TrapNone {
		t.Fatalf("golden trap: %v", res.Trap)
	}
	return res
}

// perturbF returns a copy of res with OutputF[idx] changed by delta.
func perturbF(res *interp.Result, idx int, delta float64) *interp.Result {
	out := *res
	out.OutputF = append([]float64(nil), res.OutputF...)
	out.OutputF[idx] += delta
	return &out
}

func TestCoMDVerifier(t *testing.T) {
	spec := MustGet("CoMD", 1)
	g := goldenOf(t, spec)
	if !spec.Verify(g, g) {
		t.Fatal("golden rejected")
	}
	// A large energy excursion at any step is SOC.
	bad := perturbF(g, 4, math.Abs(g.OutputF[4])*0.1)
	if spec.Verify(g, bad) {
		t.Fatal("10% energy jump accepted")
	}
	// NaN energy is SOC.
	nan := perturbF(g, 3, math.NaN())
	if spec.Verify(g, nan) {
		t.Fatal("NaN energy accepted")
	}
	// A tiny excursion within the tolerance band is masked.
	tiny := perturbF(g, 4, math.Abs(g.OutputF[4])*1e-9)
	if !spec.Verify(g, tiny) {
		t.Fatal("negligible energy wiggle rejected")
	}
	// Truncated output (crash-shaped) is not acceptable.
	short := *g
	short.OutputF = g.OutputF[:2]
	if spec.Verify(g, &short) {
		t.Fatal("truncated output accepted")
	}
}

func TestHPCCGVerifier(t *testing.T) {
	spec := MustGet("HPCCG", 1)
	g := goldenOf(t, spec)
	if !spec.Verify(g, g) {
		t.Fatal("golden rejected")
	}
	// Solution error above the 1e-6 tolerance is SOC.
	if spec.Verify(g, perturbF(g, 0, 1e-3)) {
		t.Fatal("large solution error accepted")
	}
	// Non-converged flag is SOC.
	notConv := perturbF(g, 3, 0)
	notConv.OutputF[3] = 0
	if spec.Verify(g, notConv) {
		t.Fatal("non-converged run accepted")
	}
	if spec.Verify(g, perturbF(g, 0, math.Inf(1))) {
		t.Fatal("infinite error accepted")
	}
}

func TestAMGVerifier(t *testing.T) {
	spec := MustGet("AMG", 1)
	g := goldenOf(t, spec)
	if !spec.Verify(g, g) {
		t.Fatal("golden rejected")
	}
	// Input-checksum mismatch (either end) is SOC.
	if spec.Verify(g, perturbF(g, 3, 1e-9)) {
		t.Fatal("start-checksum corruption accepted")
	}
	if spec.Verify(g, perturbF(g, 4, 1e-9)) {
		t.Fatal("end-checksum corruption accepted")
	}
	// Solver failure is SOC.
	fail := perturbF(g, 0, 0)
	fail.OutputF[0] = 0
	if spec.Verify(g, fail) {
		t.Fatal("non-converged solve accepted")
	}
}

func TestFFTVerifier(t *testing.T) {
	spec := MustGet("FFT", 1)
	g := goldenOf(t, spec)
	if !spec.Verify(g, g) {
		t.Fatal("golden rejected")
	}
	// One matrix entry off by more than the L2 tolerance is SOC.
	if spec.Verify(g, perturbF(g, 10, 1e-3)) {
		t.Fatal("corrupted matrix entry accepted")
	}
	// Below-tolerance perturbation is masked (paper: difference under
	// 1e-6 is a valid result).
	if !spec.Verify(g, perturbF(g, 10, 1e-9)) {
		t.Fatal("sub-tolerance perturbation rejected")
	}
}

func TestISVerifier(t *testing.T) {
	spec := MustGet("IS", 1)
	g := goldenOf(t, spec)
	if !spec.Verify(g, g) {
		t.Fatal("golden rejected")
	}
	// Out-of-order keys are SOC.
	unsorted := *g
	unsorted.OutputI = append([]int64(nil), g.OutputI...)
	unsorted.OutputI[100], unsorted.OutputI[101] = unsorted.OutputI[101]+5, unsorted.OutputI[100]
	if spec.Verify(g, &unsorted) {
		t.Fatal("unsorted keys accepted")
	}
	// Sorted but with a changed multiset (sum) is SOC; bump the last
	// key so sortedness is preserved.
	wrongSum := *g
	wrongSum.OutputI = append([]int64(nil), g.OutputI...)
	wrongSum.OutputI[len(wrongSum.OutputI)-1] += 3
	if spec.Verify(g, &wrongSum) {
		t.Fatal("multiset change accepted")
	}
	// Length change is SOC.
	short := *g
	short.OutputI = g.OutputI[:10]
	if spec.Verify(g, &short) {
		t.Fatal("truncated keys accepted")
	}
}
