package workloads

import (
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
)

// TestConvergenceGoldenRuns: every iterative-convergence mini-app must
// converge within its iteration budget on the training input, pass its
// own verification, and leave iteration headroom — a golden run that
// already sits at the iteration cap could never expose slowed
// convergence.
func TestConvergenceGoldenRuns(t *testing.T) {
	for _, name := range ConvergenceNames {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := interp.Run(p, spec.BaseConfig(1))
			if res.Trap != interp.TrapNone {
				t.Fatalf("golden trap: %v (%s)", res.Trap, res.TrapMsg)
			}
			if got := outF(res, 3); got != 1 {
				t.Fatalf("golden run did not converge (flag %v, residual %v after %v iters)",
					got, outF(res, 1), outF(res, 2))
			}
			if !spec.Verify(res, res) {
				t.Fatalf("golden run fails its own verification: %v", head(res.OutputF, 4))
			}
			var maxIter, slack float64
			switch name {
			case "Jacobi":
				maxIter, slack = jacobiMaxIter, jacobiIterSlack
			case "GradDesc":
				maxIter, slack = graddescMaxIter, graddescIterSlack
			}
			if iters := outF(res, 2); iters+slack >= maxIter {
				t.Fatalf("golden run used %v of %v iterations: no headroom to observe slowed convergence", iters, maxIter)
			}
			t.Logf("%s: converged in %v iters, residual %v, %d dyn instrs",
				name, outF(res, 2), outF(res, 1), res.TotalDyn)
		})
	}
}

// TestConvergenceVerifierClassifiesTrajectories pins the verifier
// semantics that make these workloads interesting for error models:
// slowed convergence (past the slack), non-convergence, and a wrong
// answer must all fail verification — each is an SOC when undetected —
// while convergence a few iterations late stays acceptable.
func TestConvergenceVerifierClassifiesTrajectories(t *testing.T) {
	for _, name := range ConvergenceNames {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			golden := interp.Run(p, spec.BaseConfig(1))
			if golden.Trap != interp.TrapNone {
				t.Fatalf("golden trap: %v", golden.Trap)
			}
			mutate := func(f func(out []float64)) *interp.Result {
				faulty := *golden
				faulty.OutputF = append([]float64(nil), golden.OutputF...)
				f(faulty.OutputF)
				return &faulty
			}

			if !spec.Verify(golden, mutate(func(out []float64) { out[2] += 3 })) {
				t.Error("a few extra iterations inside the slack must still verify")
			}
			if spec.Verify(golden, mutate(func(out []float64) { out[2] += 1000 })) {
				t.Error("slowed convergence past the slack must fail verification")
			}
			if spec.Verify(golden, mutate(func(out []float64) { out[3] = 0 })) {
				t.Error("a non-converged run must fail verification")
			}
			if spec.Verify(golden, mutate(func(out []float64) { out[0] = 1 })) {
				t.Error("a wrong answer must fail verification")
			}
		})
	}
}

// TestConvergenceMultiRankMatchesSingleRank: the convergence apps are
// SPMD like the five evaluation codes; a multi-rank run must pass the
// verifier against the single-rank golden.
func TestConvergenceMultiRankMatchesSingleRank(t *testing.T) {
	for _, name := range ConvergenceNames {
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			r1 := interp.Run(p, spec.BaseConfig(1))
			r3 := interp.Run(p, spec.BaseConfig(3))
			if r3.Trap != interp.TrapNone {
				t.Fatalf("3-rank trap: %v (%s)", r3.Trap, r3.TrapMsg)
			}
			if !spec.Verify(r1, r3) {
				t.Fatalf("3-rank run fails verification against 1-rank golden: %v vs %v",
					head(r1.OutputF, 4), head(r3.OutputF, 4))
			}
		})
	}
}

// TestConvergenceStickyShiftsOutcomes is the error-model evaluation's
// core claim in miniature: on an iterative solver, persistent (sticky)
// faults must produce strictly more SOC than transient single-bit
// faults — the solver's contraction anneals a transient upset but
// cannot outrun one that re-corrupts every sweep.
func TestConvergenceStickyShiftsOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaigns are slow")
	}
	spec := MustGet("Jacobi", 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := fault.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	run := func(model fault.ErrorModel) *fault.CampaignResult {
		c := &fault.Campaign{Prog: p, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 7, Model: model}
		res, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	transient := run(nil)
	sticky := run(fault.Sticky)
	t.Logf("single-bit: soc=%d masked=%d; sticky: soc=%d masked=%d",
		transient.Counts[fault.OutcomeSOC], transient.Counts[fault.OutcomeMasked],
		sticky.Counts[fault.OutcomeSOC], sticky.Counts[fault.OutcomeMasked])
	if sticky.Counts[fault.OutcomeSOC] <= transient.Counts[fault.OutcomeSOC] {
		t.Errorf("sticky faults produced %d SOC vs single-bit's %d; persistence should defeat iterative annealing",
			sticky.Counts[fault.OutcomeSOC], transient.Counts[fault.OutcomeSOC])
	}
}
