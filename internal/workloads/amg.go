package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// amgSizes gives the finest-level interior grid size (2^k - 1) per
// input level; the hierarchy always has 4 levels (paper §5.2).
var amgSizes = [4]int{31, 63, 127, 255}

const (
	amgLevels    = 4
	amgMaxCycles = 12
	amgTol       = "0.000001" // 1e-6, the paper's solver tolerance
)

// amgSource is a geometric multigrid solver for the 2D Poisson problem
// (5-point stencil, homogeneous Dirichlet boundary): weighted-Jacobi
// smoothing, full-weighting restriction, bilinear prolongation, and a
// smoother-solved coarsest level, iterated as V-cycles until the
// residual drops below tol * ||f||. Rows are block-partitioned per
// level across MPI ranks with replicated arrays.
//
// Outputs: [0] converged flag, [1] relative residual norm, [2] cycles,
// [3] right-hand-side checksum at start, [4] the same checksum at end
// (the paper's input-corruption check).
const amgSource = sciMPILib + `
// gridval reads u[i,j] treating out-of-range indices as the zero
// Dirichlet boundary.
func gridval(u *float, n int, i int, j int) float {
	if (i < 0 || i >= n || j < 0 || j >= n) {
		return 0.0;
	}
	return u[i * n + j];
}

// smooth performs weighted-Jacobi sweeps on the n x n interior grid.
func smooth(u *float, f *float, tmp *float, n int, h2 float, sweeps int,
            rank int, np int) {
	var w float = 0.8;
	for (var s int = 0; s < sweeps; s = s + 1) {
		var ilo int = block_lo(n, rank, np);
		var ihi int = block_lo(n, rank + 1, np);
		for (var i int = ilo; i < ihi; i = i + 1) {
			for (var j int = 0; j < n; j = j + 1) {
				var nb float = gridval(u, n, i-1, j) + gridval(u, n, i+1, j)
				             + gridval(u, n, i, j-1) + gridval(u, n, i, j+1);
				var r int = i * n + j;
				tmp[r] = u[r] + (w / 4.0) * (h2 * f[r] - 4.0 * u[r] + nb);
			}
		}
		for (var i int = ilo; i < ihi; i = i + 1) {
			for (var j int = 0; j < n; j = j + 1) {
				u[i * n + j] = tmp[i * n + j];
			}
		}
		allgather_rows(u, n, n, rank, np, 30);
	}
}

// residual computes res = f - A u and returns this rank's partial
// squared norm.
func residual(u *float, f *float, res *float, n int, h2 float,
              rank int, np int) float {
	var ilo int = block_lo(n, rank, np);
	var ihi int = block_lo(n, rank + 1, np);
	var sum float = 0.0;
	for (var i int = ilo; i < ihi; i = i + 1) {
		for (var j int = 0; j < n; j = j + 1) {
			var nb float = gridval(u, n, i-1, j) + gridval(u, n, i+1, j)
			             + gridval(u, n, i, j-1) + gridval(u, n, i, j+1);
			var r int = i * n + j;
			var rv float = f[r] - (4.0 * u[r] - nb) / h2;
			res[r] = rv;
			sum = sum + rv * rv;
		}
	}
	return sum;
}

// restrict_fw full-weighting-restricts the fine residual (nf x nf) to
// the coarse right-hand side (nc x nc), nc = (nf - 1) / 2.
func restrict_fw(fine *float, coarse *float, nf int, nc int, rank int, np int) {
	var ilo int = block_lo(nc, rank, np);
	var ihi int = block_lo(nc, rank + 1, np);
	for (var ci int = ilo; ci < ihi; ci = ci + 1) {
		for (var cj int = 0; cj < nc; cj = cj + 1) {
			var fi int = 2 * ci + 1;
			var fj int = 2 * cj + 1;
			var center float = gridval(fine, nf, fi, fj);
			var edges float = gridval(fine, nf, fi-1, fj) + gridval(fine, nf, fi+1, fj)
			                + gridval(fine, nf, fi, fj-1) + gridval(fine, nf, fi, fj+1);
			var corners float = gridval(fine, nf, fi-1, fj-1) + gridval(fine, nf, fi-1, fj+1)
			                  + gridval(fine, nf, fi+1, fj-1) + gridval(fine, nf, fi+1, fj+1);
			coarse[ci * nc + cj] = (4.0 * center + 2.0 * edges + corners) / 16.0;
		}
	}
	allgather_rows(coarse, nc, nc, rank, np, 31);
}

// prolong_add bilinearly interpolates the coarse correction and adds it
// to the fine solution.
func prolong_add(coarse *float, fine *float, nc int, nf int, rank int, np int) {
	var ilo int = block_lo(nf, rank, np);
	var ihi int = block_lo(nf, rank + 1, np);
	for (var fi int = ilo; fi < ihi; fi = fi + 1) {
		for (var fj int = 0; fj < nf; fj = fj + 1) {
			// Coarse coordinates around the fine point: fine (fi, fj)
			// lies between coarse (ci, cj) and (ci+1, cj+1) where the
			// coarse grid sits at fine odd coordinates.
			var corr float = 0.0;
			if (fi % 2 == 1 && fj % 2 == 1) {
				corr = gridval(coarse, nc, (fi-1)/2, (fj-1)/2);
			}
			if (fi % 2 == 0 && fj % 2 == 1) {
				corr = 0.5 * (gridval(coarse, nc, fi/2 - 1, (fj-1)/2)
				            + gridval(coarse, nc, fi/2, (fj-1)/2));
			}
			if (fi % 2 == 1 && fj % 2 == 0) {
				corr = 0.5 * (gridval(coarse, nc, (fi-1)/2, fj/2 - 1)
				            + gridval(coarse, nc, (fi-1)/2, fj/2));
			}
			if (fi % 2 == 0 && fj % 2 == 0) {
				corr = 0.25 * (gridval(coarse, nc, fi/2 - 1, fj/2 - 1)
				             + gridval(coarse, nc, fi/2 - 1, fj/2)
				             + gridval(coarse, nc, fi/2, fj/2 - 1)
				             + gridval(coarse, nc, fi/2, fj/2));
			}
			var r int = fi * nf + fj;
			fine[r] = fine[r] + corr;
		}
	}
	allgather_rows(fine, nf, nf, rank, np, 32);
}

// vcycle runs one V-cycle from level l downwards. U, F, RES and TMP are
// the per-level grids packed into flat buffers at offsets off[l]; sizes
// and squared mesh widths are in ns[] and h2s[].
func vcycle(l int, nlev int, U *float, F *float, RES *float, TMP *float,
            off *int, ns *int, h2s *float, rank int, np int) {
	var n int = ns[l];
	var u *float = offset(U, off[l]);
	var f *float = offset(F, off[l]);
	var res *float = offset(RES, off[l]);
	var tmp *float = offset(TMP, off[l]);
	if (l == nlev - 1) {
		// Coarsest level: smooth hard instead of a direct solve.
		smooth(u, f, tmp, n, h2s[l], 40, rank, np);
		return;
	}
	smooth(u, f, tmp, n, h2s[l], 2, rank, np);
	residual(u, f, res, n, h2s[l], rank, np);
	allgather_rows(res, n, n, rank, np, 33);
	var nc int = ns[l + 1];
	restrict_fw(res, offset(F, off[l + 1]), n, nc, rank, np);
	// Zero the coarse initial guess.
	var uc *float = offset(U, off[l + 1]);
	for (var i int = 0; i < nc * nc; i = i + 1) {
		uc[i] = 0.0;
	}
	vcycle(l + 1, nlev, U, F, RES, TMP, off, ns, h2s, rank, np);
	prolong_add(uc, u, nc, n, rank, np);
	smooth(u, f, tmp, n, h2s[l], 2, rank, np);
}

func main() {
	var n0 int = @N@;
	var nlev int = @LEVELS@;
	var rank int = mpi_rank();
	var np int = mpi_size();

	// Level geometry and packed offsets.
	var ns *int = malloc_i64(nlev);
	var off *int = malloc_i64(nlev + 1);
	var h2s *float = malloc_f64(nlev);
	var total int = 0;
	var n int = n0;
	for (var l int = 0; l < nlev; l = l + 1) {
		ns[l] = n;
		off[l] = total;
		total = total + n * n;
		var h float = 1.0 / float(n + 1);
		h2s[l] = h * h;
		n = (n - 1) / 2;
	}
	off[nlev] = total;

	var U *float = malloc_f64(total);
	var F *float = malloc_f64(total);
	var RES *float = malloc_f64(total);
	var TMP *float = malloc_f64(total);

	// Finest right-hand side: a smooth forcing term; replicated
	// identically on every rank.
	var pi float = 3.141592653589793;
	var checksum float = 0.0;
	for (var i int = 0; i < n0; i = i + 1) {
		for (var j int = 0; j < n0; j = j + 1) {
			var xx float = float(i + 1) / float(n0 + 1);
			var yy float = float(j + 1) / float(n0 + 1);
			var v float = 2.0 * pi * pi * sin(pi * xx) * sin(pi * yy);
			F[i * n0 + j] = v;
			U[i * n0 + j] = 0.0;
			checksum = checksum + v * float(1 + (i * 31 + j) % 7);
		}
	}
	if (rank == 0) {
		out_f64(3, checksum);
	}

	// ||f||^2 for the relative tolerance.
	var f2 float = 0.0;
	for (var i int = 0; i < n0 * n0; i = i + 1) {
		f2 = f2 + F[i] * F[i];
	}

	var tol float = @TOL@;
	var maxcycles int = @MAXCYC@;
	var cycles int = 0;
	var converged int = 0;
	var relres float = 1.0;
	for (var c int = 0; c < maxcycles; c = c + 1) {
		cycles = c + 1;
		vcycle(0, nlev, U, F, RES, TMP, off, ns, h2s, rank, np);
		var r2 float = residual(U, F, RES, n0, h2s[0], rank, np);
		r2 = mpi_allreduce_f64(r2, 0);
		relres = sqrt(r2 / f2);
		if (relres < tol) {
			converged = 1;
			break;
		}
	}

	// Re-checksum the right-hand side: it must be untouched.
	var checksum2 float = 0.0;
	for (var i int = 0; i < n0; i = i + 1) {
		for (var j int = 0; j < n0; j = j + 1) {
			checksum2 = checksum2 + F[i * n0 + j] * float(1 + (i * 31 + j) % 7);
		}
	}
	if (rank == 0) {
		out_f64(0, float(converged));
		out_f64(1, relres);
		out_f64(2, float(cycles));
		out_f64(4, checksum2);
	}
}
`

func amgSpec(input int) *Spec {
	n := amgSizes[input-1]
	src := subst(amgSource, map[string]string{
		"N":      fmt.Sprint(n),
		"LEVELS": fmt.Sprint(amgLevels),
		"TOL":    amgTol,
		"MAXCYC": fmt.Sprint(amgMaxCycles),
	})
	return &Spec{
		Name:      "AMG",
		Input:     input,
		InputDesc: fmt.Sprintf("%dx%d fine grid, %d-level hierarchy", n, n, amgLevels),
		Source:    src,
		Verify:    amgVerify,
		Heap:      32 << 20,
	}
}

// amgVerify is the paper's AMG check (Table 2): the inputs must be
// uncorrupted (checksum comparison against the error-free run) and the
// solver must reach the tolerance within the allotted cycles.
func amgVerify(golden, faulty *interp.Result) bool {
	if !sameLenF(golden, faulty) {
		return false
	}
	if outF(faulty, 0) != 1 || !finite(outF(faulty, 1)) {
		return false
	}
	return outF(faulty, 3) == outF(golden, 3) && outF(faulty, 4) == outF(golden, 4)
}
