package workloads

import (
	"testing"

	"ipas/internal/fault"
)

// TestCalibrationOutcomeMixes records the full outcome mix of every
// workload under the paper's fault model; the assertions encode the
// paper's §6.2 ordering: iterative codes (CoMD, HPCCG, AMG) mask more
// and suffer less SOC than the hard kernels (FFT, IS).
func TestCalibrationOutcomeMixes(t *testing.T) {
	if testing.Short() {
		t.Skip("five full campaigns")
	}
	socByName := map[string]float64{}
	for _, name := range Names {
		spec := MustGet(name, 1)
		m, _ := spec.Compile()
		p, err := fault.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		c := &fault.Campaign{Prog: p, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 7}
		res, err := c.Run(150)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-6s symptom=%.1f%% masked=%.1f%% soc=%.1f%%", name,
			100*res.Proportion(fault.OutcomeSymptom),
			100*res.Proportion(fault.OutcomeMasked),
			100*res.Proportion(fault.OutcomeSOC))
		socByName[name] = res.Proportion(fault.OutcomeSOC)
	}
	for _, iterative := range []string{"CoMD", "HPCCG", "AMG"} {
		for _, hard := range []string{"FFT", "IS"} {
			if socByName[iterative] >= socByName[hard] {
				t.Errorf("SOC ordering violated: %s (%.1f%%) >= %s (%.1f%%)",
					iterative, 100*socByName[iterative], hard, 100*socByName[hard])
			}
		}
	}
}
