package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// fftSizes gives the square matrix side (a power of two) per input.
var fftSizes = [4]int{16, 32, 64, 128}

const (
	fftIters = 2
	fftTol   = 1e-6 // L2 tolerance of Table 2
)

// fftSource computes the 2D discrete Fourier transform and its inverse
// of an n x n complex matrix inside an iteration loop (the paper's FFT
// kernel). The transform is an iterative radix-2 Cooley-Tukey with
// strided access for the column phase. Rows and columns are
// block-partitioned across ranks, re-gathering the replicated matrix
// after each phase.
//
// Outputs: [0] in-program L2 distance to the original input,
// [1..1+n*n] real parts, then n*n imaginary parts of the final matrix.
const fftSource = sciMPILib + `
// fft1d transforms the length-n complex sequence at (base, stride) in
// place; dir is +1.0 for forward, -1.0 for inverse (unscaled).
func fft1d(re *float, im *float, base int, stride int, n int, logn int, dir float) {
	// Bit-reversal permutation.
	for (var i int = 0; i < n; i = i + 1) {
		var rev int = 0;
		var t int = i;
		for (var b int = 0; b < logn; b = b + 1) {
			rev = (rev << 1) | (t & 1);
			t = t >> 1;
		}
		if (i < rev) {
			var pi int = base + i * stride;
			var pj int = base + rev * stride;
			var tr float = re[pi]; re[pi] = re[pj]; re[pj] = tr;
			var ti float = im[pi]; im[pi] = im[pj]; im[pj] = ti;
		}
	}
	// Butterflies.
	var pi2 float = 6.283185307179586;
	for (var len int = 2; len <= n; len = len * 2) {
		var ang float = dir * pi2 / float(len);
		var wr float = cos(ang);
		var wi float = sin(ang);
		for (var i int = 0; i < n; i = i + len) {
			var cr float = 1.0;
			var ci float = 0.0;
			for (var j int = 0; j < len / 2; j = j + 1) {
				var pa int = base + (i + j) * stride;
				var pb int = base + (i + j + len / 2) * stride;
				var xr float = re[pb] * cr - im[pb] * ci;
				var xi float = re[pb] * ci + im[pb] * cr;
				re[pb] = re[pa] - xr;
				im[pb] = im[pa] - xi;
				re[pa] = re[pa] + xr;
				im[pa] = im[pa] + xi;
				var ncr float = cr * wr - ci * wi;
				ci = cr * wi + ci * wr;
				cr = ncr;
			}
		}
	}
}

// fft2d transforms all rows then all columns; dir as in fft1d.
func fft2d(re *float, im *float, n int, logn int, dir float,
           rank int, np int) {
	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);
	for (var r int = lo; r < hi; r = r + 1) {
		fft1d(re, im, r * n, 1, n, logn, dir);
	}
	allgather_rows(re, n, n, rank, np, 40);
	allgather_rows(im, n, n, rank, np, 41);
	for (var c int = lo; c < hi; c = c + 1) {
		fft1d(re, im, c, n, n, logn, dir);
	}
	// Columns interleave rank blocks element-wise; gather the full
	// matrix by exchanging column blocks row by row would be costly,
	// so each rank broadcasts its column block packed per row.
	if (np > 1) {
		for (var owner int = 0; owner < np; owner = owner + 1) {
			var clo int = block_lo(n, owner, np);
			var cnt int = block_lo(n, owner + 1, np) - clo;
			if (cnt > 0) {
				for (var r int = 0; r < n; r = r + 1) {
					if (rank == owner) {
						for (var q int = 0; q < np; q = q + 1) {
							if (q != rank) {
								mpi_send_f64s(q, 42, offset(re, r * n + clo), cnt);
								mpi_send_f64s(q, 43, offset(im, r * n + clo), cnt);
							}
						}
					} else {
						mpi_recv_f64s(owner, 42, offset(re, r * n + clo), cnt);
						mpi_recv_f64s(owner, 43, offset(im, r * n + clo), cnt);
					}
				}
			}
		}
	}
}

func main() {
	var n int = @N@;
	var logn int = @LOGN@;
	var iters int = @ITERS@;
	var rank int = mpi_rank();
	var np int = mpi_size();
	var nn int = n * n;

	var re *float = malloc_f64(nn);
	var im *float = malloc_f64(nn);
	var re0 *float = malloc_f64(nn);
	var im0 *float = malloc_f64(nn);

	// Deterministic pseudo-random input, replicated on every rank.
	var seed *int = malloc_i64(1);
	seed[0] = 971;
	for (var i int = 0; i < nn; i = i + 1) {
		re[i] = frand(seed) - 0.5;
		im[i] = frand(seed) - 0.5;
		re0[i] = re[i];
		im0[i] = im[i];
	}

	var scale float = 1.0 / float(nn);
	for (var it int = 0; it < iters; it = it + 1) {
		fft2d(re, im, n, logn, 1.0, rank, np);
		fft2d(re, im, n, logn, -1.0, rank, np);
		for (var i int = 0; i < nn; i = i + 1) {
			re[i] = re[i] * scale;
			im[i] = im[i] * scale;
		}
	}

	// L2 distance to the original input (forward+inverse is identity).
	var lo int = block_lo(nn, rank, np);
	var hi int = block_lo(nn, rank + 1, np);
	var d2 float = 0.0;
	for (var i int = lo; i < hi; i = i + 1) {
		var dr float = re[i] - re0[i];
		var di float = im[i] - im0[i];
		d2 = d2 + dr * dr + di * di;
	}
	d2 = mpi_allreduce_f64(d2, 0);
	if (rank == 0) {
		out_f64(0, sqrt(d2));
		for (var i int = 0; i < nn; i = i + 1) {
			out_f64(1 + i, re[i]);
			out_f64(1 + nn + i, im[i]);
		}
	}
}
`

func fftSpec(input int) *Spec {
	n := fftSizes[input-1]
	logn := 0
	for 1<<logn < n {
		logn++
	}
	src := subst(fftSource, map[string]string{
		"N":     fmt.Sprint(n),
		"LOGN":  fmt.Sprint(logn),
		"ITERS": fmt.Sprint(fftIters),
	})
	nn := n * n
	return &Spec{
		Name:      "FFT",
		Input:     input,
		InputDesc: fmt.Sprintf("%dx%d matrix, %d fwd+inv iterations", n, n, fftIters),
		Source:    src,
		Verify:    fftVerifier(nn),
		Heap:      32 << 20,
	}
}

// fftVerifier builds the paper's FFT check (Table 2): the L2 norm of
// the difference between the faulty run's output matrix and the
// error-free run's output matrix must stay below 1e-6.
func fftVerifier(nn int) func(golden, faulty *interp.Result) bool {
	return func(golden, faulty *interp.Result) bool {
		if !sameLenF(golden, faulty) {
			return false
		}
		d := l2Diff(golden, faulty, 1, 2*nn)
		return finite(d) && d < fftTol
	}
}
