package workloads

import (
	"fmt"

	"ipas/internal/interp"
)

// hpccgSizes gives nx=ny=nz per input level.
var hpccgSizes = [4]int{12, 16, 20, 24}

const (
	hpccgMaxIter = 149
	hpccgRTol    = "0.0000000001" // residual tolerance 1e-10
	hpccgErrTol  = 1e-6           // solution-error tolerance (Table 2)
)

// hpccgSource is the HPCCG mini-app: conjugate gradient on the 7-point
// Laplacian-like operator A = 7I - adjacency over an nx*ny*nz grid,
// with the right-hand side chosen so the exact solution is all ones.
// Rows are block-partitioned; the search direction is re-gathered each
// iteration and dot products use allreduce.
//
// Outputs: [0] max |x_i - 1| (solution error), [1] final residual,
// [2] iterations used, [3] converged flag.
const hpccgSource = sciMPILib + `
// spmv computes w = A v on rows [lo, hi) of the 7-point operator.
func spmv(nx int, ny int, nz int, lo int, hi int, v *float, w *float) {
	var nxy int = nx * ny;
	for (var r int = lo; r < hi; r = r + 1) {
		var k int = r / nxy;
		var rem int = r % nxy;
		var j int = rem / nx;
		var i int = rem % nx;
		var s float = 7.0 * v[r];
		if (i > 0)      { s = s - v[r - 1]; }
		if (i < nx - 1) { s = s - v[r + 1]; }
		if (j > 0)      { s = s - v[r - nx]; }
		if (j < ny - 1) { s = s - v[r + nx]; }
		if (k > 0)      { s = s - v[r - nxy]; }
		if (k < nz - 1) { s = s - v[r + nxy]; }
		w[r] = s;
	}
}

// dot computes this rank's partial dot product over [lo, hi).
func dot(lo int, hi int, a *float, b *float) float {
	var s float = 0.0;
	for (var r int = lo; r < hi; r = r + 1) {
		s = s + a[r] * b[r];
	}
	return s;
}

func main() {
	var nx int = @NX@;
	var ny int = @NX@;
	var nz int = @NX@;
	var n int = nx * ny * nz;
	var rank int = mpi_rank();
	var np int = mpi_size();
	var lo int = block_lo(n, rank, np);
	var hi int = block_lo(n, rank + 1, np);

	var x *float = malloc_f64(n);
	var b *float = malloc_f64(n);
	var r *float = malloc_f64(n);
	var p *float = malloc_f64(n);
	var ap *float = malloc_f64(n);

	// b = A * ones, so the exact solution is all ones. Every rank
	// computes the replicated setup identically.
	var ones *float = malloc_f64(n);
	for (var i int = 0; i < n; i = i + 1) {
		ones[i] = 1.0;
		x[i] = 0.0;
	}
	spmv(nx, ny, nz, 0, n, ones, b);

	// r = b - A x0 = b; p = r.
	for (var i int = 0; i < n; i = i + 1) {
		r[i] = b[i];
		p[i] = b[i];
	}
	var rr float = mpi_allreduce_f64(dot(lo, hi, r, r), 0);
	var rtol float = @RTOL@;
	var tol2 float = rtol * rtol * rr;
	var maxit int = @MAXIT@;
	var iters int = 0;
	var converged int = 0;

	for (var it int = 0; it < maxit; it = it + 1) {
		iters = it + 1;
		spmv(nx, ny, nz, lo, hi, p, ap);
		var pap float = mpi_allreduce_f64(dot(lo, hi, p, ap), 0);
		var alpha float = rr / pap;
		for (var i int = lo; i < hi; i = i + 1) {
			x[i] = x[i] + alpha * p[i];
			r[i] = r[i] - alpha * ap[i];
		}
		// Periodically replace the recurrence residual with the true
		// residual b - A x; production CG codes do this to bound the
		// drift between the recurrence and the real error.
		if (it % 8 == 7) {
			allgather_f64(x, n, rank, np, 21);
			spmv(nx, ny, nz, lo, hi, x, ap);
			for (var i int = lo; i < hi; i = i + 1) {
				r[i] = b[i] - ap[i];
			}
		}
		var rrNew float = mpi_allreduce_f64(dot(lo, hi, r, r), 0);
		if (rrNew < tol2) {
			converged = 1;
			rr = rrNew;
			break;
		}
		var beta float = rrNew / rr;
		rr = rrNew;
		for (var i int = lo; i < hi; i = i + 1) {
			p[i] = r[i] + beta * p[i];
		}
		allgather_f64(p, n, rank, np, 20);
	}

	// Solution error against the known exact solution.
	var err float = 0.0;
	for (var i int = lo; i < hi; i = i + 1) {
		err = fmax(err, fabs(x[i] - 1.0));
	}
	err = mpi_allreduce_f64(err, 2);
	if (rank == 0) {
		out_f64(0, err);
		out_f64(1, sqrt(rr));
		out_f64(2, float(iters));
		out_f64(3, float(converged));
	}
}
`

func hpccgSpec(input int) *Spec {
	nx := hpccgSizes[input-1]
	src := subst(hpccgSource, map[string]string{
		"NX":    fmt.Sprint(nx),
		"RTOL":  hpccgRTol,
		"MAXIT": fmt.Sprint(hpccgMaxIter),
	})
	return &Spec{
		Name:      "HPCCG",
		Input:     input,
		InputDesc: fmt.Sprintf("nx=ny=nz=%d, max %d iterations", nx, hpccgMaxIter),
		Source:    src,
		Verify:    hpccgVerify,
		Heap:      16 << 20,
	}
}

// hpccgVerify is the paper's HPCCG check (Table 2): the difference
// between the known exact and the computed solution must be below the
// tolerance within the iteration limit.
func hpccgVerify(golden, faulty *interp.Result) bool {
	if !sameLenF(golden, faulty) {
		return false
	}
	err := outF(faulty, 0)
	converged := outF(faulty, 3)
	return finite(err) && err < hpccgErrTol && converged == 1
}
