package slicer

import (
	"testing"

	"ipas/internal/ir"
)

const liveSrc = `
func @main() i64 {
entry:
  %base = add i64 100, 0
  %n = add i64 8, 0
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i1, %loop]
  %acc = phi i64 [%base, %entry], [%acc1, %loop]
  %sq = mul i64 %i, %i
  %acc1 = add i64 %acc, %sq
  %i1 = add i64 %i, 1
  %c = icmp lt i64 %i1, %n
  condbr %c, %loop, %exit
exit:
  %r = add i64 %acc1, 0
  ret i64 %r
}
`

func names(vs []ir.Value) map[string]bool {
	m := map[string]bool{}
	for _, v := range vs {
		m[valueName(v)] = true
	}
	return m
}

func findInstr(fn *ir.Func, name string) *ir.Instr {
	for _, b := range fn.Blocks() {
		for _, in := range b.Instrs() {
			if in.Name() == name {
				return in
			}
		}
	}
	return nil
}

func TestLivenessLoopCarried(t *testing.T) {
	fn := ir.MustParse(liveSrc).FuncByName("main")
	l := NewLiveness(fn)

	// Loop-carried values are live at the loop head; the phis
	// themselves are defined there, so they appear in the body's
	// running set, not in live-in.
	in := names(l.LiveIn(fn.BlockByName("loop")))
	if !in["n"] {
		t.Errorf("n (loop bound) must be live into loop, got %v", in)
	}
	if in["sq"] || in["r"] {
		t.Errorf("body-local/downstream values must not be live into loop, got %v", in)
	}

	// Phi operands ride the edge: %acc1 and %i1 are live OUT of the
	// loop block (they feed the back-edge phis and the exit).
	out := names(l.LiveOut(fn.BlockByName("loop")))
	for _, want := range []string{"acc1", "i1", "n"} {
		if !out[want] {
			t.Errorf("%s must be live out of loop, got %v", want, out)
		}
	}

	// After the loop only %acc1 matters.
	exitIn := names(l.LiveIn(fn.BlockByName("exit")))
	if !exitIn["acc1"] {
		t.Errorf("acc1 must be live into exit, got %v", exitIn)
	}
	if exitIn["i1"] || exitIn["sq"] {
		t.Errorf("dead values live into exit: %v", exitIn)
	}
}

func TestLiveAtInstr(t *testing.T) {
	fn := ir.MustParse(liveSrc).FuncByName("main")

	// Immediately before %acc1 = add %acc, %sq: both operands live.
	at := names(LiveAt(fn, findInstr(fn, "acc1")))
	for _, want := range []string{"acc", "sq", "i", "n"} {
		if !at[want] {
			t.Errorf("%s must be live before acc1, got %v", want, at)
		}
	}
	// %sq dies at its single use: not live before %i1.
	at = names(LiveAt(fn, findInstr(fn, "i1")))
	if at["sq"] {
		t.Errorf("sq must be dead before i1, got %v", at)
	}
	if !at["acc1"] {
		t.Errorf("acc1 must be live before i1 (used by back-edge phi and exit), got %v", at)
	}
}

func TestLivenessDeterministicOrder(t *testing.T) {
	fn := ir.MustParse(liveSrc).FuncByName("main")
	a := NewLiveness(fn).LiveIn(fn.BlockByName("loop"))
	b := NewLiveness(fn).LiveIn(fn.BlockByName("loop"))
	if len(a) != len(b) {
		t.Fatalf("live-in sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("live-in order not deterministic at %d", i)
		}
		if i > 0 && valueName(a[i-1]) >= valueName(a[i]) {
			t.Fatalf("live-in not sorted by name: %s >= %s", valueName(a[i-1]), valueName(a[i]))
		}
	}
}
