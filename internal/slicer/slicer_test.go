package slicer

import (
	"testing"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

// buildSliceModule gives a function with known data flow:
//
//	%a = add        (flows into %b, %c and the store)
//	%b = mul %a
//	%c = gep .. %a ; store %b -> %c ; %d = load %c ; %e = fadd %d
//	%z = add 5, 6  (independent)
func buildSliceModule(t *testing.T) (*ir.Module, map[string]*ir.Instr) {
	t.Helper()
	src := `
func @main() void {
entry:
  %buf = alloca i64, 8
  %a = add i64 1, 2
  %b = mul i64 %a, 3
  %c = gep i64* %buf, %a
  store i64 %b, %c
  %d = load i64* %c
  %e = add i64 %d, 1
  %z = add i64 5, 6
  ret void
}
`
	m := ir.MustParse(src)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ir.Instr{}
	for _, b := range m.FuncByName("main").Blocks() {
		for _, in := range b.Instrs() {
			if in.HasResult() {
				byName[in.Name()] = in
			} else if in.Op() == ir.OpStore {
				byName["store"] = in
			}
		}
	}
	return m, byName
}

func TestForwardSliceDataFlow(t *testing.T) {
	m, ins := buildSliceModule(t)
	c := NewComputer(m)

	s := c.Forward(ins["a"])
	for _, name := range []string{"a", "b", "c", "store", "d", "e"} {
		if !s.Instrs[ins[name]] {
			t.Errorf("forward slice of %%a misses %%%s", name)
		}
	}
	if s.Instrs[ins["z"]] {
		t.Error("independent %z must not be in the slice of %a")
	}

	// %z influences nothing.
	sz := c.Forward(ins["z"])
	if len(sz.Instrs) != 1 {
		t.Errorf("slice of %%z has %d members, want 1 (itself)", len(sz.Instrs))
	}
}

func TestForwardSliceThroughMemory(t *testing.T) {
	m, ins := buildSliceModule(t)
	c := NewComputer(m)
	// %b only reaches %d via the store/load through %buf.
	s := c.Forward(ins["b"])
	if !s.Instrs[ins["d"]] || !s.Instrs[ins["e"]] {
		t.Error("memory flow store->load not followed")
	}
	if s.Instrs[ins["a"]] {
		t.Error("forward slice must not include the producer of an operand")
	}
}

func TestSliceCounts(t *testing.T) {
	m, ins := buildSliceModule(t)
	c := NewComputer(m)
	counts := c.Forward(ins["a"]).Counts()
	if counts.Total != 6 {
		t.Errorf("total = %d, want 6", counts.Total)
	}
	if counts.Loads != 1 || counts.Stores != 1 || counts.GEPs != 1 {
		t.Errorf("loads/stores/geps = %d/%d/%d, want 1/1/1", counts.Loads, counts.Stores, counts.GEPs)
	}
	if counts.Binary != 3 { // a, b, e
		t.Errorf("binary = %d, want 3", counts.Binary)
	}
	if counts.Calls != 0 || counts.Allocas != 0 {
		t.Errorf("calls/allocas = %d/%d, want 0/0", counts.Calls, counts.Allocas)
	}
}

// TestSliceMonotoneOnRandomPrograms: a slice always contains its root,
// and the slice of any member is a subset of the root's slice
// (transitivity of influence).
func TestSliceMonotoneOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		m, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		c := NewComputer(m)
		for _, f := range m.Funcs() {
			for _, b := range f.Blocks() {
				for i, in := range b.Instrs() {
					if i%7 != 0 { // sample to keep the test quick
						continue
					}
					s := c.Forward(in)
					if !s.Instrs[in] {
						t.Fatalf("seed %d: slice misses its root", seed)
					}
					// Pick one member and check subset-ness.
					for member := range s.Instrs {
						sm := c.Forward(member)
						for x := range sm.Instrs {
							if !s.Instrs[x] {
								t.Fatalf("seed %d: slice not transitively closed", seed)
							}
						}
						break
					}
				}
			}
		}
	}
}

func TestInterproceduralSlice(t *testing.T) {
	src := `
func @double(i64 %v) i64 {
entry:
  %d = mul i64 %v, 2
  ret i64 %d
}
func @main() void {
entry:
  %a = add i64 1, 2
  %r = call i64 @double(i64 %a)
  %z = add i64 %r, 1
  ret void
}
`
	m := ir.MustParse(src)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ir.Instr{}
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.HasResult() {
					byName[in.Name()] = in
				}
			}
		}
	}

	intra := NewComputer(m).Forward(byName["a"])
	if intra.Instrs[byName["d"]] {
		t.Error("intraprocedural slice crossed into the callee")
	}
	if !intra.Instrs[byName["r"]] || !intra.Instrs[byName["z"]] {
		t.Error("intraprocedural slice misses call result flow")
	}

	inter := NewComputerOpts(m, Options{Interprocedural: true}).Forward(byName["a"])
	// %a -> arg of @double -> %d (param user) -> ret -> %r -> %z.
	for _, name := range []string{"d", "r", "z"} {
		if !inter.Instrs[byName[name]] {
			t.Errorf("interprocedural slice misses %%%s", name)
		}
	}
	// And it must be a superset of the intraprocedural slice.
	for in := range intra.Instrs {
		if !inter.Instrs[in] {
			t.Error("interprocedural slice not a superset")
		}
	}
}

// TestInterproceduralSupersetOnRandomPrograms: the interprocedural
// slice of any instruction contains the intraprocedural one.
func TestInterproceduralSupersetOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		m, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		ci := NewComputer(m)
		cx := NewComputerOpts(m, Options{Interprocedural: true})
		for _, f := range m.Funcs() {
			for _, b := range f.Blocks() {
				for i, in := range b.Instrs() {
					if i%11 != 0 {
						continue
					}
					intra := ci.Forward(in)
					inter := cx.Forward(in)
					for x := range intra.Instrs {
						if !inter.Instrs[x] {
							t.Fatalf("seed %d: interprocedural slice lost a member", seed)
						}
					}
				}
			}
		}
	}
}
