// Package slicer computes forward program slices over the IPAS IR.
// A forward slice of instruction x is the set of instructions that x
// influences (Weiser's slicing, used by the paper to characterize error
// propagation — features 25–31 of Table 1). The slice follows def-use
// chains and, for memory, a base-object analysis: when a tainted value
// is stored through a pointer, every load whose pointer shares the
// store's base object joins the slice.
package slicer

import "ipas/internal/ir"

// Slice is the forward slice of one instruction.
type Slice struct {
	// Root is the instruction the slice starts from; Root itself is a
	// member of the slice.
	Root *ir.Instr
	// Instrs is the slice membership set.
	Instrs map[*ir.Instr]bool
}

// Counts summarizes a slice for the feature extractor.
type Counts struct {
	Total   int // feature 25
	Loads   int // feature 26
	Stores  int // feature 27
	Calls   int // feature 28
	Binary  int // feature 29
	Allocas int // feature 30
	GEPs    int // feature 31
}

// Counts computes the slice's opcode histogram.
func (s *Slice) Counts() Counts {
	var c Counts
	for in := range s.Instrs {
		c.Total++
		switch {
		case in.Op() == ir.OpLoad:
			c.Loads++
		case in.Op() == ir.OpStore:
			c.Stores++
		case in.Op() == ir.OpCall:
			c.Calls++
		case in.Op().IsBinary():
			c.Binary++
		case in.Op() == ir.OpAlloca:
			c.Allocas++
		case in.Op() == ir.OpGEP:
			c.GEPs++
		}
	}
	return c
}

// Options configures slice computation.
type Options struct {
	// Interprocedural follows influence across call boundaries the way
	// Weiser's algorithm does: a tainted call argument taints the
	// callee parameter's users, and a tainted value reaching a return
	// taints the call's result in every caller. The paper's feature
	// extractor uses intraprocedural slices by default (the measured
	// numbers are calibrated to that); the interprocedural mode exists
	// for the fidelity ablation.
	Interprocedural bool
}

// Computer caches per-function analysis so slicing every instruction of
// a module stays cheap.
type Computer struct {
	opts Options
	// baseOf maps every pointer-typed value to its base object
	// (alloca, malloc-like call, or parameter), or nil when unknown.
	baseOf map[ir.Value]ir.Value
	// loadsByBase indexes loads per function by their pointer base.
	loadsByBase map[*ir.Func]map[ir.Value][]*ir.Instr
	// paramUsers indexes, per function, the instructions that use each
	// parameter (for interprocedural propagation into callees).
	paramUsers map[*ir.Param][]*ir.Instr
	// callsOf lists the call sites of each function (for propagation
	// back to callers through returns).
	callsOf map[*ir.Func][]*ir.Instr
	// returnsOf lists the return instructions of each function.
	returnsOf map[*ir.Func][]*ir.Instr
}

// NewComputer prepares intraprocedural slicing for a module.
func NewComputer(m *ir.Module) *Computer {
	return NewComputerOpts(m, Options{})
}

// NewComputerOpts prepares slicing with explicit options.
func NewComputerOpts(m *ir.Module, opts Options) *Computer {
	c := &Computer{
		opts:        opts,
		baseOf:      map[ir.Value]ir.Value{},
		loadsByBase: map[*ir.Func]map[ir.Value][]*ir.Instr{},
		paramUsers:  map[*ir.Param][]*ir.Instr{},
		callsOf:     map[*ir.Func][]*ir.Instr{},
		returnsOf:   map[*ir.Func][]*ir.Instr{},
	}
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		idx := map[ir.Value][]*ir.Instr{}
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op() == ir.OpLoad {
					base := c.base(in.Operand(0))
					idx[base] = append(idx[base], in)
				}
				if opts.Interprocedural {
					switch in.Op() {
					case ir.OpCall:
						c.callsOf[in.Callee] = append(c.callsOf[in.Callee], in)
					case ir.OpRet:
						c.returnsOf[f] = append(c.returnsOf[f], in)
					}
					for _, op := range in.Operands() {
						if p, ok := op.(*ir.Param); ok {
							c.paramUsers[p] = append(c.paramUsers[p], in)
						}
					}
				}
			}
		}
		c.loadsByBase[f] = idx
	}
	return c
}

// base resolves the allocation a pointer value points into, following
// GEPs, casts and PHI/select chains (taking the first incoming; ties
// only widen the slice, never shrink correctness-relevant membership,
// because unknown bases collapse into the shared nil bucket).
func (c *Computer) base(v ir.Value) ir.Value {
	if b, ok := c.baseOf[v]; ok {
		return b
	}
	c.baseOf[v] = nil // cycle guard
	var out ir.Value
	switch x := v.(type) {
	case *ir.Param:
		out = x
	case *ir.Instr:
		switch x.Op() {
		case ir.OpAlloca, ir.OpCall, ir.OpLoad:
			out = x
		case ir.OpGEP, ir.OpIntToPtr, ir.OpPtrToInt:
			out = c.base(x.Operand(0))
		case ir.OpPhi, ir.OpSelect:
			start := 0
			if x.Op() == ir.OpSelect {
				start = 1
			}
			for i := start; i < x.NumOperands(); i++ {
				if b := c.base(x.Operand(i)); b != nil {
					out = b
					break
				}
			}
		}
	}
	c.baseOf[v] = out
	return out
}

// Forward computes the forward slice of root. With the default options
// the slice stays within root's function; with Options.Interprocedural
// it crosses call boundaries through arguments and returns.
func (c *Computer) Forward(root *ir.Instr) *Slice {
	s := &Slice{Root: root, Instrs: map[*ir.Instr]bool{}}
	work := []*ir.Instr{root}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if s.Instrs[in] {
			continue
		}
		s.Instrs[in] = true
		fn := in.Block().Func()
		// Data flow: direct users.
		for _, u := range in.Users() {
			if !s.Instrs[u] {
				work = append(work, u)
			}
			if !c.opts.Interprocedural {
				continue
			}
			// Into callees: a tainted argument taints the users of the
			// corresponding parameter.
			if u.Op() == ir.OpCall && u.Callee != nil && !u.Callee.Builtin {
				params := u.Callee.Params()
				for i := 0; i < u.NumOperands() && i < len(params); i++ {
					if u.Operand(i) != in {
						continue
					}
					for _, pu := range c.paramUsers[params[i]] {
						if !s.Instrs[pu] {
							work = append(work, pu)
						}
					}
				}
			}
			// Back to callers: a tainted return value taints every
			// call site's result.
			if u.Op() == ir.OpRet {
				for _, cs := range c.callsOf[fn] {
					if !s.Instrs[cs] {
						work = append(work, cs)
					}
				}
			}
		}
		// Memory flow: a tainted store taints loads sharing its base.
		if in.Op() == ir.OpStore {
			base := c.base(in.Operand(1))
			for _, ld := range c.loadsByBase[fn][base] {
				if !s.Instrs[ld] {
					work = append(work, ld)
				}
			}
			if base != nil {
				// Unknown-base loads may alias anything.
				for _, ld := range c.loadsByBase[fn][nil] {
					if !s.Instrs[ld] {
						work = append(work, ld)
					}
				}
			}
		}
	}
	return s
}
