package slicer

import (
	"sort"

	"ipas/internal/ir"
)

// Liveness is the backward SSA live-variable analysis of one function:
// which values (instruction results and parameters) may still be read
// on some path from a program point. Sectioned campaigns use it to
// bound what interp must capture at section boundaries, and the feature
// extractor shares the same definition of "live" — one analysis, two
// consumers.
//
// Phi semantics follow SSA convention: a phi's i-th operand is used at
// the end of its i-th predecessor (it rides the edge), and the phi's
// own result is defined at the head of its block.
type Liveness struct {
	fn      *ir.Func
	liveIn  map[*ir.Block]map[ir.Value]bool
	liveOut map[*ir.Block]map[ir.Value]bool
}

// NewLiveness computes liveness for fn with the standard iterative
// backward dataflow over the CFG.
func NewLiveness(fn *ir.Func) *Liveness {
	l := &Liveness{
		fn:      fn,
		liveIn:  map[*ir.Block]map[ir.Value]bool{},
		liveOut: map[*ir.Block]map[ir.Value]bool{},
	}
	blocks := fn.Blocks()
	for _, b := range blocks {
		l.liveIn[b] = map[ir.Value]bool{}
		l.liveOut[b] = map[ir.Value]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			out := l.computeLiveOut(b)
			in := l.computeLiveIn(b, out)
			if grewInto(l.liveOut[b], out) {
				l.liveOut[b] = out
				changed = true
			}
			if grewInto(l.liveIn[b], in) {
				l.liveIn[b] = in
				changed = true
			}
		}
	}
	return l
}

// computeLiveOut unions each successor's live-in (minus its phi
// definitions, which are born at the successor's head) with the phi
// operands that ride the b->succ edge.
func (l *Liveness) computeLiveOut(b *ir.Block) map[ir.Value]bool {
	out := map[ir.Value]bool{}
	for _, s := range b.Succs() {
		phiDefs := map[ir.Value]bool{}
		for _, phi := range s.Phis() {
			phiDefs[phi] = true
			for i, pred := range phi.Incoming {
				if pred == b {
					if v := phi.Operand(i); trackable(v) {
						out[v] = true
					}
				}
			}
		}
		for v := range l.liveIn[s] {
			if !phiDefs[v] {
				out[v] = true
			}
		}
	}
	return out
}

// computeLiveIn walks b backward from out: kill definitions, gen
// non-phi uses (phi uses live on predecessor edges, handled above).
func (l *Liveness) computeLiveIn(b *ir.Block, out map[ir.Value]bool) map[ir.Value]bool {
	in := map[ir.Value]bool{}
	for v := range out {
		in[v] = true
	}
	instrs := b.Instrs()
	for i := len(instrs) - 1; i >= 0; i-- {
		step(in, instrs[i])
	}
	return in
}

// step updates the running live set across one instruction, backward.
func step(live map[ir.Value]bool, in *ir.Instr) {
	if in.HasResult() {
		delete(live, in)
	}
	if in.Op() == ir.OpPhi {
		return // operands are uses on predecessor edges, not here
	}
	for _, op := range in.Operands() {
		if trackable(op) {
			live[op] = true
		}
	}
}

// grewInto reports whether the recomputed set grew past the recorded
// one. The transfer functions are monotone (sets only ever gain
// members across iterations), so a size comparison is exact.
func grewInto(old, now map[ir.Value]bool) bool { return len(now) > len(old) }

// trackable reports whether v is an SSA value liveness tracks
// (constants are always available and never captured).
func trackable(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}

// LiveIn returns the values live at the head of b, sorted by name for
// deterministic consumption (snapshot layouts, fingerprints).
func (l *Liveness) LiveIn(b *ir.Block) []ir.Value { return sortedValues(l.liveIn[b]) }

// LiveOut returns the values live at the end of b (including phi
// operands riding b's outgoing edges), sorted by name.
func (l *Liveness) LiveOut(b *ir.Block) []ir.Value { return sortedValues(l.liveOut[b]) }

// LiveAtInstr returns the values live immediately before instr
// executes, sorted by name.
func (l *Liveness) LiveAtInstr(instr *ir.Instr) []ir.Value {
	b := instr.Block()
	live := map[ir.Value]bool{}
	for v := range l.liveOut[b] {
		live[v] = true
	}
	instrs := b.Instrs()
	for i := len(instrs) - 1; i >= 0; i-- {
		step(live, instrs[i])
		if instrs[i] == instr {
			return sortedValues(live)
		}
	}
	return nil
}

// LiveAt is the one-shot convenience API: the values live immediately
// before instr in fn. Callers querying many points should build a
// Liveness once and use LiveAtInstr.
func LiveAt(fn *ir.Func, instr *ir.Instr) []ir.Value {
	return NewLiveness(fn).LiveAtInstr(instr)
}

// sortedValues renders a live set deterministically: parameters and
// instruction results sorted by their SSA names.
func sortedValues(set map[ir.Value]bool) []ir.Value {
	out := make([]ir.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return valueName(out[i]) < valueName(out[j]) })
	return out
}

func valueName(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Instr:
		return x.Name()
	case *ir.Param:
		return x.Name()
	}
	return v.Ref()
}
