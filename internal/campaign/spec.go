// Package campaign turns the sharded fault-injection engine into a
// service: a coordinator (cmd/campaignd) accepts campaign specs over
// HTTP/JSON, partitions the trial space with the deterministic
// shard.Range, and hands shards to remote workers (cmd/ipas-worker)
// under time-bounded leases. Workers stream finished trials back as
// journal segments; the coordinator acknowledges a segment only after
// it is durable on disk, so a SIGKILLed or partitioned worker is
// replaced without losing an acked trial, and the completed campaign's
// merged journal is byte-identical to a local single-loop run.
//
// Shard lifecycle (queued → running → backoff → queued ... →
// done/failed) is the shared shard.StateMachine the in-process
// scheduler also drives; this package adds leases, heartbeats, and
// durable acks on top. All requeue, backoff, and quarantine decisions
// are deterministic given the order of events — no report content ever
// depends on the wall clock.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/lang"
	"ipas/internal/workloads"
)

// Spec describes one campaign as submitted to the coordinator. It must
// be self-contained: both the coordinator and every worker rebuild the
// identical campaign from it (program, verifier, configuration, plan
// sequence), which is what makes remote trials bit-identical to local
// ones. A spec names either a built-in workload (Workload + Input) or
// an inline sci program (Source + a named Verifier).
type Spec struct {
	// Name, when set, pins the campaign ID (and its journal directory)
	// to a stable, human-chosen key; otherwise the ID is a content
	// hash of the spec, so identical resubmissions converge on the
	// same campaign and different campaigns can never collide.
	Name string `json:"name,omitempty"`

	// Workload / Input select a built-in evaluation workload
	// (workloads.Get): its module, verification routine, and base
	// configuration.
	Workload string `json:"workload,omitempty"`
	Input    int    `json:"input,omitempty"`

	// Source is an inline sci program, the alternative to Workload;
	// Verifier names its output check ("exact": every output must
	// equal the golden run's bit for bit).
	Source   string `json:"source,omitempty"`
	Verifier string `json:"verifier,omitempty"`

	// Trials and Seed pin the plan sequence (trial t's fault plan is a
	// pure function of (Seed, t)).
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`

	// Model names the error model plans are drawn with (fault.ParseModel
	// wire names: "single-bit", "burst-N", "random-N", "correlated",
	// "sticky"). Empty selects single-bit and keeps the spec JSON — and
	// therefore content-hashed campaign IDs — identical to pre-model
	// submissions. The model is part of the campaign fingerprint
	// (fault.JournalMeta.Model), so coordinator and workers refuse to
	// mix trials drawn under different models (ErrCampaignMismatch).
	Model string `json:"model,omitempty"`

	// Shards partitions the trial space (default 1, capped at Trials).
	Shards int `json:"shards,omitempty"`

	// Ranks / HangFactor / MaxRetries mirror the fault.Campaign fields
	// (zero values select the same defaults).
	Ranks      int   `json:"ranks,omitempty"`
	HangFactor int64 `json:"hang_factor,omitempty"`
	MaxRetries int   `json:"max_retries,omitempty"`

	// Watchdog bounds each blocked MPI op's wall-clock time on workers
	// (interp.Config.Watchdog; 0 = the interpreter's 60s default).
	Watchdog time.Duration `json:"watchdog_ns,omitempty"`

	// Sections runs the campaign sectioned: the trial space stratifies
	// over IR sections and the per-section allocation derives the
	// trial count, so Trials may be left 0 — the coordinator fills it
	// at admission (fault.Prepared.SectionTotal) before computing
	// shard ranges, and every worker re-derives the same allocation
	// from the spec. Single-rank programs only.
	Sections bool `json:"sections,omitempty"`
	// Coverage is the sectioned coverage factor — expected injections
	// per exercised site per section (0 = 1). Only meaningful with
	// Sections.
	Coverage int `json:"coverage,omitempty"`
	// MaxPerSection caps any one section's trial budget (0 = engine
	// default). Only meaningful with Sections.
	MaxPerSection int `json:"max_per_section,omitempty"`
}

// Normalize fills derivable defaults in place (shard count bounds).
func (s *Spec) Normalize() {
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Trials > 0 && s.Shards > s.Trials {
		s.Shards = s.Trials
	}
	if s.Workload != "" && s.Input == 0 {
		s.Input = 1
	}
	if s.Sections && s.Coverage <= 0 {
		s.Coverage = 1
	}
}

// Validate rejects specs the coordinator could not execute.
func (s *Spec) Validate() error {
	if s.Sections {
		// The allocation supplies the trial count; a submitted count
		// would either be redundant or wrong.
		if s.Trials != 0 {
			return fmt.Errorf("campaign: sectioned spec must leave trials 0 (the allocation derives it; got %d)", s.Trials)
		}
		if max(s.Ranks, 1) > 1 {
			return fmt.Errorf("campaign: sectioned campaigns are single-rank (got ranks=%d)", s.Ranks)
		}
	} else if s.Trials <= 0 {
		return fmt.Errorf("campaign: spec needs trials > 0 (got %d)", s.Trials)
	}
	if _, err := fault.ParseModel(s.Model); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	switch {
	case s.Workload != "" && s.Source != "":
		return fmt.Errorf("campaign: spec sets both workload %q and an inline source; pick one", s.Workload)
	case s.Workload != "":
		if _, err := workloads.Get(s.Workload, max(s.Input, 1)); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	case s.Source != "":
		if _, err := lookupVerifier(s.Verifier); err != nil {
			return err
		}
	default:
		return fmt.Errorf("campaign: spec names neither a workload nor an inline source")
	}
	return nil
}

// ID returns the campaign's stable identifier: the sanitized Name when
// set, otherwise a content hash of the normalized spec.
func (s *Spec) ID() string {
	if s.Name != "" {
		return sanitizeID(s.Name)
	}
	data, _ := json.Marshal(s)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Build compiles the spec into an executable campaign. Coordinator and
// workers both call it; because compilation, SiteID assignment, and
// plan drawing are deterministic, every party agrees on the campaign's
// fingerprint (fault.Prepared.Meta) or refuses to proceed.
func (s *Spec) Build() (*fault.Campaign, error) {
	var (
		verify fault.Verifier
		cfg    interp.Config
		src    string
	)
	switch {
	case s.Workload != "":
		ws, err := workloads.Get(s.Workload, s.Input)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		verify = ws.Verify
		cfg = ws.BaseConfig(max(s.Ranks, 1))
		src = ws.Source
	case s.Source != "":
		v, err := lookupVerifier(s.Verifier)
		if err != nil {
			return nil, err
		}
		verify = v
		cfg = interp.Config{Ranks: max(s.Ranks, 1)}
		src = s.Source
	default:
		return nil, fmt.Errorf("campaign: spec names neither a workload nor an inline source")
	}
	m, err := lang.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("campaign: compiling spec program: %w", err)
	}
	prog, err := fault.Compile(m)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	model, err := fault.ParseModel(s.Model)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	cfg.Watchdog = s.Watchdog
	return &fault.Campaign{
		Prog:          prog,
		Verify:        verify,
		Config:        cfg,
		Seed:          s.Seed,
		Model:         model,
		HangFactor:    s.HangFactor,
		MaxRetries:    s.MaxRetries,
		Sections:      s.Sections,
		Coverage:      s.Coverage,
		MaxPerSection: s.MaxPerSection,
	}, nil
}

// lookupVerifier resolves a named output check for inline programs.
// Verifiers must be named, not serialized: both sides of the protocol
// need the identical routine.
func lookupVerifier(name string) (fault.Verifier, error) {
	switch name {
	case "", "exact":
		return exactVerifier, nil
	}
	return nil, fmt.Errorf("campaign: unknown verifier %q (inline sources support: exact)", name)
}

// exactVerifier accepts a faulty run only when every output equals the
// golden run's bit for bit — the strictest check, and the right
// default for custom programs whose tolerance nobody has stated.
func exactVerifier(golden, faulty *interp.Result) bool {
	if len(faulty.OutputF) != len(golden.OutputF) || len(faulty.OutputI) != len(golden.OutputI) {
		return false
	}
	for i := range golden.OutputF {
		if faulty.OutputF[i] != golden.OutputF[i] {
			return false
		}
	}
	for i := range golden.OutputI {
		if faulty.OutputI[i] != golden.OutputI[i] {
			return false
		}
	}
	return true
}

// sanitizeID maps a user-chosen campaign name onto a safe directory /
// URL path segment.
func sanitizeID(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	if sb.Len() == 0 {
		return "campaign"
	}
	return sb.String()
}
