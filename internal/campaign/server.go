package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ipas/internal/fault"
	"ipas/internal/fault/shard"
	"ipas/internal/interp"
)

// Options configures a coordinator.
type Options struct {
	// Dir is the root journal directory; each campaign owns Dir/<id>/
	// with the same per-shard layout the in-process sharded engine uses
	// (shard-0000.jsonl, ..., merged.jsonl on completion), so a
	// coordinator restart — or a plain local `-shards` run pointed at
	// the campaign's directory — resumes from the same files.
	Dir string
	// LeaseTTL bounds how long a worker may hold a shard without
	// heartbeating (default 15s). An expired lease requeues the shard.
	LeaseTTL time.Duration
	// Backoff is the base quarantine delay after a failed or expired
	// lease: requeue k waits Backoff << (k-1), clamped to an hour so an
	// arbitrarily large retry budget cannot overflow the shift
	// (default 1s).
	Backoff time.Duration
	// Retries bounds shard quarantine retries, following the
	// fault.MaxRetries convention (0 = fault.DefaultMaxRetries,
	// fault.NoRetries = none). After the budget is exhausted the
	// shard's unexecuted trials are recorded as TrialFailed and its
	// siblings continue.
	Retries int
	// FsyncEvery is the per-shard journal durability interval between
	// acks (fault.Journal.SetFsyncEvery). Independent of it, the
	// coordinator always fsyncs before acknowledging a segment: an
	// acked trial is on stable storage.
	FsyncEvery int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// lease is one worker's time-bounded claim on one shard.
type lease struct {
	id      string
	st      *state
	shard   int
	worker  string
	expires time.Time
}

// state is one admitted campaign.
type state struct {
	id    string
	spec  Spec
	n, k  int
	dir   string
	meta  fault.JournalMeta // campaign-wide (merged-journal) header
	plans []interp.FaultPlan
	res   *fault.CampaignResult
	sm    *shard.StateMachine

	journals     []*fault.Journal
	jmu          []sync.Mutex // per-shard journal I/O; see Server's locking notes
	failedShard  []bool       // guarded by jmu[sh]: shard terminally failed, journal retired
	backoffUntil []time.Time
	leaseOf      []*lease

	restored  int   // trials recovered from durable journals on admit
	recovered []int // shards whose corrupt journal was deleted on admit
	hadPrior  bool  // any durable trial or merged journal existed
	complete  bool
	finalErr  error // merged-journal write failure, surfaced in Progress
}

// Server is the campaign coordinator: it admits specs, restores their
// durable journals, and dispatches shards to workers under leases. One
// mutex (mu) serializes campaign and lease state, but the hot path's
// journal appends and fsyncs run outside it under a per-shard journal
// lock (state.jmu), so one slow fsync never holds up heartbeats or
// sibling shards' segments. The durable-ack contract survives the
// split because it is ordered, not locked: a segment is journaled and
// fsynced first, and only then — back under mu, with the lease
// re-validated — settled in memory and acknowledged.
//
// Lock order: mu before jmu, never the reverse. The only paths that
// hold both are rare and cold (terminal shard failure, journal close
// on completion); phase-2 segment I/O holds jmu alone.
type Server struct {
	opts    Options
	ttl     time.Duration
	backoff time.Duration
	retries int
	mux     *http.ServeMux
	now     func() time.Time // test hook; never influences report content

	mu        sync.Mutex
	campaigns map[string]*state
	ids       []string // sorted campaign IDs: deterministic grant order
	leases    map[string]*lease
	leaseSeq  int
	closed    bool

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// New returns a coordinator rooted at opts.Dir and starts its lease
// sweeper. Close releases both.
func New(opts Options) (*Server, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("campaign: coordinator needs a journal directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating journal root: %w", err)
	}
	s := &Server{
		opts:      opts,
		ttl:       opts.LeaseTTL,
		backoff:   opts.Backoff,
		retries:   opts.Retries,
		now:       time.Now,
		campaigns: map[string]*state{},
		leases:    map[string]*lease{},
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if s.ttl <= 0 {
		s.ttl = 15 * time.Second
	}
	if s.backoff <= 0 {
		s.backoff = time.Second
	}
	switch {
	case s.retries < 0:
		s.retries = 0
	case s.retries == 0:
		s.retries = fault.DefaultMaxRetries
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleProgress)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/journal", s.handleJournal)
	s.mux.HandleFunc("POST /api/v1/leases", s.handleAcquire)
	s.mux.HandleFunc("POST /api/v1/leases/{lease}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /api/v1/leases/{lease}/records", s.handleRecords)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	go s.sweeper()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the lease sweeper and closes every open journal. In-
// flight campaigns stay durable on disk: a new coordinator on the same
// directory (or a local sharded run on Dir/<id>) resumes them.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, st := range s.campaigns {
		closeJournals(st)
	}
	s.mu.Unlock()
	close(s.stopSweep)
	<-s.sweepDone
	return nil
}

// sweeper expires leases whose holders stopped heartbeating. Handlers
// also expire lazily, so the sweeper only bounds how long a fully idle
// coordinator sits on a dead lease.
func (s *Server) sweeper() {
	defer close(s.sweepDone)
	ivl := max(s.ttl/4, 10*time.Millisecond)
	t := time.NewTicker(ivl)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				s.expireLeasesLocked(s.now())
			}
			s.mu.Unlock()
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ---- admission ----

// handleSubmit admits a campaign spec. The HTTP status classifies the
// admission: 201 fresh, 200 resumed from durable journals (torn tails
// truncated silently), 202 resumed with corrupt shard journals deleted
// and those shards requeued, 409 when the campaign directory belongs to
// a different campaign, 423 when another process holds a journal lock.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := spec.ID()

	// Build and golden-run outside the lock: Prepare is the expensive
	// step and needs no coordinator state. A concurrent duplicate
	// submission wastes one golden run and then converges below.
	c, err := spec.Build()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prep, err := c.Prepare(r.Context())
	if err != nil {
		httpError(w, http.StatusBadRequest, "preparing campaign: %v", err)
		return
	}
	if spec.Sections {
		// The per-section allocation, not the submitter, sets the
		// trial count. Derive it before meta, plans, and shard ranges
		// so the coordinator, journals, and every worker agree on the
		// same sectioned trial space.
		spec.Trials = prep.SectionTotal()
		if spec.Trials == 0 {
			httpError(w, http.StatusBadRequest, "sectioned campaign has no injectable sections")
			return
		}
		if spec.Shards > spec.Trials {
			spec.Shards = spec.Trials
		}
	}
	meta := prep.Meta(spec.Trials)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	if st := s.campaigns[id]; st != nil {
		// Already admitted. A name-pinned spec whose content drifted
		// from the admitted campaign is a mismatch, not a resume.
		if st.meta != meta {
			httpError(w, http.StatusConflict, "campaign %s: %v", id, fault.ErrCampaignMismatch)
			return
		}
		writeJSON(w, http.StatusOK, SubmitResponse{
			ID: id, Status: statusOf(st), Restored: st.restored, RecoveredShards: st.recovered,
		})
		return
	}

	st, err := s.admitLocked(id, spec, prep, meta)
	if err != nil {
		switch {
		case errors.Is(err, fault.ErrCampaignMismatch):
			httpError(w, http.StatusConflict, "campaign %s: %v", id, err)
		case errors.Is(err, fault.ErrJournalLocked):
			httpError(w, http.StatusLocked, "campaign %s: %v", id, err)
		default:
			httpError(w, http.StatusInternalServerError, "campaign %s: %v", id, err)
		}
		return
	}
	status := http.StatusCreated
	switch {
	case len(st.recovered) > 0:
		status = http.StatusAccepted
	case st.hadPrior:
		status = http.StatusOK
	}
	s.logf("campaign %s admitted: %d trials, %d shards, %d restored, %d shard journals recovered",
		id, st.n, st.k, st.restored, len(st.recovered))
	writeJSON(w, status, SubmitResponse{
		ID: id, Status: statusOf(st), Restored: st.restored, RecoveredShards: st.recovered,
	})
}

// admitLocked registers a campaign and restores its journal directory,
// mirroring the in-process engine's recovery rules: torn tails are
// truncated on open, a corrupt shard journal is deleted and its shard
// re-run, a valid journal of a different campaign is never clobbered.
func (s *Server) admitLocked(id string, spec Spec, prep *fault.Prepared, meta fault.JournalMeta) (*state, error) {
	plans := prep.Plans(spec.Trials)
	st := &state{
		id:           id,
		spec:         spec,
		n:            spec.Trials,
		k:            spec.Shards,
		dir:          filepath.Join(s.opts.Dir, id),
		meta:         meta,
		plans:        plans,
		res:          prep.NewResult(plans),
		sm:           shard.NewStateMachine(spec.Shards),
		journals:     make([]*fault.Journal, spec.Shards),
		jmu:          make([]sync.Mutex, spec.Shards),
		failedShard:  make([]bool, spec.Shards),
		backoffUntil: make([]time.Time, spec.Shards),
		leaseOf:      make([]*lease, spec.Shards),
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating campaign dir: %w", err)
	}
	if err := s.restoreMergedLocked(st); err != nil {
		return nil, err
	}
	for sh := 0; sh < st.k; sh++ {
		if err := s.openShardJournalLocked(st, sh); err != nil {
			closeJournals(st)
			return nil, err
		}
	}
	for t := range st.res.Trials {
		if st.res.Trials[t].Status != fault.TrialPending {
			st.restored++
		}
	}
	// Shards whose whole range is already durable owe no execution.
	for sh := 0; sh < st.k; sh++ {
		if st.settledIn(sh) == rangeLen(st.n, st.k, sh) {
			st.sm.Settle(sh)
		}
	}
	s.campaigns[id] = st
	s.ids = append(s.ids, id)
	sort.Strings(s.ids)
	s.maybeCompleteLocked(st)
	return st, nil
}

// restoreMergedLocked loads a completed prior run's merged journal,
// with the in-process engine's recovery split: corrupt → delete and
// rebuild from shard journals, foreign → hard mismatch error.
func (s *Server) restoreMergedLocked(st *state) error {
	path := shard.MergedJournalPath(st.dir)
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	j, err := fault.OpenJournal(path)
	if err != nil {
		if errors.Is(err, fault.ErrJournalCorrupt) {
			return os.Remove(path)
		}
		return err
	}
	prev, err := j.Begin(st.meta)
	closeErr := j.Close()
	if err != nil {
		if errors.Is(err, fault.ErrCampaignMismatch) {
			return err
		}
		return os.Remove(path)
	}
	if closeErr != nil {
		return closeErr
	}
	for t, tr := range prev {
		if t >= 0 && t < st.n && tr.Status != fault.TrialPending {
			st.res.Trials[t] = tr
			st.hadPrior = true
		}
	}
	return nil
}

// openShardJournalLocked opens shard sh's journal, restoring its trials
// and classifying damage: corrupt → delete, recreate, and report the
// shard as recovered (it re-runs from scratch); a valid journal of a
// different campaign → mismatch error; held lock → locked error.
func (s *Server) openShardJournalLocked(st *state, sh int) error {
	path := filepath.Join(st.dir, shard.JournalName(sh))
	lo, hi := shard.Range(st.n, st.k, sh)
	meta := st.meta
	meta.Shards, meta.Shard, meta.ShardStart, meta.ShardEnd = st.k, sh, lo, hi
	for recreated := false; ; recreated = true {
		j, err := fault.OpenJournal(path)
		if err != nil {
			if errors.Is(err, fault.ErrJournalCorrupt) && !recreated {
				if err := os.Remove(path); err != nil {
					return err
				}
				st.recovered = append(st.recovered, sh)
				continue
			}
			return err
		}
		prev, err := j.Begin(meta)
		if err != nil {
			j.Close()
			if errors.Is(err, fault.ErrCampaignMismatch) {
				if sameCampaignDifferentSharding(path, st.meta) {
					return fmt.Errorf(
						"journal %s was written with a different shard partition; resubmit with the original shard count or use a fresh campaign name (%w)",
						path, err)
				}
				return err
			}
			if !recreated {
				if err := os.Remove(path); err != nil {
					return err
				}
				st.recovered = append(st.recovered, sh)
				continue
			}
			return err
		}
		j.SetFsyncEvery(s.opts.FsyncEvery)
		st.journals[sh] = j
		for t, tr := range prev {
			if t >= lo && t < hi && tr.Status != fault.TrialPending {
				st.res.Trials[t] = tr
				st.hadPrior = true
			}
		}
		return nil
	}
}

// sameCampaignDifferentSharding reports whether the journal at path
// belongs to this campaign but was partitioned differently.
func sameCampaignDifferentSharding(path string, meta fault.JournalMeta) bool {
	j, err := fault.OpenJournal(path)
	if err != nil {
		return false
	}
	defer j.Close()
	m := j.Meta()
	if m == nil {
		return false
	}
	return m.Seed == meta.Seed && m.Trials == meta.Trials &&
		m.GoldenDyn == meta.GoldenDyn && m.Population == meta.Population
}

// ---- lease dispatch ----

// handleAcquire grants the next runnable shard to a worker (200), or
// reports none available (204). Grant order is deterministic: campaigns
// by sorted ID, shards by index.
func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding acquire request: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	now := s.now()
	s.expireLeasesLocked(now)
	for _, id := range s.ids {
		st := s.campaigns[id]
		if st.complete {
			continue
		}
		s.requeueElapsedLocked(st, now)
		for sh := 0; sh < st.k; sh++ {
			if st.sm.State(sh) != shard.StateQueued {
				continue
			}
			attempt := st.sm.Acquire(sh)
			s.leaseSeq++
			l := &lease{
				id:      fmt.Sprintf("L%06d", s.leaseSeq),
				st:      st,
				shard:   sh,
				worker:  req.Worker,
				expires: now.Add(s.ttl),
			}
			s.leases[l.id] = l
			st.leaseOf[sh] = l
			lo, hi := shard.Range(st.n, st.k, sh)
			grant := LeaseGrant{
				Lease:    l.id,
				Campaign: st.id,
				Spec:     st.spec,
				Shard:    sh,
				Shards:   st.k,
				Lo:       lo,
				Hi:       hi,
				Attempt:  attempt,
				TTL:      s.ttl,
				Meta:     st.meta,
				Settled:  st.settledIndices(sh),
			}
			s.logf("lease %s: shard %d/%d of %s -> worker %q (attempt %d)", l.id, sh, st.k, st.id, req.Worker, attempt)
			writeJSON(w, http.StatusOK, grant)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHeartbeat extends a live lease (204) or reports it gone (410):
// the worker must abandon the shard, which another lease now owns or
// will own.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.expireLeasesLocked(now)
	l := s.leases[id]
	if l == nil {
		httpError(w, http.StatusGone, "lease %s is no longer held", id)
		return
	}
	l.expires = now.Add(s.ttl)
	w.WriteHeader(http.StatusNoContent)
}

// handleRecords ingests a journal segment for a leased shard. The
// durable-ack contract is strictly ordered: fresh records are journaled
// and fsynced first, and only then settled in memory and acknowledged.
// A failed journal write therefore leaves the trial pending on the
// coordinator, so the worker's retry re-journals it instead of hitting
// the idempotent-resend path and collecting a durable ack for a record
// that never reached disk. Re-sent records for already-settled trials
// ack idempotently without re-journaling. The fsync runs outside the
// coordinator mutex — under the shard's journal lock — so a slow disk
// never blocks heartbeats or other shards' segments.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	var seg Segment
	if err := json.NewDecoder(r.Body).Decode(&seg); err != nil {
		httpError(w, http.StatusBadRequest, "decoding segment: %v", err)
		return
	}

	// Phase 1, coordinator lock: validate the lease and the segment,
	// and snapshot which records are not yet settled.
	s.mu.Lock()
	s.expireLeasesLocked(s.now())
	l := s.leases[id]
	if l == nil {
		s.mu.Unlock()
		httpError(w, http.StatusGone, "lease %s is no longer held", id)
		return
	}
	st, sh := l.st, l.shard
	lo, hi := shard.Range(st.n, st.k, sh)
	for _, rec := range seg.Records {
		if rec.T < lo || rec.T >= hi {
			s.mu.Unlock()
			httpError(w, http.StatusBadRequest, "record for trial %d is outside lease %s's range [%d,%d)", rec.T, id, lo, hi)
			return
		}
		if rec.Trial.Status == fault.TrialPending {
			s.mu.Unlock()
			httpError(w, http.StatusBadRequest, "record for trial %d is pending; segments carry settled trials only", rec.T)
			return
		}
	}
	var fresh []Record
	for _, rec := range seg.Records {
		if st.res.Trials[rec.T].Status == fault.TrialPending {
			fresh = append(fresh, rec)
		}
	}
	j := st.journals[sh]
	s.mu.Unlock()

	// Phase 2, shard journal lock only: make the fresh records durable.
	// failedShard fences zombie leases — once a shard terminally fails,
	// a late segment may not append after the TrialFailed records and
	// flip the journal's last-wins restore against the in-memory
	// verdicts.
	if len(fresh) > 0 {
		st.jmu[sh].Lock()
		retired := st.failedShard[sh] || j == nil
		var jerr error
		if !retired {
			for _, rec := range fresh {
				if jerr = j.Record(rec.T, rec.Trial); jerr != nil {
					break
				}
			}
			if jerr == nil {
				// The durable-ack contract: fsync before the response exists.
				jerr = j.Sync()
			}
		}
		st.jmu[sh].Unlock()
		if retired {
			httpError(w, http.StatusGone, "lease %s: shard %d is no longer accepting records", id, sh)
			return
		}
		if jerr != nil {
			httpError(w, http.StatusInternalServerError, "journaling segment for lease %s: %v", id, jerr)
			return
		}
	}

	// Phase 3, coordinator lock: the records are durable — settle them
	// in memory and run the lease bookkeeping.
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.expireLeasesLocked(now)
	if s.leases[id] != l {
		// The lease died while the segment was being made durable. The
		// records are on disk; the shard's next attempt re-derives them
		// deterministically (or a restart's restore recovers them), so
		// dropping the in-memory settle keeps memory and journal
		// convergent.
		httpError(w, http.StatusGone, "lease %s is no longer held", id)
		return
	}
	acked := 0
	for _, rec := range seg.Records {
		if st.res.Trials[rec.T].Status == fault.TrialPending {
			st.res.Trials[rec.T] = rec.Trial
		}
		acked++
	}
	l.expires = now.Add(s.ttl) // a progressing worker is a live worker

	switch {
	case seg.Fail != "":
		s.releaseLocked(l, seg.Fail, now)
	case seg.Done:
		if st.settledIn(l.shard) != hi-lo {
			httpError(w, http.StatusBadRequest, "lease %s closed with %d/%d trials settled", id, st.settledIn(l.shard), hi-lo)
			return
		}
		delete(s.leases, l.id)
		st.leaseOf[l.shard] = nil
		st.sm.Complete(l.shard)
		s.logf("lease %s: shard %d/%d of %s complete", l.id, l.shard, st.k, st.id)
		s.maybeCompleteLocked(st)
	}
	writeJSON(w, http.StatusOK, SegmentResponse{Acked: acked})
}

// expireLeasesLocked revokes every lease whose holder missed its TTL,
// quarantining (or terminally failing) the shard exactly as an
// explicit worker failure would.
func (s *Server) expireLeasesLocked(now time.Time) {
	for _, l := range s.leases {
		if !l.expires.After(now) {
			s.releaseLocked(l, "lease expired (missed heartbeat)", now)
		}
	}
}

// requeueElapsedLocked makes quarantined shards whose backoff delay has
// passed runnable again.
func (s *Server) requeueElapsedLocked(st *state, now time.Time) {
	for sh := 0; sh < st.k; sh++ {
		if st.sm.State(sh) == shard.StateBackoff && !st.backoffUntil[sh].After(now) {
			st.sm.Requeue(sh)
		}
	}
}

// releaseLocked ends a lease on failure (expiry or an explicit worker
// surrender): within the retry budget the shard is quarantined with
// exponential backoff; beyond it the shard terminally fails and its
// unexecuted trials are recorded as TrialFailed — siblings never
// notice. The cause string must be deterministic (no wall-clock, no
// worker identity): it lands verbatim in TrialFailed records.
func (s *Server) releaseLocked(l *lease, cause string, now time.Time) {
	delete(s.leases, l.id)
	st := l.st
	if st.leaseOf[l.shard] != l {
		return // an older revoked lease racing its replacement
	}
	st.leaseOf[l.shard] = nil
	attempt := st.sm.Attempts(l.shard)
	if attempt > s.retries {
		s.failShardLocked(st, l.shard, attempt, cause)
		st.sm.Fail(l.shard)
		s.logf("lease %s: shard %d/%d of %s failed after %d attempts: %s", l.id, l.shard, st.k, st.id, attempt, cause)
		s.maybeCompleteLocked(st)
		return
	}
	st.sm.Quarantine(l.shard)
	st.backoffUntil[l.shard] = now.Add(backoffDelay(s.backoff, attempt))
	s.logf("lease %s: shard %d/%d of %s quarantined (attempt %d): %s", l.id, l.shard, st.k, st.id, attempt, cause)
}

// maxShardBackoff bounds a quarantined shard's requeue delay.
const maxShardBackoff = time.Hour

// backoffDelay computes the quarantine delay after failed attempt k:
// base << (k-1), clamped to maxShardBackoff. The clamp is what keeps an
// arbitrary retry budget safe — an unchecked shift overflows
// time.Duration into a zero, negative, or wrapped-tiny delay, which
// would land backoffUntil in the past and turn quarantine into a hot
// requeue loop. Doubling below the clamp can never overflow.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for k := 1; k < attempt && d < maxShardBackoff; k++ {
		d <<= 1
	}
	return min(d, maxShardBackoff)
}

// failShardLocked records a terminally quarantined shard's unexecuted
// trials as TrialFailed, with the same message shape as the in-process
// engine. Trials settled by earlier attempts keep their real results.
func (s *Server) failShardLocked(st *state, sh, attempts int, cause string) {
	lo, hi := shard.Range(st.n, st.k, sh)
	msg := fmt.Sprintf("shard %d/%d quarantined after %d attempts: %s", sh, st.k, attempts, cause)
	// Taking the shard journal lock (mu → jmu, the cold direction)
	// retires the journal: a zombie lease's segment that was mid-fsync
	// either finished before this point — those trials are pending in
	// memory (its settle was refused) and are overwritten below, after
	// its records in the journal — or observes failedShard and is
	// refused. Either way nothing appends after these TrialFailed
	// records, so the journal's last-wins restore always agrees with
	// the in-memory verdicts.
	st.jmu[sh].Lock()
	defer st.jmu[sh].Unlock()
	st.failedShard[sh] = true
	for t := lo; t < hi; t++ {
		if st.res.Trials[t].Status != fault.TrialPending {
			continue
		}
		tr := fault.Trial{
			Site: -1, Bit: st.plans[t].Bit, Index: st.plans[t].Index,
			Status: fault.TrialFailed, Err: msg, Attempts: attempts,
		}
		st.res.Trials[t] = tr
		// Best-effort journaling: the verdict is re-derived on resume
		// if it never reached disk.
		if j := st.journals[sh]; j != nil {
			j.Record(t, tr)
		}
	}
	if j := st.journals[sh]; j != nil {
		j.Sync()
	}
}

// maybeCompleteLocked finalizes a campaign once every shard is
// terminal: the canonical merged journal — byte-identical to a local
// Workers=1 run over the same surviving trial set — is written
// atomically and the shard journals are closed.
func (s *Server) maybeCompleteLocked(st *state) {
	if st.complete || !st.sm.AllTerminal() {
		return
	}
	st.res.Finalize()
	if err := fault.WriteCanonical(shard.MergedJournalPath(st.dir), st.meta, st.res.Trials); err != nil {
		st.finalErr = err
		s.logf("campaign %s: writing merged journal: %v", st.id, err)
	}
	closeJournals(st)
	st.complete = true
	s.logf("campaign %s complete: %d/%d trials completed, %d failed", st.id, st.res.Completed, st.n, st.res.Failed)
}

// ---- inspection ----

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignSummary, 0, len(s.ids))
	for _, id := range s.ids {
		st := s.campaigns[id]
		done, failed := 0, 0
		for t := range st.res.Trials {
			if st.res.Trials[t].Status != fault.TrialPending {
				done++
			}
			if st.res.Trials[t].Status == fault.TrialFailed {
				failed++
			}
		}
		out = append(out, CampaignSummary{ID: id, Status: statusOf(st), Trials: st.n, Done: done, Failed: failed})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.campaigns[r.PathValue("id")]
	if st == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	s.expireLeasesLocked(s.now())
	writeJSON(w, http.StatusOK, s.progressLocked(st))
}

func (s *Server) progressLocked(st *state) Progress {
	st.res.Finalize()
	p := Progress{
		ID:         st.id,
		Status:     statusOf(st),
		Trials:     st.n,
		Done:       st.res.Completed + st.res.Failed,
		Completed:  st.res.Completed,
		Failed:     st.res.Failed,
		Pending:    st.res.Pending,
		Deadlocked: st.res.Deadlocks,
		Counts:     st.res.Counts,
		GoldenDyn:  st.res.GoldenDyn,
		Shards:     make([]ShardStatus, st.k),
	}
	if summary := st.res.ErrorSummary(); summary != "" && st.res.Failed > 0 {
		p.Errors = summary
	}
	if st.finalErr != nil {
		p.Errors = strings.TrimSpace(p.Errors + " merged journal: " + st.finalErr.Error())
	}
	for sh := 0; sh < st.k; sh++ {
		lo, hi := shard.Range(st.n, st.k, sh)
		ss := ShardStatus{
			State:    st.sm.State(sh).String(),
			Attempts: st.sm.Attempts(sh),
			Lo:       lo,
			Hi:       hi,
			Settled:  st.settledIn(sh),
		}
		if l := st.leaseOf[sh]; l != nil {
			ss.Worker = l.worker
		}
		p.Shards[sh] = ss
	}
	return p
}

// handleResult returns the finalized campaign result, or 425 while
// shards are still outstanding.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.campaigns[r.PathValue("id")]
	if st == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	if !st.complete {
		httpError(w, http.StatusTooEarly, "campaign %s is still running", st.id)
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{ID: st.id, GoldenDyn: st.res.GoldenDyn, Trials: st.res.Trials})
}

// handleJournal streams the canonical merged journal's bytes, or 425
// while the campaign is still running.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.campaigns[r.PathValue("id")]
	if st == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	if !st.complete {
		s.mu.Unlock()
		httpError(w, http.StatusTooEarly, "campaign %s is still running", st.id)
		return
	}
	path := shard.MergedJournalPath(st.dir)
	s.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "reading merged journal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Write(data)
}

// ---- helpers ----

func statusOf(st *state) string {
	if st.complete {
		return "complete"
	}
	return "running"
}

// settledIn counts shard sh's settled trials.
func (st *state) settledIn(sh int) int {
	lo, hi := shard.Range(st.n, st.k, sh)
	n := 0
	for t := lo; t < hi; t++ {
		if st.res.Trials[t].Status != fault.TrialPending {
			n++
		}
	}
	return n
}

// settledIndices lists shard sh's settled trial indices in order.
func (st *state) settledIndices(sh int) []int {
	lo, hi := shard.Range(st.n, st.k, sh)
	var out []int
	for t := lo; t < hi; t++ {
		if st.res.Trials[t].Status != fault.TrialPending {
			out = append(out, t)
		}
	}
	return out
}

func rangeLen(n, k, sh int) int {
	lo, hi := shard.Range(n, k, sh)
	return hi - lo
}

func closeJournals(st *state) {
	for i, j := range st.journals {
		if j != nil {
			j.Close()
			st.journals[i] = nil
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}
