package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"ipas/internal/fault"
	"ipas/internal/fault/shard"
)

// Chaos tests exercise the coordinator against real worker processes:
// SIGKILLed workers, workers that stop heartbeating, workers too slow
// to keep a lease alive, and a shard that fails every attempt. The
// re-exec pattern below turns this test binary into a worker when the
// server env var is set.
const (
	chaosServerEnv    = "IPAS_CHAOS_WORKER_SERVER"
	chaosHBLimitEnv   = "IPAS_CHAOS_WORKER_HBLIMIT"
	chaosSleepEnv     = "IPAS_CHAOS_WORKER_TRIAL_SLEEP_MS"
	chaosFailShardEnv = "IPAS_CHAOS_WORKER_FAIL_SHARD"
)

func TestMain(m *testing.M) {
	if server := os.Getenv(chaosServerEnv); server != "" {
		runChaosWorker(server)
		return
	}
	os.Exit(m.Run())
}

// runChaosWorker polls the coordinator until the process is killed.
func runChaosWorker(server string) {
	hbLimit, _ := strconv.Atoi(os.Getenv(chaosHBLimitEnv))
	sleepMS, _ := strconv.Atoi(os.Getenv(chaosSleepEnv))
	failShard := -1
	if v := os.Getenv(chaosFailShardEnv); v != "" {
		failShard, _ = strconv.Atoi(v)
	}
	w := &Worker{
		Server:         server,
		Name:           fmt.Sprintf("chaos-%d", os.Getpid()),
		Poll:           20 * time.Millisecond,
		HeartbeatLimit: hbLimit,
		BeforeTrial: func(campaign string, sh, trial int) error {
			if sh == failShard {
				return errors.New("injected shard failure")
			}
			if sleepMS > 0 {
				time.Sleep(time.Duration(sleepMS) * time.Millisecond)
			}
			return nil
		},
	}
	w.Run(context.Background())
}

// spawnChaosWorker re-execs this test binary as a worker process.
func spawnChaosWorker(t *testing.T, base string, env map[string]string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), chaosServerEnv+"="+base)
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// TestServerChaosConvergence drives one campaign through a hostile
// fleet: a worker SIGKILLed mid-shard, a partitioned worker that stops
// heartbeating and is too slow to renew its lease through record acks,
// and a healthy replacement. The campaign must converge to the exact
// result and byte-identical merged journal of a local Workers=1 run.
func TestServerChaosConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test spawns worker processes")
	}
	spec := testSpec("chaos", 36, 6, 7)
	want, wantBytes := localReference(t, spec)

	client := newTestServer(t, Options{
		LeaseTTL: 400 * time.Millisecond,
		Backoff:  2 * time.Millisecond,
		Retries:  fault.ExplicitRetries(20),
	})
	sub, status, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated {
		t.Fatalf("fresh submit returned HTTP %d, want 201", status)
	}

	// victim: healthy but doomed. partitioned: one heartbeat, then
	// silence, with trials slower than the lease TTL — every lease it
	// takes expires mid-shard and its late records answer 410.
	victim := spawnChaosWorker(t, client.Base, map[string]string{chaosSleepEnv: "10"})
	spawnChaosWorker(t, client.Base, map[string]string{chaosHBLimitEnv: "1", chaosSleepEnv: "500"})

	time.Sleep(300 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	spawnChaosWorker(t, client.Base, map[string]string{chaosSleepEnv: "5"})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := client.WaitResult(ctx, sub.ID, 50*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("campaign did not converge: %v", err)
	}
	assertSameTrials(t, res, want)
	got, err := client.MergedJournal(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("merged journal differs from the local reference after chaos (%d vs %d bytes)", len(got), len(wantBytes))
	}
}

// TestServerChaosQuarantineExhaustion runs a worker process that fails
// one shard on every attempt: that shard alone exhausts its retry
// budget and fails with the deterministic quarantine message, while
// every sibling shard's trials and journal lines stay bit-identical to
// the local reference.
func TestServerChaosQuarantineExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test spawns worker processes")
	}
	spec := testSpec("chaos-exhaust", 18, 6, 11)
	want, wantBytes := localReference(t, spec)
	const sick = 2

	client := newTestServer(t, Options{
		Backoff: 2 * time.Millisecond,
		Retries: fault.ExplicitRetries(1),
	})
	sub, _, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spawnChaosWorker(t, client.Base, map[string]string{chaosFailShardEnv: strconv.Itoa(sick)})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := client.WaitResult(ctx, sub.ID, 50*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("campaign did not converge: %v", err)
	}

	lo, hi := shard.Range(spec.Trials, spec.Shards, sick)
	if res.Failed != hi-lo {
		t.Fatalf("%d trials failed, want the sick shard's %d", res.Failed, hi-lo)
	}
	wantErr := fmt.Sprintf("shard %d/%d quarantined after 2 attempts: injected shard failure", sick, spec.Shards)
	for tr := 0; tr < spec.Trials; tr++ {
		if tr >= lo && tr < hi {
			if res.Trials[tr].Status != fault.TrialFailed || res.Trials[tr].Err != wantErr {
				t.Fatalf("sick-shard trial %d: %+v, want Err %q", tr, res.Trials[tr], wantErr)
			}
			continue
		}
		if res.Trials[tr] != want.Trials[tr] {
			t.Fatalf("sibling trial %d differs:\n  got  %+v\n  want %+v", tr, res.Trials[tr], want.Trials[tr])
		}
	}
	got, err := client.MergedJournal(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertJournalLinesMatch(t, got, wantBytes, func(trial int) bool { return trial >= lo && trial < hi })
}
