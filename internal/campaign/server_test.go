package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ipas/internal/fault"
	"ipas/internal/fault/shard"
)

// testSource mirrors the fault package's shared test program: 32
// pseudo-random floats reduced to one sqrt-of-sum-of-squares output,
// verified bit-exactly so any corruption is SOC.
const testSource = `
func main() {
	var n int = 32;
	var a *float = malloc_f64(n);
	var seed int = 77;
	for (var i int = 0; i < n; i = i + 1) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		a[i] = float(seed % 100) / 7.0;
	}
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		s = s + a[i] * a[i];
	}
	out_f64(0, sqrt(s));
}
`

var errInjected = errors.New("injected shard failure")

func testSpec(name string, trials, shards int, seed int64) Spec {
	s := Spec{Name: name, Source: testSource, Verifier: "exact", Trials: trials, Seed: seed, Shards: shards}
	s.Normalize()
	return s
}

// newTestServer starts a coordinator over httptest and returns a
// client bound to its URL.
func newTestServer(t *testing.T, opts Options) *Client {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 5 * time.Second
	}
	if opts.Backoff == 0 {
		opts.Backoff = time.Millisecond
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &Client{Base: hs.URL}
}

// startWorker runs an in-process worker until test cleanup.
func startWorker(t *testing.T, client *Client, cfg func(*Worker)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Server: client.Base, Name: "test-worker", Poll: 10 * time.Millisecond}
	if cfg != nil {
		cfg(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// localReference runs the spec's campaign on the local single-loop
// engine with Workers=1 and a journal: the ground truth every remote
// configuration must reproduce bit for bit.
func localReference(t *testing.T, spec Spec) (*fault.CampaignResult, []byte) {
	t.Helper()
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	j, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Journal = j
	c.Workers = 1
	res, err := c.RunContext(context.Background(), spec.Trials)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

func assertSameTrials(t *testing.T, got, want *fault.CampaignResult) {
	t.Helper()
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(got.Trials), len(want.Trials))
	}
	for i := range got.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Fatalf("trial %d differs:\n  got  %+v\n  want %+v", i, got.Trials[i], want.Trials[i])
		}
	}
	if got.Counts != want.Counts || got.GoldenDyn != want.GoldenDyn {
		t.Fatalf("statistics differ: %+v vs %+v", got, want)
	}
}

// waitComplete polls the coordinator until the campaign completes.
func waitComplete(t *testing.T, client *Client, id string) *fault.CampaignResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := client.WaitResult(ctx, id, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("campaign %s did not complete: %v", id, err)
	}
	return res
}

// A remote campaign executed by workers must reproduce the local
// single-loop engine's result and canonical journal bit for bit.
func TestServerCampaignMatchesLocalReference(t *testing.T) {
	spec := testSpec("", 20, 4, 42)
	want, wantBytes := localReference(t, spec)

	client := newTestServer(t, Options{})
	sub, status, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated {
		t.Fatalf("fresh submit returned HTTP %d, want 201", status)
	}
	startWorker(t, client, nil)
	startWorker(t, client, nil)

	res := waitComplete(t, client, sub.ID)
	assertSameTrials(t, res, want)
	got, err := client.MergedJournal(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("merged journal differs from the local reference (%d vs %d bytes)", len(got), len(wantBytes))
	}

	p, err := client.Progress(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "complete" || p.Completed != spec.Trials || p.Failed != 0 {
		t.Fatalf("progress after completion: %+v", p)
	}

	// Resubmitting the identical spec converges on the completed
	// campaign instead of re-running anything.
	sub2, status, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || sub2.Status != "complete" || sub2.ID != sub.ID {
		t.Fatalf("resubmit: HTTP %d, %+v", status, sub2)
	}
}

// Result and journal fetches before completion answer 425 (mapped to
// ErrNotComplete), never a partial result.
func TestServerResultTooEarly(t *testing.T) {
	client := newTestServer(t, Options{})
	sub, _, err := client.Submit(context.Background(), testSpec("early", 4, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Result(context.Background(), sub.ID); !errors.Is(err, ErrNotComplete) {
		t.Fatalf("Result before completion: %v, want ErrNotComplete", err)
	}
	if _, err := client.MergedJournal(context.Background(), sub.ID); !errors.Is(err, ErrNotComplete) {
		t.Fatalf("MergedJournal before completion: %v, want ErrNotComplete", err)
	}
	p, err := client.Progress(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "running" || p.Pending != 4 {
		t.Fatalf("progress of an idle campaign: %+v", p)
	}
}

// copyDir clones a journal directory tree so each pathology case
// mutilates its own copy.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// The coordinator classifies journal-directory damage on admission with
// distinct HTTP statuses — clean resume 200, torn tail truncated 200,
// corrupt shard journal deleted and its shard reassigned 202, foreign
// campaign 409, locked journal 423 — and every recoverable case still
// converges to the byte-identical merged journal.
func TestServerJournalPathologies(t *testing.T) {
	spec := testSpec("patho", 12, 3, 9)
	want, wantBytes := localReference(t, spec)

	// Seed a completed campaign directory to mutilate.
	seedRoot := t.TempDir()
	client := newTestServer(t, Options{Dir: seedRoot})
	sub, _, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client, nil)
	waitComplete(t, client, sub.ID)

	shard0 := func(root string) string { return filepath.Join(root, sub.ID, shard.JournalName(0)) }
	merged := func(root string) string { return shard.MergedJournalPath(filepath.Join(root, sub.ID)) }

	for _, tc := range []struct {
		name       string
		mutilate   func(t *testing.T, root string)
		wantStatus int
		recovered  bool // shard 0 reported recovered
		runWorker  bool // campaign needs execution to converge
	}{
		{
			name:       "clean resume of a complete campaign",
			mutilate:   func(t *testing.T, root string) {},
			wantStatus: http.StatusOK,
		},
		{
			name: "torn tail truncated silently",
			mutilate: func(t *testing.T, root string) {
				if err := os.Remove(merged(root)); err != nil {
					t.Fatal(err)
				}
				path := shard0(root)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
				last := lines[len(lines)-1]
				torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
				torn = append(torn, last[:len(last)/2]...) // no newline: torn
				if err := os.WriteFile(path, torn, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantStatus: http.StatusOK,
			runWorker:  true,
		},
		{
			name: "corrupt shard journal deleted and reassigned",
			mutilate: func(t *testing.T, root string) {
				if err := os.Remove(merged(root)); err != nil {
					t.Fatal(err)
				}
				bogus := []byte(`{"meta":{"format":"bogus"}}` + "\n")
				if err := os.WriteFile(shard0(root), bogus, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantStatus: http.StatusAccepted,
			recovered:  true,
			runWorker:  true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			copyDir(t, seedRoot, root)
			tc.mutilate(t, root)
			client := newTestServer(t, Options{Dir: root})
			sub2, status, err := client.Submit(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if status != tc.wantStatus {
				t.Fatalf("submit returned HTTP %d, want %d", status, tc.wantStatus)
			}
			if tc.recovered != (len(sub2.RecoveredShards) > 0) {
				t.Fatalf("recovered shards %v, want recovered=%v", sub2.RecoveredShards, tc.recovered)
			}
			if tc.runWorker {
				startWorker(t, client, nil)
			}
			res := waitComplete(t, client, sub2.ID)
			assertSameTrials(t, res, want)
			got, err := client.MergedJournal(context.Background(), sub2.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Fatal("merged journal differs from the local reference after recovery")
			}
		})
	}

	t.Run("foreign campaign rejected 409", func(t *testing.T) {
		root := t.TempDir()
		copyDir(t, seedRoot, root)
		client := newTestServer(t, Options{Dir: root})
		foreign := testSpec("patho", 12, 3, 10) // same name, different seed
		_, status, err := client.Submit(context.Background(), foreign)
		if status != http.StatusConflict {
			t.Fatalf("foreign spec returned HTTP %d, want 409", status)
		}
		if !errors.Is(err, fault.ErrCampaignMismatch) {
			t.Fatalf("foreign spec error %v, want ErrCampaignMismatch", err)
		}
	})

	t.Run("locked journal rejected 423", func(t *testing.T) {
		root := t.TempDir()
		copyDir(t, seedRoot, root)
		holder, err := fault.OpenJournal(shard0(root))
		if err != nil {
			t.Fatal(err)
		}
		defer holder.Close()
		client := newTestServer(t, Options{Dir: root})
		_, status, err := client.Submit(context.Background(), spec)
		if status != http.StatusLocked {
			t.Fatalf("locked journal returned HTTP %d, want 423", status)
		}
		if !errors.Is(err, fault.ErrJournalLocked) {
			t.Fatalf("locked journal error %v, want ErrJournalLocked", err)
		}
	})
}

// A worker that stops heartbeating loses its lease: heartbeats and
// record posts answer 410 Gone, the shard requeues with an attempt
// charged, and a healthy worker still converges to the byte-identical
// result.
func TestServerLeaseExpiryRequeuesShard(t *testing.T) {
	spec := testSpec("expiry", 6, 2, 5)
	want, wantBytes := localReference(t, spec)

	client := newTestServer(t, Options{LeaseTTL: 60 * time.Millisecond, Backoff: time.Millisecond})
	sub, _, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Acquire a lease by hand and never heartbeat (a heartbeat would
	// extend it); watch the shard lose its holder via progress instead.
	grant := acquireRaw(t, client.Base)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		p, err := client.Progress(context.Background(), sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards[grant.Shard].Worker == "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := postStatus(t, client.Base, "/api/v1/leases/"+grant.Lease+"/heartbeat", struct{}{}); got != http.StatusGone {
		t.Fatalf("heartbeat on an expired lease returned HTTP %d, want 410", got)
	}
	if got := postStatus(t, client.Base, "/api/v1/leases/"+grant.Lease+"/records", Segment{Done: true}); got != http.StatusGone {
		t.Fatalf("records on an expired lease returned HTTP %d, want 410", got)
	}

	startWorker(t, client, nil)
	res := waitComplete(t, client, sub.ID)
	assertSameTrials(t, res, want)
	got, err := client.MergedJournal(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatal("merged journal differs from the local reference after a lease expiry")
	}
	p, err := client.Progress(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards[grant.Shard].Attempts < 2 {
		t.Fatalf("expired shard %d shows %d attempts, want >= 2", grant.Shard, p.Shards[grant.Shard].Attempts)
	}
}

// A shard whose every attempt fails exhausts its quarantine budget and
// fails alone: its unexecuted trials carry the deterministic quarantine
// message while sibling shards complete bit-identically.
func TestServerQuarantineExhaustionFailsShardAlone(t *testing.T) {
	spec := testSpec("exhaust", 12, 4, 8)
	want, wantBytes := localReference(t, spec)
	const sick = 1

	client := newTestServer(t, Options{Retries: fault.ExplicitRetries(1), Backoff: time.Millisecond})
	sub, _, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client, func(w *Worker) {
		w.BeforeTrial = func(campaign string, sh, trial int) error {
			if sh == sick {
				return errInjected
			}
			return nil
		}
	})

	res := waitComplete(t, client, sub.ID)
	lo, hi := shard.Range(spec.Trials, spec.Shards, sick)
	if res.Failed != hi-lo {
		t.Fatalf("%d trials failed, want the sick shard's %d", res.Failed, hi-lo)
	}
	wantErr := "shard 1/4 quarantined after 2 attempts: injected shard failure"
	for tr := 0; tr < spec.Trials; tr++ {
		if tr >= lo && tr < hi {
			if res.Trials[tr].Status != fault.TrialFailed || res.Trials[tr].Err != wantErr {
				t.Fatalf("sick-shard trial %d: %+v, want Err %q", tr, res.Trials[tr], wantErr)
			}
			continue
		}
		if res.Trials[tr] != want.Trials[tr] {
			t.Fatalf("sibling trial %d differs:\n  got  %+v\n  want %+v", tr, res.Trials[tr], want.Trials[tr])
		}
	}

	// The merged journal matches the reference byte for byte outside the
	// failed shard's lines: same header, same surviving trial records.
	got, err := client.MergedJournal(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertJournalLinesMatch(t, got, wantBytes, func(trial int) bool { return trial >= lo && trial < hi })
}

// A journal write failure must not leave a phantom in-memory settle:
// the coordinator answers 500 with the trial still pending, so the
// worker's retry of the same segment is re-journaled — never answered
// with an idempotent durable ack for a record that missed the disk.
func TestServerJournalFailureLeavesTrialPending(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), LeaseTTL: time.Minute, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	client := &Client{Base: hs.URL}
	sub, _, err := client.Submit(context.Background(), testSpec("jfail", 4, 2, 13))
	if err != nil {
		t.Fatal(err)
	}
	grant := acquireRaw(t, client.Base)

	// Make every append to the leased shard's journal fail by closing
	// the file underneath the coordinator.
	srv.mu.Lock()
	srv.campaigns[sub.ID].journals[grant.Shard].Close()
	srv.mu.Unlock()

	seg := Segment{Records: []Record{{T: grant.Lo, Trial: fault.Trial{
		Site: -1, Status: fault.TrialFailed, Err: "synthetic", Attempts: 1,
	}}}}
	for attempt := 1; attempt <= 2; attempt++ {
		if got := postStatus(t, client.Base, "/api/v1/leases/"+grant.Lease+"/records", seg); got != http.StatusInternalServerError {
			t.Fatalf("segment post %d with a failing journal returned HTTP %d, want 500 (phantom settle acked without a durable write)", attempt, got)
		}
	}
	p, err := client.Progress(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards[grant.Shard].Settled != 0 || p.Done != 0 {
		t.Fatalf("unjournaled records settled in memory: %+v", p)
	}
}

// Quarantine backoff must stay positive and bounded for any attempt
// count: an unclamped shift would overflow into a zero or negative
// delay and turn quarantine into a hot requeue loop.
func TestBackoffDelayClamped(t *testing.T) {
	prev := time.Duration(0)
	for attempt := 1; attempt <= 200; attempt++ {
		d := backoffDelay(time.Second, attempt)
		if d <= 0 || d > maxShardBackoff {
			t.Fatalf("backoffDelay(1s, %d) = %v, want within (0, %v]", attempt, d, maxShardBackoff)
		}
		if d < prev {
			t.Fatalf("backoffDelay(1s, %d) = %v shrank below %v", attempt, d, prev)
		}
		prev = d
	}
	if got := backoffDelay(time.Second, 3); got != 4*time.Second {
		t.Fatalf("backoffDelay(1s, 3) = %v, want 4s", got)
	}
	if got := backoffDelay(time.Second, 100); got != maxShardBackoff {
		t.Fatalf("backoffDelay(1s, 100) = %v, want the %v clamp", got, maxShardBackoff)
	}
	if got := backoffDelay(2*time.Hour, 1); got != maxShardBackoff {
		t.Fatalf("backoffDelay(2h, 1) = %v, want the %v clamp", got, maxShardBackoff)
	}
}

// A long-lived worker whose cached campaign ID is reused for a new
// spec (a coordinator restarted on a cleaned directory pins the same
// name to different content) must rebuild from the grant's spec
// instead of surrendering every lease for that ID into terminal
// shard failure.
func TestWorkerRebuildsStaleCampaignCache(t *testing.T) {
	specA := testSpec("pinned", 6, 2, 21)
	specB := testSpec("pinned", 6, 2, 22) // same campaign ID, different fingerprint
	wantB, _ := localReference(t, specB)

	w := &Worker{Name: "long-lived"}
	run := func(spec Spec) *fault.CampaignResult {
		client := newTestServer(t, Options{Retries: fault.ExplicitRetries(1)})
		sub, _, err := client.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		w.Server = client.Base
		deadline := time.Now().Add(time.Minute)
		for {
			if _, err := client.Result(context.Background(), sub.ID); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s did not complete", sub.ID)
			}
			if worked, _ := w.RunOne(context.Background()); !worked {
				time.Sleep(2 * time.Millisecond)
			}
		}
		return waitComplete(t, client, sub.ID)
	}

	if res := run(specA); res.Failed != 0 {
		t.Fatalf("first campaign failed %d trials", res.Failed)
	}
	resB := run(specB)
	if resB.Failed != 0 {
		t.Fatalf("reused campaign ID failed %d trials: the worker kept surrendering on its stale cache", resB.Failed)
	}
	assertSameTrials(t, resB, wantB)
}

// assertJournalLinesMatch compares two canonical journals line by line,
// skipping trial lines the skip predicate excuses. Line 0 is the meta
// header; body line i carries trial i-1 in canonical order.
func assertJournalLinesMatch(t *testing.T, got, want []byte, skip func(trial int) bool) {
	t.Helper()
	gl := bytes.Split(bytes.TrimRight(got, "\n"), []byte("\n"))
	wl := bytes.Split(bytes.TrimRight(want, "\n"), []byte("\n"))
	if len(gl) != len(wl) {
		t.Fatalf("journal line counts differ: %d vs %d", len(gl), len(wl))
	}
	for i := range gl {
		if i > 0 && skip(i-1) {
			continue
		}
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("journal line %d differs:\n  got  %s\n  want %s", i, gl[i], wl[i])
		}
	}
}

// acquireRaw grabs one lease over raw HTTP, without worker machinery.
func acquireRaw(t *testing.T, base string) LeaseGrant {
	t.Helper()
	body, err := json.Marshal(AcquireRequest{Worker: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire returned HTTP %d", resp.StatusCode)
	}
	var grant LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		t.Fatal(err)
	}
	return grant
}

func postStatus(t *testing.T, base, path string, v any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// A sectioned spec dispatches through the same lease/ack protocol as a
// flat one: the coordinator derives the trial count from the
// per-section allocation at admission, workers re-derive the identical
// sectioned plan sequence from the spec, and the remote result matches
// the local sectioned engine trial for trial.
func TestServerSectionedCampaign(t *testing.T) {
	spec := Spec{Source: testSource, Verifier: "exact", Seed: 42, Shards: 3, Sections: true, Coverage: 2}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := c.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.RunSections(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}

	client := newTestServer(t, Options{})
	sub, status, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated {
		t.Fatalf("fresh sectioned submit returned HTTP %d, want 201", status)
	}
	startWorker(t, client, nil)
	startWorker(t, client, nil)

	res := waitComplete(t, client, sub.ID)
	if len(res.Trials) != want.Plan.Total {
		t.Fatalf("server ran %d trials, want the allocation's %d", len(res.Trials), want.Plan.Total)
	}
	assertSameTrials(t, res, want.CampaignResult)
}

// A plain campaign must never adopt a sectioned campaign's journals:
// the trial spaces are incompatible. Both admission paths refuse — the
// in-memory name-pinned comparison and, after a coordinator restart,
// the durable journal headers' format fingerprint.
func TestServerSectionedPlainCrossAdmission(t *testing.T) {
	sectioned := Spec{Name: "xver", Source: testSource, Verifier: "exact", Seed: 7, Shards: 2, Sections: true, Coverage: 1}
	sectioned.Normalize()
	if err := sectioned.Validate(); err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	client := newTestServer(t, Options{Dir: root})
	sub, status, err := client.Submit(context.Background(), sectioned)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated {
		t.Fatalf("sectioned submit returned HTTP %d, want 201", status)
	}
	startWorker(t, client, nil)
	res := waitComplete(t, client, sub.ID)

	plain := Spec{Name: "xver", Source: testSource, Verifier: "exact", Seed: 7, Shards: 2, Trials: len(res.Trials)}
	plain.Normalize()

	// In-memory: same name, plain spec — a different campaign, not a
	// resume.
	_, status, err = client.Submit(context.Background(), plain)
	if status != http.StatusConflict {
		t.Fatalf("plain spec over live sectioned campaign returned HTTP %d, want 409", status)
	}
	if !errors.Is(err, fault.ErrCampaignMismatch) {
		t.Fatalf("plain spec error %v, want ErrCampaignMismatch", err)
	}

	// Durable: a fresh coordinator restoring the sectioned campaign's
	// directory refuses the plain spec on the journal headers alone.
	root2 := t.TempDir()
	copyDir(t, root, root2)
	client2 := newTestServer(t, Options{Dir: root2})
	_, status, err = client2.Submit(context.Background(), plain)
	if status != http.StatusConflict {
		t.Fatalf("plain spec over durable sectioned journals returned HTTP %d, want 409", status)
	}
	if !errors.Is(err, fault.ErrCampaignMismatch) {
		t.Fatalf("plain spec error after restart %v, want ErrCampaignMismatch", err)
	}

	// The reverse direction is refused identically.
	_, status, err = client2.Submit(context.Background(), sectioned)
	if status != http.StatusOK {
		t.Fatalf("sectioned resume after restart returned HTTP %d, want 200", status)
	}
}
