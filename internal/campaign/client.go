package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ipas/internal/fault"
)

// ErrNotComplete reports that a campaign is still running (the
// coordinator answered 425 Too Early).
var ErrNotComplete = errors.New("campaign: not complete yet")

// Client submits campaigns to a coordinator and retrieves their
// results. The zero HTTP field uses http.DefaultClient.
type Client struct {
	// Base is the coordinator's base URL (http://host:port).
	Base string
	HTTP *http.Client
}

// Submit sends a campaign spec and returns the coordinator's admission
// response plus the HTTP status classifying it (201 fresh, 200
// resumed, 202 resumed with corrupt shard journals recovered).
// Mismatch (409) and locked-journal (423) rejections come back as
// errors wrapping fault.ErrCampaignMismatch / fault.ErrJournalLocked
// so callers branch on them the same way local journal code does.
func (c *Client) Submit(ctx context.Context, spec Spec) (SubmitResponse, int, error) {
	var out SubmitResponse
	status, body, err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", spec, &out)
	if err != nil {
		return out, status, err
	}
	switch status {
	case http.StatusCreated, http.StatusOK, http.StatusAccepted:
		return out, status, nil
	case http.StatusConflict:
		return out, status, fmt.Errorf("campaign: %w: %s", fault.ErrCampaignMismatch, strings.TrimSpace(body))
	case http.StatusLocked:
		return out, status, fmt.Errorf("campaign: %w: %s", fault.ErrJournalLocked, strings.TrimSpace(body))
	}
	return out, status, fmt.Errorf("campaign: submit: HTTP %d: %s", status, strings.TrimSpace(body))
}

// Progress fetches a campaign's live progress.
func (c *Client) Progress(ctx context.Context, id string) (Progress, error) {
	var out Progress
	status, body, err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &out)
	if err != nil {
		return out, err
	}
	if status != http.StatusOK {
		return out, fmt.Errorf("campaign: progress of %s: HTTP %d: %s", id, status, strings.TrimSpace(body))
	}
	return out, nil
}

// Result fetches a completed campaign's result, rebuilding the
// aggregate statistics locally with Finalize. Returns ErrNotComplete
// while shards are outstanding.
func (c *Client) Result(ctx context.Context, id string) (*fault.CampaignResult, error) {
	var out ResultResponse
	status, body, err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, &out)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusTooEarly:
		return nil, ErrNotComplete
	default:
		return nil, fmt.Errorf("campaign: result of %s: HTTP %d: %s", id, status, strings.TrimSpace(body))
	}
	res := &fault.CampaignResult{GoldenDyn: out.GoldenDyn, Trials: out.Trials}
	res.Finalize()
	return res, nil
}

// MergedJournal fetches the canonical merged journal's raw bytes.
// Returns ErrNotComplete while the campaign is running.
func (c *Client) MergedJournal(ctx context.Context, id string) ([]byte, error) {
	status, body, err := c.doRaw(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/journal", nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return body, nil
	case http.StatusTooEarly:
		return nil, ErrNotComplete
	}
	return nil, fmt.Errorf("campaign: journal of %s: HTTP %d: %s", id, status, strings.TrimSpace(string(body)))
}

// WaitResult polls until the campaign completes (or ctx ends) and
// returns its result. onProgress, when non-nil, receives each polled
// progress snapshot.
func (c *Client) WaitResult(ctx context.Context, id string, poll time.Duration, onProgress func(Progress)) (*fault.CampaignResult, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		res, err := c.Result(ctx, id)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNotComplete) {
			return nil, err
		}
		if onProgress != nil {
			if p, perr := c.Progress(ctx, id); perr == nil {
				onProgress(p)
			}
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// do performs a JSON round-trip, decoding a 2xx body into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (int, string, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return 0, "", err
		}
		body = bytes.NewReader(data)
	}
	status, raw, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return status, "", err
	}
	if out != nil && status >= 200 && status < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return status, string(raw), fmt.Errorf("campaign: decoding %s response: %w", path, err)
		}
	}
	return status, string(raw), nil
}

// doRaw performs one HTTP round-trip and slurps the response body.
func (c *Client) doRaw(ctx context.Context, method, path string, body io.Reader) (int, []byte, error) {
	client := c.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}
