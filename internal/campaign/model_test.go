package campaign

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"ipas/internal/fault"
)

// TestSpecValidateModel: the coordinator must reject specs naming a
// model it cannot draw (admission-time forward compat — a worker fleet
// must never be handed a plan space it would draw differently).
func TestSpecValidateModel(t *testing.T) {
	good := testSpec("", 8, 2, 1)
	good.Model = "burst-3"
	if err := good.Validate(); err != nil {
		t.Fatalf("spec with burst-3 rejected: %v", err)
	}
	bad := testSpec("", 8, 2, 1)
	bad.Model = "future-model-v9"
	if err := bad.Validate(); err == nil {
		t.Fatal("spec naming an unknown model passed validation")
	}
}

// TestSpecModelKeepsLegacyID: the default model must serialize as the
// empty string so content-hashed campaign IDs — and therefore journal
// directories and resubmission convergence — are unchanged from
// pre-model builds.
func TestSpecModelKeepsLegacyID(t *testing.T) {
	a := testSpec("", 8, 2, 1)
	b := testSpec("", 8, 2, 1)
	b.Model = ""
	if a.ID() != b.ID() {
		t.Fatalf("empty model changed the campaign ID: %s vs %s", a.ID(), b.ID())
	}
	c := testSpec("", 8, 2, 1)
	c.Model = "sticky"
	if c.ID() == a.ID() {
		t.Fatal("a sticky-model spec content-hashed to the default-model ID")
	}
}

// TestServerModelCampaignsMatchLocalReference is the local-vs-remote
// leg of the model determinism matrix: for every built-in model, a
// campaign executed by coordinator + workers must reproduce the local
// single-loop engine's result and canonical journal bit for bit.
func TestServerModelCampaignsMatchLocalReference(t *testing.T) {
	client := newTestServer(t, Options{})
	startWorker(t, client, nil)
	startWorker(t, client, nil)

	for _, model := range fault.BuiltinModels() {
		t.Run(model.Name(), func(t *testing.T) {
			spec := testSpec("", 16, 3, 42)
			spec.Model = fault.ModelName(model)
			want, wantBytes := localReference(t, spec)

			sub, status, err := client.Submit(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if status != http.StatusCreated {
				t.Fatalf("fresh submit returned HTTP %d, want 201", status)
			}
			res := waitComplete(t, client, sub.ID)
			assertSameTrials(t, res, want)
			got, err := client.MergedJournal(context.Background(), sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Fatalf("merged journal differs from the local reference (%d vs %d bytes)", len(got), len(wantBytes))
			}
			if model.Name() != fault.SingleBit.Name() &&
				!strings.Contains(string(got), `"model":"`+model.Name()+`"`) {
				t.Fatalf("merged journal header does not carry model %s", model.Name())
			}
		})
	}
}
