package campaign

import (
	"time"

	"ipas/internal/fault"
)

// Wire types of the coordinator's HTTP/JSON protocol. Everything a
// worker needs to execute a shard rides in the LeaseGrant; everything
// the coordinator needs to make a trial durable rides in a Segment.

// SubmitResponse reports how the coordinator admitted a campaign. The
// HTTP status carries the recovery classification — 201 fresh, 200
// resumed from durable journals (torn tails truncated), 202 resumed
// with corrupt shard journals deleted and their shards requeued, 409
// when the directory holds a different campaign's journals
// (fault.ErrCampaignMismatch), 423 when another process holds a
// journal lock (fault.ErrJournalLocked).
type SubmitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"` // "running" or "complete"
	// Restored counts trials recovered from durable journals.
	Restored int `json:"restored"`
	// RecoveredShards lists shards whose corrupt journal was deleted;
	// they re-run from scratch.
	RecoveredShards []int `json:"recovered_shards,omitempty"`
}

// ShardStatus is one shard's dispatch state in a progress report.
type ShardStatus struct {
	State    string `json:"state"` // shard.State string
	Attempts int    `json:"attempts"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Settled  int    `json:"settled"`
	Worker   string `json:"worker,omitempty"` // current lease holder
}

// Progress is a live campaign rollup: trial tallies campaign-wide and
// dispatch state per shard. Proportions over completed trials are the
// consumer's to compute from Counts/Done — the coordinator never
// reports a proportion over anything else.
type Progress struct {
	ID         string                 `json:"id"`
	Status     string                 `json:"status"` // "running" or "complete"
	Trials     int                    `json:"trials"`
	Done       int                    `json:"done"` // settled: completed + failed
	Completed  int                    `json:"completed"`
	Failed     int                    `json:"failed"`
	Pending    int                    `json:"pending"`
	Deadlocked int                    `json:"deadlocked"`
	Counts     [fault.NumOutcomes]int `json:"counts"`
	GoldenDyn  int64                  `json:"golden_dyn"`
	Shards     []ShardStatus          `json:"shards"`
	Errors     string                 `json:"errors,omitempty"` // ErrorSummary of a degraded campaign
}

// LeaseGrant hands one shard to one worker for a bounded time. The
// worker must heartbeat before TTL elapses, every time, or the
// coordinator revokes the lease and requeues the shard.
type LeaseGrant struct {
	Lease    string        `json:"lease"`
	Campaign string        `json:"campaign"`
	Spec     Spec          `json:"spec"`
	Shard    int           `json:"shard"`
	Shards   int           `json:"shards"`
	Lo       int           `json:"lo"`
	Hi       int           `json:"hi"`
	Attempt  int           `json:"attempt"`
	TTL      time.Duration `json:"ttl_ns"`
	// Meta is the coordinator's campaign fingerprint; the worker
	// refuses the lease if its own build disagrees (version or input
	// skew would otherwise silently mix incompatible trials).
	Meta fault.JournalMeta `json:"meta"`
	// Settled lists trial indices in [Lo, Hi) already durable at the
	// coordinator; the worker skips them (resume without re-execution).
	Settled []int `json:"settled,omitempty"`
}

// Record is one finished trial in a journal segment.
type Record struct {
	T     int         `json:"t"`
	Trial fault.Trial `json:"trial"`
}

// Segment is a worker's streamed batch for its leased shard: zero or
// more finished trials, optionally closing the shard (Done) or
// surrendering it (Fail, a deterministic cause string — the
// coordinator quarantines and requeues).
type Segment struct {
	Records []Record `json:"records,omitempty"`
	Done    bool     `json:"done,omitempty"`
	Fail    string   `json:"fail,omitempty"`
}

// SegmentResponse acknowledges a segment: Acked records are durable on
// the coordinator's disk per its fsync policy (default: synced before
// this response was written).
type SegmentResponse struct {
	Acked int `json:"acked"`
}

// AcquireRequest asks for work; the worker name appears in progress
// reports (never in journal or report content — worker identity is
// not deterministic).
type AcquireRequest struct {
	Worker string `json:"worker"`
}

// CampaignSummary is one row of the campaign listing.
type CampaignSummary struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Trials int    `json:"trials"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
}

// ResultResponse carries a completed campaign's trials; the client
// rebuilds the fault.CampaignResult with Finalize, so the aggregate
// statistics are recomputed, never trusted over the wire.
type ResultResponse struct {
	ID        string        `json:"id"`
	GoldenDyn int64         `json:"golden_dyn"`
	Trials    []fault.Trial `json:"trials"`
}
