package campaign

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"testing"

	"ipas/internal/fault/shard"
	"ipas/internal/workloads"
)

// TestConvergenceWorkloadsAcrossHarnessPaths drives both
// iterative-convergence mini-apps through every execution path the
// harness offers — golden run, local injection, sharded, sectioned,
// and coordinator+worker — under a non-default error model, asserting
// the paths that share a plan space (local, sharded, remote) agree bit
// for bit. This is the acceptance matrix for the convergence
// workloads: residual-based verifiers and multi-bit models must
// compose with every engine, not just the single local loop.
func TestConvergenceWorkloadsAcrossHarnessPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaigns are slow")
	}
	ctx := context.Background()
	client := newTestServer(t, Options{})
	startWorker(t, client, nil)
	startWorker(t, client, nil)

	for _, wl := range workloads.ConvergenceNames {
		t.Run(wl, func(t *testing.T) {
			spec := Spec{Workload: wl, Input: 1, Trials: 8, Seed: 33, Shards: 2, Model: "burst-3"}
			spec.Normalize()
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}

			// Path 1: golden. The fault-free reference must pass the
			// workload's own residual verifier — everything downstream
			// classifies against it.
			c, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			prep, err := c.Prepare(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !workloads.MustGet(wl, spec.Input).Verify(prep.Golden, prep.Golden) {
				t.Fatal("golden run fails the workload verifier")
			}
			if prep.Population <= 0 {
				t.Fatalf("golden run counted no injectable population")
			}

			// Path 2: local injection — the reference everything else
			// must reproduce.
			want, wantBytes := localReference(t, spec)
			if len(want.Trials) != spec.Trials {
				t.Fatalf("local campaign ran %d trials, want %d", len(want.Trials), spec.Trials)
			}

			// Path 3: sharded.
			dir := t.TempDir()
			sc, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			sres, err := shard.Run(ctx, sc, spec.Trials, shard.Options{Shards: 2, Workers: 2, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			assertSameTrials(t, sres, want)
			merged, err := os.ReadFile(shard.MergedJournalPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, wantBytes) {
				t.Fatalf("sharded merged journal differs from the local reference (%d vs %d bytes)", len(merged), len(wantBytes))
			}

			// Path 4: sectioned. The allocation replaces the flat trial
			// count, so only completion and classification are asserted.
			secSpec := spec
			secSpec.Sections = true
			secSpec.Coverage = 1
			secSpec.MaxPerSection = 2
			xc, err := secSpec.Build()
			if err != nil {
				t.Fatal(err)
			}
			sprep, err := xc.Prepare(ctx)
			if err != nil {
				t.Fatal(err)
			}
			secRes, err := sprep.RunSections(ctx, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if secRes.Executed == 0 || len(secRes.Trials) != sprep.SectionTotal() {
				t.Fatalf("sectioned run executed %d of %d trials", secRes.Executed, sprep.SectionTotal())
			}

			// Path 5: remote (coordinator + workers).
			sub, status, err := client.Submit(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			if status != http.StatusCreated {
				t.Fatalf("fresh submit returned HTTP %d, want 201", status)
			}
			rres := waitComplete(t, client, sub.ID)
			assertSameTrials(t, rres, want)
			rj, err := client.MergedJournal(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rj, wantBytes) {
				t.Fatalf("remote merged journal differs from the local reference (%d vs %d bytes)", len(rj), len(wantBytes))
			}
		})
	}
}
