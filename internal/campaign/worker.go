package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ipas/internal/fault"
	"ipas/internal/interp"
)

// errLeaseGone marks a lease the coordinator revoked (410): the worker
// abandons the shard immediately — another lease owns it now, and any
// further work here would be wasted, never wrong (the coordinator acks
// idempotently and ignores records from dead leases).
var errLeaseGone = errors.New("campaign: lease revoked by coordinator")

// Worker executes leased shards against a coordinator. It rebuilds
// each campaign from its spec (Build + Prepare), verifies that its
// fingerprint matches the coordinator's grant, and streams each
// finished trial back as a durable-acked journal segment.
type Worker struct {
	// Server is the coordinator's base URL (http://host:port).
	Server string
	// Name identifies the worker in progress reports (display only).
	Name string
	// Poll is the idle re-poll interval when no work is available
	// (default 200ms).
	Poll time.Duration
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client

	// BeforeTrial, when non-nil, runs before every trial execution; a
	// non-nil error surrenders the lease with that cause. Chaos tests
	// use it to force deterministic shard failures.
	BeforeTrial func(campaign string, shard, t int) error
	// HeartbeatLimit, when positive, stops heartbeating after that
	// many beats — a chaos hook simulating a partitioned worker that
	// keeps computing but cannot reach the coordinator.
	HeartbeatLimit int

	mu    sync.Mutex
	cache map[string]*workerCampaign
}

// workerCampaign is a worker-side prepared campaign, cached across
// leases so repeated shards of one campaign share a single golden run.
type workerCampaign struct {
	prep  *fault.Prepared
	plans []interp.FaultPlan
	meta  fault.JournalMeta
}

// Run polls for leases and executes them until ctx is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		worked, err := w.RunOne(ctx)
		if err != nil && ctx.Err() == nil {
			// Coordinator unreachable or mid-restart: keep polling.
			worked = false
		}
		if !worked {
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// RunOne acquires and executes at most one lease, reporting whether
// any work was granted.
func (w *Worker) RunOne(ctx context.Context) (bool, error) {
	grant, ok, err := w.acquire(ctx)
	if err != nil || !ok {
		return false, err
	}
	return true, w.runLease(ctx, grant)
}

// acquire asks the coordinator for a shard lease.
func (w *Worker) acquire(ctx context.Context) (LeaseGrant, bool, error) {
	var grant LeaseGrant
	status, err := w.post(ctx, "/api/v1/leases", AcquireRequest{Worker: w.Name}, &grant)
	switch {
	case err != nil:
		return grant, false, err
	case status == http.StatusNoContent:
		return grant, false, nil
	case status != http.StatusOK:
		return grant, false, fmt.Errorf("campaign: acquiring lease: HTTP %d", status)
	}
	return grant, true, nil
}

// prepare returns the worker's prepared substrate for a campaign,
// building it on first use.
func (w *Worker) prepare(ctx context.Context, grant LeaseGrant) (*workerCampaign, error) {
	w.mu.Lock()
	if w.cache == nil {
		w.cache = map[string]*workerCampaign{}
	}
	if wc := w.cache[grant.Campaign]; wc != nil {
		w.mu.Unlock()
		return wc, nil
	}
	w.mu.Unlock()

	c, err := grant.Spec.Build()
	if err != nil {
		return nil, err
	}
	prep, err := c.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	wc := &workerCampaign{prep: prep, plans: prep.Plans(grant.Spec.Trials), meta: prep.Meta(grant.Spec.Trials)}
	w.mu.Lock()
	w.cache[grant.Campaign] = wc
	w.mu.Unlock()
	return wc, nil
}

// evict drops a cached campaign, but only if wc is still the cached
// entry (a concurrent rebuild may have replaced it already).
func (w *Worker) evict(id string, wc *workerCampaign) {
	w.mu.Lock()
	if w.cache[id] == wc {
		delete(w.cache, id)
	}
	w.mu.Unlock()
}

// runLease executes one leased shard: trials in index order, one
// durable-acked segment per trial, a heartbeat goroutine keeping the
// lease alive, and a final Done (or Fail) segment closing it.
func (w *Worker) runLease(ctx context.Context, grant LeaseGrant) error {
	wc, err := w.prepare(ctx, grant)
	if err == nil && wc.meta != grant.Meta {
		// The cached build may belong to an older campaign that reused
		// this ID (a coordinator restarted on a cleaned directory pins
		// the same name to a new spec). Surrendering forever on a stale
		// cache would drive the shard through quarantine to terminal
		// failure, so evict and rebuild once from the grant's spec
		// before concluding the builds genuinely disagree.
		w.evict(grant.Campaign, wc)
		wc, err = w.prepare(ctx, grant)
	}
	if err != nil {
		// The spec does not build or golden-run here; surrendering
		// with a deterministic cause lets the coordinator quarantine.
		w.post(ctx, "/api/v1/leases/"+grant.Lease+"/records",
			Segment{Fail: fmt.Sprintf("worker cannot prepare campaign: %v", err)}, nil)
		return err
	}
	if wc.meta != grant.Meta {
		// Version or input skew: this worker's build computes a
		// different golden run. Mixing its trials into the campaign
		// would silently corrupt it — refuse the lease.
		w.post(ctx, "/api/v1/leases/"+grant.Lease+"/records",
			Segment{Fail: "campaign fingerprint mismatch: worker build disagrees with coordinator"}, nil)
		return fmt.Errorf("campaign %s: fingerprint mismatch: worker %+v, coordinator %+v", grant.Campaign, wc.meta, grant.Meta)
	}

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(lctx, grant, cancel)
	}()
	defer func() { cancel(); <-hbDone }()

	settled := make(map[int]bool, len(grant.Settled))
	for _, t := range grant.Settled {
		settled[t] = true
	}
	for t := grant.Lo; t < grant.Hi; t++ {
		if settled[t] {
			continue
		}
		if w.BeforeTrial != nil {
			if err := w.BeforeTrial(grant.Campaign, grant.Shard, t); err != nil {
				_, perr := w.post(ctx, "/api/v1/leases/"+grant.Lease+"/records", Segment{Fail: err.Error()}, nil)
				if perr != nil {
					return perr
				}
				return err
			}
		}
		tr := wc.prep.RunTrial(lctx, t, wc.plans[t])
		if tr.Status == fault.TrialPending {
			// Cancelled: the process is shutting down or the lease was
			// revoked mid-trial. The lease expires on its own.
			return lctx.Err()
		}
		if err := w.sendRecord(lctx, grant, t, tr); err != nil {
			return err
		}
	}
	status, err := w.post(lctx, "/api/v1/leases/"+grant.Lease+"/records", Segment{Done: true}, nil)
	if err != nil {
		return err
	}
	if status == http.StatusGone {
		return errLeaseGone
	}
	if status != http.StatusOK {
		return fmt.Errorf("campaign: closing lease %s: HTTP %d", grant.Lease, status)
	}
	return nil
}

// sendRecord posts one finished trial and waits for the durable ack,
// retrying transient transport errors (the record is idempotent).
func (w *Worker) sendRecord(ctx context.Context, grant LeaseGrant, t int, tr fault.Trial) error {
	seg := Segment{Records: []Record{{T: t, Trial: tr}}}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		var resp SegmentResponse
		status, err := w.post(ctx, "/api/v1/leases/"+grant.Lease+"/records", seg, &resp)
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusGone:
			return errLeaseGone
		case status == http.StatusOK:
			return nil
		default:
			lastErr = fmt.Errorf("campaign: segment for trial %d: HTTP %d", t, status)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return lastErr
}

// heartbeat keeps the lease alive at TTL/3 until the lease context
// ends; a revoked lease (410) cancels the shard's execution.
func (w *Worker) heartbeat(ctx context.Context, grant LeaseGrant, cancel context.CancelFunc) {
	ivl := grant.TTL / 3
	if ivl <= 0 {
		ivl = time.Second
	}
	beats := 0
	tick := time.NewTicker(ivl)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if w.HeartbeatLimit > 0 && beats >= w.HeartbeatLimit {
			continue // partitioned: computing but unable to report in
		}
		beats++
		status, err := w.post(ctx, "/api/v1/leases/"+grant.Lease+"/heartbeat", struct{}{}, nil)
		if err == nil && status == http.StatusGone {
			cancel()
			return
		}
	}
}

// post sends a JSON request and decodes the JSON response (when out is
// non-nil and the response carries one), returning the HTTP status.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	client := w.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
