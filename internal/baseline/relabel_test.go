package baseline

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ipas/internal/features"
	"ipas/internal/ir"
	"ipas/internal/svm"
	"ipas/internal/workloads"
)

func relabelFixture(t *testing.T) (*ir.Module, [][]float64) {
	t.Helper()
	spec := workloads.MustGet("FFT", 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return m, features.NewExtractor(m).VectorBySite()
}

func TestSiteLabelsAlignWithAnalysis(t *testing.T) {
	m, _ := relabelFixture(t)
	labels := SiteLabels(m, Config{})
	if len(labels) != m.NumSites() {
		t.Fatalf("%d labels for %d sites", len(labels), m.NumSites())
	}
	a := Analyze(m, Config{})
	pos := 0
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.SiteID < 0 {
					continue
				}
				want := -1
				if a.SymptomGenerating[in] {
					want = 1
					pos++
				}
				if labels[in.SiteID] != want {
					t.Fatalf("site %d labeled %d, want %d", in.SiteID, labels[in.SiteID], want)
				}
			}
		}
	}
	if pos == 0 || pos == len(labels) {
		t.Fatalf("degenerate labeling: %d of %d positive", pos, len(labels))
	}
}

func TestTrainRelabeledProducesRankedConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search")
	}
	m, feats := relabelFixture(t)
	grid := svm.LogGrid(1, 1e3, 3, 1e-3, 1, 3)
	cfgs, err := TrainRelabeled(context.Background(), m, feats, Config{}, grid, svm.SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 9 {
		t.Fatalf("got %d configs, want 9", len(cfgs))
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].CV.FScore > cfgs[i-1].CV.FScore {
			t.Fatal("configs not sorted by F-score")
		}
	}
	if cfgs[0].CV.FScore <= 0 {
		t.Fatalf("best F-score %v: static labels should be learnable from the features", cfgs[0].CV.FScore)
	}

	// Worker count must not leak into the ranking here either.
	again, err := TrainRelabeled(context.Background(), m, feats, Config{}, grid, svm.SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relabelBits(cfgs), relabelBits(again)) {
		t.Fatal("relabel training not deterministic across worker counts")
	}
}

func relabelBits(cfgs []svm.Config) [][2]uint64 {
	out := make([][2]uint64, len(cfgs))
	for i, c := range cfgs {
		out[i] = [2]uint64{math.Float64bits(c.CV.FScore), math.Float64bits(c.Params.C)}
	}
	return out
}
