// Package baseline implements a static, data-flow-driven approximation
// of the original Shoestring policy (Feng et al., ASPLOS 2010). The
// IPAS paper compares against Shoestring by re-training its classifier
// on symptom labels (§5.3) because the original is not public; this
// package provides the other road: the original's *analysis* shape —
// no fault injection, no learning — so the two baselines can be
// compared against each other.
//
// Shoestring's premise: faults in instructions whose values quickly
// reach "symptom-prone" consumers (memory addresses, division
// denominators) crash on their own and need no protection; instructions
// whose values reach "high-value" consumers (stores, call arguments,
// program outputs) are silently dangerous and get duplicated.
package baseline

import "ipas/internal/ir"

// Config tunes the static analysis.
type Config struct {
	// SymptomHops is the maximum def-use distance at which feeding a
	// symptom-prone operand classifies an instruction as
	// symptom-generating (the original uses a small constant; default 2).
	SymptomHops int
	// ValueHops bounds the search from an instruction to a high-value
	// consumer (default: unbounded within the function).
	ValueHops int
}

func (c Config) withDefaults() Config {
	if c.SymptomHops <= 0 {
		c.SymptomHops = 2
	}
	if c.ValueHops <= 0 {
		c.ValueHops = 1 << 20
	}
	return c
}

// Analysis is the per-module classification result.
type Analysis struct {
	// SymptomGenerating marks instructions whose corruption is likely
	// to raise an architectural symptom quickly.
	SymptomGenerating map[*ir.Instr]bool
	// HighValue marks instructions whose values reach stores, call
	// arguments, or outputs.
	HighValue map[*ir.Instr]bool
}

// Analyze runs the static classification over every function.
func Analyze(m *ir.Module, cfg Config) *Analysis {
	cfg = cfg.withDefaults()
	a := &Analysis{
		SymptomGenerating: map[*ir.Instr]bool{},
		HighValue:         map[*ir.Instr]bool{},
	}
	// symptomDist[v] = min def-use hops from v's definition to a
	// symptom-prone use; computed by backwards propagation from the
	// consumers.
	symptomDist := map[*ir.Instr]int{}
	var work []*ir.Instr

	relax := func(in *ir.Instr, d int) {
		if cur, ok := symptomDist[in]; !ok || d < cur {
			symptomDist[in] = d
			work = append(work, in)
		}
	}

	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				for oi, op := range in.Operands() {
					d, ok := op.(*ir.Instr)
					if !ok {
						continue
					}
					if symptomProneUse(in, oi) {
						relax(d, 1)
					}
				}
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		d := symptomDist[in]
		if d >= cfg.SymptomHops {
			continue
		}
		for _, op := range in.Operands() {
			if def, ok := op.(*ir.Instr); ok {
				relax(def, d+1)
			}
		}
	}
	for in, d := range symptomDist {
		if d <= cfg.SymptomHops {
			a.SymptomGenerating[in] = true
		}
	}

	// High value: forward reachability to stores/call args/outputs.
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if !in.HasResult() {
					continue
				}
				if reachesHighValue(in, cfg.ValueHops, map[*ir.Instr]bool{}) {
					a.HighValue[in] = true
				}
			}
		}
	}
	return a
}

// symptomProneUse reports whether operand oi of instruction in is a
// position where corruption tends to trap: the pointer operand of a
// memory access, or the denominator of an integer division.
func symptomProneUse(in *ir.Instr, oi int) bool {
	switch in.Op() {
	case ir.OpLoad:
		return oi == 0
	case ir.OpStore:
		return oi == 1
	case ir.OpAtomicRMW:
		return oi == 0
	case ir.OpGEP:
		return oi == 0 // base pointer; the result feeds a memory access
	case ir.OpSDiv, ir.OpSRem:
		return oi == 1
	}
	return false
}

// reachesHighValue walks def-use edges to find a store value operand, a
// call argument, or a return.
func reachesHighValue(in *ir.Instr, budget int, seen map[*ir.Instr]bool) bool {
	if budget <= 0 || seen[in] {
		return false
	}
	seen[in] = true
	for _, u := range in.Users() {
		switch u.Op() {
		case ir.OpStore:
			if u.Operand(0) == in {
				return true
			}
		case ir.OpCall, ir.OpRet:
			return true
		}
		if u.HasResult() && reachesHighValue(u, budget-1, seen) {
			return true
		}
	}
	return false
}

// Policy returns the Shoestring protection predicate for dup.Protect:
// duplicate high-value instructions that are not symptom-generating.
func Policy(m *ir.Module, cfg Config) func(*ir.Instr) bool {
	a := Analyze(m, cfg)
	return func(in *ir.Instr) bool {
		return a.HighValue[in] && !a.SymptomGenerating[in]
	}
}
