package baseline

import (
	"testing"

	"ipas/internal/dup"
	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
	"ipas/internal/workloads"
)

func TestAnalyzeClassifiesAddressChains(t *testing.T) {
	src := `
func @main() void {
entry:
  %buf = alloca f64, 16
  %i = add i64 1, 2
  %j = mul i64 %i, 2
  %p = gep f64* %buf, %j
  %v = load f64* %p
  %w = fmul f64 %v, 2.5
  store f64 %w, %p
  ret void
}
`
	m := ir.MustParse(src)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ir.Instr{}
	for _, b := range m.FuncByName("main").Blocks() {
		for _, in := range b.Instrs() {
			if in.HasResult() {
				byName[in.Name()] = in
			}
		}
	}
	a := Analyze(m, Config{SymptomHops: 2})
	// %p feeds the load/store addresses directly; %j feeds %p.
	if !a.SymptomGenerating[byName["p"]] || !a.SymptomGenerating[byName["j"]] {
		t.Error("address chain not classified symptom-generating")
	}
	// %w only feeds a store value: high value, not symptom-generating.
	if a.SymptomGenerating[byName["w"]] {
		t.Error("store value classified symptom-generating")
	}
	if !a.HighValue[byName["w"]] || !a.HighValue[byName["v"]] {
		t.Error("value chain to store not classified high-value")
	}
	pol := Policy(m, Config{})
	if pol(byName["p"]) {
		t.Error("policy protects an address computation Shoestring leaves to symptoms")
	}
	if !pol(byName["w"]) {
		t.Error("policy skips a high-value computation")
	}
}

func TestStaticShoestringPreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		orig, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		prot := ir.CloneModule(orig)
		if _, err := dup.Protect(prot, Policy(prot, Config{})); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run := func(m *ir.Module) *interp.Result {
			p, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := interp.Run(p, interp.Config{MaxInstrs: 500_000_000})
			if res.Trap != interp.TrapNone {
				t.Fatalf("seed %d: trap %v", seed, res.Trap)
			}
			return res
		}
		r1, r2 := run(orig), run(prot)
		if len(r1.OutputF) != len(r2.OutputF) || len(r1.OutputI) != len(r2.OutputI) {
			t.Fatalf("seed %d: output shape changed", seed)
		}
		for i := range r1.OutputI {
			if r1.OutputI[i] != r2.OutputI[i] {
				t.Fatalf("seed %d: semantics changed", seed)
			}
		}
	}
}

func TestStaticShoestringReducesSOC(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns")
	}
	spec := workloads.MustGet("FFT", 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	campaign := func(mod *ir.Module, seed int64) *fault.CampaignResult {
		p, err := fault.Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&fault.Campaign{Prog: p, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: seed}).Run(120)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unprot := campaign(m, 31)

	prot := ir.CloneModule(m)
	st, err := dup.Protect(prot, Policy(prot, Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated == 0 || st.Duplicated == st.Candidates {
		t.Fatalf("static policy degenerate: %d of %d", st.Duplicated, st.Candidates)
	}
	protected := campaign(prot, 32)

	uSOC := unprot.Proportion(fault.OutcomeSOC)
	pSOC := protected.Proportion(fault.OutcomeSOC)
	t.Logf("static Shoestring: dup %.1f%%, SOC %.1f%% -> %.1f%%, slowdown %.2f",
		st.DuplicatedPercent(), 100*uSOC, 100*pSOC,
		float64(protected.GoldenDyn)/float64(unprot.GoldenDyn))
	if pSOC >= uSOC {
		t.Errorf("static Shoestring failed to reduce SOC: %.1f%% -> %.1f%%", 100*uSOC, 100*pSOC)
	}
	if protected.Counts[fault.OutcomeDetected] == 0 {
		t.Error("no detections")
	}
}
