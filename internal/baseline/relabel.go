package baseline

// The IPAS paper's learned baseline re-trains the classifier on
// symptom labels gathered from fault injection (§5.3). This file adds
// the third road between the two baselines this package discusses:
// relabeling the training set from the *static* analysis — no fault
// injection at all — and distilling it into the same classifier form
// the learned pipeline produces, via the shared parallel grid search.
// That makes "static Shoestring" directly comparable to the learned
// variants on training cost and classifier quality.

import (
	"context"
	"errors"

	"ipas/internal/ir"
	"ipas/internal/svm"
)

// SiteLabels runs the static analysis and labels every instrumentation
// site ±1: +1 where the defining instruction is symptom-generating
// (faults there likely trap on their own), -1 elsewhere. The vector is
// indexed by SiteID, aligned with the per-site feature table.
func SiteLabels(m *ir.Module, cfg Config) []int {
	a := Analyze(m, cfg)
	labels := make([]int, m.NumSites())
	for i := range labels {
		labels[i] = -1
	}
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.SiteID >= 0 && in.SiteID < len(labels) && a.SymptomGenerating[in] {
					labels[in.SiteID] = 1
				}
			}
		}
	}
	return labels
}

// RelabelProblem assembles the relabeled training set: one scaled
// feature vector per site that has features (see core.SiteFeaturesOf),
// labeled by the static analysis. It returns the problem, the fitted
// scaler, and the site index behind each problem row.
func RelabelProblem(m *ir.Module, feats [][]float64, cfg Config) (*svm.Problem, *svm.Scaler, []int, error) {
	if len(feats) != m.NumSites() {
		return nil, nil, nil, errors.New("baseline: feature table does not match module sites")
	}
	labels := SiteLabels(m, cfg)
	var raw [][]float64
	var y, sites []int
	for site, f := range feats {
		if f == nil {
			continue
		}
		raw = append(raw, f)
		y = append(y, labels[site])
		sites = append(sites, site)
	}
	if len(raw) == 0 {
		return nil, nil, nil, errors.New("baseline: module has no featured sites")
	}
	scaler := svm.FitScaler(raw)
	return &svm.Problem{X: scaler.ApplyAll(raw), Y: y}, scaler, sites, nil
}

// TrainRelabeled cross-validates the (C, γ) grid on the static symptom
// labels through the shared parallel training pipeline (worker pool,
// per-γ kernel cache, deterministic ranking) and returns the ranked
// configurations. Cancellation follows the pipeline's partial-results
// contract: the configurations evaluated so far come back with ctx's
// error.
func TrainRelabeled(ctx context.Context, m *ir.Module, feats [][]float64, cfg Config, grid svm.GridSpec, opts svm.SearchOptions) ([]svm.Config, error) {
	prob, _, _, err := RelabelProblem(m, feats, cfg)
	if err != nil {
		return nil, err
	}
	pos, neg := prob.Count()
	if pos == 0 || neg == 0 {
		return nil, errors.New("baseline: static analysis labeled every site the same class")
	}
	grid.WeightByClassFreq = true
	return svm.GridSearchContext(ctx, prob, grid, opts)
}
