package dup

import (
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

const testProg = `
func norm(n int, v *float) float {
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		s = s + v[i] * v[i];
	}
	return sqrt(s);
}
func main() {
	var n int = 64;
	var v *float = malloc_f64(n);
	var seed int = 12345;
	for (var i int = 0; i < n; i = i + 1) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		v[i] = float(seed % 1000) / 997.0;
	}
	out_f64(0, norm(n, v));
	var ones int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (v[i] > 0.5) {
			ones = ones + 1;
		}
	}
	out_i64(0, ones);
}
`

func mustRun(t *testing.T, m *ir.Module, cfg interp.Config) *interp.Result {
	t.Helper()
	p, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return interp.Run(p, cfg)
}

func TestFullDuplicationPreservesSemantics(t *testing.T) {
	orig, err := lang.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	prot := ir.CloneModule(orig)
	st, err := FullDuplication(prot)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated != st.Candidates || st.Duplicated == 0 {
		t.Fatalf("full dup: duplicated %d of %d candidates", st.Duplicated, st.Candidates)
	}
	r1 := mustRun(t, orig, interp.Config{})
	r2 := mustRun(t, prot, interp.Config{})
	if r1.Trap != interp.TrapNone || r2.Trap != interp.TrapNone {
		t.Fatalf("traps: %v / %v (%s)", r1.Trap, r2.Trap, r2.TrapMsg)
	}
	if r1.OutputF[0] != r2.OutputF[0] || r1.OutputI[0] != r2.OutputI[0] {
		t.Fatalf("output changed: %v/%v vs %v/%v", r1.OutputF, r1.OutputI, r2.OutputF, r2.OutputI)
	}
	if r2.TotalDyn <= r1.TotalDyn {
		t.Fatalf("protected run not slower: %d vs %d", r2.TotalDyn, r1.TotalDyn)
	}
	slowdown := float64(r2.TotalDyn) / float64(r1.TotalDyn)
	if slowdown > 3.5 {
		t.Fatalf("full-duplication slowdown %.2f implausibly high", slowdown)
	}
}

func TestSelectiveProtectSubset(t *testing.T) {
	orig, err := lang.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	// Protect only multiplications.
	prot := ir.CloneModule(orig)
	st, err := Protect(prot, func(in *ir.Instr) bool {
		return in.Op() == ir.OpFMul || in.Op() == ir.OpMul
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated == 0 || st.Duplicated >= st.Candidates {
		t.Fatalf("selective dup: %d of %d", st.Duplicated, st.Candidates)
	}
	r1 := mustRun(t, orig, interp.Config{})
	r2 := mustRun(t, prot, interp.Config{})
	if r2.Trap != interp.TrapNone {
		t.Fatalf("trap: %v %s", r2.Trap, r2.TrapMsg)
	}
	if r1.OutputF[0] != r2.OutputF[0] {
		t.Fatal("selective protection changed semantics")
	}

	full := ir.CloneModule(orig)
	if _, err := FullDuplication(full); err != nil {
		t.Fatal(err)
	}
	r3 := mustRun(t, full, interp.Config{})
	if !(r1.TotalDyn < r2.TotalDyn && r2.TotalDyn < r3.TotalDyn) {
		t.Fatalf("overhead ordering violated: %d, %d, %d", r1.TotalDyn, r2.TotalDyn, r3.TotalDyn)
	}
}

func TestDuplicationDetectsInjectedFaults(t *testing.T) {
	orig, err := lang.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	prot := ir.CloneModule(orig)
	if _, err := FullDuplication(prot); err != nil {
		t.Fatal(err)
	}
	// Injectable: only original duplicated instructions — every such
	// fault must be caught (detected) or masked by later logic, never
	// silently corrupt output.
	injectable := func(in *ir.Instr) bool {
		return in.Prot == ir.ProtNone && in.Shadow != nil
	}
	p, err := interp.Compile(prot, injectable)
	if err != nil {
		t.Fatal(err)
	}
	golden := interp.Run(p, interp.Config{})
	if golden.Trap != interp.TrapNone {
		t.Fatalf("golden trap: %v", golden.Trap)
	}
	total := golden.Injectable[0]
	if total == 0 {
		t.Fatal("no injectable instances")
	}
	detected, other := 0, 0
	step := total/200 + 1
	for idx := int64(0); idx < total; idx += step {
		res := interp.Run(p, interp.Config{
			Fault:     &interp.FaultPlan{Rank: 0, Index: idx, Bit: int(idx % 63)},
			MaxInstrs: golden.TotalDyn * 20,
		})
		switch {
		case res.Trap == interp.TrapDetected:
			detected++
		case res.Trap == interp.TrapNone:
			// The fault must not have corrupted the output: a bit flip
			// on a duplicated instruction is either detected or had no
			// effect on the comparison (flip of an unused high bit of
			// an i1, identical value, ...).
			if res.OutputF[0] != golden.OutputF[0] || res.OutputI[0] != golden.OutputI[0] {
				t.Fatalf("instance %d: silent corruption escaped full duplication", idx)
			}
		default:
			other++ // crash symptoms (e.g. corrupted GEP) are fine
		}
	}
	if detected == 0 {
		t.Fatal("no fault was detected by duplication")
	}
}

func TestProtectIdempotentStats(t *testing.T) {
	m, err := lang.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	clone := ir.CloneModule(m)
	st1, err := Protect(clone, func(*ir.Instr) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if st1.Duplicated != 0 || st1.Checks != 0 || st1.ProtectedInstrs != st1.OriginalInstrs {
		t.Fatalf("no-op protection changed module: %+v", st1)
	}
	if st1.DuplicatedPercent() != 0 {
		t.Fatal("DuplicatedPercent should be 0")
	}
}
