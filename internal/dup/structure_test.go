package dup

import (
	"strings"
	"testing"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

// TestCheckChainStructure inspects the protected IR: shadows sit right
// after their originals, checks live in dedicated chain blocks that
// funnel into a per-function trap block, and protection code carries
// the SiteID of the instruction it protects.
func TestCheckChainStructure(t *testing.T) {
	m, err := lang.Compile(`
func main() {
	var a float = 1.5;
	var b float = 2.5;
	var c float = a * b + a / b;
	var k int = 7;
	var j int = k * 3 - 1;
	out_f64(0, c);
	out_i64(0, j);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FullDuplication(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks == 0 {
		t.Fatal("no checks inserted")
	}

	fn := m.FuncByName("main")
	var trapBlocks, chkBlocks int
	for _, b := range fn.Blocks() {
		if strings.HasPrefix(b.Name(), "dup.trap") {
			trapBlocks++
			term := b.Terminator()
			if term.Op() != ir.OpTrap || term.Prot != ir.ProtCheck {
				t.Fatalf("trap block malformed: %s", term)
			}
		}
		if strings.Contains(b.Name(), ".chk") {
			chkBlocks++
			term := b.Terminator()
			if term.Op() != ir.OpCondBr {
				t.Fatalf("check block must end in condbr, got %s", term)
			}
			if !strings.HasPrefix(term.Targets[0].Name(), "dup.trap") {
				t.Fatalf("check true-edge must go to the trap block, goes to %s", term.Targets[0].Name())
			}
		}
	}
	if trapBlocks != 1 {
		t.Fatalf("%d trap blocks, want exactly 1 per function", trapBlocks)
	}
	if chkBlocks != st.Checks {
		t.Fatalf("%d check blocks for %d checks", chkBlocks, st.Checks)
	}

	for _, b := range fn.Blocks() {
		for _, in := range b.Instrs() {
			switch in.Prot {
			case ir.ProtDup:
				if in.Shadow != nil {
					t.Fatal("shadow of a shadow")
				}
				// The original must be the immediately preceding
				// instruction and must link back to this shadow.
				idx := b.Index(in)
				if idx == 0 {
					t.Fatalf("shadow %s at block head", in)
				}
				orig := b.Instrs()[idx-1]
				if orig.Shadow != in || orig.SiteID != in.SiteID {
					t.Fatalf("shadow %s not adjacent to its original", in)
				}
				if orig.Op() != in.Op() {
					t.Fatalf("shadow opcode mismatch: %s vs %s", orig.Op(), in.Op())
				}
			case ir.ProtCheck:
				if in.SiteID < 0 {
					t.Fatalf("check %s without a protected SiteID", in)
				}
			}
		}
	}
}

// TestShadowOperandsUseShadows: within a block, a shadow consumes the
// shadow of its operand when one exists (independent recomputation).
func TestShadowOperandsUseShadows(t *testing.T) {
	m := ir.MustParse(`
func @main() i64 {
entry:
  %a = add i64 1, 2
  %b = mul i64 %a, 3
  %c = add i64 %b, %a
  ret i64 %c
}
`)
	m.AssignSiteIDs()
	if _, err := FullDuplication(m); err != nil {
		t.Fatal(err)
	}
	fn := m.FuncByName("main")
	for _, b := range fn.Blocks() {
		for _, in := range b.Instrs() {
			if in.Prot != ir.ProtDup {
				continue
			}
			for _, op := range in.Operands() {
				d, ok := op.(*ir.Instr)
				if !ok {
					continue
				}
				if d.Prot == ir.ProtNone && d.Shadow != nil {
					t.Fatalf("shadow %s consumes original %%%s instead of its shadow", in, d.Name())
				}
			}
		}
	}
}

// TestPathEndsMinimal: in a straight-line chain a->b->c only the chain
// end c gets a check (one duplication path).
func TestPathEndsMinimal(t *testing.T) {
	m := ir.MustParse(`
func @main() i64 {
entry:
  %a = add i64 1, 2
  %b = mul i64 %a, 3
  %c = sub i64 %b, 4
  ret i64 %c
}
`)
	m.AssignSiteIDs()
	st, err := FullDuplication(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks != 1 {
		t.Fatalf("straight-line chain produced %d checks, want 1", st.Checks)
	}
	if st.Duplicated != 3 {
		t.Fatalf("duplicated %d, want 3", st.Duplicated)
	}
}

// TestIndependentPathsEachChecked: two independent computations in one
// block form two duplication paths, each with its own check (§4.4).
func TestIndependentPathsEachChecked(t *testing.T) {
	m := ir.MustParse(`
func @main() i64 {
entry:
  %a = add i64 1, 2
  %b = mul i64 %a, 3
  %x = add i64 10, 20
  %y = mul i64 %x, 30
  %r = add i64 %b, %y
  ret i64 %r
}
`)
	m.AssignSiteIDs()
	st, err := FullDuplication(m)
	if err != nil {
		t.Fatal(err)
	}
	// All five feed %r, which is the single path end... %r uses both
	// chains, so there is exactly one path end: %r.
	if st.Checks != 1 {
		t.Fatalf("%d checks, want 1 (both chains merge into %%r)", st.Checks)
	}

	m2 := ir.MustParse(`
func @f(i64* %p, i64* %q) void {
entry:
  %a = add i64 1, 2
  %b = mul i64 10, 20
  store i64 %a, %p
  store i64 %b, %q
  ret void
}
func @main() i64 {
entry:
  %m = alloca i64, 2
  %m2 = gep i64* %m, 1
  call void @f(i64* %m, i64* %m2)
  ret i64 0
}
`)
	m2.AssignSiteIDs()
	st2, err := FullDuplication(m2)
	if err != nil {
		t.Fatal(err)
	}
	// In @f, %a and %b are two independent path ends (their only users
	// are stores); @main adds one more for the gep chain.
	if st2.Checks != 3 {
		t.Fatalf("%d checks, want 3 (two independent paths in @f, one in @main)", st2.Checks)
	}
}
