package dup

import (
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

// TestProtectedModuleTextRoundtrip mirrors the cmd/ipas -save-protected
// + irun flow: a protected module printed to text, reparsed, and
// re-executed must behave identically on clean runs and must still
// catch injected faults (the Prot metadata is advisory; the checks are
// real instructions).
func TestProtectedModuleTextRoundtrip(t *testing.T) {
	orig, err := lang.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	prot := ir.CloneModule(orig)
	if _, err := FullDuplication(prot); err != nil {
		t.Fatal(err)
	}

	text := ir.Print(prot)
	reparsed, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if err := ir.Verify(reparsed); err != nil {
		t.Fatal(err)
	}
	reparsed.AssignSiteIDs()

	r1 := mustRun(t, prot, interp.Config{})
	r2 := mustRun(t, reparsed, interp.Config{})
	if r1.Trap != interp.TrapNone || r2.Trap != interp.TrapNone {
		t.Fatalf("traps: %v / %v", r1.Trap, r2.Trap)
	}
	if r1.OutputF[0] != r2.OutputF[0] || r1.TotalDyn != r2.TotalDyn {
		t.Fatal("reparsed protected module behaves differently")
	}

	// Fault campaign against the reparsed module must still detect.
	// (Prot tags are comments in the text format, so after reparsing
	// every value-producing instruction is injectable — a superset of
	// the usual model; detection still must fire.)
	p, err := fault.Compile(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	verify := func(golden, faulty *interp.Result) bool {
		return len(faulty.OutputF) == len(golden.OutputF) &&
			len(faulty.OutputF) > 0 &&
			faulty.OutputF[0] == golden.OutputF[0]
	}
	res, err := (&fault.Campaign{Prog: p, Verify: verify, Seed: 77}).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[fault.OutcomeDetected] == 0 {
		t.Fatal("reparsed protected module never detects")
	}
}
