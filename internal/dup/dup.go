// Package dup implements the paper's code-duplication protection
// (§4.4): selected computational instructions are duplicated into
// shadow copies that consume shadow operands, duplication paths are
// derived from use-def chains within each basic block, and a comparison
// of the original and shadow values is inserted at the end of every
// duplication path; a mismatch branches to a trap that the runtime
// reports as "detected by duplication".
//
// Loads, stores, calls, allocas and control flow are never duplicated
// (memory is ECC-protected and control flow is out of scope, §3), and
// duplication paths never cross basic-block boundaries.
package dup

import (
	"ipas/internal/ir"
)

// Duplicable reports whether the instruction can be protected by
// duplication: pure computational instructions whose re-execution is
// side-effect free and whose result is comparable.
func Duplicable(in *ir.Instr) bool {
	op := in.Op()
	switch {
	case op.IsBinary(), op.IsCast(), op == ir.OpICmp, op == ir.OpFCmp,
		op == ir.OpGEP, op == ir.OpSelect:
		return true
	}
	return false
}

// Stats summarizes what a protection pass did.
type Stats struct {
	// Candidates is the number of duplicable original instructions.
	Candidates int
	// Duplicated is the number of shadow copies inserted.
	Duplicated int
	// Checks is the number of duplication-path checks inserted.
	Checks int
	// OriginalInstrs is the static instruction count before the pass.
	OriginalInstrs int
	// ProtectedInstrs is the static instruction count after the pass.
	ProtectedInstrs int
}

// DuplicatedPercent is the percentage of duplicable instructions that
// were protected (Figure 7's metric).
func (s Stats) DuplicatedPercent() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return 100 * float64(s.Duplicated) / float64(s.Candidates)
}

// Options tunes the protection pass.
type Options struct {
	// EagerChecks inserts a comparison after EVERY duplicated
	// instruction instead of only at duplication-path ends. This is
	// the ablation knob for the paper's §4.4 design choice ("we add
	// comparison instructions at the end of duplication paths" rather
	// than per instruction): eager checking catches corruption sooner
	// but pays one check per instruction.
	EagerChecks bool
}

// Protect applies selective duplication in place: every original
// instruction for which policy returns true (and that is Duplicable)
// gets a shadow copy; path-end checks are inserted before each block's
// terminator. The module must have SiteIDs assigned; inserted code
// inherits the SiteID of the instruction it protects.
func Protect(m *ir.Module, policy func(*ir.Instr) bool) (Stats, error) {
	return ProtectWithOptions(m, policy, Options{})
}

// ProtectWithOptions is Protect with explicit pass options.
func ProtectWithOptions(m *ir.Module, policy func(*ir.Instr) bool, opts Options) (Stats, error) {
	var st Stats
	st.OriginalInstrs = m.NumInstrs()
	for _, f := range m.Funcs() {
		if f.Builtin {
			continue
		}
		protectFunc(f, policy, opts, &st)
	}
	st.ProtectedInstrs = m.NumInstrs()
	return st, ir.Verify(m)
}

// FullDuplication is SWIFT-style full protection: duplicate every
// duplicable instruction.
func FullDuplication(m *ir.Module) (Stats, error) {
	return Protect(m, func(*ir.Instr) bool { return true })
}

func protectFunc(f *ir.Func, policy func(*ir.Instr) bool, opts Options, st *Stats) {
	var trapBB *ir.Block // lazily created per function

	// Snapshot the block list: we append chain blocks while iterating.
	blocks := append([]*ir.Block(nil), f.Blocks()...)
	for _, b := range blocks {
		// Phase 1: choose the duplication set of this block.
		var dups []*ir.Instr
		for _, in := range b.Instrs() {
			if in.Prot != ir.ProtNone {
				continue
			}
			if !Duplicable(in) {
				continue
			}
			st.Candidates++
			if policy(in) {
				dups = append(dups, in)
			}
		}
		if len(dups) == 0 {
			continue
		}

		// Phase 2: insert shadow copies right after their originals,
		// consuming shadow operands where available (use-def chains
		// within the block).
		shadow := map[ir.Value]*ir.Instr{}
		for _, in := range dups {
			sh := cloneShadow(in, shadow)
			b.InsertAfter(sh, in)
			shadow[in] = sh
			in.Shadow = sh
			st.Duplicated++
		}

		// Phase 3: decide where checks go. The paper's placement is at
		// duplication-path ends — duplicated instructions with no
		// duplicated user later in the same block; the eager ablation
		// checks every duplicated instruction.
		var ends []*ir.Instr
		if opts.EagerChecks {
			ends = dups
		} else {
			for _, in := range dups {
				isEnd := true
				for _, u := range in.Users() {
					if u.Prot != ir.ProtNone {
						continue
					}
					if u.Block() == b && u.Shadow != nil {
						isEnd = false
						break
					}
				}
				if isEnd {
					ends = append(ends, in)
				}
			}
		}
		if len(ends) == 0 {
			continue
		}
		if trapBB == nil {
			trapBB = f.NewBlock("dup.trap")
			tb := ir.NewBuilder(trapBB)
			tr := tb.Trap(interpTrapDetected)
			tr.Prot = ir.ProtCheck
		}
		insertChecks(f, b, ends, shadow, trapBB)
		st.Checks += len(ends)
	}
}

// interpTrapDetected matches interp.TrapCodeDetected without importing
// the interpreter (the IR layer must not depend on execution).
const interpTrapDetected = 1

// cloneShadow copies in, replacing operands that have shadows.
func cloneShadow(in *ir.Instr, shadow map[ir.Value]*ir.Instr) *ir.Instr {
	ops := make([]ir.Value, in.NumOperands())
	for i := 0; i < in.NumOperands(); i++ {
		op := in.Operand(i)
		if sh, ok := shadow[op]; ok {
			ops[i] = sh
		} else {
			ops[i] = op
		}
	}
	sh := ir.NewInstr(in.Op(), in.Type(), ops)
	sh.Pred = in.Pred
	sh.SetName(in.Name() + ".dup")
	sh.SiteID = in.SiteID
	sh.Prot = ir.ProtDup
	return sh
}

// insertChecks builds the check chain for the block's path ends:
//
//	b:        ... br chk0
//	chk0:     cmp e0 vs shadow(e0); condbr mismatch -> trap, chk1
//	...
//	chkN-1:   cmp ...; condbr mismatch -> trap, tail
//	tail:     <original terminator>
func insertChecks(f *ir.Func, b *ir.Block, ends []*ir.Instr, shadow map[ir.Value]*ir.Instr, trapBB *ir.Block) {
	term := b.Terminator()
	tail := ir.SplitBlockBefore(b, term)
	// b now ends in "br tail"; mark that br as protection plumbing.
	br := b.Terminator()
	br.Prot = ir.ProtCheck
	br.SiteID = ends[0].SiteID

	// Build chain in reverse so each check knows its continuation.
	succ := tail
	for i := len(ends) - 1; i >= 0; i-- {
		e := ends[i]
		sh := shadow[e]
		chk := f.NewBlock(b.Name() + ".chk")
		cb := ir.NewBuilder(chk)
		var a, bv ir.Value = e, sh
		if e.Type().IsFloat() {
			// Compare bit patterns so identical NaNs do not trip the
			// check on fault-free runs.
			ba := cb.Cast(ir.OpBitcast, e, ir.I64)
			bb := cb.Cast(ir.OpBitcast, sh, ir.I64)
			markCheck(ba, e)
			markCheck(bb, e)
			a, bv = ba, bb
		}
		ne := cb.ICmp(ir.PredNE, a, bv)
		markCheck(ne, e)
		cbr := cb.CondBr(ne, trapBB, succ)
		markCheck(cbr, e)
		succ = chk
	}
	br.Targets[0] = succ
}

func markCheck(in *ir.Instr, protects *ir.Instr) {
	in.Prot = ir.ProtCheck
	in.SiteID = protects.SiteID
}
