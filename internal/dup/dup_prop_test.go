package dup

import (
	"math"
	"testing"

	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

// TestFullDuplicationPreservesRandomPrograms is the pass's core
// soundness property: on a fault-free run, a fully duplicated random
// program must produce bitwise-identical outputs to the original and
// never fire a check.
func TestFullDuplicationPreservesRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		src := lang.RandomProgram(seed)
		orig, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prot := ir.CloneModule(orig)
		if _, err := FullDuplication(prot); err != nil {
			t.Fatalf("seed %d: protect: %v", seed, err)
		}
		if err := ir.Verify(prot); err != nil {
			t.Fatalf("seed %d: protected module invalid: %v", seed, err)
		}
		r1 := run(t, orig, seed, "original")
		r2 := run(t, prot, seed, "protected")
		if !bitEqual(r1, r2) {
			t.Fatalf("seed %d: duplication changed program behaviour", seed)
		}
		if r2.TotalDyn <= r1.TotalDyn {
			t.Fatalf("seed %d: no duplication overhead (%d vs %d)", seed, r2.TotalDyn, r1.TotalDyn)
		}
	}
}

// TestRandomPolicyPreservesRandomPrograms: the same property for
// arbitrary (pseudo-random) protection subsets, which exercises
// partial duplication paths and shadow-operand plumbing.
func TestRandomPolicyPreservesRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		orig, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prot := ir.CloneModule(orig)
		state := uint64(seed)
		if _, err := Protect(prot, func(in *ir.Instr) bool {
			state = state*6364136223846793005 + 1442695040888963407
			return state>>62 == 0 // protect ~25% of candidates
		}); err != nil {
			t.Fatalf("seed %d: protect: %v", seed, err)
		}
		r1 := run(t, orig, seed, "original")
		r2 := run(t, prot, seed, "protected")
		if !bitEqual(r1, r2) {
			t.Fatalf("seed %d: selective duplication changed behaviour", seed)
		}
	}
}

// TestNoSilentEscapeOnProtectedSites: flipping any bit of a duplicated
// instruction's result must never silently corrupt output — the run
// either detects, crashes, or masks back to identical output. Sampled
// over random programs, instances and bits.
func TestNoSilentEscapeOnProtectedSites(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling campaign")
	}
	for seed := int64(1); seed <= 6; seed++ {
		orig, err := lang.Compile(lang.RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prot := ir.CloneModule(orig)
		if _, err := FullDuplication(prot); err != nil {
			t.Fatal(err)
		}
		// Inject only into originals that have shadows.
		injectable := func(in *ir.Instr) bool {
			return in.Prot == ir.ProtNone && in.Shadow != nil
		}
		p, err := interp.Compile(prot, injectable)
		if err != nil {
			t.Fatal(err)
		}
		golden := interp.Run(p, interp.Config{MaxInstrs: 500_000_000})
		if golden.Trap != interp.TrapNone {
			t.Fatalf("seed %d: golden trap %v", seed, golden.Trap)
		}
		total := golden.Injectable[0]
		if total == 0 {
			continue
		}
		step := total/60 + 1
		rng := uint64(seed * 977)
		for idx := int64(0); idx < total; idx += step {
			rng = rng*6364136223846793005 + 1
			bit := int(rng % 64)
			res := interp.Run(p, interp.Config{
				Fault:     &interp.FaultPlan{Rank: 0, Index: idx, Bit: bit},
				MaxInstrs: golden.TotalDyn*10 + 1_000_000,
			})
			if res.Trap == interp.TrapNone && !bitEqual(golden, res) {
				t.Fatalf("seed %d instance %d bit %d: silent escape through full duplication",
					seed, idx, bit)
			}
		}
	}
}

// TestInjectablePredicateConsistency: the fault package's injectable
// predicate must reject checks and accept shadows.
func TestInjectablePredicateConsistency(t *testing.T) {
	m, err := lang.Compile(lang.RandomProgram(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FullDuplication(m); err != nil {
		t.Fatal(err)
	}
	var shadows, checks int
	for _, f := range m.Funcs() {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				switch in.Prot {
				case ir.ProtDup:
					shadows++
					if in.HasResult() && !fault.Injectable(in) {
						t.Fatalf("shadow not injectable: %s", in)
					}
				case ir.ProtCheck:
					checks++
					if fault.Injectable(in) {
						t.Fatalf("check instruction injectable: %s", in)
					}
				}
			}
		}
	}
	if shadows == 0 || checks == 0 {
		t.Fatal("no protection code found")
	}
}

func run(t *testing.T, m *ir.Module, seed int64, what string) *interp.Result {
	t.Helper()
	p, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatalf("seed %d: %s: %v", seed, what, err)
	}
	res := interp.Run(p, interp.Config{MaxInstrs: 500_000_000})
	if res.Trap != interp.TrapNone {
		t.Fatalf("seed %d: %s: trap %v (%s)", seed, what, res.Trap, res.TrapMsg)
	}
	return res
}

func bitEqual(a, b *interp.Result) bool {
	if len(a.OutputF) != len(b.OutputF) || len(a.OutputI) != len(b.OutputI) {
		return false
	}
	for i := range a.OutputF {
		if math.Float64bits(a.OutputF[i]) != math.Float64bits(b.OutputF[i]) {
			return false
		}
	}
	for i := range a.OutputI {
		if a.OutputI[i] != b.OutputI[i] {
			return false
		}
	}
	return true
}
