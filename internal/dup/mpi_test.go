package dup

import (
	"testing"

	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/workloads"
)

// TestProtectedWorkloadsMultiRank: full duplication must compose with
// the MPI runtime — a protected parallel run must pass the workload's
// verification against the unprotected single-rank golden and show the
// same slowdown character at every rank count.
func TestProtectedWorkloadsMultiRank(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank workload runs")
	}
	for _, name := range []string{"HPCCG", "IS"} {
		t.Run(name, func(t *testing.T) {
			spec := workloads.MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prot := ir.CloneModule(m)
			if _, err := FullDuplication(prot); err != nil {
				t.Fatal(err)
			}
			unprot, err := interp.Compile(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			protProg, err := interp.Compile(prot, nil)
			if err != nil {
				t.Fatal(err)
			}
			golden := interp.Run(unprot, spec.BaseConfig(1))
			if golden.Trap != interp.TrapNone {
				t.Fatal(golden.Trap)
			}
			for _, ranks := range []int{1, 3} {
				ru := interp.Run(unprot, spec.BaseConfig(ranks))
				rp := interp.Run(protProg, spec.BaseConfig(ranks))
				if rp.Trap != interp.TrapNone {
					t.Fatalf("%d ranks: protected run trapped: %v (%s)", ranks, rp.Trap, rp.TrapMsg)
				}
				if !spec.Verify(golden, rp) {
					t.Fatalf("%d ranks: protected run fails verification", ranks)
				}
				slow := float64(rp.MaxRankDyn) / float64(ru.MaxRankDyn)
				if slow <= 1.0 || slow > 3.5 {
					t.Fatalf("%d ranks: slowdown %.2f implausible", ranks, slow)
				}
			}
		})
	}
}
