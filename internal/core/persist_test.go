package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClassifierSaveLoadRoundtrip(t *testing.T) {
	cls := trainedClassifier(t)
	cls.Config.Params.C = 42
	cls.Config.Params.Gamma = 0.25
	cls.Config.CV.FScore = 0.9

	path := filepath.Join(t.TempDir(), "cls.json")
	if err := SaveClassifier(path, cls); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.Params.C != 42 || got.Config.Params.Gamma != 0.25 || got.Config.CV.FScore != 0.9 {
		t.Fatalf("metadata lost: %+v", got.Config)
	}
	// Predictions must be bit-identical on a probe grid.
	for i := -4; i <= 4; i++ {
		x := make([]float64, 31)
		x[0] = float64(i) / 4
		x[1] = float64(-i) / 3
		a := cls.Model.Decision(cls.Scaler.Apply(x))
		b := got.Model.Decision(got.Scaler.Apply(x))
		if a != b {
			t.Fatalf("decision differs after roundtrip: %v vs %v", a, b)
		}
	}
}

func TestLoadClassifierErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadClassifier(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, bad, `{"format":"nope"}`)
	if _, err := LoadClassifier(bad); err == nil {
		t.Fatal("wrong format accepted")
	}
	trunc := filepath.Join(dir, "trunc.json")
	writeFile(t, trunc, `{"format":"ipas-classifier-v1"}`)
	if _, err := LoadClassifier(trunc); err == nil {
		t.Fatal("incomplete classifier accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	writeFile(t, garbage, `not json`)
	if _, err := LoadClassifier(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
