package core

import (
	"context"
	"encoding/json"
	"testing"

	"ipas/internal/svm"
)

// TestTrainContextDeterministicAcrossWorkers runs Step 3 end to end
// (grid search + final top-N fits) at several worker counts and asserts
// the resulting classifiers are bit-identical: serialized models use
// IEEE-754 bit patterns, so byte equality is float-bit equality.
func TestTrainContextDeterministicAcrossWorkers(t *testing.T) {
	app := loadApp(t, "FFT")
	data, err := Collect(app, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	grid := svm.LogGrid(1, 1e3, 4, 1e-3, 1, 3)
	var ref [][]byte
	for _, w := range []int{1, 4} {
		cc := &CampaignControls{TrainWorkers: w}
		cls, err := TrainContext(context.Background(), data, data.Labels(PolicyIPAS), grid, 3, cc, "train")
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var blobs [][]byte
		for _, c := range cls {
			b, err := json.Marshal(c.Model)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, b)
		}
		if ref == nil {
			ref = blobs
			continue
		}
		if len(blobs) != len(ref) {
			t.Fatalf("workers=%d: %d classifiers, want %d", w, len(blobs), len(ref))
		}
		for i := range blobs {
			if string(blobs[i]) != string(ref[i]) {
				t.Fatalf("workers=%d: classifier %d differs from workers=1", w, i)
			}
		}
	}
}

// TestTrainContextCancelled asserts a cancelled training step aborts
// with the context's error instead of returning classifiers.
func TestTrainContextCancelled(t *testing.T) {
	app := loadApp(t, "FFT")
	data, err := Collect(app, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, data, data.Labels(PolicyIPAS), svm.QuickGrid(), 3, nil, "train"); err == nil {
		t.Fatal("cancelled training returned classifiers")
	}
}
