package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// A collection campaign cancelled mid-run and re-run against the same
// checkpoint directory must yield the same training set as an
// uninterrupted collection.
func TestCollectContextCheckpointResume(t *testing.T) {
	app := loadApp(t, "FFT")
	const samples = 60

	ref, err := Collect(app, samples, 9)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	cp1, err := NewCheckpoint(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cc1 := &CampaignControls{
		Workers:    2,
		Checkpoint: cp1,
		Progress: func(stage string, done, total, failed, deadlocked int) {
			if done >= 10 {
				cancel()
			}
		},
	}
	if _, err := CollectContext(ctx, app, samples, 9, cc1); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted collection returned %v, want context.Canceled", err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := NewCheckpoint(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	got, err := CollectContext(context.Background(), app, samples, 9, &CampaignControls{Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Fatalf("resumed collection degraded: %v", got.Degraded)
	}
	if len(got.X) != len(ref.X) {
		t.Fatalf("resumed collection has %d samples, want %d", len(got.X), len(ref.X))
	}
	for i := range ref.SOC {
		if got.SOC[i] != ref.SOC[i] || got.Symptom[i] != ref.Symptom[i] {
			t.Fatalf("labels differ at sample %d after resume", i)
		}
	}
	for i := range ref.Campaign.Trials {
		if got.Campaign.Trials[i] != ref.Campaign.Trials[i] {
			t.Fatalf("trial %d differs after resume: %+v vs %+v",
				i, got.Campaign.Trials[i], ref.Campaign.Trials[i])
		}
	}
}

// Without resume, pointing a workflow at a checkpoint directory that
// already holds trials must fail loudly instead of silently mixing two
// runs' journals.
func TestCheckpointRefusesSilentReuse(t *testing.T) {
	app := loadApp(t, "FFT")
	dir := filepath.Join(t.TempDir(), "ckpt")

	cp1, err := NewCheckpoint(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectContext(context.Background(), app, 10, 4, &CampaignControls{Checkpoint: cp1}); err != nil {
		t.Fatal(err)
	}
	cp1.Close()

	cp2, err := NewCheckpoint(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	_, err = CollectContext(context.Background(), app, 10, 4, &CampaignControls{Checkpoint: cp2})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("reused checkpoint without resume: %v", err)
	}
}

// Sub-checkpoints must scope identical stage names into distinct
// journal files so suite-level checkpoints cannot collide.
func TestCheckpointSubScopesStages(t *testing.T) {
	cp, err := NewCheckpoint(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	a, err := cp.Sub("FFT").Journal("collect")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Sub("HPCCG").Journal("collect")
	if err != nil {
		t.Fatal(err)
	}
	if a.Path() == b.Path() {
		t.Fatalf("sub-checkpoints share journal path %s", a.Path())
	}
	if cp.Sub("FFT") != cp.Sub("FFT") {
		t.Fatal("Sub is not cached per name")
	}
}

// A sectioned collection checkpoints one fingerprint-keyed journal per
// section; re-running against the same directory restores every trial
// bit-identically (the incremental re-analysis contract at the
// workflow layer).
func TestCollectSectionedIncrementalCheckpoint(t *testing.T) {
	app := loadApp(t, "FFT")
	dir := filepath.Join(t.TempDir(), "ckpt")

	cp1, err := NewCheckpoint(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cc1 := &CampaignControls{Checkpoint: cp1, Sections: true, SectionCoverage: 1, MaxPerSection: 6}
	d1, err := CollectContext(context.Background(), app, 0, 9, cc1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.X) == 0 {
		t.Fatal("sectioned collection produced no samples")
	}
	secs, err := filepath.Glob(filepath.Join(dir, "collect.sections", "sec-*.jsonl"))
	if err != nil || len(secs) == 0 {
		t.Fatalf("no per-section journals under collect.sections (err=%v)", err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := NewCheckpoint(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	cc2 := &CampaignControls{Checkpoint: cp2, Sections: true, SectionCoverage: 1, MaxPerSection: 6}
	d2, err := CollectContext(context.Background(), app, 0, 9, cc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Campaign.Trials) != len(d1.Campaign.Trials) {
		t.Fatalf("restored collection has %d trials, want %d", len(d2.Campaign.Trials), len(d1.Campaign.Trials))
	}
	for i := range d1.Campaign.Trials {
		if d1.Campaign.Trials[i] != d2.Campaign.Trials[i] {
			t.Fatalf("trial %d differs after sectioned restore: %+v vs %+v",
				i, d1.Campaign.Trials[i], d2.Campaign.Trials[i])
		}
	}
	for i := range d1.SOC {
		if d1.SOC[i] != d2.SOC[i] || d1.Symptom[i] != d2.Symptom[i] {
			t.Fatalf("labels differ at sample %d after sectioned restore", i)
		}
	}
}
