package core

import (
	"testing"

	"ipas/internal/fault"
	"ipas/internal/svm"
	"ipas/internal/workloads"
)

func loadApp(t *testing.T, name string) *App {
	t.Helper()
	spec := workloads.MustGet(name, 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return &App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}
}

func TestCollectProducesLabeledData(t *testing.T) {
	app := loadApp(t, "FFT")
	data, err := Collect(app, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.X) != 80 || len(data.SOC) != 80 || len(data.Symptom) != 80 {
		t.Fatalf("sizes: %d/%d/%d", len(data.X), len(data.SOC), len(data.Symptom))
	}
	pos := 0
	for i, y := range data.SOC {
		if y != 1 && y != -1 {
			t.Fatalf("bad label %d", y)
		}
		if y == 1 {
			pos++
			if data.Symptom[i] == 1 {
				t.Fatal("trial labeled both SOC and symptom")
			}
		}
	}
	if pos == 0 {
		t.Fatal("no SOC-positive examples collected from FFT (expected several)")
	}
	for _, x := range data.X {
		if len(x) != 31 {
			t.Fatalf("feature dim %d, want 31", len(x))
		}
	}
}

func TestWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow is slow")
	}
	app := loadApp(t, "FFT")
	opts := Options{
		Samples:    250,
		Grid:       svm.LogGrid(1, 1e5, 5, 1e-5, 1, 4),
		TopN:       3,
		EvalTrials: 90,
		Seed:       11,
	}
	res, err := Run(app, opts)
	if err != nil {
		t.Fatal(err)
	}

	un := res.Unprotected
	if un.Slowdown != 1.0 {
		t.Errorf("unprotected slowdown = %v, want 1", un.Slowdown)
	}
	if un.Coverage.Counts[fault.OutcomeDetected] != 0 {
		t.Error("unprotected variant detected faults")
	}
	unSOC := un.Coverage.Proportion(fault.OutcomeSOC)
	if unSOC == 0 {
		t.Fatal("unprotected SOC is zero; nothing to reduce")
	}

	fd := res.FullDup
	if fd.Slowdown <= 1.0 || fd.Slowdown > 3.5 {
		t.Errorf("full-dup slowdown = %.2f, want (1, 3.5]", fd.Slowdown)
	}
	if fd.Coverage.Counts[fault.OutcomeDetected] == 0 {
		t.Error("full duplication detected nothing")
	}
	if fd.SOCReductionPct < 50 {
		t.Errorf("full-dup SOC reduction %.1f%% < 50%%", fd.SOCReductionPct)
	}

	if len(res.IPAS) != 3 || len(res.Baseline) != 3 {
		t.Fatalf("variant counts: %d IPAS, %d Baseline", len(res.IPAS), len(res.Baseline))
	}
	// The paper's headline: some IPAS configuration beats the baseline
	// on overhead; IPAS protects fewer instructions than Baseline on
	// average (Figure 7).
	var ipasDup, baseDup, ipasMinSlow, baseMinSlow float64
	ipasMinSlow, baseMinSlow = 99, 99
	for i := range res.IPAS {
		ipasDup += res.IPAS[i].Stats.DuplicatedPercent()
		baseDup += res.Baseline[i].Stats.DuplicatedPercent()
		if res.IPAS[i].Slowdown < ipasMinSlow {
			ipasMinSlow = res.IPAS[i].Slowdown
		}
		if res.Baseline[i].Slowdown < baseMinSlow {
			baseMinSlow = res.Baseline[i].Slowdown
		}
		if res.IPAS[i].Slowdown > fd.Slowdown+0.01 {
			t.Errorf("IPAS-%d slower than full duplication", i+1)
		}
	}
	ipasDup /= 3
	baseDup /= 3
	t.Logf("dup%%: IPAS %.1f vs Baseline %.1f; slowdowns: IPAS min %.2f, Baseline min %.2f, FullDup %.2f",
		ipasDup, baseDup, ipasMinSlow, baseMinSlow, fd.Slowdown)
	if ipasDup >= baseDup {
		t.Errorf("IPAS duplicates more instructions (%.1f%%) than Baseline (%.1f%%)", ipasDup, baseDup)
	}

	best := res.Best(PolicyIPAS)
	if best == nil {
		t.Fatal("no best IPAS variant")
	}
	t.Logf("best IPAS: %s reduction=%.1f%% slowdown=%.2f (unprot SOC %.1f%%)",
		best.Label(), best.SOCReductionPct, best.Slowdown, 100*unSOC)
	if best.SOCReductionPct < 30 {
		t.Errorf("best IPAS SOC reduction %.1f%% < 30%%", best.SOCReductionPct)
	}
	if res.TrainIPASTime <= 0 || res.ProtectTime <= 0 {
		t.Error("timing not recorded")
	}
}

func TestIdealDistance(t *testing.T) {
	if IdealDistance(1, 100) != 0 {
		t.Error("ideal point distance must be 0")
	}
	if IdealDistance(2, 100) != 1 {
		t.Error("distance along slowdown axis")
	}
	if d := IdealDistance(1, 0); d != 100 {
		t.Errorf("distance along reduction axis = %v", d)
	}
}
