package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ipas/internal/campaign"
	"ipas/internal/fault"
	"ipas/internal/fault/shard"
	"ipas/internal/svm"
)

// CampaignControls carries the resilience knobs threaded into every
// fault-injection campaign the workflow runs: retry policy, worker
// bound, progress reporting and checkpointing.
type CampaignControls struct {
	// MaxRetries / RetryBackoff configure per-trial retry of
	// infrastructure errors (see fault.Campaign).
	MaxRetries   int
	RetryBackoff time.Duration
	// Workers bounds concurrent trials per campaign (0 = GOMAXPROCS).
	// Under sharding it bounds scheduler workers instead.
	Workers int
	// Shards, when > 1, runs each campaign on the sharded engine
	// (internal/fault/shard): the trial space splits into this many
	// failure-isolated shards on a work-stealing scheduler. Results
	// are bit-identical to the single-loop engine for every value.
	Shards int
	// ShardRetries bounds shard-level quarantine retries (0 = default;
	// fault.NoRetries = none). Only meaningful with Shards > 1.
	ShardRetries int
	// Model selects the error model every campaign's plans are drawn
	// with (nil = single-bit, the paper's model). It rides journal
	// headers and remote specs, so checkpoints and coordinators refuse
	// to mix trials across models.
	Model fault.ErrorModel
	// TrainWorkers bounds concurrent grid-point evaluations during SVM
	// training (0 = GOMAXPROCS). Training results are bit-identical for
	// any worker count.
	TrainWorkers int
	// Watchdog, when > 0, bounds each blocked MPI operation's
	// wall-clock time (interp.Config.Watchdog) in every campaign the
	// workflow runs; 0 keeps the interpreter's default.
	Watchdog time.Duration
	// Remote, when non-nil together with RemoteSpec, dispatches
	// eligible campaigns to a campaignd coordinator instead of running
	// them in-process.
	Remote *campaign.Client
	// RemoteSpec renders a stage as a remote campaign spec, or nil to
	// run that stage locally (graceful degradation: stages a spec
	// cannot express — protected variants do not round-trip through
	// source text — just stay in-process). The returned spec names the
	// program (workload/input/ranks or inline source); Run fills
	// trials, seed, sharding, retry, and watchdog knobs so remote
	// trials are bit-identical to local ones.
	RemoteSpec func(stage string) *campaign.Spec
	// Progress, when non-nil, receives per-campaign progress: stage
	// names the campaign ("collect", "eval IPAS-1", ...), done/total
	// count trials, failed counts infrastructure failures, and
	// deadlocked counts trials whose injected fault hung the job
	// (structural deadlock declared by the MPI rank supervisor).
	Progress func(stage string, done, total, failed, deadlocked int)
	// Checkpoint, when non-nil, supplies one trial journal per
	// campaign so an interrupted workflow resumes from disk.
	Checkpoint *Checkpoint
	// Sections, when true, runs eligible campaigns (single-rank) as
	// sectioned campaigns: the trial space stratifies over IR sections,
	// per-section budgets replace the flat trial count, and — with a
	// Checkpoint — per-section journals keyed by content fingerprint
	// make re-analysis after an edit incremental. Multi-rank campaigns
	// degrade gracefully to the flat engines.
	Sections bool
	// SectionCoverage is the per-section coverage factor (expected
	// injections per exercised site); 0 means 1.
	SectionCoverage int
	// MaxPerSection caps any one section's trial budget (0 = engine
	// default).
	MaxPerSection int
}

// Apply configures one campaign with the controls, opening its journal
// when checkpointing is enabled.
func (cc *CampaignControls) Apply(c *fault.Campaign, stage string) error {
	if cc == nil {
		return nil
	}
	c.MaxRetries = cc.MaxRetries
	c.RetryBackoff = cc.RetryBackoff
	c.Workers = cc.Workers
	if cc.Model != nil {
		c.Model = cc.Model
	}
	if cc.Watchdog > 0 {
		c.Config.Watchdog = cc.Watchdog
	}
	if cc.Progress != nil {
		report := cc.Progress
		c.Progress = func(done, total, failed, deadlocked int) { report(stage, done, total, failed, deadlocked) }
	}
	if cc.Checkpoint != nil {
		j, err := cc.Checkpoint.Journal(stage)
		if err != nil {
			return err
		}
		c.Journal = j
	}
	return nil
}

// Run executes the golden run plus n injection trials of campaign c
// under the controls: on the single-loop engine by default, or on the
// sharded engine when Shards > 1 — per-trial semantics, results, and
// canonical journal bytes are identical either way. Each sharded stage
// checkpoints into its own "<stage>.shards" directory (one journal per
// shard plus the canonical merged journal) instead of a single
// "<stage>.jsonl" file.
func (cc *CampaignControls) Run(ctx context.Context, c *fault.Campaign, n int, stage string) (*fault.CampaignResult, error) {
	if cc != nil && cc.Remote != nil && cc.RemoteSpec != nil {
		if spec := cc.RemoteSpec(stage); spec != nil {
			return cc.runRemote(ctx, c, spec, n, stage)
		}
	}
	if cc != nil && cc.Sections && c.Config.Ranks <= 1 {
		return cc.runSectioned(ctx, c, stage)
	}
	if cc == nil || cc.Shards <= 1 {
		if err := cc.Apply(c, stage); err != nil {
			return nil, err
		}
		return c.RunContext(ctx, n)
	}
	c.MaxRetries = cc.MaxRetries
	c.RetryBackoff = cc.RetryBackoff
	if cc.Model != nil {
		c.Model = cc.Model
	}
	if cc.Watchdog > 0 {
		c.Config.Watchdog = cc.Watchdog
	}
	opts := shard.Options{Shards: cc.Shards, Workers: cc.Workers, Retries: cc.ShardRetries}
	if cc.Progress != nil {
		report := cc.Progress
		opts.Progress = func(done, total, failed, deadlocked int) { report(stage, done, total, failed, deadlocked) }
	}
	if cc.Checkpoint != nil {
		dir, err := cc.Checkpoint.ShardDir(stage)
		if err != nil {
			return nil, err
		}
		opts.Dir = dir
	}
	return shard.Run(ctx, c, n, opts)
}

// runSectioned runs one campaign on the sectioned engine. The flat
// trial count is superseded by the per-section allocation (coverage
// drives the budget), and checkpointing goes to a per-stage section
// journal directory whose fingerprint-keyed journals make resumption
// incremental across program edits: only sections whose IR changed
// re-execute.
func (cc *CampaignControls) runSectioned(ctx context.Context, c *fault.Campaign, stage string) (*fault.CampaignResult, error) {
	c.MaxRetries = cc.MaxRetries
	c.RetryBackoff = cc.RetryBackoff
	c.Workers = cc.Workers
	if cc.Model != nil {
		c.Model = cc.Model
	}
	if cc.Watchdog > 0 {
		c.Config.Watchdog = cc.Watchdog
	}
	if cc.Progress != nil {
		report := cc.Progress
		c.Progress = func(done, total, failed, deadlocked int) { report(stage, done, total, failed, deadlocked) }
	}
	c.Sections = true
	c.Coverage = max(cc.SectionCoverage, 1)
	c.MaxPerSection = cc.MaxPerSection
	var dir string
	if cc.Checkpoint != nil {
		d, err := cc.Checkpoint.SectionDir(stage)
		if err != nil {
			return nil, err
		}
		dir = d
	}
	prep, err := c.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	res, err := prep.RunSections(ctx, dir)
	if err != nil {
		return nil, err
	}
	return res.CampaignResult, nil
}

// runRemote dispatches one campaign to the coordinator and polls it to
// completion. The partial spec from RemoteSpec names the program; the
// controls and campaign fill every knob that pins the plan sequence and
// per-trial behavior, so the coordinator's workers reproduce the local
// engine's trials bit for bit.
func (cc *CampaignControls) runRemote(ctx context.Context, c *fault.Campaign, spec *campaign.Spec, n int, stage string) (*fault.CampaignResult, error) {
	s := *spec
	s.Trials = n
	s.Seed = c.Seed
	s.HangFactor = c.HangFactor
	s.MaxRetries = cc.MaxRetries
	s.Watchdog = cc.Watchdog
	if cc.Model != nil {
		s.Model = fault.ModelName(cc.Model)
	} else if c.Model != nil {
		s.Model = fault.ModelName(c.Model)
	}
	if s.Shards == 0 {
		s.Shards = max(cc.Shards, 1)
	}
	if cc.Sections && max(s.Ranks, 1) <= 1 {
		// Sectioned submission: the coordinator derives the trial
		// count from the allocation, so the flat count stays home.
		s.Sections = true
		s.Coverage = max(cc.SectionCoverage, 1)
		s.MaxPerSection = cc.MaxPerSection
		s.Trials = 0
	}
	s.Normalize()
	sub, _, err := cc.Remote.Submit(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("core: submitting %s to coordinator: %w", stage, err)
	}
	var onProgress func(campaign.Progress)
	if cc.Progress != nil {
		report := cc.Progress
		onProgress = func(p campaign.Progress) { report(stage, p.Done, p.Trials, p.Failed, p.Deadlocked) }
	}
	res, err := cc.Remote.WaitResult(ctx, sub.ID, 0, onProgress)
	if err != nil {
		return nil, fmt.Errorf("core: waiting for %s (campaign %s): %w", stage, sub.ID, err)
	}
	if cc.Progress != nil {
		cc.Progress(stage, res.Completed+res.Failed, len(res.Trials), res.Failed, res.Deadlocks)
	}
	// Match the local engines' contract: per-trial infrastructure
	// failures come back as a joined error beside the complete result.
	if err := res.Finalize(); err != nil {
		return res, err
	}
	return res, nil
}

// SearchOptions renders the controls' training knobs as grid-search
// options, routing per-grid-point progress into Progress under the
// given stage name (training has no failed or deadlocked trials, so
// those counts are 0).
func (cc *CampaignControls) SearchOptions(stage string) svm.SearchOptions {
	if cc == nil {
		return svm.SearchOptions{}
	}
	opts := svm.SearchOptions{Workers: cc.TrainWorkers}
	if cc.Progress != nil {
		report := cc.Progress
		opts.Progress = func(done, total int) { report(stage, done, total, 0, 0) }
	}
	return opts
}

// Checkpoint manages the journal directory of a workflow run: one
// JSONL trial journal per campaign (the collection campaign plus every
// variant's coverage evaluation), named after the campaign's stage.
// Because every campaign draws its plans up front from its seed, a
// workflow resumed from a checkpoint directory produces results
// bit-identical to an uninterrupted run.
type Checkpoint struct {
	// Dir is the journal directory (created on first use).
	Dir string
	// Resume permits reuse of journals that already contain trials.
	// Without it, opening a non-empty journal is an error — a guard
	// against accidentally mixing two different runs' checkpoints.
	Resume bool

	mu   sync.Mutex
	open map[string]*fault.Journal
	subs map[string]*Checkpoint
}

// NewCheckpoint creates the journal directory and returns a checkpoint
// manager rooted there.
func NewCheckpoint(dir string, resume bool) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	return &Checkpoint{Dir: dir, Resume: resume}, nil
}

// Sub returns a checkpoint rooted in a subdirectory, scoping (say) one
// workload's campaigns inside a suite-level checkpoint so their stage
// names cannot collide. The parent's Close closes the sub's journals.
func (c *Checkpoint) Sub(name string) *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subs == nil {
		c.subs = map[string]*Checkpoint{}
	}
	key := stageFileName(name)
	if s, ok := c.subs[key]; ok {
		return s
	}
	s := &Checkpoint{Dir: filepath.Join(c.Dir, key), Resume: c.Resume}
	c.subs[key] = s
	return s
}

// Journal opens (once) the journal for the named campaign stage.
func (c *Checkpoint) Journal(stage string) (*fault.Journal, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open == nil {
		c.open = map[string]*fault.Journal{}
	}
	if j, ok := c.open[stage]; ok {
		return j, nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	path := filepath.Join(c.Dir, stageFileName(stage)+".jsonl")
	j, err := fault.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if j.Restored() > 0 && !c.Resume {
		j.Close()
		return nil, fmt.Errorf("core: journal %s already holds %d trials; pass resume to continue it (or use a fresh checkpoint dir)",
			path, j.Restored())
	}
	c.open[stage] = j
	return j, nil
}

// ShardDir returns (creating it) the per-shard journal directory for
// the named campaign stage, under the same resume guard as Journal: a
// directory that already holds journals is refused unless Resume is
// set — the shard engine's own header fingerprints then reject any
// journal that is not this exact campaign's.
func (c *Checkpoint) ShardDir(stage string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir := filepath.Join(c.Dir, stageFileName(stage)+".shards")
	if !c.Resume {
		if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			return "", fmt.Errorf("core: shard journal dir %s already holds %d files; pass resume to continue it (or use a fresh checkpoint dir)",
				dir, len(entries))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("core: creating shard journal dir: %w", err)
	}
	return dir, nil
}

// SectionDir returns (creating it) the per-section journal directory
// for the named campaign stage. Unlike ShardDir there is no
// non-empty-directory guard: section journals are keyed by content
// fingerprint and self-invalidate when the program, seed, or budget
// changes, so reusing the directory is exactly the incremental
// re-analysis contract — unchanged sections restore, changed ones
// rebuild.
func (c *Checkpoint) SectionDir(stage string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir := filepath.Join(c.Dir, stageFileName(stage)+".sections")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("core: creating section journal dir: %w", err)
	}
	return dir, nil
}

// Close closes every journal the checkpoint opened. The files remain
// on disk for later resume.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.open {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range c.subs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.open, c.subs = nil, nil
	return first
}

// stageFileName maps a stage label onto a safe file name.
func stageFileName(stage string) string {
	var sb strings.Builder
	for _, r := range stage {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	if sb.Len() == 0 {
		return "campaign"
	}
	return sb.String()
}
