package core

import (
	"encoding/json"
	"fmt"
	"os"

	"ipas/internal/svm"
)

// classifierFile is the serialized form of a trained classifier; it
// captures everything step 4 needs, so production builds can reuse a
// training run without repeating steps 1-3 (the paper's workflow note:
// "a protected scientific code that can be used in production
// calculations without any need to repeat steps 1-4").
type classifierFile struct {
	Format string      `json:"format"`
	Model  *svm.Model  `json:"model"`
	Scaler *svm.Scaler `json:"scaler"`
	// Training metadata, informational only.
	C      float64 `json:"c"`
	Gamma  float64 `json:"gamma"`
	FScore float64 `json:"fscore"`
}

const classifierFormat = "ipas-classifier-v1"

// SaveClassifier writes a trained classifier to path as JSON.
func SaveClassifier(path string, cls *Classifier) error {
	cf := classifierFile{
		Format: classifierFormat,
		Model:  cls.Model,
		Scaler: cls.Scaler,
		C:      cls.Config.Params.C,
		Gamma:  cls.Config.Params.Gamma,
		FScore: cls.Config.CV.FScore,
	}
	data, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding classifier: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadClassifier reads a classifier saved by SaveClassifier.
func LoadClassifier(path string) (*Classifier, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf classifierFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("core: decoding classifier %s: %w", path, err)
	}
	if cf.Format != classifierFormat {
		return nil, fmt.Errorf("core: %s: unknown format %q", path, cf.Format)
	}
	if cf.Model == nil || cf.Scaler == nil {
		return nil, fmt.Errorf("core: %s: incomplete classifier", path)
	}
	cls := &Classifier{Model: cf.Model, Scaler: cf.Scaler}
	cls.Config.Params.C = cf.C
	cls.Config.Params.Gamma = cf.Gamma
	cls.Config.CV.FScore = cf.FScore
	return cls, nil
}
