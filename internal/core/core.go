// Package core implements the IPAS workflow (Figure 1 of the paper):
//
//  1. the user provides an application with a verification routine;
//  2. statistical fault injection collects labeled training examples
//     (instruction feature vectors labeled SOC / non-SOC);
//  3. an SVM classifier is trained, with (C, γ) selected by grid search
//     on cross-validated F-score;
//  4. a compiler pass duplicates the instructions the classifier
//     predicts as SOC-generating.
//
// The package also implements the paper's comparison baseline
// (Shoestring-style): the same pipeline trained with symptom /
// non-symptom labels, protecting predicted non-symptom-generating
// instructions (§5.3).
package core

import (
	"context"
	"fmt"
	"math"

	"ipas/internal/dup"
	"ipas/internal/fault"
	"ipas/internal/features"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/svm"
)

// App bundles an application for the workflow: its unprotected module
// (SiteIDs assigned), its verification routine, and its execution
// configuration.
type App struct {
	Module *ir.Module
	Verify fault.Verifier
	Config interp.Config
}

// Policy selects the protection strategy.
type Policy int

const (
	// PolicyIPAS protects instructions the classifier predicts as
	// SOC-generating (the paper's contribution).
	PolicyIPAS Policy = iota
	// PolicyBaseline is the Shoestring-style baseline: train on
	// symptom labels and protect predicted NON-symptom-generating
	// instructions.
	PolicyBaseline
	// PolicyFullDup duplicates everything (SWIFT-style); no training.
	PolicyFullDup
	// PolicyNone leaves the code unprotected.
	PolicyNone
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyIPAS:
		return "IPAS"
	case PolicyBaseline:
		return "Baseline"
	case PolicyFullDup:
		return "FullDup"
	case PolicyNone:
		return "Unprotected"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// TrainingData is the output of the data-collection step: one labeled
// feature vector per injection trial.
type TrainingData struct {
	// X holds raw (unscaled) feature vectors, one per trial.
	X [][]float64
	// SOC holds +1 where the trial produced silent output corruption.
	SOC []int
	// Symptom holds +1 where the trial produced a crash or hang.
	Symptom []int
	// Campaign is the underlying fault-injection campaign.
	Campaign *fault.CampaignResult
	// SiteFeatures caches the per-site feature table of the module.
	SiteFeatures [][]float64
	// Degraded, when non-nil, records that some trials failed with
	// infrastructure errors and the training set was built from the
	// completed ones only (the joined per-trial errors).
	Degraded error
}

// Labels returns the label vector for the given policy's classifier.
func (d *TrainingData) Labels(p Policy) []int {
	if p == PolicyBaseline {
		return d.Symptom
	}
	return d.SOC
}

// Collect performs Step 2 of the workflow: statistical fault injection
// with `samples` trials against the unprotected application, labeling
// each injected instruction's feature vector by the observed outcome.
func Collect(app *App, samples int, seed int64) (*TrainingData, error) {
	return CollectContext(context.Background(), app, samples, seed, nil)
}

// CollectContext is Collect with cancellation and campaign resilience
// controls. Cancellation aborts with ctx's error (after checkpointing
// completed trials, when a checkpoint is configured); trials that fail
// with infrastructure errors after retries are dropped from the
// training set and reported in TrainingData.Degraded, so one bad trial
// no longer discards an entire collection campaign.
func CollectContext(ctx context.Context, app *App, samples int, seed int64, cc *CampaignControls) (*TrainingData, error) {
	prog, err := fault.Compile(app.Module)
	if err != nil {
		return nil, err
	}
	campaign := &fault.Campaign{
		Prog:   prog,
		Verify: app.Verify,
		Config: app.Config,
		Seed:   seed,
	}
	res, err := cc.Run(ctx, campaign, samples, "collect")
	if res == nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("core: collection interrupted after %d/%d trials: %w", res.Completed, samples, cerr)
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("core: collection produced no completed trials: %w", err)
	}
	ext := features.NewExtractor(app.Module)
	siteFeats := ext.VectorBySite()

	d := &TrainingData{Campaign: res, SiteFeatures: siteFeats, Degraded: err}
	for _, tr := range res.Trials {
		if tr.Status != fault.TrialCompleted {
			continue
		}
		if tr.Site < 0 || tr.Site >= len(siteFeats) || siteFeats[tr.Site] == nil {
			return nil, fmt.Errorf("core: trial hit unknown site %d", tr.Site)
		}
		d.X = append(d.X, siteFeats[tr.Site])
		d.SOC = append(d.SOC, pm1(tr.Outcome == fault.OutcomeSOC))
		d.Symptom = append(d.Symptom, pm1(tr.Outcome == fault.OutcomeSymptom))
	}
	return d, nil
}

func pm1(b bool) int {
	if b {
		return 1
	}
	return -1
}

// Classifier is a trained, scaled site classifier.
type Classifier struct {
	Model  *svm.Model
	Scaler *svm.Scaler
	Config svm.Config
}

// PredictPositive reports whether the classifier assigns class +1 to
// the raw feature vector.
func (c *Classifier) PredictPositive(raw []float64) bool {
	return c.Model.Predict(c.Scaler.Apply(raw)) == 1
}

// Train performs Step 3: grid search ranked by cross-validated F-score,
// then fits one final model per top-N configuration on the full
// training set. Labels must be the policy-appropriate label vector.
func Train(d *TrainingData, labels []int, grid svm.GridSpec, topN int) ([]*Classifier, error) {
	return TrainContext(context.Background(), d, labels, grid, topN, nil, "train")
}

// TrainContext is Train with cancellation and the controls' training
// knobs threaded through: the grid search runs on a bounded worker
// pool (Controls.TrainWorkers) against a shared per-γ kernel cache,
// and per-grid-point progress flows into Controls.Progress under the
// given stage name. Results are bit-identical for any worker count.
func TrainContext(ctx context.Context, d *TrainingData, labels []int, grid svm.GridSpec, topN int, cc *CampaignControls, stage string) ([]*Classifier, error) {
	if len(labels) != len(d.X) {
		return nil, fmt.Errorf("core: %d labels for %d samples", len(labels), len(d.X))
	}
	pos := 0
	for _, y := range labels {
		if y == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(labels) {
		return nil, fmt.Errorf("core: degenerate training set (%d of %d positive)", pos, len(labels))
	}

	scaler := svm.FitScaler(d.X)
	prob := &svm.Problem{X: scaler.ApplyAll(d.X), Y: labels}
	grid.WeightByClassFreq = true
	configs, err := svm.GridSearchContext(ctx, prob, grid, cc.SearchOptions(stage))
	if err != nil {
		return nil, err
	}

	// Final fits share one distance matrix and kernel cache across the
	// top-N configurations (several of which typically share a γ).
	cache := svm.NewKernelCache(svm.SqDistMatrix(prob.X), 0)
	var out []*Classifier
	for _, cfg := range svm.TopN(configs, topN) {
		model, err := svm.TrainWithKernel(ctx, prob, cfg.Params, cache.Matrix(cfg.Params.Gamma), nil)
		if err != nil {
			return nil, err
		}
		out = append(out, &Classifier{Model: model, Scaler: scaler, Config: cfg})
	}
	return out, nil
}

// SelectSites applies a trained classifier to every site of the module
// per Step 4 and the chosen policy, returning the protection predicate
// input: protect[site] == true means the site must be duplicated.
func SelectSites(d *TrainingData, cls *Classifier, policy Policy) []bool {
	protect := make([]bool, len(d.SiteFeatures))
	for site, feats := range d.SiteFeatures {
		if feats == nil {
			continue
		}
		positive := cls.PredictPositive(feats)
		switch policy {
		case PolicyIPAS:
			// Positive class = SOC-generating -> protect.
			protect[site] = positive
		case PolicyBaseline:
			// Positive class = symptom-generating -> those are left to
			// symptom detectors; protect the complement.
			protect[site] = !positive
		}
	}
	return protect
}

// SiteFeaturesOf extracts the per-site feature table of a module.
func SiteFeaturesOf(m *ir.Module) [][]float64 {
	return features.NewExtractor(m).VectorBySite()
}

// ProtectModule clones m and applies policy-directed duplication using
// a classifier trained elsewhere (possibly on a different input of the
// same code — the paper's §6.5 input-variation study). Site features
// are extracted fresh from m.
func ProtectModule(m *ir.Module, cls *Classifier, policy Policy) (*ir.Module, dup.Stats, error) {
	feats := SiteFeaturesOf(m)
	protect := make([]bool, len(feats))
	for site, f := range feats {
		if f == nil {
			continue
		}
		positive := cls.PredictPositive(f)
		if policy == PolicyBaseline {
			protect[site] = !positive
		} else {
			protect[site] = positive
		}
	}
	clone := ir.CloneModule(m)
	st, err := dup.Protect(clone, func(in *ir.Instr) bool {
		return in.SiteID >= 0 && in.SiteID < len(protect) && protect[in.SiteID]
	})
	return clone, st, err
}

// IdealDistance is the paper's §6.3 configuration-quality metric: the
// Euclidean distance from (slowdown, reduction%) to the ideal point
// (1, 100).
func IdealDistance(slowdown, reductionPct float64) float64 {
	ds := slowdown - 1
	dr := reductionPct - 100
	return math.Sqrt(ds*ds + dr*dr)
}
