package core

import (
	"context"
	"fmt"
	"time"

	"ipas/internal/dup"
	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/svm"
)

// Options parameterizes a full workflow run.
type Options struct {
	// Samples is the number of fault-injection training samples
	// (Step 2); the paper uses 2,500.
	Samples int
	// Grid is the (C, γ) search space; the paper uses 500 points.
	Grid svm.GridSpec
	// TopN is how many best-F-score configurations to carry into the
	// evaluation; the paper uses 5 (§6.1).
	TopN int
	// EvalTrials is the number of fault injections per protected
	// variant when evaluating coverage; the paper uses 1,024.
	EvalTrials int
	// Seed drives all sampling.
	Seed int64
	// Controls carries resilience knobs (retry policy, progress,
	// checkpointing) threaded into every campaign the workflow runs.
	// Nil keeps the defaults: no checkpointing, 2 retries.
	Controls *CampaignControls
}

// PaperOptions returns the paper-scale parameters.
func PaperOptions() Options {
	return Options{Samples: 2500, Grid: svm.PaperGrid(), TopN: 5, EvalTrials: 1024, Seed: 1}
}

// QuickOptions returns laptop-scale parameters that keep the workflow's
// shape (used by tests, examples and default benchmarks).
func QuickOptions() Options {
	return Options{Samples: 350, Grid: svm.QuickGrid(), TopN: 5, EvalTrials: 120, Seed: 1}
}

// Variant is one protected build of the application.
type Variant struct {
	// Policy and ConfigIndex identify the build (ConfigIndex is the
	// rank of the SVM configuration among the top N; -1 for FullDup /
	// Unprotected).
	Policy      Policy
	ConfigIndex int
	// Classifier is nil for FullDup/Unprotected.
	Classifier *Classifier
	// Module is the protected (or original) module.
	Module *ir.Module
	// Stats reports what the duplication pass did.
	Stats dup.Stats
	// Slowdown is goldenDyn(protected) / goldenDyn(unprotected).
	Slowdown float64
	// ProtectDuration is the wall time of classification + duplication
	// for this variant.
	ProtectDuration time.Duration
	// Coverage is the evaluation campaign against this variant.
	Coverage *fault.CampaignResult
	// SOCReductionPct is the SOC reduction relative to unprotected.
	SOCReductionPct float64
}

// Label renders a short variant name ("IPAS-1", "Baseline-3", ...).
func (v *Variant) Label() string {
	if v.ConfigIndex >= 0 {
		return fmt.Sprintf("%s-%d", v.Policy, v.ConfigIndex+1)
	}
	return v.Policy.String()
}

// Result is the outcome of a full workflow run on one application.
type Result struct {
	Data *TrainingData
	// Unprotected and FullDup are the reference variants; IPAS and
	// Baseline hold the top-N configuration variants each.
	Unprotected *Variant
	FullDup     *Variant
	IPAS        []*Variant
	Baseline    []*Variant

	// TrainIPASTime / TrainBaselineTime are Step-3 wall times; the
	// Protect* times cover classification + duplication (Table 6).
	TrainIPASTime     time.Duration
	TrainBaselineTime time.Duration
	ProtectTime       time.Duration
}

// AllVariants returns every variant for iteration, unprotected first.
func (r *Result) AllVariants() []*Variant {
	out := []*Variant{r.Unprotected, r.FullDup}
	out = append(out, r.IPAS...)
	out = append(out, r.Baseline...)
	return out
}

// Best returns the variant of the given policy closest to the ideal
// point (slowdown 1, reduction 100), the paper's Table 4 criterion.
func (r *Result) Best(p Policy) *Variant {
	var pool []*Variant
	switch p {
	case PolicyIPAS:
		pool = r.IPAS
	case PolicyBaseline:
		pool = r.Baseline
	default:
		return nil
	}
	var best *Variant
	bestD := 0.0
	for _, v := range pool {
		d := IdealDistance(v.Slowdown, v.SOCReductionPct)
		if best == nil || d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

// Run executes the complete IPAS workflow plus the paper's comparison
// points: data collection, training for both labelings, protection of
// every top-N configuration under both policies, full duplication, and
// coverage evaluation of every variant.
func Run(app *App, opts Options) (*Result, error) {
	return RunContext(context.Background(), app, opts)
}

// RunContext is Run with cancellation: ctx aborts the workflow between
// (and, via the interpreter's cancellation hook, inside) its campaigns
// and training steps. With Options.Controls.Checkpoint set, every
// campaign journals its trials, so an interrupted workflow re-invoked
// against the same checkpoint directory resumes where it stopped.
func RunContext(ctx context.Context, app *App, opts Options) (*Result, error) {
	data, err := CollectContext(ctx, app, opts.Samples, opts.Seed, opts.Controls)
	if err != nil {
		return nil, err
	}
	return RunWithDataContext(ctx, app, data, opts)
}

// RunWithData is Run with a pre-collected training set (so callers can
// reuse one injection campaign across experiments).
func RunWithData(app *App, data *TrainingData, opts Options) (*Result, error) {
	return RunWithDataContext(context.Background(), app, data, opts)
}

// RunWithDataContext is RunWithData with cancellation and resilience
// controls.
func RunWithDataContext(ctx context.Context, app *App, data *TrainingData, opts Options) (*Result, error) {
	res := &Result{Data: data}

	t0 := time.Now()
	ipasCls, err := TrainContext(ctx, data, data.Labels(PolicyIPAS), opts.Grid, opts.TopN, opts.Controls, "train IPAS")
	if err != nil {
		return nil, fmt.Errorf("core: training IPAS classifier: %w", err)
	}
	res.TrainIPASTime = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	baseCls, err := TrainContext(ctx, data, data.Labels(PolicyBaseline), opts.Grid, opts.TopN, opts.Controls, "train Baseline")
	if err != nil {
		return nil, fmt.Errorf("core: training baseline classifier: %w", err)
	}
	res.TrainBaselineTime = time.Since(t0)

	// Unprotected golden run, shared by every variant's slowdown ratio.
	// The config carries no fault plan, site counting, or budget, so
	// this (like every golden and timing run in the pipeline) executes
	// on the interpreter's uninstrumented fast loop.
	baseProg, err := interp.Compile(app.Module, nil)
	if err != nil {
		return nil, err
	}
	baseGolden := interp.RunContext(ctx, baseProg, app.Config)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if baseGolden.Trap != interp.TrapNone {
		return nil, fmt.Errorf("core: unprotected golden run trapped: %v", baseGolden.Trap)
	}
	baseDyn := baseGolden.TotalDyn

	// Reference variants.
	unprot, err := buildVariant(ctx, app, data, PolicyNone, -1, nil, opts, baseDyn)
	if err != nil {
		return nil, err
	}
	res.Unprotected = unprot
	unprotSOC := unprot.Coverage.Proportion(fault.OutcomeSOC)

	full, err := buildVariant(ctx, app, data, PolicyFullDup, -1, nil, opts, baseDyn)
	if err != nil {
		return nil, err
	}
	for i, cls := range ipasCls {
		v, err := buildVariant(ctx, app, data, PolicyIPAS, i, cls, opts, baseDyn)
		if err != nil {
			return nil, err
		}
		res.IPAS = append(res.IPAS, v)
		res.ProtectTime += v.ProtectDuration
	}
	for i, cls := range baseCls {
		v, err := buildVariant(ctx, app, data, PolicyBaseline, i, cls, opts, baseDyn)
		if err != nil {
			return nil, err
		}
		res.Baseline = append(res.Baseline, v)
		res.ProtectTime += v.ProtectDuration
	}
	res.FullDup = full

	// SOC reduction relative to the unprotected proportion.
	for _, v := range res.AllVariants() {
		socP := v.Coverage.Proportion(fault.OutcomeSOC)
		if unprotSOC > 0 {
			v.SOCReductionPct = 100 * (unprotSOC - socP) / unprotSOC
		}
	}
	return res, nil
}

// buildVariant protects (policy-dependent), measures slowdown, and runs
// the evaluation campaign. baseDyn is the unprotected golden dynamic
// instruction count.
func buildVariant(ctx context.Context, app *App, data *TrainingData, policy Policy, cfgIdx int, cls *Classifier, opts Options, baseDyn int64) (*Variant, error) {
	v := &Variant{Policy: policy, ConfigIndex: cfgIdx, Classifier: cls}

	tProtect := time.Now()
	switch policy {
	case PolicyNone:
		v.Module = app.Module
	case PolicyFullDup:
		v.Module = ir.CloneModule(app.Module)
		st, err := dup.FullDuplication(v.Module)
		if err != nil {
			return nil, err
		}
		v.Stats = st
	default:
		protect := SelectSites(data, cls, policy)
		v.Module = ir.CloneModule(app.Module)
		st, err := dup.Protect(v.Module, func(in *ir.Instr) bool {
			return in.SiteID >= 0 && in.SiteID < len(protect) && protect[in.SiteID]
		})
		if err != nil {
			return nil, err
		}
		v.Stats = st
	}
	v.ProtectDuration = time.Since(tProtect)

	prog, err := fault.Compile(v.Module)
	if err != nil {
		return nil, err
	}
	campaign := &fault.Campaign{
		Prog:   prog,
		Verify: app.Verify,
		Config: app.Config,
		Seed:   opts.Seed + int64(cfgIdx) + 7919*int64(policy),
	}
	cov, err := opts.Controls.Run(ctx, campaign, opts.EvalTrials, "eval "+v.Label())
	if cov == nil {
		return nil, fmt.Errorf("core: evaluating %s: %w", v.Label(), err)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("core: evaluating %s interrupted after %d/%d trials: %w",
			v.Label(), cov.Completed, opts.EvalTrials, cerr)
	}
	// Degraded coverage (some trials failed infrastructure-side) is
	// usable as long as any trials completed: proportions are computed
	// over completed trials only.
	if cov.Completed == 0 {
		return nil, fmt.Errorf("core: evaluating %s: no trials completed: %w", v.Label(), err)
	}
	v.Coverage = cov

	// Slowdown: golden dynamic instructions, protected / unprotected.
	v.Slowdown = float64(cov.GoldenDyn) / float64(baseDyn)
	return v, nil
}
