package core

import (
	"testing"

	"ipas/internal/fault"
	"ipas/internal/svm"
	"ipas/internal/workloads"
)

// trainedClassifier builds a small real classifier over 31-dim data
// (class decided by feature 0) for exercising policy polarity.
func trainedClassifier(t *testing.T) *Classifier {
	t.Helper()
	prob := &svm.Problem{}
	for i := 0; i < 40; i++ {
		x := make([]float64, 31)
		y := -1
		if i%2 == 0 {
			x[0] = 1
			y = 1
		}
		prob.X = append(prob.X, x)
		prob.Y = append(prob.Y, y)
	}
	model, err := svm.Train(prob, svm.Params{C: 100, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &Classifier{Model: model, Scaler: svm.FitScaler(prob.X)}
}

func TestSelectSitesPolarity(t *testing.T) {
	spec := workloads.MustGet("FFT", 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}
	data, err := Collect(app, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	cls := trainedClassifier(t)
	ipasSites := SelectSites(data, cls, PolicyIPAS)
	baseSites := SelectSites(data, cls, PolicyBaseline)
	if len(ipasSites) != len(baseSites) {
		t.Fatal("site table sizes differ")
	}
	// Baseline must be the exact complement of IPAS for a shared
	// classifier (positive = protect for IPAS; positive = skip for
	// Baseline).
	for s := range ipasSites {
		if data.SiteFeatures[s] == nil {
			continue
		}
		if ipasSites[s] == baseSites[s] {
			t.Fatalf("site %d: policies agree (%v); polarity broken", s, ipasSites[s])
		}
	}
}

func TestProtectModuleConsistentAcrossInputs(t *testing.T) {
	// The same classifier applied to the same code at two input levels
	// must protect structurally corresponding instructions: since only
	// constants change, duplicated counts must match.
	spec1 := workloads.MustGet("IS", 1)
	spec2 := workloads.MustGet("IS", 2)
	m1, err := spec1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := spec2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{Module: m1, Verify: spec1.Verify, Config: spec1.BaseConfig(1)}
	data, err := Collect(app, 120, 6)
	if err != nil {
		t.Fatal(err)
	}
	clss, err := Train(data, data.Labels(PolicyIPAS), svm.LogGrid(1, 1e4, 3, 1e-4, 1, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := ProtectModule(m1, clss[0], PolicyIPAS)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := ProtectModule(m2, clss[0], PolicyIPAS)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Duplicated != st2.Duplicated || st1.Candidates != st2.Candidates {
		t.Fatalf("input levels protected differently: %+v vs %+v", st1, st2)
	}
	if st1.Duplicated == 0 {
		t.Fatal("classifier protected nothing")
	}
}

func TestTrainRejectsDegenerateLabels(t *testing.T) {
	d := &TrainingData{
		X:   [][]float64{make([]float64, 31), make([]float64, 31)},
		SOC: []int{-1, -1},
	}
	if _, err := Train(d, d.SOC, svm.QuickGrid(), 2); err == nil {
		t.Fatal("all-negative training set accepted")
	}
	if _, err := Train(d, []int{1}, svm.QuickGrid(), 2); err == nil {
		t.Fatal("mismatched label length accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{PolicyIPAS, PolicyBaseline, PolicyFullDup, PolicyNone} {
		if p.String() == "" {
			t.Errorf("policy %d unnamed", p)
		}
	}
	v := &Variant{Policy: PolicyIPAS, ConfigIndex: 2}
	if v.Label() != "IPAS-3" {
		t.Errorf("label = %q", v.Label())
	}
	v2 := &Variant{Policy: PolicyFullDup, ConfigIndex: -1}
	if v2.Label() != "FullDup" {
		t.Errorf("label = %q", v2.Label())
	}
}

func TestCollectLabelsMatchCampaign(t *testing.T) {
	spec := workloads.MustGet("FFT", 1)
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}
	data, err := Collect(app, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range data.Campaign.Trials {
		wantSOC := pm1(tr.Outcome == fault.OutcomeSOC)
		wantSym := pm1(tr.Outcome == fault.OutcomeSymptom)
		if data.SOC[i] != wantSOC || data.Symptom[i] != wantSym {
			t.Fatalf("trial %d labels inconsistent with outcome %v", i, tr.Outcome)
		}
	}
}
