// Package experiments regenerates every table and figure of the
// paper's evaluation (§6): Table 3 (code sizes), Figure 5 (coverage),
// Figure 6 (SOC reduction vs slowdown), Figure 7 (duplicated
// instructions), Figure 8 (MPI scalability), Figure 9 (input
// variation), Table 4 (best configurations), Table 5 (inputs), and
// Table 6 (training/duplication time). Results are rendered as ASCII
// tables with the same rows and series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"ipas/internal/campaign"
	"ipas/internal/core"
	"ipas/internal/svm"
	"ipas/internal/workloads"
)

// Params scales the experiment suite.
type Params struct {
	// Workloads restricts the suite (default: all five).
	Workloads []string
	// Opts drives the per-workload IPAS workflow.
	Opts core.Options
	// Ranks is the MPI process ladder for Figure 8.
	Ranks []int
	// InputTrials is the per-input evaluation campaign size (Fig 9).
	InputTrials int
	// MaxInput caps the Figure 9 input ladder (4 = the full Table 5).
	MaxInput int
}

// Quick returns laptop-scale parameters preserving the suite's shape.
func Quick() Params {
	return Params{
		Workloads:   workloads.Names,
		Opts:        core.QuickOptions(),
		Ranks:       []int{1, 2, 4, 8},
		InputTrials: 100,
		MaxInput:    3,
	}
}

// Paper returns the paper-scale parameters (2,500 training samples,
// 500 grid points, 1,024 evaluation injections, inputs up to level 4).
func Paper() Params {
	return Params{
		Workloads:   workloads.Names,
		Opts:        core.PaperOptions(),
		Ranks:       []int{1, 2, 4, 8, 16},
		InputTrials: 1024,
		MaxInput:    4,
	}
}

// Smoke returns minimal parameters for tests.
func Smoke(names ...string) Params {
	if len(names) == 0 {
		names = []string{"FFT"}
	}
	return Params{
		Workloads: names,
		Opts: core.Options{
			Samples:    150,
			Grid:       svm.LogGrid(1, 1e5, 4, 1e-5, 1, 3),
			TopN:       3,
			EvalTrials: 60,
			Seed:       5,
		},
		Ranks:       []int{1, 2},
		InputTrials: 50,
		MaxInput:    2,
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render draws the table in aligned ASCII.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values for
// plotting the paper's figures with external tools.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Suite caches the expensive per-workload workflow runs so that the
// figures and tables that share them (Fig 5/6/7, Table 4/6) reuse one
// training campaign.
type Suite struct {
	Params Params

	mu      sync.Mutex
	ctx     context.Context
	apps    map[string]*core.App
	results map[string]*core.Result
}

// NewSuite builds a suite for the given parameters.
func NewSuite(p Params) *Suite {
	if len(p.Workloads) == 0 {
		p.Workloads = workloads.Names
	}
	if p.MaxInput < 1 {
		p.MaxInput = 1
	}
	return &Suite{
		Params:  p,
		apps:    map[string]*core.App{},
		results: map[string]*core.Result{},
	}
}

// App returns (building lazily) the workload's App at input level 1.
func (s *Suite) App(name string) (*core.App, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if app, ok := s.apps[name]; ok {
		return app, nil
	}
	spec, err := workloads.Get(name, 1)
	if err != nil {
		return nil, err
	}
	m, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	app := &core.App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}
	s.apps[name] = app
	return app, nil
}

// context returns the context installed by RunContext/AllContext
// (Background when the suite is driven through Run/All).
func (s *Suite) context() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// setContext installs ctx for the generators of one Run/All call. The
// suite serializes experiment runs through its caller; concurrent
// RunContext calls with different contexts are not supported.
func (s *Suite) setContext(ctx context.Context) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
}

// Result returns (running lazily) the full workflow result for a
// workload at input level 1.
func (s *Suite) Result(name string) (*core.Result, error) {
	s.mu.Lock()
	if r, ok := s.results[name]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	app, err := s.App(name)
	if err != nil {
		return nil, err
	}
	r, err := core.RunContext(s.context(), app, s.optsFor(name))
	if err != nil {
		return nil, fmt.Errorf("experiments: workflow for %s: %w", name, err)
	}
	s.mu.Lock()
	s.results[name] = r
	s.mu.Unlock()
	return r, nil
}

// optsFor scopes one workload's resilience controls: progress lines
// are prefixed with the workload ("HPCCG: eval IPAS-1") and journals
// land in a per-workload checkpoint subdirectory so stage names cannot
// collide across workloads.
func (s *Suite) optsFor(name string) core.Options {
	opts := s.Params.Opts
	cc := opts.Controls
	if cc == nil {
		return opts
	}
	scoped := *cc
	if cc.Progress != nil {
		report := cc.Progress
		scoped.Progress = func(stage string, done, total, failed, deadlocked int) {
			report(name+": "+stage, done, total, failed, deadlocked)
		}
	}
	if cc.Checkpoint != nil {
		scoped.Checkpoint = cc.Checkpoint.Sub(name)
	}
	if cc.Remote != nil && cc.RemoteSpec == nil {
		// Dispatch each workflow's collection campaign — the suite's
		// dominant injection cost on the unmodified workload — to the
		// coordinator; every other stage (training, protected-variant
		// evaluation) stays local because protected modules do not
		// round-trip through a campaign spec.
		scoped.RemoteSpec = func(stage string) *campaign.Spec {
			if stage != "collect" {
				return nil
			}
			return &campaign.Spec{Workload: name, Input: 1, Ranks: 1}
		}
	}
	opts.Controls = &scoped
	return opts
}

// All runs every experiment and returns the tables in paper order.
func (s *Suite) All() ([]*Table, error) {
	return s.AllContext(context.Background())
}

// AllContext is All with cancellation threaded into every workflow and
// campaign the generators run.
func (s *Suite) AllContext(ctx context.Context) ([]*Table, error) {
	s.setContext(ctx)
	type gen struct {
		id string
		fn func() (*Table, error)
	}
	gens := []gen{
		{"table3", s.Table3},
		{"table5", s.Table5},
		{"fig5", s.Fig5},
		{"fig6", s.Fig6},
		{"fig7", s.Fig7},
		{"table4", s.Table4},
		{"fig8", s.Fig8},
		{"fig9", s.Fig9},
		{"table6", s.Table6},
	}
	var out []*Table
	for _, g := range gens {
		t, err := g.fn()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", g.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Run runs one experiment by ID.
func (s *Suite) Run(id string) (*Table, error) {
	return s.RunContext(context.Background(), id)
}

// RunContext runs one experiment by ID under ctx: cancellation aborts
// the underlying workflows and campaigns, returning ctx's error.
func (s *Suite) RunContext(ctx context.Context, id string) (*Table, error) {
	s.setContext(ctx)
	switch strings.ToLower(id) {
	case "table3":
		return s.Table3()
	case "table4":
		return s.Table4()
	case "table5":
		return s.Table5()
	case "table6":
		return s.Table6()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (want table3|table4|table5|table6|fig5|fig6|fig7|fig8|fig9)", id)
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"table3", "table5", "fig5", "fig6", "fig7", "table4", "fig8", "fig9", "table6"}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2s(v float64) string { return fmt.Sprintf("%.2f", v) }
