package experiments

import (
	"fmt"

	"ipas/internal/core"
	"ipas/internal/interp"
	"ipas/internal/workloads"
)

// Fig8 reproduces Figure 8: the slowdown of the best IPAS configuration
// as the number of MPI processes grows (strong scaling). The slowdown
// is the ratio of the protected job's makespan (maximum per-rank
// dynamic instruction count) to the unprotected one at the same rank
// count; the paper's claim is that it stays flat because duplication
// instruments computation only.
func (s *Suite) Fig8() (*Table, error) {
	header := []string{"Code"}
	for _, r := range s.Params.Ranks {
		header = append(header, fmt.Sprintf("%d ranks", r))
	}
	t := &Table{
		ID:     "Figure8",
		Title:  "Scalability: slowdown of the best IPAS configuration vs MPI processes",
		Header: header,
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		best := r.Best(core.PolicyIPAS)
		app, err := s.App(name)
		if err != nil {
			return nil, err
		}
		spec := workloads.MustGet(name, 1)

		unprot, err := interp.Compile(app.Module, nil)
		if err != nil {
			return nil, err
		}
		prot, err := interp.Compile(best.Module, nil)
		if err != nil {
			return nil, err
		}

		ctx := s.context()
		row := []string{name}
		for _, ranks := range s.Params.Ranks {
			// Timing runs are uninstrumented, so every rank executes on
			// the interpreter's fast loop; the slowdown ratio below is a
			// property of the protected code, not of engine overhead.
			ru := interp.RunContext(ctx, unprot, spec.BaseConfig(ranks))
			rp := interp.RunContext(ctx, prot, spec.BaseConfig(ranks))
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if ru.Trap != interp.TrapNone || rp.Trap != interp.TrapNone {
				detail := ""
				if ru.Deadlock != nil {
					detail += "; unprotected " + ru.Deadlock.Summary()
				}
				if rp.Deadlock != nil {
					detail += "; protected " + rp.Deadlock.Summary()
				}
				return nil, fmt.Errorf("experiments: fig8 %s at %d ranks trapped: %v/%v (%s%s)%s",
					name, ranks, ru.Trap, rp.Trap, ru.TrapMsg, rp.TrapMsg, detail)
			}
			row = append(row, f2s(float64(rp.MaxRankDyn)/float64(ru.MaxRankDyn)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"slowdown = protected/unprotected makespan (max per-rank dynamic instructions)")
	return t, nil
}
