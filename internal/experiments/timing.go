package experiments

import "fmt"

// Table6 reproduces Table 6: per code, the wall time of Step 3
// (training, including grid search and the top-N final fits) and of
// Step 4 (classification of every instruction plus duplication of all
// protected variants).
func (s *Suite) Table6() (*Table, error) {
	t := &Table{
		ID:     "Table6",
		Title:  "Training and duplication time",
		Header: []string{"", "Training time (sec)", "Duplication time (sec)", "Total time (sec)"},
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		train := r.TrainIPASTime.Seconds()
		dupT := r.ProtectTime.Seconds()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", train),
			fmt.Sprintf("%.2f", dupT),
			fmt.Sprintf("%.2f", train+dupT),
		})
	}
	t.Notes = append(t.Notes,
		"duplication time covers classification + duplication of all top-N variants of both techniques")
	return t, nil
}
