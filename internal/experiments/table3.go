package experiments

import (
	"fmt"
	"strings"

	"ipas/internal/workloads"
)

// Table3 reports the size of each code: static IR instructions and sci
// lines of code (the paper's Table 3 reports static LLVM instructions
// and C lines of code).
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		ID:     "Table3",
		Title:  "Number of static IR instructions and lines of code",
		Header: []string{"", "Static instructions", "Lines of code"},
	}
	for _, name := range s.Params.Workloads {
		app, err := s.App(name)
		if err != nil {
			return nil, err
		}
		spec := workloads.MustGet(name, 1)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(app.Module.NumInstrs()),
			fmt.Sprint(countLoC(spec.Source)),
		})
	}
	return t, nil
}

// countLoC counts non-blank, non-comment-only sci source lines.
func countLoC(src string) int {
	n := 0
	for _, ln := range strings.Split(src, "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "//") {
			continue
		}
		n++
	}
	return n
}

// Table5 lists the application inputs (the paper's Table 5): input 1 is
// used for training, inputs 2-4 are the larger production-style inputs.
func (s *Suite) Table5() (*Table, error) {
	t := &Table{
		ID:     "Table5",
		Title:  "Application inputs (input 1 is used for training)",
		Header: []string{"Code", "Input 1", "Input 2", "Input 3", "Input 4"},
	}
	for _, name := range s.Params.Workloads {
		row := []string{name}
		for in := 1; in <= 4; in++ {
			spec, err := workloads.Get(name, in)
			if err != nil {
				return nil, err
			}
			row = append(row, spec.InputDesc)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
