package experiments

import "testing"

func TestSuiteCachesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a workflow")
	}
	s := NewSuite(Smoke("FFT"))
	r1, err := s.Result("FFT")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result("FFT")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("workflow result not cached")
	}
	a1, err := s.App("FFT")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.App("FFT")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("app not cached")
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	s := NewSuite(Params{Workloads: []string{"BOGUS"}, Opts: Smoke().Opts})
	if _, err := s.Table3(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestIDsMatchRun(t *testing.T) {
	s := NewSuite(Params{Opts: Smoke().Opts})
	for _, id := range IDs() {
		switch id {
		case "table3", "table5":
			if _, err := s.Run(id); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
		default:
			// Campaign-backed experiments are exercised in the smoke
			// suite test; here we only confirm the ID resolves.
		}
	}
}
