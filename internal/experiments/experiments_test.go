package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:     "TableX",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"one", "2"}, {"three", "4"}},
		Notes:  []string{"hello"},
	}
	out := tb.Render()
	for _, want := range []string{"TableX", "bbbb", "three", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	s := NewSuite(Smoke())
	if _, err := s.Run("fig42"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestStaticExperiments(t *testing.T) {
	// Table 3 and Table 5 need no campaigns; they must be fast and
	// complete for all five workloads.
	s := NewSuite(Params{Opts: Smoke().Opts, MaxInput: 4})
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 5 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	// Relative code sizes should mirror the paper's Table 3 ordering:
	// CoMD is the largest code, FFT the smallest.
	sizes := map[string]int{}
	for _, row := range t3.Rows {
		var n int
		if _, err := parseInt(row[1], &n); err != nil {
			t.Fatalf("bad count %q", row[1])
		}
		sizes[row[0]] = n
	}
	if !(sizes["CoMD"] > sizes["FFT"]) {
		t.Errorf("expected CoMD > FFT in static size: %v", sizes)
	}

	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 5 || len(t5.Rows[0]) != 5 {
		t.Fatalf("table5 shape %dx%d", len(t5.Rows), len(t5.Rows[0]))
	}
}

func parseInt(s string, out *int) (int, error) {
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errParse
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return n, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

func TestSmokeSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite runs campaigns")
	}
	s := NewSuite(Smoke("FFT"))
	for _, id := range IDs() {
		tb, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		t.Logf("\n%s", tb.Render())
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", `q"z`}, {"plain", "2"}},
	}
	got := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\nplain,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
