package experiments

import (
	"fmt"

	"ipas/internal/core"
	"ipas/internal/fault"
	"ipas/internal/stats"
)

// Fig5 reproduces Figure 5: the outcome proportions (observable
// symptom, detected by duplication, masked, SOC) of statistical fault
// injection against the unprotected build, full duplication, and the
// top-N IPAS and Baseline configurations, with the 95% margin of error
// of the unprotected SOC proportion reported as a note (§6.2).
func (s *Suite) Fig5() (*Table, error) {
	t := &Table{
		ID:     "Figure5",
		Title:  "Coverage results (outcome proportions per variant)",
		Header: []string{"Code", "Variant", "Symptom%", "Detected%", "Masked%", "SOC%"},
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		for _, v := range r.AllVariants() {
			t.Rows = append(t.Rows, []string{
				name,
				v.Label(),
				f1(100 * v.Coverage.Proportion(fault.OutcomeSymptom)),
				f1(100 * v.Coverage.Proportion(fault.OutcomeDetected)),
				f1(100 * v.Coverage.Proportion(fault.OutcomeMasked)),
				f1(100 * v.Coverage.Proportion(fault.OutcomeSOC)),
			})
		}
		p := r.Unprotected.Coverage.Proportion(fault.OutcomeSOC)
		n := len(r.Unprotected.Coverage.Trials)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: unprotected SOC %.2f%% ± %.2f%% at 95%% confidence (n=%d)",
			name, 100*p, 100*stats.MarginOfError95(p, n), n))
	}
	return t, nil
}

// Fig6 reproduces Figure 6: SOC-reduction percentage versus slowdown
// for every top-N configuration of IPAS and Baseline.
func (s *Suite) Fig6() (*Table, error) {
	t := &Table{
		ID:     "Figure6",
		Title:  "Percentage of SOC reduction versus slowdown",
		Header: []string{"Code", "Variant", "SOC reduction %", "Slowdown"},
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		vars := append(append([]*core.Variant{}, r.IPAS...), r.Baseline...)
		vars = append(vars, r.FullDup)
		for _, v := range vars {
			t.Rows = append(t.Rows, []string{
				name, v.Label(), f1(v.SOCReductionPct), f2s(v.Slowdown),
			})
		}
	}
	return t, nil
}

// Fig7 reproduces Figure 7: the percentage of duplicated (duplicable)
// instructions, averaged over the top-N configurations per technique.
func (s *Suite) Fig7() (*Table, error) {
	t := &Table{
		ID:     "Figure7",
		Title:  "Average percentage of duplicated instructions (top-N mean)",
		Header: []string{"Code", "IPAS dup%", "Baseline dup%", "FullDup dup%"},
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		avg := func(vs []*core.Variant) float64 {
			var xs []float64
			for _, v := range vs {
				xs = append(xs, v.Stats.DuplicatedPercent())
			}
			return stats.Mean(xs)
		}
		t.Rows = append(t.Rows, []string{
			name,
			f1(avg(r.IPAS)),
			f1(avg(r.Baseline)),
			f1(r.FullDup.Stats.DuplicatedPercent()),
		})
	}
	return t, nil
}

// Table4 reproduces Table 4: for each code, the best IPAS and Baseline
// configurations under the ideal-point criterion (minimum Euclidean
// distance to slowdown 1, reduction 100 — §6.3).
func (s *Suite) Table4() (*Table, error) {
	t := &Table{
		ID:    "Table4",
		Title: "Best configurations (ideal-point criterion)",
		Header: []string{"Code", "IPAS reduction %", "Baseline reduction %",
			"IPAS slowdown", "Baseline slowdown"},
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		bi := r.Best(core.PolicyIPAS)
		bb := r.Best(core.PolicyBaseline)
		t.Rows = append(t.Rows, []string{
			name,
			f1(bi.SOCReductionPct), f1(bb.SOCReductionPct),
			f2s(bi.Slowdown), f2s(bb.Slowdown),
		})
	}
	return t, nil
}
