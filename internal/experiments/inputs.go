package experiments

import (
	"context"
	"fmt"

	"ipas/internal/core"
	"ipas/internal/fault"
	"ipas/internal/workloads"
)

// runInputCampaign runs one Figure 9 campaign under the suite's
// context and controls, tolerating infrastructure-degraded results.
func (s *Suite) runInputCampaign(ctx context.Context, cc *core.CampaignControls, stage string, c *fault.Campaign) (*fault.CampaignResult, error) {
	if err := cc.Apply(c, stage); err != nil {
		return nil, err
	}
	res, err := c.RunContext(ctx, s.Params.InputTrials)
	if res == nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("no trials completed: %w", err)
	}
	return res, nil
}

// Fig9 reproduces Figure 9: IPAS is trained on input 1 and the
// protection it selects is applied to the same code built for larger
// inputs (Table 5); the SOC reduction per input is reported. The
// paper's claim is that reduction stays comparable across inputs.
func (s *Suite) Fig9() (*Table, error) {
	header := []string{"Code"}
	for in := 1; in <= s.Params.MaxInput; in++ {
		header = append(header, fmt.Sprintf("Input %d", in))
	}
	t := &Table{
		ID:     "Figure9",
		Title:  "SOC reduction (%) as the input is varied; trained on input 1",
		Header: header,
	}
	for _, name := range s.Params.Workloads {
		r, err := s.Result(name)
		if err != nil {
			return nil, err
		}
		best := r.Best(core.PolicyIPAS)
		row := []string{name}
		for in := 1; in <= s.Params.MaxInput; in++ {
			red, err := s.inputReduction(name, in, best.Classifier)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s input %d: %w", name, in, err)
			}
			row = append(row, f1(red))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d injections per input per variant", s.Params.InputTrials))
	return t, nil
}

// inputReduction evaluates the trained classifier's protection on one
// input level and returns the SOC reduction relative to that input's
// unprotected SOC proportion. Its two campaigns inherit the suite's
// context and resilience controls, so Figure 9 is cancellable and
// tolerates degraded (partially failed) campaigns like the workflow.
func (s *Suite) inputReduction(name string, input int, cls *core.Classifier) (float64, error) {
	spec, err := workloads.Get(name, input)
	if err != nil {
		return 0, err
	}
	m, err := spec.Compile()
	if err != nil {
		return 0, err
	}
	cfg := spec.BaseConfig(1)
	ctx := s.context()
	controls := s.optsFor(name).Controls

	unprotProg, err := fault.Compile(m)
	if err != nil {
		return 0, err
	}
	unprotRes, err := s.runInputCampaign(ctx, controls, fmt.Sprintf("fig9 input%d unprot", input), &fault.Campaign{
		Prog: unprotProg, Verify: spec.Verify, Config: cfg, Seed: 101 + int64(input),
	})
	if err != nil {
		return 0, err
	}

	protected, _, err := core.ProtectModule(m, cls, core.PolicyIPAS)
	if err != nil {
		return 0, err
	}
	protProg, err := fault.Compile(protected)
	if err != nil {
		return 0, err
	}
	protRes, err := s.runInputCampaign(ctx, controls, fmt.Sprintf("fig9 input%d prot", input), &fault.Campaign{
		Prog: protProg, Verify: spec.Verify, Config: cfg, Seed: 202 + int64(input),
	})
	if err != nil {
		return 0, err
	}

	unprotSOC := unprotRes.Proportion(fault.OutcomeSOC)
	if unprotSOC == 0 {
		return 100, nil // nothing to corrupt silently at this input
	}
	protSOC := protRes.Proportion(fault.OutcomeSOC)
	return 100 * (unprotSOC - protSOC) / unprotSOC, nil
}
