// Package ipas is the public facade of the IPAS reproduction — the
// paper's workflow (Figure 1) behind a small API:
//
//	app, _ := ipas.FromWorkload("HPCCG", 1)      // or ipas.FromSci(src, verify, cfg)
//	res, _ := ipas.RunWorkflow(app, ipas.QuickOptions())
//	best := res.Best(ipas.PolicyIPAS)            // ideal-point best configuration
//	fmt.Println(best.SOCReductionPct, best.Slowdown)
//
// The heavy lifting lives in the internal packages: ir (the SSA IR),
// lang (the sci front end), interp (the deterministic executor with the
// simulated MPI runtime), fault (the FlipIt-style injector), features /
// slicer (Table 1 feature extraction), svm (the RBF C-SVM), dup (the
// duplication pass), core (workflow orchestration), workloads (the five
// evaluation codes), and experiments (every table and figure of §6).
package ipas

import (
	"context"
	"fmt"

	"ipas/internal/baseline"
	"ipas/internal/core"
	"ipas/internal/dup"
	"ipas/internal/experiments"
	"ipas/internal/fault"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
	"ipas/internal/workloads"
)

// App is an application prepared for the workflow: IR module,
// verification routine, and execution configuration.
type App = core.App

// Options parameterizes the workflow (sample counts, grid, top-N).
type Options = core.Options

// WorkflowResult carries every variant the workflow produced.
type WorkflowResult = core.Result

// Variant is one (possibly protected) build with its coverage
// evaluation and slowdown.
type Variant = core.Variant

// Classifier is a trained site classifier.
type Classifier = core.Classifier

// Policy selects the protection strategy.
type Policy = core.Policy

// Protection policies.
const (
	PolicyIPAS     = core.PolicyIPAS
	PolicyBaseline = core.PolicyBaseline
	PolicyFullDup  = core.PolicyFullDup
	PolicyNone     = core.PolicyNone
)

// Verifier decides whether a completed run's output is acceptable.
type Verifier = fault.Verifier

// RunResult is one execution's outcome (outputs, traps, instruction
// counts).
type RunResult = interp.Result

// RunConfig parameterizes execution (ranks, heap, budget).
type RunConfig = interp.Config

// CampaignResult aggregates a statistical fault-injection campaign.
type CampaignResult = fault.CampaignResult

// Trial is one injection's record inside a CampaignResult.
type Trial = fault.Trial

// TrialStatus partitions trials into completed / failed / pending.
type TrialStatus = fault.TrialStatus

// Trial statuses.
const (
	TrialCompleted = fault.TrialCompleted
	TrialFailed    = fault.TrialFailed
	TrialPending   = fault.TrialPending
)

// Journal is an append-only JSONL trial log enabling campaign
// checkpoint/resume.
type Journal = fault.Journal

// OpenJournal opens (or creates) a trial journal at path.
func OpenJournal(path string) (*Journal, error) { return fault.OpenJournal(path) }

// Checkpoint manages a directory of per-stage trial journals for
// multi-campaign runs (the workflow and the experiment suite).
type Checkpoint = core.Checkpoint

// NewCheckpoint creates a checkpoint manager rooted at dir. With resume
// false, reusing a directory that already holds trial journals is an
// error (protects against accidentally mixing campaigns).
func NewCheckpoint(dir string, resume bool) (*Checkpoint, error) {
	return core.NewCheckpoint(dir, resume)
}

// CampaignControls carries the resilience knobs (retry policy, worker
// count, progress reporting, checkpointing) threaded into every
// campaign a workflow runs; set it on Options.Controls.
type CampaignControls = core.CampaignControls

// Outcome classification of a single injection (§5.5 of the paper).
const (
	OutcomeSymptom  = fault.OutcomeSymptom
	OutcomeDetected = fault.OutcomeDetected
	OutcomeMasked   = fault.OutcomeMasked
	OutcomeSOC      = fault.OutcomeSOC
)

// QuickOptions returns laptop-scale workflow parameters.
func QuickOptions() Options { return core.QuickOptions() }

// PaperOptions returns the paper-scale parameters (2,500 samples, 500
// grid points, 1,024 evaluation injections).
func PaperOptions() Options { return core.PaperOptions() }

// FromSci compiles a sci program and bundles it with its verification
// routine into an App. The verifier receives the golden (fault-free)
// result and the run under test.
func FromSci(source string, verify Verifier, cfg RunConfig) (*App, error) {
	m, err := lang.Compile(source)
	if err != nil {
		return nil, err
	}
	if verify == nil {
		return nil, fmt.Errorf("ipas: a verification routine is required (Step 1 of the workflow)")
	}
	return &App{Module: m, Verify: verify, Config: cfg}, nil
}

// FromWorkload loads one of the paper's five evaluation codes ("CoMD",
// "HPCCG", "AMG", "FFT", "IS") at the given input level (1..4, Table 5)
// together with its verification routine.
func FromWorkload(name string, input int) (*App, error) {
	spec, err := workloads.Get(name, input)
	if err != nil {
		return nil, err
	}
	m, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return &App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}, nil
}

// WorkloadNames lists the five evaluation codes.
func WorkloadNames() []string { return append([]string(nil), workloads.Names...) }

// RunWorkflow executes the complete IPAS workflow (data collection,
// training, protection, coverage evaluation) plus the paper's
// comparison points (full duplication and the Shoestring-style
// baseline).
func RunWorkflow(app *App, opts Options) (*WorkflowResult, error) {
	return core.Run(app, opts)
}

// RunWorkflowContext is RunWorkflow with cancellation: ctx aborts the
// workflow between and inside its campaigns, and with
// Options.Controls.Checkpoint set, an interrupted workflow re-invoked
// against the same checkpoint directory resumes where it stopped.
func RunWorkflowContext(ctx context.Context, app *App, opts Options) (*WorkflowResult, error) {
	return core.RunContext(ctx, app, opts)
}

// ProtectBest runs the workflow and returns the IPAS variant closest to
// the ideal point (slowdown 1, SOC reduction 100) — the build a user
// would ship to production.
func ProtectBest(app *App, opts Options) (*Variant, error) {
	res, err := core.Run(app, opts)
	if err != nil {
		return nil, err
	}
	best := res.Best(core.PolicyIPAS)
	if best == nil {
		return nil, fmt.Errorf("ipas: workflow produced no IPAS variants")
	}
	return best, nil
}

// ProtectStatic applies the original Shoestring's static data-flow
// policy (no fault injection, no training — internal/baseline) and
// returns the protected module plus duplication statistics. Useful as a
// zero-training comparison point or when no verification routine
// exists.
func ProtectStatic(app *App) (*ir.Module, dup.Stats, error) {
	m := ir.CloneModule(app.Module)
	st, err := dup.Protect(m, baseline.Policy(m, baseline.Config{}))
	return m, st, err
}

// FullDuplication applies SWIFT-style full duplication and returns the
// protected module plus statistics.
func FullDuplication(app *App) (*ir.Module, dup.Stats, error) {
	m := ir.CloneModule(app.Module)
	st, err := dup.FullDuplication(m)
	return m, st, err
}

// ExecuteModule runs an arbitrary (e.g. protected) module.
func ExecuteModule(m *ir.Module, cfg RunConfig) (*RunResult, error) {
	prog, err := interp.Compile(m, nil)
	if err != nil {
		return nil, err
	}
	return interp.Run(prog, cfg), nil
}

// InjectFaults runs a FlipIt-style statistical fault-injection campaign
// of n single-bit flips against the (unprotected) application and
// classifies each outcome.
func InjectFaults(app *App, n int, seed int64) (*CampaignResult, error) {
	prog, err := fault.Compile(app.Module)
	if err != nil {
		return nil, err
	}
	c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: seed}
	return c.Run(n)
}

// InjectFaultsContext is InjectFaults with cancellation and an optional
// journal for checkpoint/resume. On cancellation it returns the partial
// result alongside ctx's error; completed trials are already in the
// journal, so rerunning with the same journal resumes the campaign.
func InjectFaultsContext(ctx context.Context, app *App, n int, seed int64, j *Journal) (*CampaignResult, error) {
	prog, err := fault.Compile(app.Module)
	if err != nil {
		return nil, err
	}
	c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: seed, Journal: j}
	return c.RunContext(ctx, n)
}

// Execute runs the application fault-free and returns its outputs and
// dynamic instruction counts.
func Execute(app *App, cfg RunConfig) (*RunResult, error) {
	prog, err := interp.Compile(app.Module, nil)
	if err != nil {
		return nil, err
	}
	res := interp.Run(prog, cfg)
	return res, nil
}

// ExperimentSuite exposes the evaluation-regeneration engine (one
// generator per table/figure of the paper's §6).
type ExperimentSuite = experiments.Suite

// ExperimentParams scales the experiment suite.
type ExperimentParams = experiments.Params

// NewExperimentSuite builds a suite; use experiments IDs "table3",
// "table4", "table5", "table6", "fig5".."fig9".
func NewExperimentSuite(p ExperimentParams) *ExperimentSuite {
	return experiments.NewSuite(p)
}

// QuickExperiments returns laptop-scale experiment parameters;
// PaperExperiments returns the paper-scale ones.
func QuickExperiments() ExperimentParams { return experiments.Quick() }

// PaperExperiments returns the paper-scale experiment parameters.
func PaperExperiments() ExperimentParams { return experiments.Paper() }
