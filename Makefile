# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short vet lint race ci bench bench-svm bench-all bench-smoke bench-check bench-compose compose-smoke chaos-smoke server-chaos-smoke errmodel-smoke fuzz-smoke fuzz-nightly experiments experiments-paper examples clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Style + correctness gate: gofmt (fails listing unformatted files),
# go vet, and staticcheck when installed. staticcheck is optional
# locally (no network install here); CI installs it explicitly, so the
# gate is always enforced where it matters.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run with shuffled test order; the campaign engine and
# the SVM training pipeline are concurrent (worker pools, kernel cache,
# journal writes, progress callbacks, cancellation), so this is the
# test mode that matters for them, and shuffling catches accidental
# inter-test ordering dependencies.
race:
	$(GO) test -race -shuffle=on -timeout=30m ./...

# The pre-push check: lint, race+shuffle tests, then every smoke suite
# in the same order as the CI workflow's matrix (see
# .github/workflows/ci.yml) — a green `make ci` is a green CI run.
ci: lint build race bench-check chaos-smoke server-chaos-smoke compose-smoke errmodel-smoke fuzz-smoke

# Interpreter + campaign throughput benchmarks (the perf trajectory of
# the execution engine), recorded machine-readably in BENCH_interp.json.
# BenchmarkDeadlockDetection records structural deadlock-detection
# latency — the metric that replaced the former 10 s wall-clock wait.
# BenchmarkShardedCampaign tracks the sharded engine's overhead floor
# (1 shard) and its scaling configuration (one shard per core).
# BenchmarkCampaignSetup records Prepare cold vs warm: the warm number
# is the golden-run cache's enforced win (breaking the cache turns a
# sub-millisecond hit into a full golden run, which benchdiff rejects).
BENCH_INTERP = BenchmarkInterpreter|BenchmarkInterpreterInstrumented|BenchmarkCampaignThroughput|BenchmarkCampaignSetup|BenchmarkShardedCampaign|BenchmarkDeadlockDetection
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_INTERP)' -benchtime=2s . \
		| $(GO) run ./cmd/bench2json -o BENCH_interp.json

# SVM training-pipeline benchmarks (serial baseline vs pooled search
# with the kernel cache, plus the cache's miss/hit unit costs),
# recorded in BENCH_svm.json. The grid search runs a fixed iteration
# count because one search takes seconds; the cache benches need many
# iterations to resolve the ns-scale hit path.
bench-svm:
	{ $(GO) test -run '^$$' -bench 'BenchmarkGridSearch' -benchtime=2x ./internal/svm && \
	  $(GO) test -run '^$$' -bench 'BenchmarkKernelCache' -benchtime=1000x ./internal/svm; } \
		| $(GO) run ./cmd/bench2json -o BENCH_svm.json

# Single-iteration smoke of the recorded benchmarks (what CI runs):
# proves they execute and leaves JSON reports for bench-check to diff.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_INTERP)' -benchtime=1x . \
		| $(GO) run ./cmd/bench2json -o bench_smoke_interp.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkGridSearch' -benchtime=1x ./internal/svm && \
	  $(GO) test -run '^$$' -bench 'BenchmarkKernelCache' -benchtime=100x ./internal/svm; } \
		| $(GO) run ./cmd/bench2json -o bench_smoke_svm.json

# Bench-regression gate: smoke-run the benchmarks and compare against
# the checked-in reference reports. The 10x tolerance is deliberately
# generous — it passes machine variance and fails order-of-magnitude
# regressions (see cmd/benchdiff).
bench-check: bench-smoke
	$(GO) run ./cmd/benchdiff -base BENCH_interp.json bench_smoke_interp.json
	$(GO) run ./cmd/benchdiff -base BENCH_svm.json bench_smoke_svm.json

# Sectioned-campaign differential smoke (what CI runs): the composed
# whole-program distribution must agree with a monolithic campaign on
# the two fastest workloads, incremental re-analysis accounting must be
# exact (internal/compose/differential_test.go), and the analytic
# trial-count advantage is regenerated and diffed against the
# checked-in BENCH_compose.json — the counts are exact and
# machine-independent, so the benchdiff gate catches any allocation
# that balloons. Regenerate the reference with `make bench-compose`.
compose-smoke:
	$(GO) test -race -shuffle=on -count=1 -timeout=10m \
		-run 'TestDifferentialComposedVsMonolithic/(FFT|IS)|TestIncrementalReanalysis' ./internal/compose
	$(GO) run ./cmd/composebench -o bench_smoke_compose.json
	$(GO) run ./cmd/benchdiff -base BENCH_compose.json -min-ns 1 bench_smoke_compose.json

# Regenerate the checked-in sectioned-vs-monolithic trial-count report.
bench-compose:
	$(GO) run ./cmd/composebench -o BENCH_compose.json

# Chaos tests for the sharded campaign engine under the race detector:
# mid-campaign kills, torn/corrupt/deleted shard journals, and injected
# shard panics must all converge back to the bit-identical result (see
# internal/fault/shard/chaos_test.go).
chaos-smoke:
	$(GO) test -race -shuffle=on -run 'Chaos' -timeout=10m ./internal/fault/...

# Chaos tests for the campaign coordinator under the race detector:
# worker processes SIGKILLed mid-shard, dropped heartbeats, leases
# expiring under slow workers, and a shard forced to retry exhaustion
# must all converge to a merged journal bit-identical to a local
# single-loop run (see internal/campaign/chaos_test.go).
server-chaos-smoke:
	$(GO) test -race -shuffle=on -run 'TestServerChaos' -timeout=10m ./internal/campaign

# Error-model smoke under the race detector: the per-model determinism
# matrix (worker/shard/resume/remote invariance for every built-in
# model), the instrumented-loop-vs-reference-walker differential over
# masks/correlation/stickiness, journal forward-compat (unknown models
# refuse resume in every format), and the iterative-convergence
# workloads' golden checks across all five harness paths (see
# "Error models" in DESIGN.md).
errmodel-smoke:
	$(GO) test -race -shuffle=on -count=1 -timeout=10m \
		-run 'Model|TestDifferentialErrorModels|TestTrialRecordsEffectiveBitAndMask|TestConvergence' \
		./internal/interp ./internal/fault/... ./internal/campaign ./internal/workloads

# Short randomized-schedule fuzz of the simulated MPI runtime under
# the race detector: random rank programs with random comm patterns
# must keep outcome classes schedule-independent and clean/deadlock
# results bit-identical (see FuzzMPISchedule). CI runs this as a
# smoke; run it open-ended with a larger -fuzztime to go hunting.
fuzz-smoke:
	$(GO) test -run '^FuzzMPISchedule$$' -fuzz '^FuzzMPISchedule$$' -fuzztime 10s -race ./internal/interp

# Long-running fuzz of the differential oracle (fused fast loop vs
# instrumented loop vs IR reference walker) and the MPI schedule
# invariants. The nightly CI job runs each for 10 minutes and uploads
# any crashers from testdata/fuzz as artifacts; FUZZTIME overrides the
# budget locally.
FUZZTIME ?= 10m
fuzz-nightly:
	$(GO) test -run '^FuzzDifferential$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME) ./internal/interp
	$(GO) test -run '^FuzzMPISchedule$$' -fuzz '^FuzzMPISchedule$$' -fuzztime $(FUZZTIME) -race ./internal/interp

# One benchmark per paper table/figure plus component and ablation
# benches; writes bench_output.txt.
bench-all:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure of the paper's evaluation at quick
# scale (about an hour on one core); -paper for full scale.
experiments:
	$(GO) run ./cmd/experiments -run all | tee quick_experiments_output.txt

experiments-paper:
	$(GO) run ./cmd/experiments -run all -paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customkernel
	$(GO) run ./examples/faultinjection
	$(GO) run ./examples/mpiscaling

clean:
	rm -f bench_output.txt test_output.txt bench_smoke_interp.json bench_smoke_svm.json bench_smoke_compose.json
