# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test test-short vet race ci bench bench-all bench-smoke experiments experiments-paper examples clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run; the campaign engine is concurrent (worker pools,
# journal writes, progress callbacks, cancellation), so this is the
# test mode that matters for it.
race:
	$(GO) test -race ./...

# What CI runs (see .github/workflows/ci.yml).
ci: vet build race

# Interpreter + campaign throughput benchmarks (the perf trajectory of
# the execution engine), recorded machine-readably in BENCH_interp.json.
BENCH_INTERP = BenchmarkInterpreter|BenchmarkInterpreterInstrumented|BenchmarkCampaignThroughput
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_INTERP)' -benchtime=2s . \
		| $(GO) run ./cmd/bench2json -o BENCH_interp.json

# Single-iteration smoke of the same benchmarks (what CI runs): proves
# they execute and that bench2json parses their output.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_INTERP)' -benchtime=1x . \
		| $(GO) run ./cmd/bench2json -o /dev/null

# One benchmark per paper table/figure plus component and ablation
# benches; writes bench_output.txt.
bench-all:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure of the paper's evaluation at quick
# scale (about an hour on one core); -paper for full scale.
experiments:
	$(GO) run ./cmd/experiments -run all | tee quick_experiments_output.txt

experiments-paper:
	$(GO) run ./cmd/experiments -run all -paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customkernel
	$(GO) run ./examples/faultinjection
	$(GO) run ./examples/mpiscaling

clean:
	rm -f bench_output.txt test_output.txt
