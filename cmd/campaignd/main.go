// Command campaignd is the fault-injection campaign coordinator: it
// accepts campaign specs over HTTP/JSON, partitions each trial space
// into deterministic shards, and dispatches the shards to ipas-worker
// processes under time-bounded leases with durable journal acks. See
// DESIGN.md §12 for the protocol and recovery rules.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipas/internal/campaign"
	"ipas/internal/fault"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	dir := flag.String("dir", "campaigns", "journal root directory (one subdirectory per campaign)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "worker lease duration; a worker that misses it loses its shard")
	backoff := flag.Duration("backoff", time.Second, "base quarantine delay; requeue k waits backoff<<(k-1)")
	retries := flag.Int("shard-retries", 2, "shard quarantine retries before its unexecuted trials fail (0 = none)")
	fsyncEvery := flag.Int("fsync-every", 0, "extra journal fsync interval between acks (acks always fsync first)")
	quiet := flag.Bool("quiet", false, "suppress operational log lines")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := campaign.New(campaign.Options{
		Dir:        *dir,
		LeaseTTL:   *leaseTTL,
		Backoff:    *backoff,
		Retries:    fault.ExplicitRetries(*retries),
		FsyncEvery: *fsyncEvery,
		Logf:       logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "campaignd: listening on %s, journals in %s\n", *addr, *dir)
	err = hs.ListenAndServe()
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		os.Exit(1)
	}
}
