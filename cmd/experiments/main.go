// Command experiments regenerates the paper's evaluation tables and
// figures (§6): Table 3-6 and Figures 5-9.
//
// Usage:
//
//	experiments [-run all|table3|table4|table5|table6|fig5|fig6|fig7|fig8|fig9]
//	            [-quick|-paper] [-workloads CoMD,HPCCG,...] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipas/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all or one of "+strings.Join(experiments.IDs(), "|"))
	paper := flag.Bool("paper", false, "paper-scale parameters (hours of CPU time)")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all five)")
	trials := flag.Int("trials", 0, "override evaluation injections per variant")
	samples := flag.Int("samples", 0, "override training sample count")
	seed := flag.Int64("seed", 1, "RNG seed")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()

	params := experiments.Quick()
	if *paper {
		params = experiments.Paper()
	}
	if *wl != "" {
		params.Workloads = strings.Split(*wl, ",")
	}
	if *trials > 0 {
		params.Opts.EvalTrials = *trials
		params.InputTrials = *trials
	}
	if *samples > 0 {
		params.Opts.Samples = *samples
	}
	params.Opts.Seed = *seed

	suite := experiments.NewSuite(params)
	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		t, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
