// Command experiments regenerates the paper's evaluation tables and
// figures (§6): Table 3-6 and Figures 5-9.
//
// Long runs are interruptible: Ctrl-C (or -deadline expiry) stops the
// suite cleanly, and -progress reports per-campaign trial counts on
// stderr together with error summaries for campaigns that degraded
// (some trials failed infrastructure-side and were excluded).
//
// With -remote URL every workflow's collection campaign is dispatched
// to a campaignd coordinator and executed by its worker fleet; the
// remaining stages run locally. Results stay bit-identical.
//
// Usage:
//
//	experiments [-run all|table3|table4|table5|table6|fig5|fig6|fig7|fig8|fig9]
//	            [-quick|-paper] [-workloads CoMD,HPCCG,...] [-trials N] [-seed S]
//	            [-deadline D] [-max-retries N] [-shards K] [-shard-retries N]
//	            [-watchdog D] [-remote URL] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"ipas/internal/campaign"
	"ipas/internal/core"
	"ipas/internal/experiments"
	"ipas/internal/fault"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all or one of "+strings.Join(experiments.IDs(), "|"))
	paper := flag.Bool("paper", false, "paper-scale parameters (hours of CPU time)")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all five)")
	trials := flag.Int("trials", 0, "override evaluation injections per variant")
	samples := flag.Int("samples", 0, "override training sample count")
	seed := flag.Int64("seed", 1, "RNG seed")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the whole suite (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "per-trial retries after infrastructure errors (0 = none)")
	shards := flag.Int("shards", 1, "failure-isolated shards per campaign; >1 selects the sharded engine (results are bit-identical)")
	shardRetries := flag.Int("shard-retries", 2, "quarantine retries before a sick shard's remaining trials are failed (0 = none)")
	watchdog := flag.Duration("watchdog", 0, "per-MPI-op wall-clock watchdog in every campaign (0 = interpreter default)")
	remote := flag.String("remote", "", "campaignd coordinator URL; dispatch each workflow's collection campaign there")
	trainWorkers := flag.Int("train-workers", 0, "concurrent grid-search workers for SVM training (0 = GOMAXPROCS; results are identical for any count)")
	progress := flag.Bool("progress", false, "report per-campaign progress and error summaries on stderr")
	sections := flag.Bool("sections", false, "run each campaign sectioned: stratify trials over IR sections with per-section budgets and fingerprint-keyed journals")
	sectionCoverage := flag.Int("coverage", 1, "sectioned coverage factor: expected injections per exercised site per section")
	maxPerSection := flag.Int("max-per-section", 0, "cap on any one section's trial budget (0 = engine default)")
	errorModel := flag.String("error-model", "", "error model for every injection campaign: single-bit (default), burst-N, random-N, correlated, sticky")
	flag.Parse()
	model, err := fault.ParseModel(*errorModel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	params := experiments.Quick()
	if *paper {
		params = experiments.Paper()
	}
	if *wl != "" {
		params.Workloads = strings.Split(*wl, ",")
	}
	if *trials > 0 {
		params.Opts.EvalTrials = *trials
		params.InputTrials = *trials
	}
	if *samples > 0 {
		params.Opts.Samples = *samples
	}
	params.Opts.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	controls := &core.CampaignControls{
		Model:           model,
		MaxRetries:      fault.ExplicitRetries(*maxRetries),
		TrainWorkers:    *trainWorkers,
		Shards:          *shards,
		ShardRetries:    fault.ExplicitRetries(*shardRetries),
		Watchdog:        *watchdog,
		Sections:        *sections,
		SectionCoverage: *sectionCoverage,
		MaxPerSection:   *maxPerSection,
	}
	if *remote != "" {
		// The suite scopes a per-workload RemoteSpec onto these
		// controls (collection campaigns only; see Suite.optsFor).
		controls.Remote = &campaign.Client{Base: *remote}
	}
	if *progress {
		controls.Progress = newProgressReporter()
	}
	params.Opts.Controls = controls

	suite := experiments.NewSuite(params)
	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		t, err := suite.RunContext(ctx, strings.TrimSpace(id))
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted: %v\n", id, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}

// newProgressReporter returns a stage-aware progress callback: it logs
// roughly every tenth of each campaign plus its completion, and flags
// campaigns that finished with failed trials.
func newProgressReporter() func(stage string, done, total, failed, deadlocked int) {
	var mu sync.Mutex
	return func(stage string, done, total, failed, deadlocked int) {
		step := total / 10
		if step == 0 {
			step = 1
		}
		if done%step != 0 && done != total {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		what := "trials"
		// Stage names arrive workload-prefixed ("FFT: train IPAS"),
		// so match anywhere in the string.
		if strings.Contains(stage, "train") {
			what = "grid points"
		}
		suffix := ""
		if deadlocked > 0 {
			suffix = fmt.Sprintf(", %d deadlocked", deadlocked)
		}
		if done == total && failed > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s: %d/%d %s, %d failed (excluded from proportions)%s\n",
				stage, done, total, what, failed, suffix)
			return
		}
		fmt.Fprintf(os.Stderr, "experiments: %s: %d/%d %s%s\n", stage, done, total, what, suffix)
	}
}
