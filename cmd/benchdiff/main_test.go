package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(pairs ...interface{}) *report {
	r := &report{}
	for i := 0; i < len(pairs); i += 2 {
		r.Benchmarks = append(r.Benchmarks, benchmark{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareWithinTolerance(t *testing.T) {
	base := rep("BenchmarkA", 1e6, "BenchmarkB", 5e4)
	cur := rep("BenchmarkA", 8e6, "BenchmarkB", 4e4)
	_, regressions := compare(base, cur, 10, 1000)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := rep("BenchmarkA", 1e6, "BenchmarkB", 5e4)
	cur := rep("BenchmarkA", 1.5e7, "BenchmarkB", 4e4)
	rows, regressions := compare(base, cur, 10, 1000)
	lines := renderText(rows)
	if len(regressions) != 1 || regressions[0] != "BenchmarkA" {
		t.Fatalf("want [BenchmarkA], got %v", regressions)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "REGRESS") {
		t.Fatalf("no REGRESS line in output:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := rep("BenchmarkA", 1e6, "BenchmarkGone", 1e6)
	cur := rep("BenchmarkA", 1e6)
	_, regressions := compare(base, cur, 10, 1000)
	if len(regressions) != 1 || regressions[0] != "BenchmarkGone" {
		t.Fatalf("want [BenchmarkGone], got %v", regressions)
	}
}

func TestCompareNoiseFloorNeverGates(t *testing.T) {
	// 30 ns reference (a cache-hit style micro-bench) ballooning to
	// 3000 ns must not gate: below the floor it is timer noise.
	base := rep("BenchmarkTiny", 30.0)
	cur := rep("BenchmarkTiny", 3000.0)
	rows, regressions := compare(base, cur, 10, 1000)
	lines := renderText(rows)
	if len(regressions) != 0 {
		t.Fatalf("noise-floor bench gated: %v", regressions)
	}
	if !strings.Contains(lines[0], "noise") {
		t.Fatalf("want noise line, got %q", lines[0])
	}
}

func TestCompareExtraCurrentBenchmarkIsInformational(t *testing.T) {
	base := rep("BenchmarkA", 1e6)
	cur := rep("BenchmarkA", 1e6, "BenchmarkNew", 5e6)
	rows, regressions := compare(base, cur, 10, 1000)
	lines := renderText(rows)
	if len(regressions) != 0 {
		t.Fatalf("extra benchmark gated: %v", regressions)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "new") {
		t.Fatalf("new benchmark not reported:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareStripsGomaxprocsSuffix(t *testing.T) {
	// Reference recorded on a 1-core machine (no suffix), current run
	// on a 4-core CI runner (-4 suffix): names must still pair up, and
	// key=value sub-bench names must survive canonicalization.
	base := rep("BenchmarkGridSearch/workers=8", 1e9, "BenchmarkInterpreter/CoMD", 1e6)
	cur := rep("BenchmarkGridSearch/workers=8-4", 1.2e9, "BenchmarkInterpreter/CoMD-4", 1.1e6)
	rows, regressions := compare(base, cur, 10, 1000)
	lines := renderText(rows)
	if len(regressions) != 0 {
		t.Fatalf("suffixed names did not pair: %v\n%s", regressions, strings.Join(lines, "\n"))
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 paired lines, got:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"BenchmarkA":                    "BenchmarkA",
		"BenchmarkA-8":                  "BenchmarkA",
		"BenchmarkA-16":                 "BenchmarkA",
		"BenchmarkGridSearch/workers=8": "BenchmarkGridSearch/workers=8",
		"BenchmarkA/serial-baseline":    "BenchmarkA/serial-baseline",
		"BenchmarkA/serial-baseline-4":  "BenchmarkA/serial-baseline",
		"BenchmarkA-":                   "BenchmarkA-",
		"-8":                            "-8",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareDuplicateReferenceNamesUseFirst(t *testing.T) {
	// bench2json keeps repeated names (e.g. -count=2); the gate should
	// compare against the first occurrence only, not double-report.
	base := rep("BenchmarkA", 1e6, "BenchmarkA", 9e9)
	cur := rep("BenchmarkA", 2e6)
	rows, regressions := compare(base, cur, 10, 1000)
	lines := renderText(rows)
	if len(regressions) != 0 {
		t.Fatalf("duplicate reference gated: %v", regressions)
	}
	if len(lines) != 1 {
		t.Fatalf("want 1 line, got %d:\n%s", len(lines), strings.Join(lines, "\n"))
	}
}

func TestRenderMarkdownRegressionsFirst(t *testing.T) {
	base := rep("BenchmarkFast", 1e6, "BenchmarkSlow", 1e6, "BenchmarkGone", 1e6)
	cur := rep("BenchmarkFast", 1.1e6, "BenchmarkSlow", 2e7)
	rows, _ := compare(base, cur, 10, 1000)
	md := renderMarkdown(rows, "BENCH_interp.json", 10)
	if !strings.Contains(md, "| Status | Benchmark |") {
		t.Fatalf("no table header:\n%s", md)
	}
	// Regressed and missing rows must precede the ok row.
	slow := strings.Index(md, "BenchmarkSlow")
	gone := strings.Index(md, "BenchmarkGone")
	fast := strings.Index(md, "BenchmarkFast")
	if slow < 0 || gone < 0 || fast < 0 {
		t.Fatalf("missing rows:\n%s", md)
	}
	if slow > fast || gone > fast {
		t.Fatalf("regressions not floated to the top:\n%s", md)
	}
	if !strings.Contains(md, "❌ REGRESS") || !strings.Contains(md, "❌ MISSING") {
		t.Fatalf("failure rows unmarked:\n%s", md)
	}
	if !strings.Contains(md, "20.00x") {
		t.Fatalf("ratio missing:\n%s", md)
	}
}

func TestAppendStepSummaryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	if err := appendStepSummary(path, "first"); err != nil {
		t.Fatal(err)
	}
	if err := appendStepSummary(path, "second"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first\nsecond\n" {
		t.Fatalf("summary file content %q: prior steps' output must survive", data)
	}
}
